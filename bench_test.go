// Benchmarks regenerating every table and figure of the paper's
// evaluation. Each BenchmarkFigNN/BenchmarkTableNN runs the corresponding
// experiment end to end in the simulator and reports the headline numbers
// as custom benchmark metrics; run
//
//	go test -bench=. -benchmem
//
// and compare against EXPERIMENTS.md. Micro-benchmarks for the hot paths
// (rule scan, record codec, consistent hashing, real-TCP memcached)
// follow at the bottom.
package yoda_test

import (
	"fmt"
	"testing"
	"time"

	"repro/internal/assignment"
	"repro/internal/core"
	"repro/internal/experiments"
	"repro/internal/httpsim"
	"repro/internal/memcache"
	"repro/internal/netsim"
	"repro/internal/rules"
	"repro/internal/tcpstore"
	"repro/internal/trace"
)

func ms(d time.Duration) float64 { return float64(d) / float64(time.Millisecond) }

// BenchmarkTable1ProxyFailureImpact regenerates Table 1: the user-visible
// impact of breaking one established connection per website profile.
func BenchmarkTable1ProxyFailureImpact(b *testing.B) {
	var last *experiments.Table1Result
	for i := 0; i < b.N; i++ {
		last = experiments.RunTable1(1)
	}
	damaged := 0
	for _, row := range last.Rows {
		if row.HAProxyImpact != "" && row.YodaImpact != row.HAProxyImpact {
			damaged++
		}
	}
	b.ReportMetric(float64(damaged), "sites-damaged-haproxy")
	b.ReportMetric(float64(len(last.Rows)), "sites")
}

// BenchmarkFig6RuleLookupLatency regenerates Figure 6.
func BenchmarkFig6RuleLookupLatency(b *testing.B) {
	var last *experiments.Fig6Result
	for i := 0; i < b.N; i++ {
		last = experiments.RunFig6(experiments.DefaultFig6Config())
	}
	b.ReportMetric(last.Ratio10Kto1K, "p90-ratio-10k/1k")
	b.ReportMetric(ms(last.Points[0].ModelP90), "p90-1k-ms")
	b.ReportMetric(ms(last.Points[len(last.Points)-1].ModelP90), "p90-10k-ms")
}

// BenchmarkFig9LatencyBreakdown regenerates Figure 9.
func BenchmarkFig9LatencyBreakdown(b *testing.B) {
	var last *experiments.Fig9Result
	for i := 0; i < b.N; i++ {
		last = experiments.RunFig9(experiments.DefaultFig9Config())
	}
	b.ReportMetric(ms(last.Baseline), "baseline-ms")
	b.ReportMetric(ms(last.YodaTotal), "yoda-total-ms")
	b.ReportMetric(ms(last.HAProxyTotal), "haproxy-total-ms")
	b.ReportMetric(ms(2*last.YodaStorage), "storage-ms")
}

// BenchmarkFig10TCPStoreLatency regenerates Figures 10 and 11.
func BenchmarkFig10TCPStoreLatency(b *testing.B) {
	var last *experiments.Fig10Result
	for i := 0; i < b.N; i++ {
		last = experiments.RunFig10(experiments.DefaultFig10Config())
	}
	b.ReportMetric(last.OverheadAtMax*100, "replication-latency-overhead-%")
	b.ReportMetric(last.CPURatioAtMax, "replication-cpu-ratio")
	for _, p := range last.Points {
		if p.Replicas == 1 && p.RatePerServer == 40000 {
			b.ReportMetric(ms(p.SetMedian), "set-median-40k-ms")
		}
	}
}

// BenchmarkFig11TCPStoreCPU is an alias view of the Figure 11 half of the
// TCPStore experiment (CPU utilization of default vs replicated).
func BenchmarkFig11TCPStoreCPU(b *testing.B) {
	var last *experiments.Fig10Result
	for i := 0; i < b.N; i++ {
		cfg := experiments.DefaultFig10Config()
		cfg.RatesPerServer = []int{40000}
		last = experiments.RunFig10(cfg)
	}
	for _, p := range last.Points {
		name := "cpu-default-%"
		if p.Replicas == 2 {
			name = "cpu-replicated-%"
		}
		b.ReportMetric(p.CPU*100, name)
	}
}

// BenchmarkYodaInstanceCPUOverhead regenerates the §7.1 CPU comparison.
func BenchmarkYodaInstanceCPUOverhead(b *testing.B) {
	var last *experiments.CPUResult
	for i := 0; i < b.N; i++ {
		last = experiments.RunCPU(experiments.DefaultCPUConfig())
	}
	b.ReportMetric(float64(last.YodaSaturationRate), "yoda-saturation-req/s")
	b.ReportMetric(last.HAProxyCPUAtSaturation*100, "haproxy-cpu-at-saturation-%")
}

// BenchmarkFig12FailureRecovery regenerates Figure 12(a).
func BenchmarkFig12FailureRecovery(b *testing.B) {
	var last *experiments.Fig12Result
	for i := 0; i < b.N; i++ {
		last = experiments.RunFig12(experiments.DefaultFig12Config())
	}
	b.ReportMetric(last.Yoda.BrokenFrac*100, "yoda-broken-%")
	b.ReportMetric(last.HAProxyNoRetry.BrokenFrac*100, "haproxy-noretry-broken-%")
	b.ReportMetric(last.Yoda.MaxExtra.Seconds(), "yoda-max-extra-s")
	b.ReportMetric(last.HAProxyRetry.Latency.Max().Seconds(), "haproxy-retry-max-s")
}

// BenchmarkFig12bFlowTimeline regenerates the Figure 12(b) packet trace.
func BenchmarkFig12bFlowTimeline(b *testing.B) {
	var last *experiments.Fig12bResult
	for i := 0; i < b.N; i++ {
		last = experiments.RunFig12b(1)
	}
	rec := 0.0
	if last.Recovered {
		rec = 1
	}
	b.ReportMetric(rec, "recovered")
	b.ReportMetric(float64(len(last.Events)), "trace-events")
}

// BenchmarkFig13Scalability regenerates Figure 13.
func BenchmarkFig13Scalability(b *testing.B) {
	var last *experiments.Fig13Result
	for i := 0; i < b.N; i++ {
		last = experiments.RunFig13(experiments.DefaultFig13Config())
	}
	b.ReportMetric(float64(last.InstancesAdded), "instances-added")
	b.ReportMetric(float64(last.Broken), "broken-flows")
}

// BenchmarkFig14PolicyUpdate regenerates Figure 14.
func BenchmarkFig14PolicyUpdate(b *testing.B) {
	var last *experiments.Fig14Result
	for i := 0; i < b.N; i++ {
		last = experiments.RunFig14(experiments.DefaultFig14Config())
	}
	b.ReportMetric(float64(last.Broken), "broken-flows")
	b.ReportMetric(last.PhaseFractions[3]["Srv-4"]*100, "srv4-final-share-%")
}

// BenchmarkFig15CostReduction regenerates Figure 15.
func BenchmarkFig15CostReduction(b *testing.B) {
	var last *experiments.Fig15Result
	for i := 0; i < b.N; i++ {
		last = experiments.RunFig15(trace.DefaultConfig())
	}
	b.ReportMetric(last.Stats.Mean, "mean-max/avg")
	b.ReportMetric(last.Stats.Max, "max-max/avg")
	b.ReportMetric(last.Stats.Min, "min-max/avg")
}

// BenchmarkFig16Assignment regenerates Figure 16(b)–(e) over the full
// 24-hour trace.
func BenchmarkFig16Assignment(b *testing.B) {
	var last *experiments.Fig16Result
	for i := 0; i < b.N; i++ {
		last = experiments.RunFig16(experiments.DefaultFig16Config())
	}
	b.ReportMetric(last.MedianRulesFrac*100, "rules-frac-%")
	b.ReportMetric(last.MeanInstanceOverheadVsAllToAll*100, "inst-overhead-%")
	b.ReportMetric(last.MedianNoLimitMigrated*100, "nolimit-migrated-%")
	b.ReportMetric(last.MedianLimitMigrated*100, "limit-migrated-%")
	b.ReportMetric(last.MedianNoLimitOverloaded*100, "nolimit-overloaded-%")
	b.ReportMetric(last.MedianLimitOverloaded*100, "limit-overloaded-%")
}

// BenchmarkAssignmentSolve measures one Figure-7 solve at trace scale
// (the paper reports 1.5–21.5 s with CPLEX; the greedy solver is the
// substitution documented in DESIGN.md).
func BenchmarkAssignmentSolve(b *testing.B) {
	tr := trace.Generate(trace.DefaultConfig())
	p := tr.ProblemAt(0, 12000, 2000, 600, 4)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := assignment.SolveGreedy(p); err != nil {
			b.Fatal(err)
		}
	}
}

// --- micro-benchmarks on hot paths ---

// BenchmarkRuleLookup1K measures one linear scan over 1K rules.
func BenchmarkRuleLookup1K(b *testing.B) { benchRuleLookup(b, 1000) }

// BenchmarkRuleLookup10K measures one linear scan over 10K rules.
func BenchmarkRuleLookup10K(b *testing.B) { benchRuleLookup(b, 10000) }

func benchRuleLookup(b *testing.B, n int) {
	backend := rules.Backend{Name: "x", Addr: netsim.HostPort{IP: netsim.IPv4(10, 0, 2, 1), Port: 80}}
	rs := make([]rules.Rule, 0, n)
	for i := 0; i < n; i++ {
		rs = append(rs, rules.Rule{
			Name: fmt.Sprintf("r%d", i), Priority: n - i,
			Match: rules.Match{URLGlob: fmt.Sprintf("/t%d/*.php", i)},
			Action: rules.Action{Type: rules.ActionSplit,
				Split: []rules.WeightedBackend{{Backend: backend, Weight: 1}}},
		})
	}
	e := rules.NewEngine(rs)
	req := httpsim.NewRequest("/assets/logo.jpg", "svc")
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		e.Select(req, 0.5, nil)
	}
}

// BenchmarkFlowRecordMarshal measures the TCPStore record codec.
func BenchmarkFlowRecordMarshal(b *testing.B) {
	r := &core.Record{
		Phase:     core.PhaseTunnel,
		Client:    netsim.HostPort{IP: netsim.IPv4(100, 1, 2, 3), Port: 41000},
		VIP:       netsim.HostPort{IP: netsim.IPv4(10, 255, 0, 1), Port: 80},
		ClientISN: 12345,
		Server:    netsim.HostPort{IP: netsim.IPv4(10, 0, 2, 9), Port: 80},
		SNAT:      netsim.HostPort{IP: netsim.IPv4(10, 255, 0, 1), Port: 22001},
		C:         777, S: 888, Delta: 0xFFFFFF91, // 777-888 mod 2^32
		BackendName: "srv-9",
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		buf := r.Marshal()
		if _, err := core.UnmarshalRecord(buf); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkConsistentHashPick measures TCPStore's replica selection.
func BenchmarkConsistentHashPick(b *testing.B) {
	servers := make([]netsim.HostPort, 10)
	for i := range servers {
		servers[i] = netsim.HostPort{IP: netsim.IPv4(10, 0, 3, byte(i+1)), Port: 11211}
	}
	ring := tcpstore.NewRing(servers)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ring.Pick(fmt.Sprintf("flow:%d", i), 2)
	}
}

// BenchmarkMemcachedRealTCP measures set+get round trips against the
// real-socket memcached server on loopback (the non-simulated transport).
func BenchmarkMemcachedRealTCP(b *testing.B) {
	srv, err := memcache.ListenAndServe("127.0.0.1:0", memcache.NewEngine(0, nil))
	if err != nil {
		b.Fatal(err)
	}
	defer srv.Close()
	cl, err := memcache.DialNet(srv.Addr(), time.Second)
	if err != nil {
		b.Fatal(err)
	}
	defer cl.Close()
	value := make([]byte, 64)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		key := fmt.Sprintf("k%d", i%1000)
		if err := cl.Set(key, value, 0, 0); err != nil {
			b.Fatal(err)
		}
		if _, ok, err := cl.Get(key); err != nil || !ok {
			b.Fatalf("get: %v %v", ok, err)
		}
	}
}

// BenchmarkSimulatorThroughput measures raw event throughput of the
// discrete-event core (events/op reported as ns/op context).
func BenchmarkSimulatorThroughput(b *testing.B) {
	n := netsim.New(1)
	dst := netsim.IPv4(10, 0, 0, 2)
	n.Attach(dst, netsim.NodeFunc(func(p *netsim.Packet) {}))
	pkt := &netsim.Packet{
		Src: netsim.HostPort{IP: netsim.IPv4(10, 0, 0, 1), Port: 1},
		Dst: netsim.HostPort{IP: dst, Port: 2},
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		n.Send(pkt)
		n.Step()
	}
}
