package yoda

import (
	"fmt"
	"time"

	"repro/internal/cluster"
	"repro/internal/controller"
	"repro/internal/httpsim"
	"repro/internal/memcache"
	"repro/internal/netsim"
	"repro/internal/rules"
	"repro/internal/tcpstore"
)

// TestbedConfig sizes a ready-to-use Yoda deployment.
type TestbedConfig struct {
	Seed         int64
	Instances    int // Yoda L7 instances (default 4)
	StoreServers int // Memcached servers backing TCPStore (default 3)
	// Replicas is TCPStore's replication factor (default 2).
	Replicas int
	// HTTPTimeout for the built-in client (default 30s, as in §7.2).
	HTTPTimeout time.Duration
	// Controller toggles the monitor/scaling loops (default on).
	DisableController bool
}

// Testbed is a running Yoda deployment plus a convenience client, all in
// simulated time.
type Testbed struct {
	Cluster    *cluster.Cluster
	Controller *controller.Controller

	client    *httpsim.Client
	clientCfg httpsim.ClientConfig
	services  map[netsim.IP][]string // vip -> backend names
}

// NewTestbed builds a cluster with the given shape, starts the
// controller, and returns a testbed ready for AddService and Fetch.
func NewTestbed(cfg TestbedConfig) *Testbed {
	if cfg.Instances <= 0 {
		cfg.Instances = 4
	}
	if cfg.StoreServers <= 0 {
		cfg.StoreServers = 3
	}
	if cfg.Replicas <= 0 {
		cfg.Replicas = 2
	}
	if cfg.HTTPTimeout <= 0 {
		cfg.HTTPTimeout = 30 * time.Second
	}
	c := cluster.New(cfg.Seed)
	c.AddStoreServers(cfg.StoreServers, memcache.DefaultSimServerConfig())
	storeCfg := tcpstore.DefaultConfig()
	storeCfg.Replicas = cfg.Replicas
	c.AddYodaN(cfg.Instances, DefaultInstanceConfig(), storeCfg)

	tb := &Testbed{
		Cluster:  c,
		services: make(map[netsim.IP][]string),
	}
	tb.clientCfg = httpsim.DefaultClientConfig()
	tb.clientCfg.Timeout = cfg.HTTPTimeout
	tb.client = c.NewClient(tb.clientCfg)

	ct := controller.New(c, controller.DefaultConfig())
	tb.Controller = ct
	if !cfg.DisableController {
		ct.Start()
	}
	return tb
}

// AddService creates nBackends backend servers all serving objects,
// allocates a VIP, installs an equal-split policy on every instance, and
// returns the VIP.
func (tb *Testbed) AddService(name string, objects map[string][]byte, nBackends int) netsim.IP {
	if nBackends <= 0 {
		nBackends = 1
	}
	var names []string
	for i := 1; i <= nBackends; i++ {
		bn := fmt.Sprintf("%s-srv-%d", name, i)
		tb.Cluster.AddBackend(bn, objects, httpsim.DefaultServerConfig())
		names = append(names, bn)
	}
	vip := tb.Cluster.AddVIP(name)
	tb.Controller.SetPolicy(vip, tb.Cluster.SimpleSplitRules(names...), nil)
	tb.services[vip] = names
	return vip
}

// SetPolicy installs a custom rule set for a VIP (text format of §5.1).
func (tb *Testbed) SetPolicy(vip netsim.IP, ruleText string) error {
	rs, err := rules.ParseRules(ruleText, tb.Cluster.Resolver())
	if err != nil {
		return err
	}
	tb.Controller.SetPolicy(vip, rs, nil)
	return nil
}

// UpdatePolicy replaces the rules for a VIP without touching existing
// connections (§5.2).
func (tb *Testbed) UpdatePolicy(vip netsim.IP, ruleText string) error {
	rs, err := rules.ParseRules(ruleText, tb.Cluster.Resolver())
	if err != nil {
		return err
	}
	tb.Controller.UpdatePolicy(vip, rs)
	return nil
}

// Fetch synchronously (in simulated time) fetches path from the VIP and
// returns the result. It advances the virtual clock as needed.
func (tb *Testbed) Fetch(vip netsim.IP, path string) *httpsim.FetchResult {
	var res *httpsim.FetchResult
	tb.client.Get(netsim.HostPort{IP: vip, Port: 80}, path, func(r *httpsim.FetchResult) { res = r })
	deadline := tb.Now() + tb.clientCfg.Timeout*time.Duration(tb.clientCfg.Retries+1) + time.Minute
	for res == nil && tb.Now() < deadline {
		if !tb.Cluster.Net.Step() {
			break
		}
	}
	return res
}

// FetchAsync starts a fetch and returns immediately; done fires inside
// the event loop when the fetch resolves.
func (tb *Testbed) FetchAsync(vip netsim.IP, path string, done func(*httpsim.FetchResult)) {
	cl := tb.Cluster.NewClient(tb.clientCfg)
	cl.Get(netsim.HostPort{IP: vip, Port: 80}, path, done)
}

// KillInstance fails Yoda instance i; the controller's monitor will
// detect it and repair the L4 mapping within its ping interval.
func (tb *Testbed) KillInstance(i int) { tb.Cluster.Yoda[i].Fail() }

// Run advances simulated time by d.
func (tb *Testbed) Run(d time.Duration) { tb.Cluster.Net.RunFor(d) }

// Now returns the current virtual time.
func (tb *Testbed) Now() time.Duration { return tb.Cluster.Net.Now() }

// Close stops the controller's loops.
func (tb *Testbed) Close() { tb.Controller.Stop() }
