// Policy update: drive the Figure 14 scenario through the public API —
// a make-before-break backend replacement using the §5.1 rule language,
// with live traffic and zero broken flows.
//
//	go run ./examples/policyupdate
package main

import (
	"fmt"
	"time"

	yoda "repro"
)

func main() {
	tb := yoda.NewTestbed(yoda.TestbedConfig{Seed: 7, Instances: 2})
	defer tb.Close()
	vip := tb.AddService("shop", map[string][]byte{"/checkout": []byte("ok")}, 4)
	// AddService created shop-srv-1..4 with an equal split; restrict to
	// the first three, emulating the paper's starting state.
	must(tb.SetPolicy(vip, `
rule split prio=1 url=* split=shop-srv-1:1,shop-srv-2:1,shop-srv-3:1
`))

	// Background traffic: 100 req/s for 40 s.
	requests, broken := 0, 0
	stopAt := 40 * time.Second
	var pump func()
	pump = func() {
		if tb.Now() >= stopAt {
			return
		}
		tb.FetchAsync(vip, "/checkout", func(r *yoda.FetchResult) {
			requests++
			if r.Err != nil {
				broken++
			}
		})
		tb.Cluster.Net.Schedule(10*time.Millisecond, pump)
	}
	pump()

	report := func(label string) {
		counts := map[string]int{}
		for name, b := range tb.Cluster.Backends {
			counts[name] = b.Server.Requests
		}
		fmt.Printf("%-28s srv-1=%5d srv-2=%5d srv-3=%5d srv-4=%5d\n", label,
			counts["shop-srv-1"], counts["shop-srv-2"], counts["shop-srv-3"], counts["shop-srv-4"])
	}

	tb.Run(10 * time.Second)
	report("t=10s  equal(1,2,3)")

	// Make: add the replacement server before removing anything.
	must(tb.UpdatePolicy(vip, `
rule split prio=1 url=* split=shop-srv-1:1,shop-srv-2:1,shop-srv-3:1,shop-srv-4:1
`))
	tb.Run(10 * time.Second)
	report("t=20s  +srv-4")

	// Break: soft-remove srv-1; existing connections drain unharmed.
	must(tb.UpdatePolicy(vip, `
rule split prio=1 url=* split=shop-srv-2:1,shop-srv-3:1,shop-srv-4:1
`))
	tb.Run(10 * time.Second)
	report("t=30s  -srv-1")

	// Reweight: the new machine has twice the cores.
	must(tb.UpdatePolicy(vip, `
rule split prio=1 url=* split=shop-srv-2:1,shop-srv-3:1,shop-srv-4:2
`))
	tb.Run(15 * time.Second)
	report("t=40s  1:1:2")

	fmt.Printf("\n%d requests, %d broken (the paper reports zero broken flows)\n", requests, broken)
}

func must(err error) {
	if err != nil {
		panic(err)
	}
}
