// Secure service: SSL termination at the load balancer (§5.2) composed
// with Yoda's availability story. The client speaks the securesim
// TLS-like protocol to the VIP; the instance terminates it (certificate
// transfer, ECDH key agreement, AES-CTR streams), selects the backend
// from the decrypted request, and tunnels the rest with per-packet
// keystream rewriting — so even an *encrypted* flow survives the death
// of the instance that terminated it.
//
//	go run ./examples/secureservice
package main

import (
	"bytes"
	"fmt"
	"time"

	yoda "repro"
	"repro/internal/httpsim"
	"repro/internal/netsim"
	"repro/internal/securesim"
	"repro/internal/workload"
)

func main() {
	tb := yoda.NewTestbed(yoda.TestbedConfig{Seed: 99, Instances: 3, StoreServers: 3})
	defer tb.Close()

	secret := workload.SynthBody("/download.bin", 200*1024)
	vip := tb.AddService("vault", map[string][]byte{
		"/login":        []byte("welcome, agent"),
		"/download.bin": secret,
	}, 2)

	// The operator installs the certificate and the shared service secret
	// on every instance — the §5.2 provisioning step.
	identity := securesim.NewIdentity(
		[]byte("-----BEGIN CERT----- vault.example -----END CERT-----"),
		[]byte("vault-service-secret"),
	)
	for _, in := range tb.Cluster.Yoda {
		in.InstallTLS(vip, identity)
	}
	fmt.Printf("vault is live behind VIP %v with SSL termination on %d instances\n\n",
		vip, len(tb.Cluster.Yoda))

	// Watch the wire to prove the client leg is opaque.
	leaked := false
	tb.Cluster.Net.SetTracer(func(ev netsim.TraceEvent) {
		p := ev.Packet
		if (p.Src.IP == vip || p.Dst.IP == vip) && p.Src.Port != 80 && p.Dst.Port != 80 {
			if bytes.Contains(p.Payload, []byte("welcome, agent")) {
				leaked = true
			}
		}
	})

	host := tb.Cluster.ClientHost()
	var login securesim.FetchResult
	securesim.Fetch(host, netsim.HostPort{IP: vip, Port: 80}, identity.Cert,
		httpsim.NewRequest("/login", "vault"), func(r securesim.FetchResult) { login = r })
	tb.Run(5 * time.Second)
	fmt.Printf("HTTPS GET /login        -> %q (plaintext on the wire: %v)\n", login.Resp.Body, leaked)

	// Now the composition: kill the terminating instance mid-download.
	var download *securesim.FetchResult
	securesim.Fetch(host, netsim.HostPort{IP: vip, Port: 80}, identity.Cert,
		httpsim.NewRequest("/download.bin", "vault"), func(r securesim.FetchResult) { download = &r })
	tb.Run(150 * time.Millisecond)
	for i, in := range tb.Cluster.Yoda {
		if in.FlowCount() > 0 {
			fmt.Printf("killing instance %d while it holds the TLS session...\n", i)
			tb.KillInstance(i)
			break
		}
	}
	tb.Run(30 * time.Second)

	if download == nil || download.Err != nil {
		fmt.Printf("download failed: %+v\n", download)
		return
	}
	ok := bytes.Equal(download.Resp.Body, secret)
	fmt.Printf("HTTPS GET /download.bin -> %d bytes, intact=%v — the session key came back from TCPStore\n",
		len(download.Resp.Body), ok)

	// Pinning the wrong certificate is rejected before any request is sent.
	var mitm securesim.FetchResult
	securesim.Fetch(host, netsim.HostPort{IP: vip, Port: 80}, []byte("evil cert"),
		httpsim.NewRequest("/login", "vault"), func(r securesim.FetchResult) { mitm = r })
	tb.Run(5 * time.Second)
	fmt.Printf("pinned-cert mismatch    -> %v\n", mitm.Err)
}
