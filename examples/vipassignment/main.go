// VIP assignment: generate a synthetic production trace, build the
// Figure-7 assignment problem for its busiest window, solve it with the
// greedy solver, and verify every constraint — then show what the
// migration budget changes between consecutive rounds.
//
//	go run ./examples/vipassignment
package main

import (
	"fmt"

	yoda "repro"
	"repro/internal/assignment"
)

func main() {
	tr := yoda.GenerateTrace(yoda.DefaultTraceConfig())
	fmt.Printf("trace: %d VIPs, %d windows, %d rules total\n\n",
		len(tr.VIPs), tr.Windows, tr.TotalRules())

	// Find the busiest window.
	busiest, peak := 0, 0.0
	for w := 0; w < tr.Windows; w++ {
		sum := 0.0
		for i := range tr.VIPs {
			sum += tr.VIPs[i].Series[w]
		}
		if sum > peak {
			busiest, peak = w, sum
		}
	}
	fmt.Printf("busiest window: #%d with %.0f req/s aggregate\n", busiest, peak)

	// Build and solve the Figure-7 problem (T_y=12K req/s, R_y=2K rules,
	// 4x replication, as in §8.2).
	p := tr.ProblemAt(busiest, 12000, 2000, 600, 4)
	a, err := yoda.SolveAssignment(p)
	if err != nil {
		panic(err)
	}
	if err := yoda.VerifyAssignment(p, a); err != nil {
		panic(err)
	}
	fmt.Printf("greedy solution: %d instances (all-to-all would need %d by traffic alone)\n",
		a.Used(), assignment.AllToAllInstanceCount(p))

	// Rules per instance: the whole point of many-to-many assignment.
	perInst := map[int]int{}
	for i := range p.VIPs {
		for _, y := range a.ByVIP[p.VIPs[i].ID] {
			perInst[y] += p.VIPs[i].Rules
		}
	}
	maxRules := 0
	for _, r := range perInst {
		if r > maxRules {
			maxRules = r
		}
	}
	fmt.Printf("max rules on any instance: %d (cap 2000; all-to-all would hold all %d)\n\n",
		maxRules, tr.TotalRules())

	// Next round: traffic moved; compare unconstrained vs δ=10% updates.
	next := tr.ProblemAt((busiest+1)%tr.Windows, 12000, 2000, 600, 4)

	free := *next
	free.Old = nil // re-optimize from scratch, as an ILP would
	freeSol, err := yoda.SolveAssignment(&free)
	if err != nil {
		panic(err)
	}
	freeProb := *next
	freeProb.Old = a
	fmt.Printf("unconstrained re-solve: %d instances, migrating %.1f%% of connections\n",
		freeSol.Used(), 100*assignment.MigratedFraction(&freeProb, freeSol))

	capped := *next
	capped.Old = a
	capped.TransientCheck = true
	capped.MigrationLimit = 0.10
	cappedSol, err := yoda.SolveAssignment(&capped)
	if err != nil {
		panic(err)
	}
	fmt.Printf("δ=10%% constrained:      %d instances, migrating %.1f%% of connections\n",
		cappedSol.Used(), 100*assignment.MigratedFraction(&capped, cappedSol))
	fmt.Println("\nthe congestion-free update costs almost nothing in instances but")
	fmt.Println("protects TCPStore and the instances from transient overload (§4.5).")
}
