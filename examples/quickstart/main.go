// Quickstart: stand up a small Yoda deployment, serve requests through
// the VIP, kill an instance mid-flight, and watch the flow survive.
//
// Everything runs in simulated time, so this finishes instantly and
// deterministically:
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"time"

	yoda "repro"
)

func main() {
	// A testbed with 4 Yoda instances and a 3-server TCPStore, supervised
	// by the controller (600ms failure detection, as in the paper).
	tb := yoda.NewTestbed(yoda.TestbedConfig{Seed: 42, Instances: 4, StoreServers: 3})
	defer tb.Close()

	// One online service with 3 backends behind a VIP.
	objects := map[string][]byte{
		"/":          []byte("<html>welcome to mysite</html>"),
		"/big.bin":   make([]byte, 200*1024),
		"/style.css": []byte("body { color: teal }"),
	}
	vip := tb.AddService("mysite", objects, 3)
	fmt.Printf("service mysite is live behind VIP %v\n", vip)

	// Plain request through the load balancer.
	res := tb.Fetch(vip, "/")
	fmt.Printf("GET /          -> %d, %d bytes in %v\n",
		res.Resp.StatusCode, len(res.Resp.Body), res.Elapsed())

	// Now the headline feature: start a large transfer, kill the instance
	// that carries it, and let TCPStore + VIP indirection recover the flow.
	var big *yoda.FetchResult
	tb.FetchAsync(vip, "/big.bin", func(r *yoda.FetchResult) { big = r })
	tb.Run(80 * time.Millisecond) // the transfer is mid-flight now

	for i, inst := range tb.Cluster.Yoda {
		if inst.FlowCount() > 0 {
			fmt.Printf("killing instance %d while it carries the flow...\n", i)
			tb.KillInstance(i)
			break
		}
	}
	tb.Run(30 * time.Second)

	if big == nil || big.Err != nil {
		fmt.Printf("flow broke: %+v\n", big)
		return
	}
	fmt.Printf("GET /big.bin   -> %d, %d bytes in %v — survived the failure\n",
		big.Resp.StatusCode, len(big.Resp.Body), big.Elapsed())

	recovered := uint64(0)
	for _, inst := range tb.Cluster.Yoda {
		recovered += inst.Recovered
	}
	fmt.Printf("flows recovered from TCPStore by surviving instances: %d\n", recovered)
	fmt.Printf("controller failure detections: %d\n", tb.Controller.Detections)
}
