// Multitenant: the "as-a-service" story of the paper. Several online
// services share one Yoda fleet; the Figure-7 assignment places each
// VIP's rules on a subset of instances (bounding lookup latency), the
// controller applies the mapping, and traffic for every tenant flows —
// including across an instance failure that touches several tenants at
// once.
//
//	go run ./examples/multitenant
package main

import (
	"fmt"
	"time"

	yoda "repro"
	"repro/internal/httpsim"
	"repro/internal/netsim"
)

func main() {
	tb := yoda.NewTestbed(yoda.TestbedConfig{Seed: 11, Instances: 6, StoreServers: 3})
	defer tb.Close()

	// Four tenants with different traffic weights (like §7's four
	// university sites sharing 30 backends).
	tenants := []struct {
		name     string
		backends int
		weight   int // relative request rate
	}{
		{"news", 3, 4},
		{"video", 3, 3},
		{"shop", 2, 2},
		{"blog", 1, 1},
	}
	vips := map[string]netsim.IP{}
	for _, tn := range tenants {
		objects := map[string][]byte{
			"/":     []byte("<html>" + tn.name + "</html>"),
			"/data": make([]byte, 20*1024),
		}
		vips[tn.name] = tb.AddService(tn.name, objects, tn.backends)
	}
	fmt.Println("tenants deployed:")
	for _, tn := range tenants {
		fmt.Printf("  %-6s -> VIP %v (%d backends)\n", tn.name, vips[tn.name], tn.backends)
	}

	// Weighted background traffic for every tenant.
	requests := map[string]*int{}
	broken := 0
	for _, tn := range tenants {
		tn := tn
		count := new(int)
		requests[tn.name] = count
		var pump func()
		pump = func() {
			if tb.Now() >= 20*time.Second {
				return
			}
			tb.FetchAsync(vips[tn.name], "/data", func(r *httpsim.FetchResult) {
				*count++
				if r.Err != nil {
					broken++
				}
			})
			tb.Cluster.Net.Schedule(time.Second/time.Duration(10*tn.weight), pump)
		}
		pump()
	}

	// Fail an instance at t=8s: multiple tenants' flows live there.
	tb.Run(8 * time.Second)
	fmt.Printf("\nt=8s: failing instance 0 (carries %d flows across tenants)\n",
		tb.Cluster.Yoda[0].FlowCount())
	tb.KillInstance(0)

	tb.Run(40 * time.Second)

	fmt.Println("\nresults after 20s of traffic and one instance failure:")
	total := 0
	for _, tn := range tenants {
		fmt.Printf("  %-6s %5d requests\n", tn.name, *requests[tn.name])
		total += *requests[tn.name]
	}
	fmt.Printf("  total  %5d requests, %d broken (decoupled state keeps every tenant whole)\n", total, broken)

	recovered := uint64(0)
	for _, in := range tb.Cluster.Yoda {
		recovered += in.Recovered
	}
	fmt.Printf("\nflows recovered from TCPStore: %d; controller detections: %d\n",
		recovered, tb.Controller.Detections)

	// The shared-fleet economics (§8.1): each tenant alone would provision
	// for its peak; the shared fleet provisions for the sum of averages.
	st := yoda.GenerateTrace(yoda.DefaultTraceConfig()).Ratios()
	fmt.Printf("on the §8 trace, per-tenant peak provisioning wastes %.1fx on average (range %.1f–%.1fx)\n",
		st.Mean, st.Min, st.Max)
}
