// Failover walkthrough: reproduce the paper's Figure 12(b) scenario on a
// single flow and print the packet-level timeline — the drop at the dead
// instance, the 300/600ms retransmissions, the L4 mapping repair, and the
// takeover by a surviving instance using state from TCPStore.
//
//	go run ./examples/failover
package main

import (
	"fmt"

	"repro/internal/experiments"
)

func main() {
	fmt.Println("Reproducing Figure 12(b): one flow across a YODA instance failure")
	fmt.Println()
	res := experiments.RunFig12b(7)
	fmt.Println(res)
	if res.Recovered {
		fmt.Println("The client never saw the failure: no HTTP timeout, no session reset.")
	} else {
		fmt.Println("Unexpected: the flow did not recover — check the timeline above.")
	}
}
