package flowmap

import (
	"math/bits"

	"repro/internal/netsim"
)

// Compact is the production Table: a two-choice cuckoo hash over
// 64-byte buckets of four 16-byte slots (64-bit tag, 32-bit value,
// 32-bit generation), so a lookup touches at most two cache lines.
// Live entries cost slots×16 bytes at the table's load factor — a few
// tens of bytes per flow at worst, ~18 B at a sized table's steady
// load — independent of tuple size, with no per-entry heap object for
// the GC to trace.
//
// Inserts relocate entries with a bounded, deterministic kick sequence
// and grow the bucket array (rehashing in place, dropping dead
// entries) when placement fails, so individual operations never
// allocate in steady state; growth is amortized. All behaviour is
// deterministic: no RNG, map iteration, or address-dependent state.
type Compact struct {
	buckets []bucket
	nb      uint64 // len(buckets), not required to be a power of two
	live    int    // entries inserted and neither deleted nor evicted
	epoch   uint64 // EvictValue count
	kick    uint32 // rotating victim cursor for cuckoo relocation

	// Per-value generations: an entry is live iff its gen matches
	// vgens[val]. liveByVal keeps Len exact under O(1) eviction.
	vgens     []uint32
	liveByVal []int32
}

type slot struct {
	tag uint64 // hashTuple of the entry's tuple; 0 = empty
	val Value
	gen uint32
}

const bucketSlots = 4

type bucket struct {
	s [bucketSlots]slot
}

// maxKicks bounds the cuckoo relocation chain before the table grows.
const maxKicks = 32

// hintLoad is the load factor a capacity hint is sized for. Two-choice
// four-way cuckoo sustains ~0.95; sizing to 0.8 keeps kick chains
// short and leaves post-hint headroom before the first growth.
const hintLoad = 0.8

// NewCompact returns a table pre-sized so capacityHint entries fit
// without growth. A hint ≤ 0 starts at the minimum size and grows on
// demand.
func NewCompact(capacityHint int) *Compact {
	nb := uint64(2)
	if capacityHint > 0 {
		if want := uint64(float64(capacityHint)/(bucketSlots*hintLoad)) + 1; want > nb {
			nb = want
		}
	}
	return &Compact{buckets: make([]bucket, nb), nb: nb}
}

// home1 and home2 are the entry's two candidate buckets, both
// recomputable from the stored tag alone (which is what lets a kicked
// victim find its alternate bucket without the original tuple).
// Bucket indices come from the high half of a 64×64 multiply
// (Lemire's fastrange), so the bucket count need not be a power of
// two and growth can stay geometric without pow2 jumps.
func (c *Compact) home1(tag uint64) uint64 {
	hi, _ := bits.Mul64(tag, c.nb)
	return hi
}

func (c *Compact) home2(tag uint64) uint64 {
	x := tag ^ 0x6a09e667f3bcc909
	x ^= x >> 30
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 27
	x *= 0x94d049bb133111eb
	x ^= x >> 31
	hi, _ := bits.Mul64(x, c.nb)
	return hi
}

func (c *Compact) altBucket(tag, b uint64) uint64 {
	if h1 := c.home1(tag); h1 != b {
		return h1
	}
	return c.home2(tag)
}

// vgen returns the current generation for v (0 if v was never touched
// by EvictValue or ensureVal growth).
func (c *Compact) vgen(v Value) uint32 {
	if uint64(v) < uint64(len(c.vgens)) {
		return c.vgens[v]
	}
	return 0
}

// ensureVal grows the per-value bookkeeping to cover v. Amortized:
// steady-state inserts over an already-seen value range do not
// allocate.
func (c *Compact) ensureVal(v Value) {
	for uint64(len(c.vgens)) <= uint64(v) {
		c.vgens = append(c.vgens, 0)
		c.liveByVal = append(c.liveByVal, 0)
	}
}

func (c *Compact) isDead(s *slot) bool { return s.gen != c.vgen(s.val) }

// findTag returns the slot in bucket b holding tag, live or dead.
func (c *Compact) findTag(b uint64, tag uint64) *slot {
	bk := &c.buckets[b]
	for i := range bk.s {
		if bk.s[i].tag == tag {
			return &bk.s[i]
		}
	}
	return nil
}

// Insert maps ft to v, overwriting an existing entry for the same
// tuple (tag). It always succeeds, growing the table if placement
// fails. Steady-state inserts are allocation-free.
func (c *Compact) Insert(ft netsim.FourTuple, v Value) bool {
	c.ensureVal(v)
	tag := hashTuple(ft)
	b1 := c.home1(tag)
	s := c.findTag(b1, tag)
	if s == nil {
		if b2 := c.home2(tag); b2 != b1 {
			s = c.findTag(b2, tag)
		}
	}
	if s != nil {
		if c.isDead(s) {
			// The tuple's previous entry was evicted; this is a fresh
			// insert reclaiming the slot.
			c.live++
			c.liveByVal[v]++
		} else {
			c.liveByVal[s.val]--
			c.liveByVal[v]++
		}
		s.val, s.gen = v, c.vgens[v]
		return true
	}
	e := slot{tag: tag, val: v, gen: c.vgens[v]}
	b := b1
	for {
		homeless, ok := c.place(e, b)
		if ok {
			break
		}
		// The chain ended with some displaced victim (not necessarily
		// the new entry) still in hand; grow, then re-place it.
		e = homeless
		c.grow()
		b = c.home1(e.tag)
	}
	c.live++
	c.liveByVal[v]++
	return true
}

// tryPut stores e into a free or dead slot of bucket b, reporting
// success. Dead slots (generation-mismatched leftovers of EvictValue)
// are reclaimed here; their live accounting was already settled at
// eviction time.
func (c *Compact) tryPut(b uint64, e slot) bool {
	bk := &c.buckets[b]
	for i := range bk.s {
		if bk.s[i].tag == 0 || c.isDead(&bk.s[i]) {
			bk.s[i] = e
			return true
		}
	}
	return false
}

// place runs the bounded cuckoo relocation chain starting at bucket b
// (one of e's homes). Victims are chosen by a rotating cursor, keeping
// the sequence deterministic without an RNG. On failure the entry
// still in hand — some displaced victim, not necessarily e — is
// returned so the caller can grow and re-place it; losing it would
// silently drop a live flow.
func (c *Compact) place(e slot, b uint64) (homeless slot, ok bool) {
	for i := 0; i < maxKicks; i++ {
		if c.tryPut(b, e) {
			return slot{}, true
		}
		if ab := c.altBucket(e.tag, b); ab != b && c.tryPut(ab, e) {
			return slot{}, true
		}
		sl := &c.buckets[b].s[c.kick&(bucketSlots-1)]
		c.kick++
		e, *sl = *sl, e
		b = c.altBucket(e.tag, b)
	}
	return e, false
}

// grow rebuilds the table at twice the bucket count, dropping dead
// entries along the way (eviction leftovers are physically reclaimed
// here at the latest). A failed rebuild discards the partial new array
// and retries larger from the intact old snapshot, so no entry is
// lost.
func (c *Compact) grow() {
	old := c.buckets
	nb := c.nb
	for {
		nb *= 2
		if c.rebuild(old, nb) {
			return
		}
	}
}

func (c *Compact) rebuild(old []bucket, nb uint64) bool {
	c.buckets = make([]bucket, nb)
	c.nb = nb
	for i := range old {
		for j := range old[i].s {
			s := old[i].s[j]
			if s.tag == 0 || c.isDead(&s) {
				continue
			}
			if _, ok := c.place(s, c.home1(s.tag)); !ok {
				return false
			}
		}
	}
	return true
}

// LookupMaybe returns the value stored for ft. See the package comment
// for the false-hit contract: a hit is authoritative for inserted
// tuples, but a never-inserted tuple aliasing an entry's 64-bit tag
// returns that entry's value.
func (c *Compact) LookupMaybe(ft netsim.FourTuple) (Value, bool) {
	tag := hashTuple(ft)
	b1 := c.home1(tag)
	bk := &c.buckets[b1]
	for i := range bk.s {
		if bk.s[i].tag == tag && bk.s[i].gen == c.vgen(bk.s[i].val) {
			return bk.s[i].val, true
		}
	}
	if b2 := c.home2(tag); b2 != b1 {
		bk = &c.buckets[b2]
		for i := range bk.s {
			if bk.s[i].tag == tag && bk.s[i].gen == c.vgen(bk.s[i].val) {
				return bk.s[i].val, true
			}
		}
	}
	return 0, false
}

// Delete removes ft's entry, reporting whether a live entry was
// removed. A dead (evicted) entry for the same tuple is reclaimed but
// reported as a miss.
func (c *Compact) Delete(ft netsim.FourTuple) bool {
	tag := hashTuple(ft)
	s := c.findTag(c.home1(tag), tag)
	if s == nil {
		if b2 := c.home2(tag); b2 != c.home1(tag) {
			s = c.findTag(b2, tag)
		}
	}
	if s == nil {
		return false
	}
	wasLive := !c.isDead(s)
	if wasLive {
		c.live--
		c.liveByVal[s.val]--
	}
	*s = slot{}
	return wasLive
}

// EvictValue invalidates every live entry mapping to v in O(1): the
// value's generation is bumped, so matching entries fail the liveness
// check on their next touch and are reclaimed lazily by inserts,
// deletes, and growth rebuilds.
func (c *Compact) EvictValue(v Value) {
	c.ensureVal(v)
	c.epoch++
	c.live -= int(c.liveByVal[v])
	c.liveByVal[v] = 0
	c.vgens[v]++
}

// Len returns the number of live entries.
func (c *Compact) Len() int { return c.live }

// Epoch returns the eviction-bump count.
func (c *Compact) Epoch() uint64 { return c.epoch }

// FootprintBytes reports the table's own memory footprint (buckets
// plus per-value bookkeeping), the figure the bytes-per-flow benchmark
// records.
func (c *Compact) FootprintBytes() int {
	return len(c.buckets)*bucketSlots*16 + len(c.vgens)*4 + len(c.liveByVal)*4
}
