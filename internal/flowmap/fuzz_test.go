package flowmap

import (
	"testing"

	"repro/internal/netsim"
)

// FuzzFlowmapDifferential interprets the fuzz input as an op script —
// one byte selects the operation, the next bytes the tuple index and
// value — and runs it through Compact and the Map oracle in lockstep.
// Any divergence in lookup results, delete results, or Len is a bug in
// the compact structure (or a genuine 64-bit tag collision, which
// random inputs cannot realistically find; see the package comment).
func FuzzFlowmapDifferential(f *testing.F) {
	f.Add([]byte{0, 1, 2, 1, 1, 2, 2, 1, 2, 3, 0, 0})
	f.Add([]byte{0, 10, 1, 3, 1, 0, 10, 0, 2, 10})
	f.Add([]byte{0, 5, 0, 0, 6, 1, 3, 0, 1, 5, 0, 7, 2, 2, 5})
	f.Fuzz(func(t *testing.T, script []byte) {
		c := NewCompact(0)
		m := NewMap()
		tuple := func(b byte) netsim.FourTuple {
			return netsim.FourTuple{
				Src: netsim.HostPort{IP: netsim.IP(0x64000000 + uint32(b>>4)), Port: 1024 + uint16(b&0x0f)},
				Dst: netsim.HostPort{IP: 0x0afe0001, Port: 80},
			}
		}
		for i := 0; i+1 < len(script); {
			op := script[i]
			switch op % 4 {
			case 0: // insert: needs tuple + value bytes
				if i+2 >= len(script) {
					return
				}
				ft, v := tuple(script[i+1]), Value(script[i+2]%8)
				c.Insert(ft, v)
				m.Insert(ft, v)
				i += 3
			case 1: // delete
				ft := tuple(script[i+1])
				if cd, md := c.Delete(ft), m.Delete(ft); cd != md {
					t.Fatalf("op %d: Delete compact=%v map=%v", i, cd, md)
				}
				i += 2
			case 2: // lookup
				ft := tuple(script[i+1])
				cv, chit := c.LookupMaybe(ft)
				mv, mhit := m.LookupMaybe(ft)
				if chit != mhit || (chit && cv != mv) {
					t.Fatalf("op %d: lookup compact=(%d,%v) map=(%d,%v)", i, cv, chit, mv, mhit)
				}
				i += 2
			default: // evict value (the epoch bump, mid-sequence)
				v := Value(script[i+1] % 8)
				c.EvictValue(v)
				m.EvictValue(v)
				i += 2
			}
			if c.Len() != m.Len() {
				t.Fatalf("op %d: Len compact=%d map=%d", i, c.Len(), m.Len())
			}
		}
		// Full-universe sweep at the end of every script.
		for b := 0; b < 256; b++ {
			ft := tuple(byte(b))
			cv, chit := c.LookupMaybe(ft)
			mv, mhit := m.LookupMaybe(ft)
			if chit != mhit || (chit && cv != mv) {
				t.Fatalf("sweep %d: compact=(%d,%v) map=(%d,%v)", b, cv, chit, mv, mhit)
			}
		}
	})
}
