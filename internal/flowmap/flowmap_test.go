package flowmap

import (
	"fmt"
	"math/rand"
	"testing"

	"repro/internal/netsim"
)

// tupleN derives a distinct four-tuple from an index, spread across
// IPs and ports the way real flow populations are.
func tupleN(i int) netsim.FourTuple {
	return netsim.FourTuple{
		Src: netsim.HostPort{IP: netsim.IP(0x64000001 + uint32(i>>14)), Port: uint16(1024 + i&0x3fff)},
		Dst: netsim.HostPort{IP: netsim.IP(0x0afe0001 + uint32(i&7)), Port: 80},
	}
}

func TestCompactBasic(t *testing.T) {
	c := NewCompact(0)
	ft := tupleN(1)
	if _, hit := c.LookupMaybe(ft); hit {
		t.Fatal("hit on empty table")
	}
	c.Insert(ft, 7)
	if v, hit := c.LookupMaybe(ft); !hit || v != 7 {
		t.Fatalf("lookup = %d,%v want 7,true", v, hit)
	}
	if c.Len() != 1 {
		t.Fatalf("Len = %d", c.Len())
	}
	// Overwrite updates in place.
	c.Insert(ft, 9)
	if v, _ := c.LookupMaybe(ft); v != 9 {
		t.Fatalf("after overwrite: %d", v)
	}
	if c.Len() != 1 {
		t.Fatalf("Len after overwrite = %d", c.Len())
	}
	if !c.Delete(ft) {
		t.Fatal("delete missed")
	}
	if c.Delete(ft) {
		t.Fatal("double delete reported live entry")
	}
	if _, hit := c.LookupMaybe(ft); hit {
		t.Fatal("hit after delete")
	}
	if c.Len() != 0 {
		t.Fatalf("Len after delete = %d", c.Len())
	}
}

func TestCompactGrowthHoldsAllEntries(t *testing.T) {
	const n = 100_000
	c := NewCompact(0) // force growth from the minimum size
	for i := 0; i < n; i++ {
		c.Insert(tupleN(i), Value(i%253))
	}
	if c.Len() != n {
		t.Fatalf("Len = %d want %d", c.Len(), n)
	}
	for i := 0; i < n; i++ {
		v, hit := c.LookupMaybe(tupleN(i))
		if !hit || v != Value(i%253) {
			t.Fatalf("entry %d: got %d,%v", i, v, hit)
		}
	}
}

func TestCompactCapacityHintAvoidsGrowth(t *testing.T) {
	const n = 1 << 16
	c := NewCompact(n)
	before := c.nb
	for i := 0; i < n; i++ {
		c.Insert(tupleN(i), Value(i&31))
	}
	if c.nb != before {
		t.Fatalf("hint-sized table grew: %d -> %d buckets", before, c.nb)
	}
	perFlow := float64(c.FootprintBytes()) / n
	if perFlow > 24 {
		t.Fatalf("footprint %.1f B/flow, want ≤ 24", perFlow)
	}
}

func TestCompactEvictValue(t *testing.T) {
	c := NewCompact(0)
	for i := 0; i < 100; i++ {
		c.Insert(tupleN(i), Value(i%4))
	}
	if c.Len() != 100 {
		t.Fatalf("Len = %d", c.Len())
	}
	c.EvictValue(2)
	if c.Epoch() != 1 {
		t.Fatalf("Epoch = %d", c.Epoch())
	}
	if c.Len() != 75 {
		t.Fatalf("Len after evict = %d want 75", c.Len())
	}
	for i := 0; i < 100; i++ {
		_, hit := c.LookupMaybe(tupleN(i))
		if want := i%4 != 2; hit != want {
			t.Fatalf("entry %d: hit=%v want %v", i, hit, want)
		}
	}
	// Deleting an evicted entry reports a miss.
	if c.Delete(tupleN(2)) {
		t.Fatal("delete of evicted entry reported live")
	}
	// Re-inserting after the bump is valid, including for the evicted
	// value itself.
	c.Insert(tupleN(2), 2)
	if v, hit := c.LookupMaybe(tupleN(2)); !hit || v != 2 {
		t.Fatalf("re-insert after evict: %d,%v", v, hit)
	}
	if c.Len() != 76 {
		t.Fatalf("Len after re-insert = %d", c.Len())
	}
}

func TestCompactEvictThenGrowthDropsDeadEntries(t *testing.T) {
	c := NewCompact(0)
	for i := 0; i < 1000; i++ {
		c.Insert(tupleN(i), 1)
	}
	c.EvictValue(1)
	// Force growth; dead entries must not resurrect.
	for i := 1000; i < 5000; i++ {
		c.Insert(tupleN(i), 2)
	}
	for i := 0; i < 1000; i++ {
		if _, hit := c.LookupMaybe(tupleN(i)); hit {
			t.Fatalf("evicted entry %d resurrected after growth", i)
		}
	}
	if c.Len() != 4000 {
		t.Fatalf("Len = %d want 4000", c.Len())
	}
}

// checkAgree asserts the compact table and the oracle agree on lookup
// results for the given tuple universe and on Len.
func checkAgree(t *testing.T, c *Compact, m *Map, universe int, step string) {
	t.Helper()
	if c.Len() != m.Len() {
		t.Fatalf("%s: Len compact=%d map=%d", step, c.Len(), m.Len())
	}
	for i := 0; i < universe; i++ {
		ft := tupleN(i)
		cv, chit := c.LookupMaybe(ft)
		mv, mhit := m.LookupMaybe(ft)
		if chit != mhit || (chit && cv != mv) {
			t.Fatalf("%s: tuple %d: compact=(%d,%v) map=(%d,%v)", step, i, cv, chit, mv, mhit)
		}
	}
}

// TestDifferentialChurn drives randomized insert/delete/evict/overwrite
// sequences through Compact and the Map oracle in lockstep, verifying
// full agreement after every phase — including epoch bumps mid-stream.
func TestDifferentialChurn(t *testing.T) {
	for seed := int64(1); seed <= 5; seed++ {
		seed := seed
		t.Run(fmt.Sprintf("seed=%d", seed), func(t *testing.T) {
			rng := rand.New(rand.NewSource(seed))
			const universe = 4096
			const values = 16
			c := NewCompact(0)
			m := NewMap()
			for step := 0; step < 40_000; step++ {
				i := rng.Intn(universe)
				ft := tupleN(i)
				switch op := rng.Intn(100); {
				case op < 45:
					v := Value(rng.Intn(values))
					c.Insert(ft, v)
					m.Insert(ft, v)
				case op < 75:
					cd := c.Delete(ft)
					md := m.Delete(ft)
					if cd != md {
						t.Fatalf("step %d: Delete compact=%v map=%v", step, cd, md)
					}
				case op < 97:
					cv, chit := c.LookupMaybe(ft)
					mv, mhit := m.LookupMaybe(ft)
					if chit != mhit || (chit && cv != mv) {
						t.Fatalf("step %d: lookup compact=(%d,%v) map=(%d,%v)", step, cv, chit, mv, mhit)
					}
				default:
					v := Value(rng.Intn(values))
					c.EvictValue(v)
					m.EvictValue(v)
				}
			}
			checkAgree(t, c, m, universe, "final")
		})
	}
}

// TestTableInterfaceParity runs the same scripted sequence through both
// implementations via the Table interface, pinning that the interface
// alone is enough to swap them.
func TestTableInterfaceParity(t *testing.T) {
	impls := []struct {
		name string
		tab  Table
	}{
		{"compact", NewCompact(8)},
		{"map", NewMap()},
	}
	for _, impl := range impls {
		tab := impl.tab
		for i := 0; i < 64; i++ {
			tab.Insert(tupleN(i), Value(i%5))
		}
		tab.EvictValue(3)
		tab.Delete(tupleN(0))
		if got, want := tab.Len(), 64-13-1; got != want {
			t.Fatalf("%s: Len=%d want %d", impl.name, got, want)
		}
		if tab.Epoch() != 1 {
			t.Fatalf("%s: Epoch=%d", impl.name, tab.Epoch())
		}
	}
}
