package flowmap

import (
	"runtime"
	"testing"

	"repro/internal/netsim"
)

// benchTuples builds the 2^20-tuple population the benchmarks share —
// the same scale as the mflow experiment's headline run.
func benchTuples(n int) []netsim.FourTuple {
	ts := make([]netsim.FourTuple, n)
	for i := range ts {
		ts[i] = tupleN(i)
	}
	return ts
}

// BenchmarkFlowmapLookup compares the compact table against the
// plain-map baseline at 2^20 resident flows: the acceptance bar is
// compact ≤ map at 0 allocs/op.
func BenchmarkFlowmapLookup(b *testing.B) {
	const n = 1 << 20
	tuples := benchTuples(n)
	run := func(b *testing.B, tab Table) {
		for i, ft := range tuples {
			tab.Insert(ft, Value(i&1023))
		}
		b.ReportAllocs()
		b.ResetTimer()
		hits := 0
		for i := 0; i < b.N; i++ {
			if _, hit := tab.LookupMaybe(tuples[i&(n-1)]); hit {
				hits++
			}
		}
		if hits != b.N {
			b.Fatalf("missed %d lookups", b.N-hits)
		}
	}
	b.Run("impl=compact", func(b *testing.B) { run(b, NewCompact(n)) })
	b.Run("impl=map", func(b *testing.B) { run(b, NewMap()) })
}

// BenchmarkFlowmapChurn measures the steady-state delete+insert cycle
// at full population — the FIN/SYN turnover cost per flow slot.
func BenchmarkFlowmapChurn(b *testing.B) {
	const n = 1 << 20
	tuples := benchTuples(n)
	c := NewCompact(n)
	for i, ft := range tuples {
		c.Insert(ft, Value(i&1023))
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ft := tuples[i&(n-1)]
		c.Delete(ft)
		c.Insert(ft, Value(i&1023))
	}
}

// BenchmarkFlowmapMemPerFlow reports the bytes-per-flow of each
// implementation at 2^20 resident entries, measured from live heap the
// way the mflow experiment measures its fleet.
func BenchmarkFlowmapMemPerFlow(b *testing.B) {
	const n = 1 << 20
	tuples := benchTuples(n)
	heap := func() uint64 {
		runtime.GC()
		var ms runtime.MemStats
		runtime.ReadMemStats(&ms)
		return ms.HeapAlloc
	}
	b.Run("impl=compact", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			base := heap()
			c := NewCompact(n)
			for j, ft := range tuples {
				c.Insert(ft, Value(j&1023))
			}
			b.ReportMetric(float64(int64(heap())-int64(base))/n, "bytes/flow")
			runtime.KeepAlive(c)
		}
	})
	b.Run("impl=map", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			base := heap()
			m := NewMap()
			for j, ft := range tuples {
				m.Insert(ft, Value(j&1023))
			}
			b.ReportMetric(float64(int64(heap())-int64(base))/n, "bytes/flow")
			runtime.KeepAlive(m)
		}
	})
}
