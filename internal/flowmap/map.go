package flowmap

import "repro/internal/netsim"

// Map is the plain-Go-map reference implementation of Table: exact
// (its LookupMaybe never false-hits, since the full tuple is the key)
// and linear in memory. It is retained as the differential oracle for
// Compact — the flowmap analogue of rules.SelectLinear and
// memcache.ReferenceSession — and as a drop-in for callers that want
// map semantics at small scale.
type Map struct {
	m     map[netsim.FourTuple]Value
	epoch uint64
}

// NewMap returns an empty reference table.
func NewMap() *Map {
	return &Map{m: make(map[netsim.FourTuple]Value)}
}

// Insert maps ft to v.
func (t *Map) Insert(ft netsim.FourTuple, v Value) bool {
	t.m[ft] = v
	return true
}

// LookupMaybe returns the value stored for ft. For Map the "maybe" is
// exact: a hit is returned only for inserted tuples.
func (t *Map) LookupMaybe(ft netsim.FourTuple) (Value, bool) {
	v, ok := t.m[ft]
	return v, ok
}

// Delete removes ft's entry.
func (t *Map) Delete(ft netsim.FourTuple) bool {
	if _, ok := t.m[ft]; !ok {
		return false
	}
	delete(t.m, ft)
	return true
}

// EvictValue removes every entry mapping to v — the O(n) scan the
// compact structure's generation bump replaces.
func (t *Map) EvictValue(v Value) {
	t.epoch++
	for ft, have := range t.m {
		if have == v {
			delete(t.m, ft)
		}
	}
}

// Len returns the number of live entries.
func (t *Map) Len() int { return len(t.m) }

// Epoch returns the eviction-bump count.
func (t *Map) Epoch() uint64 { return t.epoch }
