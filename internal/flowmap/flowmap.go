// Package flowmap provides compact, versioned flow-mapping tables: a
// four-tuple maps to a small Value in a few bytes per live flow, with
// O(1) insert/lookup/delete, zero steady-state allocation, and O(1)
// eviction of every entry holding a given value (an epoch bump).
//
// The package exists because the load balancer's hot layers — the L4
// mux affinity tables and the L7 instance flow index — otherwise keep
// one Go map entry per live flow, so memory and GC pressure scale
// linearly with concurrent flows. Concury (PAPERS.md) shows the
// flow→backend mapping of a software LB fits in a few bytes per flow
// if the structure is allowed to answer "maybe" for tuples it never
// saw; this package adopts that contract explicitly.
//
// # The false-hit contract
//
// Compact keeps a 64-bit hash tag per entry instead of the full
// 12-byte tuple, so two distinct tuples can alias. LookupMaybe is
// named for that: a true result is authoritative for every tuple that
// was inserted and not deleted or evicted, but a tuple that was NEVER
// inserted may still return a (valid-looking) value. Callers fall into
// two camps:
//
//   - Callers holding richer per-flow state (core.Instance keeps the
//     *flow objects) must validate a maybe-hit against that state and
//     treat a mismatch as a miss. This restores exactness.
//   - Callers with no richer state (an L4 mux affinity table) must be
//     positioned so a false hit is benign — for a mux it merely routes
//     an unknown flow with affinity-grade stickiness, which is the
//     Concury discipline: correctness-critical decisions (new
//     connections) never reach the compact lookup.
//
// # Versioning
//
// Values are versioned: EvictValue(v) atomically invalidates every
// entry currently mapping to v — an O(1) generation bump, not an
// O(flows) scan — and increments the table epoch. Entries inserted
// after the bump are valid. This is what turns "instance X died, drop
// its affinity entries" from a scan into a constant-time operation,
// and what keeps lookups against the surviving entries consistent
// while a backend-set change installs: an entry either still matches
// its value's current generation (old assignment, still routable) or
// misses cleanly.
package flowmap

import "repro/internal/netsim"

// Value is the small per-flow payload a Table stores: a backend index,
// an instance-pair index, or a slot index into a caller-owned store.
type Value = uint32

// Table is the flow-mapping contract shared by the compact structure
// and the plain-map reference oracle.
type Table interface {
	// Insert maps ft to v, overwriting any existing entry for ft.
	// It reports false only when the implementation cannot place the
	// entry (Compact grows instead, so it always reports true).
	Insert(ft netsim.FourTuple, v Value) bool

	// LookupMaybe returns the value stored for ft. The result is
	// authoritative for inserted tuples; for tuples never inserted a
	// compact implementation MAY return a false hit (see the package
	// comment). Callers must validate or be positioned so a false hit
	// is benign — the method name is the reminder.
	LookupMaybe(ft netsim.FourTuple) (Value, bool)

	// Delete removes ft's entry, reporting whether a live entry was
	// removed. Deleting a tuple that was never inserted may, with the
	// same aliasing probability as a false hit, remove another tuple's
	// entry — only delete tuples you inserted.
	Delete(ft netsim.FourTuple) bool

	// EvictValue invalidates every live entry currently mapping to v
	// in O(1) and bumps the table epoch. Entries inserted afterwards
	// with the same value are valid.
	EvictValue(v Value)

	// Len returns the number of live entries (insertions minus
	// deletions minus entries invalidated by EvictValue).
	Len() int

	// Epoch returns the number of eviction bumps applied, a version
	// counter observers can use to detect backend-set changes.
	Epoch() uint64
}

// Compile-time interface checks.
var (
	_ Table = (*Compact)(nil)
	_ Table = (*Map)(nil)
)

// hashTuple digests a tuple into the 64-bit tag Compact stores: FNV-1a
// over the tuple words followed by the splitmix64 finalizer (plain FNV
// spreads the small differences typical of tuples — sequential ports,
// adjacent IPs — poorly). Zero is reserved for empty slots.
func hashTuple(ft netsim.FourTuple) uint64 {
	const offset, prime = 14695981039346656037, 1099511628211
	h := uint64(offset)
	h = (h ^ uint64(ft.Src.IP)) * prime
	h = (h ^ uint64(ft.Src.Port)) * prime
	h = (h ^ uint64(ft.Dst.IP)) * prime
	h = (h ^ uint64(ft.Dst.Port)) * prime
	h ^= h >> 30
	h *= 0xbf58476d1ce4e5b9
	h ^= h >> 27
	h *= 0x94d049bb133111eb
	h ^= h >> 31
	if h == 0 {
		h = 0x9e3779b97f4a7c15
	}
	return h
}
