package flowmap

import "testing"

// TestCompactZeroAllocSteadyState pins the allocation budget of the
// hot operations: once the table has reached its working size and the
// value range has been seen, insert, lookup, delete, and eviction must
// not allocate. This is what makes the structure safe on the per-packet
// path.
func TestCompactZeroAllocSteadyState(t *testing.T) {
	const n = 1 << 14
	c := NewCompact(n)
	for i := 0; i < n; i++ {
		c.Insert(tupleN(i), Value(i&63))
	}

	i := 0
	if avg := testing.AllocsPerRun(1000, func() {
		ft := tupleN(i & (n - 1))
		c.Delete(ft)
		c.Insert(ft, Value(i&63))
		if _, hit := c.LookupMaybe(ft); !hit {
			t.Fatal("steady-state lookup missed")
		}
		i++
	}); avg != 0 {
		t.Fatalf("steady-state delete/insert/lookup allocates %.1f/op", avg)
	}

	if avg := testing.AllocsPerRun(100, func() {
		c.EvictValue(Value(i & 63))
		i++
	}); avg != 0 {
		t.Fatalf("EvictValue allocates %.1f/op", avg)
	}
}
