package tcp

import (
	"bytes"
	"fmt"
	"testing"

	"repro/internal/netsim"
)

// TestTortureTransfer runs bulk transfers under combined impairments —
// heavy jitter (which reorders segments in flight), random loss on both
// data and control packets, and duplication — and asserts byte-exact
// delivery. This exercises the reassembly and retransmission machinery
// far beyond the targeted unit tests.
func TestTortureTransfer(t *testing.T) {
	cases := []struct {
		name   string
		jitter float64
		loss   float64
		dup    float64
		size   int
	}{
		{"reorder-only", 0.9, 0, 0, 120 * 1024},
		{"loss-only", 0, 0.03, 0, 120 * 1024},
		{"dup-only", 0, 0, 0.05, 120 * 1024},
		{"everything", 0.7, 0.02, 0.03, 150 * 1024},
	}
	for _, tc := range cases {
		tc := tc
		t.Run(tc.name, func(t *testing.T) {
			for seed := int64(1); seed <= 3; seed++ {
				runTorture(t, seed, tc.jitter, tc.loss, tc.dup, tc.size)
			}
		})
	}
}

func runTorture(t *testing.T, seed int64, jitter, loss, dup float64, size int) {
	t.Helper()
	n := netsim.New(seed)
	n.SetJitter(jitter)
	rng := n.Rand()
	if loss > 0 {
		n.SetDropFunc(func(pkt *netsim.Packet) bool { return rng.Float64() < loss })
	}
	if dup > 0 {
		seen := map[*netsim.Packet]bool{}
		n.SetTracer(func(ev netsim.TraceEvent) {
			if !ev.Dropped && !seen[ev.Packet] && rng.Float64() < dup {
				clone := ev.Packet.Clone()
				seen[clone] = true
				n.Send(clone)
			}
		})
	}
	client := netsim.NewHost(n, netsim.IPv4(100, 0, 0, 1))
	server := netsim.NewHost(n, netsim.IPv4(10, 0, 0, 1))

	payload := make([]byte, size)
	for i := range payload {
		payload[i] = byte(i*7 + int(seed))
	}
	var got bytes.Buffer
	var echoed bytes.Buffer
	Listen(server, 80, func(c *Conn) Callbacks {
		return Callbacks{
			OnData: func(c *Conn, d []byte) {
				echoed.Write(d)
				c.Write(d)
			},
			OnPeerClose: func(c *Conn) { c.Close() },
		}
	}, DefaultConfig())
	done := false
	Dial(client, netsim.HostPort{IP: server.IP(), Port: 80}, Callbacks{
		OnEstablished: func(c *Conn) { c.Write(payload); c.Close() },
		OnData:        func(c *Conn, d []byte) { got.Write(d) },
		OnPeerClose:   func(c *Conn) { done = true },
	}, DefaultConfig())
	n.RunUntilIdle(5_000_000)
	if !bytes.Equal(echoed.Bytes(), payload) {
		t.Fatalf("seed %d: server stream corrupted (%d vs %d bytes, first diff at %d)",
			seed, echoed.Len(), len(payload), firstDiff(echoed.Bytes(), payload))
	}
	if !bytes.Equal(got.Bytes(), payload) {
		t.Fatalf("seed %d: echo stream corrupted (%d vs %d bytes, first diff at %d)",
			seed, got.Len(), len(payload), firstDiff(got.Bytes(), payload))
	}
	_ = done // under loss the final FIN exchange may retry past the event cap; data integrity is the invariant
}

func firstDiff(a, b []byte) int {
	n := len(a)
	if len(b) < n {
		n = len(b)
	}
	for i := 0; i < n; i++ {
		if a[i] != b[i] {
			return i
		}
	}
	return n
}

// TestTortureManyConnectionsUnderLoss opens many concurrent connections
// through a lossy network; each must deliver its distinct payload intact.
func TestTortureManyConnectionsUnderLoss(t *testing.T) {
	n := netsim.New(9)
	rng := n.Rand()
	n.SetDropFunc(func(pkt *netsim.Packet) bool { return rng.Float64() < 0.02 })
	server := netsim.NewHost(n, netsim.IPv4(10, 0, 0, 1))
	results := map[string][]byte{}
	Listen(server, 80, func(c *Conn) Callbacks {
		var buf bytes.Buffer
		return Callbacks{
			OnData:      func(c *Conn, d []byte) { buf.Write(d) },
			OnPeerClose: func(c *Conn) { results[c.RemoteAddr().String()] = buf.Bytes(); c.Close() },
		}
	}, DefaultConfig())

	const conns = 12
	payloads := map[string][]byte{}
	for i := 0; i < conns; i++ {
		client := netsim.NewHost(n, netsim.IPv4(100, 0, byte(i+1), 1))
		payload := []byte(fmt.Sprintf("conn-%d:", i))
		payload = append(payload, bytes.Repeat([]byte{byte(i)}, 20_000)...)
		var c *Conn
		c = Dial(client, netsim.HostPort{IP: server.IP(), Port: 80}, Callbacks{
			OnEstablished: func(cc *Conn) { cc.Write(payload); cc.Close() },
		}, DefaultConfig())
		payloads[c.LocalAddr().String()] = payload
	}
	n.RunUntilIdle(5_000_000)
	if len(results) != conns {
		t.Fatalf("only %d/%d connections completed", len(results), conns)
	}
	for addr, want := range payloads {
		if got, ok := results[addr]; !ok || !bytes.Equal(got, want) {
			t.Fatalf("connection %s corrupted or missing (%d vs %d bytes)", addr, len(got), len(want))
		}
	}
}
