package tcp

import (
	"testing"
	"time"

	"repro/internal/netsim"
)

// BenchmarkTCPThroughput measures bulk transfer through the full TCP
// machinery: segmentation, zero-copy transmission, ACK clocking, and
// congestion-window growth, with the simulator hot path underneath.
func BenchmarkTCPThroughput(b *testing.B) {
	const chunk = 64 << 10
	n := netsim.New(42)
	sender := netsim.NewHost(n, 0x0a000001)
	receiver := netsim.NewHost(n, 0x0a000002)

	var received int
	Listen(receiver, 80, func(c *Conn) Callbacks {
		return Callbacks{OnData: func(c *Conn, d []byte) { received += len(d) }}
	}, DefaultConfig())

	conn := Dial(sender, netsim.HostPort{IP: receiver.IP(), Port: 80}, Callbacks{}, DefaultConfig())
	n.RunUntilIdle(100) // complete the handshake

	payload := make([]byte, chunk)
	for i := range payload {
		payload[i] = byte(i)
	}

	b.SetBytes(chunk)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		conn.Write(payload)
		n.RunUntilIdle(1 << 20)
	}
	b.StopTimer()
	if received != b.N*chunk {
		b.Fatalf("received %d bytes, want %d", received, b.N*chunk)
	}
}

// TestDataRoundTripAllocBudget locks in the segment fast path: once the
// connection is warm, pushing one MSS-sized write through send, deliver,
// receive, and the returning ACK must stay within a tight allocation
// budget (sndBuf growth is amortized; the per-packet path itself is
// pool-backed and allocation-free).
func TestDataRoundTripAllocBudget(t *testing.T) {
	n := netsim.New(7)
	sender := netsim.NewHost(n, 0x0a000001)
	receiver := netsim.NewHost(n, 0x0a000002)
	Listen(receiver, 80, func(c *Conn) Callbacks { return Callbacks{} }, DefaultConfig())
	conn := Dial(sender, netsim.HostPort{IP: receiver.IP(), Port: 80}, Callbacks{}, DefaultConfig())
	n.RunUntilIdle(100)
	if conn.State() != StateEstablished {
		t.Fatalf("state = %v, want ESTABLISHED", conn.State())
	}

	payload := make([]byte, 1460)
	// Warm up: grow sndBuf capacity and the event/packet pools.
	for i := 0; i < 64; i++ {
		conn.Write(payload)
		n.RunUntilIdle(1 << 16)
	}
	allocs := testing.AllocsPerRun(100, func() {
		conn.Write(payload)
		n.RunUntilIdle(1 << 16)
	})
	// One segment round trip is: data packet out, delivery, ACK packet
	// back, delivery, plus one rtx timer arm/cancel — all pool-backed.
	// sndBuf append can still reallocate occasionally as the buffer
	// slides, so allow a fraction of an alloc per run rather than zero.
	if allocs > 1 {
		t.Fatalf("data round trip allocates %.2f objects/op, want <= 1", allocs)
	}
}

// BenchmarkTCPBatchRx measures the wire-level cost per delivered packet
// of bulk transfer with batch dispatch on (mode=batch: trains coalesce
// and runs of bare ACKs collapse into one cumulative applyAck) and with
// the scalar reference (mode=scalar: SetCoalescing(false), one event
// and one HandleSegment per packet). The wire streams are identical by
// construction — the differential fuzzer pins that — so ns/seg compares
// the same packet sequence under the two dispatch regimes. bench.sh
// records these as tcp_batch_rx_ns_seg and tcp_scalar_rx_ns_seg.
func BenchmarkTCPBatchRx(b *testing.B) {
	for _, mode := range []string{"batch", "scalar"} {
		b.Run("mode="+mode, func(b *testing.B) {
			const chunk = 64 << 10
			n := netsim.New(42)
			n.SetCoalescing(mode == "batch")
			sender := netsim.NewHost(n, 0x0a000001)
			receiver := netsim.NewHost(n, 0x0a000002)

			var received int
			Listen(receiver, 80, func(c *Conn) Callbacks {
				return Callbacks{OnData: func(c *Conn, d []byte) { received += len(d) }}
			}, DefaultConfig())

			conn := Dial(sender, netsim.HostPort{IP: receiver.IP(), Port: 80}, Callbacks{}, DefaultConfig())
			n.RunUntilIdle(100) // complete the handshake

			payload := make([]byte, chunk)
			for i := range payload {
				payload[i] = byte(i)
			}

			b.ReportAllocs()
			b.ResetTimer()
			base := n.Delivered
			start := time.Now()
			for i := 0; i < b.N; i++ {
				conn.Write(payload)
				n.RunUntilIdle(1 << 20)
			}
			elapsed := time.Since(start)
			b.StopTimer()
			if received != b.N*chunk {
				b.Fatalf("received %d bytes, want %d", received, b.N*chunk)
			}
			if segs := n.Delivered - base; segs > 0 {
				b.ReportMetric(float64(elapsed.Nanoseconds())/float64(segs), "ns/seg")
			}
		})
	}
}
