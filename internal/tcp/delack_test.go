package tcp

import (
	"bytes"
	"testing"
	"time"

	"repro/internal/netsim"
)

// wireRec is one delivered packet, snapshotted by the tracer (packets
// themselves are pooled and must not be retained).
type wireRec struct {
	at       time.Duration
	src, dst netsim.HostPort
	flags    netsim.TCPFlags
	payload  int
	ack      uint32
}

func attachWireLog(n *netsim.Network) *[]wireRec {
	log := &[]wireRec{}
	n.SetTracer(func(ev netsim.TraceEvent) {
		if ev.Dropped {
			return
		}
		p := ev.Packet
		*log = append(*log, wireRec{at: ev.At, src: p.Src, dst: p.Dst, flags: p.Flags, payload: len(p.Payload), ack: p.Ack})
	})
	return log
}

func bareAcks(log []wireRec, from netsim.IP) int {
	n := 0
	for _, r := range log {
		if r.src.IP == from && r.flags == netsim.FlagACK && r.payload == 0 {
			n++
		}
	}
	return n
}

// With DelayedAck, a 4-MSS burst ACKs twice (every 2nd segment; the
// last is a PSH boundary and ACKs immediately) instead of 4 times, and
// the elided ACKs are counted. Data delivery is unchanged.
func TestDelayedAckElidesAlternateAcks(t *testing.T) {
	run := func(delack bool) (acks, elided int, got string) {
		cfg := DefaultConfig()
		cfg.DelayedAck = delack
		p := newPair(1)
		log := attachWireLog(p.net)
		var buf bytes.Buffer
		var sconn *Conn
		Listen(p.server, 80, func(c *Conn) Callbacks {
			sconn = c
			return Callbacks{OnData: func(c *Conn, d []byte) { buf.Write(d) }}
		}, cfg)
		payload := bytes.Repeat([]byte("x"), 4*1460)
		Dial(p.client, netsim.HostPort{IP: serverIP, Port: 80}, Callbacks{
			OnEstablished: func(c *Conn) { c.Write(payload) },
		}, DefaultConfig())
		p.net.RunUntilIdle(100000)
		return bareAcks(*log, serverIP), sconn.AcksElided, buf.String()
	}

	acksOff, elidedOff, gotOff := run(false)
	acksOn, elidedOn, gotOn := run(true)
	if gotOff != gotOn || len(gotOn) != 4*1460 {
		t.Fatalf("payload mismatch: off=%d on=%d bytes", len(gotOff), len(gotOn))
	}
	if acksOff != 4 || elidedOff != 0 {
		t.Fatalf("delack off: %d bare ACKs (want 4), %d elided (want 0)", acksOff, elidedOff)
	}
	if acksOn != 2 || elidedOn != 2 {
		t.Fatalf("delack on: %d bare ACKs (want 2), %d elided (want 2)", acksOn, elidedOn)
	}
}

// A PSH boundary ACKs immediately under DelayedAck: a single-segment
// request sees exactly one prompt ACK, no AckDelay stall and no
// retransmit from the sender.
func TestDelayedAckPshBoundaryImmediate(t *testing.T) {
	cfg := DefaultConfig()
	cfg.DelayedAck = true
	p := newPair(1)
	log := attachWireLog(p.net)
	var sconn *Conn
	Listen(p.server, 80, func(c *Conn) Callbacks {
		sconn = c
		return Callbacks{}
	}, cfg)
	cl := Dial(p.client, netsim.HostPort{IP: serverIP, Port: 80}, Callbacks{
		OnEstablished: func(c *Conn) { c.Write(bytes.Repeat([]byte("a"), 1460)) },
	}, DefaultConfig())
	p.net.RunUntilIdle(100000)
	if cl.Retransmits != 0 {
		t.Fatalf("client retransmitted %d times", cl.Retransmits)
	}
	if got := bareAcks(*log, serverIP); got != 1 {
		t.Fatalf("server sent %d bare ACKs, want 1 immediate", got)
	}
	if sconn.AcksElided != 0 {
		t.Fatalf("AcksElided = %d, want 0", sconn.AcksElided)
	}
	// The data ACK must be sent the instant the segment arrives: 30ms WAN
	// hops put the handshake at 60ms, data at the server at 90ms, and the
	// immediate ACK back at the client at 120ms. A deferred ACK would
	// arrive at 160ms.
	for _, r := range *log {
		if r.src.IP == serverIP && r.flags == netsim.FlagACK && r.payload == 0 && r.ack != 0 {
			if r.at > 130*time.Millisecond {
				t.Fatalf("data ACK delivered at %v — stalled by AckDelay", r.at)
			}
		}
	}
}

// scripted is a raw port handler standing in for a remote TCP stack, so
// tests can inject arbitrary segments (out of order, no PSH) at the
// conn under test and log its responses.
type scripted struct {
	h   *netsim.Host
	out []wireRec
}

func (s *scripted) HandleSegment(pkt *netsim.Packet) {
	s.out = append(s.out, wireRec{
		at: s.h.Network().Now(), src: pkt.Src, dst: pkt.Dst,
		flags: pkt.Flags, payload: len(pkt.Payload), ack: pkt.Ack,
	})
	s.h.Network().ReleasePacket(pkt)
}

func (s *scripted) send(dst netsim.HostPort, flags netsim.TCPFlags, seq, ack uint32, payload []byte) {
	n := s.h.Network()
	pkt := n.AllocPacket()
	pkt.Src = netsim.HostPort{IP: s.h.IP(), Port: 80}
	pkt.Dst = dst
	pkt.Flags, pkt.Seq, pkt.Ack = flags, seq, ack
	pkt.Window = 1 << 20
	pkt.Payload = payload
	n.Send(pkt)
}

// newScriptedConn dials a conn (with cfg) against a scripted peer over
// 1ms links and completes the handshake (established at t=3ms, peer ISN
// 5000, so the first in-order data byte is seq 5001). The peer's log is
// cleared before returning at t=4ms.
func newScriptedConn(t *testing.T, cfg Config) (*netsim.Network, *Conn, *scripted) {
	t.Helper()
	n := netsim.New(1)
	n.SetLatency(func(netsim.IP, netsim.IP) time.Duration { return time.Millisecond })
	ch := netsim.NewHost(n, clientIP)
	sh := netsim.NewHost(n, serverIP)
	sc := &scripted{h: sh}
	sh.Listen(80, sc)
	c := Dial(ch, netsim.HostPort{IP: serverIP, Port: 80}, Callbacks{}, cfg)
	n.RunFor(2 * time.Millisecond)
	if len(sc.out) != 1 || !sc.out[0].flags.Has(netsim.FlagSYN) {
		t.Fatalf("expected SYN, got %v", sc.out)
	}
	sc.send(c.LocalAddr(), netsim.FlagSYN|netsim.FlagACK, 5000, c.ISN()+1, nil)
	n.RunFor(2 * time.Millisecond)
	if c.State() != StateEstablished {
		t.Fatalf("conn state %v after handshake", c.State())
	}
	sc.out = sc.out[:0]
	return n, c, sc
}

// An in-order segment without PSH defers its ACK; the AckDelay timer
// flushes it. The flush is a wire ACK, not an elision.
func TestDelayedAckDeferThenTimerFlush(t *testing.T) {
	cfg := DefaultConfig()
	cfg.DelayedAck = true
	cfg.AckDelay = 40 * time.Millisecond
	n, c, sc := newScriptedConn(t, cfg)

	data := bytes.Repeat([]byte("d"), 1460)
	sc.send(c.LocalAddr(), netsim.FlagACK, 5001, c.ISN()+1, data) // arrives t=5ms, deferred
	n.RunFor(35 * time.Millisecond)                               // t=39ms < 5+40
	if len(sc.out) != 0 {
		t.Fatalf("ACK sent before AckDelay elapsed: %v", sc.out)
	}
	n.RunFor(20 * time.Millisecond) // past the 45ms flush
	if len(sc.out) != 1 || sc.out[0].ack != 5001+1460 {
		t.Fatalf("want one flushed ACK of %d, got %v", 5001+1460, sc.out)
	}
	if c.AcksElided != 0 {
		t.Fatalf("timer flush counted as elided: %d", c.AcksElided)
	}
}

// The second in-order segment forces an immediate cumulative ACK (RFC
// 1122: at least every second segment), eliding the first's.
func TestDelayedAckSecondSegmentImmediate(t *testing.T) {
	cfg := DefaultConfig()
	cfg.DelayedAck = true
	n, c, sc := newScriptedConn(t, cfg)

	data := bytes.Repeat([]byte("d"), 1460)
	sc.send(c.LocalAddr(), netsim.FlagACK, 5001, c.ISN()+1, data)
	sc.send(c.LocalAddr(), netsim.FlagACK, 5001+1460, c.ISN()+1, data)
	n.RunFor(10 * time.Millisecond) // well under DefaultAckDelay
	if len(sc.out) != 1 || sc.out[0].ack != 5001+2*1460 {
		t.Fatalf("want one immediate cumulative ACK of %d, got %v", 5001+2*1460, sc.out)
	}
	if c.AcksElided != 1 {
		t.Fatalf("AcksElided = %d, want 1", c.AcksElided)
	}
	if c.delackTimer.Active() {
		t.Fatal("delack timer still armed after immediate ACK")
	}
}

// An out-of-order segment must produce an immediate duplicate ACK —
// delaying it would stall the sender's loss recovery.
func TestDelayedAckOutOfOrderImmediate(t *testing.T) {
	cfg := DefaultConfig()
	cfg.DelayedAck = true
	n, c, sc := newScriptedConn(t, cfg)

	data := bytes.Repeat([]byte("d"), 1460)
	// Skip the first segment: seq 5001+1460 arrives with 5001 missing.
	sc.send(c.LocalAddr(), netsim.FlagACK, 5001+1460, c.ISN()+1, data)
	n.RunFor(10 * time.Millisecond)
	if len(sc.out) != 1 || sc.out[0].ack != 5001 {
		t.Fatalf("want immediate dup ACK of 5001, got %v", sc.out)
	}
}

// A FIN is ACKed immediately even mid-deferral, so teardown is never
// stretched by AckDelay.
func TestDelayedAckFinImmediate(t *testing.T) {
	cfg := DefaultConfig()
	cfg.DelayedAck = true
	n, c, sc := newScriptedConn(t, cfg)

	data := bytes.Repeat([]byte("d"), 1460)
	sc.send(c.LocalAddr(), netsim.FlagACK, 5001, c.ISN()+1, data) // deferred on arrival
	sc.send(c.LocalAddr(), netsim.FlagFIN|netsim.FlagACK, 5001+1460, c.ISN()+1, nil)
	n.RunFor(10 * time.Millisecond)
	if len(sc.out) != 1 || sc.out[0].ack != 5001+1460+1 {
		t.Fatalf("want immediate ACK past FIN, got %v", sc.out)
	}
	if c.AcksElided != 1 {
		t.Fatalf("AcksElided = %d, want 1 (data ACK subsumed by FIN ACK)", c.AcksElided)
	}
}

// IdleProbe and DelayedAck interact: the probe's bare ACK subsumes a
// pending deferred ACK (one wire packet, not two), and probing keeps
// running afterwards.
func TestDelayedAckIdleProbeNotStarved(t *testing.T) {
	cfg := DefaultConfig()
	cfg.DelayedAck = true
	cfg.AckDelay = 40 * time.Millisecond
	cfg.IdleProbe = 25 * time.Millisecond
	n, c, sc := newScriptedConn(t, cfg)

	data := bytes.Repeat([]byte("d"), 1460)
	sc.send(c.LocalAddr(), netsim.FlagACK, 5001, c.ISN()+1, data)
	// Deferred at t=5ms, delack flush due 45ms; the probe (armed at the
	// t=3ms establish) fires first at 28ms and must subsume it.
	n.RunFor(31 * time.Millisecond) // t=35ms: probe ACK delivered, flush not due
	acked := 0
	for _, r := range sc.out {
		if r.ack == 5001+1460 && r.payload == 0 {
			acked++
		}
	}
	if acked != 1 {
		t.Fatalf("want exactly 1 ACK of %d (probe subsuming deferred ack), got %d (%v)", 5001+1460, acked, sc.out)
	}
	if c.AcksElided != 1 {
		t.Fatalf("AcksElided = %d, want 1", c.AcksElided)
	}
	if c.delackTimer.Active() {
		t.Fatal("delack timer still armed after probe flush")
	}
	// Probing is not starved: another probe fires an IdleProbe later.
	before := len(sc.out)
	n.RunFor(30 * time.Millisecond)
	if len(sc.out) <= before {
		t.Fatal("idle probe starved after delack interaction")
	}
}

// GSO trains: with GSOSegs=4 a 4-MSS write goes out as one packet, the
// receiver sees identical bytes, and the train counter ticks.
func TestGSOSegmentTrain(t *testing.T) {
	clientCfg := DefaultConfig()
	clientCfg.GSOSegs = 4
	p := newPair(1)
	log := attachWireLog(p.net)
	var got bytes.Buffer
	Listen(p.server, 80, func(c *Conn) Callbacks {
		return Callbacks{OnData: func(c *Conn, d []byte) { got.Write(d) }}
	}, DefaultConfig())
	payload := bytes.Repeat([]byte("g"), 4*1460)
	cl := Dial(p.client, netsim.HostPort{IP: serverIP, Port: 80}, Callbacks{
		OnEstablished: func(c *Conn) { c.Write(payload) },
	}, clientCfg)
	p.net.RunUntilIdle(100000)
	if !bytes.Equal(got.Bytes(), payload) {
		t.Fatalf("server got %d bytes, want %d", got.Len(), len(payload))
	}
	if cl.GSOTrainsSent != 1 {
		t.Fatalf("GSOTrainsSent = %d, want 1", cl.GSOTrainsSent)
	}
	dataPkts := 0
	for _, r := range *log {
		if r.payload > 0 {
			dataPkts++
		}
	}
	if dataPkts != 1 {
		t.Fatalf("wire carried %d data packets, want 1 aggregated train", dataPkts)
	}
}

// GSO + loss + delayed ACKs: a dropped train is recovered by
// single-MSS retransmits and the transfer completes intact —
// byte-denominated rtx accounting is unaffected by trains.
func TestGSOTransferWithLoss(t *testing.T) {
	clientCfg := DefaultConfig()
	clientCfg.GSOSegs = 8
	serverCfg := DefaultConfig()
	serverCfg.DelayedAck = true
	p := newPair(7)
	dropped := false
	p.net.SetDropFunc(func(pkt *netsim.Packet) bool {
		if !dropped && len(pkt.Payload) > 1460 {
			dropped = true
			return true
		}
		return false
	})
	var got bytes.Buffer
	closed := false
	Listen(p.server, 80, func(c *Conn) Callbacks {
		return Callbacks{
			OnData:      func(c *Conn, d []byte) { got.Write(d) },
			OnPeerClose: func(c *Conn) { c.Close() },
		}
	}, serverCfg)
	payload := bytes.Repeat([]byte("L"), 64*1024)
	Dial(p.client, netsim.HostPort{IP: serverIP, Port: 80}, Callbacks{
		OnEstablished: func(c *Conn) {
			c.Write(payload)
			c.Close()
		},
		OnClose: func(c *Conn) { closed = true },
	}, clientCfg)
	p.net.RunUntilIdle(1 << 20)
	if !dropped {
		t.Fatal("drop rule never matched a train")
	}
	if !bytes.Equal(got.Bytes(), payload) {
		t.Fatalf("server got %d bytes, want %d", got.Len(), len(payload))
	}
	if !closed {
		t.Fatal("connection never closed cleanly")
	}
}
