package tcp

import (
	"repro/internal/netsim"
)

// AcceptFunc is invoked for each new inbound connection, before the
// handshake completes, and returns the callbacks to attach to it. Return
// zero Callbacks to accept silently; the Accept decision itself cannot be
// refused (use a RST responder on the host for closed ports).
type AcceptFunc func(c *Conn) Callbacks

// Listener accepts passive connections on one port of a host.
type Listener struct {
	host   *netsim.Host
	port   uint16
	cfg    Config
	accept AcceptFunc
	closed bool

	// Accepted counts handshakes begun (SYN received for a new tuple).
	Accepted int
}

// Listen starts accepting connections on port.
func Listen(h *netsim.Host, port uint16, accept AcceptFunc, cfg Config) *Listener {
	l := &Listener{host: h, port: port, cfg: cfg, accept: accept}
	h.Listen(port, l)
	return l
}

// Close stops accepting new connections. Established connections are
// unaffected.
func (l *Listener) Close() {
	if !l.closed {
		l.closed = true
		l.host.Unlisten(l.port)
	}
}

// HandleSegment implements netsim.PortHandler for segments that match no
// established connection. The listener is the packet's terminal
// consumer and releases it on return.
func (l *Listener) HandleSegment(pkt *netsim.Packet) {
	l.handleSegment(pkt)
	l.host.Network().ReleasePacket(pkt)
}

func (l *Listener) handleSegment(pkt *netsim.Packet) {
	if l.closed {
		return
	}
	if !pkt.Flags.Has(netsim.FlagSYN) || pkt.Flags.Has(netsim.FlagACK) {
		// Non-SYN to a listener: the connection it belonged to is gone.
		// Answer with RST so the peer aborts quickly (unless it *is* a RST).
		if !pkt.Flags.Has(netsim.FlagRST) {
			sendRST(l.host.Network(), pkt)
		}
		return
	}
	l.Accepted++
	c := newConn(l.host, pkt.Dst, pkt.Src, Callbacks{}, l.cfg)
	c.state = StateSynReceived
	if l.cfg.ISNKey != 0 {
		c.iss = DeterministicISN(l.cfg.ISNKey, c.local, c.remote)
	} else {
		c.iss = c.rng.Uint32()
	}
	c.sndUna = c.iss
	c.sndNxt = c.iss + 1
	c.bufSeq = c.iss + 1
	c.rcvNxt = pkt.Seq + 1
	c.cb = l.accept(c)
	l.host.Register(pkt.Dst.Port, pkt.Src, c)
	c.sendSegment(netsim.FlagSYN|netsim.FlagACK, c.iss, c.rcvNxt, nil)
	c.armRtx(c.cfg.SynRTO)
}

// sendRST answers pkt with a RST+ACK using a pooled packet.
func sendRST(n *netsim.Network, pkt *netsim.Packet) {
	rst := n.AllocPacket()
	rst.Src, rst.Dst = pkt.Dst, pkt.Src
	rst.Flags = netsim.FlagRST | netsim.FlagACK
	rst.Seq, rst.Ack = pkt.Ack, pkt.SeqEnd()
	n.Send(rst)
}

// InstallRSTResponder makes h answer segments that match no connection or
// listener with a RST, approximating kernel behaviour for closed ports.
func InstallRSTResponder(h *netsim.Host) {
	h.Default = netsim.PortHandlerFunc(func(pkt *netsim.Packet) {
		if !pkt.Flags.Has(netsim.FlagRST) {
			sendRST(h.Network(), pkt)
		}
		h.Network().ReleasePacket(pkt)
	})
}
