package tcp

import (
	"bytes"
	"fmt"
	"testing"
	"time"

	"repro/internal/netsim"
)

// diffWorld is one half of a batch/scalar differential pair: a network
// with one client host and one echo server, every wire delivery captured
// through the tracer, and every client connection retained for state
// comparison after the run.
type diffWorld struct {
	net    *netsim.Network
	client *netsim.Host
	server *netsim.Host
	cfg    Config
	wire   []string
	conns  []*Conn
	echo   bytes.Buffer // bytes echoed back across all client conns
}

func newDiffWorld(batch bool, cfgBits byte) *diffWorld {
	w := &diffWorld{net: netsim.New(7)}
	// The scalar reference: no trains, so every delivery is a separate
	// event and every segment takes the per-packet HandleSegment path.
	w.net.SetCoalescing(batch)
	w.net.SetTracer(func(ev netsim.TraceEvent) {
		p := ev.Packet
		w.wire = append(w.wire, fmt.Sprintf("t=%v %v>%v f=%v seq=%d ack=%d len=%d win=%d drop=%v",
			ev.At, p.Src, p.Dst, p.Flags, p.Seq, p.Ack, len(p.Payload), p.Window, ev.Dropped))
	})
	w.client = netsim.NewHost(w.net, clientIP)
	w.server = netsim.NewHost(w.net, serverIP)
	w.cfg = DefaultConfig()
	// Small windows and MSS make the fuzz scripts exercise multi-segment
	// bursts (the interesting batch shapes) with tiny payloads.
	w.cfg.MSS = 256
	w.cfg.InitialCwnd = 4
	w.cfg.InitialSsthresh = 8 * 256
	if cfgBits&1 != 0 {
		w.cfg.DelayedAck = true
	}
	if cfgBits&2 != 0 {
		w.cfg.GSOSegs = 4
	}
	Listen(w.server, 80, func(c *Conn) Callbacks {
		return Callbacks{
			OnData:      func(c *Conn, d []byte) { c.Write(d) },
			OnPeerClose: func(c *Conn) { c.Close() },
		}
	}, w.cfg)
	return w
}

func (w *diffWorld) dial() {
	c := Dial(w.client, netsim.HostPort{IP: serverIP, Port: 80}, Callbacks{
		OnData: func(c *Conn, d []byte) { w.echo.Write(d) },
	}, w.cfg)
	w.conns = append(w.conns, c)
}

// connState flattens the comparable state of a Conn — protocol variables
// and stats, not timers or buffers — into one string.
func connState(c *Conn) string {
	return fmt.Sprintf("st=%v una=%d nxt=%d rcv=%d cwnd=%d ssth=%d pw=%d finQ=%v finS=%v peerFin=%v rtx=%d sent=%d recv=%d elided=%d gso=%d",
		c.state, c.sndUna-c.iss, c.sndNxt-c.iss, c.rcvNxt, c.cwnd, c.ssthresh, c.peerWnd,
		c.finQueued, c.finSent, c.peerFin, c.Retransmits, c.BytesSent, c.BytesRecv,
		c.AcksElided, c.GSOTrainsSent)
}

// FuzzBatchDispatchDifferential drives two identical TCP worlds through
// the same script — one with train coalescing and batch dispatch (the
// default), one with SetCoalescing(false), the scalar reference — and
// requires a byte-identical wire log, identical Executed/Pending counts,
// identical echoed payloads, and identical final connection state. This
// is the oracle pinning the batch receive path (Host.HandleBatch →
// Conn.HandleSegmentBatch → processAckRun) to scalar semantics.
//
// The first script byte selects the configuration (bit 0: DelayedAck,
// bit 1: GSO segment trains); the rest are ops: write a payload to one
// of the open connections, dial another connection, close or abort one,
// run for a bounded slice of virtual time, or drain. Ops advance time
// only via time-bounded runs and full drains — never Step — because a
// single Step executes a whole train in batch mode but one delivery in
// scalar mode, so injecting an op "after one step" would compare the two
// modes at different logical points. That is a property of Tier A train
// records (one event per train), not of batch dispatch.
func FuzzBatchDispatchDifferential(f *testing.F) {
	f.Add([]byte{0, 8, 16, 1, 2, 3, 16, 10})      // dial, drain, writes, close
	f.Add([]byte{1, 8, 16, 3, 3, 3, 16, 10, 16})  // delayed ACKs
	f.Add([]byte{2, 8, 16, 3, 7, 3, 16, 10, 16})  // GSO trains
	f.Add([]byte{3, 8, 9, 16, 3, 7, 16, 10, 11})  // both, two conns, abort
	f.Add([]byte{0, 8, 3, 3, 3, 3, 3, 3, 16, 10}) // write burst before established
	f.Add([]byte{2, 8, 16, 7, 12, 12, 7, 16, 10}) // time-sliced runs between bursts
	f.Fuzz(func(t *testing.T, script []byte) {
		if len(script) == 0 {
			return
		}
		worlds := [2]*diffWorld{newDiffWorld(true, script[0]), newDiffWorld(false, script[0])}
		sizes := []int{1, 137, 256, 1000}
		for i, op := range script[1:] {
			for _, w := range worlds {
				switch {
				case op < 8: // write to a conn: bits 0-1 size, bit 2 conn choice
					if len(w.conns) == 0 {
						continue
					}
					c := w.conns[int(op>>2)%len(w.conns)]
					payload := bytes.Repeat([]byte{byte(i)}, sizes[op&3])
					c.Write(payload)
				case op < 10: // dial another connection (bounded)
					if len(w.conns) < 4 {
						w.dial()
					}
				case op == 10: // close the newest conn
					if len(w.conns) > 0 {
						w.conns[len(w.conns)-1].Close()
					}
				case op == 11: // abort the oldest conn
					if len(w.conns) > 0 {
						w.conns[0].Abort()
					}
				case op < 14: // run a bounded slice of virtual time
					w.net.Run(w.net.Now() + time.Duration(op-11)*200*time.Microsecond)
				default: // drain
					w.net.RunUntilIdle(1 << 16)
				}
			}
		}
		for _, w := range worlds {
			w.net.RunUntilIdle(1 << 20)
		}
		ba, ref := worlds[0], worlds[1]
		if ba.net.Executed() != ref.net.Executed() || ba.net.Pending() != ref.net.Pending() {
			t.Fatalf("counts: batch exec=%d pend=%d, scalar exec=%d pend=%d",
				ba.net.Executed(), ba.net.Pending(), ref.net.Executed(), ref.net.Pending())
		}
		if len(ba.wire) != len(ref.wire) {
			t.Fatalf("wire log length: batch=%d scalar=%d\nbatch tail: %v\nscalar tail: %v",
				len(ba.wire), len(ref.wire), tail(ba.wire, 5), tail(ref.wire, 5))
		}
		for i := range ba.wire {
			if ba.wire[i] != ref.wire[i] {
				t.Fatalf("wire event %d:\nbatch:  %s\nscalar: %s", i, ba.wire[i], ref.wire[i])
			}
		}
		if !bytes.Equal(ba.echo.Bytes(), ref.echo.Bytes()) {
			t.Fatalf("echoed bytes differ: batch=%d scalar=%d", ba.echo.Len(), ref.echo.Len())
		}
		if len(ba.conns) != len(ref.conns) {
			t.Fatalf("conn count: batch=%d scalar=%d", len(ba.conns), len(ref.conns))
		}
		for i := range ba.conns {
			if got, want := connState(ba.conns[i]), connState(ref.conns[i]); got != want {
				t.Fatalf("conn %d state:\nbatch:  %s\nscalar: %s", i, got, want)
			}
		}
	})
}

func tail(s []string, n int) []string {
	if len(s) > n {
		return s[len(s)-n:]
	}
	return s
}

// TestShardedBatchIngest runs bulk TCP transfers between hosts spread
// across 4 shards, so cross-shard handoff bursts ingest as trains and
// take the batch dispatch path (Host.HandleBatch) on the receiving
// shard. Run under -race in CI, it checks that batched ingest introduces
// no cross-shard sharing: each run is processed entirely on the shard
// that owns the destination host.
func TestShardedBatchIngest(t *testing.T) {
	const shards = 4
	const pairs = 8
	const transfer = 64 << 10

	sn := netsim.NewSharded(11, shards)
	defer sn.Close()

	cfg := DefaultConfig()
	cfg.GSOSegs = 4 // bigger bursts, longer trains across the handoff

	done := make([]bool, pairs)
	var got [pairs]bytes.Buffer
	for i := 0; i < pairs; i++ {
		i := i
		// Client and server deliberately on different shards so every
		// data/ACK burst crosses a handoff queue.
		cShard, sShard := i%shards, (i+1)%shards
		client := netsim.NewHost(sn.Shard(cShard), netsim.IPv4(100, 0, 1, byte(i+1)))
		server := netsim.NewHost(sn.Shard(sShard), netsim.IPv4(10, 0, 1, byte(i+1)))
		Listen(server, 80, func(c *Conn) Callbacks {
			return Callbacks{
				OnData:      func(c *Conn, d []byte) { got[i].Write(d) },
				OnPeerClose: func(c *Conn) { c.Close() },
			}
		}, cfg)
		payload := bytes.Repeat([]byte{byte(i + 1)}, transfer)
		Dial(client, netsim.HostPort{IP: server.IP(), Port: 80}, Callbacks{
			OnEstablished: func(c *Conn) {
				c.Write(payload)
				c.Close()
			},
			OnClose: func(c *Conn) { done[i] = true },
		}, cfg)
	}

	sn.RunUntilIdle(1 << 22)

	for i := 0; i < pairs; i++ {
		if !done[i] {
			t.Fatalf("pair %d: connection never closed", i)
		}
		if got[i].Len() != transfer {
			t.Fatalf("pair %d: received %d bytes, want %d", i, got[i].Len(), transfer)
		}
	}
	if sn.BatchRuns() == 0 {
		t.Fatalf("no batched runs dispatched; ingest trains never reached HandleBatch: %s", sn.String())
	}
	if sn.Pending() != 0 {
		t.Fatalf("pending events after drain: %s", sn.String())
	}
}
