// Package tcp implements a userspace TCP endpoint on top of the netsim
// packet network: three-way handshake, cumulative acknowledgments,
// out-of-order reassembly, retransmission with exponential backoff, slow
// start / congestion avoidance, and FIN/RST teardown.
//
// It exists because Yoda's whole premise is packet-level: the load
// balancer hand-crafts segments and rewrites sequence numbers, so the
// clients and backend servers it talks to must run a real TCP state
// machine for the recovery experiments to mean anything. The
// implementation favours clarity over completeness (no SACK, no window
// scaling; RFC 1122 delayed ACKs and GSO-style segment trains are
// opt-in via Config) but is faithful where the paper depends on
// behaviour: retransmission timing (first data retransmit at the base
// RTO, doubling thereafter; SYN retransmit at 3 s as on Ubuntu) and
// duplicate-segment suppression at the receiver.
package tcp

import (
	"errors"
	"fmt"
	"math/rand"
	"sort"
	"time"

	"repro/internal/netsim"
)

// Config carries the tunables of an endpoint. The zero value is not
// usable; call DefaultConfig.
type Config struct {
	MSS             int           // maximum segment payload bytes
	InitialCwnd     int           // initial congestion window, in segments
	RTO             time.Duration // base retransmission timeout for data
	SynRTO          time.Duration // retransmission timeout for SYN / SYN-ACK
	MaxRTO          time.Duration // backoff ceiling
	MaxRetries      int           // per-segment retransmit budget before giving up
	ReceiveWindow   uint32        // advertised receive window, bytes
	InitialSsthresh uint32        // slow-start threshold, bytes
	// ISNKey, when non-zero, makes the endpoint derive its initial send
	// sequence from a keyed hash of the connection tuple instead of the
	// shard RNG (see DeterministicISN). Yoda's hybrid recovery mode sets
	// this on backend servers so a recovering instance can re-derive the
	// backend ISN without a store read. Zero keeps the RNG draw, so
	// existing seeds and figures are untouched.
	ISNKey uint64
	// IdleProbe, when non-zero, makes an established connection emit a
	// bare ACK (seq=sndNxt, ack=rcvNxt) whenever it has been idle with no
	// unacknowledged data for this long — modelling RFC 1122 TCP
	// keepalive probes. Hybrid-recovery testbeds enable it on clients so
	// a flow whose response was lost with a failed LB instance still
	// produces client-side packets for the successor to recover from.
	// Zero (the default) disables it entirely.
	IdleProbe time.Duration
	// DelayedAck enables RFC 1122 §4.2.3.2 delayed acknowledgments (Tier
	// B coalescing, see DESIGN.md §14): an in-order data segment defers
	// its ACK until a second segment arrives, the AckDelay timer fires,
	// or outgoing data piggybacks it. Out-of-order and duplicate
	// segments, FINs, and PSH boundaries are always ACKed immediately, so
	// retransmit-recovery timing and request/response latency are
	// unchanged. Off (the default) preserves ACK-every-segment behavior
	// bit for bit.
	DelayedAck bool
	// AckDelay caps how long a deferred ACK may wait. Zero means
	// DefaultAckDelay. Only meaningful with DelayedAck.
	AckDelay time.Duration
	// GSOSegs, when > 1, lets trySend emit segment trains of up to
	// GSOSegs*MSS payload bytes in one packet (GSO-style: one event-loop
	// trip carries what would have been GSOSegs wire segments).
	// Congestion and retransmission accounting are byte-denominated and
	// unchanged; retransmits stay single-MSS. 0 or 1 disables trains.
	GSOSegs int
}

// DefaultAckDelay is the deferred-ACK timer used when Config.DelayedAck
// is set and AckDelay is zero — 40ms, the common Linux default, well
// under the 500ms RFC 1122 ceiling and the testbed's 300ms RTO.
const DefaultAckDelay = 40 * time.Millisecond

// DefaultConfig returns the configuration used across the testbed: MSS
// 1460, IW10, 300ms base RTO (matching the paper's observed 300/600ms
// retransmits), 3s SYN timeout (Ubuntu's default per §4.2).
func DefaultConfig() Config {
	return Config{
		MSS:             1460,
		InitialCwnd:     10,
		RTO:             300 * time.Millisecond,
		SynRTO:          3 * time.Second,
		MaxRTO:          60 * time.Second,
		MaxRetries:      8,
		ReceiveWindow:   1 << 20,
		InitialSsthresh: 1 << 20,
	}
}

// State is a TCP connection state.
type State int

// Connection states. Only the states the simulator distinguishes are
// modelled; TIME_WAIT is collapsed into Closed since the simulated port
// allocator never reuses a tuple while packets are in flight.
const (
	StateSynSent State = iota
	StateSynReceived
	StateEstablished
	StateFinWait   // we sent FIN, waiting for its ACK (and possibly peer FIN)
	StateCloseWait // peer sent FIN, we have not closed yet
	StateLastAck   // peer closed, our FIN in flight
	StateClosed
)

func (s State) String() string {
	switch s {
	case StateSynSent:
		return "SYN_SENT"
	case StateSynReceived:
		return "SYN_RECEIVED"
	case StateEstablished:
		return "ESTABLISHED"
	case StateFinWait:
		return "FIN_WAIT"
	case StateCloseWait:
		return "CLOSE_WAIT"
	case StateLastAck:
		return "LAST_ACK"
	case StateClosed:
		return "CLOSED"
	default:
		return fmt.Sprintf("State(%d)", int(s))
	}
}

// Errors reported through Callbacks.OnFail.
var (
	ErrReset   = errors.New("tcp: connection reset by peer")
	ErrTimeout = errors.New("tcp: retransmission timeout")
)

// Callbacks notify the application of connection events. Any field may be
// nil. Callbacks run inside the netsim event loop and must not block.
type Callbacks struct {
	OnEstablished func(c *Conn)
	OnData        func(c *Conn, data []byte)
	OnPeerClose   func(c *Conn) // peer's FIN arrived; data delivery is complete
	OnClose       func(c *Conn) // connection fully closed in both directions
	OnFail        func(c *Conn, err error)
}

// DeterministicISN derives an initial send sequence number from a secret
// key and the connection tuple (FNV-1a over the endpoint encoding, then a
// splitmix64-style finalizer). Any party holding the key can recompute
// the ISN a (local, remote) endpoint chose — the SYN-cookie-style trick
// Yoda's hybrid recovery uses to reconstruct the backend-side sequence
// translation without a store read.
func DeterministicISN(key uint64, local, remote netsim.HostPort) uint32 {
	const (
		offset64 = 14695981039346656037
		prime64  = 1099511628211
	)
	h := uint64(offset64)
	for i := 0; i < 8; i++ {
		h ^= (key >> (8 * i)) & 0xff
		h *= prime64
	}
	mix := func(hp netsim.HostPort) {
		ip := uint32(hp.IP)
		h ^= uint64(ip >> 24 & 0xff)
		h *= prime64
		h ^= uint64(ip >> 16 & 0xff)
		h *= prime64
		h ^= uint64(ip >> 8 & 0xff)
		h *= prime64
		h ^= uint64(ip & 0xff)
		h *= prime64
		h ^= uint64(hp.Port >> 8)
		h *= prime64
		h ^= uint64(hp.Port & 0xff)
		h *= prime64
	}
	mix(local)
	mix(remote)
	h ^= h >> 30
	h *= 0xbf58476d1ce4e5b9
	h ^= h >> 27
	h *= 0x94d049bb133111eb
	h ^= h >> 31
	return uint32(h ^ (h >> 32))
}

// seqLT reports a < b in 32-bit sequence space.
func seqLT(a, b uint32) bool { return int32(a-b) < 0 }

// seqLEQ reports a <= b in 32-bit sequence space.
func seqLEQ(a, b uint32) bool { return int32(a-b) <= 0 }

// reasmSeg is an out-of-order segment parked for reassembly. data is a
// read-only reference into the sender's send buffer (zero-copy). That is
// safe because a parked segment is by definition unacknowledged, and the
// sender never overwrites bytes the cumulative ACK has not passed: the
// send buffer only rewinds once every transmitted byte is acked, which
// cannot happen while this segment sits in the reassembly queue.
type reasmSeg struct {
	seq  uint32
	data []byte
	fin  bool
}

// rtxBuf tracks a pooled buffer holding a retransmitted segment's
// payload copy. It is returned to the network's buffer pool once the
// cumulative ACK passes end: at that point the receiver has consumed the
// bytes and any still-in-flight duplicate will be trimmed by sequence
// number without its content being read.
type rtxBuf struct {
	end uint32 // sequence number just past the copied payload
	buf []byte
}

// Conn is one endpoint of a TCP connection.
type Conn struct {
	host *netsim.Host
	net  *netsim.Network
	// rng is the owning shard's deterministic RNG, cached at construction
	// so draws never reach through Network.Rand on a hot path and every
	// draw is attributable to the shard the connection lives on.
	rng    *rand.Rand
	cfg    Config
	cb     Callbacks
	local  netsim.HostPort
	remote netsim.HostPort

	state State

	// Send side.
	iss    uint32 // initial send sequence
	sndUna uint32 // oldest unacknowledged
	sndNxt uint32 // next to send
	// sndBuf holds unsent+unacked payload; live bytes are
	// sndBuf[sndHead:], and sndBuf[sndHead] is at seq bufSeq. The head
	// index (instead of re-slicing forward) lets the buffer reset to the
	// array start once fully acknowledged, so steady-state request/reply
	// traffic reuses one backing array instead of reallocating per Write.
	sndBuf    []byte
	sndHead   int
	bufSeq    uint32 // sequence number of sndBuf[sndHead]
	peerWnd   uint32
	cwnd      uint32
	ssthresh  uint32
	finQueued bool
	finSent   bool
	finSeq    uint32

	// Receive side.
	rcvNxt  uint32
	peerFin bool // peer's FIN has been processed
	reasm   []reasmSeg

	// Retransmission.
	rtxTimer   netsim.Timer
	rtxBackoff int
	rtxFn      func()   // c.onRtxTimeout, bound once to avoid per-arm allocation
	rtxBufs    []rtxBuf // pooled copies backing in-flight retransmits

	// Idle keepalive probing (Config.IdleProbe > 0 only).
	probeTimer netsim.Timer
	probeFn    func() // c.onProbeTimeout, bound once

	// Delayed acknowledgments (Config.DelayedAck only). delackHeld counts
	// ACKs deferred since the last one actually sent; a segment arriving
	// with one already held forces the every-2nd-segment immediate ACK.
	delackTimer netsim.Timer
	delackFn    func() // c.onDelackTimeout, bound once
	delackHeld  int

	// Stats, exported for tests and experiments.
	Retransmits int
	BytesSent   uint64
	BytesRecv   uint64
	// AcksElided counts ACKs that never hit the wire because a later ACK,
	// a data segment, or a FIN carried the acknowledgment instead.
	AcksElided int
	// GSOTrainsSent counts data packets carrying more than one MSS of
	// payload (Config.GSOSegs > 1 only).
	GSOTrainsSent int
}

// Dial opens an active connection from an ephemeral port on h to remote.
func Dial(h *netsim.Host, remote netsim.HostPort, cb Callbacks, cfg Config) *Conn {
	return DialFrom(h, h.AllocPort(), remote, cb, cfg)
}

// DialFrom opens an active connection from the given local port.
func DialFrom(h *netsim.Host, localPort uint16, remote netsim.HostPort, cb Callbacks, cfg Config) *Conn {
	c := newConn(h, netsim.HostPort{IP: h.IP(), Port: localPort}, remote, cb, cfg)
	c.state = StateSynSent
	if cfg.ISNKey != 0 {
		c.iss = DeterministicISN(cfg.ISNKey, c.local, c.remote)
	} else {
		c.iss = c.rng.Uint32()
	}
	c.sndUna = c.iss
	c.sndNxt = c.iss + 1
	c.bufSeq = c.iss + 1
	h.Register(localPort, remote, c)
	c.sendSegment(netsim.FlagSYN, c.iss, 0, nil)
	c.armRtx(c.cfg.SynRTO)
	return c
}

func newConn(h *netsim.Host, local, remote netsim.HostPort, cb Callbacks, cfg Config) *Conn {
	c := &Conn{
		host:     h,
		net:      h.Network(),
		rng:      h.Network().Rand(),
		cfg:      cfg,
		cb:       cb,
		local:    local,
		remote:   remote,
		peerWnd:  cfg.ReceiveWindow,
		cwnd:     uint32(cfg.InitialCwnd * cfg.MSS),
		ssthresh: cfg.InitialSsthresh,
	}
	c.rtxFn = c.onRtxTimeout
	if cfg.IdleProbe > 0 {
		c.probeFn = c.onProbeTimeout
	}
	if cfg.DelayedAck {
		c.delackFn = c.onDelackTimeout
	}
	return c
}

// armProbe starts the idle-probe timer once the connection establishes.
func (c *Conn) armProbe() {
	if c.probeFn == nil || c.probeTimer.Active() {
		return
	}
	c.probeTimer = c.net.Schedule(c.cfg.IdleProbe, c.probeFn)
}

// onProbeTimeout emits a bare ACK if the connection has been idle —
// established, nothing in flight, nothing buffered — and re-arms. The
// probe elicits no reply from a healthy peer (pure ACKs are not ACKed)
// but gives a recovering load balancer a client-side packet to act on.
func (c *Conn) onProbeTimeout() {
	c.probeTimer = netsim.Timer{}
	if c.state == StateClosed {
		return
	}
	if c.state == StateEstablished && c.inflight() == 0 && c.sndHead == len(c.sndBuf) && !c.finQueued {
		// sendAck, not sendSegment: the probe is a bare ACK, so it also
		// satisfies any deferred delayed ACK instead of duplicating it.
		c.sendAck()
	}
	c.probeTimer = c.net.Schedule(c.cfg.IdleProbe, c.probeFn)
}

// State returns the connection state.
func (c *Conn) State() State { return c.state }

// LocalAddr returns the local endpoint.
func (c *Conn) LocalAddr() netsim.HostPort { return c.local }

// RemoteAddr returns the remote endpoint.
func (c *Conn) RemoteAddr() netsim.HostPort { return c.remote }

// ISN returns the initial send sequence number (used by tests).
func (c *Conn) ISN() uint32 { return c.iss }

// Write queues payload for transmission. It is an error to write after
// Close or on a failed connection; the data is silently discarded then.
func (c *Conn) Write(data []byte) {
	if c.state == StateClosed || c.finQueued || len(data) == 0 {
		return
	}
	c.sndBuf = append(c.sndBuf, data...)
	if c.state == StateEstablished || c.state == StateCloseWait {
		c.trySend()
	}
}

// Close queues a FIN after any buffered data. Data already written is
// still delivered.
func (c *Conn) Close() {
	if c.state == StateClosed || c.finQueued {
		return
	}
	c.finQueued = true
	if c.state == StateEstablished || c.state == StateCloseWait {
		c.trySend()
	}
}

// Abort sends a RST and tears the connection down immediately.
func (c *Conn) Abort() {
	if c.state == StateClosed {
		return
	}
	c.sendSegment(netsim.FlagRST, c.sndNxt, c.rcvNxt, nil)
	c.teardown()
}

// teardown releases resources without notifying the peer.
func (c *Conn) teardown() {
	if c.state == StateClosed {
		return
	}
	c.state = StateClosed
	c.rtxTimer.Stop()
	c.probeTimer.Stop()
	c.delackTimer.Stop()
	// rtxBufs are NOT released here: retransmitted packets referencing
	// them may still be in flight, and the conn going away does not stop
	// their delivery. They are garbage-collected with the conn.
	c.host.Unregister(c.local.Port, c.remote)
}

func (c *Conn) fail(err error) {
	if c.state == StateClosed {
		return
	}
	c.teardown()
	if c.cb.OnFail != nil {
		c.cb.OnFail(c, err)
	}
}

func (c *Conn) sendSegment(flags netsim.TCPFlags, seq, ack uint32, payload []byte) {
	if !c.host.Alive() {
		return // a failed machine transmits nothing
	}
	pkt := c.net.AllocPacket()
	pkt.Src, pkt.Dst = c.local, c.remote
	pkt.Flags, pkt.Seq, pkt.Ack = flags, seq, ack
	pkt.Window = c.cfg.ReceiveWindow
	pkt.Payload = payload
	if len(payload) > 0 {
		c.BytesSent += uint64(len(payload))
	}
	c.net.Send(pkt)
}

// inflight returns bytes sent but not yet acknowledged.
func (c *Conn) inflight() uint32 { return c.sndNxt - c.sndUna }

// trySend transmits as much buffered data (and the queued FIN) as the
// congestion and peer windows allow.
func (c *Conn) trySend() {
	wnd := c.cwnd
	if c.peerWnd < wnd {
		wnd = c.peerWnd
	}
	// GSO-style segment trains: one packet may carry up to GSOSegs*MSS
	// bytes, cutting event-loop trips per buffer flush by the same
	// factor. Sequence numbers, cwnd, and rtx stay byte-denominated, so
	// the receiver and recovery paths see ordinary (large) segments.
	maxSeg := c.cfg.MSS
	if c.cfg.GSOSegs > 1 {
		maxSeg = c.cfg.MSS * c.cfg.GSOSegs
	}
	for {
		// Bytes of sndBuf not yet transmitted start at offset sndNxt-bufSeq
		// past the head.
		rel := int(c.sndNxt - c.bufSeq)
		off := c.sndHead + rel
		if rel < 0 || off > len(c.sndBuf) {
			// FIN-only position or buffer fully streamed.
			off = len(c.sndBuf)
		}
		avail := len(c.sndBuf) - off
		if avail > 0 {
			if c.inflight() >= wnd {
				return
			}
			n := maxSeg
			if n > avail {
				n = avail
			}
			if room := int(wnd - c.inflight()); n > room {
				n = room
			}
			if n <= 0 {
				return
			}
			if n > c.cfg.MSS {
				c.GSOTrainsSent++
			}
			// Zero-copy: hand out a capacity-capped sub-slice of sndBuf.
			// Safe because the head only advances on ACK, appends land past
			// the high-water mark, and the buffer resets to the array start
			// only once every transmitted byte is acknowledged — at which
			// point any slice still in flight is a duplicate the receiver
			// trims without reading (see processAck).
			seg := c.sndBuf[off : off+n : off+n]
			flags := netsim.FlagACK
			if off+n == len(c.sndBuf) {
				flags |= netsim.FlagPSH
			}
			c.sendSegment(flags, c.sndNxt, c.rcvNxt, seg)
			c.sndNxt += uint32(n)
			c.ensureRtx()
			continue
		}
		// All payload streamed; maybe send FIN.
		if c.finQueued && !c.finSent {
			c.finSent = true
			c.finSeq = c.sndNxt
			c.sendSegment(netsim.FlagFIN|netsim.FlagACK, c.sndNxt, c.rcvNxt, nil)
			c.sndNxt++
			if c.state == StateEstablished {
				c.state = StateFinWait
			} else if c.state == StateCloseWait {
				c.state = StateLastAck
			}
			c.ensureRtx()
		}
		return
	}
}

func (c *Conn) ensureRtx() {
	if !c.rtxTimer.Active() && c.inflight() > 0 {
		c.armRtx(c.currentRTO())
	}
}

func (c *Conn) currentRTO() time.Duration {
	rto := c.cfg.RTO
	for i := 0; i < c.rtxBackoff; i++ {
		rto *= 2
		if rto >= c.cfg.MaxRTO {
			return c.cfg.MaxRTO
		}
	}
	return rto
}

func (c *Conn) armRtx(d time.Duration) {
	c.rtxTimer.Stop()
	c.rtxTimer = c.net.Schedule(d, c.rtxFn)
}

func (c *Conn) onRtxTimeout() {
	c.rtxTimer = netsim.Timer{}
	if c.state == StateClosed {
		return
	}
	if c.rtxBackoff >= c.cfg.MaxRetries {
		c.fail(ErrTimeout)
		return
	}
	c.rtxBackoff++
	c.Retransmits++
	switch c.state {
	case StateSynSent:
		c.sendSegment(netsim.FlagSYN, c.iss, 0, nil)
		c.armRtx(c.cfg.SynRTO) // Linux keeps the SYN timer fixed-ish; good enough
		return
	case StateSynReceived:
		c.sendSegment(netsim.FlagSYN|netsim.FlagACK, c.iss, c.rcvNxt, nil)
		c.armRtx(c.cfg.SynRTO)
		return
	}
	// Retransmit the oldest unacked segment; classic multiplicative decrease.
	c.ssthresh = c.inflight() / 2
	if min := uint32(2 * c.cfg.MSS); c.ssthresh < min {
		c.ssthresh = min
	}
	c.cwnd = uint32(c.cfg.MSS)
	c.retransmitOldest()
	c.armRtx(c.currentRTO())
}

func (c *Conn) retransmitOldest() {
	if c.finSent && c.sndUna == c.finSeq {
		c.sendSegment(netsim.FlagFIN|netsim.FlagACK, c.finSeq, c.rcvNxt, nil)
		return
	}
	rel := int(c.sndUna - c.bufSeq)
	off := c.sndHead + rel
	if rel < 0 || off >= len(c.sndBuf) {
		return
	}
	n := c.cfg.MSS
	if n > len(c.sndBuf)-off {
		n = len(c.sndBuf) - off
	}
	// Copy-on-retransmit: retransmits get a private pooled copy so the
	// zero-copy invariant (in-flight slices reference sndBuf strictly
	// below the append watermark) only has to hold for first
	// transmissions. processAck recycles the copy once the cumulative
	// ACK covers it.
	seg := c.net.AllocBuf(n)
	copy(seg, c.sndBuf[off:off+n])
	c.rtxBufs = append(c.rtxBufs, rtxBuf{end: c.sndUna + uint32(n), buf: seg})
	c.sendSegment(netsim.FlagACK|netsim.FlagPSH, c.sndUna, c.rcvNxt, seg)
}

// HandleSegment implements netsim.PortHandler. The connection is the
// packet's terminal consumer: any payload bytes that outlive this call
// (reassembly queue, application callbacks) are either referenced
// independently of the packet struct or copied by the application, so
// the struct is released back to the pool on return.
func (c *Conn) HandleSegment(pkt *netsim.Packet) {
	c.handleSegment(pkt)
	c.net.ReleasePacket(pkt)
}

// HandleSegmentBatch implements netsim.BatchPortHandler: the host hands
// over a run of same-connection segments in one call. Runs of bare
// cumulative ACKs — the dominant receive shape for a bulk sender — are
// processed as one applyAck at the run's maximum in-range ACK, with
// cwnd growth replayed per advancing segment and one rtx-timer
// reconcile instead of a stop/arm pair per segment. Everything else
// replays the scalar per-segment path, so wire behavior is identical
// to per-packet delivery by construction (pinned by
// FuzzBatchDispatchDifferential). If the connection closes itself
// mid-run, the remainder re-enters host demux exactly as scalar
// delivery would have routed it (listener RST responder or default).
func (c *Conn) HandleSegmentBatch(pkts []*netsim.Packet) {
	for i := 0; i < len(pkts); i++ {
		if c.state == StateClosed {
			for _, p := range pkts[i:] {
				c.host.Demux(p)
			}
			return
		}
		if j := c.bareAckRunEnd(pkts, i); j-i >= 2 {
			c.processAckRun(pkts[i:j])
			for _, p := range pkts[i:j] {
				c.net.ReleasePacket(p)
			}
			i = j - 1
			continue
		}
		c.handleSegment(pkts[i])
		c.net.ReleasePacket(pkts[i])
	}
}

// bareAckRunEnd returns j such that pkts[i:j] is the longest run
// starting at i that the cumulative-ACK fast path may process as one
// unit. The gates guarantee the scalar path for each such segment is
// exactly {peerWnd update, processAck}: established with no FIN in
// either direction (maybeFinish is a no-op), and no unsent payload or
// queued FIN (trySend cannot emit). All gate inputs are invariant
// across a run of such segments — no payload means no callbacks, so no
// Write/Close can run — so checking once up front is sound.
func (c *Conn) bareAckRunEnd(pkts []*netsim.Packet, i int) int {
	if c.state != StateEstablished || c.finQueued || c.finSent || c.peerFin {
		return i
	}
	rel := int(c.sndNxt - c.bufSeq)
	off := c.sndHead + rel
	if rel < 0 || off > len(c.sndBuf) {
		off = len(c.sndBuf)
	}
	if len(c.sndBuf)-off > 0 {
		return i // unsent payload: scalar trySend would transmit
	}
	j := i
	for j < len(pkts) && pkts[j].Flags == netsim.FlagACK && len(pkts[j].Payload) == 0 {
		j++
	}
	return j
}

// processAckRun applies a run of bare ACKs cumulatively: every
// segment's window update lands (last writer wins, as scalar), the
// maximum in-range cumulative ACK is applied once with cwnd growth
// replayed per advancing segment, and duplicate or out-of-range ACKs
// are skipped exactly as processAck would have skipped them.
func (c *Conn) processAckRun(pkts []*netsim.Packet) {
	cur := c.sndUna
	advances := 0
	for _, p := range pkts {
		c.peerWnd = p.Window
		if c.peerWnd == 0 {
			c.peerWnd = 1 // never wedge: simulate persist probes trivially
		}
		if seqLT(cur, p.Ack) && seqLEQ(p.Ack, c.sndNxt) {
			cur = p.Ack
			advances++
		}
	}
	if advances > 0 {
		c.applyAck(cur, advances)
	}
}

func (c *Conn) handleSegment(pkt *netsim.Packet) {
	if c.state == StateClosed {
		return
	}
	if pkt.Flags.Has(netsim.FlagRST) {
		c.fail(ErrReset)
		return
	}
	c.peerWnd = pkt.Window
	if c.peerWnd == 0 {
		c.peerWnd = 1 // never wedge: simulate persist probes trivially
	}
	switch c.state {
	case StateSynSent:
		c.handleSynSent(pkt)
	case StateSynReceived:
		c.handleSynReceived(pkt)
	default:
		c.handleEstablished(pkt)
	}
}

func (c *Conn) handleSynSent(pkt *netsim.Packet) {
	if !pkt.Flags.Has(netsim.FlagSYN | netsim.FlagACK) {
		return
	}
	if pkt.Ack != c.iss+1 {
		return // stale
	}
	c.rcvNxt = pkt.Seq + 1
	c.sndUna = pkt.Ack
	c.rtxBackoff = 0
	c.rtxTimer.Stop()
	c.state = StateEstablished
	c.armProbe()
	c.sendSegment(netsim.FlagACK, c.sndNxt, c.rcvNxt, nil)
	if c.cb.OnEstablished != nil {
		c.cb.OnEstablished(c)
	}
	c.trySend()
}

func (c *Conn) handleSynReceived(pkt *netsim.Packet) {
	if pkt.Flags.Has(netsim.FlagSYN) && !pkt.Flags.Has(netsim.FlagACK) {
		// Duplicate SYN: retransmit our SYN-ACK.
		c.sendSegment(netsim.FlagSYN|netsim.FlagACK, c.iss, c.rcvNxt, nil)
		return
	}
	if !pkt.Flags.Has(netsim.FlagACK) || pkt.Ack != c.iss+1 {
		return
	}
	c.sndUna = pkt.Ack
	c.rtxBackoff = 0
	c.rtxTimer.Stop()
	c.state = StateEstablished
	c.armProbe()
	if c.cb.OnEstablished != nil {
		c.cb.OnEstablished(c)
	}
	// The handshake ACK may carry data (common when the client sends the
	// HTTP request immediately).
	if len(pkt.Payload) > 0 || pkt.Flags.Has(netsim.FlagFIN) {
		c.handleEstablished(pkt)
		return
	}
	c.trySend()
}

func (c *Conn) handleEstablished(pkt *netsim.Packet) {
	if pkt.Flags.Has(netsim.FlagACK) {
		c.processAck(pkt.Ack)
		if c.state == StateClosed {
			return
		}
	}
	progressed := false
	hasData := len(pkt.Payload) > 0 || pkt.Flags.Has(netsim.FlagFIN)
	sentBefore := c.sndNxt
	if hasData {
		progressed = c.processData(pkt)
	}
	if progressed || hasData {
		// Acknowledge received data (also re-ACKs duplicates). With
		// DelayedAck the first in-order segment of a pair is deferred;
		// anything that affects sender-side recovery or latency — dup or
		// out-of-order segments (dup-ACK for fast recovery), FINs, PSH
		// boundaries — still ACKs immediately, as does the 2nd held
		// segment per RFC 1122. Data the application echoed from inside
		// OnData already carried ack=rcvNxt, so it IS the acknowledgment.
		switch {
		case c.cfg.DelayedAck && c.sndNxt != sentBefore:
			c.AcksElided += c.delackHeld + 1
			c.delackHeld = 0
			c.delackTimer.Stop()
		case !c.cfg.DelayedAck || !progressed || c.delackHeld > 0 ||
			pkt.Flags.Has(netsim.FlagFIN) || c.peerFin || pkt.Flags.Has(netsim.FlagPSH):
			c.sendAck()
		default:
			c.deferAck()
		}
	}
	c.maybeFinish()
	if c.state != StateClosed {
		before := c.sndNxt
		c.trySend()
		if c.sndNxt != before && c.delackHeld > 0 {
			// The data (or FIN) just sent carried ack=rcvNxt: the deferred
			// ACK piggybacked and will never need its own packet.
			c.AcksElided += c.delackHeld
			c.delackHeld = 0
			c.delackTimer.Stop()
		}
	}
}

// sendAck emits a bare ACK for everything received, counting any
// deferred ACKs it subsumes as elided. With DelayedAck off this is
// exactly the pre-delack immediate ACK.
func (c *Conn) sendAck() {
	c.AcksElided += c.delackHeld
	c.delackHeld = 0
	c.delackTimer.Stop()
	c.sendSegment(netsim.FlagACK, c.sndNxt, c.rcvNxt, nil)
}

// deferAck holds the ACK for the segment just ingested, arming the
// delay timer if it is not already running.
func (c *Conn) deferAck() {
	c.delackHeld++
	if !c.delackTimer.Active() {
		d := c.cfg.AckDelay
		if d <= 0 {
			d = DefaultAckDelay
		}
		c.delackTimer = c.net.Schedule(d, c.delackFn)
	}
}

// onDelackTimeout flushes a deferred ACK that nothing piggybacked or
// subsumed within AckDelay. The flush is a real ACK on the wire, so it
// is not counted as elided.
func (c *Conn) onDelackTimeout() {
	c.delackTimer = netsim.Timer{}
	if c.state == StateClosed || c.delackHeld == 0 {
		return
	}
	c.delackHeld--
	c.sendAck()
}

func (c *Conn) processAck(ack uint32) {
	if !seqLT(c.sndUna, ack) || !seqLEQ(ack, c.sndNxt) {
		return // duplicate or out-of-range
	}
	c.applyAck(ack, 1)
}

// applyAck advances sndUna to ack — already validated as in-range and
// advancing — releasing covered buffer bytes and reconciling the rtx
// timer once. growths is the number of advancing ACKs this cumulative
// apply stands for: the congestion window grows once per original ACK
// (the formula depends only on the evolving cwnd, so replaying it
// growths times yields exactly the scalar per-segment result).
func (c *Conn) applyAck(ack uint32, growths int) {
	acked := ack - c.sndUna
	c.sndUna = ack
	c.rtxBackoff = 0
	// Release acknowledged bytes from the buffer. FIN occupies sequence
	// space but no buffer space.
	dataAcked := acked
	if c.finSent && seqLT(c.finSeq, ack) {
		dataAcked--
	}
	live := len(c.sndBuf) - c.sndHead
	drop := int(c.sndUna - c.bufSeq)
	if c.finSent && seqLT(c.finSeq, c.sndUna) {
		drop = live
	}
	if drop > live {
		drop = live
	}
	if drop > 0 {
		c.sndHead += drop
		c.bufSeq += uint32(drop)
	}
	if c.sndHead == len(c.sndBuf) && c.sndHead > 0 {
		// Every buffered byte is acknowledged: rewind to the array start so
		// the next Write reuses the capacity instead of growing past the
		// high-water mark. Any first-transmission slice still in flight is
		// now entirely below the receiver's rcvNxt (cumulative ACKs imply
		// delivery), so its bytes are trimmed without being read even if a
		// later Write overwrites them.
		c.sndBuf = c.sndBuf[:0]
		c.sndHead = 0
	}
	_ = dataAcked
	// Recycle retransmit copies the cumulative ACK now covers. Any
	// still-in-flight duplicate referencing one is entirely below the
	// receiver's rcvNxt and gets trimmed without its bytes being read.
	if len(c.rtxBufs) > 0 {
		i := 0
		for i < len(c.rtxBufs) && seqLEQ(c.rtxBufs[i].end, c.sndUna) {
			c.net.ReleaseBuf(c.rtxBufs[i].buf)
			c.rtxBufs[i].buf = nil
			i++
		}
		if i > 0 {
			c.rtxBufs = append(c.rtxBufs[:0], c.rtxBufs[i:]...)
		}
	}
	// Congestion window growth: slow start below ssthresh, else additive.
	for i := 0; i < growths; i++ {
		if c.cwnd < c.ssthresh {
			c.cwnd += uint32(c.cfg.MSS)
		} else {
			c.cwnd += uint32(c.cfg.MSS) * uint32(c.cfg.MSS) / c.cwnd
		}
	}
	c.rtxTimer.Stop()
	if c.inflight() > 0 {
		c.armRtx(c.currentRTO())
	}
}

// processData ingests payload/FIN, returns whether rcvNxt advanced.
func (c *Conn) processData(pkt *netsim.Packet) bool {
	seq := pkt.Seq
	data := pkt.Payload
	fin := pkt.Flags.Has(netsim.FlagFIN)

	// Trim data already received.
	if seqLT(seq, c.rcvNxt) {
		skip := c.rcvNxt - seq
		if uint32(len(data)) <= skip {
			if !fin || c.peerFin {
				return false
			}
			data = nil
			seq = c.rcvNxt
			if seqLT(pkt.SeqEnd()-1, c.rcvNxt) {
				return false // entirely old, FIN included
			}
		} else {
			data = data[skip:]
			seq = c.rcvNxt
		}
	}
	if seq != c.rcvNxt {
		// Out of order: park for reassembly. The slice is retained as-is
		// (zero-copy); see reasmSeg for why that is safe.
		c.stashReasm(reasmSeg{seq: seq, data: data, fin: fin})
		return false
	}
	c.ingest(data, fin)
	// Drain any contiguous parked segments.
	for {
		idx := -1
		for i, s := range c.reasm {
			if seqLEQ(s.seq, c.rcvNxt) {
				idx = i
				break
			}
		}
		if idx < 0 {
			break
		}
		s := c.reasm[idx]
		c.reasm = append(c.reasm[:idx], c.reasm[idx+1:]...)
		d := s.data
		if skip := c.rcvNxt - s.seq; skip > 0 {
			if uint32(len(d)) <= skip {
				d = nil
			} else {
				d = d[skip:]
			}
		}
		c.ingest(d, s.fin)
	}
	return true
}

func (c *Conn) stashReasm(s reasmSeg) {
	for _, e := range c.reasm {
		if e.seq == s.seq && len(e.data) >= len(s.data) {
			return // duplicate
		}
	}
	c.reasm = append(c.reasm, s)
	sort.Slice(c.reasm, func(i, j int) bool { return seqLT(c.reasm[i].seq, c.reasm[j].seq) })
}

func (c *Conn) ingest(data []byte, fin bool) {
	if len(data) > 0 {
		c.rcvNxt += uint32(len(data))
		c.BytesRecv += uint64(len(data))
		if c.cb.OnData != nil {
			c.cb.OnData(c, data)
		}
	}
	if fin && !c.peerFin {
		c.peerFin = true
		c.rcvNxt++
		switch c.state {
		case StateEstablished:
			c.state = StateCloseWait
		case StateFinWait:
			// Both directions closing; maybeFinish completes it.
		}
		if c.cb.OnPeerClose != nil {
			c.cb.OnPeerClose(c)
		}
	}
}

// maybeFinish closes the connection once both FINs are exchanged and ours
// is acknowledged.
func (c *Conn) maybeFinish() {
	if c.state == StateClosed {
		return
	}
	ourFinAcked := c.finSent && seqLT(c.finSeq, c.sndUna)
	if ourFinAcked && c.peerFin {
		c.teardown()
		if c.cb.OnClose != nil {
			c.cb.OnClose(c)
		}
	} else if c.state == StateLastAck && ourFinAcked {
		c.teardown()
		if c.cb.OnClose != nil {
			c.cb.OnClose(c)
		}
	}
}
