package tcp

import (
	"bytes"
	"fmt"
	"testing"
	"testing/quick"
	"time"

	"repro/internal/netsim"
)

var (
	clientIP = netsim.IPv4(100, 0, 0, 1)
	serverIP = netsim.IPv4(10, 0, 0, 1)
)

// pair wires up a network with one client host and one server host
// listening on port 80, echoing received bytes into a buffer.
type pair struct {
	net    *netsim.Network
	client *netsim.Host
	server *netsim.Host
}

func newPair(seed int64) *pair {
	n := netsim.New(seed)
	return &pair{
		net:    n,
		client: netsim.NewHost(n, clientIP),
		server: netsim.NewHost(n, serverIP),
	}
}

func TestHandshakeAndEcho(t *testing.T) {
	p := newPair(1)
	var serverGot bytes.Buffer
	Listen(p.server, 80, func(c *Conn) Callbacks {
		return Callbacks{
			OnData: func(c *Conn, d []byte) {
				serverGot.Write(d)
				c.Write(d) // echo
			},
			OnPeerClose: func(c *Conn) { c.Close() },
		}
	}, DefaultConfig())

	var clientGot bytes.Buffer
	established := false
	closed := false
	c := Dial(p.client, netsim.HostPort{IP: serverIP, Port: 80}, Callbacks{
		OnEstablished: func(c *Conn) {
			established = true
			c.Write([]byte("hello world"))
			c.Close()
		},
		OnData:  func(c *Conn, d []byte) { clientGot.Write(d) },
		OnClose: func(c *Conn) { closed = true },
	}, DefaultConfig())

	p.net.RunUntilIdle(10000)
	if !established {
		t.Fatal("client never established")
	}
	if serverGot.String() != "hello world" {
		t.Fatalf("server got %q", serverGot.String())
	}
	if clientGot.String() != "hello world" {
		t.Fatalf("client echo got %q", clientGot.String())
	}
	if !closed {
		t.Fatal("client connection never fully closed")
	}
	if c.State() != StateClosed {
		t.Fatalf("client state = %v", c.State())
	}
}

func TestHandshakeLatency(t *testing.T) {
	p := newPair(1)
	Listen(p.server, 80, func(c *Conn) Callbacks { return Callbacks{} }, DefaultConfig())
	var at time.Duration = -1
	Dial(p.client, netsim.HostPort{IP: serverIP, Port: 80}, Callbacks{
		OnEstablished: func(c *Conn) { at = p.net.Now() },
	}, DefaultConfig())
	p.net.RunUntilIdle(100)
	// Client establishes after 1 RTT = 60ms (client<->DC is 30ms one way).
	if at != 60*time.Millisecond {
		t.Fatalf("established at %v, want 60ms", at)
	}
}

func TestLargeTransfer(t *testing.T) {
	p := newPair(2)
	payload := make([]byte, 500*1024)
	for i := range payload {
		payload[i] = byte(i * 31)
	}
	var got bytes.Buffer
	Listen(p.server, 80, func(c *Conn) Callbacks {
		return Callbacks{
			OnEstablished: func(c *Conn) {
				c.Write(payload)
				c.Close()
			},
		}
	}, DefaultConfig())
	done := false
	Dial(p.client, netsim.HostPort{IP: serverIP, Port: 80}, Callbacks{
		OnData:      func(c *Conn, d []byte) { got.Write(d) },
		OnPeerClose: func(c *Conn) { c.Close(); done = true },
	}, DefaultConfig())
	p.net.RunUntilIdle(1_000_000)
	if !done {
		t.Fatal("transfer did not complete")
	}
	if !bytes.Equal(got.Bytes(), payload) {
		t.Fatalf("payload corrupted: got %d bytes, want %d", got.Len(), len(payload))
	}
}

func TestTransferWithLoss(t *testing.T) {
	p := newPair(3)
	// Drop 5% of data segments (never control packets, to keep the test fast).
	rng := p.net.Rand()
	p.net.SetDropFunc(func(pkt *netsim.Packet) bool {
		return len(pkt.Payload) > 0 && rng.Float64() < 0.05
	})
	payload := make([]byte, 200*1024)
	for i := range payload {
		payload[i] = byte(i)
	}
	var got bytes.Buffer
	Listen(p.server, 80, func(c *Conn) Callbacks {
		return Callbacks{
			OnEstablished: func(c *Conn) { c.Write(payload); c.Close() },
		}
	}, DefaultConfig())
	done := false
	cl := Dial(p.client, netsim.HostPort{IP: serverIP, Port: 80}, Callbacks{
		OnData:      func(c *Conn, d []byte) { got.Write(d) },
		OnPeerClose: func(c *Conn) { c.Close(); done = true },
	}, DefaultConfig())
	p.net.RunUntilIdle(2_000_000)
	if !done {
		t.Fatalf("lossy transfer did not complete; got %d/%d bytes, client state %v",
			got.Len(), len(payload), cl.State())
	}
	if !bytes.Equal(got.Bytes(), payload) {
		t.Fatal("payload corrupted under loss")
	}
}

func TestRetransmitTiming(t *testing.T) {
	p := newPair(4)
	// Drop the first transmission of data from the server so it must
	// retransmit. First retransmit should occur RTO (300ms) after send.
	dropped := 0
	p.net.SetDropFunc(func(pkt *netsim.Packet) bool {
		if len(pkt.Payload) > 0 && pkt.Src.IP == serverIP && dropped == 0 {
			dropped++
			return true
		}
		return false
	})
	var sendTimes []time.Duration
	p.net.SetTracer(func(ev netsim.TraceEvent) {
		if len(ev.Packet.Payload) > 0 && ev.Packet.Src.IP == serverIP {
			sendTimes = append(sendTimes, ev.At)
		}
	})
	Listen(p.server, 80, func(c *Conn) Callbacks {
		return Callbacks{OnEstablished: func(c *Conn) { c.Write([]byte("x")); c.Close() }}
	}, DefaultConfig())
	var got bytes.Buffer
	Dial(p.client, netsim.HostPort{IP: serverIP, Port: 80}, Callbacks{
		OnData:      func(c *Conn, d []byte) { got.Write(d) },
		OnPeerClose: func(c *Conn) { c.Close() },
	}, DefaultConfig())
	p.net.RunUntilIdle(10000)
	if got.String() != "x" {
		t.Fatalf("client got %q", got.String())
	}
	// Tracer sees the drop event too (it fires at delivery time for drops),
	// so we need at least two observations; the gap between the first data
	// delivery attempt and the retransmission must be the 300ms base RTO.
	if len(sendTimes) < 2 {
		t.Fatalf("observed %d data deliveries", len(sendTimes))
	}
	gap := sendTimes[1] - sendTimes[0]
	if gap != 300*time.Millisecond {
		t.Fatalf("retransmit gap = %v, want 300ms", gap)
	}
}

func TestRetransmitBackoffDoubles(t *testing.T) {
	p := newPair(5)
	drops := 0
	p.net.SetDropFunc(func(pkt *netsim.Packet) bool {
		if len(pkt.Payload) > 0 && pkt.Src.IP == serverIP && drops < 3 {
			drops++
			return true
		}
		return false
	})
	var times []time.Duration
	p.net.SetTracer(func(ev netsim.TraceEvent) {
		if len(ev.Packet.Payload) > 0 && ev.Packet.Src.IP == serverIP {
			times = append(times, ev.At)
		}
	})
	Listen(p.server, 80, func(c *Conn) Callbacks {
		return Callbacks{OnEstablished: func(c *Conn) { c.Write([]byte("y")); c.Close() }}
	}, DefaultConfig())
	ok := false
	Dial(p.client, netsim.HostPort{IP: serverIP, Port: 80}, Callbacks{
		OnData: func(c *Conn, d []byte) { ok = true },
	}, DefaultConfig())
	p.net.RunUntilIdle(10000)
	if !ok {
		t.Fatal("data never arrived")
	}
	if len(times) < 4 {
		t.Fatalf("observed %d attempts, want 4", len(times))
	}
	g1, g2, g3 := times[1]-times[0], times[2]-times[1], times[3]-times[2]
	if g1 != 300*time.Millisecond || g2 != 600*time.Millisecond || g3 != 1200*time.Millisecond {
		t.Fatalf("gaps = %v %v %v, want 300ms 600ms 1.2s", g1, g2, g3)
	}
}

func TestSynRetransmitAt3s(t *testing.T) {
	p := newPair(6)
	var synTimes []time.Duration
	p.net.SetTracer(func(ev netsim.TraceEvent) {
		if ev.Packet.Flags.Has(netsim.FlagSYN) && !ev.Packet.Flags.Has(netsim.FlagACK) {
			synTimes = append(synTimes, ev.At)
		}
	})
	first := true
	p.net.SetDropFunc(func(pkt *netsim.Packet) bool {
		if pkt.Flags.Has(netsim.FlagSYN) && !pkt.Flags.Has(netsim.FlagACK) && first {
			first = false
			return true
		}
		return false
	})
	Listen(p.server, 80, func(c *Conn) Callbacks { return Callbacks{} }, DefaultConfig())
	est := false
	Dial(p.client, netsim.HostPort{IP: serverIP, Port: 80}, Callbacks{
		OnEstablished: func(c *Conn) { est = true },
	}, DefaultConfig())
	p.net.RunUntilIdle(1000)
	if !est {
		t.Fatal("never established")
	}
	if len(synTimes) != 2 {
		t.Fatalf("SYN attempts = %d", len(synTimes))
	}
	if gap := synTimes[1] - synTimes[0]; gap != 3*time.Second {
		t.Fatalf("SYN retransmit gap = %v, want 3s (Ubuntu default)", gap)
	}
}

func TestConnectToClosedPortFails(t *testing.T) {
	p := newPair(7)
	InstallRSTResponder(p.server)
	var failErr error
	Dial(p.client, netsim.HostPort{IP: serverIP, Port: 81}, Callbacks{
		OnFail: func(c *Conn, err error) { failErr = err },
	}, DefaultConfig())
	p.net.RunUntilIdle(1000)
	if failErr != ErrReset {
		t.Fatalf("err = %v, want ErrReset", failErr)
	}
}

func TestConnectTimeoutWhenServerDead(t *testing.T) {
	p := newPair(8)
	p.server.Detach()
	cfg := DefaultConfig()
	cfg.MaxRetries = 2
	var failErr error
	Dial(p.client, netsim.HostPort{IP: serverIP, Port: 80}, Callbacks{
		OnFail: func(c *Conn, err error) { failErr = err },
	}, cfg)
	p.net.RunUntilIdle(1000)
	if failErr != ErrTimeout {
		t.Fatalf("err = %v, want ErrTimeout", failErr)
	}
}

func TestAbortSendsRST(t *testing.T) {
	p := newPair(9)
	var srvConn *Conn
	var srvFail error
	Listen(p.server, 80, func(c *Conn) Callbacks {
		srvConn = c
		return Callbacks{OnFail: func(c *Conn, err error) { srvFail = err }}
	}, DefaultConfig())
	var cl *Conn
	cl = Dial(p.client, netsim.HostPort{IP: serverIP, Port: 80}, Callbacks{
		OnEstablished: func(c *Conn) { c.Write([]byte("x")) },
	}, DefaultConfig())
	p.net.RunUntilIdle(100)
	cl.Abort()
	p.net.RunUntilIdle(100)
	if srvFail != ErrReset {
		t.Fatalf("server fail = %v, want ErrReset", srvFail)
	}
	if srvConn.State() != StateClosed {
		t.Fatalf("server state = %v", srvConn.State())
	}
}

func TestBidirectionalSimultaneousData(t *testing.T) {
	p := newPair(10)
	big := func(tag byte, n int) []byte {
		b := make([]byte, n)
		for i := range b {
			b[i] = tag
		}
		return b
	}
	var srvGot, cliGot bytes.Buffer
	Listen(p.server, 80, func(c *Conn) Callbacks {
		return Callbacks{
			OnEstablished: func(c *Conn) { c.Write(big('s', 50000)); c.Close() },
			OnData:        func(c *Conn, d []byte) { srvGot.Write(d) },
			OnPeerClose:   func(c *Conn) {},
		}
	}, DefaultConfig())
	Dial(p.client, netsim.HostPort{IP: serverIP, Port: 80}, Callbacks{
		OnEstablished: func(c *Conn) { c.Write(big('c', 50000)); c.Close() },
		OnData:        func(c *Conn, d []byte) { cliGot.Write(d) },
	}, DefaultConfig())
	p.net.RunUntilIdle(500000)
	if srvGot.Len() != 50000 || cliGot.Len() != 50000 {
		t.Fatalf("srv=%d cli=%d, want 50000 each", srvGot.Len(), cliGot.Len())
	}
}

func TestWriteAfterCloseDiscarded(t *testing.T) {
	p := newPair(11)
	var got bytes.Buffer
	Listen(p.server, 80, func(c *Conn) Callbacks {
		return Callbacks{
			OnData:      func(c *Conn, d []byte) { got.Write(d) },
			OnPeerClose: func(c *Conn) { c.Close() },
		}
	}, DefaultConfig())
	Dial(p.client, netsim.HostPort{IP: serverIP, Port: 80}, Callbacks{
		OnEstablished: func(c *Conn) {
			c.Write([]byte("before"))
			c.Close()
			c.Write([]byte("after"))
		},
	}, DefaultConfig())
	p.net.RunUntilIdle(10000)
	if got.String() != "before" {
		t.Fatalf("server got %q, want only pre-close data", got.String())
	}
}

func TestManySequentialConnections(t *testing.T) {
	p := newPair(12)
	served := 0
	Listen(p.server, 80, func(c *Conn) Callbacks {
		return Callbacks{
			OnData: func(c *Conn, d []byte) {
				served++
				c.Write(d)
				c.Close()
			},
		}
	}, DefaultConfig())
	const N = 50
	finished := 0
	var dial func(i int)
	dial = func(i int) {
		if i >= N {
			return
		}
		Dial(p.client, netsim.HostPort{IP: serverIP, Port: 80}, Callbacks{
			OnEstablished: func(c *Conn) { c.Write([]byte(fmt.Sprintf("req-%d", i))) },
			OnPeerClose: func(c *Conn) {
				c.Close()
				finished++
				dial(i + 1)
			},
		}, DefaultConfig())
	}
	dial(0)
	p.net.RunUntilIdle(1_000_000)
	if served != N || finished != N {
		t.Fatalf("served=%d finished=%d, want %d", served, finished, N)
	}
}

func TestSeqCompareProperties(t *testing.T) {
	// seqLT must behave like signed distance comparison, handling wraparound.
	f := func(a, b uint32) bool {
		d := int32(a - b)
		if d < 0 {
			return seqLT(a, b) && !seqLT(b, a)
		}
		if d > 0 {
			return !seqLT(a, b) && seqLT(b, a)
		}
		return !seqLT(a, b) && !seqLT(b, a) && seqLEQ(a, b)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestSeqWraparoundTransfer(t *testing.T) {
	// Force an ISN near the 32-bit boundary and push enough data across it.
	p := newPair(13)
	payload := make([]byte, 64*1024)
	for i := range payload {
		payload[i] = byte(i * 7)
	}
	var got bytes.Buffer
	Listen(p.server, 80, func(c *Conn) Callbacks {
		return Callbacks{
			OnEstablished: func(c *Conn) {
				// Rewind the server's sequence space to just before wrap.
				c.iss = 0xFFFFF000
				c.sndUna = c.iss
				c.sndNxt = c.iss + 1
				c.bufSeq = c.iss + 1
				c.Write(payload)
				c.Close()
			},
		}
	}, DefaultConfig())
	// The ISN override above happens after SYN-ACK is sent with the real
	// ISN, so instead exercise wraparound purely via seq arithmetic on the
	// client side by dialing normally: the property test above plus a
	// deterministic high-ISN unit test below cover the arithmetic.
	_ = got
	conn := &Conn{cfg: DefaultConfig()}
	conn.iss = 0xFFFFFFF0
	conn.sndUna = conn.iss + 1
	conn.sndNxt = conn.iss + 1
	conn.bufSeq = conn.iss + 1
	if conn.inflight() != 0 {
		t.Fatal("inflight at wrap boundary")
	}
	conn.sndNxt += 0x100 // crosses zero
	if conn.inflight() != 0x100 {
		t.Fatalf("inflight across wrap = %d", conn.inflight())
	}
}

func TestStateStrings(t *testing.T) {
	states := []State{StateSynSent, StateSynReceived, StateEstablished,
		StateFinWait, StateCloseWait, StateLastAck, StateClosed, State(99)}
	for _, s := range states {
		if s.String() == "" {
			t.Errorf("state %d has empty string", int(s))
		}
	}
}

func TestListenerClose(t *testing.T) {
	p := newPair(14)
	l := Listen(p.server, 80, func(c *Conn) Callbacks { return Callbacks{} }, DefaultConfig())
	l.Close()
	cfg := DefaultConfig()
	cfg.MaxRetries = 1
	var failErr error
	Dial(p.client, netsim.HostPort{IP: serverIP, Port: 80}, Callbacks{
		OnFail: func(c *Conn, err error) { failErr = err },
	}, cfg)
	p.net.RunUntilIdle(1000)
	if failErr == nil {
		t.Fatal("dial to closed listener should fail")
	}
}

func TestDuplicateDataSuppressed(t *testing.T) {
	// Deliver every data packet twice; the application must see each byte once.
	p := newPair(15)
	n := p.net
	orig := make(chan struct{}) // unused; just documents intent
	_ = orig
	var tracer func(ev netsim.TraceEvent)
	dup := map[*netsim.Packet]bool{}
	tracer = func(ev netsim.TraceEvent) {
		pkt := ev.Packet
		if !ev.Dropped && len(pkt.Payload) > 0 && !dup[pkt] {
			clone := pkt.Clone()
			dup[clone] = true
			n.Send(clone)
		}
	}
	n.SetTracer(tracer)
	payload := []byte("exactly-once-delivery-check")
	var got bytes.Buffer
	Listen(p.server, 80, func(c *Conn) Callbacks {
		return Callbacks{OnEstablished: func(c *Conn) { c.Write(payload); c.Close() }}
	}, DefaultConfig())
	Dial(p.client, netsim.HostPort{IP: serverIP, Port: 80}, Callbacks{
		OnData:      func(c *Conn, d []byte) { got.Write(d) },
		OnPeerClose: func(c *Conn) { c.Close() },
	}, DefaultConfig())
	n.RunUntilIdle(10000)
	if got.String() != string(payload) {
		t.Fatalf("got %q, want %q exactly once", got.String(), payload)
	}
}
