package stateless

import (
	"math/rand"
	"testing"

	"repro/internal/netsim"
	"repro/internal/rules"
)

func tupleFor(i int) netsim.FourTuple {
	return netsim.FourTuple{
		Src: netsim.HostPort{IP: netsim.IP(0x0a000000 + uint32(i)), Port: uint16(30000 + i%1000)},
		Dst: netsim.HostPort{IP: 0x0afe0001, Port: 80},
	}
}

func testTable() (*Table, netsim.IP, []netsim.IP) {
	t := New(0x1234abcd)
	vip := netsim.IP(0x0afe0001)
	insts := []netsim.IP{0x0a010001, 0x0a010002, 0x0a010003, 0x0a010004}
	pool := []Backend{
		{Name: "a", Addr: netsim.HostPort{IP: 0x0a020001, Port: 8080}, Weight: 1},
		{Name: "b", Addr: netsim.HostPort{IP: 0x0a020002, Port: 8080}, Weight: 2},
		{Name: "c", Addr: netsim.HostPort{IP: 0x0a020003, Port: 8080}, Weight: 1},
	}
	t.SetVIP(vip, VIPEntry{Instances: insts, Pool: pool})
	for i, ip := range insts {
		t.RegisterRange(ip, uint16(20000+i*2000), 2000)
	}
	return t, vip, insts
}

// Owner must equal plain rendezvous over the live subset: skipping dead
// picks down the chain is equivalent to never having listed them.
func TestOwnerEqualsRendezvousOverLiveSubset(t *testing.T) {
	tbl, vip, insts := testTable()
	tbl.MarkDead(insts[1])
	tbl.MarkDead(insts[3])
	live := []netsim.IP{insts[0], insts[2]}
	for i := 0; i < 500; i++ {
		ft := tupleFor(i)
		got, ok := tbl.Owner(vip, ft)
		if !ok {
			t.Fatalf("no owner for %v", ft)
		}
		if want := Rendezvous(ft, live); got != want {
			t.Fatalf("tuple %d: chain-walk owner %v != rendezvous over live %v", i, got, want)
		}
	}
	// All dead: no owner.
	tbl.MarkDead(insts[0])
	tbl.MarkDead(insts[2])
	if _, ok := tbl.Owner(vip, tupleFor(0)); ok {
		t.Fatal("owner reported with every instance dead")
	}
}

func TestDeadOwnerCandidatesChain(t *testing.T) {
	tbl, vip, _ := testTable()
	var buf []netsim.IP
	// Owner alive: no candidates.
	if c := tbl.DeadOwnerCandidates(vip, tupleFor(7), buf); len(c) != 0 {
		t.Fatalf("candidates with alive owner: %v", c)
	}
	// Kill the first pick for some tuple: exactly that instance becomes
	// the single candidate, and the new owner differs.
	ft := tupleFor(7)
	first, _ := tbl.Owner(vip, ft)
	tbl.MarkDead(first)
	c := tbl.DeadOwnerCandidates(vip, ft, buf)
	if len(c) != 1 || c[0] != first {
		t.Fatalf("candidates = %v, want [%v]", c, first)
	}
	second, ok := tbl.Owner(vip, ft)
	if !ok || second == first {
		t.Fatalf("owner after death = %v ok=%v", second, ok)
	}
	// Kill the second too: chain order preserved.
	tbl.MarkDead(second)
	c = tbl.DeadOwnerCandidates(vip, ft, c)
	if len(c) != 2 || c[0] != first || c[1] != second {
		t.Fatalf("candidates = %v, want [%v %v]", c, first, second)
	}
	// Revive clears.
	tbl.Revive(first)
	if c := tbl.DeadOwnerCandidates(vip, ft, c); len(c) != 0 {
		t.Fatalf("candidates after revive: %v", c)
	}
}

// PreferredPort must decode back to its instance with current=true, land
// in the current epoch's quarter, and go stale (current=false) after a
// bump that changes the epoch's low bits.
func TestPreferredPortDecodeRoundTrip(t *testing.T) {
	tbl, _, insts := testTable()
	for epoch := 0; epoch < 6; epoch++ {
		for i := 0; i < 200; i++ {
			ft := tupleFor(i)
			inst := insts[i%len(insts)]
			port, ok := tbl.PreferredPort(inst, ft)
			if !ok {
				t.Fatalf("no preferred port for %v", inst)
			}
			owner, current, ok := tbl.DecodeCookie(port)
			if !ok || owner != inst || !current {
				t.Fatalf("epoch %d: port %d decoded to owner=%v current=%v ok=%v", epoch, port, owner, current, ok)
			}
			tbl.Bump()
			if _, current, ok := tbl.DecodeCookie(port); !ok || current {
				t.Fatalf("port %d still current after bump (ok=%v)", port, ok)
			}
			// Restore the epoch for the next iteration's expectations.
			tbl.epoch--
		}
		tbl.Bump()
	}
}

func TestDecodeCookieRejectsTailAndForeign(t *testing.T) {
	tbl, _, insts := testTable()
	r, _ := tbl.rangeOf(insts[0])
	quarter := r.Count / 4
	// The range tail beyond the four quarters is sequential-fallback
	// territory — never cookie-coded.
	for off := 4 * quarter; off < r.Count; off++ {
		if _, _, ok := tbl.DecodeCookie(r.Base + off); ok {
			t.Fatalf("tail port %d decoded ok", r.Base+off)
		}
	}
	// Ports outside every range.
	for _, p := range []uint16{0, 80, 19999, 28000, 65535} {
		if _, _, ok := tbl.DecodeCookie(p); ok {
			t.Fatalf("foreign port %d decoded ok", p)
		}
	}
	// A restarted instance re-registering an overlapping range wins over
	// the old registration.
	tbl.RegisterRange(insts[3], r.Base, r.Count)
	owner, _, ok := tbl.DecodeCookie(r.Base)
	if !ok || owner != insts[3] {
		t.Fatalf("overlap decode: owner=%v ok=%v, want %v", owner, ok, insts[3])
	}
}

func TestPoolFromRules(t *testing.T) {
	be := func(n string, ip netsim.IP) rules.Backend {
		return rules.Backend{Name: n, Addr: netsim.HostPort{IP: ip, Port: 8080}}
	}
	split := rules.Rule{
		Action: rules.Action{Type: rules.ActionSplit, Split: []rules.WeightedBackend{
			{Backend: be("a", 1), Weight: 1},
			{Backend: be("b", 2), Weight: 3},
		}},
	}
	pool, ok := PoolFromRules([]rules.Rule{split})
	if !ok || len(pool) != 2 || pool[1].Weight != 3 || pool[0].Name != "a" {
		t.Fatalf("simple split not derivable: %v %v", pool, ok)
	}
	// Universal glob is still universal.
	g := split
	g.Match.URLGlob = "*"
	if _, ok := PoolFromRules([]rules.Rule{g}); !ok {
		t.Fatal("universal glob rejected")
	}
	reject := []struct {
		name string
		rs   []rules.Rule
	}{
		{"empty", nil},
		{"two rules", []rules.Rule{split, split}},
		{"url match", func() []rules.Rule { r := split; r.Match.URLGlob = "*.jpg"; return []rules.Rule{r} }()},
		{"header match", func() []rules.Rule { r := split; r.Match.HeaderName = "X-Y"; return []rules.Rule{r} }()},
		{"cookie match", func() []rules.Rule { r := split; r.Match.CookieName = "sid"; return []rules.Rule{r} }()},
		{"least-loaded weight", func() []rules.Rule {
			r := split
			r.Action.Split = []rules.WeightedBackend{{Backend: be("a", 1), Weight: -1}}
			return []rules.Rule{r}
		}()},
		{"sticky table", func() []rules.Rule {
			r := split
			r.Action.Type = rules.ActionTable
			return []rules.Rule{r}
		}()},
	}
	for _, tc := range reject {
		if _, ok := PoolFromRules(tc.rs); ok {
			t.Fatalf("%s: derivable, want rejected", tc.name)
		}
	}
}

func TestDeriveBackendDistributionAndDeterminism(t *testing.T) {
	tbl, vip, _ := testTable()
	counts := map[string]int{}
	const N = 20000
	for i := 0; i < N; i++ {
		b, ok := tbl.DeriveBackend(vip, tupleFor(i))
		if !ok {
			t.Fatal("derivation failed")
		}
		b2, _ := tbl.DeriveBackend(vip, tupleFor(i))
		if b2 != b {
			t.Fatal("derivation not deterministic")
		}
		counts[b.Name]++
	}
	// Weights 1:2:1 — each share within 3 points of expectation.
	for name, want := range map[string]float64{"a": 0.25, "b": 0.5, "c": 0.25} {
		got := float64(counts[name]) / N
		if got < want-0.03 || got > want+0.03 {
			t.Fatalf("backend %s share = %.3f, want ~%.2f", name, got, want)
		}
	}
	if _, ok := tbl.DeriveBackend(netsim.IP(99), tupleFor(0)); ok {
		t.Fatal("unknown VIP derivable")
	}
}

func TestISNKeyStableNonZero(t *testing.T) {
	a, b := New(7), New(7)
	if a.ISNKey() == 0 || a.ISNKey() != b.ISNKey() {
		t.Fatalf("ISNKey = %d / %d", a.ISNKey(), b.ISNKey())
	}
	if New(8).ISNKey() == a.ISNKey() {
		t.Fatal("ISNKey independent of secret")
	}
}

// FuzzCookieDecode: no port, however malformed or stale, may ever decode
// to an unregistered owner, a port outside the owner's range, or a
// cookie-coded slot in the sequential-fallback tail — those are exactly
// the properties the recovery path relies on before trusting a knock.
func FuzzCookieDecode(f *testing.F) {
	f.Add(uint16(20000), uint64(0))
	f.Add(uint16(27999), uint64(3))
	f.Add(uint16(0), uint64(1<<63))
	f.Add(uint16(65535), uint64(42))
	f.Fuzz(func(t *testing.T, port uint16, epoch uint64) {
		tbl, _, insts := testTable()
		tbl.epoch = epoch
		registered := map[netsim.IP]bool{}
		for _, ip := range insts {
			registered[ip] = true
		}
		owner, current, ok := tbl.DecodeCookie(port)
		if !ok {
			if owner != 0 || current {
				t.Fatalf("!ok decode leaked owner=%v current=%v", owner, current)
			}
			return
		}
		if !registered[owner] {
			t.Fatalf("port %d decoded to unregistered owner %v", port, owner)
		}
		r, rok := tbl.rangeOf(owner)
		if !rok {
			t.Fatalf("owner %v has no range", owner)
		}
		off := port - r.Base
		if port < r.Base || uint32(port) >= uint32(r.Base)+uint32(r.Count) {
			t.Fatalf("port %d outside owner range [%d,%d)", port, r.Base, r.Base+r.Count)
		}
		quarter := r.Count / 4
		if off >= 4*quarter {
			t.Fatalf("tail port %d decoded ok", port)
		}
		if current != (off/quarter == uint16(epoch&3)) {
			t.Fatalf("current bit wrong for port %d epoch %d", port, epoch)
		}
	})
}

// FuzzDeriveBackend: whatever the tuple, a successful derivation must
// return a member of the VIP's recorded pool — recovery may never
// install a flow toward a backend the policy does not list.
func FuzzDeriveBackend(f *testing.F) {
	f.Add(uint32(0x0a000001), uint16(31000), uint64(0))
	f.Add(uint32(0), uint16(0), uint64(7))
	f.Add(^uint32(0), ^uint16(0), ^uint64(0))
	f.Fuzz(func(t *testing.T, srcIP uint32, srcPort uint16, epoch uint64) {
		tbl, vip, _ := testTable()
		tbl.epoch = epoch
		e, _ := tbl.VIP(vip)
		inPool := map[Backend]bool{}
		for _, b := range e.Pool {
			inPool[b] = true
		}
		ft := netsim.FourTuple{
			Src: netsim.HostPort{IP: netsim.IP(srcIP), Port: srcPort},
			Dst: netsim.HostPort{IP: vip, Port: 80},
		}
		b, ok := tbl.DeriveBackend(vip, ft)
		if !ok {
			t.Fatal("fully-weighted pool not derivable")
		}
		if !inPool[b] {
			t.Fatalf("derived backend %+v not in pool", b)
		}
		if d := tbl.Draw(ft); d < 0 || d >= 1 {
			t.Fatalf("draw out of range: %v", d)
		}
	})
}

// Rendezvous stability: removing a non-winning instance never changes
// the pick (the property the dead-skip chain walk depends on).
func TestRendezvousRemovalStability(t *testing.T) {
	insts := []netsim.IP{0x0a010001, 0x0a010002, 0x0a010003, 0x0a010004, 0x0a010005}
	rng := rand.New(rand.NewSource(1))
	for i := 0; i < 300; i++ {
		ft := tupleFor(i)
		win := Rendezvous(ft, insts)
		drop := insts[rng.Intn(len(insts))]
		if drop == win {
			continue
		}
		rest := removeIP(append([]netsim.IP(nil), insts...), drop)
		if got := Rendezvous(ft, rest); got != win {
			t.Fatalf("pick changed from %v to %v after removing loser %v", win, got, drop)
		}
	}
}
