// Package stateless derives the recoverable part of Yoda's flow state
// from values the packets already carry, in the spirit of Cohen et al.'s
// hybrid stateful/stateless load balancing: most flows never need the
// durable store because everything the data plane wrote about them is a
// deterministic function of the 5-tuple, a per-deployment secret, and a
// small versioned epoch table.
//
// The derivable pieces are:
//
//   - backend choice: the L7 split decision replayed from a keyed hash of
//     the client tuple over the VIP's recorded backend pool (mirroring
//     rules.pickSplit's positive-weight walk with every backend alive);
//   - SNAT source port: a cookie-coded port inside the owning instance's
//     registered range, carrying the mapping-epoch's low bits so stale
//     flows are detectable (DecodeCookie);
//   - owning instance: rendezvous hashing over the epoch entry's
//     instance list, bit-identical to the l4lb mux pick, with dead
//     instances skipped the same way the mux skips them;
//   - backend ISN: a SYN-cookie-style keyed hash (tcp.DeterministicISN
//     with ISNKey) that lets a recovering instance rebuild the Delta
//     sequence translation without reading the record back.
//
// Everything else — keep-alive backend switches, TLS session keys, flows
// whose selection deviated from the derivation (sticky hits, health
// drift, port-collision fallback, stale mux mappings) — is residue that
// stays on the paper-faithful persist-before-ACK path. The write-time
// self-check in core compares the derivation's outcome against the state
// actually installed, so residue classification is sound by construction
// rather than by enumerating causes.
//
// Epoch discipline: planned reconfiguration bumps the epoch and flushes
// still-unpersisted flows to the store before new flows are admitted
// under the new mapping, so an unpersisted orphan is always established
// under the current epoch and derivation against the current entry is
// correct. Instance death deliberately does NOT bump the epoch — the
// whole point is recovering the dead instance's unpersisted flows, which
// requires the entry they were established under to stay current.
package stateless

import (
	"repro/internal/netsim"
	"repro/internal/rules"
)

// FNV-1a constants, inlined to match internal/l4lb exactly.
const (
	fnvOffset64 uint64 = 14695981039346656037
	fnvPrime64  uint64 = 1099511628211
)

// Salt constants separating the table's independent hash domains.
const (
	drawSalt uint64 = 0x9e3779b97f4a7c15 // backend-split draw
	portSalt uint64 = 0xc2b2ae3d27d4eb4f // SNAT preferred-port offset
	isnSalt  uint64 = 0x165667b19e3779f9 // derived tcp.Config.ISNKey
)

// Backend is one member of a VIP's derivable split pool.
type Backend struct {
	Name   string
	Addr   netsim.HostPort
	Weight float64
}

// VIPEntry is the epoch table's snapshot for one VIP: the instance list
// the muxes spread its flows over and the backend pool the L7 split
// draws from. Both are immutable once installed; reconfiguration
// installs a fresh entry and bumps the epoch.
type VIPEntry struct {
	Instances []netsim.IP
	Pool      []Backend
}

// Range is one instance's registered SNAT port range.
type Range struct {
	Inst  netsim.IP
	Base  uint16
	Count uint16
}

// Table is the shared derivation state: a per-deployment secret, the
// current mapping epoch, per-VIP entries, the SNAT range registry, and
// the set of instances currently considered dead. One Table is shared by
// every instance of a cluster (single-shard) or consulted with external
// synchronization (the controller mutates it only between waves; the
// sharded cluster restricts control-plane mutation exactly as it already
// does for rule installs).
type Table struct {
	secret uint64
	epoch  uint64
	vips   map[netsim.IP]VIPEntry
	ranges []Range // append-only; later registrations win on conflicts
	dead   map[netsim.IP]bool
}

// New creates a table with the given per-deployment secret.
func New(secret uint64) *Table {
	return &Table{
		secret: secret,
		vips:   make(map[netsim.IP]VIPEntry),
		dead:   make(map[netsim.IP]bool),
	}
}

// ISNKey returns the non-zero tcp.Config.ISNKey backends must use so the
// data plane can re-derive their initial sequence numbers.
func (t *Table) ISNKey() uint64 {
	k := mix64(t.secret ^ isnSalt)
	if k == 0 {
		k = 1
	}
	return k
}

// Epoch returns the current mapping epoch.
func (t *Table) Epoch() uint64 { return t.epoch }

// Bump advances the mapping epoch. The caller (controller/reconfig) must
// flush still-unpersisted flows on live instances immediately after, so
// that every unpersisted flow in the system is established under the
// current epoch.
func (t *Table) Bump() { t.epoch++ }

// SetVIP installs the entry for a VIP. The slices are retained; callers
// pass fresh snapshots.
func (t *Table) SetVIP(vip netsim.IP, e VIPEntry) { t.vips[vip] = e }

// RemoveVIP forgets a VIP's entry.
func (t *Table) RemoveVIP(vip netsim.IP) { delete(t.vips, vip) }

// VIP returns the entry for a VIP.
func (t *Table) VIP(vip netsim.IP) (VIPEntry, bool) {
	e, ok := t.vips[vip]
	return e, ok
}

// RegisterRange records an instance's SNAT range. Re-registering (an
// instance restarting with a fresh range) appends; DecodeCookie prefers
// the most recent registration for overlapping ports.
func (t *Table) RegisterRange(inst netsim.IP, base, count uint16) {
	t.ranges = append(t.ranges, Range{Inst: inst, Base: base, Count: count})
}

// MarkDead records that an instance failed. Death does not bump the
// epoch (see package comment).
func (t *Table) MarkDead(inst netsim.IP) { t.dead[inst] = true }

// Revive clears an instance's dead mark after it rejoins.
func (t *Table) Revive(inst netsim.IP) { delete(t.dead, inst) }

// Dead reports whether an instance is currently marked dead.
func (t *Table) Dead(inst netsim.IP) bool { return t.dead[inst] }

// Draw maps a client tuple to a uniform [0,1) value keyed by the table
// secret — the deterministic replacement for the per-instance RNG draw
// that feeds the L7 split in hybrid mode.
func (t *Table) Draw(ft netsim.FourTuple) float64 {
	return float64(tupleHash(ft, t.secret^drawSalt)>>11) / (1 << 53)
}

// DeriveBackend replays the split decision for a client tuple against
// the VIP's recorded pool: rules.pickSplit's positive-weight walk with
// every backend alive, consuming Draw(ft) as the random value. It
// reports ok=false when the pool is not derivable (unknown VIP, empty
// pool, any non-positive weight); such VIPs simply keep every flow on
// the persisted path.
func (t *Table) DeriveBackend(vip netsim.IP, ft netsim.FourTuple) (Backend, bool) {
	e, ok := t.vips[vip]
	if !ok || len(e.Pool) == 0 {
		return Backend{}, false
	}
	total := 0.0
	for _, b := range e.Pool {
		if b.Weight <= 0 {
			return Backend{}, false
		}
		total += b.Weight
	}
	x := t.Draw(ft) * total
	for _, b := range e.Pool {
		if x < b.Weight {
			return b, true
		}
		x -= b.Weight
	}
	return e.Pool[len(e.Pool)-1], true
}

// Owner returns the instance a client tuple lands on under the current
// entry, skipping dead instances exactly the way the mux does (the
// chain-walk's first alive pick equals rendezvous over the live subset).
func (t *Table) Owner(vip netsim.IP, ft netsim.FourTuple) (netsim.IP, bool) {
	e, ok := t.vips[vip]
	if !ok || len(e.Instances) == 0 {
		return 0, false
	}
	var scratch [64]netsim.IP
	insts := append(scratch[:0], e.Instances...)
	for len(insts) > 0 {
		p := Rendezvous(ft, insts)
		if !t.dead[p] {
			return p, true
		}
		insts = removeIP(insts, p)
	}
	return 0, false
}

// DeadOwnerCandidates returns, in order, the dead instances a client
// tuple's rendezvous chain passes through before reaching an alive one:
// the instances that could have owned the flow when they died. An orphan
// with exactly one candidate can be re-derived with certainty; more than
// one means the flow's history is ambiguous and recovery must wait for
// corroboration (a backend knock or a store record).
func (t *Table) DeadOwnerCandidates(vip netsim.IP, ft netsim.FourTuple, buf []netsim.IP) []netsim.IP {
	buf = buf[:0]
	e, ok := t.vips[vip]
	if !ok || len(e.Instances) == 0 {
		return buf
	}
	var scratch [64]netsim.IP
	insts := append(scratch[:0], e.Instances...)
	for len(insts) > 0 {
		p := Rendezvous(ft, insts)
		if !t.dead[p] {
			break
		}
		buf = append(buf, p)
		insts = removeIP(insts, p)
	}
	return buf
}

// PreferredPort returns the cookie-coded SNAT source port an instance
// should try first for a client tuple: the current epoch's quarter of
// its range, offset by a keyed hash. ok=false when the instance has no
// registered range or the range is too small to quarter (such instances
// allocate sequentially and their flows stay persisted).
func (t *Table) PreferredPort(inst netsim.IP, ft netsim.FourTuple) (uint16, bool) {
	r, ok := t.rangeOf(inst)
	if !ok {
		return 0, false
	}
	quarter := r.Count / 4
	if quarter == 0 {
		return 0, false
	}
	slot := uint16(t.epoch & 3)
	off := uint16(tupleHash(ft, t.secret^portSalt) % uint64(quarter))
	return r.Base + slot*quarter + off, true
}

// DecodeCookie inspects a SNAT source port: which registered instance
// owns it, and whether its epoch bits match the current epoch. ok=false
// for ports outside every registered range and for the range tail beyond
// the four epoch quarters (sequential-fallback ports are never
// cookie-coded — those flows were persisted at the barrier).
func (t *Table) DecodeCookie(port uint16) (owner netsim.IP, current, ok bool) {
	for i := len(t.ranges) - 1; i >= 0; i-- {
		r := t.ranges[i]
		if port < r.Base || uint32(port) >= uint32(r.Base)+uint32(r.Count) {
			continue
		}
		quarter := r.Count / 4
		if quarter == 0 {
			return 0, false, false
		}
		off := port - r.Base
		if off >= 4*quarter {
			return 0, false, false
		}
		return r.Inst, off/quarter == uint16(t.epoch&3), true
	}
	return 0, false, false
}

// rangeOf returns the most recent range registered for an instance.
func (t *Table) rangeOf(inst netsim.IP) (Range, bool) {
	for i := len(t.ranges) - 1; i >= 0; i-- {
		if t.ranges[i].Inst == inst {
			return t.ranges[i], true
		}
	}
	return Range{}, false
}

func removeIP(s []netsim.IP, ip netsim.IP) []netsim.IP {
	for i, v := range s {
		if v == ip {
			return append(s[:i], s[i+1:]...)
		}
	}
	return s
}

// PoolFromRules extracts the derivable backend pool from a VIP's rule
// table: the table must be a single universally-matching weighted split
// with every weight positive. Anything richer (multiple rules, header or
// cookie matches, sticky tables, least-loaded weights) is not derivable
// and reports ok=false — flows for such VIPs all take the persisted
// path, which is always correct, just not cheap.
func PoolFromRules(rs []rules.Rule) ([]Backend, bool) {
	if len(rs) != 1 {
		return nil, false
	}
	r := rs[0]
	m := r.Match
	universal := (m.URLGlob == "" || m.URLGlob == "*") &&
		m.Host == "" && m.Method == "" &&
		m.CookieName == "" && m.CookieGlob == "" &&
		m.HeaderName == "" && m.HeaderGlob == ""
	if !universal || r.Action.Type != rules.ActionSplit || len(r.Action.Split) == 0 {
		return nil, false
	}
	pool := make([]Backend, 0, len(r.Action.Split))
	for _, wb := range r.Action.Split {
		if wb.Weight <= 0 {
			return nil, false
		}
		pool = append(pool, Backend{Name: wb.Backend.Name, Addr: wb.Backend.Addr, Weight: wb.Weight})
	}
	return pool, true
}

// Rendezvous selects an instance by highest-random-weight hashing,
// bit-identical to the l4lb mux pick (same 20-byte FNV-1a encoding, same
// splitmix64 finalizer, same first-wins tie break), so the table can
// predict exactly where the mux sends a tuple.
func Rendezvous(ft netsim.FourTuple, insts []netsim.IP) netsim.IP {
	var best netsim.IP
	var bestW uint64
	for _, ip := range insts {
		w := tupleHash(ft, uint64(ip))
		if w > bestW || best == 0 {
			best, bestW = ip, w
		}
	}
	return best
}

// tupleHash hashes a tuple with a salt, via FNV-1a over the same 20-byte
// encoding internal/l4lb uses (bit-identical — Rendezvous must agree
// with the mux).
func tupleHash(ft netsim.FourTuple, salt uint64) uint64 {
	var b [20]byte
	put32 := func(off int, v uint32) {
		b[off] = byte(v >> 24)
		b[off+1] = byte(v >> 16)
		b[off+2] = byte(v >> 8)
		b[off+3] = byte(v)
	}
	put32(0, uint32(ft.Src.IP))
	put32(4, uint32(ft.Dst.IP))
	b[8] = byte(ft.Src.Port >> 8)
	b[9] = byte(ft.Src.Port)
	b[10] = byte(ft.Dst.Port >> 8)
	b[11] = byte(ft.Dst.Port)
	put32(12, uint32(salt>>32))
	put32(16, uint32(salt))
	h := fnvOffset64
	for _, c := range b {
		h = (h ^ uint64(c)) * fnvPrime64
	}
	return mix64(h)
}

// mix64 is the splitmix64 finalizer (identical to l4lb's).
func mix64(x uint64) uint64 {
	x ^= x >> 30
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 27
	x *= 0x94d049bb133111eb
	x ^= x >> 31
	return x
}
