// Package adminapi exposes the Yoda controller over a real HTTP/JSON
// interface — the "RESTful APIs" through which the paper's components
// and operators interact (§6). The server bridges real sockets to the
// simulated cluster: every request is serialized against the simulation
// (which is single-threaded by design), and a /run endpoint advances
// virtual time, so an operator — or the yodactl CLI — can drive a whole
// deployment from the shell.
package adminapi

import "time"

// InstanceInfo describes one Yoda instance.
type InstanceInfo struct {
	Index     int     `json:"index"`
	IP        string  `json:"ip"`
	Alive     bool    `json:"alive"`
	Flows     int     `json:"flows"`
	Rules     int     `json:"rules"`
	Recovered uint64  `json:"recovered"`
	CPUBusyMs float64 `json:"cpuBusyMs"`
}

// VIPInfo describes one VIP and its current mapping.
type VIPInfo struct {
	Service   string   `json:"service"`
	VIP       string   `json:"vip"`
	Instances []string `json:"instances"`
	Rules     int      `json:"rules"`
}

// BackendInfo describes one backend server.
type BackendInfo struct {
	Name     string `json:"name"`
	Addr     string `json:"addr"`
	Alive    bool   `json:"alive"`
	Requests int    `json:"requests"`
}

// StatsInfo is the controller's aggregate view.
type StatsInfo struct {
	VirtualTime    string            `json:"virtualTime"`
	Detections     int               `json:"detections"`
	ScaleOuts      int               `json:"scaleOuts"`
	InstancesAdded int               `json:"instancesAdded"`
	TrafficPerVIP  map[string]uint64 `json:"trafficPerVip"`
}

// PolicyRequest installs or updates a VIP's rules (the §5.1 text format).
type PolicyRequest struct {
	Rules string `json:"rules"`
}

// RunRequest advances the simulation.
type RunRequest struct {
	Duration string `json:"duration"` // Go duration string, e.g. "5s"
}

// RunResponse reports the clock after a run.
type RunResponse struct {
	VirtualTime string `json:"virtualTime"`
}

// ErrorResponse carries an API error.
type ErrorResponse struct {
	Error string `json:"error"`
}

// parseDuration is a strict wrapper used by both server and client.
func parseDuration(s string) (time.Duration, error) {
	return time.ParseDuration(s)
}
