// Package adminapi exposes the Yoda controller over a real HTTP/JSON
// interface — the "RESTful APIs" through which the paper's components
// and operators interact (§6). The server bridges real sockets to the
// simulated cluster: every request is serialized against the simulation
// (which is single-threaded by design), and a /run endpoint advances
// virtual time, so an operator — or the yodactl CLI — can drive a whole
// deployment from the shell.
package adminapi

import "time"

// InstanceInfo describes one Yoda instance.
type InstanceInfo struct {
	Index     int     `json:"index"`
	IP        string  `json:"ip"`
	Alive     bool    `json:"alive"`
	Flows     int     `json:"flows"`
	Rules     int     `json:"rules"`
	Recovered uint64  `json:"recovered"`
	CPUBusyMs float64 `json:"cpuBusyMs"`
}

// VIPInfo describes one VIP and its current mapping.
type VIPInfo struct {
	Service   string   `json:"service"`
	VIP       string   `json:"vip"`
	Instances []string `json:"instances"`
	Rules     int      `json:"rules"`
}

// BackendInfo describes one backend server.
type BackendInfo struct {
	Name     string `json:"name"`
	Addr     string `json:"addr"`
	Alive    bool   `json:"alive"`
	Requests int    `json:"requests"`
}

// StatsInfo is the controller's aggregate view.
type StatsInfo struct {
	VirtualTime    string            `json:"virtualTime"`
	Detections     int               `json:"detections"`
	ScaleOuts      int               `json:"scaleOuts"`
	InstancesAdded int               `json:"instancesAdded"`
	TrafficPerVIP  map[string]uint64 `json:"trafficPerVip"`
}

// PolicyRequest installs or updates a VIP's rules (the §5.1 text format).
type PolicyRequest struct {
	Rules string `json:"rules"`
}

// RunRequest advances the simulation.
type RunRequest struct {
	Duration string `json:"duration"` // Go duration string, e.g. "5s"
}

// RunResponse reports the clock after a run.
type RunResponse struct {
	VirtualTime string `json:"virtualTime"`
}

// ReconfigRequest triggers a live reconfiguration. Exactly one of the
// two modes is used: Assignments moves VIP→instance mappings to a target
// (service name → instance indexes, as listed by /v1/instances); Upgrade
// starts a rolling upgrade of every live instance under fresh default
// configs.
type ReconfigRequest struct {
	Assignments map[string][]int `json:"assignments,omitempty"`
	Upgrade     bool             `json:"upgrade,omitempty"`
	// RestartDelay overrides the simulated per-instance reboot time for
	// upgrades (Go duration string; empty = default).
	RestartDelay string `json:"restartDelay,omitempty"`
}

// ReconfigStatus reports the reconfiguration engine's stats, plus the
// rolling upgrade's when one has been started.
type ReconfigStatus struct {
	Running             bool    `json:"running"`
	Done                bool    `json:"done"`
	Waves               int     `json:"waves"`
	MovesApplied        int     `json:"movesApplied"`
	MigratedFlows       uint64  `json:"migratedFlows"`
	DrainedFlows        uint64  `json:"drainedFlows"`
	ReleasedFlows       uint64  `json:"releasedFlows"`
	BrokenFlows         uint64  `json:"brokenFlows"`
	ResurrectedFlows    uint64  `json:"resurrectedFlows"`
	MaxWaveMigratedFrac float64 `json:"maxWaveMigratedFrac"`
	PeakInstanceFlows   int     `json:"peakInstanceFlows"`
	RulesRemoved        int     `json:"rulesRemoved"`
	DurationMs          float64 `json:"durationMs"`

	Upgrade *UpgradeStatus `json:"upgrade,omitempty"`
}

// UpgradeStatus reports a rolling upgrade's progress.
type UpgradeStatus struct {
	Instances int    `json:"instances"`
	Upgraded  int    `json:"upgraded"`
	Skipped   int    `json:"skipped"`
	Running   bool   `json:"running"`
	Done      bool   `json:"done"`
	Current   string `json:"current,omitempty"`
	Phase     string `json:"phase,omitempty"`
	Err       string `json:"err,omitempty"`
}

// ErrorResponse carries an API error.
type ErrorResponse struct {
	Error string `json:"error"`
}

// parseDuration is a strict wrapper used by both server and client.
func parseDuration(s string) (time.Duration, error) {
	return time.ParseDuration(s)
}
