package adminapi_test

import (
	"strings"
	"testing"
	"time"
)

// TestReconfigEndpoint applies a target assignment over the API and
// watches it complete through the status endpoint.
func TestReconfigEndpoint(t *testing.T) {
	w := newAPIWorld(t)
	if _, err := w.cl.Run(time.Second); err != nil {
		t.Fatal(err)
	}

	// Move the "shop" VIP from all 3 instances to the first 2.
	if err := w.cl.Reconfig(map[string][]int{"shop": {0, 1}}); err != nil {
		t.Fatal(err)
	}
	st, err := w.cl.ReconfigStatus()
	if err != nil {
		t.Fatal(err)
	}
	if st.Done {
		t.Fatalf("reconfig done before the simulation advanced: %+v", st)
	}
	if _, err := w.cl.Run(20 * time.Second); err != nil {
		t.Fatal(err)
	}
	st, err = w.cl.ReconfigStatus()
	if err != nil {
		t.Fatal(err)
	}
	if !st.Done || st.Running {
		t.Fatalf("reconfig not done: %+v", st)
	}
	if st.MovesApplied != 1 || st.RulesRemoved != 1 {
		t.Fatalf("moves=%d rulesRemoved=%d, want 1/1", st.MovesApplied, st.RulesRemoved)
	}
	// The VIP listing reflects the shrink: rules only on two instances.
	vips, err := w.cl.VIPs()
	if err != nil {
		t.Fatal(err)
	}
	if len(vips) != 1 || len(vips[0].Instances) != 2 {
		t.Fatalf("vips = %+v, want shop on 2 instances", vips)
	}
}

// TestReconfigEndpointValidation rejects unknown services, bad indexes
// and empty requests.
func TestReconfigEndpointValidation(t *testing.T) {
	w := newAPIWorld(t)
	if err := w.cl.Reconfig(map[string][]int{"nope": {0}}); err == nil || !strings.Contains(err.Error(), "unknown service") {
		t.Fatalf("unknown service: %v", err)
	}
	if err := w.cl.Reconfig(map[string][]int{"shop": {99}}); err == nil || !strings.Contains(err.Error(), "out of range") {
		t.Fatalf("bad index: %v", err)
	}
	if err := w.cl.Reconfig(nil); err == nil {
		t.Fatal("empty request accepted")
	}
}

// TestUpgradeEndpoint starts a rolling upgrade over the API and runs it
// to completion.
func TestUpgradeEndpoint(t *testing.T) {
	w := newAPIWorld(t)
	if _, err := w.cl.Run(time.Second); err != nil {
		t.Fatal(err)
	}
	if err := w.cl.StartUpgrade(); err != nil {
		t.Fatal(err)
	}
	// A second trigger while running is rejected.
	if err := w.cl.StartUpgrade(); err == nil {
		t.Fatal("concurrent upgrade accepted")
	}
	if _, err := w.cl.Run(60 * time.Second); err != nil {
		t.Fatal(err)
	}
	st, err := w.cl.ReconfigStatus()
	if err != nil {
		t.Fatal(err)
	}
	if st.Upgrade == nil {
		t.Fatalf("no upgrade status: %+v", st)
	}
	up := st.Upgrade
	if !up.Done || up.Err != "" || up.Upgraded != 3 || up.Skipped != 0 {
		t.Fatalf("upgrade = %+v, want 3/3 done", up)
	}
	insts, err := w.cl.Instances()
	if err != nil {
		t.Fatal(err)
	}
	for _, in := range insts {
		if !in.Alive || in.Rules == 0 {
			t.Fatalf("instance after upgrade: %+v", in)
		}
	}
}
