package adminapi_test

import (
	"strings"
	"testing"
	"time"

	"repro/internal/adminapi"
	"repro/internal/cluster"
	"repro/internal/controller"
	"repro/internal/core"
	"repro/internal/httpsim"
	"repro/internal/memcache"
	"repro/internal/netsim"
	"repro/internal/tcpstore"
)

type apiWorld struct {
	c   *cluster.Cluster
	ct  *controller.Controller
	srv *adminapi.Server
	cl  *adminapi.Client
	vip netsim.IP
}

func newAPIWorld(t *testing.T) *apiWorld {
	t.Helper()
	c := cluster.New(51)
	c.AddStoreServers(2, memcache.DefaultSimServerConfig())
	objs := map[string][]byte{"/x": []byte("data")}
	c.AddBackend("srv-1", objs, httpsim.DefaultServerConfig())
	c.AddBackend("srv-2", objs, httpsim.DefaultServerConfig())
	c.AddYodaN(3, core.DefaultConfig(), tcpstore.DefaultConfig())
	vip := c.AddVIP("shop")
	ct := controller.New(c, controller.DefaultConfig())
	ct.SetPolicy(vip, c.SimpleSplitRules("srv-1", "srv-2"), nil)
	ct.Start()
	srv := adminapi.NewServer(c, ct)
	if err := srv.Start("127.0.0.1:0"); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(srv.Close)
	return &apiWorld{c: c, ct: ct, srv: srv, cl: adminapi.NewClient(srv.Addr()), vip: vip}
}

func TestInstancesEndpoint(t *testing.T) {
	w := newAPIWorld(t)
	insts, err := w.cl.Instances()
	if err != nil {
		t.Fatal(err)
	}
	if len(insts) != 3 {
		t.Fatalf("instances = %d", len(insts))
	}
	for _, in := range insts {
		if !in.Alive || in.Rules != 1 {
			t.Fatalf("instance: %+v", in)
		}
		if !strings.HasPrefix(in.IP, "10.0.1.") {
			t.Fatalf("instance IP: %q", in.IP)
		}
	}
}

func TestVIPsAndBackendsEndpoints(t *testing.T) {
	w := newAPIWorld(t)
	vips, err := w.cl.VIPs()
	if err != nil {
		t.Fatal(err)
	}
	if len(vips) != 1 || vips[0].Service != "shop" || len(vips[0].Instances) != 3 {
		t.Fatalf("vips: %+v", vips)
	}
	bs, err := w.cl.Backends()
	if err != nil {
		t.Fatal(err)
	}
	if len(bs) != 2 || !bs[0].Alive {
		t.Fatalf("backends: %+v", bs)
	}
}

func TestRunAndStatsEndpoints(t *testing.T) {
	w := newAPIWorld(t)
	// Generate some traffic inside virtual time.
	cl := w.c.NewClient(httpsim.DefaultClientConfig())
	cl.Get(netsim.HostPort{IP: w.vip, Port: 80}, "/x", func(*httpsim.FetchResult) {})
	now, err := w.cl.Run(5 * time.Second)
	if err != nil {
		t.Fatal(err)
	}
	if now < 5*time.Second {
		t.Fatalf("virtual time = %v", now)
	}
	st, err := w.cl.Stats()
	if err != nil {
		t.Fatal(err)
	}
	if st.TrafficPerVIP["shop"] != 1 {
		t.Fatalf("traffic: %+v", st)
	}
}

func TestFailInstanceEndpoint(t *testing.T) {
	w := newAPIWorld(t)
	if err := w.cl.FailInstance(0); err != nil {
		t.Fatal(err)
	}
	if _, err := w.cl.Run(2 * time.Second); err != nil {
		t.Fatal(err)
	}
	insts, _ := w.cl.Instances()
	if insts[0].Alive {
		t.Fatal("instance 0 still alive")
	}
	st, _ := w.cl.Stats()
	if st.Detections != 1 {
		t.Fatalf("detections = %d", st.Detections)
	}
	// Out of range fails cleanly.
	if err := w.cl.FailInstance(99); err == nil {
		t.Fatal("no error for bad index")
	}
}

func TestSetPolicyEndpoint(t *testing.T) {
	w := newAPIWorld(t)
	err := w.cl.SetPolicy("shop", "rule all prio=1 url=* split=srv-1:1")
	if err != nil {
		t.Fatal(err)
	}
	// Traffic now goes only to srv-1.
	for i := 0; i < 6; i++ {
		cl := w.c.NewClient(httpsim.DefaultClientConfig())
		cl.Get(netsim.HostPort{IP: w.vip, Port: 80}, "/x", func(*httpsim.FetchResult) {})
	}
	if _, err := w.cl.Run(10 * time.Second); err != nil {
		t.Fatal(err)
	}
	bs, _ := w.cl.Backends()
	for _, b := range bs {
		if b.Name == "srv-2" && b.Requests != 0 {
			t.Fatalf("srv-2 got %d requests after policy pin", b.Requests)
		}
		if b.Name == "srv-1" && b.Requests != 6 {
			t.Fatalf("srv-1 got %d requests, want 6", b.Requests)
		}
	}
	// Errors surface: unknown service, bad rule text.
	if err := w.cl.SetPolicy("ghost", "rule r prio=1 url=* split=srv-1:1"); err == nil {
		t.Fatal("no error for unknown service")
	}
	if err := w.cl.SetPolicy("shop", "rule broken prio=x"); err == nil {
		t.Fatal("no error for bad rule text")
	}
}

func TestRunValidation(t *testing.T) {
	w := newAPIWorld(t)
	if _, err := w.cl.Run(-time.Second); err == nil {
		t.Fatal("negative duration accepted")
	}
	if _, err := w.cl.Run(48 * time.Hour); err == nil {
		t.Fatal("oversized duration accepted")
	}
}
