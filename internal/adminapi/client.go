package adminapi

import (
	"bytes"
	"encoding/json"
	"fmt"
	"net/http"
	"time"
)

// Client is a typed HTTP client for the admin API, used by the yodactl
// CLI and tests.
type Client struct {
	base string
	hc   *http.Client
}

// NewClient creates a client for the server at addr ("host:port").
func NewClient(addr string) *Client {
	return &Client{
		base: "http://" + addr,
		hc:   &http.Client{Timeout: 30 * time.Second},
	}
}

func (c *Client) get(path string, out interface{}) error {
	resp, err := c.hc.Get(c.base + path)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	return decodeAPI(resp, out)
}

func (c *Client) send(method, path string, body, out interface{}) error {
	var buf bytes.Buffer
	if body != nil {
		if err := json.NewEncoder(&buf).Encode(body); err != nil {
			return err
		}
	}
	req, err := http.NewRequest(method, c.base+path, &buf)
	if err != nil {
		return err
	}
	req.Header.Set("Content-Type", "application/json")
	resp, err := c.hc.Do(req)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	return decodeAPI(resp, out)
}

func decodeAPI(resp *http.Response, out interface{}) error {
	if resp.StatusCode/100 != 2 {
		var e ErrorResponse
		if err := json.NewDecoder(resp.Body).Decode(&e); err == nil && e.Error != "" {
			return fmt.Errorf("adminapi: %s (HTTP %d)", e.Error, resp.StatusCode)
		}
		return fmt.Errorf("adminapi: HTTP %d", resp.StatusCode)
	}
	if out == nil {
		return nil
	}
	return json.NewDecoder(resp.Body).Decode(out)
}

// Instances lists the Yoda instances.
func (c *Client) Instances() ([]InstanceInfo, error) {
	var out []InstanceInfo
	err := c.get("/v1/instances", &out)
	return out, err
}

// VIPs lists the services and their mappings.
func (c *Client) VIPs() ([]VIPInfo, error) {
	var out []VIPInfo
	err := c.get("/v1/vips", &out)
	return out, err
}

// Backends lists backend servers and health.
func (c *Client) Backends() ([]BackendInfo, error) {
	var out []BackendInfo
	err := c.get("/v1/backends", &out)
	return out, err
}

// Stats returns the controller's aggregate view.
func (c *Client) Stats() (StatsInfo, error) {
	var out StatsInfo
	err := c.get("/v1/stats", &out)
	return out, err
}

// SetPolicy installs a rule set (text format, §5.1) for a service.
func (c *Client) SetPolicy(service, rulesText string) error {
	return c.send(http.MethodPut, "/v1/policies/"+service, PolicyRequest{Rules: rulesText}, nil)
}

// FailInstance kills Yoda instance idx.
func (c *Client) FailInstance(idx int) error {
	return c.send(http.MethodPost, fmt.Sprintf("/v1/instances/%d/fail", idx), struct{}{}, nil)
}

// Reconfig applies a target assignment (service → instance indexes)
// through the reconfiguration engine.
func (c *Client) Reconfig(assignments map[string][]int) error {
	return c.send(http.MethodPost, "/v1/reconfig", ReconfigRequest{Assignments: assignments}, nil)
}

// StartUpgrade begins a rolling upgrade of every live instance.
func (c *Client) StartUpgrade() error {
	return c.send(http.MethodPost, "/v1/reconfig", ReconfigRequest{Upgrade: true}, nil)
}

// ReconfigStatus reports the reconfiguration engine's stats.
func (c *Client) ReconfigStatus() (ReconfigStatus, error) {
	var out ReconfigStatus
	err := c.get("/v1/reconfig/status", &out)
	return out, err
}

// Run advances the simulation by d of virtual time.
func (c *Client) Run(d time.Duration) (time.Duration, error) {
	var out RunResponse
	if err := c.send(http.MethodPost, "/v1/run", RunRequest{Duration: d.String()}, &out); err != nil {
		return 0, err
	}
	return time.ParseDuration(out.VirtualTime)
}
