package adminapi

import (
	"encoding/json"
	"fmt"
	"net"
	"net/http"
	"sort"
	"strconv"
	"strings"
	"sync"
	"time"

	"repro/internal/cluster"
	"repro/internal/controller"
	"repro/internal/core"
	"repro/internal/netsim"
	"repro/internal/reconfig"
	"repro/internal/rules"
	"repro/internal/tcpstore"
)

// Server bridges HTTP requests to a simulated cluster and its
// controller. All access to the simulation is serialized by mu; the
// simulation only advances through the /v1/run endpoint (or the owning
// program while no request is in flight).
type Server struct {
	mu sync.Mutex
	c  *cluster.Cluster
	ct *controller.Controller

	httpSrv *http.Server
	lis     net.Listener
}

// NewServer creates a server over the cluster/controller pair.
func NewServer(c *cluster.Cluster, ct *controller.Controller) *Server {
	return &Server{c: c, ct: ct}
}

// Start listens on addr (e.g. "127.0.0.1:0") and serves in background
// goroutines until Close.
func (s *Server) Start(addr string) error {
	lis, err := net.Listen("tcp", addr)
	if err != nil {
		return err
	}
	s.lis = lis
	mux := http.NewServeMux()
	mux.HandleFunc("/v1/instances", s.handleInstances)
	mux.HandleFunc("/v1/instances/", s.handleInstanceAction)
	mux.HandleFunc("/v1/vips", s.handleVIPs)
	mux.HandleFunc("/v1/policies/", s.handlePolicy)
	mux.HandleFunc("/v1/backends", s.handleBackends)
	mux.HandleFunc("/v1/stats", s.handleStats)
	mux.HandleFunc("/v1/reconfig", s.handleReconfig)
	mux.HandleFunc("/v1/reconfig/status", s.handleReconfigStatus)
	mux.HandleFunc("/v1/run", s.handleRun)
	s.httpSrv = &http.Server{Handler: mux}
	go s.httpSrv.Serve(lis)
	return nil
}

// Addr returns the bound address.
func (s *Server) Addr() string {
	if s.lis == nil {
		return ""
	}
	return s.lis.Addr().String()
}

// Close shuts the server down.
func (s *Server) Close() {
	if s.httpSrv != nil {
		s.httpSrv.Close()
	}
}

func writeJSON(w http.ResponseWriter, code int, v interface{}) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	json.NewEncoder(w).Encode(v)
}

func writeErr(w http.ResponseWriter, code int, format string, args ...interface{}) {
	writeJSON(w, code, ErrorResponse{Error: fmt.Sprintf(format, args...)})
}

func (s *Server) handleInstances(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		writeErr(w, http.StatusMethodNotAllowed, "GET only")
		return
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]InstanceInfo, 0, len(s.c.Yoda))
	for i, in := range s.c.Yoda {
		out = append(out, InstanceInfo{
			Index:     i,
			IP:        in.IP().String(),
			Alive:     in.Host().Alive(),
			Flows:     in.FlowCount(),
			Rules:     in.RuleCount(),
			Recovered: in.Recovered,
			CPUBusyMs: float64(in.CPU.BusyTotal()) / float64(time.Millisecond),
		})
	}
	writeJSON(w, http.StatusOK, out)
}

// handleInstanceAction handles POST /v1/instances/{idx}/fail.
func (s *Server) handleInstanceAction(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		writeErr(w, http.StatusMethodNotAllowed, "POST only")
		return
	}
	parts := strings.Split(strings.TrimPrefix(r.URL.Path, "/v1/instances/"), "/")
	if len(parts) != 2 || parts[1] != "fail" {
		writeErr(w, http.StatusNotFound, "unknown action; supported: fail")
		return
	}
	idx, err := strconv.Atoi(parts[0])
	if err != nil {
		writeErr(w, http.StatusBadRequest, "bad instance index %q", parts[0])
		return
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if idx < 0 || idx >= len(s.c.Yoda) {
		writeErr(w, http.StatusNotFound, "instance %d out of range", idx)
		return
	}
	s.c.Yoda[idx].Fail()
	writeJSON(w, http.StatusOK, map[string]string{"status": "failed"})
}

func (s *Server) handleVIPs(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		writeErr(w, http.StatusMethodNotAllowed, "GET only")
		return
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]VIPInfo, 0, len(s.c.VIPs))
	names := make([]string, 0, len(s.c.VIPs))
	for name := range s.c.VIPs {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		vip := s.c.VIPs[name]
		var insts []string
		nRules := 0
		for _, in := range s.c.Yoda {
			if in.HasVIP(vip) {
				insts = append(insts, in.IP().String())
			}
		}
		for _, in := range s.c.Yoda {
			if in.HasVIP(vip) {
				nRules = in.RuleCount()
				break
			}
		}
		out = append(out, VIPInfo{Service: name, VIP: vip.String(), Instances: insts, Rules: nRules})
	}
	writeJSON(w, http.StatusOK, out)
}

// handlePolicy handles PUT /v1/policies/{service}.
func (s *Server) handlePolicy(w http.ResponseWriter, r *http.Request) {
	service := strings.TrimPrefix(r.URL.Path, "/v1/policies/")
	if service == "" {
		writeErr(w, http.StatusBadRequest, "missing service name")
		return
	}
	if r.Method != http.MethodPut {
		writeErr(w, http.StatusMethodNotAllowed, "PUT only")
		return
	}
	var req PolicyRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		writeErr(w, http.StatusBadRequest, "bad body: %v", err)
		return
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	vip, ok := s.c.VIPs[service]
	if !ok {
		writeErr(w, http.StatusNotFound, "unknown service %q", service)
		return
	}
	rs, err := rules.ParseRules(req.Rules, s.c.Resolver())
	if err != nil {
		writeErr(w, http.StatusBadRequest, "policy parse: %v", err)
		return
	}
	s.ct.UpdatePolicy(vip, rs)
	writeJSON(w, http.StatusOK, map[string]interface{}{"status": "installed", "rules": len(rs)})
}

func (s *Server) handleBackends(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		writeErr(w, http.StatusMethodNotAllowed, "GET only")
		return
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	names := make([]string, 0, len(s.c.Backends))
	for name := range s.c.Backends {
		names = append(names, name)
	}
	sort.Strings(names)
	out := make([]BackendInfo, 0, len(names))
	for _, name := range names {
		b := s.c.Backends[name]
		out = append(out, BackendInfo{
			Name:     name,
			Addr:     b.Rec.Addr.String(),
			Alive:    b.Server.Host().Alive(),
			Requests: b.Server.Requests,
		})
	}
	writeJSON(w, http.StatusOK, out)
}

func (s *Server) handleStats(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		writeErr(w, http.StatusMethodNotAllowed, "GET only")
		return
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	traffic := map[string]uint64{}
	for name, vip := range s.c.VIPs {
		traffic[name] = s.ct.Traffic[vip]
	}
	writeJSON(w, http.StatusOK, StatsInfo{
		VirtualTime:    s.c.Net.Now().String(),
		Detections:     s.ct.Detections,
		ScaleOuts:      s.ct.ScaleOuts,
		InstancesAdded: s.ct.InstancesAdded,
		TrafficPerVIP:  traffic,
	})
}

// handleReconfig handles POST /v1/reconfig: apply a target assignment
// through the reconfiguration engine, or start a rolling upgrade.
func (s *Server) handleReconfig(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		writeErr(w, http.StatusMethodNotAllowed, "POST only")
		return
	}
	var req ReconfigRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		writeErr(w, http.StatusBadRequest, "bad body: %v", err)
		return
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	switch {
	case req.Upgrade:
		var opt reconfig.UpgradeOptions
		if req.RestartDelay != "" {
			d, err := parseDuration(req.RestartDelay)
			if err != nil || d <= 0 {
				writeErr(w, http.StatusBadRequest, "bad restartDelay %q", req.RestartDelay)
				return
			}
			opt.RestartDelay = d
		}
		if err := s.ct.StartRollingUpgrade(core.DefaultConfig(), tcpstore.DefaultConfig(), opt, nil); err != nil {
			writeErr(w, http.StatusConflict, "upgrade: %v", err)
			return
		}
		writeJSON(w, http.StatusOK, map[string]string{"status": "upgrade started"})
	case len(req.Assignments) > 0:
		target := make(map[netsim.IP][]netsim.IP, len(req.Assignments))
		for service, idxs := range req.Assignments {
			vip, ok := s.c.VIPs[service]
			if !ok {
				writeErr(w, http.StatusNotFound, "unknown service %q", service)
				return
			}
			var ips []netsim.IP
			for _, idx := range idxs {
				if idx < 0 || idx >= len(s.c.Yoda) {
					writeErr(w, http.StatusBadRequest, "instance %d out of range", idx)
					return
				}
				ips = append(ips, s.c.Yoda[idx].IP())
			}
			target[vip] = ips
		}
		if err := s.ct.ApplyTarget(target); err != nil {
			writeErr(w, http.StatusConflict, "reconfig: %v", err)
			return
		}
		writeJSON(w, http.StatusOK, map[string]string{"status": "reconfig started"})
	default:
		writeErr(w, http.StatusBadRequest, "need assignments or upgrade:true")
	}
}

// handleReconfigStatus handles GET /v1/reconfig/status.
func (s *Server) handleReconfigStatus(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		writeErr(w, http.StatusMethodNotAllowed, "GET only")
		return
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	st := s.ct.ReconfigStats()
	out := ReconfigStatus{
		Running:             st.Running,
		Done:                st.Done,
		Waves:               st.Waves,
		MovesApplied:        st.MovesApplied,
		MigratedFlows:       st.MigratedFlows,
		DrainedFlows:        st.DrainedFlows,
		ReleasedFlows:       st.ReleasedFlows,
		BrokenFlows:         st.BrokenFlows,
		ResurrectedFlows:    st.ResurrectedFlows,
		MaxWaveMigratedFrac: st.MaxWaveMigratedFrac,
		PeakInstanceFlows:   st.PeakInstanceFlows,
		RulesRemoved:        st.RulesRemoved,
		DurationMs:          float64(st.Duration) / float64(time.Millisecond),
	}
	if up := s.ct.UpgradeStats(); up.Instances > 0 || up.Running || up.Done {
		us := UpgradeStatus{
			Instances: up.Instances,
			Upgraded:  up.Upgraded,
			Skipped:   up.Skipped,
			Running:   up.Running,
			Done:      up.Done,
			Phase:     up.Phase,
			Err:       up.Err,
		}
		if up.Current != 0 {
			us.Current = up.Current.String()
		}
		out.Upgrade = &us
	}
	writeJSON(w, http.StatusOK, out)
}

func (s *Server) handleRun(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		writeErr(w, http.StatusMethodNotAllowed, "POST only")
		return
	}
	var req RunRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		writeErr(w, http.StatusBadRequest, "bad body: %v", err)
		return
	}
	d, err := parseDuration(req.Duration)
	if err != nil || d <= 0 {
		writeErr(w, http.StatusBadRequest, "bad duration %q", req.Duration)
		return
	}
	if d > time.Hour {
		writeErr(w, http.StatusBadRequest, "duration %v too long (max 1h of virtual time per call)", d)
		return
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	s.c.Net.RunFor(d)
	writeJSON(w, http.StatusOK, RunResponse{VirtualTime: s.c.Net.Now().String()})
}

// ensure netsim stays referenced for the IP String conversions above.
var _ = netsim.IPv4
