package reconfig

import (
	"errors"
	"time"

	"repro/internal/core"
	"repro/internal/netsim"
)

// ErrBusy is returned when Start is called while a plan is executing.
var ErrBusy = errors.New("reconfig: a reconfiguration is already running")

// Executor applies a Plan to the live dataplane, one wave at a time.
// It is single-flight: Start rejects while a plan is in progress. All
// work happens on the simulation's event loop via scheduled callbacks,
// so the executor composes with any workload the network is carrying.
type Executor struct {
	env Env
	opt Options

	stats   Stats
	plan    *Plan
	waveIdx int
	onDone  []func(Stats)

	// gainerBase snapshots Σ Recovered over gaining instances at Start,
	// so ResurrectedFlows counts only this run's recoveries.
	recoveredBase map[*core.Instance]uint64
}

// NewExecutor binds an executor to a cluster environment.
func NewExecutor(env Env, opt Options) *Executor {
	return &Executor{env: env, opt: opt.withDefaults()}
}

// Options returns the executor's resolved options.
func (e *Executor) Options() Options { return e.opt }

// Running reports whether a plan is executing.
func (e *Executor) Running() bool { return e.stats.Running }

// Stats returns a snapshot of the current (or last finished) run.
func (e *Executor) Stats() Stats { return e.stats }

// Start begins executing plan. onDone, when non-nil, fires once the last
// wave has drained. Returns ErrBusy while a previous plan is running.
func (e *Executor) Start(plan *Plan, onDone func(Stats)) error {
	if e.stats.Running {
		return ErrBusy
	}
	e.plan = plan
	e.waveIdx = 0
	e.stats = Stats{Running: true, Start: e.env.Net.Now()}
	e.onDone = nil
	if onDone != nil {
		e.onDone = append(e.onDone, onDone)
	}
	e.recoveredBase = make(map[*core.Instance]uint64)
	for _, in := range e.env.Instances() {
		e.recoveredBase[in] = in.Recovered
	}
	// Run on the event loop, never synchronously inside Start: callers
	// (controller ticks, admin API handlers) expect to regain control.
	e.env.Net.Schedule(0, e.runWave)
	return nil
}

// runWave executes wave e.waveIdx: install → flip → settle → drain.
func (e *Executor) runWave() {
	if e.waveIdx >= len(e.plan.Waves) {
		e.finish()
		return
	}
	wave := &e.plan.Waves[e.waveIdx]
	if e.env.OnWaveStart != nil {
		e.env.OnWaveStart(wave.Moves)
	}
	byIP := e.env.instByIP()

	// Count the denominator for this wave's measured migrated fraction:
	// every live flow on the fleet at flip time.
	total := 0
	for _, in := range e.env.Instances() {
		if in.Host().Alive() {
			total += in.ClientFlowCount()
		}
	}

	migrated := 0
	ws := &waveState{flipAt: e.env.Net.Now()}
	for _, mv := range wave.Moves {
		// 1. Rules first on every gaining instance (§5.2 make-before-break:
		// an instance must never receive a flow for a VIP it has no rules
		// for).
		rs := e.env.RulesFor(mv.VIP)
		for _, ip := range mv.Gainers {
			if in := byIP[ip]; in != nil && in.Host().Alive() {
				in.InstallRules(mv.VIP, rs)
			}
		}
		// 2. Flip the L4 mapping (staggered across muxes). Instances that
		// died since planning are filtered out; the monitor has already
		// withdrawn them from the muxes.
		to := e.liveOnly(mv.To, byIP)
		e.env.L4.SetMapping(mv.VIP, to)
		if e.env.OnMapping != nil {
			e.env.OnMapping(mv.VIP, to)
		}
		e.stats.MovesApplied++
		// 3. Snapshot the losers' residual flows: these are the migrants.
		for _, ip := range mv.Losers {
			in := byIP[ip]
			if in == nil || !in.Host().Alive() {
				continue
			}
			n := in.VIPFlowCount(mv.VIP)
			migrated += n
			ws.drains = append(ws.drains, &drainState{
				inst: in, vip: mv.VIP, flowsAtFlip: n,
			})
		}
		ws.converge = append(ws.converge, convergeTarget{vip: mv.VIP, want: to})
	}
	e.stats.MigratedFlows += uint64(migrated)
	if total > 0 {
		frac := float64(migrated) / float64(total)
		if frac > e.stats.MaxWaveMigratedFrac {
			e.stats.MaxWaveMigratedFrac = frac
		}
	}
	e.observeLoad(wave)
	e.settle(wave, ws)
}

// waveState tracks one wave's execution.
type waveState struct {
	flipAt   time.Duration
	converge []convergeTarget
	drains   []*drainState
}

type convergeTarget struct {
	vip  netsim.IP
	want []netsim.IP
}

// drainState tracks one (loser instance, VIP) pair through the drain.
type drainState struct {
	inst        *core.Instance
	vip         netsim.IP
	flowsAtFlip int
	done        bool
}

// settle polls until every mux has applied every flip of the wave, then
// moves to drain. The drain timeout spans both phases (it is measured
// from the flip).
func (e *Executor) settle(wave *Wave, ws *waveState) {
	e.observeLoad(wave)
	now := e.env.Net.Now()
	converged := true
	byIP := e.env.instByIP()
	for _, ct := range ws.converge {
		// Re-filter: an instance may have died (and been withdrawn by the
		// monitor) after the flip; convergence is then against the
		// surviving list.
		if !e.env.L4.Converged(ct.vip, e.liveOnly(ct.want, byIP)) {
			converged = false
			break
		}
	}
	if !converged && now-ws.flipAt < e.opt.DrainTimeout {
		e.env.Net.Schedule(e.opt.SettlePoll, func() { e.settle(wave, ws) })
		return
	}
	e.drain(wave, ws)
}

// drain waits, per losing instance, for the moved VIP's flows to go
// quiet (no packet for DrainQuiet — once all muxes converged nothing
// more can arrive, so activity freezes), releases their local state
// without touching TCPStore (the gainers own those flows now), and only
// then removes the VIP's rules from the loser. The DrainTimeout backstop
// forces release; flows still seeing packets at that point are broken.
func (e *Executor) drain(wave *Wave, ws *waveState) {
	e.observeLoad(wave)
	now := e.env.Net.Now()
	timedOut := now-ws.flipAt >= e.opt.DrainTimeout
	allDone := true
	for _, d := range ws.drains {
		if d.done {
			continue
		}
		if !d.inst.Host().Alive() {
			// The loser died mid-drain: its flows were already migrated by
			// the failure path; nothing to release.
			d.done = true
			continue
		}
		n := d.inst.VIPFlowCount(d.vip)
		if n == 0 {
			e.stats.DrainedFlows += uint64(d.flowsAtFlip)
			e.removeRules(d)
			continue
		}
		last, _ := d.inst.VIPLastActive(d.vip)
		quiet := now-last >= e.opt.DrainQuiet
		if !quiet && !timedOut {
			allDone = false
			continue
		}
		if !quiet && timedOut {
			e.stats.BrokenFlows += uint64(n)
		}
		released := d.inst.ReleaseVIPFlows(d.vip)
		e.stats.ReleasedFlows += uint64(released)
		if d.flowsAtFlip > released {
			e.stats.DrainedFlows += uint64(d.flowsAtFlip - released)
		}
		e.removeRules(d)
	}
	if !allDone {
		e.env.Net.Schedule(e.opt.DrainPoll, func() { e.drain(wave, ws) })
		return
	}
	e.stats.Waves++
	e.waveIdx++
	if e.env.OnWaveDone != nil {
		e.env.OnWaveDone()
	}
	e.env.Net.Schedule(0, e.runWave)
}

// removeRules reclaims the loser's rule capacity for the moved VIP.
func (e *Executor) removeRules(d *drainState) {
	d.done = true
	if d.inst.HasVIP(d.vip) {
		d.inst.RemoveRules(d.vip)
		e.stats.RulesRemoved++
	}
}

// observeLoad samples per-instance live-flow counts on the instances a
// wave touches — the measured Eq. 4–5 transient load.
func (e *Executor) observeLoad(wave *Wave) {
	byIP := e.env.instByIP()
	seen := make(map[netsim.IP]bool)
	for _, mv := range wave.Moves {
		for _, ip := range unionIPs(mv.From, mv.To) {
			if seen[ip] {
				continue
			}
			seen[ip] = true
			if in := byIP[ip]; in != nil && in.Host().Alive() {
				if n := in.ClientFlowCount(); n > e.stats.PeakInstanceFlows {
					e.stats.PeakInstanceFlows = n
				}
			}
		}
	}
}

// liveOnly filters an instance list to members that are alive right now.
func (e *Executor) liveOnly(ips []netsim.IP, byIP map[netsim.IP]*core.Instance) []netsim.IP {
	out := make([]netsim.IP, 0, len(ips))
	for _, ip := range ips {
		if in := byIP[ip]; in != nil && in.Host().Alive() {
			out = append(out, ip)
		}
	}
	return out
}

// finish closes out the run and fires completion callbacks.
func (e *Executor) finish() {
	for in, base := range e.recoveredBase {
		if in.Recovered > base {
			e.stats.ResurrectedFlows += in.Recovered - base
		}
	}
	e.recoveredBase = nil
	e.stats.Running = false
	e.stats.Done = true
	e.stats.Duration = e.env.Net.Now() - e.stats.Start
	cbs := e.onDone
	e.onDone = nil
	done := e.stats
	for _, cb := range cbs {
		cb(done)
	}
}
