package reconfig

import (
	"time"

	"repro/internal/netsim"
)

// UpgradeOptions tunes the rolling-upgrade driver. Planner and executor
// behaviour (δ, drain timings) comes from the shared Executor's Options.
type UpgradeOptions struct {
	// RestartDelay models the instance's reboot time: the gap between the
	// drain completing (instance failed) and the restart callback running.
	RestartDelay time.Duration
	// ReadyPoll and ReadyTimeout bound the wait for the restarted
	// instance to come back alive before re-admission.
	ReadyPoll    time.Duration
	ReadyTimeout time.Duration
}

func (o UpgradeOptions) withDefaults() UpgradeOptions {
	if o.RestartDelay <= 0 {
		o.RestartDelay = 2 * time.Second
	}
	if o.ReadyPoll <= 0 {
		o.ReadyPoll = 200 * time.Millisecond
	}
	if o.ReadyTimeout <= 0 {
		o.ReadyTimeout = 10 * time.Second
	}
	return o
}

// UpgradeStats is the observable state of a rolling upgrade.
type UpgradeStats struct {
	// Instances is the fleet size targeted; Upgraded counts instances
	// fully cycled (drained, restarted, re-admitted). Skipped counts
	// instances abandoned because their restart never came back within
	// ReadyTimeout.
	Instances int
	Upgraded  int
	Skipped   int

	// Reconfig aggregates the drain and re-admission reconfigurations of
	// every instance cycled so far.
	Reconfig Stats

	// Current is the instance being upgraded; Phase is one of "drain",
	// "restart", "ready-wait", "readmit" (empty when idle).
	Current netsim.IP
	Phase   string

	Start    time.Duration
	Duration time.Duration
	Running  bool
	Done     bool
	// Err records a fatal driver error (the upgrade stops early).
	Err string
}

// Upgrader performs a zero-downtime rolling upgrade (§7.5): for each
// instance in turn it drains the instance through a reconfig plan
// (δ-bounded, so live connections migrate gradually and resurrect via
// TCPStore), restarts the host under the new configuration via the
// Restart callback, waits for it to come back, and re-admits it by
// restoring the pre-drain assignment through a second plan.
type Upgrader struct {
	exec *Executor
	opt  UpgradeOptions

	// Mappings returns the owner's current VIP→instance view (the
	// controller's vipInstances). Must return fresh copies.
	Mappings func() map[netsim.IP][]netsim.IP
	// Restart reboots the instance at ip under the new configuration. On
	// return the replacement must be reachable through Env.Instances; it
	// may still take time to come alive.
	Restart func(ip netsim.IP)

	stats  UpgradeStats
	queue  []netsim.IP
	idx    int
	saved  map[netsim.IP][]netsim.IP // pre-drain mappings of the current instance's VIPs
	onDone []func(UpgradeStats)
}

// NewUpgrader builds an upgrader sharing exec's environment and plan
// options.
func NewUpgrader(exec *Executor, opt UpgradeOptions) *Upgrader {
	return &Upgrader{exec: exec, opt: opt.withDefaults()}
}

// Running reports whether an upgrade is in progress.
func (u *Upgrader) Running() bool { return u.stats.Running }

// Stats returns a snapshot of the current (or last finished) upgrade.
func (u *Upgrader) Stats() UpgradeStats { return u.stats }

// Start upgrades the instances in order, one at a time. Returns ErrBusy
// while a previous upgrade (or a foreign reconfiguration) is running.
func (u *Upgrader) Start(order []netsim.IP, onDone func(UpgradeStats)) error {
	if u.stats.Running || u.exec.Running() {
		return ErrBusy
	}
	if u.Mappings == nil || u.Restart == nil {
		panic("reconfig: Upgrader needs Mappings and Restart callbacks")
	}
	u.queue = append([]netsim.IP(nil), order...)
	u.idx = 0
	u.stats = UpgradeStats{
		Instances: len(u.queue),
		Running:   true,
		Start:     u.exec.env.Net.Now(),
	}
	u.onDone = nil
	if onDone != nil {
		u.onDone = append(u.onDone, onDone)
	}
	u.exec.env.Net.Schedule(0, u.step)
	return nil
}

// step starts the cycle for the next instance in the queue.
func (u *Upgrader) step() {
	if u.idx >= len(u.queue) {
		u.finish()
		return
	}
	ip := u.queue[u.idx]
	u.stats.Current = ip
	u.stats.Phase = "drain"

	cur := u.Mappings()
	target := make(map[netsim.IP][]netsim.IP)
	u.saved = make(map[netsim.IP][]netsim.IP)
	for vip, insts := range cur {
		if !containsIP(insts, ip) {
			continue
		}
		u.saved[vip] = append([]netsim.IP(nil), insts...)
		to := subtractIPs(insts, []netsim.IP{ip})
		if len(to) == 0 {
			// Sole holder: park the VIP on the least-loaded live peer for
			// the duration of the restart, so the VIP never goes dark.
			if cand, ok := u.replacement(ip); ok {
				to = []netsim.IP{cand}
			}
		}
		target[vip] = to
	}
	if len(target) == 0 {
		// The instance holds nothing — drain is a no-op.
		u.scheduleRestart(ip)
		return
	}
	st := State{Current: cur, Target: target, Flows: u.flowSnapshot(cur)}
	plan, err := NewPlan(st, u.exec.opt)
	if err != nil {
		u.fail(err)
		return
	}
	if err := u.exec.Start(plan, func(s Stats) {
		u.accumulate(s)
		u.scheduleRestart(ip)
	}); err != nil {
		u.fail(err)
	}
}

// scheduleRestart fires the Restart callback after the reboot delay.
func (u *Upgrader) scheduleRestart(ip netsim.IP) {
	u.stats.Phase = "restart"
	u.exec.env.Net.Schedule(u.opt.RestartDelay, func() {
		u.Restart(ip)
		u.stats.Phase = "ready-wait"
		deadline := u.exec.env.Net.Now() + u.opt.ReadyTimeout
		u.pollReady(ip, deadline)
	})
}

// pollReady waits for the restarted instance to come back alive.
func (u *Upgrader) pollReady(ip netsim.IP, deadline time.Duration) {
	byIP := u.exec.env.instByIP()
	if in := byIP[ip]; in != nil && in.Host().Alive() {
		u.readmit(ip)
		return
	}
	if u.exec.env.Net.Now() >= deadline {
		// The instance never came back; abandon it and move on — its VIPs
		// stay where the drain put them.
		u.stats.Skipped++
		u.idx++
		u.saved = nil
		u.exec.env.Net.Schedule(0, u.step)
		return
	}
	u.exec.env.Net.Schedule(u.opt.ReadyPoll, func() { u.pollReady(ip, deadline) })
}

// readmit restores the instance's pre-drain assignments through a second
// reconfig plan (the executor re-installs its rules as a gainer).
func (u *Upgrader) readmit(ip netsim.IP) {
	u.stats.Phase = "readmit"
	saved := u.saved
	u.saved = nil
	if len(saved) == 0 {
		u.completeInstance()
		return
	}
	st := State{Current: u.Mappings(), Target: saved, Flows: u.flowSnapshot(saved)}
	plan, err := NewPlan(st, u.exec.opt)
	if err != nil {
		u.fail(err)
		return
	}
	if err := u.exec.Start(plan, func(s Stats) {
		u.accumulate(s)
		u.completeInstance()
	}); err != nil {
		u.fail(err)
	}
}

// completeInstance closes out the current instance's cycle.
func (u *Upgrader) completeInstance() {
	u.stats.Upgraded++
	u.idx++
	u.exec.env.Net.Schedule(0, u.step)
}

// replacement picks the live instance with the fewest client flows to
// temporarily hold a drained instance's sole-owner VIPs.
func (u *Upgrader) replacement(exclude netsim.IP) (netsim.IP, bool) {
	best := netsim.IP(0)
	bestFlows := -1
	for _, in := range u.exec.env.Instances() {
		ip := in.IP()
		if ip == exclude || !in.Host().Alive() {
			continue
		}
		n := in.ClientFlowCount()
		if bestFlows < 0 || n < bestFlows || (n == bestFlows && ip < best) {
			best, bestFlows = ip, n
		}
	}
	return best, bestFlows >= 0
}

// flowSnapshot reads live per-VIP flow counts for the planner's Eq. 6–7
// accounting, over the VIPs present in vips.
func (u *Upgrader) flowSnapshot(vips map[netsim.IP][]netsim.IP) map[netsim.IP]map[netsim.IP]float64 {
	out := make(map[netsim.IP]map[netsim.IP]float64, len(vips))
	for vip := range vips {
		per := make(map[netsim.IP]float64)
		for _, in := range u.exec.env.Instances() {
			if !in.Host().Alive() {
				continue
			}
			if n := in.VIPFlowCount(vip); n > 0 {
				per[in.IP()] = float64(n)
			}
		}
		out[vip] = per
	}
	return out
}

// accumulate folds one reconfiguration's stats into the upgrade total.
func (u *Upgrader) accumulate(s Stats) {
	r := &u.stats.Reconfig
	r.Waves += s.Waves
	r.MovesApplied += s.MovesApplied
	r.MigratedFlows += s.MigratedFlows
	r.DrainedFlows += s.DrainedFlows
	r.ReleasedFlows += s.ReleasedFlows
	r.BrokenFlows += s.BrokenFlows
	r.ResurrectedFlows += s.ResurrectedFlows
	r.RulesRemoved += s.RulesRemoved
	if s.MaxWaveMigratedFrac > r.MaxWaveMigratedFrac {
		r.MaxWaveMigratedFrac = s.MaxWaveMigratedFrac
	}
	if s.PeakInstanceFlows > r.PeakInstanceFlows {
		r.PeakInstanceFlows = s.PeakInstanceFlows
	}
}

// fail aborts the upgrade with a driver error.
func (u *Upgrader) fail(err error) {
	u.stats.Err = err.Error()
	u.finish()
}

// finish closes out the run and fires completion callbacks.
func (u *Upgrader) finish() {
	u.stats.Running = false
	u.stats.Done = true
	u.stats.Current = 0
	u.stats.Phase = ""
	u.stats.Duration = u.exec.env.Net.Now() - u.stats.Start
	cbs := u.onDone
	u.onDone = nil
	done := u.stats
	for _, cb := range cbs {
		cb(done)
	}
}
