package reconfig_test

import (
	"testing"
	"time"

	"repro/internal/netsim"
	"repro/internal/reconfig"
)

// BenchmarkReconfigMigration measures the engine end-to-end on a live
// simulated cluster: shrink a VIP from 4 instances to 2 under load and
// report migration throughput (flows migrated per second of wall time
// spent simulating) and the virtual drain latency per wave.
func BenchmarkReconfigMigration(b *testing.B) {
	var migrated uint64
	var virtualDur time.Duration
	for i := 0; i < b.N; i++ {
		opt := reconfig.Options{Delta: 0.5, DrainQuiet: 500 * time.Millisecond, DrainTimeout: 8 * time.Second}
		w := newMigrationWorld(b, int64(100+i), 4, opt)
		w.load(10, 10*time.Second)
		w.c.Net.RunFor(2 * time.Second)
		st := reconfig.State{
			Current: map[netsim.IP][]netsim.IP{w.vip: w.mapping[w.vip]},
			Target:  map[netsim.IP][]netsim.IP{w.vip: w.mapping[w.vip][:2]},
			Flows:   w.flowSnapshot(),
		}
		plan, err := reconfig.NewPlan(st, opt)
		if err != nil {
			b.Fatal(err)
		}
		if err := w.exec.Start(plan, nil); err != nil {
			b.Fatal(err)
		}
		w.c.Net.RunFor(30 * time.Second)
		stats := w.exec.Stats()
		if !stats.Done || w.failed != 0 {
			b.Fatalf("run %d: done=%v failed=%d", i, stats.Done, w.failed)
		}
		migrated += stats.MigratedFlows
		virtualDur += stats.Duration
	}
	sec := b.Elapsed().Seconds()
	if sec > 0 {
		b.ReportMetric(float64(migrated)/sec, "migrated_flows/s")
	}
	if b.N > 0 {
		b.ReportMetric(float64(virtualDur.Milliseconds())/float64(b.N), "drain_ms/op")
	}
}
