// Package reconfig is the live reconfiguration engine: it takes a
// current and a target VIP→instance assignment and executes the
// transition on a running cluster without breaking established
// connections (§4.5, §5.3, §7.5).
//
// The subsystem has two halves:
//
//   - The planner (plan.go) diffs the two assignments into per-VIP moves
//     and schedules them into waves such that (a) the fraction of live
//     flows migrated per wave stays under δ — the Eq. 6–7 migration
//     budget the assignment ILP reasons about analytically — and (b) the
//     transient per-instance traffic during the overlap window, when an
//     instance may carry a VIP under the old or the new mapping, stays
//     under the capacity T_y (Eq. 4–5).
//
//   - The executor (executor.go) runs each wave against the live
//     dataplane: install rules on gaining instances first, then flip the
//     L4 mappings (staggered — real muxes update non-atomically), let the
//     re-hashed flows resurrect on the gainers through the existing
//     TCPStore recovery path, wait for the losing instances' residual
//     flows to go quiet (completion-based, with a timeout backstop — not
//     a fixed delay), release the losers' migrated flow state, and only
//     then remove the losers' rules, so the per-instance rule capacity
//     R_y is actually reclaimed.
//
// On top of the engine, upgrade.go implements zero-downtime rolling
// instance upgrades (§7.5): drain an instance through a reconfig plan,
// restart its host under a new configuration, re-admit it, and repeat
// across the fleet — with zero failed client requests.
package reconfig

import (
	"time"

	"repro/internal/core"
	"repro/internal/l4lb"
	"repro/internal/netsim"
	"repro/internal/rules"
)

// Options tunes both the planner and the executor. The zero value means
// "no migration limit, no transient check, default timings".
type Options struct {
	// Delta is δ, the maximum fraction of live flows allowed to migrate
	// per wave (Eq. 6–7). 0 disables the limit (everything in one wave).
	Delta float64
	// TrafficCap is T_y: the per-instance traffic the transient overlap
	// window must not exceed (Eq. 4–5). 0 disables the check. It is in
	// the same unit as State.Traffic.
	TrafficCap float64

	// SettlePoll is how often the executor checks whether all muxes have
	// applied a wave's mapping flips.
	SettlePoll time.Duration
	// DrainPoll is how often a losing instance's residual flows are
	// re-examined during the drain phase.
	DrainPoll time.Duration
	// DrainQuiet is how long a loser's flows for a moved VIP must have
	// seen no packet before their local state is released: once every mux
	// has flipped, packets stop arriving and the migrated flows' activity
	// timestamps freeze.
	DrainQuiet time.Duration
	// DrainTimeout caps the whole drain wait per wave, measured from the
	// mapping flip. Flows still active at the timeout are counted broken.
	DrainTimeout time.Duration
}

// withDefaults fills in the default timings.
func (o Options) withDefaults() Options {
	if o.SettlePoll <= 0 {
		o.SettlePoll = 100 * time.Millisecond
	}
	if o.DrainPoll <= 0 {
		o.DrainPoll = 100 * time.Millisecond
	}
	if o.DrainQuiet <= 0 {
		o.DrainQuiet = time.Second
	}
	if o.DrainTimeout <= 0 {
		o.DrainTimeout = 30 * time.Second
	}
	return o
}

// State is the planner's input: where the cluster is and where it should
// go.
type State struct {
	// Current and Target map each VIP to its instance list. A VIP present
	// in Current but absent from Target keeps its current mapping (the
	// planner only moves what the caller asks to move).
	Current map[netsim.IP][]netsim.IP
	Target  map[netsim.IP][]netsim.IP
	// Flows[vip][inst] is the number of live flows of vip on inst,
	// feeding the Eq. 6–7 migration accounting. May be nil (δ then has
	// nothing to bound and every move lands in the first wave).
	Flows map[netsim.IP]map[netsim.IP]float64
	// Traffic[vip] is the VIP's traffic rate, feeding the Eq. 4–5
	// transient check (unit must match Options.TrafficCap). May be nil.
	Traffic map[netsim.IP]float64
}

// Move is one VIP's mapping change within a wave.
type Move struct {
	VIP  netsim.IP
	From []netsim.IP // mapping before the wave
	To   []netsim.IP // mapping after the wave

	Gainers []netsim.IP // To − From: rules installed before the flip
	Losers  []netsim.IP // From − To: drained after the flip, then rules removed

	// PlannedMigrated is the flow count expected to migrate (the flows on
	// Losers at planning time).
	PlannedMigrated float64
}

// Wave is a batch of moves executed together.
type Wave struct {
	Moves []Move
	// PlannedMigratedFrac is Σ PlannedMigrated over the planning-time
	// total flow count.
	PlannedMigratedFrac float64
	// Forced marks a wave whose single move alone exceeds δ: the planner
	// cannot subdivide below one instance removal, so the move ships
	// alone and the overshoot is explicit.
	Forced bool
}

// Plan is an executable reconfiguration: waves applied in order.
type Plan struct {
	Waves []Wave
	// TotalFlows is the planning-time denominator for migrated fractions.
	TotalFlows float64
}

// Moves returns the total move count across waves.
func (p *Plan) Moves() int {
	n := 0
	for _, w := range p.Waves {
		n += len(w.Moves)
	}
	return n
}

// Stats is the observable outcome of a reconfiguration, exposed through
// the controller and the admin API.
type Stats struct {
	// Waves is how many waves have completed; MovesApplied counts VIP
	// mapping changes executed.
	Waves        int
	MovesApplied int

	// MigratedFlows counts flows present on losing instances at their
	// wave's mapping flip — the Eq. 6–7 numerator, measured (not
	// planned). DrainedFlows is the subset that completed on the loser
	// during the drain window (through still-stale muxes); ReleasedFlows
	// is the subset whose local state was dropped after going quiet
	// (ownership moved to a gainer); BrokenFlows counts flows that were
	// still seeing packets when the drain timeout fired.
	MigratedFlows uint64
	DrainedFlows  uint64
	ReleasedFlows uint64
	BrokenFlows   uint64

	// ResurrectedFlows is the increase of the gaining instances' TCPStore
	// recovery counters across the run: migrated flows that actually came
	// back to life elsewhere.
	ResurrectedFlows uint64

	// MaxWaveMigratedFrac is the largest measured per-wave migrated-flow
	// fraction (≤ δ when the plan was not forced).
	MaxWaveMigratedFrac float64
	// PeakInstanceFlows is the highest live-flow count observed on any
	// involved instance during the overlap windows — the measured
	// counterpart of the Eq. 4–5 transient load.
	PeakInstanceFlows int

	// RulesRemoved counts per-VIP rule tables removed from losing
	// instances (the R_y reclamation the fire-and-forget updater never
	// did).
	RulesRemoved int

	// Start is virtual time at Start(); Duration is filled when Done.
	Start    time.Duration
	Duration time.Duration
	Running  bool
	Done     bool
}

// Env binds the engine to a live cluster. All callbacks must be non-nil
// except OnMapping.
type Env struct {
	Net *netsim.Network
	L4  *l4lb.LB
	// Instances returns the current fleet (slot order stable; dead
	// instances included — the engine checks liveness itself).
	Instances func() []*core.Instance
	// RulesFor returns the rule set to install on instances gaining vip.
	RulesFor func(vip netsim.IP) []rules.Rule
	// OnMapping, when non-nil, is invoked at each mapping flip so the
	// owner (the controller) can keep its VIP→instance view in sync.
	OnMapping func(vip netsim.IP, insts []netsim.IP)
	// OnWaveStart, when non-nil, is invoked with a wave's moves before any
	// rules are installed or mappings flipped. The hybrid recovery mode
	// uses it to re-point its derivation entries at the wave's target
	// mapping, bump the epoch, and flush still-unpersisted flows — so
	// every flow the drain later releases has a store record to resurrect
	// from.
	OnWaveStart func(moves []Move)
	// OnWaveDone, when non-nil, is invoked after a wave has fully drained
	// (mappings converged, losers released). The hybrid recovery mode
	// rebuilds its derivation entries from the now-settled mappings.
	OnWaveDone func()
}

// instByIP indexes the live fleet by address.
func (e *Env) instByIP() map[netsim.IP]*core.Instance {
	out := make(map[netsim.IP]*core.Instance)
	for _, in := range e.Instances() {
		out[in.IP()] = in
	}
	return out
}
