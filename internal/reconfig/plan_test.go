package reconfig

import (
	"testing"

	"repro/internal/netsim"
)

func ip(n byte) netsim.IP { return netsim.IPv4(10, 0, 1, n) }

// TestPlanDeltaSplitsLoserRemovals: removing two instances that each hold
// 25% of the flows under δ=25% must take two waves, one removal each.
func TestPlanDeltaSplitsLoserRemovals(t *testing.T) {
	v := netsim.IPv4(10, 255, 0, 1)
	st := State{
		Current: map[netsim.IP][]netsim.IP{v: {ip(1), ip(2), ip(3), ip(4)}},
		Target:  map[netsim.IP][]netsim.IP{v: {ip(1), ip(2)}},
		Flows: map[netsim.IP]map[netsim.IP]float64{
			v: {ip(1): 25, ip(2): 25, ip(3): 25, ip(4): 25},
		},
	}
	plan, err := NewPlan(st, Options{Delta: 0.25})
	if err != nil {
		t.Fatal(err)
	}
	if len(plan.Waves) != 2 {
		t.Fatalf("waves = %d, want 2: %+v", len(plan.Waves), plan.Waves)
	}
	for i, w := range plan.Waves {
		if w.Forced {
			t.Fatalf("wave %d forced", i)
		}
		if len(w.Moves) != 1 || len(w.Moves[0].Losers) != 1 {
			t.Fatalf("wave %d moves: %+v", i, w.Moves)
		}
		if w.PlannedMigratedFrac > 0.25+1e-9 {
			t.Fatalf("wave %d migrated frac %.3f > δ", i, w.PlannedMigratedFrac)
		}
	}
	// The two waves together complete the move.
	gone := map[netsim.IP]bool{}
	for _, w := range plan.Waves {
		for _, l := range w.Moves[0].Losers {
			gone[l] = true
		}
	}
	if !gone[ip(3)] || !gone[ip(4)] {
		t.Fatalf("losers not removed: %v", gone)
	}
}

// TestPlanSingleWaveWithoutDelta: δ=0 disables the bound — everything in
// one wave.
func TestPlanSingleWaveWithoutDelta(t *testing.T) {
	v := netsim.IPv4(10, 255, 0, 1)
	st := State{
		Current: map[netsim.IP][]netsim.IP{v: {ip(1), ip(2), ip(3)}},
		Target:  map[netsim.IP][]netsim.IP{v: {ip(2), ip(3), ip(4)}},
		Flows: map[netsim.IP]map[netsim.IP]float64{
			v: {ip(1): 30, ip(2): 30, ip(3): 30},
		},
	}
	plan, err := NewPlan(st, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if len(plan.Waves) != 1 {
		t.Fatalf("waves = %d, want 1", len(plan.Waves))
	}
	mv := plan.Waves[0].Moves[0]
	if len(mv.Gainers) != 1 || mv.Gainers[0] != ip(4) || len(mv.Losers) != 1 || mv.Losers[0] != ip(1) {
		t.Fatalf("move = %+v", mv)
	}
}

// TestPlanForcedWaveWhenDeltaTooSmall: a removal that alone exceeds δ
// cannot be subdivided; it ships in a wave marked Forced.
func TestPlanForcedWaveWhenDeltaTooSmall(t *testing.T) {
	v := netsim.IPv4(10, 255, 0, 1)
	st := State{
		Current: map[netsim.IP][]netsim.IP{v: {ip(1), ip(2)}},
		Target:  map[netsim.IP][]netsim.IP{v: {ip(1)}},
		Flows: map[netsim.IP]map[netsim.IP]float64{
			v: {ip(1): 50, ip(2): 50},
		},
	}
	plan, err := NewPlan(st, Options{Delta: 0.01})
	if err != nil {
		t.Fatal(err)
	}
	if len(plan.Waves) != 1 || !plan.Waves[0].Forced {
		t.Fatalf("plan = %+v, want one forced wave", plan.Waves)
	}
}

// TestPlanTransientCapDefersRemoval: when removing the old holder would
// transiently overload the survivor (Eq. 4–5), the wave adds the gainer
// only; the removal lands in a later (here forced) wave.
func TestPlanTransientCapDefersRemoval(t *testing.T) {
	v := netsim.IPv4(10, 255, 0, 1)
	st := State{
		Current: map[netsim.IP][]netsim.IP{v: {ip(1)}},
		Target:  map[netsim.IP][]netsim.IP{v: {ip(2)}},
		Flows:   map[netsim.IP]map[netsim.IP]float64{v: {ip(1): 10}},
		Traffic: map[netsim.IP]float64{v: 90},
	}
	plan, err := NewPlan(st, Options{TrafficCap: 50})
	if err != nil {
		t.Fatal(err)
	}
	if len(plan.Waves) < 2 {
		t.Fatalf("waves = %d, want ≥2: %+v", len(plan.Waves), plan.Waves)
	}
	w0 := plan.Waves[0].Moves[0]
	if len(w0.Losers) != 0 || len(w0.Gainers) != 1 || w0.Gainers[0] != ip(2) {
		t.Fatalf("wave 0 should add the gainer only, got %+v", w0)
	}
	last := plan.Waves[len(plan.Waves)-1].Moves[0]
	if len(last.Losers) != 1 || last.Losers[0] != ip(1) {
		t.Fatalf("final wave should remove ip(1), got %+v", last)
	}
}

// TestPlanUntouchedVIPsStay: VIPs absent from Target are not moved.
func TestPlanUntouchedVIPsStay(t *testing.T) {
	v1 := netsim.IPv4(10, 255, 0, 1)
	v2 := netsim.IPv4(10, 255, 0, 2)
	st := State{
		Current: map[netsim.IP][]netsim.IP{
			v1: {ip(1), ip(2)},
			v2: {ip(1), ip(2)},
		},
		Target: map[netsim.IP][]netsim.IP{v1: {ip(1)}},
	}
	plan, err := NewPlan(st, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if plan.Moves() != 1 || plan.Waves[0].Moves[0].VIP != v1 {
		t.Fatalf("plan touched more than v1: %+v", plan.Waves)
	}
}
