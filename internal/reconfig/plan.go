package reconfig

import (
	"errors"
	"fmt"
	"sort"

	"repro/internal/netsim"
)

// ErrNoProgress is returned when the planner cannot schedule the
// remaining work (it should be unreachable: forced waves guarantee
// progress; the error guards against planner bugs, not inputs).
var ErrNoProgress = errors.New("reconfig: planner made no progress")

// NewPlan diffs State.Current against State.Target and packs the
// resulting per-VIP moves into waves respecting δ (Eq. 6–7) and the
// transient capacity T_y (Eq. 4–5).
//
// Within a wave a VIP's mapping changes once: gainers are added and the
// affordable subset of losers removed together (the executor installs
// rules on gainers before flipping). Migration granularity is one loser
// instance: removing instance y from VIP v's mapping migrates exactly
// v's flows on y, so the planner spreads loser removals across waves to
// fit each wave under δ × total flows. A single removal larger than the
// whole budget cannot be subdivided; it ships alone in a wave marked
// Forced.
func NewPlan(st State, opt Options) (*Plan, error) {
	opt = opt.withDefaults()

	// Work list: VIPs whose target differs from their current mapping.
	var vips []netsim.IP
	for vip, tgt := range st.Target {
		if !sameSet(st.Current[vip], tgt) {
			vips = append(vips, vip)
		}
	}
	sort.Slice(vips, func(i, j int) bool { return vips[i] < vips[j] })

	plan := &Plan{TotalFlows: totalFlows(st.Flows)}
	if len(vips) == 0 {
		return plan, nil
	}

	// Working copy of the mappings, advanced wave by wave.
	cur := make(map[netsim.IP][]netsim.IP, len(st.Current))
	for vip, insts := range st.Current {
		cur[vip] = append([]netsim.IP(nil), insts...)
	}

	budgetPerWave := -1.0 // unlimited
	if opt.Delta > 0 && plan.TotalFlows > 0 {
		budgetPerWave = opt.Delta * plan.TotalFlows
	}

	const maxWaves = 10000
	for len(plan.Waves) < maxWaves {
		pending := pendingVIPs(vips, cur, st.Target)
		if len(pending) == 0 {
			return plan, nil
		}
		wave := Wave{}
		budget := budgetPerWave
		next := make(map[netsim.IP][]netsim.IP, len(cur))
		for vip, insts := range cur {
			next[vip] = insts
		}

		for _, vip := range pending {
			mv, spent, ok := proposeMove(vip, cur, st, budget)
			if !ok {
				continue
			}
			if !transientOK(append(wave.Moves[:len(wave.Moves):len(wave.Moves)], mv), cur, st, opt) {
				// The full move breaches Eq. 4–5 this wave. Retry with the
				// gainers alone (adding replicas lowers per-replica shares
				// next wave); if even that does not fit, defer the VIP.
				if len(mv.Losers) > 0 && len(mv.Gainers) > 0 {
					gmv := gainersOnlyMove(vip, cur[vip], mv.Gainers)
					if transientOK(append(wave.Moves[:len(wave.Moves):len(wave.Moves)], gmv), cur, st, opt) {
						wave.Moves = append(wave.Moves, gmv)
						next[vip] = gmv.To
					}
				}
				continue
			}
			if budget >= 0 {
				budget -= spent
			}
			wave.Moves = append(wave.Moves, mv)
			next[vip] = mv.To
		}

		if len(wave.Moves) == 0 {
			// Nothing fit: δ is smaller than the cheapest single removal,
			// or the transient check rejects every order. Force the
			// cheapest pending action so the plan always completes; the
			// wave is marked so the overshoot is visible in the stats.
			mv, ok := cheapestForcedMove(pending, cur, st)
			if !ok {
				return plan, fmt.Errorf("%w: %d VIPs unresolved", ErrNoProgress, len(pending))
			}
			wave.Forced = true
			wave.Moves = append(wave.Moves, mv)
			next[mv.VIP] = mv.To
		}

		for _, mv := range wave.Moves {
			wave.PlannedMigratedFrac += mv.PlannedMigrated
		}
		if plan.TotalFlows > 0 {
			wave.PlannedMigratedFrac /= plan.TotalFlows
		} else {
			wave.PlannedMigratedFrac = 0
		}
		plan.Waves = append(plan.Waves, wave)
		cur = next
	}
	return plan, fmt.Errorf("%w: wave limit hit", ErrNoProgress)
}

// proposeMove builds the largest affordable move for vip this wave: all
// gainers plus as many losers (cheapest flows first) as fit in budget.
// budget < 0 means unlimited. ok is false when nothing changes.
func proposeMove(vip netsim.IP, cur map[netsim.IP][]netsim.IP, st State, budget float64) (mv Move, spent float64, ok bool) {
	from := cur[vip]
	tgt := st.Target[vip]
	gainers := diffIPs(tgt, from)
	losers := diffIPs(from, tgt)
	sort.Slice(losers, func(i, j int) bool {
		fi, fj := flowsOn(st, vip, losers[i]), flowsOn(st, vip, losers[j])
		if fi != fj {
			return fi < fj
		}
		return losers[i] < losers[j]
	})
	var removed []netsim.IP
	for _, l := range losers {
		fl := flowsOn(st, vip, l)
		if budget >= 0 && fl > budget-spent {
			continue
		}
		removed = append(removed, l)
		spent += fl
	}
	to := subtractIPs(unionIPs(from, gainers), removed)
	if sameList(to, from) {
		return Move{}, 0, false
	}
	return Move{
		VIP: vip, From: from, To: to,
		Gainers: gainers, Losers: removed,
		PlannedMigrated: spent,
	}, spent, true
}

// gainersOnlyMove adds gainers without removing anyone.
func gainersOnlyMove(vip netsim.IP, from, gainers []netsim.IP) Move {
	return Move{VIP: vip, From: from, To: unionIPs(from, gainers), Gainers: gainers}
}

// cheapestForcedMove picks the single pending action with the smallest
// migration cost: for each pending VIP either "add all gainers" (cost 0)
// or "remove the cheapest single loser".
func cheapestForcedMove(pending []netsim.IP, cur map[netsim.IP][]netsim.IP, st State) (Move, bool) {
	best := Move{}
	bestCost := -1.0
	for _, vip := range pending {
		from := cur[vip]
		tgt := st.Target[vip]
		if gainers := diffIPs(tgt, from); len(gainers) > 0 {
			// Adding replicas migrates nothing; always the cheapest start.
			return gainersOnlyMove(vip, from, gainers), true
		}
		for _, l := range diffIPs(from, tgt) {
			fl := flowsOn(st, vip, l)
			if bestCost < 0 || fl < bestCost {
				bestCost = fl
				best = Move{
					VIP: vip, From: from, To: subtractIPs(from, []netsim.IP{l}),
					Losers: []netsim.IP{l}, PlannedMigrated: fl,
				}
			}
		}
	}
	return best, bestCost >= 0
}

// transientOK evaluates Eq. 4–5 for a wave: every instance that carries a
// moving VIP under the old or the new mapping may transiently see the
// larger of the two per-replica shares while the muxes disagree; summed
// with its steady share of unmoved VIPs, the total must stay within
// TrafficCap. Instances already above capacity before the wave are
// grandfathered (§8.2: refusing the move cannot fix them).
func transientOK(moves []Move, cur map[netsim.IP][]netsim.IP, st State, opt Options) bool {
	if opt.TrafficCap <= 0 || st.Traffic == nil {
		return true
	}
	moving := make(map[netsim.IP]*Move, len(moves))
	for i := range moves {
		moving[moves[i].VIP] = &moves[i]
	}
	transient := make(map[netsim.IP]float64)
	steady := make(map[netsim.IP]float64)
	for vip, insts := range cur {
		t := st.Traffic[vip]
		if t == 0 {
			continue
		}
		if mv, ok := moving[vip]; ok {
			oldShare := share(t, len(mv.From))
			newShare := share(t, len(mv.To))
			for _, y := range unionIPs(mv.From, mv.To) {
				add := newShare
				if containsIP(mv.From, y) && oldShare > add {
					add = oldShare
				}
				if !containsIP(mv.To, y) {
					add = oldShare
				}
				transient[y] += add
				if containsIP(mv.From, y) {
					steady[y] += oldShare
				}
			}
			continue
		}
		s := share(t, len(insts))
		for _, y := range insts {
			transient[y] += s
			steady[y] += s
		}
	}
	const eps = 1e-9
	for y, l := range transient {
		if l > opt.TrafficCap+eps && steady[y] <= opt.TrafficCap+eps {
			return false
		}
	}
	return true
}

func share(traffic float64, replicas int) float64 {
	if replicas <= 0 {
		return 0
	}
	return traffic / float64(replicas)
}

func flowsOn(st State, vip, inst netsim.IP) float64 {
	if st.Flows == nil {
		return 0
	}
	return st.Flows[vip][inst]
}

func totalFlows(flows map[netsim.IP]map[netsim.IP]float64) float64 {
	total := 0.0
	for _, per := range flows {
		for _, n := range per {
			total += n
		}
	}
	return total
}

func pendingVIPs(vips []netsim.IP, cur, tgt map[netsim.IP][]netsim.IP) []netsim.IP {
	var out []netsim.IP
	for _, vip := range vips {
		if !sameSet(cur[vip], tgt[vip]) {
			out = append(out, vip)
		}
	}
	return out
}

// --- small set helpers over instance lists (kept order-stable) ---

func containsIP(list []netsim.IP, ip netsim.IP) bool {
	for _, x := range list {
		if x == ip {
			return true
		}
	}
	return false
}

// diffIPs returns a − b, preserving a's order.
func diffIPs(a, b []netsim.IP) []netsim.IP {
	var out []netsim.IP
	for _, x := range a {
		if !containsIP(b, x) {
			out = append(out, x)
		}
	}
	return out
}

// unionIPs returns a followed by the members of b not already in a.
func unionIPs(a, b []netsim.IP) []netsim.IP {
	out := append([]netsim.IP(nil), a...)
	for _, x := range b {
		if !containsIP(out, x) {
			out = append(out, x)
		}
	}
	return out
}

// subtractIPs returns a with every member of b removed.
func subtractIPs(a, b []netsim.IP) []netsim.IP {
	var out []netsim.IP
	for _, x := range a {
		if !containsIP(b, x) {
			out = append(out, x)
		}
	}
	return out
}

func sameList(a, b []netsim.IP) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

func sameSet(a, b []netsim.IP) bool {
	if len(a) != len(b) {
		return false
	}
	for _, x := range a {
		if !containsIP(b, x) {
			return false
		}
	}
	return true
}
