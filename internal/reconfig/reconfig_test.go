package reconfig_test

import (
	"bytes"
	"fmt"
	"testing"
	"time"

	"repro/internal/cluster"
	"repro/internal/core"
	"repro/internal/httpsim"
	"repro/internal/memcache"
	"repro/internal/netsim"
	"repro/internal/reconfig"
	"repro/internal/rules"
	"repro/internal/tcpstore"
)

// migrationWorld is a controller-less testbed: the test owns the
// mappings and drives the reconfig engine directly against the
// dataplane.
type migrationWorld struct {
	c       *cluster.Cluster
	vip     netsim.IP
	rs      []rules.Rule
	mapping map[netsim.IP][]netsim.IP
	exec    *reconfig.Executor

	requests int
	failed   int
}

func newMigrationWorld(t testing.TB, seed int64, nYoda int, opt reconfig.Options) *migrationWorld {
	t.Helper()
	c := cluster.New(seed)
	c.AddStoreServers(3, memcache.DefaultSimServerConfig())
	objs := map[string][]byte{"/obj": bytes.Repeat([]byte("y"), 40*1024)}
	for i := 1; i <= 3; i++ {
		c.AddBackend(fmt.Sprintf("srv-%d", i), objs, httpsim.DefaultServerConfig())
	}
	c.AddYodaN(nYoda, core.DefaultConfig(), tcpstore.DefaultConfig())
	w := &migrationWorld{c: c, vip: c.AddVIP("svc"), mapping: map[netsim.IP][]netsim.IP{}}
	w.rs = c.SimpleSplitRules("srv-1", "srv-2", "srv-3")
	c.InstallPolicy(w.vip, w.rs, nil)
	var all []netsim.IP
	for _, in := range c.Yoda {
		all = append(all, in.IP())
	}
	w.mapping[w.vip] = all
	w.exec = reconfig.NewExecutor(reconfig.Env{
		Net:       c.Net,
		L4:        c.L4,
		Instances: func() []*core.Instance { return c.Yoda },
		RulesFor:  func(netsim.IP) []rules.Rule { return w.rs },
		OnMapping: func(vip netsim.IP, insts []netsim.IP) {
			w.mapping[vip] = append([]netsim.IP(nil), insts...)
		},
	}, opt)
	return w
}

// load starts closed-loop clients that run until the given deadline.
func (w *migrationWorld) load(procs int, until time.Duration) {
	vipHP := netsim.HostPort{IP: w.vip, Port: 80}
	for p := 0; p < procs; p++ {
		cl := w.c.NewClient(httpsim.DefaultClientConfig())
		var loop func()
		loop = func() {
			if w.c.Net.Now() >= until {
				return
			}
			cl.Get(vipHP, "/obj", func(r *httpsim.FetchResult) {
				w.requests++
				if r.Err != nil {
					w.failed++
				}
				loop()
			})
		}
		w.c.Net.Schedule(time.Duration(p)*23*time.Millisecond, loop)
	}
}

func (w *migrationWorld) flowSnapshot() map[netsim.IP]map[netsim.IP]float64 {
	per := map[netsim.IP]float64{}
	for _, in := range w.c.Yoda {
		if n := in.VIPFlowCount(w.vip); n > 0 {
			per[in.IP()] = float64(n)
		}
	}
	return map[netsim.IP]map[netsim.IP]float64{w.vip: per}
}

// TestMigrationRespectsDeltaAndResurrectsFlows is the packet-level
// tentpole test: shrink a VIP from 4 instances to 2 under δ=30% while
// closed-loop clients hammer it. Asserts (a) the measured per-wave
// migrated fraction never exceeds δ, (b) migrated flows complete via
// TCPStore resurrection — zero failed requests and no RST reaches a
// client, (c) the losers end with zero flows and zero rules for the VIP.
func TestMigrationRespectsDeltaAndResurrectsFlows(t *testing.T) {
	opt := reconfig.Options{Delta: 0.3, DrainQuiet: 500 * time.Millisecond, DrainTimeout: 8 * time.Second}
	w := newMigrationWorld(t, 7, 4, opt)

	clientRSTs := 0
	w.c.Net.SetTracer(func(ev netsim.TraceEvent) {
		if ev.Packet.Flags.Has(netsim.FlagRST) && ev.Packet.Dst.IP>>24 == 100 {
			clientRSTs++
		}
	})

	w.load(10, 12*time.Second)
	w.c.Net.RunFor(2 * time.Second) // build up steady-state flows

	keep := w.mapping[w.vip][:2]
	losers := w.mapping[w.vip][2:]
	st := reconfig.State{
		Current: map[netsim.IP][]netsim.IP{w.vip: w.mapping[w.vip]},
		Target:  map[netsim.IP][]netsim.IP{w.vip: keep},
		Flows:   w.flowSnapshot(),
	}
	plan, err := reconfig.NewPlan(st, opt)
	if err != nil {
		t.Fatal(err)
	}
	// Two losers at ~25% of flows each under δ=30%: one removal per wave.
	if len(plan.Waves) != 2 {
		t.Fatalf("waves = %d, want 2", len(plan.Waves))
	}
	if err := w.exec.Start(plan, nil); err != nil {
		t.Fatal(err)
	}
	w.c.Net.RunFor(40 * time.Second)

	stats := w.exec.Stats()
	if !stats.Done || stats.Running {
		t.Fatalf("executor not done: %+v", stats)
	}
	if stats.MaxWaveMigratedFrac > opt.Delta+0.1 {
		t.Fatalf("measured wave migrated fraction %.3f exceeds δ=%.2f", stats.MaxWaveMigratedFrac, opt.Delta)
	}
	if stats.MigratedFlows == 0 {
		t.Fatal("no flows migrated — the test exercised nothing")
	}
	if stats.BrokenFlows != 0 {
		t.Fatalf("broken flows: %d", stats.BrokenFlows)
	}
	if stats.ResurrectedFlows == 0 {
		t.Fatal("no flow resurrected via TCPStore — migration killed them all")
	}
	if w.failed != 0 {
		t.Fatalf("%d/%d client requests failed during migration", w.failed, w.requests)
	}
	if clientRSTs != 0 {
		t.Fatalf("%d RSTs reached clients", clientRSTs)
	}
	byIP := map[netsim.IP]*core.Instance{}
	for _, in := range w.c.Yoda {
		byIP[in.IP()] = in
	}
	for _, lip := range losers {
		l := byIP[lip]
		if l.VIPFlowCount(w.vip) != 0 {
			t.Fatalf("loser %s still holds %d flows", lip, l.VIPFlowCount(w.vip))
		}
		if l.HasVIP(w.vip) {
			t.Fatalf("loser %s still has rules for the VIP", lip)
		}
	}
	if stats.RulesRemoved != len(losers) {
		t.Fatalf("rules removed = %d, want %d", stats.RulesRemoved, len(losers))
	}
	if got := w.mapping[w.vip]; len(got) != len(keep) {
		t.Fatalf("final mapping %v, want %v", got, keep)
	}
}

// TestExecutorRejectsConcurrentStart: the engine is single-flight.
func TestExecutorRejectsConcurrentStart(t *testing.T) {
	opt := reconfig.Options{}
	w := newMigrationWorld(t, 9, 3, opt)
	st := reconfig.State{
		Current: map[netsim.IP][]netsim.IP{w.vip: w.mapping[w.vip]},
		Target:  map[netsim.IP][]netsim.IP{w.vip: w.mapping[w.vip][:2]},
	}
	plan, err := reconfig.NewPlan(st, opt)
	if err != nil {
		t.Fatal(err)
	}
	if err := w.exec.Start(plan, nil); err != nil {
		t.Fatal(err)
	}
	if err := w.exec.Start(plan, nil); err != reconfig.ErrBusy {
		t.Fatalf("second Start = %v, want ErrBusy", err)
	}
	w.c.Net.RunFor(20 * time.Second)
	if !w.exec.Stats().Done {
		t.Fatal("first run never finished")
	}
	// After completion a new run is accepted.
	st2 := reconfig.State{
		Current: map[netsim.IP][]netsim.IP{w.vip: w.mapping[w.vip]},
		Target:  map[netsim.IP][]netsim.IP{w.vip: st.Current[w.vip]},
	}
	plan2, err := reconfig.NewPlan(st2, opt)
	if err != nil {
		t.Fatal(err)
	}
	if err := w.exec.Start(plan2, nil); err != nil {
		t.Fatalf("restart after done: %v", err)
	}
	w.c.Net.RunFor(20 * time.Second)
}
