package memcache

import (
	"bytes"
	"fmt"
	"strings"
	"testing"
	"testing/quick"
	"time"
)

func TestEngineSetGetDelete(t *testing.T) {
	e := NewEngine(0, nil)
	e.Set(Item{Key: "k", Value: []byte("v"), Flags: 7})
	it, ok := e.Get("k")
	if !ok || string(it.Value) != "v" || it.Flags != 7 {
		t.Fatalf("get: %+v %v", it, ok)
	}
	if !e.Delete("k") {
		t.Fatal("delete should report present")
	}
	if _, ok := e.Get("k"); ok {
		t.Fatal("get after delete")
	}
	if e.Delete("k") {
		t.Fatal("double delete should report absent")
	}
}

func TestEngineGetReturnsCopy(t *testing.T) {
	e := NewEngine(0, nil)
	e.Set(Item{Key: "k", Value: []byte("abc")})
	it, _ := e.Get("k")
	it.Value[0] = 'z'
	it2, _ := e.Get("k")
	if string(it2.Value) != "abc" {
		t.Fatal("engine storage aliased to caller slice")
	}
}

func TestEngineAddReplace(t *testing.T) {
	e := NewEngine(0, nil)
	if !e.Add(Item{Key: "k", Value: []byte("1")}) {
		t.Fatal("add to empty should store")
	}
	if e.Add(Item{Key: "k", Value: []byte("2")}) {
		t.Fatal("add over existing should fail")
	}
	if !e.Replace(Item{Key: "k", Value: []byte("3")}) {
		t.Fatal("replace existing should store")
	}
	if e.Replace(Item{Key: "absent", Value: []byte("4")}) {
		t.Fatal("replace absent should fail")
	}
	it, _ := e.Get("k")
	if string(it.Value) != "3" {
		t.Fatalf("value = %q", it.Value)
	}
}

func TestEngineCAS(t *testing.T) {
	e := NewEngine(0, nil)
	e.Set(Item{Key: "k", Value: []byte("1")})
	_, cas, ok := e.GetWithCAS("k")
	if !ok {
		t.Fatal("gets miss")
	}
	if r := e.CAS(Item{Key: "k", Value: []byte("2")}, cas); r != CASStored {
		t.Fatalf("cas = %v", r)
	}
	// Stale token now.
	if r := e.CAS(Item{Key: "k", Value: []byte("3")}, cas); r != CASExists {
		t.Fatalf("stale cas = %v", r)
	}
	if r := e.CAS(Item{Key: "absent", Value: []byte("x")}, 1); r != CASNotFound {
		t.Fatalf("cas absent = %v", r)
	}
}

func TestEngineExpiry(t *testing.T) {
	var clock time.Duration
	e := NewEngine(0, func() time.Duration { return clock })
	e.Set(Item{Key: "k", Value: []byte("v"), Expires: 10 * time.Second})
	if _, ok := e.Get("k"); !ok {
		t.Fatal("not yet expired")
	}
	clock = 11 * time.Second
	if _, ok := e.Get("k"); ok {
		t.Fatal("should have expired")
	}
	st := e.Stats()
	if st.Expirations != 1 {
		t.Fatalf("expirations = %d", st.Expirations)
	}
}

func TestEngineTouch(t *testing.T) {
	var clock time.Duration
	e := NewEngine(0, func() time.Duration { return clock })
	e.Set(Item{Key: "k", Value: []byte("v"), Expires: 10 * time.Second})
	if !e.Touch("k", 100*time.Second) {
		t.Fatal("touch present")
	}
	clock = 50 * time.Second
	if _, ok := e.Get("k"); !ok {
		t.Fatal("touch did not extend expiry")
	}
	if e.Touch("absent", time.Second) {
		t.Fatal("touch absent")
	}
}

func TestEngineLRUEviction(t *testing.T) {
	// Each item is 64 + len(key) + len(value) bytes; cap to ~4 items.
	e := NewEngine(4*(64+2+10), nil)
	for i := 0; i < 8; i++ {
		e.Set(Item{Key: fmt.Sprintf("k%d", i), Value: bytes.Repeat([]byte("x"), 10)})
	}
	st := e.Stats()
	if st.Evictions == 0 {
		t.Fatal("no evictions under memory pressure")
	}
	if st.CurrItems > 4 {
		t.Fatalf("items = %d, above cap", st.CurrItems)
	}
	// Most recently set keys must survive.
	if _, ok := e.Get("k7"); !ok {
		t.Fatal("most recent key evicted")
	}
	if _, ok := e.Get("k0"); ok {
		t.Fatal("oldest key survived")
	}
}

func TestEngineLRUTouchOnGet(t *testing.T) {
	e := NewEngine(3*(64+2+1), nil)
	e.Set(Item{Key: "k0", Value: []byte("a")})
	e.Set(Item{Key: "k1", Value: []byte("b")})
	e.Set(Item{Key: "k2", Value: []byte("c")})
	e.Get("k0") // refresh k0; k1 becomes LRU
	e.Set(Item{Key: "k3", Value: []byte("d")})
	if _, ok := e.Get("k0"); !ok {
		t.Fatal("recently read key evicted")
	}
	if _, ok := e.Get("k1"); ok {
		t.Fatal("LRU key survived")
	}
}

func TestEngineFlushAll(t *testing.T) {
	e := NewEngine(0, nil)
	e.Set(Item{Key: "a", Value: []byte("1")})
	e.Set(Item{Key: "b", Value: []byte("2")})
	e.FlushAll()
	if st := e.Stats(); st.CurrItems != 0 || st.BytesUsed != 0 {
		t.Fatalf("after flush: %+v", st)
	}
}

func TestEngineStatsCounters(t *testing.T) {
	e := NewEngine(0, nil)
	e.Set(Item{Key: "a", Value: []byte("1")})
	e.Get("a")
	e.Get("missing")
	e.Delete("a")
	st := e.Stats()
	if st.Sets != 1 || st.GetHits != 1 || st.GetMisses != 1 || st.Deletes != 1 {
		t.Fatalf("stats: %+v", st)
	}
}

// --- protocol session tests ---

func feed(t *testing.T, s *Session, in string) string {
	t.Helper()
	return string(s.Feed([]byte(in)))
}

func TestSessionSetGet(t *testing.T) {
	s := NewSession(NewEngine(0, nil))
	out := feed(t, s, "set foo 42 0 5\r\nhello\r\n")
	if out != "STORED\r\n" {
		t.Fatalf("set reply: %q", out)
	}
	out = feed(t, s, "get foo\r\n")
	if out != "VALUE foo 42 5\r\nhello\r\nEND\r\n" {
		t.Fatalf("get reply: %q", out)
	}
	out = feed(t, s, "get nope\r\n")
	if out != "END\r\n" {
		t.Fatalf("miss reply: %q", out)
	}
}

func TestSessionMultiGet(t *testing.T) {
	s := NewSession(NewEngine(0, nil))
	feed(t, s, "set a 0 0 1\r\nA\r\nset b 0 0 1\r\nB\r\n")
	out := feed(t, s, "get a b c\r\n")
	want := "VALUE a 0 1\r\nA\r\nVALUE b 0 1\r\nB\r\nEND\r\n"
	if out != want {
		t.Fatalf("multiget: %q", out)
	}
}

func TestSessionDelete(t *testing.T) {
	s := NewSession(NewEngine(0, nil))
	feed(t, s, "set a 0 0 1\r\nA\r\n")
	if out := feed(t, s, "delete a\r\n"); out != "DELETED\r\n" {
		t.Fatalf("delete: %q", out)
	}
	if out := feed(t, s, "delete a\r\n"); out != "NOT_FOUND\r\n" {
		t.Fatalf("redelete: %q", out)
	}
}

func TestSessionIncrementalInput(t *testing.T) {
	s := NewSession(NewEngine(0, nil))
	wire := "set foo 0 0 5\r\nhello\r\nget foo\r\n"
	var out bytes.Buffer
	for i := 0; i < len(wire); i++ {
		out.WriteString(feed(t, s, wire[i:i+1]))
	}
	if got := out.String(); got != "STORED\r\nVALUE foo 0 5\r\nhello\r\nEND\r\n" {
		t.Fatalf("incremental: %q", got)
	}
}

func TestSessionDataWithCRLF(t *testing.T) {
	// Values containing CRLF must be framed by length, not by line.
	s := NewSession(NewEngine(0, nil))
	val := "line1\r\nline2"
	out := feed(t, s, fmt.Sprintf("set k 0 0 %d\r\n%s\r\n", len(val), val))
	if out != "STORED\r\n" {
		t.Fatalf("set: %q", out)
	}
	out = feed(t, s, "get k\r\n")
	if !strings.Contains(out, val) {
		t.Fatalf("get: %q", out)
	}
}

func TestSessionCASFlow(t *testing.T) {
	s := NewSession(NewEngine(0, nil))
	feed(t, s, "set k 0 0 1\r\nA\r\n")
	out := feed(t, s, "gets k\r\n")
	// VALUE k 0 1 <cas>
	var cas uint64
	if _, err := fmt.Sscanf(out, "VALUE k 0 1 %d", &cas); err != nil {
		t.Fatalf("gets: %q: %v", out, err)
	}
	out = feed(t, s, fmt.Sprintf("cas k 0 0 1 %d\r\nB\r\n", cas))
	if out != "STORED\r\n" {
		t.Fatalf("cas: %q", out)
	}
	out = feed(t, s, fmt.Sprintf("cas k 0 0 1 %d\r\nC\r\n", cas))
	if out != "EXISTS\r\n" {
		t.Fatalf("stale cas: %q", out)
	}
	out = feed(t, s, "cas absent 0 0 1 1\r\nX\r\n")
	if out != "NOT_FOUND\r\n" {
		t.Fatalf("cas absent: %q", out)
	}
}

func TestSessionNoreply(t *testing.T) {
	s := NewSession(NewEngine(0, nil))
	out := feed(t, s, "set k 0 0 1 noreply\r\nA\r\nget k\r\n")
	if out != "VALUE k 0 1\r\nA\r\nEND\r\n" {
		t.Fatalf("noreply: %q", out)
	}
}

func TestSessionErrors(t *testing.T) {
	s := NewSession(NewEngine(0, nil))
	if out := feed(t, s, "bogus\r\n"); out != "ERROR\r\n" {
		t.Fatalf("unknown cmd: %q", out)
	}
	if out := feed(t, s, "set k bad 0 1\r\n"); !strings.HasPrefix(out, "CLIENT_ERROR") {
		t.Fatalf("bad flags: %q", out)
	}
	if out := feed(t, s, "delete\r\n"); !strings.HasPrefix(out, "CLIENT_ERROR") {
		t.Fatalf("missing key: %q", out)
	}
}

func TestSessionQuit(t *testing.T) {
	s := NewSession(NewEngine(0, nil))
	feed(t, s, "quit\r\n")
	if !s.Closed() {
		t.Fatal("quit should close session")
	}
}

func TestSessionStatsAndVersion(t *testing.T) {
	s := NewSession(NewEngine(0, nil))
	feed(t, s, "set a 0 0 1\r\nA\r\n")
	out := feed(t, s, "stats\r\n")
	if !strings.Contains(out, "STAT curr_items 1") || !strings.HasSuffix(out, "END\r\n") {
		t.Fatalf("stats: %q", out)
	}
	out = feed(t, s, "version\r\n")
	if !strings.HasPrefix(out, "VERSION") {
		t.Fatalf("version: %q", out)
	}
}

// --- reply parser tests ---

func TestReplyParserSingleLine(t *testing.T) {
	p := &ReplyParser{}
	p.Expect(false)
	rs := p.Feed([]byte("STORED\r\n"))
	if len(rs) != 1 || rs[0].Type != ReplyStored {
		t.Fatalf("replies: %+v", rs)
	}
}

func TestReplyParserValues(t *testing.T) {
	p := &ReplyParser{}
	p.Expect(true)
	rs := p.Feed([]byte("VALUE k 7 5\r\nhello\r\nEND\r\n"))
	if len(rs) != 1 || rs[0].Type != ReplyValues {
		t.Fatalf("replies: %+v", rs)
	}
	it := rs[0].Items[0]
	if it.Key != "k" || it.Flags != 7 || string(it.Value) != "hello" {
		t.Fatalf("item: %+v", it)
	}
}

func TestReplyParserSplitAcrossFeeds(t *testing.T) {
	p := &ReplyParser{}
	p.Expect(true)
	wire := "VALUE k 0 10\r\n0123456789\r\nEND\r\n"
	var got []Reply
	for i := 0; i < len(wire); i += 3 {
		end := i + 3
		if end > len(wire) {
			end = len(wire)
		}
		got = append(got, p.Feed([]byte(wire[i:end]))...)
	}
	if len(got) != 1 || string(got[0].Items[0].Value) != "0123456789" {
		t.Fatalf("got: %+v", got)
	}
}

func TestReplyParserPipelined(t *testing.T) {
	p := &ReplyParser{}
	p.Expect(false)
	p.Expect(true)
	p.Expect(false)
	rs := p.Feed([]byte("STORED\r\nVALUE a 0 1\r\nA\r\nEND\r\nDELETED\r\n"))
	if len(rs) != 3 {
		t.Fatalf("replies = %d", len(rs))
	}
	if rs[0].Type != ReplyStored || rs[1].Type != ReplyValues || rs[2].Type != ReplyDeleted {
		t.Fatalf("types: %v %v %v", rs[0].Type, rs[1].Type, rs[2].Type)
	}
	if p.PendingReplies() != 0 {
		t.Fatalf("pending = %d", p.PendingReplies())
	}
}

func TestProtocolRoundTripProperty(t *testing.T) {
	// Any key/value we store through the protocol must come back intact,
	// provided the value has no CRLF-parsing hazards (values are
	// length-framed so CRLF inside is fine; keys must be token-safe).
	f := func(val []byte) bool {
		s := NewSession(NewEngine(0, nil))
		cmd := fmt.Sprintf("set k 0 0 %d\r\n", len(val))
		s.Feed([]byte(cmd))
		s.Feed(val)
		out := s.Feed([]byte("\r\nget k\r\n"))
		p := &ReplyParser{}
		p.Expect(false)
		p.Expect(true)
		rs := p.Feed(out)
		if len(rs) != 2 || rs[0].Type != ReplyStored || rs[1].Type != ReplyValues {
			return false
		}
		return len(rs[1].Items) == 1 && bytes.Equal(rs[1].Items[0].Value, val)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}
