package memcache

import (
	"bytes"
	"strconv"
	"time"
	"unicode"
	"unicode/utf8"
)

// Session is a transport-agnostic protocol endpoint: feed it raw bytes
// from one client connection and it produces response bytes against an
// Engine. Both the real-TCP server and the netsim server wrap one Session
// per connection.
//
// The parser is a zero-copy byte tokenizer: command lines are split into
// fields that alias the session's input buffer (no string conversions, no
// strings.Fields), values are sliced out of the buffer and copied exactly
// once — at the Engine-insert boundary — and responses are framed into
// reusable session-owned buffers. ReferenceSession (proto_reference.go)
// keeps the original implementation; the differential tests and
// FuzzMemcacheSessionDifferential pin the two byte-for-byte equal.
type Session struct {
	engine *Engine
	// in[head:] is the unconsumed input. The consumed prefix is compacted
	// away between Feeds so the buffer does not grow with the stream.
	in   []byte
	head int
	// Tokenizer scratch: fields for command lines, rfields for mset
	// record lines (separate because the command fields stay live while
	// records are parsed), recs for mset's parse-then-apply two-pass.
	fields  [][]byte
	rfields [][]byte
	recs    []msetRec
	// pool holds response buffers handed back via Release, ready for the
	// next Feed.
	pool [][]byte
	// closed is set once "quit" is processed; the transport should then
	// close the connection.
	closed bool
}

// msetRec is one parsed-but-not-yet-applied mset record; key and val
// alias the session input buffer until the apply pass copies them into
// the engine.
type msetRec struct {
	key     []byte
	val     []byte
	flags   uint32
	expires time.Duration
}

// NewSession creates a protocol session bound to an engine.
func NewSession(engine *Engine) *Session {
	return &Session{engine: engine}
}

// Closed reports whether the peer sent "quit".
func (s *Session) Closed() bool { return s.closed }

// Response buffer pool bounds: keep at most a few buffers (steady-state
// request/response traffic circulates one or two) and drop oversized ones
// so a single huge get does not pin memory forever.
const (
	maxPooledBufs   = 4
	maxPooledBufCap = 1 << 20
)

// Protocol response strings (shared with ReferenceSession by value: the
// differential tests compare raw bytes).
const (
	respError         = "ERROR\r\n"
	respBadCmdLine    = "CLIENT_ERROR bad command line\r\n"
	respBadDataChunk  = "CLIENT_ERROR bad data chunk\r\n"
	respBadRecordLine = "CLIENT_ERROR bad record line\r\n"
	respBadRecCount   = "CLIENT_ERROR bad record count\r\n"
	respBadDelta      = "CLIENT_ERROR invalid numeric delta argument\r\n"
	respNonNumeric    = "CLIENT_ERROR cannot increment or decrement non-numeric value\r\n"
	respStored        = "STORED\r\n"
	respNotStored     = "NOT_STORED\r\n"
	respExists        = "EXISTS\r\n"
	respNotFound      = "NOT_FOUND\r\n"
	respDeleted       = "DELETED\r\n"
	respTouched       = "TOUCHED\r\n"
	respOK            = "OK\r\n"
	respEnd           = "END\r\n"
	respVersion       = "VERSION 1.6.0-repro\r\n"
)

// Feed consumes input bytes and returns the response bytes produced by
// any commands completed by this input (nil if none). The returned slice
// is a session-owned buffer: it stays valid until the caller hands it
// back with Release, which the transport should do once the bytes are on
// the wire. Feeding again before releasing is safe — each Feed takes a
// fresh buffer.
func (s *Session) Feed(data []byte) []byte {
	if s.head == len(s.in) {
		s.in = s.in[:0]
		s.head = 0
	}
	s.in = append(s.in, data...)
	out := s.takeBuf()
	for !s.closed {
		var ok bool
		out, ok = s.step(out)
		if !ok {
			break
		}
	}
	if s.head == len(s.in) {
		s.in = s.in[:0]
		s.head = 0
	} else if s.head > 4096 && s.head*2 >= len(s.in) {
		n := copy(s.in, s.in[s.head:])
		s.in = s.in[:n]
		s.head = 0
	}
	if len(out) == 0 {
		s.releaseBuf(out)
		return nil
	}
	return out
}

// Release returns a buffer obtained from Feed to the session's pool.
// Calling it with nil (a Feed that produced no response) is a no-op.
func (s *Session) Release(resp []byte) {
	s.releaseBuf(resp[:0])
}

func (s *Session) takeBuf() []byte {
	if n := len(s.pool); n > 0 {
		b := s.pool[n-1]
		s.pool = s.pool[:n-1]
		return b
	}
	return nil
}

func (s *Session) releaseBuf(b []byte) {
	if cap(b) == 0 || cap(b) > maxPooledBufCap || len(s.pool) >= maxPooledBufs {
		return
	}
	s.pool = append(s.pool, b[:0])
}

// step attempts to parse and execute one command, appending any response
// to out; ok=false means more input is needed.
func (s *Session) step(out []byte) (_ []byte, ok bool) {
	raw := s.in[s.head:]
	nl := bytes.Index(raw, []byte("\r\n"))
	if nl < 0 {
		return out, false
	}
	s.fields = appendFields(s.fields[:0], raw[:nl])
	if len(s.fields) == 0 {
		s.head += nl + 2
		return append(out, respError...), true
	}
	cmd := s.fields[0]
	switch string(cmd) {
	case "set", "add", "replace", "cas", "append", "prepend":
		return s.storageCommand(out, raw, nl)
	case "mset":
		return s.msetCommand(out, raw, nl)
	case "incr", "decr":
		s.head += nl + 2
		if len(s.fields) < 3 {
			return append(out, respBadCmdLine...), true
		}
		delta, err := parseUintField(s.fields[2], 63)
		if err {
			return append(out, respBadDelta...), true
		}
		d := int64(delta)
		if cmd[0] == 'd' {
			d = -d
		}
		v, ok := s.engine.incrDecrBytes(s.fields[1], d)
		if !ok {
			if !s.engine.presentBytes(s.fields[1]) {
				return append(out, respNotFound...), true
			}
			return append(out, respNonNumeric...), true
		}
		out = appendUint(out, v)
		return append(out, '\r', '\n'), true
	case "get", "gets":
		s.head += nl + 2
		withCAS := len(cmd) == 4
		for _, key := range s.fields[1:] {
			out = s.engine.appendGetResponse(out, key, withCAS)
		}
		return append(out, respEnd...), true
	case "delete":
		s.head += nl + 2
		if len(s.fields) < 2 {
			return append(out, respBadCmdLine...), true
		}
		if s.engine.deleteBytes(s.fields[1]) {
			return append(out, respDeleted...), true
		}
		return append(out, respNotFound...), true
	case "touch":
		s.head += nl + 2
		if len(s.fields) < 3 {
			return append(out, respBadCmdLine...), true
		}
		exp, err := atoiField(s.fields[2])
		if err {
			return append(out, respBadCmdLine...), true
		}
		if s.engine.touchBytes(s.fields[1], expiry(exp, s.engine.now())) {
			return append(out, respTouched...), true
		}
		return append(out, respNotFound...), true
	case "flush_all":
		s.head += nl + 2
		s.engine.FlushAll()
		return append(out, respOK...), true
	case "stats":
		s.head += nl + 2
		return s.statsCommand(out), true
	case "version":
		s.head += nl + 2
		return append(out, respVersion...), true
	case "quit":
		s.head += nl + 2
		s.closed = true
		return out, true
	default:
		s.head += nl + 2
		return append(out, respError...), true
	}
}

// storageCommand handles set/add/replace/cas/append/prepend:
//
//	<cmd> <key> <flags> <exptime> <bytes> [casid] [noreply]\r\n<data>\r\n
func (s *Session) storageCommand(out []byte, raw []byte, nl int) ([]byte, bool) {
	cmd := s.fields[0]
	args := s.fields[1:]
	isCas := string(cmd) == "cas"
	minArgs := 4
	if isCas {
		minArgs = 5
	}
	if len(args) < minArgs {
		s.head += nl + 2
		return append(out, respBadCmdLine...), true
	}
	key := args[0]
	flags, err1 := parseUintField(args[1], 32)
	exptime, err2 := atoiField(args[2])
	size, err3 := atoiField(args[3])
	if err1 || err2 || err3 || size < 0 || size > 8<<20 || len(key) > 250 {
		s.head += nl + 2
		return append(out, respBadDataChunk...), true
	}
	var casID uint64
	rest := args[4:]
	if isCas {
		var err4 bool
		casID, err4 = parseUintField(args[4], 64)
		if err4 {
			s.head += nl + 2
			return append(out, respBadCmdLine...), true
		}
		rest = args[5:]
	}
	noreply := len(rest) > 0 && string(rest[len(rest)-1]) == "noreply"
	// Need the full data block plus trailing CRLF.
	need := nl + 2 + size + 2
	if len(raw) < need {
		return out, false
	}
	data := raw[nl+2 : nl+2+size]
	s.head += need
	expires := expiry(exptime, s.engine.now())
	var reply string
	switch string(cmd) {
	case "set":
		s.engine.setBytes(key, data, uint32(flags), expires)
		reply = respStored
	case "add":
		if s.engine.addBytes(key, data, uint32(flags), expires) {
			reply = respStored
		} else {
			reply = respNotStored
		}
	case "replace":
		if s.engine.replaceBytes(key, data, uint32(flags), expires) {
			reply = respStored
		} else {
			reply = respNotStored
		}
	case "cas":
		switch s.engine.casBytes(key, data, uint32(flags), expires, casID) {
		case CASStored:
			reply = respStored
		case CASExists:
			reply = respExists
		case CASNotFound:
			reply = respNotFound
		}
	case "append":
		if s.engine.concatBytes(key, data, false) {
			reply = respStored
		} else {
			reply = respNotStored
		}
	case "prepend":
		if s.engine.concatBytes(key, data, true) {
			reply = respStored
		} else {
			reply = respNotStored
		}
	}
	if noreply {
		return out, true
	}
	return append(out, reply...), true
}

// MaxBatchRecords bounds the record count of one mset command, so a
// corrupt count cannot make the session buffer unboundedly.
const MaxBatchRecords = 1024

// msetCommand handles the batched storage extension:
//
//	mset <n>\r\n
//	<key> <flags> <exptime> <bytes>\r\n<data>\r\n   (× n)
//
// answered by a single "MSTORED <n>\r\n" line once every record is
// stored. A replicated multi-key write therefore costs one round trip
// per server regardless of the record count; TCPStore's SetMulti is the
// intended client. Records are parsed and validated in a first pass
// (nothing is stored if any record is malformed or still arriving) and
// applied in a second.
func (s *Session) msetCommand(out []byte, raw []byte, nl int) ([]byte, bool) {
	args := s.fields[1:]
	if len(args) < 1 {
		s.head += nl + 2
		return append(out, respBadCmdLine...), true
	}
	n, err := atoiField(args[0])
	if err || n <= 0 || n > MaxBatchRecords {
		s.head += nl + 2
		return append(out, respBadRecCount...), true
	}
	recs := s.recs[:0]
	pos := nl + 2
	for i := 0; i < n; i++ {
		rest := raw[pos:]
		rnl := bytes.Index(rest, []byte("\r\n"))
		if rnl < 0 {
			s.recs = recs
			return out, false // record header still arriving
		}
		rf := appendFields(s.rfields[:0], rest[:rnl])
		s.rfields = rf
		if len(rf) != 4 {
			s.head += pos + rnl + 2
			s.recs = recs
			return append(out, respBadRecordLine...), true
		}
		flags, err1 := parseUintField(rf[1], 32)
		exptime, err2 := atoiField(rf[2])
		size, err3 := atoiField(rf[3])
		if err1 || err2 || err3 || size < 0 || size > 8<<20 || len(rf[0]) > 250 {
			s.head += pos + rnl + 2
			s.recs = recs
			return append(out, respBadDataChunk...), true
		}
		need := pos + rnl + 2 + size + 2
		if len(raw) < need {
			s.recs = recs
			return out, false // data block still arriving
		}
		recs = append(recs, msetRec{
			key:     rf[0],
			val:     rest[rnl+2 : rnl+2+size],
			flags:   uint32(flags),
			expires: expiry(exptime, s.engine.now()),
		})
		pos = need
	}
	s.head += pos
	for _, r := range recs {
		s.engine.setBytes(r.key, r.val, r.flags, r.expires)
	}
	s.recs = recs
	out = append(out, "MSTORED "...)
	out = appendUint(out, uint64(len(recs)))
	return append(out, '\r', '\n'), true
}

func (s *Session) statsCommand(out []byte) []byte {
	st := s.engine.Stats()
	out = appendStatLine(out, "curr_items", uint64(st.CurrItems))
	out = appendStatLine(out, "bytes", uint64(st.BytesUsed))
	out = appendStatLine(out, "get_hits", st.GetHits)
	out = appendStatLine(out, "get_misses", st.GetMisses)
	out = appendStatLine(out, "cmd_set", st.Sets)
	out = appendStatLine(out, "delete_hits", st.Deletes)
	out = appendStatLine(out, "evictions", st.Evictions)
	out = appendStatLine(out, "expired_unfetched", st.Expirations)
	return append(out, respEnd...)
}

func appendStatLine(out []byte, name string, v uint64) []byte {
	out = append(out, "STAT "...)
	out = append(out, name...)
	out = append(out, ' ')
	out = appendUint(out, v)
	return append(out, '\r', '\n')
}

// appendFields splits line into whitespace-separated fields appended to
// dst, with strings.Fields semantics exactly (runs of unicode.IsSpace
// runes separate fields; invalid UTF-8 bytes are field bytes). The
// returned sub-slices alias line.
func appendFields(dst [][]byte, line []byte) [][]byte {
	i := 0
	for i < len(line) {
		c := line[i]
		if c < utf8.RuneSelf {
			if asciiSpace[c] {
				i++
				continue
			}
		} else {
			r, size := utf8.DecodeRune(line[i:])
			if unicode.IsSpace(r) {
				i += size
				continue
			}
		}
		start := i
		for i < len(line) {
			c := line[i]
			if c < utf8.RuneSelf {
				if asciiSpace[c] {
					break
				}
				i++
			} else {
				r, size := utf8.DecodeRune(line[i:])
				if unicode.IsSpace(r) {
					break
				}
				i += size
			}
		}
		dst = append(dst, line[start:i])
	}
	return dst
}

var asciiSpace = [utf8.RuneSelf]bool{'\t': true, '\n': true, '\v': true, '\f': true, '\r': true, ' ': true}

// parseUintField parses an unsigned decimal protocol field with
// strconv.ParseUint(…, 10, bitSize) semantics. The fast path handles
// plain digit runs without allocating; anything unusual falls back to
// strconv so error behavior matches the reference parser bit for bit.
func parseUintField(b []byte, bitSize int) (v uint64, bad bool) {
	if n := len(b); n >= 1 && n <= 19 {
		for _, c := range b {
			if c < '0' || c > '9' {
				goto slow
			}
			v = v*10 + uint64(c-'0')
		}
		if bitSize < 64 && v >= 1<<uint(bitSize) {
			return 0, true
		}
		return v, false
	}
slow:
	u, err := strconv.ParseUint(string(b), 10, bitSize)
	return u, err != nil
}

// atoiField parses a signed decimal protocol field with strconv.Atoi
// semantics; the digit fast path avoids the string conversion.
func atoiField(b []byte) (v int, bad bool) {
	i := 0
	neg := false
	if len(b) > 0 && b[0] == '-' {
		neg = true
		i = 1
	}
	if n := len(b) - i; n >= 1 && n <= 18 {
		for ; i < len(b); i++ {
			c := b[i]
			if c < '0' || c > '9' {
				goto slow
			}
			v = v*10 + int(c-'0')
		}
		if neg {
			v = -v
		}
		return v, false
	}
slow:
	n, err := strconv.Atoi(string(b))
	return n, err != nil
}

// expiry converts a protocol exptime to an absolute engine time. Values
// ≤0 mean "never". Memcached treats values >30 days as absolute Unix
// timestamps; this reproduction's stores use only relative expiries.
func expiry(exptime int, now time.Duration) time.Duration {
	if exptime <= 0 {
		return 0
	}
	return now + time.Duration(exptime)*time.Second
}
