// Package memcache implements a memcached-compatible in-memory key-value
// store: the storage engine with LRU eviction, the classic text protocol
// (get/gets/set/add/replace/cas/delete/touch/flush_all/stats/version),
// and two transports — a real TCP server/client on net, and an adapter
// that runs the same engine inside the netsim event loop so TCPStore can
// be exercised in the simulated testbed.
//
// Yoda's TCPStore (§4.3, §6) runs unmodified Memcached servers and does
// replication purely in the client library; this package is that
// "unmodified Memcached".
package memcache

import (
	"sync"
	"time"
)

// Item is one stored value as surfaced by the public engine API. The
// engine's internal representation is the intrusive node; Item copies
// cross the engine boundary so callers never alias engine-owned memory.
type Item struct {
	Key     string
	Value   []byte
	Flags   uint32
	Expires time.Duration // absolute virtual/real time; 0 = never
	casID   uint64
}

// Stats reports engine counters, mirroring the memcached "stats" command
// fields this reproduction consumes.
type Stats struct {
	CurrItems   int
	BytesUsed   int
	GetHits     uint64
	GetMisses   uint64
	Sets        uint64
	Deletes     uint64
	Evictions   uint64
	CasBadval   uint64
	Expirations uint64
}

// node is one stored item with the LRU list embedded in the struct
// (intrusive doubly-linked list): no container/list element allocation
// per item, and evicted nodes park on a free list so steady-state churn
// reuses both the struct and its value buffer.
type node struct {
	key     string
	value   []byte
	flags   uint32
	expires time.Duration
	casID   uint64

	prev, next *node
}

// Free-list bounds: parked nodes beyond maxFreeNodes are dropped to the
// GC, and a recycled node's value buffer is released when it is large
// enough that pinning it would outweigh the realloc it saves.
const (
	maxFreeNodes    = 4096
	maxFreeValueCap = 64 << 10
)

// Engine is the storage engine: a hash map with LRU eviction under a
// memory cap. Safe for concurrent use (the real-TCP transport serves
// connections from multiple goroutines).
type Engine struct {
	mu       sync.Mutex
	items    map[string]*node
	head     *node // most recently used
	tail     *node // least recently used
	free     *node // recycled nodes, chained via next
	nFree    int
	scratch  []byte // prepend assembly buffer, engine-owned
	maxBytes int
	used     int
	now      func() time.Duration
	nextCas  uint64
	stats    Stats
}

// NewEngine creates an engine with the given memory cap in bytes (<=0
// means unlimited) and clock. For the real server pass a wall-clock
// function; inside netsim pass the network's Now.
func NewEngine(maxBytes int, now func() time.Duration) *Engine {
	if now == nil {
		start := time.Now()
		now = func() time.Duration { return time.Since(start) }
	}
	return &Engine{
		items:    make(map[string]*node),
		maxBytes: maxBytes,
		now:      now,
	}
}

func nodeSize(n *node) int { return len(n.key) + len(n.value) + 64 }

// nodeExpired reports whether n is past its expiry at time now.
func nodeExpired(n *node, now time.Duration) bool {
	return n.expires > 0 && now >= n.expires
}

// --- intrusive LRU list ---

func (e *Engine) pushFront(n *node) {
	n.prev = nil
	n.next = e.head
	if e.head != nil {
		e.head.prev = n
	}
	e.head = n
	if e.tail == nil {
		e.tail = n
	}
}

func (e *Engine) unlink(n *node) {
	if n.prev != nil {
		n.prev.next = n.next
	} else {
		e.head = n.next
	}
	if n.next != nil {
		n.next.prev = n.prev
	} else {
		e.tail = n.prev
	}
	n.prev, n.next = nil, nil
}

func (e *Engine) moveToFront(n *node) {
	if e.head == n {
		return
	}
	e.unlink(n)
	e.pushFront(n)
}

// newNode pops a recycled node (value capacity retained) or allocates.
func (e *Engine) newNode() *node {
	if n := e.free; n != nil {
		e.free = n.next
		e.nFree--
		n.next = nil
		return n
	}
	return &node{}
}

// freeNode parks a removed node for reuse, dropping its key reference
// (the map no longer holds it) but keeping the value buffer's capacity.
func (e *Engine) freeNode(n *node) {
	n.key = ""
	n.prev = nil
	if e.nFree >= maxFreeNodes {
		n.next = nil
		return
	}
	if cap(n.value) > maxFreeValueCap {
		n.value = nil
	} else {
		n.value = n.value[:0]
	}
	n.next = e.free
	e.free = n
	e.nFree++
}

// --- byte-key lookups (zero-copy: no string conversion allocates) ---

// lookup returns the live node for key, removing it if expired.
// missStats controls whether an absent/expired key counts as a get miss.
func (e *Engine) lookup(key []byte, missStats bool) *node {
	n, ok := e.items[string(key)]
	return e.checkNode(n, ok, missStats)
}

// lookupStr is the string-key twin of lookup.
func (e *Engine) lookupStr(key string, missStats bool) *node {
	n, ok := e.items[key]
	return e.checkNode(n, ok, missStats)
}

func (e *Engine) checkNode(n *node, ok, missStats bool) *node {
	if !ok {
		if missStats {
			e.stats.GetMisses++
		}
		return nil
	}
	if nodeExpired(n, e.now()) {
		e.removeLocked(n)
		e.stats.Expirations++
		if missStats {
			e.stats.GetMisses++
		}
		return nil
	}
	return n
}

// storeLocked writes value/flags/expires into n (reusing its buffer) and
// performs the set bookkeeping shared by every storage mutation.
func (e *Engine) storeLocked(n *node, value []byte, flags uint32, expires time.Duration) {
	e.used -= nodeSize(n)
	n.value = append(n.value[:0], value...)
	n.flags = flags
	n.expires = expires
	e.nextCas++
	n.casID = e.nextCas
	e.used += nodeSize(n)
	e.moveToFront(n)
	e.evictLocked()
}

// insertLocked adds a fresh node under key. The string conversion here is
// the single engine-insert copy boundary for keys.
func (e *Engine) insertLocked(key []byte, value []byte, flags uint32, expires time.Duration) {
	n := e.newNode()
	n.key = string(key)
	n.value = append(n.value[:0], value...)
	n.flags = flags
	n.expires = expires
	e.nextCas++
	n.casID = e.nextCas
	e.items[n.key] = n
	e.pushFront(n)
	e.used += nodeSize(n)
	e.evictLocked()
}

// setBytes is Set for byte keys/values sliced out of a protocol buffer;
// the engine copies both at this boundary.
func (e *Engine) setBytes(key, value []byte, flags uint32, expires time.Duration) {
	e.mu.Lock()
	defer e.mu.Unlock()
	e.setBytesLocked(key, value, flags, expires)
	e.stats.Sets++
}

func (e *Engine) setBytesLocked(key, value []byte, flags uint32, expires time.Duration) {
	if n, ok := e.items[string(key)]; ok {
		e.storeLocked(n, value, flags, expires)
		return
	}
	e.insertLocked(key, value, flags, expires)
}

// addBytes stores only if the key is absent (or expired).
func (e *Engine) addBytes(key, value []byte, flags uint32, expires time.Duration) bool {
	e.mu.Lock()
	defer e.mu.Unlock()
	if n, ok := e.items[string(key)]; ok && !nodeExpired(n, e.now()) {
		return false
	}
	e.setBytesLocked(key, value, flags, expires)
	e.stats.Sets++
	return true
}

// replaceBytes stores only if the key is present.
func (e *Engine) replaceBytes(key, value []byte, flags uint32, expires time.Duration) bool {
	e.mu.Lock()
	defer e.mu.Unlock()
	if n, ok := e.items[string(key)]; !ok || nodeExpired(n, e.now()) {
		return false
	}
	e.setBytesLocked(key, value, flags, expires)
	e.stats.Sets++
	return true
}

// casBytes stores if the held casID matches.
func (e *Engine) casBytes(key, value []byte, flags uint32, expires time.Duration, casID uint64) CASResult {
	e.mu.Lock()
	defer e.mu.Unlock()
	n, ok := e.items[string(key)]
	if !ok || nodeExpired(n, e.now()) {
		return CASNotFound
	}
	if n.casID != casID {
		e.stats.CasBadval++
		return CASExists
	}
	e.setBytesLocked(key, value, flags, expires)
	e.stats.Sets++
	return CASStored
}

// concatBytes appends (front=false) or prepends (front=true) value onto
// an existing item in place.
func (e *Engine) concatBytes(key, value []byte, front bool) bool {
	e.mu.Lock()
	defer e.mu.Unlock()
	n, ok := e.items[string(key)]
	if !ok || nodeExpired(n, e.now()) {
		return false
	}
	e.used -= nodeSize(n)
	if front {
		e.scratch = append(e.scratch[:0], value...)
		e.scratch = append(e.scratch, n.value...)
		n.value = append(n.value[:0], e.scratch...)
	} else {
		n.value = append(n.value, value...)
	}
	e.nextCas++
	n.casID = e.nextCas
	e.used += nodeSize(n)
	e.moveToFront(n)
	e.evictLocked()
	e.stats.Sets++
	return true
}

// incrDecrBytes adjusts a numeric value in place; see IncrDecr.
func (e *Engine) incrDecrBytes(key []byte, delta int64) (uint64, bool) {
	e.mu.Lock()
	defer e.mu.Unlock()
	n, ok := e.items[string(key)]
	if !ok || nodeExpired(n, e.now()) {
		return 0, false
	}
	cur, bad := parseUint(n.value)
	if bad {
		return 0, false
	}
	var next uint64
	if delta >= 0 {
		next = cur + uint64(delta)
	} else {
		dec := uint64(-delta)
		if dec > cur {
			next = 0 // memcached clamps decrement at zero
		} else {
			next = cur - dec
		}
	}
	e.used -= nodeSize(n)
	n.value = appendUint(n.value[:0], next)
	e.nextCas++
	n.casID = e.nextCas
	e.used += nodeSize(n)
	e.moveToFront(n)
	e.evictLocked()
	e.stats.Sets++
	return next, true
}

// presentBytes mirrors Get's side effects (miss/expiry accounting, LRU
// bump) without copying the value; the protocol session uses it where
// the reference implementation issued a Get only to probe existence.
func (e *Engine) presentBytes(key []byte) bool {
	e.mu.Lock()
	defer e.mu.Unlock()
	n := e.lookup(key, true)
	if n == nil {
		return false
	}
	e.moveToFront(n)
	e.stats.GetHits++
	return true
}

// appendGetResponse performs a get for the protocol session: identical
// side effects to Get/GetWithCAS (miss/expiry accounting, LRU bump, hit
// counter), but instead of returning an Item copy it frames the
//
//	VALUE <key> <flags> <bytes> [<casid>]\r\n<data>\r\n
//
// block directly onto out. The stored value is copied into out under the
// engine lock — this is the enforced copy boundary that keeps a
// caller-held response from ever aliasing engine-owned bytes that a later
// append/incr mutates in place. Misses append nothing.
func (e *Engine) appendGetResponse(out []byte, key []byte, withCAS bool) []byte {
	e.mu.Lock()
	defer e.mu.Unlock()
	n := e.lookup(key, true)
	if n == nil {
		return out
	}
	e.moveToFront(n)
	e.stats.GetHits++
	out = append(out, "VALUE "...)
	out = append(out, n.key...)
	out = append(out, ' ')
	out = appendUint(out, uint64(n.flags))
	out = append(out, ' ')
	out = appendUint(out, uint64(len(n.value)))
	if withCAS {
		out = append(out, ' ')
		out = appendUint(out, n.casID)
	}
	out = append(out, '\r', '\n')
	out = append(out, n.value...)
	out = append(out, '\r', '\n')
	return out
}

// deleteBytes removes key, reporting whether it was present.
func (e *Engine) deleteBytes(key []byte) bool {
	e.mu.Lock()
	defer e.mu.Unlock()
	n, ok := e.items[string(key)]
	if !ok {
		return false
	}
	if nodeExpired(n, e.now()) {
		e.removeLocked(n)
		e.stats.Expirations++
		return false
	}
	e.removeLocked(n)
	e.stats.Deletes++
	return true
}

// touchBytes updates an item's expiry, reporting whether it was present.
func (e *Engine) touchBytes(key []byte, expires time.Duration) bool {
	e.mu.Lock()
	defer e.mu.Unlock()
	n, ok := e.items[string(key)]
	if !ok || nodeExpired(n, e.now()) {
		return false
	}
	n.expires = expires
	e.moveToFront(n)
	return true
}

// --- public string-key API (copies on both sides of the boundary) ---

// Get returns a copy of the item stored under key, or ok=false.
func (e *Engine) Get(key string) (Item, bool) {
	e.mu.Lock()
	defer e.mu.Unlock()
	n := e.lookupStr(key, true)
	if n == nil {
		return Item{}, false
	}
	e.moveToFront(n)
	e.stats.GetHits++
	return itemCopy(n), true
}

// GetWithCAS returns the item and its CAS token.
func (e *Engine) GetWithCAS(key string) (Item, uint64, bool) {
	e.mu.Lock()
	defer e.mu.Unlock()
	n := e.lookupStr(key, true)
	if n == nil {
		return Item{}, 0, false
	}
	e.moveToFront(n)
	e.stats.GetHits++
	return itemCopy(n), n.casID, true
}

func itemCopy(n *node) Item {
	return Item{
		Key:     n.key,
		Value:   append([]byte(nil), n.value...),
		Flags:   n.flags,
		Expires: n.expires,
		casID:   n.casID,
	}
}

// Set unconditionally stores value under key.
func (e *Engine) Set(it Item) {
	e.mu.Lock()
	defer e.mu.Unlock()
	e.setStrLocked(it)
	e.stats.Sets++
}

// setStrLocked is setBytesLocked for an Item carrying a string key.
func (e *Engine) setStrLocked(it Item) {
	if n, ok := e.items[it.Key]; ok {
		e.storeLocked(n, it.Value, it.Flags, it.Expires)
		return
	}
	n := e.newNode()
	n.key = it.Key
	n.value = append(n.value[:0], it.Value...)
	n.flags = it.Flags
	n.expires = it.Expires
	e.nextCas++
	n.casID = e.nextCas
	e.items[n.key] = n
	e.pushFront(n)
	e.used += nodeSize(n)
	e.evictLocked()
}

// Add stores the item only if the key is absent (or expired). It reports
// whether the item was stored.
func (e *Engine) Add(it Item) bool {
	e.mu.Lock()
	defer e.mu.Unlock()
	if n, ok := e.items[it.Key]; ok && !nodeExpired(n, e.now()) {
		return false
	}
	e.setStrLocked(it)
	e.stats.Sets++
	return true
}

// Replace stores the item only if the key is present. It reports whether
// the item was stored.
func (e *Engine) Replace(it Item) bool {
	e.mu.Lock()
	defer e.mu.Unlock()
	if n, ok := e.items[it.Key]; !ok || nodeExpired(n, e.now()) {
		return false
	}
	e.setStrLocked(it)
	e.stats.Sets++
	return true
}

// CASResult is the outcome of a compare-and-swap.
type CASResult int

// CAS outcomes.
const (
	CASStored CASResult = iota
	CASExists           // casID mismatch: someone stored since the gets
	CASNotFound
)

// CAS stores the item if the stored casID matches.
func (e *Engine) CAS(it Item, casID uint64) CASResult {
	e.mu.Lock()
	defer e.mu.Unlock()
	n, ok := e.items[it.Key]
	if !ok || nodeExpired(n, e.now()) {
		return CASNotFound
	}
	if n.casID != casID {
		e.stats.CasBadval++
		return CASExists
	}
	e.setStrLocked(it)
	e.stats.Sets++
	return CASStored
}

// Delete removes key, reporting whether it was present.
func (e *Engine) Delete(key string) bool {
	e.mu.Lock()
	defer e.mu.Unlock()
	n, ok := e.items[key]
	if !ok {
		return false
	}
	if nodeExpired(n, e.now()) {
		e.removeLocked(n)
		e.stats.Expirations++
		return false
	}
	e.removeLocked(n)
	e.stats.Deletes++
	return true
}

// Append concatenates value onto an existing item, reporting whether the
// key was present.
func (e *Engine) Append(key string, value []byte) bool {
	return e.concatStr(key, value, false)
}

// Prepend prefixes value onto an existing item, reporting whether the key
// was present.
func (e *Engine) Prepend(key string, value []byte) bool {
	return e.concatStr(key, value, true)
}

func (e *Engine) concatStr(key string, value []byte, front bool) bool {
	e.mu.Lock()
	defer e.mu.Unlock()
	n, ok := e.items[key]
	if !ok || nodeExpired(n, e.now()) {
		return false
	}
	e.used -= nodeSize(n)
	if front {
		e.scratch = append(e.scratch[:0], value...)
		e.scratch = append(e.scratch, n.value...)
		n.value = append(n.value[:0], e.scratch...)
	} else {
		n.value = append(n.value, value...)
	}
	e.nextCas++
	n.casID = e.nextCas
	e.used += nodeSize(n)
	e.moveToFront(n)
	e.evictLocked()
	e.stats.Sets++
	return true
}

// IncrDecr adjusts a numeric value by delta (negative for decr). As in
// memcached, decrement clamps at zero and the operation fails if the key
// is absent or the stored value is not an unsigned decimal number.
func (e *Engine) IncrDecr(key string, delta int64) (uint64, bool) {
	e.mu.Lock()
	defer e.mu.Unlock()
	n, ok := e.items[key]
	if !ok || nodeExpired(n, e.now()) {
		return 0, false
	}
	cur, bad := parseUint(n.value)
	if bad {
		return 0, false
	}
	var next uint64
	if delta >= 0 {
		next = cur + uint64(delta)
	} else {
		dec := uint64(-delta)
		if dec > cur {
			next = 0
		} else {
			next = cur - dec
		}
	}
	e.used -= nodeSize(n)
	n.value = appendUint(n.value[:0], next)
	e.nextCas++
	n.casID = e.nextCas
	e.used += nodeSize(n)
	e.moveToFront(n)
	e.evictLocked()
	e.stats.Sets++
	return next, true
}

// parseUint interprets a stored value as an unsigned decimal number;
// bad=true when it is not one (empty, too long, or non-digit bytes).
func parseUint(b []byte) (uint64, bool) {
	if len(b) == 0 || len(b) > 20 {
		return 0, true
	}
	var v uint64
	for _, c := range b {
		if c < '0' || c > '9' {
			return 0, true
		}
		v = v*10 + uint64(c-'0')
	}
	return v, false
}

func formatUint(v uint64) string { return string(appendUint(nil, v)) }

// appendUint appends the decimal form of v to dst.
func appendUint(dst []byte, v uint64) []byte {
	if v == 0 {
		return append(dst, '0')
	}
	var buf [20]byte
	i := len(buf)
	for v > 0 {
		i--
		buf[i] = byte('0' + v%10)
		v /= 10
	}
	return append(dst, buf[i:]...)
}

// Touch updates an item's expiry, reporting whether it was present.
func (e *Engine) Touch(key string, expires time.Duration) bool {
	e.mu.Lock()
	defer e.mu.Unlock()
	n, ok := e.items[key]
	if !ok || nodeExpired(n, e.now()) {
		return false
	}
	n.expires = expires
	e.moveToFront(n)
	return true
}

// FlushAll drops every item.
func (e *Engine) FlushAll() {
	e.mu.Lock()
	defer e.mu.Unlock()
	e.items = make(map[string]*node)
	e.head, e.tail = nil, nil
	e.free, e.nFree = nil, 0
	e.used = 0
}

// Stats returns a snapshot of the counters.
func (e *Engine) Stats() Stats {
	e.mu.Lock()
	defer e.mu.Unlock()
	s := e.stats
	s.CurrItems = len(e.items)
	s.BytesUsed = e.used
	return s
}

func (e *Engine) evictLocked() {
	if e.maxBytes <= 0 {
		return
	}
	for e.used > e.maxBytes && e.tail != nil {
		e.removeLocked(e.tail)
		e.stats.Evictions++
	}
}

func (e *Engine) removeLocked(n *node) {
	e.used -= nodeSize(n)
	delete(e.items, n.key)
	e.unlink(n)
	e.freeNode(n)
}
