// Package memcache implements a memcached-compatible in-memory key-value
// store: the storage engine with LRU eviction, the classic text protocol
// (get/gets/set/add/replace/cas/delete/touch/flush_all/stats/version),
// and two transports — a real TCP server/client on net, and an adapter
// that runs the same engine inside the netsim event loop so TCPStore can
// be exercised in the simulated testbed.
//
// Yoda's TCPStore (§4.3, §6) runs unmodified Memcached servers and does
// replication purely in the client library; this package is that
// "unmodified Memcached".
package memcache

import (
	"container/list"
	"sync"
	"time"
)

// Item is one stored value.
type Item struct {
	Key     string
	Value   []byte
	Flags   uint32
	Expires time.Duration // absolute virtual/real time; 0 = never
	casID   uint64
}

// Stats reports engine counters, mirroring the memcached "stats" command
// fields this reproduction consumes.
type Stats struct {
	CurrItems   int
	BytesUsed   int
	GetHits     uint64
	GetMisses   uint64
	Sets        uint64
	Deletes     uint64
	Evictions   uint64
	CasBadval   uint64
	Expirations uint64
}

// Engine is the storage engine: a hash map with LRU eviction under a
// memory cap. Safe for concurrent use (the real-TCP transport serves
// connections from multiple goroutines).
type Engine struct {
	mu       sync.Mutex
	items    map[string]*list.Element
	lru      *list.List // front = most recent
	maxBytes int
	used     int
	now      func() time.Duration
	nextCas  uint64
	stats    Stats
}

type entry struct{ item Item }

// NewEngine creates an engine with the given memory cap in bytes (<=0
// means unlimited) and clock. For the real server pass a wall-clock
// function; inside netsim pass the network's Now.
func NewEngine(maxBytes int, now func() time.Duration) *Engine {
	if now == nil {
		start := time.Now()
		now = func() time.Duration { return time.Since(start) }
	}
	return &Engine{
		items:    make(map[string]*list.Element),
		lru:      list.New(),
		maxBytes: maxBytes,
		now:      now,
	}
}

func itemSize(it *Item) int { return len(it.Key) + len(it.Value) + 64 }

// expired reports whether it is past its expiry at time now.
func expired(it *Item, now time.Duration) bool {
	return it.Expires > 0 && now >= it.Expires
}

// Get returns the item stored under key, or ok=false.
func (e *Engine) Get(key string) (Item, bool) {
	e.mu.Lock()
	defer e.mu.Unlock()
	el, ok := e.items[key]
	if !ok {
		e.stats.GetMisses++
		return Item{}, false
	}
	it := &el.Value.(*entry).item
	if expired(it, e.now()) {
		e.removeLocked(el)
		e.stats.Expirations++
		e.stats.GetMisses++
		return Item{}, false
	}
	e.lru.MoveToFront(el)
	e.stats.GetHits++
	cp := *it
	cp.Value = append([]byte(nil), it.Value...)
	return cp, true
}

// Set unconditionally stores value under key.
func (e *Engine) Set(it Item) {
	e.mu.Lock()
	defer e.mu.Unlock()
	e.setLocked(it)
	e.stats.Sets++
}

// Add stores the item only if the key is absent (or expired). It reports
// whether the item was stored.
func (e *Engine) Add(it Item) bool {
	e.mu.Lock()
	defer e.mu.Unlock()
	if el, ok := e.items[it.Key]; ok && !expired(&el.Value.(*entry).item, e.now()) {
		return false
	}
	e.setLocked(it)
	e.stats.Sets++
	return true
}

// Replace stores the item only if the key is present. It reports whether
// the item was stored.
func (e *Engine) Replace(it Item) bool {
	e.mu.Lock()
	defer e.mu.Unlock()
	if el, ok := e.items[it.Key]; !ok || expired(&el.Value.(*entry).item, e.now()) {
		return false
	}
	e.setLocked(it)
	e.stats.Sets++
	return true
}

// CASResult is the outcome of a compare-and-swap.
type CASResult int

// CAS outcomes.
const (
	CASStored CASResult = iota
	CASExists           // casID mismatch: someone stored since the gets
	CASNotFound
)

// CAS stores the item if the stored casID matches.
func (e *Engine) CAS(it Item, casID uint64) CASResult {
	e.mu.Lock()
	defer e.mu.Unlock()
	el, ok := e.items[it.Key]
	if !ok || expired(&el.Value.(*entry).item, e.now()) {
		return CASNotFound
	}
	if el.Value.(*entry).item.casID != casID {
		e.stats.CasBadval++
		return CASExists
	}
	e.setLocked(it)
	e.stats.Sets++
	return CASStored
}

// GetWithCAS returns the item and its CAS token.
func (e *Engine) GetWithCAS(key string) (Item, uint64, bool) {
	e.mu.Lock()
	defer e.mu.Unlock()
	el, ok := e.items[key]
	if !ok {
		e.stats.GetMisses++
		return Item{}, 0, false
	}
	it := &el.Value.(*entry).item
	if expired(it, e.now()) {
		e.removeLocked(el)
		e.stats.Expirations++
		e.stats.GetMisses++
		return Item{}, 0, false
	}
	e.lru.MoveToFront(el)
	e.stats.GetHits++
	cp := *it
	cp.Value = append([]byte(nil), it.Value...)
	return cp, it.casID, true
}

// Delete removes key, reporting whether it was present.
func (e *Engine) Delete(key string) bool {
	e.mu.Lock()
	defer e.mu.Unlock()
	el, ok := e.items[key]
	if !ok {
		return false
	}
	if expired(&el.Value.(*entry).item, e.now()) {
		e.removeLocked(el)
		e.stats.Expirations++
		return false
	}
	e.removeLocked(el)
	e.stats.Deletes++
	return true
}

// Append concatenates value onto an existing item, reporting whether the
// key was present.
func (e *Engine) Append(key string, value []byte) bool {
	return e.concat(key, value, false)
}

// Prepend prefixes value onto an existing item, reporting whether the key
// was present.
func (e *Engine) Prepend(key string, value []byte) bool {
	return e.concat(key, value, true)
}

func (e *Engine) concat(key string, value []byte, front bool) bool {
	e.mu.Lock()
	defer e.mu.Unlock()
	el, ok := e.items[key]
	if !ok || expired(&el.Value.(*entry).item, e.now()) {
		return false
	}
	old := el.Value.(*entry).item
	var merged []byte
	if front {
		merged = append(append([]byte(nil), value...), old.Value...)
	} else {
		merged = append(append([]byte(nil), old.Value...), value...)
	}
	old.Value = merged
	e.setLocked(old)
	e.stats.Sets++
	return true
}

// IncrDecr adjusts a numeric value by delta (negative for decr). As in
// memcached, decrement clamps at zero and the operation fails if the key
// is absent or the stored value is not an unsigned decimal number.
func (e *Engine) IncrDecr(key string, delta int64) (uint64, bool) {
	e.mu.Lock()
	defer e.mu.Unlock()
	el, ok := e.items[key]
	if !ok || expired(&el.Value.(*entry).item, e.now()) {
		return 0, false
	}
	it := el.Value.(*entry).item
	cur, err := parseUint(it.Value)
	if err {
		return 0, false
	}
	var next uint64
	if delta >= 0 {
		next = cur + uint64(delta)
	} else {
		dec := uint64(-delta)
		if dec > cur {
			next = 0 // memcached clamps decrement at zero
		} else {
			next = cur - dec
		}
	}
	it.Value = []byte(formatUint(next))
	e.setLocked(it)
	e.stats.Sets++
	return next, true
}

func parseUint(b []byte) (uint64, bool) {
	if len(b) == 0 || len(b) > 20 {
		return 0, true
	}
	var v uint64
	for _, c := range b {
		if c < '0' || c > '9' {
			return 0, true
		}
		v = v*10 + uint64(c-'0')
	}
	return v, false
}

func formatUint(v uint64) string {
	if v == 0 {
		return "0"
	}
	var buf [20]byte
	i := len(buf)
	for v > 0 {
		i--
		buf[i] = byte('0' + v%10)
		v /= 10
	}
	return string(buf[i:])
}

// Touch updates an item's expiry, reporting whether it was present.
func (e *Engine) Touch(key string, expires time.Duration) bool {
	e.mu.Lock()
	defer e.mu.Unlock()
	el, ok := e.items[key]
	if !ok || expired(&el.Value.(*entry).item, e.now()) {
		return false
	}
	el.Value.(*entry).item.Expires = expires
	e.lru.MoveToFront(el)
	return true
}

// FlushAll drops every item.
func (e *Engine) FlushAll() {
	e.mu.Lock()
	defer e.mu.Unlock()
	e.items = make(map[string]*list.Element)
	e.lru.Init()
	e.used = 0
}

// Stats returns a snapshot of the counters.
func (e *Engine) Stats() Stats {
	e.mu.Lock()
	defer e.mu.Unlock()
	s := e.stats
	s.CurrItems = len(e.items)
	s.BytesUsed = e.used
	return s
}

func (e *Engine) setLocked(it Item) {
	it.Value = append([]byte(nil), it.Value...)
	e.nextCas++
	it.casID = e.nextCas
	if el, ok := e.items[it.Key]; ok {
		old := &el.Value.(*entry).item
		e.used -= itemSize(old)
		el.Value.(*entry).item = it
		e.used += itemSize(&it)
		e.lru.MoveToFront(el)
	} else {
		el := e.lru.PushFront(&entry{item: it})
		e.items[it.Key] = el
		e.used += itemSize(&it)
	}
	e.evictLocked()
}

func (e *Engine) evictLocked() {
	if e.maxBytes <= 0 {
		return
	}
	for e.used > e.maxBytes && e.lru.Len() > 0 {
		el := e.lru.Back()
		e.removeLocked(el)
		e.stats.Evictions++
	}
}

func (e *Engine) removeLocked(el *list.Element) {
	it := &el.Value.(*entry).item
	e.used -= itemSize(it)
	delete(e.items, it.Key)
	e.lru.Remove(el)
}
