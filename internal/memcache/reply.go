package memcache

import (
	"bytes"
)

// ReplyType classifies a server response.
type ReplyType int

// Reply types.
const (
	ReplyStored ReplyType = iota
	ReplyNotStored
	ReplyExists
	ReplyNotFound
	ReplyDeleted
	ReplyTouched
	ReplyOK
	ReplyValues // get/gets result (possibly empty) terminated by END
	ReplyError
	ReplyVersion
	ReplyStats
	ReplyMStored // batched mset result; N carries the stored count
)

// Reply is one parsed server response.
type Reply struct {
	Type  ReplyType
	Items []Item   // for ReplyValues
	CAS   []uint64 // parallel to Items when gets was used
	N     int      // stored-record count for ReplyMStored
	Raw   string   // first line, for errors/version/stats
}

// ReplyParser incrementally parses the server side of the text protocol.
// It must be told whether the next expected reply is for a retrieval
// command (get/gets/stats), because those are multi-line and terminated
// by END while storage replies are single-line. Callers enqueue the
// expectation when they send the request.
//
// Single-line replies (the storage-write steady state) parse without
// allocating: lines are matched as bytes and Raw is a constant for the
// known verbs. Multi-line VALUE replies still copy keys and values out —
// they cross into caller-owned Items.
type ReplyParser struct {
	buf bytes.Buffer
	// pending expectation ring: multi[mhead:] are outstanding replies,
	// true = multi-line (END-terminated). The consumed prefix is reclaimed
	// once the ring drains, so steady-state traffic never reallocates.
	multi []bool
	mhead int
	// in-progress multi-line accumulation
	items []Item
	cas   []uint64
	// fields is the VALUE-line tokenizer scratch.
	fields [][]byte
}

// Expect registers that the next reply is multi-line (get/gets/stats)
// or single-line.
func (p *ReplyParser) Expect(multiLine bool) {
	if p.mhead == len(p.multi) {
		p.multi = p.multi[:0]
		p.mhead = 0
	}
	p.multi = append(p.multi, multiLine)
}

// PendingReplies returns the number of replies not yet received.
func (p *ReplyParser) PendingReplies() int { return len(p.multi) - p.mhead }

// Feed consumes bytes and returns completed replies in order.
func (p *ReplyParser) Feed(data []byte) []Reply {
	var out []Reply
	p.FeedFunc(data, func(r Reply) { out = append(out, r) })
	return out
}

// FeedFunc consumes bytes and invokes fn for each completed reply, in
// order, without building a reply slice. fn must not retain the Reply's
// Items beyond the call if it recycles them (the parser itself does not).
func (p *ReplyParser) FeedFunc(data []byte, fn func(Reply)) {
	p.buf.Write(data)
	for p.mhead < len(p.multi) {
		r, ok := p.step()
		if !ok {
			break
		}
		fn(r)
	}
}

// consumeExpect retires the reply currently being parsed.
func (p *ReplyParser) consumeExpect() {
	p.mhead++
	if p.mhead == len(p.multi) {
		p.multi = p.multi[:0]
		p.mhead = 0
	}
}

func (p *ReplyParser) step() (Reply, bool) {
	isMulti := p.multi[p.mhead]
	for {
		raw := p.buf.Bytes()
		nl := bytes.Index(raw, []byte("\r\n"))
		if nl < 0 {
			return Reply{}, false
		}
		line := raw[:nl]
		if !isMulti {
			r := singleLineReply(line)
			p.buf.Next(nl + 2)
			p.consumeExpect()
			return r, true
		}
		switch {
		case string(line) == "END":
			p.buf.Next(nl + 2)
			r := Reply{Type: ReplyValues, Items: p.items, CAS: p.cas}
			p.items, p.cas = nil, nil
			p.consumeExpect()
			return r, true
		case bytes.HasPrefix(line, []byte("VALUE ")):
			p.fields = appendFields(p.fields[:0], line)
			fields := p.fields
			if len(fields) < 4 {
				r := Reply{Type: ReplyError, Raw: string(line)}
				p.buf.Next(nl + 2)
				p.consumeExpect()
				return r, true
			}
			size, serr := atoiField(fields[3])
			if serr || size < 0 {
				r := Reply{Type: ReplyError, Raw: string(line)}
				p.buf.Next(nl + 2)
				p.consumeExpect()
				return r, true
			}
			need := nl + 2 + size + 2
			if len(raw) < need {
				return Reply{}, false
			}
			flags, _ := parseUintField(fields[2], 32)
			it := Item{
				Key:   string(fields[1]),
				Flags: uint32(flags),
				Value: append([]byte(nil), raw[nl+2:nl+2+size]...),
			}
			var casID uint64
			if len(fields) >= 5 {
				casID, _ = parseUintField(fields[4], 64)
			}
			p.items = append(p.items, it)
			p.cas = append(p.cas, casID)
			p.buf.Next(need)
		case bytes.HasPrefix(line, []byte("STAT ")):
			// stats lines accumulate as raw text in a values-style reply;
			// we fold them into Raw for simplicity.
			p.items = append(p.items, Item{Key: "STAT", Value: append([]byte(nil), line...)})
			p.buf.Next(nl + 2)
		default:
			// Error mid-retrieval.
			r := Reply{Type: ReplyError, Raw: string(line)}
			p.buf.Next(nl + 2)
			p.items, p.cas = nil, nil
			p.consumeExpect()
			return r, true
		}
	}
}

func singleLineReply(line []byte) Reply {
	switch {
	case string(line) == "STORED":
		return Reply{Type: ReplyStored, Raw: "STORED"}
	case string(line) == "NOT_STORED":
		return Reply{Type: ReplyNotStored, Raw: "NOT_STORED"}
	case string(line) == "EXISTS":
		return Reply{Type: ReplyExists, Raw: "EXISTS"}
	case string(line) == "NOT_FOUND":
		return Reply{Type: ReplyNotFound, Raw: "NOT_FOUND"}
	case string(line) == "DELETED":
		return Reply{Type: ReplyDeleted, Raw: "DELETED"}
	case string(line) == "TOUCHED":
		return Reply{Type: ReplyTouched, Raw: "TOUCHED"}
	case string(line) == "OK":
		return Reply{Type: ReplyOK, Raw: "OK"}
	case bytes.HasPrefix(line, []byte("MSTORED ")):
		n, err := atoiField(line[len("MSTORED "):])
		if err || n < 0 {
			return Reply{Type: ReplyError, Raw: string(line)}
		}
		return Reply{Type: ReplyMStored, N: n, Raw: "MSTORED"}
	case bytes.HasPrefix(line, []byte("VERSION")):
		return Reply{Type: ReplyVersion, Raw: string(line)}
	default:
		return Reply{Type: ReplyError, Raw: string(line)}
	}
}
