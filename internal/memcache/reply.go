package memcache

import (
	"bytes"
	"strconv"
	"strings"
)

// ReplyType classifies a server response.
type ReplyType int

// Reply types.
const (
	ReplyStored ReplyType = iota
	ReplyNotStored
	ReplyExists
	ReplyNotFound
	ReplyDeleted
	ReplyTouched
	ReplyOK
	ReplyValues // get/gets result (possibly empty) terminated by END
	ReplyError
	ReplyVersion
	ReplyStats
	ReplyMStored // batched mset result; N carries the stored count
)

// Reply is one parsed server response.
type Reply struct {
	Type  ReplyType
	Items []Item   // for ReplyValues
	CAS   []uint64 // parallel to Items when gets was used
	N     int      // stored-record count for ReplyMStored
	Raw   string   // first line, for errors/version/stats
}

// ReplyParser incrementally parses the server side of the text protocol.
// It must be told whether the next expected reply is for a retrieval
// command (get/gets/stats), because those are multi-line and terminated
// by END while storage replies are single-line. Callers enqueue the
// expectation when they send the request.
type ReplyParser struct {
	buf bytes.Buffer
	// pending expectation queue: true = multi-line (END-terminated).
	multi []bool
	// in-progress multi-line accumulation
	items []Item
	cas   []uint64
}

// Expect registers that the next reply is multi-line (get/gets/stats)
// or single-line.
func (p *ReplyParser) Expect(multiLine bool) { p.multi = append(p.multi, multiLine) }

// PendingReplies returns the number of replies not yet received.
func (p *ReplyParser) PendingReplies() int { return len(p.multi) }

// Feed consumes bytes and returns completed replies in order.
func (p *ReplyParser) Feed(data []byte) []Reply {
	p.buf.Write(data)
	var out []Reply
	for len(p.multi) > 0 {
		r, ok := p.step()
		if !ok {
			break
		}
		out = append(out, r)
	}
	return out
}

func (p *ReplyParser) step() (Reply, bool) {
	isMulti := p.multi[0]
	for {
		raw := p.buf.Bytes()
		nl := bytes.Index(raw, []byte("\r\n"))
		if nl < 0 {
			return Reply{}, false
		}
		line := string(raw[:nl])
		if !isMulti {
			p.buf.Next(nl + 2)
			p.multi = p.multi[1:]
			return singleLineReply(line), true
		}
		switch {
		case line == "END":
			p.buf.Next(nl + 2)
			r := Reply{Type: ReplyValues, Items: p.items, CAS: p.cas}
			p.items, p.cas = nil, nil
			p.multi = p.multi[1:]
			return r, true
		case strings.HasPrefix(line, "VALUE "):
			fields := strings.Fields(line)
			if len(fields) < 4 {
				p.buf.Next(nl + 2)
				p.multi = p.multi[1:]
				return Reply{Type: ReplyError, Raw: line}, true
			}
			size, err := strconv.Atoi(fields[3])
			if err != nil || size < 0 {
				p.buf.Next(nl + 2)
				p.multi = p.multi[1:]
				return Reply{Type: ReplyError, Raw: line}, true
			}
			need := nl + 2 + size + 2
			if len(raw) < need {
				return Reply{}, false
			}
			flags, _ := strconv.ParseUint(fields[2], 10, 32)
			it := Item{
				Key:   fields[1],
				Flags: uint32(flags),
				Value: append([]byte(nil), raw[nl+2:nl+2+size]...),
			}
			var casID uint64
			if len(fields) >= 5 {
				casID, _ = strconv.ParseUint(fields[4], 10, 64)
			}
			p.items = append(p.items, it)
			p.cas = append(p.cas, casID)
			p.buf.Next(need)
		case strings.HasPrefix(line, "STAT "):
			p.buf.Next(nl + 2)
			// stats lines accumulate as raw text in a values-style reply;
			// we fold them into Raw for simplicity.
			p.items = append(p.items, Item{Key: "STAT", Value: []byte(line)})
		default:
			// Error mid-retrieval.
			p.buf.Next(nl + 2)
			p.multi = p.multi[1:]
			p.items, p.cas = nil, nil
			return Reply{Type: ReplyError, Raw: line}, true
		}
	}
}

func singleLineReply(line string) Reply {
	switch {
	case line == "STORED":
		return Reply{Type: ReplyStored, Raw: line}
	case line == "NOT_STORED":
		return Reply{Type: ReplyNotStored, Raw: line}
	case line == "EXISTS":
		return Reply{Type: ReplyExists, Raw: line}
	case line == "NOT_FOUND":
		return Reply{Type: ReplyNotFound, Raw: line}
	case line == "DELETED":
		return Reply{Type: ReplyDeleted, Raw: line}
	case line == "TOUCHED":
		return Reply{Type: ReplyTouched, Raw: line}
	case line == "OK":
		return Reply{Type: ReplyOK, Raw: line}
	case strings.HasPrefix(line, "MSTORED "):
		n, err := strconv.Atoi(line[len("MSTORED "):])
		if err != nil || n < 0 {
			return Reply{Type: ReplyError, Raw: line}
		}
		return Reply{Type: ReplyMStored, N: n, Raw: line}
	case strings.HasPrefix(line, "VERSION"):
		return Reply{Type: ReplyVersion, Raw: line}
	default:
		return Reply{Type: ReplyError, Raw: line}
	}
}
