package memcache

import (
	"bytes"
	"fmt"
	"strconv"
	"strings"
)

// This file preserves the original allocation-heavy text-protocol parser
// verbatim (string conversion per line, strings.Fields, fmt responses,
// per-value copies). It is NOT used by the transports: it exists as the
// behavioral reference that the zero-copy Session in proto.go is pinned
// against by the differential tests and FuzzMemcacheSessionDifferential.
// When changing protocol behavior, change both and extend the tests.

// ReferenceSession is a transport-agnostic protocol endpoint: feed it raw bytes
// from one client connection and it produces response bytes against an
// Engine. Both the real-TCP server and the netsim server wrap one Session
// per connection.
type ReferenceSession struct {
	engine *Engine
	buf    bytes.Buffer
	// closed is set once "quit" is processed; the transport should then
	// close the connection.
	closed bool
}

// NewReferenceSession creates a reference protocol session bound to an
// engine.
func NewReferenceSession(engine *Engine) *ReferenceSession {
	return &ReferenceSession{engine: engine}
}

// Closed reports whether the peer sent "quit".
func (s *ReferenceSession) Closed() bool { return s.closed }

// Feed consumes input bytes and returns the response bytes produced by
// any commands completed by this input.
func (s *ReferenceSession) Feed(data []byte) []byte {
	s.buf.Write(data)
	var out bytes.Buffer
	for !s.closed {
		resp, ok := s.step()
		if !ok {
			break
		}
		out.Write(resp)
	}
	return out.Bytes()
}

// step attempts to parse and execute one command; ok=false means more
// input is needed.
func (s *ReferenceSession) step() (resp []byte, ok bool) {
	raw := s.buf.Bytes()
	nl := bytes.Index(raw, []byte("\r\n"))
	if nl < 0 {
		return nil, false
	}
	line := string(raw[:nl])
	fields := strings.Fields(line)
	if len(fields) == 0 {
		s.buf.Next(nl + 2)
		return []byte("ERROR\r\n"), true
	}
	cmd := fields[0]
	switch cmd {
	case "set", "add", "replace", "cas", "append", "prepend":
		return s.storageCommand(cmd, fields[1:], raw, nl)
	case "mset":
		return s.msetCommand(fields[1:], raw, nl)
	case "incr", "decr":
		s.buf.Next(nl + 2)
		if len(fields) < 3 {
			return []byte("CLIENT_ERROR bad command line\r\n"), true
		}
		delta, err := strconv.ParseUint(fields[2], 10, 63)
		if err != nil {
			return []byte("CLIENT_ERROR invalid numeric delta argument\r\n"), true
		}
		d := int64(delta)
		if cmd == "decr" {
			d = -d
		}
		v, ok := s.engine.IncrDecr(fields[1], d)
		if !ok {
			if _, present := s.engine.Get(fields[1]); !present {
				return []byte("NOT_FOUND\r\n"), true
			}
			return []byte("CLIENT_ERROR cannot increment or decrement non-numeric value\r\n"), true
		}
		return []byte(fmt.Sprintf("%d\r\n", v)), true
	case "get", "gets":
		s.buf.Next(nl + 2)
		return s.getCommand(cmd == "gets", fields[1:]), true
	case "delete":
		s.buf.Next(nl + 2)
		if len(fields) < 2 {
			return []byte("CLIENT_ERROR bad command line\r\n"), true
		}
		if s.engine.Delete(fields[1]) {
			return []byte("DELETED\r\n"), true
		}
		return []byte("NOT_FOUND\r\n"), true
	case "touch":
		s.buf.Next(nl + 2)
		if len(fields) < 3 {
			return []byte("CLIENT_ERROR bad command line\r\n"), true
		}
		exp, err := strconv.Atoi(fields[2])
		if err != nil {
			return []byte("CLIENT_ERROR bad command line\r\n"), true
		}
		if s.engine.Touch(fields[1], expiry(exp, s.engine.now())) {
			return []byte("TOUCHED\r\n"), true
		}
		return []byte("NOT_FOUND\r\n"), true
	case "flush_all":
		s.buf.Next(nl + 2)
		s.engine.FlushAll()
		return []byte("OK\r\n"), true
	case "stats":
		s.buf.Next(nl + 2)
		return s.statsCommand(), true
	case "version":
		s.buf.Next(nl + 2)
		return []byte("VERSION 1.6.0-repro\r\n"), true
	case "quit":
		s.buf.Next(nl + 2)
		s.closed = true
		return nil, true
	default:
		s.buf.Next(nl + 2)
		return []byte("ERROR\r\n"), true
	}
}

// storageCommand handles set/add/replace/cas:
//
//	<cmd> <key> <flags> <exptime> <bytes> [casid] [noreply]\r\n<data>\r\n
func (s *ReferenceSession) storageCommand(cmd string, args []string, raw []byte, nl int) ([]byte, bool) {
	minArgs := 4
	if cmd == "cas" {
		minArgs = 5
	}
	if len(args) < minArgs {
		s.buf.Next(nl + 2)
		return []byte("CLIENT_ERROR bad command line\r\n"), true
	}
	key := args[0]
	flags, err1 := strconv.ParseUint(args[1], 10, 32)
	exptime, err2 := strconv.Atoi(args[2])
	size, err3 := strconv.Atoi(args[3])
	if err1 != nil || err2 != nil || err3 != nil || size < 0 || size > 8<<20 || len(key) > 250 {
		s.buf.Next(nl + 2)
		return []byte("CLIENT_ERROR bad data chunk\r\n"), true
	}
	var casID uint64
	var err4 error
	noreply := false
	rest := args[4:]
	if cmd == "cas" {
		casID, err4 = strconv.ParseUint(args[4], 10, 64)
		if err4 != nil {
			s.buf.Next(nl + 2)
			return []byte("CLIENT_ERROR bad command line\r\n"), true
		}
		rest = args[5:]
	}
	if len(rest) > 0 && rest[len(rest)-1] == "noreply" {
		noreply = true
	}
	// Need the full data block plus trailing CRLF.
	need := nl + 2 + size + 2
	if len(raw) < need {
		return nil, false
	}
	data := append([]byte(nil), raw[nl+2:nl+2+size]...)
	s.buf.Next(need)
	it := Item{Key: key, Value: data, Flags: uint32(flags), Expires: expiry(exptime, s.engine.now())}
	var reply string
	switch cmd {
	case "set":
		s.engine.Set(it)
		reply = "STORED\r\n"
	case "add":
		if s.engine.Add(it) {
			reply = "STORED\r\n"
		} else {
			reply = "NOT_STORED\r\n"
		}
	case "replace":
		if s.engine.Replace(it) {
			reply = "STORED\r\n"
		} else {
			reply = "NOT_STORED\r\n"
		}
	case "cas":
		switch s.engine.CAS(it, casID) {
		case CASStored:
			reply = "STORED\r\n"
		case CASExists:
			reply = "EXISTS\r\n"
		case CASNotFound:
			reply = "NOT_FOUND\r\n"
		}
	case "append":
		if s.engine.Append(key, data) {
			reply = "STORED\r\n"
		} else {
			reply = "NOT_STORED\r\n"
		}
	case "prepend":
		if s.engine.Prepend(key, data) {
			reply = "STORED\r\n"
		} else {
			reply = "NOT_STORED\r\n"
		}
	}
	if noreply {
		return nil, true
	}
	return []byte(reply), true
}

// msetCommand handles the batched storage extension:
//
//	mset <n>\r\n
//	<key> <flags> <exptime> <bytes>\r\n<data>\r\n   (× n)
//
// answered by a single "MSTORED <n>\r\n" line once every record is
// stored. A replicated multi-key write therefore costs one round trip
// per server regardless of the record count; TCPStore's SetMulti is the
// intended client.
func (s *ReferenceSession) msetCommand(args []string, raw []byte, nl int) ([]byte, bool) {
	if len(args) < 1 {
		s.buf.Next(nl + 2)
		return []byte("CLIENT_ERROR bad command line\r\n"), true
	}
	n, err := strconv.Atoi(args[0])
	if err != nil || n <= 0 || n > MaxBatchRecords {
		s.buf.Next(nl + 2)
		return []byte("CLIENT_ERROR bad record count\r\n"), true
	}
	items := make([]Item, 0, n)
	pos := nl + 2
	for i := 0; i < n; i++ {
		rest := raw[pos:]
		rnl := bytes.Index(rest, []byte("\r\n"))
		if rnl < 0 {
			return nil, false // record header still arriving
		}
		rf := strings.Fields(string(rest[:rnl]))
		if len(rf) != 4 {
			s.buf.Next(pos + rnl + 2)
			return []byte("CLIENT_ERROR bad record line\r\n"), true
		}
		flags, err1 := strconv.ParseUint(rf[1], 10, 32)
		exptime, err2 := strconv.Atoi(rf[2])
		size, err3 := strconv.Atoi(rf[3])
		if err1 != nil || err2 != nil || err3 != nil || size < 0 || size > 8<<20 || len(rf[0]) > 250 {
			s.buf.Next(pos + rnl + 2)
			return []byte("CLIENT_ERROR bad data chunk\r\n"), true
		}
		need := pos + rnl + 2 + size + 2
		if len(raw) < need {
			return nil, false // data block still arriving
		}
		items = append(items, Item{
			Key:     rf[0],
			Value:   append([]byte(nil), rest[rnl+2:rnl+2+size]...),
			Flags:   uint32(flags),
			Expires: expiry(exptime, s.engine.now()),
		})
		pos = need
	}
	s.buf.Next(pos)
	for _, it := range items {
		s.engine.Set(it)
	}
	return []byte(fmt.Sprintf("MSTORED %d\r\n", len(items))), true
}

func (s *ReferenceSession) getCommand(withCAS bool, keys []string) []byte {
	var out bytes.Buffer
	for _, key := range keys {
		if withCAS {
			it, cas, ok := s.engine.GetWithCAS(key)
			if !ok {
				continue
			}
			fmt.Fprintf(&out, "VALUE %s %d %d %d\r\n", it.Key, it.Flags, len(it.Value), cas)
			out.Write(it.Value)
			out.WriteString("\r\n")
		} else {
			it, ok := s.engine.Get(key)
			if !ok {
				continue
			}
			fmt.Fprintf(&out, "VALUE %s %d %d\r\n", it.Key, it.Flags, len(it.Value))
			out.Write(it.Value)
			out.WriteString("\r\n")
		}
	}
	out.WriteString("END\r\n")
	return out.Bytes()
}

func (s *ReferenceSession) statsCommand() []byte {
	st := s.engine.Stats()
	var out bytes.Buffer
	fmt.Fprintf(&out, "STAT curr_items %d\r\n", st.CurrItems)
	fmt.Fprintf(&out, "STAT bytes %d\r\n", st.BytesUsed)
	fmt.Fprintf(&out, "STAT get_hits %d\r\n", st.GetHits)
	fmt.Fprintf(&out, "STAT get_misses %d\r\n", st.GetMisses)
	fmt.Fprintf(&out, "STAT cmd_set %d\r\n", st.Sets)
	fmt.Fprintf(&out, "STAT delete_hits %d\r\n", st.Deletes)
	fmt.Fprintf(&out, "STAT evictions %d\r\n", st.Evictions)
	fmt.Fprintf(&out, "STAT expired_unfetched %d\r\n", st.Expirations)
	out.WriteString("END\r\n")
	return out.Bytes()
}
