package memcache

import (
	"sync"
	"testing"
	"time"

	"repro/internal/netsim"
	"repro/internal/tcp"
)

// --- real-TCP transport ---

func startNetServer(t *testing.T) *NetServer {
	t.Helper()
	srv, err := ListenAndServe("127.0.0.1:0", NewEngine(0, nil))
	if err != nil {
		t.Fatalf("listen: %v", err)
	}
	t.Cleanup(srv.Close)
	return srv
}

func TestNetClientServerRoundTrip(t *testing.T) {
	srv := startNetServer(t)
	cl, err := DialNet(srv.Addr(), time.Second)
	if err != nil {
		t.Fatalf("dial: %v", err)
	}
	defer cl.Close()

	if err := cl.Set("key1", []byte("value-one"), 3, 0); err != nil {
		t.Fatalf("set: %v", err)
	}
	it, ok, err := cl.Get("key1")
	if err != nil || !ok {
		t.Fatalf("get: %v %v", ok, err)
	}
	if string(it.Value) != "value-one" || it.Flags != 3 {
		t.Fatalf("item: %+v", it)
	}
	if _, ok, _ := cl.Get("missing"); ok {
		t.Fatal("phantom hit")
	}
	found, err := cl.Delete("key1")
	if err != nil || !found {
		t.Fatalf("delete: %v %v", found, err)
	}
	if _, ok, _ := cl.Get("key1"); ok {
		t.Fatal("get after delete")
	}
	v, err := cl.Version()
	if err != nil || v == "" {
		t.Fatalf("version: %q %v", v, err)
	}
}

func TestNetClientLargeValue(t *testing.T) {
	srv := startNetServer(t)
	cl, err := DialNet(srv.Addr(), time.Second)
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()
	val := make([]byte, 256*1024)
	for i := range val {
		val[i] = byte(i)
	}
	if err := cl.Set("big", val, 0, 0); err != nil {
		t.Fatalf("set big: %v", err)
	}
	it, ok, err := cl.Get("big")
	if err != nil || !ok || len(it.Value) != len(val) {
		t.Fatalf("get big: ok=%v err=%v len=%d", ok, err, len(it.Value))
	}
	for i := range val {
		if it.Value[i] != val[i] {
			t.Fatalf("corruption at %d", i)
		}
	}
}

func TestNetServerConcurrentClients(t *testing.T) {
	srv := startNetServer(t)
	const G = 8
	var wg sync.WaitGroup
	errs := make(chan error, G)
	for g := 0; g < G; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			cl, err := DialNet(srv.Addr(), time.Second)
			if err != nil {
				errs <- err
				return
			}
			defer cl.Close()
			for i := 0; i < 50; i++ {
				key := string(rune('a'+g)) + "-key"
				if err := cl.Set(key, []byte{byte(i)}, 0, 0); err != nil {
					errs <- err
					return
				}
				if _, ok, err := cl.Get(key); err != nil || !ok {
					errs <- err
					return
				}
			}
		}(g)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		if err != nil {
			t.Fatal(err)
		}
	}
}

// --- netsim transport ---

func simSetup(seed int64) (*netsim.Network, *SimServer, *SimClient) {
	n := netsim.New(seed)
	sh := netsim.NewHost(n, netsim.IPv4(10, 0, 3, 1))
	ch := netsim.NewHost(n, netsim.IPv4(10, 0, 1, 1))
	srv := NewSimServer(sh, DefaultPort, DefaultSimServerConfig())
	cl := DialSim(ch, netsim.HostPort{IP: sh.IP(), Port: DefaultPort}, tcp.DefaultConfig(), nil)
	n.RunUntilIdle(1000) // complete the handshake
	return n, srv, cl
}

func TestSimClientSetGetDelete(t *testing.T) {
	n, srv, cl := simSetup(1)
	var setR, getR, delR, missR *SimResult
	cl.Set([]byte("flow:1"), []byte("state-bytes"), 0, 60, func(r SimResult) { setR = &r })
	cl.Get([]byte("flow:1"), func(r SimResult) { getR = &r })
	cl.Delete([]byte("flow:1"), func(r SimResult) { delR = &r })
	cl.Get([]byte("flow:1"), func(r SimResult) { missR = &r })
	n.RunUntilIdle(10000)
	if setR == nil || setR.Err != nil || setR.Reply.Type != ReplyStored {
		t.Fatalf("set: %+v", setR)
	}
	if getR == nil || len(getR.Reply.Items) != 1 || string(getR.Reply.Items[0].Value) != "state-bytes" {
		t.Fatalf("get: %+v", getR)
	}
	if delR == nil || delR.Reply.Type != ReplyDeleted {
		t.Fatalf("delete: %+v", delR)
	}
	if missR == nil || len(missR.Reply.Items) != 0 {
		t.Fatalf("miss: %+v", missR)
	}
	if srv.Ops < 4 {
		t.Fatalf("server ops = %d", srv.Ops)
	}
}

func TestSimOpLatencyIsSubMillisecond(t *testing.T) {
	// §7.1: at modest load a TCPStore op is well under 1ms (median 0.75ms
	// including the paper's Azure network; our intra-DC RTT is 0.5ms).
	n, _, cl := simSetup(2)
	start := n.Now()
	var finished time.Duration
	cl.Set([]byte("k"), []byte("v"), 0, 0, func(r SimResult) { finished = n.Now() })
	n.RunUntilIdle(10000)
	lat := finished - start
	if lat <= 0 || lat > time.Millisecond {
		t.Fatalf("op latency = %v, want (0, 1ms]", lat)
	}
}

func TestSimServerQueueingInflatesLatency(t *testing.T) {
	n, _, cl := simSetup(3)
	// Saturate: issue a large burst at one instant; later ops must see
	// queueing delay larger than earlier ops.
	var first, last time.Duration
	const N = 2000
	done := 0
	for i := 0; i < N; i++ {
		i := i
		cl.Set([]byte("k"), []byte("v"), 0, 0, func(r SimResult) {
			done++
			if i == 0 {
				first = n.Now()
			}
			if i == N-1 {
				last = n.Now()
			}
		})
	}
	n.RunUntilIdle(5_000_000)
	if done != N {
		t.Fatalf("done = %d", done)
	}
	if last <= first {
		t.Fatalf("no queueing: first=%v last=%v", first, last)
	}
}

func TestSimClientFailsPendingOnServerDeath(t *testing.T) {
	n, srv, cl := simSetup(4)
	srv.Host().Detach()
	downCalled := false
	cl2 := cl
	_ = cl2
	var res *SimResult
	cl.Set([]byte("k"), []byte("v"), 0, 0, func(r SimResult) { res = &r })
	// The client's retransmissions eventually exhaust and fail the conn.
	n.RunFor(5 * time.Minute)
	if res == nil {
		t.Fatal("pending op never resolved")
	}
	if res.Err != ErrSimConnDown {
		t.Fatalf("err = %v", res.Err)
	}
	_ = downCalled
}

func TestSimClientOnDownFires(t *testing.T) {
	n := netsim.New(5)
	sh := netsim.NewHost(n, netsim.IPv4(10, 0, 3, 1))
	ch := netsim.NewHost(n, netsim.IPv4(10, 0, 1, 1))
	NewSimServer(sh, DefaultPort, DefaultSimServerConfig())
	down := false
	cl := DialSim(ch, netsim.HostPort{IP: sh.IP(), Port: DefaultPort}, tcp.DefaultConfig(), func() { down = true })
	n.RunUntilIdle(1000)
	sh.Detach()
	cl.Set([]byte("k"), []byte("v"), 0, 0, func(r SimResult) {})
	n.RunFor(10 * time.Minute)
	if !down {
		t.Fatal("onDown never fired")
	}
	if cl.Up() {
		t.Fatal("client still reports up")
	}
}

func TestCountCommands(t *testing.T) {
	cases := []struct {
		in   string
		want int
	}{
		{"get k\r\n", 1},
		{"set k 0 0 5\r\nhello\r\n", 1},
		{"get a\r\nget b\r\ndelete c\r\n", 3},
		{"set k 0 0 7\r\nget x\r\n\r\n", 2}, // "get x" inside a data block: miscounted by design, but values in TCPStore have no CRLF
		{"", 0},
	}
	for _, c := range cases[:3] {
		if got := countCommands([]byte(c.in)); got != c.want {
			t.Errorf("countCommands(%q) = %d, want %d", c.in, got, c.want)
		}
	}
}
