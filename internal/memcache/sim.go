package memcache

import (
	"errors"
	"strconv"
	"time"

	"repro/internal/metrics"
	"repro/internal/netsim"
	"repro/internal/tcp"
)

// DefaultPort is the memcached port.
const DefaultPort = 11211

// SimServerConfig tunes a simulated memcached server.
type SimServerConfig struct {
	// ServiceTime is the per-operation processing time; operations queue
	// behind each other, so offered load beyond 1/ServiceTime saturates
	// the server and inflates latency, as in Figure 10.
	ServiceTime time.Duration
	// CPUPerOp is the virtual CPU cost charged per operation.
	CPUPerOp time.Duration
	// Cores is the VM's core count (testbed: 8).
	Cores int
	TCP   tcp.Config
}

// DefaultSimServerConfig is calibrated so one server serves ~80K ops/s at
// ~90% CPU, matching §7.1's "a single Memcached server can handle 80K
// client req/sec (at 90% CPU utilization)".
func DefaultSimServerConfig() SimServerConfig {
	return SimServerConfig{
		ServiceTime: 11 * time.Microsecond,
		CPUPerOp:    90 * time.Microsecond, // 8 cores × 90% / 80K ops/s
		Cores:       8,
		TCP:         tcp.DefaultConfig(),
	}
}

// SimServer runs the memcached engine inside the netsim event loop,
// reachable over simulated TCP.
type SimServer struct {
	Engine *Engine
	CPU    *metrics.CPUMeter
	host   *netsim.Host
	cfg    SimServerConfig
	lis    *tcp.Listener

	// queueFree is the virtual time the op-processing queue drains.
	queueFree time.Duration
	// Ops counts operations processed.
	Ops uint64
	// freeReplies pools schedReply objects across data events.
	freeReplies []*schedReply
}

// NewSimServer starts a simulated memcached server on host:port.
func NewSimServer(host *netsim.Host, port uint16, cfg SimServerConfig) *SimServer {
	s := &SimServer{
		Engine: NewEngine(0, host.Network().Now),
		CPU:    metrics.NewCPUMeter(cfg.Cores),
		host:   host,
		cfg:    cfg,
	}
	s.lis = tcp.Listen(host, port, s.accept, cfg.TCP)
	return s
}

// Host returns the server's host.
func (s *SimServer) Host() *netsim.Host { return s.host }

// Close stops accepting connections.
func (s *SimServer) Close() { s.lis.Close() }

// schedReply is a pooled pending-response: the reply bytes for one input
// chunk, scheduled to emit once the server's op queue drains. fire is
// pre-bound at allocation so scheduling a reply does not allocate a
// closure per data event.
type schedReply struct {
	srv    *SimServer
	conn   *tcp.Conn
	sess   *Session
	resp   []byte
	closed bool
	fire   func()
}

func (s *SimServer) takeReply() *schedReply {
	if n := len(s.freeReplies); n > 0 {
		r := s.freeReplies[n-1]
		s.freeReplies = s.freeReplies[:n-1]
		return r
	}
	r := &schedReply{srv: s}
	r.fire = func() {
		if len(r.resp) > 0 {
			r.conn.Write(r.resp) // Write copies; the buffer can go back
			r.sess.Release(r.resp)
		}
		if r.closed {
			r.conn.Close()
		}
		r.conn, r.sess, r.resp = nil, nil, nil
		if len(r.srv.freeReplies) < 32 {
			r.srv.freeReplies = append(r.srv.freeReplies, r)
		}
	}
	return r
}

func (s *SimServer) accept(c *tcp.Conn) tcp.Callbacks {
	sess := NewSession(s.Engine)
	return tcp.Callbacks{
		OnData: func(c *tcp.Conn, d []byte) {
			// Model queueing: the reply for this input is emitted after the
			// server works through its queue. We count each command in the
			// input as one op; Session gives us the batch's responses.
			net := s.host.Network()
			now := net.Now()
			resp := sess.Feed(d)
			if len(resp) == 0 && !sess.Closed() {
				return
			}
			ops := countCommands(d)
			if ops == 0 {
				ops = 1
			}
			s.Ops += uint64(ops)
			s.CPU.Charge(now, time.Duration(ops)*s.cfg.CPUPerOp)
			work := time.Duration(ops) * s.cfg.ServiceTime
			if s.queueFree < now {
				s.queueFree = now
			}
			s.queueFree += work
			delay := s.queueFree - now
			r := s.takeReply()
			r.conn, r.sess, r.resp, r.closed = c, sess, resp, sess.Closed()
			net.Schedule(delay, r.fire)
		},
		OnPeerClose: func(c *tcp.Conn) { c.Close() },
	}
}

// countCommands estimates the number of protocol commands in a chunk by
// counting CRLF-terminated command lines that start with a verb. Data
// blocks can contain CRLFs, so this is approximate for binary values, but
// TCPStore values are small fixed-format records without CRLFs.
func countCommands(d []byte) int {
	n := 0
	start := 0
	for i := 0; i+1 < len(d); i++ {
		if d[i] == '\r' && d[i+1] == '\n' {
			line := d[start:i]
			if isCommandLine(line) {
				// A batched mset stores N records: the batch saves round
				// trips, not server work, so it charges N ops.
				if cnt, ok := msetCount(line); ok {
					n += cnt
				} else {
					n++
				}
			}
			start = i + 2
		}
	}
	return n
}

// msetCount parses the record count of an "mset <n>" command line. The
// digits are parsed in place — this runs per command line on the server's
// data path, where a string conversion would allocate.
func msetCount(line []byte) (int, bool) {
	const p = "mset "
	if len(line) <= len(p) || string(line[:len(p)]) != p {
		return 0, false
	}
	cnt := 0
	for _, c := range line[len(p):] {
		if c < '0' || c > '9' || cnt > 1<<30 {
			return 1, true // malformed count still costs one parse
		}
		cnt = cnt*10 + int(c-'0')
	}
	if cnt <= 0 {
		return 1, true
	}
	return cnt, true
}

func isCommandLine(line []byte) bool {
	verbs := []string{"get", "gets", "set", "mset", "add", "replace", "cas", "append", "prepend",
		"incr", "decr", "delete", "touch", "stats", "version", "flush_all", "quit"}
	for _, v := range verbs {
		if len(line) >= len(v) && string(line[:len(v)]) == v &&
			(len(line) == len(v) || line[len(v)] == ' ') {
			return true
		}
	}
	return false
}

// ErrSimConnDown is delivered to pending callbacks when the connection to
// a simulated server fails.
var ErrSimConnDown = errors.New("memcache: connection to server lost")

// SimResult is the outcome of an asynchronous simulated operation.
type SimResult struct {
	Reply Reply
	Err   error
}

// KV is one key/value pair for SimClient.SetMulti. Both slices may alias
// caller scratch: the client encodes them into its own buffer before
// returning, so neither is retained after the call.
type KV struct {
	Key   []byte
	Value []byte
}

// SimClient is an asynchronous memcached client over one long-lived
// simulated TCP connection. Operations pipeline; replies dispatch FIFO.
//
// Key parameters are []byte and are not retained: commands are encoded
// into the client's scratch buffer synchronously, so callers can pass
// slices of their own reused buffers.
type SimClient struct {
	host   *netsim.Host
	server netsim.HostPort
	conn   *tcp.Conn
	parser *ReplyParser
	// pending is a ring of reply callbacks: pending[phead:] are
	// outstanding, and the consumed prefix is reclaimed when it drains so
	// steady-state ping-pong traffic never reallocates.
	pending []func(SimResult)
	phead   int
	up      bool
	onDown  func()
	// onReply is the reply dispatcher, bound once so FeedFunc calls do
	// not allocate a closure per data event.
	onReply func(Reply)
	// scratch is the reused command-encoding buffer; tcp.Conn.Write
	// copies the bytes into its send buffer, so reuse across ops is safe.
	scratch []byte
}

// DialSim opens a client connection from host to server. onDown, if
// non-nil, fires when the connection is lost (the TCPStore client uses it
// to fail over).
func DialSim(host *netsim.Host, server netsim.HostPort, cfg tcp.Config, onDown func()) *SimClient {
	c := &SimClient{host: host, server: server, parser: &ReplyParser{}, onDown: onDown}
	c.onReply = func(r Reply) {
		if c.phead == len(c.pending) {
			return
		}
		cb := c.pending[c.phead]
		c.pending[c.phead] = nil
		c.phead++
		if c.phead == len(c.pending) {
			c.pending = c.pending[:0]
			c.phead = 0
		}
		cb(SimResult{Reply: r})
	}
	c.conn = tcp.Dial(host, server, tcp.Callbacks{
		OnEstablished: func(*tcp.Conn) { c.up = true },
		OnData: func(_ *tcp.Conn, d []byte) {
			c.parser.FeedFunc(d, c.onReply)
		},
		OnFail:      func(_ *tcp.Conn, err error) { c.fail() },
		OnPeerClose: func(cc *tcp.Conn) { cc.Close(); c.fail() },
	}, cfg)
	return c
}

// Up reports whether the connection is (still) usable.
func (c *SimClient) Up() bool { return c.conn.State() != tcp.StateClosed }

func (c *SimClient) fail() {
	pend := c.pending[c.phead:]
	c.pending = nil
	c.phead = 0
	for _, cb := range pend {
		cb(SimResult{Err: ErrSimConnDown})
	}
	if c.onDown != nil {
		c.onDown()
	}
}

// Close tears the connection down.
func (c *SimClient) Close() { c.conn.Abort() }

func (c *SimClient) send(cmd []byte, multiLine bool, cb func(SimResult)) {
	if c.conn.State() == tcp.StateClosed {
		cb(SimResult{Err: ErrSimConnDown})
		return
	}
	c.parser.Expect(multiLine)
	if c.phead == len(c.pending) {
		c.pending = c.pending[:0]
		c.phead = 0
	}
	c.pending = append(c.pending, cb)
	c.conn.Write(cmd)
}

// Set stores value under key, invoking cb with the outcome.
func (c *SimClient) Set(key, value []byte, flags uint32, exptime int, cb func(SimResult)) {
	c.scratch = appendStorageCmd(c.scratch[:0], "set", key, value, flags, exptime)
	c.send(c.scratch, false, cb)
}

// SetMulti stores all pairs in one pipelined mset command: a single
// write and a single MSTORED reply regardless of the record count, so a
// multi-record state write costs one round trip on the wire.
func (c *SimClient) SetMulti(kvs []KV, exptime int, cb func(SimResult)) {
	c.scratch = appendMSetKVCmd(c.scratch[:0], kvs, exptime)
	c.send(c.scratch, false, cb)
}

// Get fetches key; the callback's Reply.Items is empty on a miss.
func (c *SimClient) Get(key []byte, cb func(SimResult)) {
	c.scratch = append(append(append(c.scratch[:0], "get "...), key...), '\r', '\n')
	c.send(c.scratch, true, cb)
}

// Delete removes key.
func (c *SimClient) Delete(key []byte, cb func(SimResult)) {
	c.scratch = append(append(append(c.scratch[:0], "delete "...), key...), '\r', '\n')
	c.send(c.scratch, false, cb)
}

// appendMSetKVCmd encodes a batched mset from KV pairs into dst (the
// caller's reused scratch buffer; see SimClient.scratch).
func appendMSetKVCmd(dst []byte, kvs []KV, exptime int) []byte {
	dst = append(dst, "mset "...)
	dst = strconv.AppendInt(dst, int64(len(kvs)), 10)
	dst = append(dst, '\r', '\n')
	for i := range kvs {
		dst = appendRecord(dst, kvs[i].Key, kvs[i].Value, 0, exptime)
	}
	return dst
}

// appendRecord encodes one "<key> <flags> <exptime> <bytes>\r\n<data>\r\n"
// mset record into dst.
func appendRecord(dst, key, value []byte, flags uint32, exptime int) []byte {
	dst = append(dst, key...)
	dst = append(dst, ' ')
	dst = strconv.AppendUint(dst, uint64(flags), 10)
	dst = append(dst, ' ')
	dst = strconv.AppendInt(dst, int64(exptime), 10)
	dst = append(dst, ' ')
	dst = strconv.AppendInt(dst, int64(len(value)), 10)
	dst = append(dst, '\r', '\n')
	dst = append(dst, value...)
	dst = append(dst, '\r', '\n')
	return dst
}

// appendMSetCmd encodes a batched mset from Items (the NetClient form).
func appendMSetCmd(dst []byte, items []Item, exptime int) []byte {
	dst = append(dst, "mset "...)
	dst = strconv.AppendInt(dst, int64(len(items)), 10)
	dst = append(dst, '\r', '\n')
	for i := range items {
		it := &items[i]
		dst = appendRecord(dst, []byte(it.Key), it.Value, it.Flags, exptime)
	}
	return dst
}

func appendStorageCmd(dst []byte, verb string, key, value []byte, flags uint32, exptime int) []byte {
	dst = append(dst, verb...)
	dst = append(dst, ' ')
	dst = append(dst, key...)
	dst = append(dst, ' ')
	dst = strconv.AppendUint(dst, uint64(flags), 10)
	dst = append(dst, ' ')
	dst = strconv.AppendInt(dst, int64(exptime), 10)
	dst = append(dst, ' ')
	dst = strconv.AppendInt(dst, int64(len(value)), 10)
	dst = append(dst, '\r', '\n')
	dst = append(dst, value...)
	dst = append(dst, '\r', '\n')
	return dst
}
