package memcache

import (
	"testing"
	"time"
)

// TestSessionStepAllocFree locks in the zero-copy parser's alloc budget:
// once the session's buffers are warm, parsing and answering the
// steady-state TCPStore workload (mset + set + get) allocates nothing.
func TestSessionStepAllocFree(t *testing.T) {
	e := NewEngine(0, func() time.Duration { return 0 })
	s := NewSession(e)
	in := sessionWorkload()
	for i := 0; i < 16; i++ {
		s.Release(s.Feed(in)) // warm session buffers and engine nodes
	}
	allocs := testing.AllocsPerRun(200, func() {
		resp := s.Feed(in)
		if len(resp) == 0 {
			t.Fatal("no response")
		}
		s.Release(resp)
	})
	if allocs != 0 {
		t.Fatalf("session step allocates %.1f objects/op, want 0", allocs)
	}
}

// TestReplyParserAllocFree pins the client side: single-line storage
// replies (the write steady state) parse without allocating.
func TestReplyParserAllocFree(t *testing.T) {
	p := &ReplyParser{}
	data := []byte("STORED\r\nMSTORED 2\r\n")
	sink := func(Reply) {}
	for i := 0; i < 16; i++ {
		p.Expect(false)
		p.Expect(false)
		p.FeedFunc(data, sink)
	}
	allocs := testing.AllocsPerRun(200, func() {
		p.Expect(false)
		p.Expect(false)
		p.FeedFunc(data, sink)
	})
	if allocs != 0 {
		t.Fatalf("reply parse allocates %.1f objects/op, want 0", allocs)
	}
}
