package memcache

import (
	"bufio"
	"errors"
	"fmt"
	"net"
	"sync"
	"time"
)

// NetServer serves the memcached protocol on a real TCP listener, one
// goroutine per connection, against a shared Engine. It backs the
// cmd/memcached binary and the real-socket benchmarks.
type NetServer struct {
	Engine    *Engine
	lis       net.Listener
	mu        sync.Mutex
	conns     map[net.Conn]bool
	done      chan struct{}
	closeOnce sync.Once
}

// ListenAndServe starts a server on addr (e.g. "127.0.0.1:11211"). It
// returns once the listener is bound; serving continues in background
// goroutines until Close.
func ListenAndServe(addr string, engine *Engine) (*NetServer, error) {
	lis, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, err
	}
	s := &NetServer{
		Engine: engine,
		lis:    lis,
		conns:  make(map[net.Conn]bool),
		done:   make(chan struct{}),
	}
	go s.acceptLoop()
	return s, nil
}

// Addr returns the bound address.
func (s *NetServer) Addr() string { return s.lis.Addr().String() }

// Close stops the listener and closes every connection. Safe to call
// more than once.
func (s *NetServer) Close() {
	s.closeOnce.Do(func() {
		close(s.done)
		s.lis.Close()
		s.mu.Lock()
		for c := range s.conns {
			c.Close()
		}
		s.mu.Unlock()
	})
}

func (s *NetServer) acceptLoop() {
	for {
		conn, err := s.lis.Accept()
		if err != nil {
			select {
			case <-s.done:
				return
			default:
				continue
			}
		}
		s.mu.Lock()
		s.conns[conn] = true
		s.mu.Unlock()
		go s.serve(conn)
	}
}

func (s *NetServer) serve(conn net.Conn) {
	defer func() {
		conn.Close()
		s.mu.Lock()
		delete(s.conns, conn)
		s.mu.Unlock()
	}()
	sess := NewSession(s.Engine)
	buf := make([]byte, 64*1024)
	w := bufio.NewWriter(conn)
	for {
		n, err := conn.Read(buf)
		if n > 0 {
			resp := sess.Feed(buf[:n])
			if len(resp) > 0 {
				_, werr := w.Write(resp)
				if werr == nil {
					werr = w.Flush()
				}
				sess.Release(resp)
				if werr != nil {
					return
				}
			}
			if sess.Closed() {
				return
			}
		}
		if err != nil {
			return
		}
	}
}

// NetClient is a synchronous client over one long-lived real TCP
// connection (long-lived connections are one of TCPStore's latency
// optimizations, §4.3).
type NetClient struct {
	mu   sync.Mutex
	conn net.Conn
	r    *bufio.Reader
}

// ErrClientClosed is returned after Close.
var ErrClientClosed = errors.New("memcache: client closed")

// DialNet connects to a memcached server.
func DialNet(addr string, timeout time.Duration) (*NetClient, error) {
	conn, err := net.DialTimeout("tcp", addr, timeout)
	if err != nil {
		return nil, err
	}
	return &NetClient{conn: conn, r: bufio.NewReader(conn)}, nil
}

// Close tears down the connection.
func (c *NetClient) Close() {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.conn != nil {
		c.conn.Close()
		c.conn = nil
	}
}

// Set stores value under key.
func (c *NetClient) Set(key string, value []byte, flags uint32, exptime int) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.conn == nil {
		return ErrClientClosed
	}
	fmt.Fprintf(c.conn, "set %s %d %d %d\r\n", key, flags, exptime, len(value))
	c.conn.Write(value)
	c.conn.Write([]byte("\r\n"))
	line, err := c.readLine()
	if err != nil {
		return err
	}
	if line != "STORED" {
		return fmt.Errorf("memcache: set %s: %s", key, line)
	}
	return nil
}

// SetMulti stores all items in one batched mset round trip and returns
// the server's stored-record count.
func (c *NetClient) SetMulti(items []Item, exptime int) (int, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.conn == nil {
		return 0, ErrClientClosed
	}
	cmd := appendMSetCmd(nil, items, exptime)
	if _, err := c.conn.Write(cmd); err != nil {
		return 0, err
	}
	line, err := c.readLine()
	if err != nil {
		return 0, err
	}
	var n int
	if _, serr := fmt.Sscanf(line, "MSTORED %d", &n); serr != nil {
		return 0, fmt.Errorf("memcache: mset: %s", line)
	}
	return n, nil
}

// Get fetches key; ok=false means a miss.
func (c *NetClient) Get(key string) (Item, bool, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.conn == nil {
		return Item{}, false, ErrClientClosed
	}
	fmt.Fprintf(c.conn, "get %s\r\n", key)
	parser := &ReplyParser{}
	parser.Expect(true)
	buf := make([]byte, 16*1024)
	for {
		n, err := c.r.Read(buf)
		if n > 0 {
			replies := parser.Feed(buf[:n])
			if len(replies) > 0 {
				r := replies[0]
				if r.Type == ReplyError {
					return Item{}, false, fmt.Errorf("memcache: get %s: %s", key, r.Raw)
				}
				if len(r.Items) == 0 {
					return Item{}, false, nil
				}
				return r.Items[0], true, nil
			}
		}
		if err != nil {
			return Item{}, false, err
		}
	}
}

// Delete removes key; ok reports whether it existed.
func (c *NetClient) Delete(key string) (bool, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.conn == nil {
		return false, ErrClientClosed
	}
	fmt.Fprintf(c.conn, "delete %s\r\n", key)
	line, err := c.readLine()
	if err != nil {
		return false, err
	}
	switch line {
	case "DELETED":
		return true, nil
	case "NOT_FOUND":
		return false, nil
	default:
		return false, fmt.Errorf("memcache: delete %s: %s", key, line)
	}
}

// Version returns the server version string.
func (c *NetClient) Version() (string, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.conn == nil {
		return "", ErrClientClosed
	}
	fmt.Fprintf(c.conn, "version\r\n")
	return c.readLine()
}

func (c *NetClient) readLine() (string, error) {
	line, err := c.r.ReadString('\n')
	if err != nil {
		return "", err
	}
	for len(line) > 0 && (line[len(line)-1] == '\n' || line[len(line)-1] == '\r') {
		line = line[:len(line)-1]
	}
	return line, nil
}
