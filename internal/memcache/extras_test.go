package memcache

import (
	"strings"
	"testing"
	"testing/quick"
)

func TestEngineAppendPrepend(t *testing.T) {
	e := NewEngine(0, nil)
	e.Set(Item{Key: "k", Value: []byte("mid")})
	if !e.Append("k", []byte("-end")) {
		t.Fatal("append to existing")
	}
	if !e.Prepend("k", []byte("start-")) {
		t.Fatal("prepend to existing")
	}
	it, _ := e.Get("k")
	if string(it.Value) != "start-mid-end" {
		t.Fatalf("value = %q", it.Value)
	}
	if e.Append("absent", []byte("x")) || e.Prepend("absent", []byte("x")) {
		t.Fatal("append/prepend to absent key should fail")
	}
}

func TestEngineIncrDecr(t *testing.T) {
	e := NewEngine(0, nil)
	e.Set(Item{Key: "n", Value: []byte("10")})
	if v, ok := e.IncrDecr("n", 5); !ok || v != 15 {
		t.Fatalf("incr: %d %v", v, ok)
	}
	if v, ok := e.IncrDecr("n", -7); !ok || v != 8 {
		t.Fatalf("decr: %d %v", v, ok)
	}
	// Decrement clamps at zero (memcached semantics).
	if v, ok := e.IncrDecr("n", -100); !ok || v != 0 {
		t.Fatalf("clamped decr: %d %v", v, ok)
	}
	// Non-numeric and absent keys fail.
	e.Set(Item{Key: "s", Value: []byte("abc")})
	if _, ok := e.IncrDecr("s", 1); ok {
		t.Fatal("incr on non-numeric")
	}
	if _, ok := e.IncrDecr("absent", 1); ok {
		t.Fatal("incr on absent")
	}
}

func TestParseFormatUintRoundTrip(t *testing.T) {
	f := func(v uint64) bool {
		got, bad := parseUint([]byte(formatUint(v)))
		return !bad && got == v
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
	if _, bad := parseUint([]byte("12a3")); !bad {
		t.Fatal("parseUint accepted garbage")
	}
	if _, bad := parseUint([]byte("")); !bad {
		t.Fatal("parseUint accepted empty")
	}
}

func TestSessionAppendPrepend(t *testing.T) {
	s := NewSession(NewEngine(0, nil))
	feed(t, s, "set k 0 0 3\r\nmid\r\n")
	if out := feed(t, s, "append k 0 0 4\r\n-end\r\n"); out != "STORED\r\n" {
		t.Fatalf("append: %q", out)
	}
	if out := feed(t, s, "prepend k 0 0 6\r\nstart-\r\n"); out != "STORED\r\n" {
		t.Fatalf("prepend: %q", out)
	}
	out := feed(t, s, "get k\r\n")
	if !strings.Contains(out, "start-mid-end") {
		t.Fatalf("get: %q", out)
	}
	if out := feed(t, s, "append ghost 0 0 1\r\nx\r\n"); out != "NOT_STORED\r\n" {
		t.Fatalf("append ghost: %q", out)
	}
}

func TestSessionIncrDecr(t *testing.T) {
	s := NewSession(NewEngine(0, nil))
	feed(t, s, "set n 0 0 2\r\n10\r\n")
	if out := feed(t, s, "incr n 5\r\n"); out != "15\r\n" {
		t.Fatalf("incr: %q", out)
	}
	if out := feed(t, s, "decr n 20\r\n"); out != "0\r\n" {
		t.Fatalf("decr clamp: %q", out)
	}
	if out := feed(t, s, "incr ghost 1\r\n"); out != "NOT_FOUND\r\n" {
		t.Fatalf("incr ghost: %q", out)
	}
	feed(t, s, "set s 0 0 3\r\nabc\r\n")
	if out := feed(t, s, "incr s 1\r\n"); !strings.HasPrefix(out, "CLIENT_ERROR") {
		t.Fatalf("incr non-numeric: %q", out)
	}
	if out := feed(t, s, "incr n notanumber\r\n"); !strings.HasPrefix(out, "CLIENT_ERROR") {
		t.Fatalf("bad delta: %q", out)
	}
	if out := feed(t, s, "incr n\r\n"); !strings.HasPrefix(out, "CLIENT_ERROR") {
		t.Fatalf("missing delta: %q", out)
	}
}
