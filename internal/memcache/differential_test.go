package memcache

import (
	"bytes"
	"fmt"
	"strings"
	"testing"
	"time"
)

// This file pins the zero-copy Session in proto.go against the preserved
// pre-optimization parser in proto_reference.go: the same byte stream,
// fed through both under identical clocks, must produce byte-identical
// responses AND byte-identical engine state (items, values, CAS ids, LRU
// order, accounting, stats). FuzzMemcacheSessionDifferential extends the
// fixed cases to arbitrary inputs and arbitrary feed chunking.

// engineFingerprint renders every piece of engine state the protocol can
// observe or influence, in LRU order, for differential comparison.
func engineFingerprint(e *Engine) string {
	e.mu.Lock()
	defer e.mu.Unlock()
	var b strings.Builder
	for n := e.head; n != nil; n = n.next {
		fmt.Fprintf(&b, "%q f=%d exp=%d cas=%d v=%q\n",
			n.key, n.flags, n.expires, n.casID, n.value)
	}
	fmt.Fprintf(&b, "used=%d nextCas=%d stats=%+v\n", e.used, e.nextCas, e.stats)
	return b.String()
}

// feedBoth runs one byte stream through both parsers — the new Session in
// the given chunking, the reference in a single feed (the reference
// buffers identically regardless of chunking) — and returns the two
// concatenated response streams and engine fingerprints.
func feedBoth(input []byte, chunks []int) (newResp, refResp []byte, newFP, refFP string) {
	clock := func() time.Duration { return 0 }

	eNew := NewEngine(0, clock)
	sNew := NewSession(eNew)
	var outNew bytes.Buffer
	rest := input
	for _, c := range chunks {
		if c > len(rest) {
			c = len(rest)
		}
		resp := sNew.Feed(rest[:c])
		outNew.Write(resp)
		sNew.Release(resp)
		rest = rest[c:]
	}
	if len(rest) > 0 {
		resp := sNew.Feed(rest)
		outNew.Write(resp)
		sNew.Release(resp)
	}

	eRef := NewEngine(0, clock)
	sRef := NewReferenceSession(eRef)
	refOut := sRef.Feed(input)

	return outNew.Bytes(), refOut, engineFingerprint(eNew), engineFingerprint(eRef)
}

func checkDifferential(t *testing.T, input []byte, chunks []int) {
	t.Helper()
	newResp, refResp, newFP, refFP := feedBoth(input, chunks)
	if !bytes.Equal(newResp, refResp) {
		t.Fatalf("responses diverge for %q (chunks %v):\n new: %q\n ref: %q",
			input, chunks, newResp, refResp)
	}
	if newFP != refFP {
		t.Fatalf("engine state diverges for %q (chunks %v):\n new:\n%s ref:\n%s",
			input, chunks, newFP, refFP)
	}
}

// differentialCases covers every verb, the error paths whose exact bytes
// and consumption semantics matter, and the protocol oddities the
// reference parser exhibits (strings.Fields splitting, data blocks
// re-parsed after storage errors, mset all-or-nothing).
func differentialCases() [][]byte {
	return [][]byte{
		[]byte("set k 1 0 3\r\nabc\r\nget k\r\n"),
		[]byte("set k 0 0 3\r\nabc\r\ngets k\r\ncas k 0 0 3 1\r\nxyz\r\ncas k 0 0 3 1\r\nzzz\r\n"),
		[]byte("add k 0 0 1\r\na\r\nadd k 0 0 1\r\nb\r\nreplace k 0 0 1\r\nc\r\nreplace m 0 0 1\r\nd\r\n"),
		[]byte("set k 0 0 1\r\na\r\nappend k 0 0 2\r\nbc\r\nprepend k 0 0 1\r\nz\r\nget k\r\n"),
		[]byte("append missing 0 0 1\r\nx\r\n"),
		[]byte("set n 0 0 2\r\n10\r\nincr n 5\r\ndecr n 100\r\nincr n abc\r\nincr missing 1\r\n"),
		[]byte("set n 0 0 3\r\nabc\r\nincr n 1\r\n"),
		[]byte("delete k\r\nset k 0 0 1\r\na\r\ndelete k\r\nget k\r\n"),
		[]byte("touch k 100\r\nset k 0 0 1\r\na\r\ntouch k 100\r\n"),
		[]byte("mset 2\r\na 1 0 1\r\nx\r\nb 2 0 1\r\ny\r\nget a b\r\n"),
		[]byte("mset 0\r\nmset -1\r\nmset abc\r\n"),
		[]byte("mset 2\r\na 1 0 1\r\nx\r\nb 2 0 bad\r\ny\r\n"),
		[]byte("mset 9999\r\na 1 0 1\r\nx\r\n"),
		[]byte("set k 0 0 bad\r\nget k\r\n"),
		[]byte("set k 0 0 -1\r\n"),
		[]byte("set toolongkey" + strings.Repeat("k", 250) + " 0 0 1\r\na\r\n"),
		[]byte("set k 0 0\r\n"),
		[]byte("cas k 0 0 1 notanumber\r\na\r\n"),
		[]byte("bogus\r\n\r\n  \r\nget\r\n"),
		[]byte("set k 0 0 1 noreply\r\na\r\nget k\r\n"),
		[]byte("stats\r\nversion\r\nflush_all\r\nget k\r\n"),
		[]byte("set a 0 0 1\r\nx\r\nset b 0 0 1\r\ny\r\nget a\r\nset c 0 0 1\r\nz\r\nget b a c\r\n"),
		// Fields splitting oddities: tabs, multiple spaces, vertical tab.
		[]byte("set\tk 0 0 1\r\na\r\n"),
		[]byte("set  k  0  0  1\r\na\r\n"),
		[]byte("get k\x0bm\r\n"),
		// Expiry interpretation boundary (relative vs absolute, §expiry).
		[]byte("set k 0 1 1\r\na\r\nset j 0 2592001 1\r\nb\r\nget k j\r\n"),
		[]byte("quit\r\nset k 0 0 1\r\na\r\n"),
	}
}

func TestSessionDifferential(t *testing.T) {
	for _, in := range differentialCases() {
		checkDifferential(t, in, nil)
	}
}

// TestSessionDifferentialChunked re-feeds every case one byte at a time
// and in ragged chunks, exercising partial command lines and split data
// blocks in the incremental parser.
func TestSessionDifferentialChunked(t *testing.T) {
	for _, in := range differentialCases() {
		ones := make([]int, len(in))
		for i := range ones {
			ones[i] = 1
		}
		checkDifferential(t, in, ones)
		checkDifferential(t, in, []int{3, 1, 7, 2, 11, 5})
	}
}

// FuzzMemcacheSessionDifferential feeds arbitrary byte streams — split
// into arbitrary chunkings — through both parsers and requires identical
// responses and identical engine state.
func FuzzMemcacheSessionDifferential(f *testing.F) {
	for _, in := range differentialCases() {
		f.Add(in, uint8(0))
		f.Add(in, uint8(3))
	}
	f.Add([]byte("set k 0 0 5\r\nab\r\nc\r\nget k\r\n"), uint8(1))
	f.Add([]byte("mset 2\r\na 0 0 1\r\nx\r\n"), uint8(2))
	f.Fuzz(func(t *testing.T, data []byte, split uint8) {
		if len(data) > 1<<16 {
			return // keep value sizes and runtime bounded
		}
		var chunks []int
		if split > 0 {
			for rest := len(data); rest > 0; rest -= int(split) {
				chunks = append(chunks, int(split))
			}
		}
		newResp, refResp, newFP, refFP := feedBoth(data, chunks)
		if !bytes.Equal(newResp, refResp) {
			t.Fatalf("responses diverge (split=%d):\n new: %q\n ref: %q", split, newResp, refResp)
		}
		if newFP != refFP {
			t.Fatalf("engine state diverges (split=%d):\n new:\n%s ref:\n%s", split, newFP, refFP)
		}
	})
}

// TestResponseNotAliasedToEngine locks in the copy boundary between the
// engine's stored values and protocol responses: bytes handed to the
// transport must stay stable even when later commands (append, incr)
// mutate the stored value in place. A regression here would corrupt
// queued replies under pipelining.
func TestResponseNotAliasedToEngine(t *testing.T) {
	e := NewEngine(0, func() time.Duration { return 0 })
	s := NewSession(e)

	resp := s.Feed([]byte("set k 0 0 3\r\n100\r\n"))
	if string(resp) != "STORED\r\n" {
		t.Fatalf("set: %q", resp)
	}
	s.Release(resp)

	got := s.Feed([]byte("get k\r\n"))
	held := string(got) // snapshot before any mutation

	// Mutate the stored value through every in-place path on a second
	// session (the engine is shared across connections).
	s2 := NewSession(e)
	for _, cmd := range []string{
		"append k 0 0 3\r\nxyz\r\n",
		"prepend k 0 0 2\r\nab\r\n",
		"set k 0 0 3\r\n100\r\n", // reset to numeric for incr/decr
		"incr k 42\r\n",
		"decr k 7\r\n",
	} {
		r := s2.Feed([]byte(cmd))
		s2.Release(r)
	}

	if string(got) != held {
		t.Fatalf("held response mutated by later commands:\n held: %q\n  now: %q", held, got)
	}
	if held != "VALUE k 0 3\r\n100\r\nEND\r\n" {
		t.Fatalf("unexpected get response: %q", held)
	}
	s.Release(got)
}

// TestInterleavedGetAppendIncr pins the aliasing audit's interleaving:
// get responses captured between append/incr mutations each reflect the
// value at capture time, not the final state.
func TestInterleavedGetAppendIncr(t *testing.T) {
	e := NewEngine(0, func() time.Duration { return 0 })
	s := NewSession(e)

	step := func(cmd string) string {
		resp := s.Feed([]byte(cmd))
		out := string(resp)
		s.Release(resp)
		return out
	}

	step("set k 0 0 1\r\n5\r\n")
	g1 := step("get k\r\n")
	step("append k 0 0 1\r\n0\r\n") // "50"
	g2 := step("get k\r\n")
	step("incr k 25\r\n") // "75"
	g3 := step("get k\r\n")
	step("incr k 9925\r\n") // "10000": grows the digit count in place
	g4 := step("get k\r\n")

	want := []string{
		"VALUE k 0 1\r\n5\r\nEND\r\n",
		"VALUE k 0 2\r\n50\r\nEND\r\n",
		"VALUE k 0 2\r\n75\r\nEND\r\n",
		"VALUE k 0 5\r\n10000\r\nEND\r\n",
	}
	for i, got := range []string{g1, g2, g3, g4} {
		if got != want[i] {
			t.Fatalf("get #%d = %q, want %q", i+1, got, want[i])
		}
	}
}
