package memcache

import (
	"bytes"
	"fmt"
	"testing"
	"time"
)

// --- mset wire protocol ---

func msetWire(items []Item, exptime int) []byte {
	return appendMSetCmd(nil, items, exptime)
}

func TestMSetStoresAllRecords(t *testing.T) {
	e := NewEngine(0, nil)
	sess := NewSession(e)
	items := []Item{
		{Key: "a", Value: []byte("alpha"), Flags: 1},
		{Key: "b", Value: []byte("beta")},
		{Key: "c", Value: []byte("with\r\nCRLF")},
	}
	resp := sess.Feed(msetWire(items, 0))
	if string(resp) != "MSTORED 3\r\n" {
		t.Fatalf("reply = %q", resp)
	}
	for _, it := range items {
		got, ok := e.Get(it.Key)
		if !ok || !bytes.Equal(got.Value, it.Value) || got.Flags != it.Flags {
			t.Fatalf("key %q: ok=%v item=%+v", it.Key, ok, got)
		}
	}
}

func TestMSetPartialInputAcrossChunks(t *testing.T) {
	e := NewEngine(0, nil)
	sess := NewSession(e)
	wire := msetWire([]Item{
		{Key: "k1", Value: []byte("v1")},
		{Key: "k2", Value: []byte("v2")},
	}, 0)
	// Deliver one byte at a time: the session must hold partial input
	// without replying early and still store both records at the end.
	var resp []byte
	for i := range wire {
		resp = append(resp, sess.Feed(wire[i:i+1])...)
	}
	if string(resp) != "MSTORED 2\r\n" {
		t.Fatalf("reply = %q", resp)
	}
	if _, ok := e.Get("k2"); !ok {
		t.Fatal("k2 not stored")
	}
}

func TestMSetPipelinesWithOtherCommands(t *testing.T) {
	e := NewEngine(0, nil)
	sess := NewSession(e)
	var in []byte
	in = append(in, "set pre 0 0 1\r\nP\r\n"...)
	in = append(in, msetWire([]Item{{Key: "m1", Value: []byte("x")}, {Key: "m2", Value: []byte("y")}}, 0)...)
	in = append(in, "get m2\r\n"...)
	resp := sess.Feed(in)
	want := "STORED\r\nMSTORED 2\r\nVALUE m2 0 1\r\ny\r\nEND\r\n"
	if string(resp) != want {
		t.Fatalf("pipelined replies = %q, want %q", resp, want)
	}
}

func TestMSetMalformed(t *testing.T) {
	for _, in := range []string{
		"mset\r\n",
		"mset x\r\n",
		"mset -1\r\n",
		fmt.Sprintf("mset %d\r\n", MaxBatchRecords+1),
		"mset 1\r\nkey 0 0 nope\r\n",
	} {
		sess := NewSession(NewEngine(0, nil))
		resp := sess.Feed([]byte(in))
		if !bytes.HasPrefix(resp, []byte("CLIENT_ERROR")) && !bytes.HasPrefix(resp, []byte("ERROR")) {
			t.Fatalf("input %q: reply %q, want an error", in, resp)
		}
	}
}

func TestReplyParserMStored(t *testing.T) {
	p := &ReplyParser{}
	p.Expect(false)
	p.Expect(false)
	replies := p.Feed([]byte("MSTORED 5\r\nMSTORED 0\r\n"))
	if len(replies) != 2 {
		t.Fatalf("replies = %d", len(replies))
	}
	if replies[0].Type != ReplyMStored || replies[0].N != 5 {
		t.Fatalf("reply 0 = %+v", replies[0])
	}
	if replies[1].Type != ReplyMStored || replies[1].N != 0 {
		t.Fatalf("reply 1 = %+v", replies[1])
	}
}

func TestCountCommandsChargesPerRecord(t *testing.T) {
	var in []byte
	in = append(in, msetWire([]Item{
		{Key: "a", Value: []byte("1")},
		{Key: "b", Value: []byte("2")},
		{Key: "c", Value: []byte("3")},
	}, 0)...)
	in = append(in, "get a\r\n"...)
	// The batch saves round trips, not server work: 3 stores + 1 get.
	if n := countCommands(in); n != 4 {
		t.Fatalf("countCommands = %d, want 4", n)
	}
}

func TestNetClientSetMulti(t *testing.T) {
	srv := startNetServer(t)
	cl, err := DialNet(srv.Addr(), time.Second)
	if err != nil {
		t.Fatalf("dial: %v", err)
	}
	defer cl.Close()
	items := []Item{
		{Key: "ma", Value: []byte("va")},
		{Key: "mb", Value: []byte("vb")},
		{Key: "mc", Value: []byte("vc")},
	}
	n, err := cl.SetMulti(items, 0)
	if err != nil || n != 3 {
		t.Fatalf("SetMulti = %d, %v", n, err)
	}
	for _, it := range items {
		got, ok, gerr := cl.Get(it.Key)
		if gerr != nil || !ok || !bytes.Equal(got.Value, it.Value) {
			t.Fatalf("get %q: %v %v %+v", it.Key, ok, gerr, got)
		}
	}
}
