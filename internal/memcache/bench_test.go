package memcache

import (
	"testing"
	"time"
)

// sessionWorkload is one steady-state TCPStore-shaped exchange: a
// two-record mset (storage-b), a single-record set (storage-a), and a
// get (recovery lookup). Keys and sizes mirror the flow-record traffic
// the store client generates.
func sessionWorkload() []byte {
	rec := make([]byte, 0, 256)
	val := make([]byte, 90)
	for i := range val {
		val[i] = byte('a' + i%26)
	}
	add := func(s string) { rec = append(rec, s...) }
	add("mset 2\r\n")
	add("yoda:f:c0a80001:9c40:0a0000fe:0050 0 600 90\r\n")
	rec = append(rec, val...)
	add("\r\n")
	add("yoda:f:0a000020:1f90:0a0000fe:4e21 0 600 90\r\n")
	rec = append(rec, val...)
	add("\r\n")
	add("set yoda:f:c0a80001:9c41:0a0000fe:0050 0 600 90\r\n")
	rec = append(rec, val...)
	add("\r\n")
	add("get yoda:f:c0a80001:9c40:0a0000fe:0050\r\n")
	return rec
}

// BenchmarkMemcacheSession measures the server-side protocol session on
// the storage dataplane's steady-state workload: parse, dispatch, engine
// mutation, and response framing for an mset+set+get exchange.
func BenchmarkMemcacheSession(b *testing.B) {
	e := NewEngine(0, func() time.Duration { return 0 })
	s := NewSession(e)
	in := sessionWorkload()
	b.SetBytes(int64(len(in)))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		resp := s.Feed(in)
		if len(resp) == 0 {
			b.Fatal("no response")
		}
		s.Release(resp)
	}
}

// BenchmarkMemcacheSessionReference runs the same workload through the
// preserved pre-optimization parser, for an honest speedup denominator in
// BENCH_core.json.
func BenchmarkMemcacheSessionReference(b *testing.B) {
	e := NewEngine(0, func() time.Duration { return 0 })
	s := NewReferenceSession(e)
	in := sessionWorkload()
	b.SetBytes(int64(len(in)))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		resp := s.Feed(in)
		if len(resp) == 0 {
			b.Fatal("no response")
		}
	}
}
