package l4lb

import (
	"flag"
	"reflect"
	"testing"
	"testing/quick"
	"time"

	"repro/internal/netsim"
)

// shardsFlag lets CI sweep the shard count of the sharded l4lb tests
// (ci.sh runs this package with -shards=4 under -race).
var shardsFlag = flag.Int("shards", 4, "shard count for sharded l4lb tests")

var (
	vip    = netsim.IPv4(10, 255, 0, 1)
	inst1  = netsim.IPv4(10, 0, 1, 1)
	inst2  = netsim.IPv4(10, 0, 1, 2)
	inst3  = netsim.IPv4(10, 0, 1, 3)
	client = netsim.IPv4(100, 0, 0, 1)
	server = netsim.IPv4(10, 0, 2, 1)
)

// collector records packets delivered to an instance IP.
type collector struct {
	got []*netsim.Packet
}

func (c *collector) HandlePacket(pkt *netsim.Packet) { c.got = append(c.got, pkt) }

func setup(seed int64, cfg Config, instances ...netsim.IP) (*netsim.Network, *LB, map[netsim.IP]*collector) {
	n := netsim.New(seed)
	lb := New(n, cfg)
	lb.AddVIP(vip)
	cols := make(map[netsim.IP]*collector)
	for _, ip := range instances {
		c := &collector{}
		cols[ip] = c
		n.Attach(ip, c)
	}
	lb.SetMappingNow(vip, instances)
	return n, lb, cols
}

func clientPkt(port uint16) *netsim.Packet {
	return &netsim.Packet{
		Src:   netsim.HostPort{IP: client, Port: port},
		Dst:   netsim.HostPort{IP: vip, Port: 80},
		Flags: netsim.FlagSYN,
	}
}

func TestVIPForwardsToInstance(t *testing.T) {
	n, _, cols := setup(1, DefaultConfig(), inst1)
	n.Send(clientPkt(1000))
	n.RunUntilIdle(100)
	if len(cols[inst1].got) != 1 {
		t.Fatalf("instance got %d packets", len(cols[inst1].got))
	}
	pkt := cols[inst1].got[0]
	if pkt.Outer == nil || pkt.Outer.Dst != inst1 || pkt.Outer.Src != vip {
		t.Fatalf("missing/wrong encap: %v", pkt)
	}
	if pkt.Dst.IP != vip {
		t.Fatalf("inner destination rewritten: %v", pkt.Dst)
	}
}

func TestFlowAffinity(t *testing.T) {
	n, _, cols := setup(2, DefaultConfig(), inst1, inst2, inst3)
	// All packets of one flow must hit the same instance.
	for i := 0; i < 10; i++ {
		n.Send(clientPkt(1000))
	}
	n.RunUntilIdle(1000)
	total := 0
	for _, c := range cols {
		if len(c.got) > 0 && len(c.got) != 10 {
			t.Fatalf("flow split across instances: %d", len(c.got))
		}
		total += len(c.got)
	}
	if total != 10 {
		t.Fatalf("delivered %d", total)
	}
}

func TestFlowsSpreadAcrossInstances(t *testing.T) {
	n, _, cols := setup(3, DefaultConfig(), inst1, inst2, inst3)
	for p := uint16(1); p <= 300; p++ {
		n.Send(clientPkt(p))
	}
	n.RunUntilIdle(10000)
	for ip, c := range cols {
		frac := float64(len(c.got)) / 300
		if frac < 0.15 || frac > 0.55 {
			t.Errorf("instance %v got fraction %.2f, want ~1/3", ip, frac)
		}
	}
}

func TestNoInstancesDrops(t *testing.T) {
	n, lb, _ := setup(4, DefaultConfig())
	n.Send(clientPkt(1))
	n.RunUntilIdle(100)
	if lb.NoInstanceDrops != 1 {
		t.Fatalf("NoInstanceDrops = %d", lb.NoInstanceDrops)
	}
}

func TestRemoveInstanceRehashesOnlyItsFlows(t *testing.T) {
	n, lb, cols := setup(5, DefaultConfig(), inst1, inst2, inst3)
	// Establish affinity for many flows.
	assigned := make(map[uint16]netsim.IP)
	for p := uint16(1); p <= 200; p++ {
		n.Send(clientPkt(p))
	}
	n.RunUntilIdle(10000)
	for ip, c := range cols {
		for _, pkt := range c.got {
			assigned[pkt.Src.Port] = ip
		}
		c.got = nil
	}
	// Kill inst2.
	lb.RemoveInstance(inst2)
	n.Detach(inst2)
	for p := uint16(1); p <= 200; p++ {
		n.Send(clientPkt(p))
	}
	n.RunUntilIdle(10000)
	moved, stayed := 0, 0
	for ip, c := range cols {
		if ip == inst2 {
			if len(c.got) != 0 {
				t.Fatalf("dead instance still receiving")
			}
			continue
		}
		for _, pkt := range c.got {
			prev := assigned[pkt.Src.Port]
			if prev == inst2 {
				moved++
			} else if prev == ip {
				stayed++
			} else {
				t.Fatalf("flow %d moved from %v to %v though %v is alive", pkt.Src.Port, prev, ip, prev)
			}
		}
	}
	if moved == 0 {
		t.Fatal("no flows from the dead instance were remapped")
	}
	if stayed == 0 {
		t.Fatal("expected surviving flows to stay put")
	}
}

func TestSNATReturnPath(t *testing.T) {
	n, lb, cols := setup(6, DefaultConfig(), inst1, inst2, inst3)
	srvCol := &collector{}
	n.Attach(server, srvCol)
	// inst1 originates a connection to the server using the VIP as source.
	out := &netsim.Packet{
		Src:   netsim.HostPort{IP: vip, Port: 7777},
		Dst:   netsim.HostPort{IP: server, Port: 80},
		Flags: netsim.FlagSYN,
	}
	lb.SendViaSNAT(n, out, inst1)
	n.RunUntilIdle(100)
	if len(srvCol.got) != 1 {
		t.Fatalf("server got %d packets", len(srvCol.got))
	}
	if srvCol.got[0].Src.IP != vip {
		t.Fatalf("server sees source %v, want VIP", srvCol.got[0].Src)
	}
	// Server replies to the VIP; the reply must reach inst1, not a hash
	// choice.
	reply := &netsim.Packet{
		Src:   netsim.HostPort{IP: server, Port: 80},
		Dst:   netsim.HostPort{IP: vip, Port: 7777},
		Flags: netsim.FlagSYN | netsim.FlagACK,
	}
	n.Send(reply)
	n.RunUntilIdle(100)
	if len(cols[inst1].got) != 1 {
		t.Fatalf("inst1 got %d reply packets", len(cols[inst1].got))
	}
	if len(cols[inst2].got)+len(cols[inst3].got) != 0 {
		t.Fatal("reply leaked to other instances")
	}
}

func TestSNATFailoverAfterInstanceRemoval(t *testing.T) {
	n, lb, cols := setup(7, DefaultConfig(), inst1, inst2)
	out := &netsim.Packet{
		Src: netsim.HostPort{IP: vip, Port: 7777},
		Dst: netsim.HostPort{IP: server, Port: 80},
	}
	n.Attach(server, &collector{})
	lb.SendViaSNAT(n, out, inst1)
	lb.RemoveInstance(inst1)
	n.Detach(inst1)
	reply := &netsim.Packet{
		Src: netsim.HostPort{IP: server, Port: 80},
		Dst: netsim.HostPort{IP: vip, Port: 7777},
	}
	n.Send(reply)
	n.RunUntilIdle(100)
	if len(cols[inst2].got) != 1 {
		t.Fatalf("surviving instance got %d packets, want the rerouted reply", len(cols[inst2].got))
	}
}

func TestClearSNAT(t *testing.T) {
	n, lb, _ := setup(8, DefaultConfig(), inst1)
	out := &netsim.Packet{
		Src: netsim.HostPort{IP: vip, Port: 7777},
		Dst: netsim.HostPort{IP: server, Port: 80},
	}
	n.Attach(server, &collector{})
	lb.SendViaSNAT(n, out, inst1)
	if lb.AffinityCount() != 1 {
		t.Fatalf("affinity = %d", lb.AffinityCount())
	}
	lb.ClearSNAT(netsim.FourTuple{
		Src: netsim.HostPort{IP: server, Port: 80},
		Dst: netsim.HostPort{IP: vip, Port: 7777},
	})
	if lb.AffinityCount() != 0 {
		t.Fatalf("affinity after clear = %d", lb.AffinityCount())
	}
}

func TestStaggeredMappingUpdate(t *testing.T) {
	cfg := DefaultConfig()
	cfg.UpdateStagger = 400 * time.Millisecond
	n, lb, cols := setup(9, cfg, inst1)
	c2 := &collector{}
	cols[inst2] = c2
	n.Attach(inst2, c2)
	// Switch the VIP from inst1 to inst2 with stagger; during the window
	// new flows may land on either instance depending on which mux they
	// hash to.
	lb.SetMapping(vip, []netsim.IP{inst2})
	sawOld, sawNew := false, false
	for p := uint16(1); p <= 200; p++ {
		n.Send(clientPkt(p))
		n.RunFor(2 * time.Millisecond)
	}
	n.RunUntilIdle(100000)
	if len(cols[inst1].got) > 0 {
		sawOld = true
	}
	if len(cols[inst2].got) > 0 {
		sawNew = true
	}
	if !sawOld || !sawNew {
		t.Fatalf("staggered update not observed: old=%v new=%v", sawOld, sawNew)
	}
	// After convergence, fresh flows must all land on inst2.
	cols[inst1].got = nil
	cols[inst2].got = nil
	for p := uint16(1000); p <= 1100; p++ {
		n.Send(clientPkt(p))
	}
	n.RunUntilIdle(100000)
	if len(cols[inst1].got) != 0 {
		t.Fatalf("old instance still receiving after convergence: %d", len(cols[inst1].got))
	}
}

func TestRemoveVIP(t *testing.T) {
	n, lb, cols := setup(10, DefaultConfig(), inst1)
	lb.RemoveVIP(vip)
	n.Send(clientPkt(1))
	n.RunUntilIdle(100)
	if len(cols[inst1].got) != 0 {
		t.Fatal("packet forwarded after VIP removal")
	}
	if n.DroppedNoRoute != 1 {
		t.Fatalf("DroppedNoRoute = %d", n.DroppedNoRoute)
	}
	// Removing again is a no-op.
	lb.RemoveVIP(vip)
}

func TestReadTrafficResets(t *testing.T) {
	n, lb, _ := setup(11, DefaultConfig(), inst1)
	for i := 0; i < 5; i++ {
		n.Send(clientPkt(uint16(i + 1)))
	}
	n.RunUntilIdle(1000)
	tr := lb.ReadTraffic()
	if tr[vip] != 5 {
		t.Fatalf("traffic = %d", tr[vip])
	}
	tr = lb.ReadTraffic()
	if tr[vip] != 0 {
		t.Fatalf("traffic after reset = %d", tr[vip])
	}
}

// TestReadTrafficReusesBuffer pins the double-buffer contract: the maps
// returned by successive calls alternate between exactly two buffers
// (no per-poll allocation), each call resets the counters, and a
// returned map stays valid until the next call.
func TestReadTrafficReusesBuffer(t *testing.T) {
	n, lb, _ := setup(12, DefaultConfig(), inst1)
	send := func(k int) {
		for i := 0; i < k; i++ {
			n.Send(clientPkt(uint16(i + 1)))
		}
		n.RunUntilIdle(1000)
	}
	send(3)
	tr1 := lb.ReadTraffic()
	if tr1[vip] != 3 {
		t.Fatalf("first read = %d, want 3", tr1[vip])
	}
	send(2)
	tr2 := lb.ReadTraffic()
	if tr2[vip] != 2 {
		t.Fatalf("second read = %d, want 2 (reset between polls)", tr2[vip])
	}
	send(4)
	tr3 := lb.ReadTraffic()
	// The third call must hand tr1's storage back, cleared and
	// refilled: exactly two buffers in rotation, each valid until the
	// call after the one that returned it.
	if reflect.ValueOf(tr3).Pointer() != reflect.ValueOf(tr1).Pointer() {
		t.Fatal("third read did not reuse the first buffer")
	}
	if reflect.ValueOf(tr2).Pointer() == reflect.ValueOf(tr1).Pointer() {
		t.Fatal("consecutive reads returned the same buffer")
	}
	if tr3[vip] != 4 {
		t.Fatalf("third read = %d, want 4", tr3[vip])
	}
	// Steady state allocates nothing per poll.
	if avg := testing.AllocsPerRun(100, func() { lb.ReadTraffic() }); avg != 0 {
		t.Fatalf("ReadTraffic allocates %.1f/op in steady state", avg)
	}
}

// TestShardedSNATRangeRouting exercises the cross-shard SNAT contract
// under the race detector: instances living on other shards originate
// SNAT traffic concurrently through their registered port blocks — a
// read-only path over the LB's range slice — and every server reply is
// routed back to the owning instance by stateless range lookup, with
// zero affinity entries written.
func TestShardedSNATRangeRouting(t *testing.T) {
	shards := *shardsFlag
	if shards < 2 {
		shards = 2
	}
	sn := netsim.NewSharded(21, shards)
	defer sn.Close()
	lb := New(sn.Shard(0), DefaultConfig())
	lb.AddVIP(vip)

	srvShard := sn.Shard(1 % shards)
	srvNet := srvShard
	srvCol := &collector{}
	srvShard.Attach(server, netsim.NodeFunc(func(pkt *netsim.Packet) {
		srvCol.got = append(srvCol.got, pkt)
		srvNet.Send(&netsim.Packet{
			Src: netsim.HostPort{IP: server, Port: pkt.Dst.Port},
			Dst: pkt.Src, // back toward VIP:snat-port
		})
	}))

	const perInst = 16
	nInst := shards
	cols := make([]*collector, nInst)
	for i := 0; i < nInst; i++ {
		inst := netsim.IPv4(10, 0, 3, byte(i+1))
		base := uint16(20000 + 1000*i)
		lb.RegisterSNATRange(inst, base, 100)
		sh := sn.Shard(i % shards)
		cols[i] = &collector{}
		sh.Attach(inst, cols[i])
		sh.Schedule(0, func() {
			for p := 0; p < perInst; p++ {
				lb.SendViaSNAT(sh, &netsim.Packet{
					Src:   netsim.HostPort{IP: vip, Port: base + uint16(p)},
					Dst:   netsim.HostPort{IP: server, Port: 80},
					Flags: netsim.FlagSYN,
				}, inst)
			}
		})
	}
	sn.RunUntilIdle(1_000_000)

	if got := len(srvCol.got); got != nInst*perInst {
		t.Fatalf("server got %d packets, want %d", got, nInst*perInst)
	}
	for i, c := range cols {
		if len(c.got) != perInst {
			t.Fatalf("instance %d got %d replies, want %d", i, len(c.got), perInst)
		}
		base := uint16(20000 + 1000*i)
		for _, pkt := range c.got {
			if pkt.Dst.Port < base || pkt.Dst.Port >= base+100 {
				t.Fatalf("instance %d got reply for port %d outside its block", i, pkt.Dst.Port)
			}
		}
	}
	if lb.AffinityCount() != 0 {
		t.Fatalf("stateless SNAT routing wrote %d affinity entries", lb.AffinityCount())
	}
}

func TestRendezvousPickProperties(t *testing.T) {
	insts := []netsim.IP{inst1, inst2, inst3}
	f := func(srcIP uint32, srcPort uint16) bool {
		ft := netsim.FourTuple{
			Src: netsim.HostPort{IP: netsim.IP(srcIP), Port: srcPort},
			Dst: netsim.HostPort{IP: vip, Port: 80},
		}
		pick := rendezvousPick(ft, insts)
		// Deterministic.
		if rendezvousPick(ft, insts) != pick {
			return false
		}
		// Monotone: removing a non-chosen instance must not change the pick.
		var reduced []netsim.IP
		for _, ip := range insts {
			if ip != pick {
				reduced = append(reduced, ip)
			}
		}
		sub := append([]netsim.IP{pick}, reduced[:1]...)
		return rendezvousPick(ft, sub) == pick
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestRendezvousBalance(t *testing.T) {
	insts := []netsim.IP{inst1, inst2, inst3}
	counts := map[netsim.IP]int{}
	for p := uint16(1); p <= 3000; p++ {
		ft := netsim.FourTuple{
			Src: netsim.HostPort{IP: client, Port: p},
			Dst: netsim.HostPort{IP: vip, Port: 80},
		}
		counts[rendezvousPick(ft, insts)]++
	}
	for ip, c := range counts {
		frac := float64(c) / 3000
		if frac < 0.25 || frac > 0.42 {
			t.Errorf("instance %v fraction %.3f, want ~0.333", ip, frac)
		}
	}
}
