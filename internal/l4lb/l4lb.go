// Package l4lb implements the Ananta-style layer-4 software load
// balancer that Yoda builds on. It provides exactly the two services the
// paper requires of the underlying cloud (§3):
//
//   - splitting traffic arriving at a VIP across the L7 instances
//     currently assigned to that VIP, with flow affinity so an
//     established connection keeps hitting the same instance while it is
//     alive; and
//   - SNAT, so an L7 instance can originate connections to backend
//     servers using the VIP as the source address, with return traffic
//     routed back to that instance.
//
// Mapping updates are applied to the individual mux instances with a
// configurable stagger, reproducing the non-atomic update behaviour
// (§4.5) that motivates the transient-traffic constraints Eq. 4–5 of the
// assignment ILP.
package l4lb

import (
	"math/rand"
	"time"

	"repro/internal/flowmap"
	"repro/internal/netsim"
)

// Config tunes the L4 LB.
type Config struct {
	// MuxCount is the number of mux instances the VIP map is replicated
	// across. Incoming flows are spread over muxes by tuple hash.
	MuxCount int
	// UpdateStagger is the maximum delay before an individual mux applies
	// a new VIP mapping; per-mux delays are uniform in [0, UpdateStagger].
	UpdateStagger time.Duration
	// ForwardHop is the extra latency charged for the mux→instance
	// forwarding hop (encapsulated packets take one DC hop).
	ForwardHop time.Duration
}

// DefaultConfig mirrors the testbed: 10 muxes, 500ms worst-case update
// stagger (Ananta's non-atomic update window).
func DefaultConfig() Config {
	return Config{MuxCount: 10, UpdateStagger: 500 * time.Millisecond, ForwardHop: 0}
}

// mux is one L4 mux instance: its own copy of the VIP maps plus a flow
// affinity table.
//
// The affinity table is a compact flow map (Concury-style: a few bytes
// per flow instead of a Go map entry) whose values are indices into the
// LB's (VIP, instance) pair registry. Storing the pair rather than the
// bare instance is what makes every eviction path an O(1) epoch bump
// on the pair's value instead of an O(flows) scan: a mapping update
// evicts the (vip, inst) pairs the update removed, instance death
// evicts every pair naming the instance, VIP withdrawal evicts every
// pair naming the VIP.
//
// False-hit discipline (see flowmap's package comment): the mux holds
// no richer per-flow state to validate a hit against, so it must be —
// and is — positioned where a false hit is benign: an unknown tuple
// aliasing a live entry's 64-bit tag is forwarded to a live pair's
// instance with affinity-grade stickiness, exactly what the rendezvous
// pick would have provided, just to a possibly different instance.
// Correctness-critical paths (SNAT-range return routing, new-flow
// placement after the miss) never depend on a compact hit.
type mux struct {
	vipMap   map[netsim.IP][]netsim.IP // VIP -> assigned L7 instance IPs
	affinity *flowmap.Compact          // flow -> pair index (see LB.pairs)
}

// snatRange is a per-instance SNAT source-port block. Because the
// cluster assigns every instance a disjoint block, a SNAT return packet
// (server -> VIP:port) can be routed to its instance statelessly by
// range lookup — no affinity entry, and therefore no mux-state write on
// the instance's send path. That is what lets instances on other shards
// originate SNAT traffic without touching mux maps owned by the LB's
// shard. The affinity table still overrides the range: a flow recovered
// by a different instance keeps its old port (from the dead instance's
// now-unregistered block) and is routed by an explicitly installed
// affinity entry, exactly as before ranges existed.
type snatRange struct {
	inst netsim.IP
	base uint16
	end  uint32 // base+count, exclusive
}

func newMux() *mux {
	return &mux{
		vipMap:   make(map[netsim.IP][]netsim.IP),
		affinity: flowmap.NewCompact(0),
	}
}

// affinityPair is one (VIP, instance) assignment; affinity entries
// store the pair's registry index as their flowmap value.
type affinityPair struct {
	vip  netsim.IP
	inst netsim.IP
}

// LB is the layer-4 load balancer.
type LB struct {
	net *netsim.Network
	// rng is the LB's shard-local RNG handle, cached at construction per
	// the repo-wide rule that components never call Network.Rand inline.
	rng        *rand.Rand
	cfg        Config
	muxes      []*mux
	snatRanges []snatRange
	vips       map[netsim.IP]bool

	// pairs is the (VIP, instance) registry affinity values point into;
	// pairIdx is its reverse index. Pairs are append-only: an evicted
	// pair's entries die via the per-mux epoch bump, and re-assignment
	// of the same (vip, inst) reuses the same index with a fresh
	// generation. Registry growth is bounded by distinct assignments
	// ever made (tens to hundreds), not by flows.
	pairs   []affinityPair
	pairIdx map[affinityPair]flowmap.Value

	// vipPackets counts packets per VIP since the last ReadTraffic
	// call, feeding the controller's statistics. trafficSpare is the
	// double buffer ReadTraffic swaps in so the steady-state stats
	// poll does not allocate a fresh map per cycle.
	vipPackets   map[netsim.IP]uint64
	trafficSpare map[netsim.IP]uint64
	// Forwarded and NoInstanceDrops are lifetime counters.
	Forwarded       uint64
	NoInstanceDrops uint64
}

// New creates an L4 LB on the network.
func New(n *netsim.Network, cfg Config) *LB {
	if cfg.MuxCount <= 0 {
		cfg.MuxCount = 1
	}
	lb := &LB{
		net:        n,
		rng:        n.Rand(),
		cfg:        cfg,
		vips:       make(map[netsim.IP]bool),
		pairIdx:    make(map[affinityPair]flowmap.Value),
		vipPackets: make(map[netsim.IP]uint64),
	}
	for i := 0; i < cfg.MuxCount; i++ {
		lb.muxes = append(lb.muxes, newMux())
	}
	return lb
}

// AddVIP announces a VIP: packets addressed to it are delivered to the LB.
func (lb *LB) AddVIP(vip netsim.IP) {
	if lb.vips[vip] {
		return
	}
	lb.vips[vip] = true
	lb.net.Attach(vip, &vipNode{lb: lb, vip: vip})
}

// vipNode is the network endpoint for one VIP. A typed node (instead of
// the former NodeFunc closure) lets it implement netsim.BatchNode, so a
// burst-dispatched run of same-VIP packets resolves affinity once per
// flow instead of once per packet.
type vipNode struct {
	lb  *LB
	vip netsim.IP
}

func (v *vipNode) HandlePacket(pkt *netsim.Packet) { v.lb.handleVIPPacket(v.vip, pkt) }

func (v *vipNode) HandleBatch(pkts []*netsim.Packet) { v.lb.handleVIPBatch(v.vip, pkts) }

// RemoveVIP withdraws a VIP announcement and clears its mappings.
func (lb *LB) RemoveVIP(vip netsim.IP) {
	if !lb.vips[vip] {
		return
	}
	delete(lb.vips, vip)
	lb.net.Detach(vip)
	for _, m := range lb.muxes {
		delete(m.vipMap, vip)
	}
	// Affinity keys are stored toward the VIP (vipOf == ft.Dst.IP), so
	// evicting every pair registered for this VIP covers exactly the
	// entries the old per-tuple scan deleted — in O(pairs), not O(flows).
	for v, p := range lb.pairs {
		if p.vip == vip {
			lb.evictPair(flowmap.Value(v))
		}
	}
}

// pairVal returns the registry index for (vip, inst), registering the
// pair on first use.
func (lb *LB) pairVal(vip, inst netsim.IP) flowmap.Value {
	p := affinityPair{vip: vip, inst: inst}
	if v, ok := lb.pairIdx[p]; ok {
		return v
	}
	v := flowmap.Value(len(lb.pairs))
	lb.pairs = append(lb.pairs, p)
	lb.pairIdx[p] = v
	return v
}

// evictPair invalidates every affinity entry carrying the pair's value,
// on every mux, via the flowmap epoch bump — O(muxes), independent of
// how many flows were pinned to the pair.
func (lb *LB) evictPair(v flowmap.Value) {
	for _, m := range lb.muxes {
		m.affinity.EvictValue(v)
	}
}

// SetMapping installs the instance list for a VIP on every mux, each
// after its own random stagger delay, modelling the non-atomic update.
// Instances removed from the mapping lose their affinity entries on each
// mux as it applies the update, so their flows migrate.
func (lb *LB) SetMapping(vip netsim.IP, instances []netsim.IP) {
	insts := append([]netsim.IP(nil), instances...)
	for _, m := range lb.muxes {
		m := m
		var delay time.Duration
		if lb.cfg.UpdateStagger > 0 {
			delay = time.Duration(lb.rng.Int63n(int64(lb.cfg.UpdateStagger)))
		}
		lb.net.Schedule(delay, func() { lb.applyMapping(m, vip, insts) })
	}
}

// SetMappingNow installs the mapping on every mux immediately (used at
// experiment setup and in tests).
func (lb *LB) SetMappingNow(vip netsim.IP, instances []netsim.IP) {
	insts := append([]netsim.IP(nil), instances...)
	for _, m := range lb.muxes {
		lb.applyMapping(m, vip, insts)
	}
}

func (lb *LB) applyMapping(m *mux, vip netsim.IP, instances []netsim.IP) {
	m.vipMap[vip] = instances
	allowed := make(map[netsim.IP]bool, len(instances))
	for _, ip := range instances {
		allowed[ip] = true
	}
	// Evict this VIP's no-longer-allowed pairs on this mux only: each
	// mux applies the update after its own stagger delay, so the others
	// keep forwarding on their old affinity until their turn.
	for v, p := range lb.pairs {
		if p.vip == vip && !allowed[p.inst] {
			m.affinity.EvictValue(flowmap.Value(v))
		}
	}
}

// Mapping returns the instance list mux 0 currently holds for vip (the
// converged view in the absence of in-flight updates).
func (lb *LB) Mapping(vip netsim.IP) []netsim.IP {
	return append([]netsim.IP(nil), lb.muxes[0].vipMap[vip]...)
}

// Converged reports whether every mux holds exactly insts for vip — i.e.
// a staggered SetMapping has been applied fleet-wide. The reconfig
// executor polls this instead of sleeping out the worst-case stagger.
func (lb *LB) Converged(vip netsim.IP, insts []netsim.IP) bool {
	for _, m := range lb.muxes {
		cur := m.vipMap[vip]
		if len(cur) != len(insts) {
			return false
		}
		for i, ip := range insts {
			if cur[i] != ip {
				return false
			}
		}
	}
	return true
}

// UpdateStagger returns the configured worst-case per-mux update delay.
func (lb *LB) UpdateStagger() time.Duration { return lb.cfg.UpdateStagger }

// RegisterSNATRange reserves the SNAT source-port block [base,
// base+count) for inst: return packets addressed to any VIP on a port in
// the block route to inst with no affinity state. Blocks must be
// disjoint across instances and must not cover ports client-facing
// listeners use. Re-registering an instance replaces its block.
func (lb *LB) RegisterSNATRange(inst netsim.IP, base, count uint16) {
	lb.UnregisterSNATRange(inst)
	lb.snatRanges = append(lb.snatRanges, snatRange{inst: inst, base: base, end: uint32(base) + uint32(count)})
}

// UnregisterSNATRange drops inst's port block. Flows that survive inst
// (recovered by another instance) keep their old ports; their returns
// fall back to explicitly installed affinity entries.
func (lb *LB) UnregisterSNATRange(inst netsim.IP) {
	for i, r := range lb.snatRanges {
		if r.inst == inst {
			lb.snatRanges = append(lb.snatRanges[:i], lb.snatRanges[i+1:]...)
			return
		}
	}
}

// snatOwner returns the instance owning port's SNAT block, if any. The
// scan is linear: instance counts are tens, and the slice is immutable
// between control-plane changes so concurrent shard reads are safe.
func (lb *LB) snatOwner(port uint16) (netsim.IP, bool) {
	for _, r := range lb.snatRanges {
		if port >= r.base && uint32(port) < r.end {
			return r.inst, true
		}
	}
	return 0, false
}

// RemoveInstance removes an instance from every VIP mapping and drops its
// affinity entries on all muxes, immediately. The Yoda controller calls
// this when its monitor declares the instance dead.
func (lb *LB) RemoveInstance(inst netsim.IP) {
	lb.UnregisterSNATRange(inst)
	for _, m := range lb.muxes {
		for vip, list := range m.vipMap {
			out := list[:0]
			for _, ip := range list {
				if ip != inst {
					out = append(out, ip)
				}
			}
			m.vipMap[vip] = out
		}
	}
	// One epoch bump per (vip, inst) pair naming the dead instance kills
	// all of its affinity entries fleet-wide without visiting a flow.
	for v, p := range lb.pairs {
		if p.inst == inst {
			lb.evictPair(flowmap.Value(v))
		}
	}
}

// vipOf extracts the VIP side of an affinity tuple: for inbound client
// flows the VIP is the destination; for SNAT return flows it is also the
// destination (server -> VIP). Affinity keys are always stored in
// "toward the VIP" orientation.
func vipOf(ft netsim.FourTuple) netsim.IP { return ft.Dst.IP }

// handleVIPPacket processes a packet that arrived at a VIP address.
func (lb *LB) handleVIPPacket(vip netsim.IP, pkt *netsim.Packet) {
	lb.vipPackets[vip]++
	tuple := pkt.Tuple()
	m := lb.muxFor(tuple)
	var inst netsim.IP
	if v, hit := m.affinity.LookupMaybe(tuple); hit {
		// A hit resolves through the pair registry; a false hit (64-bit
		// tag alias, see the mux comment) still lands on a live pair's
		// instance, which is the benign-by-construction case.
		inst = lb.pairs[v].inst
	} else {
		// SNAT returns route statelessly by the destination port's
		// registered block; the affinity check above still wins so
		// recovered flows can be pinned elsewhere.
		if owner, ok := lb.snatOwner(tuple.Dst.Port); ok {
			lb.forward(pkt, vip, owner)
			return
		}
		insts := m.vipMap[vip]
		if len(insts) == 0 {
			lb.NoInstanceDrops++
			lb.net.ReleasePacket(pkt)
			return
		}
		inst = rendezvousPick(tuple, insts)
		m.affinity.Insert(tuple, lb.pairVal(vip, inst))
	}
	lb.forward(pkt, vip, inst)
}

// handleVIPBatch processes a run of packets that arrived at one VIP in
// a burst-dispatched train. Consecutive same-tuple packets — one flow's
// segments travelling together — cost one affinity probe (or one
// rendezvous pick plus one Insert on miss, exactly the state mutation
// the scalar path would make: its first packet inserts, the rest hit).
// Resolution order matches scalar delivery packet for packet, so the
// wire output and the affinity table end state are identical.
func (lb *LB) handleVIPBatch(vip netsim.IP, pkts []*netsim.Packet) {
	lb.vipPackets[vip] += uint64(len(pkts))
	i := 0
	for i < len(pkts) {
		tuple := pkts[i].Tuple()
		j := i + 1
		for j < len(pkts) && pkts[j].Tuple() == tuple {
			j++
		}
		m := lb.muxFor(tuple)
		var inst netsim.IP
		if v, hit := m.affinity.LookupMaybe(tuple); hit {
			inst = lb.pairs[v].inst
		} else if owner, ok := lb.snatOwner(tuple.Dst.Port); ok {
			inst = owner
		} else {
			insts := m.vipMap[vip]
			if len(insts) == 0 {
				for ; i < j; i++ {
					lb.NoInstanceDrops++
					lb.net.ReleasePacket(pkts[i])
				}
				continue
			}
			inst = rendezvousPick(tuple, insts)
			m.affinity.Insert(tuple, lb.pairVal(vip, inst))
		}
		for ; i < j; i++ {
			lb.forward(pkts[i], vip, inst)
		}
	}
}

func (lb *LB) forward(pkt *netsim.Packet, vip, inst netsim.IP) {
	// The mux only adds an outer header; the inner packet is untouched.
	// A pooled packet is owned by us (the VIP was its terminal address),
	// so it can be encapsulated in place and re-sent; otherwise take a
	// pooled shallow copy sharing the payload — never a payload clone.
	fwd := pkt
	if !pkt.Pooled() {
		fwd = lb.net.ShallowClone(pkt)
	}
	fwd.SetOuter(vip, inst)
	lb.Forwarded++
	if lb.cfg.ForwardHop > 0 {
		lb.net.Schedule(lb.cfg.ForwardHop, func() { lb.net.Send(fwd) })
	} else {
		lb.net.Send(fwd)
	}
}

// SendViaSNAT transmits a packet originated by instance inst with the VIP
// as its source address (pkt.Src.IP must be the VIP), via the instance's
// own network handle so sharded instances transmit on their own shard.
// If the source port sits in inst's registered SNAT block the return
// route is already stateless; otherwise (no block registered, or a
// recovered flow reusing a dead instance's port) the LB records
// return-flow affinity so the destination's replies reach inst. This is
// the SNAT half of front-and-back indirection.
func (lb *LB) SendViaSNAT(via *netsim.Network, pkt *netsim.Packet, inst netsim.IP) {
	if owner, hit := lb.snatOwner(pkt.Src.Port); !hit || owner != inst {
		ret := netsim.FourTuple{Src: pkt.Dst, Dst: pkt.Src} // reply orientation: toward VIP
		m := lb.muxFor(ret)
		m.affinity.Insert(ret, lb.pairVal(vipOf(ret), inst))
	}
	via.Send(pkt)
}

// ClearSNAT removes the return-flow affinity for a finished connection.
// Ports inside a registered block never had an entry installed, so the
// call is read-only for them — which keeps it safe from other shards.
func (lb *LB) ClearSNAT(serverSide netsim.FourTuple) {
	if _, hit := lb.snatOwner(serverSide.Dst.Port); hit {
		return
	}
	m := lb.muxFor(serverSide)
	m.affinity.Delete(serverSide)
}

func (lb *LB) muxFor(ft netsim.FourTuple) *mux {
	return lb.muxes[tupleHash(ft, 0)%uint64(len(lb.muxes))]
}

// ReadTraffic returns and resets the per-VIP packet counters. The
// returned map is valid until the next ReadTraffic call: the LB keeps
// exactly two buffers and swaps between them, so the steady-state
// stats poll performs zero map allocations. Callers that need the
// counters beyond one poll cycle must copy them out.
func (lb *LB) ReadTraffic() map[netsim.IP]uint64 {
	out := lb.vipPackets
	if lb.trafficSpare == nil {
		lb.trafficSpare = make(map[netsim.IP]uint64)
	}
	clear(lb.trafficSpare)
	lb.vipPackets = lb.trafficSpare
	lb.trafficSpare = out
	return out
}

// AffinityCount returns the number of live affinity entries across muxes
// (a load signal used in tests).
func (lb *LB) AffinityCount() int {
	n := 0
	for _, m := range lb.muxes {
		n += m.affinity.Len()
	}
	return n
}

// FNV-1a constants, inlined: hash/fnv's hash.Hash64 interface escapes to
// the heap, which costs an allocation on every forwarded packet.
const (
	fnvOffset64 uint64 = 14695981039346656037
	fnvPrime64  uint64 = 1099511628211
	// fnvPrime64Pow8 = fnvPrime64^8 mod 2^64. Folding a zero byte into an
	// FNV-1a state is (h^0)*p = h*p, so folding eight of them — the salt
	// half of the encoding when salt == 0, which is every muxFor call —
	// collapses to one multiply by this precomputed power.
	fnvPrime64Pow8 uint64 = 0x1efac7090aef4a21
)

// tupleHash hashes a tuple with a salt, via FNV-1a (bit-identical to
// fnv.New64a over the same 20-byte big-endian encoding: src IP, dst IP,
// src port, dst port, salt). The fold is split into a tuple prefix and a
// per-salt finish so rendezvousPick can hash the 12 tuple bytes once and
// finish per candidate, and muxFor can take the zero-salt shortcut.
func tupleHash(ft netsim.FourTuple, salt uint64) uint64 {
	return tupleHashFinish(tupleHashPrefix(ft), salt)
}

// tupleHashPrefix folds the 12 tuple bytes, unrolled: the byte-wise loop
// over a scratch buffer showed up as ~25% of the flow fast path, nearly
// all of it buffer stores, bounds checks, and loop control rather than
// the multiplies themselves.
func tupleHashPrefix(ft netsim.FourTuple) uint64 {
	h := fnvOffset64
	h = (h ^ uint64(uint32(ft.Src.IP)>>24)) * fnvPrime64
	h = (h ^ uint64(uint8(uint32(ft.Src.IP)>>16))) * fnvPrime64
	h = (h ^ uint64(uint8(uint32(ft.Src.IP)>>8))) * fnvPrime64
	h = (h ^ uint64(uint8(ft.Src.IP))) * fnvPrime64
	h = (h ^ uint64(uint32(ft.Dst.IP)>>24)) * fnvPrime64
	h = (h ^ uint64(uint8(uint32(ft.Dst.IP)>>16))) * fnvPrime64
	h = (h ^ uint64(uint8(uint32(ft.Dst.IP)>>8))) * fnvPrime64
	h = (h ^ uint64(uint8(ft.Dst.IP))) * fnvPrime64
	h = (h ^ uint64(ft.Src.Port>>8)) * fnvPrime64
	h = (h ^ uint64(uint8(ft.Src.Port))) * fnvPrime64
	h = (h ^ uint64(ft.Dst.Port>>8)) * fnvPrime64
	h = (h ^ uint64(uint8(ft.Dst.Port))) * fnvPrime64
	return h
}

// tupleHashFinish folds the 8 salt bytes into a tuple prefix and applies
// the output mix. Bit-identical to continuing the byte-wise fold.
func tupleHashFinish(prefix, salt uint64) uint64 {
	if salt == 0 {
		return mix64(prefix * fnvPrime64Pow8)
	}
	h := prefix
	h = (h ^ (salt >> 56)) * fnvPrime64
	h = (h ^ uint64(uint8(salt>>48))) * fnvPrime64
	h = (h ^ uint64(uint8(salt>>40))) * fnvPrime64
	h = (h ^ uint64(uint8(salt>>32))) * fnvPrime64
	h = (h ^ uint64(uint8(salt>>24))) * fnvPrime64
	h = (h ^ uint64(uint8(salt>>16))) * fnvPrime64
	h = (h ^ uint64(uint8(salt>>8))) * fnvPrime64
	h = (h ^ uint64(uint8(salt))) * fnvPrime64
	return mix64(h)
}

// mix64 is the splitmix64 finalizer; it spreads the small input
// differences typical of tuples (sequential ports, adjacent IPs) across
// the whole output, which plain FNV does poorly.
func mix64(x uint64) uint64 {
	x ^= x >> 30
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 27
	x *= 0x94d049bb133111eb
	x ^= x >> 31
	return x
}

// rendezvousPick selects an instance by highest-random-weight hashing, so
// removing one instance only remaps the flows that were on it.
func rendezvousPick(ft netsim.FourTuple, insts []netsim.IP) netsim.IP {
	var best netsim.IP
	var bestW uint64
	prefix := tupleHashPrefix(ft)
	for _, ip := range insts {
		w := tupleHashFinish(prefix, uint64(ip))
		if w > bestW || best == 0 {
			best, bestW = ip, w
		}
	}
	return best
}
