package netsim

import (
	"flag"
	"fmt"
	"strings"
	"testing"
	"time"
)

// shardsFlag lets CI sweep the shard count (ci.sh runs this package with
// -shards=4 under the race detector). Tests that need a specific
// topology shape pin their own count.
var shardsFlag = flag.Int("shards", 4, "shard count for sharded netsim tests")

// recorder logs every delivery it receives, stamped with its own shard's
// clock. Each recorder is touched only by its shard's goroutine.
type recorder struct {
	net *Network
	log []string
}

func (r *recorder) HandlePacket(pkt *Packet) {
	r.log = append(r.log, fmt.Sprintf("%v %s %s len=%d", r.net.Now(), pkt.Tuple(), pkt.Flags, pkt.Len()))
	r.net.ReleasePacket(pkt)
}

// bouncer returns every packet to its sender, reusing the pooled packet.
type bouncer struct {
	net  *Network
	recv int
}

func (b *bouncer) HandlePacket(pkt *Packet) {
	b.recv++
	pkt.Src, pkt.Dst = pkt.Dst, pkt.Src
	b.net.Send(pkt)
}

// scriptedWorkload drives a fixed mix of jittered sends, timers,
// cancellations, and reschedules against one event loop and returns the
// full delivery log. The same script against the same loop must yield
// the same bytes — it is the differential oracle for the sharded
// coordinator's single-shard mode.
func scriptedWorkload(nw *Network, run func(time.Duration), runUntilIdle func(int) int) string {
	nw.SetJitter(0.2)
	a, b := IPv4(10, 1, 0, 1), IPv4(10, 1, 0, 2)
	ra := &recorder{net: nw}
	rb := &recorder{net: nw}
	nw.Attach(a, ra)
	nw.Attach(b, rb)

	send := func(src, dst IP, port uint16) {
		pkt := nw.AllocPacket()
		pkt.Src = HostPort{IP: src, Port: port}
		pkt.Dst = HostPort{IP: dst, Port: port}
		pkt.Flags = FlagPSH
		nw.Send(pkt)
	}
	for i := 0; i < 50; i++ {
		send(a, b, uint16(1000+i))
	}
	var timers []Timer
	for i := 0; i < 20; i++ {
		port := uint16(2000 + i)
		d := time.Duration(i) * 100 * time.Microsecond
		timers = append(timers, nw.Schedule(d, func() { send(b, a, port) }))
	}
	// Cancel every third timer, reschedule half of those later.
	for i := 0; i < 20; i += 3 {
		timers[i].Stop()
		if i%2 == 0 {
			port := uint16(3000 + i)
			nw.Schedule(5*time.Millisecond, func() { send(b, a, port) })
		}
	}
	run(10 * time.Millisecond)
	for i := 0; i < 10; i++ {
		send(a, b, uint16(4000+i))
	}
	runUntilIdle(1 << 20)
	return strings.Join(ra.log, "\n") + "\n--\n" + strings.Join(rb.log, "\n")
}

// TestShardedSingleShardByteIdentical pins the headline determinism
// guarantee: a 1-shard ShardedNetwork reproduces the plain Network's
// timeline bit for bit, including RNG-driven jitter.
func TestShardedSingleShardByteIdentical(t *testing.T) {
	plain := New(7)
	want := scriptedWorkload(plain, plain.Run, plain.RunUntilIdle)

	sn := NewSharded(7, 1)
	defer sn.Close()
	got := scriptedWorkload(sn.Shard(0), sn.Run, sn.RunUntilIdle)
	if got != want {
		t.Fatalf("1-shard sharded run diverged from plain Network:\nplain:\n%s\n\nsharded:\n%s", want, got)
	}
	if sn.Delivered() != plain.Delivered {
		t.Fatalf("delivered: sharded %d, plain %d", sn.Delivered(), plain.Delivered)
	}
}

// TestShardedPinnedTopologyMatchesSingle checks that a 4-shard network
// whose entire topology lives on shard 0 — so no packet ever crosses a
// shard — also reproduces the plain timeline byte for byte.
func TestShardedPinnedTopologyMatchesSingle(t *testing.T) {
	plain := New(7)
	want := scriptedWorkload(plain, plain.Run, plain.RunUntilIdle)

	sn := NewSharded(7, 4)
	defer sn.Close()
	got := scriptedWorkload(sn.Shard(0), sn.Run, sn.RunUntilIdle)
	if got != want {
		t.Fatalf("cross-shard-free 4-shard run diverged from plain Network:\nplain:\n%s\n\nsharded:\n%s", want, got)
	}
}

// crossShardWorkload spreads bouncer pairs and recorders across all
// shards with heavy cross-shard traffic and returns the combined log.
func crossShardWorkload(t *testing.T, seed int64, shards int) string {
	t.Helper()
	sn := NewSharded(seed, shards)
	defer sn.Close()
	var recs []*recorder
	var bounce []*bouncer
	for s := 0; s < shards; s++ {
		nw := sn.Shard(s)
		r := &recorder{net: nw}
		nw.Attach(IPv4(10, 2, 0, byte(s+1)), r)
		recs = append(recs, r)
		bb := &bouncer{net: nw}
		nw.Attach(IPv4(10, 3, 0, byte(s+1)), bb)
		bounce = append(bounce, bb)
	}
	// Every shard sends to every recorder and pings every bouncer.
	for s := 0; s < shards; s++ {
		nw := sn.Shard(s)
		for d := 0; d < shards; d++ {
			pkt := nw.AllocPacket()
			pkt.Src = HostPort{IP: IPv4(10, 2, 0, byte(s+1)), Port: uint16(100 + s)}
			pkt.Dst = HostPort{IP: IPv4(10, 2, 0, byte(d+1)), Port: uint16(200 + d)}
			nw.Send(pkt)
			pkt = nw.AllocPacket()
			pkt.Src = HostPort{IP: IPv4(10, 2, 0, byte(s+1)), Port: uint16(300 + s)}
			pkt.Dst = HostPort{IP: IPv4(10, 3, 0, byte(d+1)), Port: uint16(400 + d)}
			nw.Send(pkt)
		}
	}
	sn.RunFor(20 * time.Millisecond)
	if got := sn.Pending(); got != 0 {
		// Bounced packets ping-pong forever between recorder and bouncer?
		// No: recorders release, bouncers return to recorders, which
		// release. The network must be quiescent here.
		t.Fatalf("pending after run: %d (%s)", got, sn.String())
	}
	var parts []string
	for i, r := range recs {
		parts = append(parts, fmt.Sprintf("shard%d:\n%s", i, strings.Join(r.log, "\n")))
	}
	return strings.Join(parts, "\n==\n")
}

// TestCrossShardDeterminism runs a heavily cross-shard workload twice
// and demands identical logs: the conservative windows plus fixed ingest
// order make results independent of OS thread scheduling. Under
// `go test -race` this is also the handoff-queue race check.
func TestCrossShardDeterminism(t *testing.T) {
	shards := *shardsFlag
	if shards < 2 {
		shards = 2
	}
	first := crossShardWorkload(t, 11, shards)
	second := crossShardWorkload(t, 11, shards)
	if first != second {
		t.Fatalf("cross-shard run not deterministic:\nrun1:\n%s\n\nrun2:\n%s", first, second)
	}
	if !strings.Contains(first, "shard1:") || len(first) < shards*10 {
		t.Fatalf("suspiciously empty workload log:\n%s", first)
	}
}

// TestCrossShardDeliveryTiming checks that a cross-shard hop arrives at
// exactly the link latency, including a delivery landing precisely on an
// inclusive Run deadline.
func TestCrossShardDeliveryTiming(t *testing.T) {
	sn := NewSharded(1, 2)
	defer sn.Close()
	n0, n1 := sn.Shard(0), sn.Shard(1)
	r := &recorder{net: n1}
	dst := IPv4(10, 4, 0, 2)
	n1.Attach(dst, r)
	src := IPv4(10, 4, 0, 1)
	n0.Attach(src, &recorder{net: n0})

	pkt := n0.AllocPacket()
	pkt.Src = HostPort{IP: src, Port: 1}
	pkt.Dst = HostPort{IP: dst, Port: 2}
	n0.Send(pkt)

	// Deadline exactly at the arrival time: the inclusive-deadline
	// semantics of the single loop must hold across the handoff.
	sn.Run(150 * time.Microsecond)
	if len(r.log) != 1 {
		t.Fatalf("expected delivery exactly at the 150µs deadline, log: %v", r.log)
	}
	if !strings.HasPrefix(r.log[0], "150µs ") {
		t.Fatalf("delivery not at link latency: %q", r.log[0])
	}
	if sn.Pending() != 0 {
		t.Fatalf("pending after run: %s", sn.String())
	}
}

// TestTimerCancelBeforeCrossShardSend covers the satellite case: a timer
// on shard A whose payload would cross to shard B is cancelled before it
// fires — nothing may cross, and the network must drain to quiescence.
func TestTimerCancelBeforeCrossShardSend(t *testing.T) {
	sn := NewSharded(1, 2)
	defer sn.Close()
	n0, n1 := sn.Shard(0), sn.Shard(1)
	r := &recorder{net: n1}
	dst := IPv4(10, 5, 0, 2)
	n1.Attach(dst, r)
	src := IPv4(10, 5, 0, 1)
	n0.Attach(src, &recorder{net: n0})

	fired := false
	tm := n0.Schedule(time.Millisecond, func() {
		fired = true
		pkt := n0.AllocPacket()
		pkt.Src = HostPort{IP: src, Port: 1}
		pkt.Dst = HostPort{IP: dst, Port: 2}
		n0.Send(pkt)
	})
	tm.Stop()
	if tm.Active() {
		t.Fatal("stopped timer still active")
	}
	if got := sn.RunUntilIdle(1000); got != 0 {
		t.Fatalf("executed %d events after cancelling the only timer", got)
	}
	if fired || len(r.log) != 0 {
		t.Fatalf("cancelled timer fired (fired=%v log=%v)", fired, r.log)
	}
	if sn.Pending() != 0 {
		t.Fatalf("not quiescent: %s", sn.String())
	}
}

// TestTimerStopAfterHandoffIsInert covers the stale-handle side: once
// the timer fired and its send crossed shards, Stop on the stale handle
// must be a no-op — the in-flight packet still arrives, exactly once.
func TestTimerStopAfterHandoffIsInert(t *testing.T) {
	sn := NewSharded(1, 2)
	defer sn.Close()
	n0, n1 := sn.Shard(0), sn.Shard(1)
	r := &recorder{net: n1}
	dst := IPv4(10, 6, 0, 2)
	n1.Attach(dst, r)
	src := IPv4(10, 6, 0, 1)
	n0.Attach(src, &recorder{net: n0})

	tm := n0.Schedule(time.Millisecond, func() {
		pkt := n0.AllocPacket()
		pkt.Src = HostPort{IP: src, Port: 1}
		pkt.Dst = HostPort{IP: dst, Port: 2}
		n0.Send(pkt)
	})
	// Run past the timer but short of the delivery: the packet is now
	// queued toward shard B and the handle is stale.
	sn.Run(time.Millisecond + 50*time.Microsecond)
	if len(r.log) != 0 {
		t.Fatalf("delivery arrived early: %v", r.log)
	}
	if tm.Active() {
		t.Fatal("fired timer still reports active")
	}
	tm.Stop() // must not cancel the in-flight delivery
	sn.RunFor(time.Millisecond)
	if len(r.log) != 1 {
		t.Fatalf("expected exactly one delivery, got %v", r.log)
	}
}

// TestTimerRescheduleAcrossShards cancels a cross-shard-bound timer and
// reschedules it later: exactly one delivery, at the new time.
func TestTimerRescheduleAcrossShards(t *testing.T) {
	sn := NewSharded(1, 2)
	defer sn.Close()
	n0, n1 := sn.Shard(0), sn.Shard(1)
	r := &recorder{net: n1}
	dst := IPv4(10, 7, 0, 2)
	n1.Attach(dst, r)
	src := IPv4(10, 7, 0, 1)
	n0.Attach(src, &recorder{net: n0})

	fire := func() {
		pkt := n0.AllocPacket()
		pkt.Src = HostPort{IP: src, Port: 1}
		pkt.Dst = HostPort{IP: dst, Port: 2}
		n0.Send(pkt)
	}
	tm := n0.Schedule(time.Millisecond, fire)
	tm.Stop()
	n0.Schedule(3*time.Millisecond, fire)
	sn.RunFor(10 * time.Millisecond)
	if len(r.log) != 1 {
		t.Fatalf("expected exactly one delivery, got %v", r.log)
	}
	want := fmt.Sprintf("%v ", 3*time.Millisecond+150*time.Microsecond)
	if !strings.HasPrefix(r.log[0], want) {
		t.Fatalf("delivery at %q, want prefix %q", r.log[0], want)
	}
}

// TestRunUntilIdleDrainsCrossShardQueues chains relays across shards
// over 30ms Internet links — each hop sits far beyond the lookahead, so
// RunUntilIdle must keep jumping windows and draining handoff queues
// until true quiescence.
func TestRunUntilIdleDrainsCrossShardQueues(t *testing.T) {
	const hops = 9
	sn := NewSharded(1, 3)
	defer sn.Close()
	ips := make([]IP, hops+1)
	for i := range ips {
		ips[i] = IPv4(100, 8, 0, byte(i+1)) // non-DC: 30ms per hop
	}
	final := &recorder{net: sn.Shard(hops % 3)}
	sn.Shard(hops%3).Attach(ips[hops], final)
	for i := hops - 1; i >= 0; i-- {
		nw := sn.Shard(i % 3)
		next := ips[i+1]
		nw.Attach(ips[i], NodeFunc(func(pkt *Packet) {
			pkt.Src, pkt.Dst = pkt.Dst, HostPort{IP: next, Port: pkt.Dst.Port}
			nw.Send(pkt)
		}))
	}
	pkt := sn.Shard(0).AllocPacket()
	pkt.Src = HostPort{IP: ips[0], Port: 9}
	pkt.Dst = HostPort{IP: ips[0], Port: 9}
	sn.Shard(0).Send(pkt)

	executed := sn.RunUntilIdle(1 << 20)
	if executed == 0 {
		t.Fatal("RunUntilIdle executed nothing")
	}
	if len(final.log) != 1 {
		t.Fatalf("chain did not complete: %v", final.log)
	}
	want := fmt.Sprintf("%v ", time.Duration(hops+1)*30*time.Millisecond)
	if !strings.HasPrefix(final.log[0], want) {
		t.Fatalf("final delivery %q, want prefix %q", final.log[0], want)
	}
	if sn.Pending() != 0 {
		t.Fatalf("handoff queues not drained: %s", sn.String())
	}
	if sn.Delivered() != hops+1 {
		t.Fatalf("delivered %d, want %d", sn.Delivered(), hops+1)
	}
}

// TestShardedStatsAggregation exercises the satellite fix: Pending,
// Delivered, DroppedNoRoute, DroppedByPolicy, and String must aggregate
// across shards (and count handoffs still in flight).
func TestShardedStatsAggregation(t *testing.T) {
	sn := NewSharded(1, 4)
	defer sn.Close()
	src := IPv4(10, 9, 0, 1)
	sn.Shard(0).Attach(src, &recorder{net: sn.Shard(0)})
	for s := 1; s < 4; s++ {
		nw := sn.Shard(s)
		nw.Attach(IPv4(10, 9, 0, byte(s+1)), &recorder{net: nw})
	}
	sn.SetDropFunc(func(pkt *Packet) bool { return pkt.Dst.Port == 666 })
	noRoute := IPv4(10, 9, 9, 9)
	sn.Place(noRoute, 2) // never attached: counted as no-route on shard 2

	send := func(dst IP, port uint16) {
		pkt := sn.Shard(0).AllocPacket()
		pkt.Src = HostPort{IP: src, Port: 1}
		pkt.Dst = HostPort{IP: dst, Port: port}
		sn.Shard(0).Send(pkt)
	}
	for s := 1; s < 4; s++ {
		send(IPv4(10, 9, 0, byte(s+1)), 80)
	}
	send(noRoute, 80)
	send(IPv4(10, 9, 0, 2), 666)

	// Before running, the cross-shard sends sit in handoff queues and
	// must still show up as pending.
	if got := sn.Pending(); got != 5 {
		t.Fatalf("pending before run: %d, want 5 (%s)", got, sn.String())
	}
	sn.RunFor(time.Millisecond)
	if got := sn.Delivered(); got != 3 {
		t.Fatalf("delivered %d, want 3", got)
	}
	if got := sn.DroppedNoRoute(); got != 1 {
		t.Fatalf("droppedNoRoute %d, want 1", got)
	}
	if got := sn.DroppedByPolicy(); got != 1 {
		t.Fatalf("droppedByPolicy %d, want 1", got)
	}
	if got := sn.Pending(); got != 0 {
		t.Fatalf("pending after run: %d", got)
	}
	if sn.Executed() == 0 {
		t.Fatal("executed counter did not advance")
	}
	s := sn.String()
	if !strings.Contains(s, "shards=4") || !strings.Contains(s, "delivered=3") || !strings.Contains(s, "dropped=1+1") {
		t.Fatalf("aggregate String missing fields: %s", s)
	}
}

// TestLookaheadViolationPanics: a lookahead wider than the narrowest
// cross-shard link breaks the conservative invariant; the coordinator
// must detect the violating handoff and panic on the driver goroutine.
func TestLookaheadViolationPanics(t *testing.T) {
	sn := NewSharded(1, 2)
	defer sn.Close()
	sn.SetLookahead(time.Millisecond) // > the 150µs intra-DC latency
	n0, n1 := sn.Shard(0), sn.Shard(1)
	src, dst := IPv4(10, 10, 0, 1), IPv4(10, 10, 0, 2)
	n0.Attach(src, &recorder{net: n0})
	n1.Attach(dst, &recorder{net: n1})
	n0.Schedule(500*time.Microsecond, func() {
		pkt := n0.AllocPacket()
		pkt.Src = HostPort{IP: src, Port: 1}
		pkt.Dst = HostPort{IP: dst, Port: 2}
		n0.Send(pkt)
	})
	defer func() {
		if r := recover(); r == nil {
			t.Fatal("expected lookahead-violation panic")
		} else if !strings.Contains(fmt.Sprint(r), "lookahead") {
			t.Fatalf("unexpected panic: %v", r)
		}
	}()
	sn.RunFor(5 * time.Millisecond)
}

// TestShardPlacementPinning: attaching the same IP from two different
// shards is a placement bug and must panic.
func TestShardPlacementPinning(t *testing.T) {
	sn := NewSharded(1, 2)
	defer sn.Close()
	ip := IPv4(10, 11, 0, 1)
	sn.Shard(0).Attach(ip, &recorder{net: sn.Shard(0)})
	if got := sn.ShardFor(ip); got != 0 {
		t.Fatalf("ShardFor after attach: %d, want 0", got)
	}
	defer func() {
		if recover() == nil {
			t.Fatal("expected cross-shard re-attach to panic")
		}
	}()
	sn.Shard(1).Attach(ip, &recorder{net: sn.Shard(1)})
}
