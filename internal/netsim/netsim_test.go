package netsim

import (
	"testing"
	"testing/quick"
	"time"
)

func TestIPString(t *testing.T) {
	cases := []struct {
		ip   IP
		want string
	}{
		{IPv4(10, 0, 0, 1), "10.0.0.1"},
		{IPv4(192, 168, 1, 255), "192.168.1.255"},
		{IPv4(0, 0, 0, 0), "0.0.0.0"},
		{IPv4(255, 255, 255, 255), "255.255.255.255"},
	}
	for _, c := range cases {
		if got := c.ip.String(); got != c.want {
			t.Errorf("IP(%d).String() = %q, want %q", uint32(c.ip), got, c.want)
		}
	}
}

func TestIPv4RoundTrip(t *testing.T) {
	f := func(a, b, c, d byte) bool {
		ip := IPv4(a, b, c, d)
		return byte(ip>>24) == a && byte(ip>>16) == b && byte(ip>>8) == c && byte(ip) == d
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestFourTupleReverse(t *testing.T) {
	ft := FourTuple{
		Src: HostPort{IPv4(1, 2, 3, 4), 1000},
		Dst: HostPort{IPv4(10, 0, 0, 1), 80},
	}
	rev := ft.Reverse()
	if rev.Src != ft.Dst || rev.Dst != ft.Src {
		t.Fatalf("Reverse() = %v", rev)
	}
	if rev.Reverse() != ft {
		t.Fatalf("double reverse changed tuple: %v", rev.Reverse())
	}
}

func TestFlagsString(t *testing.T) {
	if got := (FlagSYN | FlagACK).String(); got != "SYN|ACK" {
		t.Errorf("got %q", got)
	}
	if got := TCPFlags(0).String(); got != "-" {
		t.Errorf("zero flags: got %q", got)
	}
	if !(FlagSYN | FlagACK).Has(FlagSYN) {
		t.Error("Has(SYN) should be true")
	}
	if (FlagSYN).Has(FlagSYN | FlagACK) {
		t.Error("Has(SYN|ACK) should be false for SYN alone")
	}
}

func TestPacketSeqEnd(t *testing.T) {
	p := &Packet{Seq: 100, Payload: []byte("hello")}
	if p.SeqEnd() != 105 {
		t.Errorf("data SeqEnd = %d, want 105", p.SeqEnd())
	}
	p = &Packet{Seq: 100, Flags: FlagSYN}
	if p.SeqEnd() != 101 {
		t.Errorf("SYN SeqEnd = %d, want 101", p.SeqEnd())
	}
	p = &Packet{Seq: 100, Flags: FlagFIN, Payload: []byte("x")}
	if p.SeqEnd() != 102 {
		t.Errorf("FIN+data SeqEnd = %d, want 102", p.SeqEnd())
	}
}

func TestPacketClone(t *testing.T) {
	p := &Packet{
		Src:     HostPort{IPv4(1, 1, 1, 1), 5},
		Payload: []byte("abc"),
		Outer:   &Encap{Src: IPv4(10, 0, 0, 1), Dst: IPv4(10, 0, 0, 2)},
	}
	q := p.Clone()
	q.Payload[0] = 'z'
	q.Outer.Dst = IPv4(10, 0, 0, 3)
	if p.Payload[0] != 'a' {
		t.Error("clone shares payload")
	}
	if p.Outer.Dst != IPv4(10, 0, 0, 2) {
		t.Error("clone shares outer header")
	}
}

func TestScheduleOrdering(t *testing.T) {
	n := New(1)
	var order []int
	n.Schedule(20*time.Millisecond, func() { order = append(order, 2) })
	n.Schedule(10*time.Millisecond, func() { order = append(order, 1) })
	n.Schedule(30*time.Millisecond, func() { order = append(order, 3) })
	n.RunUntilIdle(100)
	if len(order) != 3 || order[0] != 1 || order[1] != 2 || order[2] != 3 {
		t.Fatalf("order = %v", order)
	}
	if n.Now() != 30*time.Millisecond {
		t.Fatalf("clock = %v, want 30ms", n.Now())
	}
}

func TestScheduleTieBreaksFIFO(t *testing.T) {
	n := New(1)
	var order []int
	for i := 0; i < 10; i++ {
		i := i
		n.Schedule(time.Millisecond, func() { order = append(order, i) })
	}
	n.RunUntilIdle(100)
	for i, v := range order {
		if v != i {
			t.Fatalf("events with equal time not FIFO: %v", order)
		}
	}
}

func TestTimerStop(t *testing.T) {
	n := New(1)
	fired := false
	tm := n.Schedule(time.Millisecond, func() { fired = true })
	tm.Stop()
	n.RunUntilIdle(10)
	if fired {
		t.Fatal("stopped timer fired")
	}
	// Stopping again must be harmless, as must stopping a zero timer.
	tm.Stop()
	var zeroTimer Timer
	zeroTimer.Stop()
	if zeroTimer.Active() {
		t.Fatal("zero timer reports active")
	}
	if tm.Active() {
		t.Fatal("stopped timer reports active")
	}
}

func TestRunDeadline(t *testing.T) {
	n := New(1)
	var fired []time.Duration
	for _, d := range []time.Duration{5, 10, 15, 20} {
		d := d * time.Millisecond
		n.Schedule(d, func() { fired = append(fired, d) })
	}
	n.Run(12 * time.Millisecond)
	if len(fired) != 2 {
		t.Fatalf("fired %v before deadline, want 2 events", fired)
	}
	if n.Now() != 12*time.Millisecond {
		t.Fatalf("clock = %v, want 12ms", n.Now())
	}
	n.Run(100 * time.Millisecond)
	if len(fired) != 4 {
		t.Fatalf("fired %v after second run", fired)
	}
}

func TestSendDeliversWithLatency(t *testing.T) {
	n := New(1)
	dst := IPv4(10, 0, 0, 2)
	var gotAt time.Duration
	var got *Packet
	n.Attach(dst, NodeFunc(func(p *Packet) {
		gotAt = n.Now()
		got = p
	}))
	pkt := &Packet{
		Src:     HostPort{IPv4(10, 0, 0, 1), 1000},
		Dst:     HostPort{dst, 80},
		Payload: []byte("hi"),
	}
	n.Send(pkt)
	n.RunUntilIdle(10)
	if got == nil {
		t.Fatal("packet not delivered")
	}
	if gotAt != 150*time.Microsecond {
		t.Fatalf("intra-DC delivery at %v, want 150µs", gotAt)
	}
}

func TestDefaultLatencyZones(t *testing.T) {
	client := IPv4(100, 1, 1, 1)
	dc1 := IPv4(10, 0, 0, 1)
	dc2 := IPv4(10, 0, 0, 2)
	if d := DefaultLatency(dc1, dc2); d != 150*time.Microsecond {
		t.Errorf("intra-DC = %v", d)
	}
	if d := DefaultLatency(client, dc1); d != 30*time.Millisecond {
		t.Errorf("client->DC = %v", d)
	}
	if d := DefaultLatency(dc1, client); d != 30*time.Millisecond {
		t.Errorf("DC->client = %v", d)
	}
}

func TestSendToDetachedNodeDrops(t *testing.T) {
	n := New(1)
	dst := IPv4(10, 0, 0, 2)
	delivered := 0
	n.Attach(dst, NodeFunc(func(p *Packet) { delivered++ }))
	n.Detach(dst)
	n.Send(&Packet{Src: HostPort{IPv4(10, 0, 0, 1), 1}, Dst: HostPort{dst, 2}})
	n.RunUntilIdle(10)
	if delivered != 0 {
		t.Fatal("delivered to detached node")
	}
	if n.DroppedNoRoute != 1 {
		t.Fatalf("DroppedNoRoute = %d, want 1", n.DroppedNoRoute)
	}
}

func TestEncapRouting(t *testing.T) {
	n := New(1)
	inner := IPv4(10, 0, 0, 2)
	outer := IPv4(10, 0, 0, 3)
	reached := ""
	n.Attach(inner, NodeFunc(func(p *Packet) { reached = "inner" }))
	n.Attach(outer, NodeFunc(func(p *Packet) { reached = "outer" }))
	n.Send(&Packet{
		Src:   HostPort{IPv4(10, 0, 0, 1), 1},
		Dst:   HostPort{inner, 80},
		Outer: &Encap{Src: IPv4(10, 0, 0, 1), Dst: outer},
	})
	n.RunUntilIdle(10)
	if reached != "outer" {
		t.Fatalf("encapsulated packet reached %q, want outer node", reached)
	}
}

func TestDropFunc(t *testing.T) {
	n := New(1)
	dst := IPv4(10, 0, 0, 2)
	delivered := 0
	n.Attach(dst, NodeFunc(func(p *Packet) { delivered++ }))
	n.SetDropFunc(func(p *Packet) bool { return p.Flags.Has(FlagSYN) })
	n.Send(&Packet{Src: HostPort{IPv4(10, 0, 0, 1), 1}, Dst: HostPort{dst, 2}, Flags: FlagSYN})
	n.Send(&Packet{Src: HostPort{IPv4(10, 0, 0, 1), 1}, Dst: HostPort{dst, 2}, Flags: FlagACK})
	n.RunUntilIdle(10)
	if delivered != 1 {
		t.Fatalf("delivered = %d, want 1 (SYN dropped)", delivered)
	}
	if n.DroppedByPolicy != 1 {
		t.Fatalf("DroppedByPolicy = %d, want 1", n.DroppedByPolicy)
	}
}

func TestTracer(t *testing.T) {
	n := New(1)
	dst := IPv4(10, 0, 0, 2)
	n.Attach(dst, NodeFunc(func(p *Packet) {}))
	var events []TraceEvent
	n.SetTracer(func(ev TraceEvent) { events = append(events, ev) })
	n.Send(&Packet{Src: HostPort{IPv4(10, 0, 0, 1), 1}, Dst: HostPort{dst, 2}})
	n.Send(&Packet{Src: HostPort{IPv4(10, 0, 0, 1), 1}, Dst: HostPort{IPv4(10, 0, 9, 9), 2}})
	n.RunUntilIdle(10)
	if len(events) != 2 {
		t.Fatalf("trace events = %d, want 2", len(events))
	}
	if events[0].Dropped || !events[1].Dropped {
		t.Fatalf("trace drop markers wrong: %+v", events)
	}
	if events[1].Reason != "no route" {
		t.Fatalf("drop reason = %q", events[1].Reason)
	}
}

func TestDeterminism(t *testing.T) {
	run := func() []time.Duration {
		n := New(42)
		n.SetJitter(0.2)
		dst := IPv4(10, 0, 0, 2)
		var times []time.Duration
		n.Attach(dst, NodeFunc(func(p *Packet) { times = append(times, n.Now()) }))
		for i := 0; i < 50; i++ {
			n.Send(&Packet{Src: HostPort{IPv4(10, 0, 0, 1), 1}, Dst: HostPort{dst, 2}})
		}
		n.RunUntilIdle(1000)
		return times
	}
	a, b := run(), run()
	if len(a) != len(b) {
		t.Fatalf("different event counts: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("run diverged at event %d: %v vs %v", i, a[i], b[i])
		}
	}
}

func TestJitterBounded(t *testing.T) {
	n := New(7)
	n.SetJitter(0.5)
	dst := IPv4(10, 0, 0, 2)
	base := 150 * time.Microsecond
	var times []time.Duration
	n.Attach(dst, NodeFunc(func(p *Packet) { times = append(times, n.Now()) }))
	for i := 0; i < 200; i++ {
		nn := New(int64(i))
		nn.SetJitter(0.5)
		at := time.Duration(-1)
		nn.Attach(dst, NodeFunc(func(p *Packet) { at = nn.Now() }))
		nn.Send(&Packet{Src: HostPort{IPv4(10, 0, 0, 1), 1}, Dst: HostPort{dst, 2}})
		nn.RunUntilIdle(10)
		times = append(times, at)
	}
	lo, hi := base/2, base*3/2
	for _, d := range times {
		if d < lo || d > hi {
			t.Fatalf("jittered latency %v outside [%v,%v]", d, lo, hi)
		}
	}
}

func TestHostDemux(t *testing.T) {
	n := New(1)
	h := NewHost(n, IPv4(10, 0, 0, 5))
	var listenerGot, connGot, defaultGot int
	h.Listen(80, PortHandlerFunc(func(p *Packet) { listenerGot++ }))
	remote := HostPort{IPv4(10, 0, 0, 6), 999}
	h.Register(80, remote, PortHandlerFunc(func(p *Packet) { connGot++ }))
	h.Default = PortHandlerFunc(func(p *Packet) { defaultGot++ })

	send := func(src HostPort, dstPort uint16) {
		n.Send(&Packet{Src: src, Dst: HostPort{h.IP(), dstPort}})
		n.RunUntilIdle(10)
	}
	send(remote, 80) // matches the registered connection
	if connGot != 1 || listenerGot != 0 {
		t.Fatalf("conn=%d listener=%d after registered-flow packet", connGot, listenerGot)
	}
	send(HostPort{IPv4(10, 0, 0, 7), 1}, 80) // unknown remote -> listener
	if listenerGot != 1 {
		t.Fatalf("listener = %d, want 1", listenerGot)
	}
	send(HostPort{IPv4(10, 0, 0, 7), 1}, 81) // no listener -> default
	if defaultGot != 1 {
		t.Fatalf("default = %d, want 1", defaultGot)
	}
	h.Unregister(80, remote)
	send(remote, 80) // now falls back to the listener
	if listenerGot != 2 {
		t.Fatalf("listener = %d after unregister, want 2", listenerGot)
	}
}

func TestHostDecapsulates(t *testing.T) {
	n := New(1)
	h := NewHost(n, IPv4(10, 0, 0, 5))
	var got *Packet
	h.Default = PortHandlerFunc(func(p *Packet) { got = p })
	n.Send(&Packet{
		Src:   HostPort{IPv4(10, 0, 0, 1), 1},
		Dst:   HostPort{IPv4(10, 0, 0, 99), 80}, // inner dst is elsewhere (a VIP)
		Outer: &Encap{Src: IPv4(10, 0, 0, 1), Dst: h.IP()},
	})
	n.RunUntilIdle(10)
	if got == nil {
		t.Fatal("host did not receive encapsulated packet")
	}
	if got.Outer != nil {
		t.Fatal("host did not strip outer header")
	}
	if got.Dst.IP != IPv4(10, 0, 0, 99) {
		t.Fatalf("inner dst = %v", got.Dst)
	}
}

func TestHostAllocPort(t *testing.T) {
	n := New(1)
	h := NewHost(n, IPv4(10, 0, 0, 5))
	seen := make(map[uint16]bool)
	for i := 0; i < 1000; i++ {
		p := h.AllocPort()
		if seen[p] {
			t.Fatalf("port %d allocated twice without reuse", p)
		}
		seen[p] = true
		// Simulate the port being consumed by a connection so it cannot be
		// handed out again while in use.
		h.Register(p, HostPort{IPv4(10, 0, 0, 6), 1}, PortHandlerFunc(func(*Packet) {}))
	}
}

func TestHostDetachReattach(t *testing.T) {
	n := New(1)
	h := NewHost(n, IPv4(10, 0, 0, 5))
	got := 0
	h.Listen(80, PortHandlerFunc(func(p *Packet) { got++ }))
	send := func() {
		n.Send(&Packet{Src: HostPort{IPv4(10, 0, 0, 1), 1}, Dst: HostPort{h.IP(), 80}})
		n.RunUntilIdle(10)
	}
	send()
	h.Detach()
	send()
	h.Reattach()
	send()
	if got != 2 {
		t.Fatalf("delivered %d, want 2 (middle send dropped)", got)
	}
}
