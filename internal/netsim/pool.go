package netsim

// Pooling for the simulator hot path. The event loop is single-threaded,
// so freelists are plain slices — no sync.Pool, no locks, no per-get
// interface conversions.
//
// Ownership discipline for pooled packets:
//   - The sender builds a packet with AllocPacket and hands ownership to
//     the network via Send.
//   - deliver hands ownership to the destination node. Forwarders that
//     re-Send the packet (possibly after mutating headers in place)
//     transfer ownership onward; terminal consumers call ReleasePacket
//     once they have copied out whatever payload bytes they keep.
//   - Payload sub-slices handed to OnData callbacks are read-only and
//     must not be retained past the callback unless copied.
//   - While a tracer is installed, deliver clears the pooled flag so
//     retained trace packets are never recycled under the tracer.

// AllocPacket returns a zeroed packet from the pool (or a fresh one),
// marked pooled. The caller owns it until Send.
func (n *Network) AllocPacket() *Packet {
	if k := len(n.pktFree); k > 0 {
		p := n.pktFree[k-1]
		n.pktFree = n.pktFree[:k-1]
		p.pooled = true
		return p
	}
	return &Packet{pooled: true}
}

// ReleasePacket returns a pooled packet to the pool. Releasing a
// non-pooled (or already-released) packet is a no-op, so handlers can
// call it unconditionally on every packet they terminate.
func (n *Network) ReleasePacket(p *Packet) {
	if p == nil || !p.pooled {
		return
	}
	*p = Packet{} // drop payload and header refs; pooled=false guards double release
	n.pktFree = append(n.pktFree, p)
}

// ShallowClone returns a pooled copy of p sharing its payload slice.
// Used by forwarders that must not mutate a non-pooled original but do
// not need a private copy of the bytes.
func (n *Network) ShallowClone(p *Packet) *Packet {
	q := n.AllocPacket()
	pooled := q.pooled
	*q = *p
	q.pooled = pooled
	if p.Outer != nil {
		q.outerStore = *p.Outer
		q.Outer = &q.outerStore
	}
	return q
}

// AllocBuf returns a byte slice with length n and capacity >= n from the
// buffer pool. Contents are unspecified; the caller must overwrite them.
func (nw *Network) AllocBuf(n int) []byte {
	if k := len(nw.bufFree); k > 0 {
		b := nw.bufFree[k-1]
		if cap(b) >= n {
			nw.bufFree = nw.bufFree[:k-1]
			return b[:n]
		}
	}
	return make([]byte, n)
}

// ReleaseBuf returns a buffer obtained from AllocBuf to the pool. The
// caller must not use the slice (or any sub-slice of it) afterwards.
func (nw *Network) ReleaseBuf(b []byte) {
	if cap(b) == 0 {
		return
	}
	nw.bufFree = append(nw.bufFree, b[:0])
}
