package netsim

import (
	"math/bits"
	"time"
)

// The scheduler is a hierarchical-horizon timer wheel: near-future events
// (within wheelSpan of the cursor) go into fixed-width slots with O(1)
// insertion; far-future events (retransmission timeouts, idle timers)
// fall back to a typed binary heap and migrate into the wheel as the
// cursor approaches them. Events due at or before the cursor's slot live
// in curHeap, a small typed min-heap ordered by (at, seq), which is what
// preserves the bit-for-bit deterministic execution order the old global
// heap provided: ties on virtual time always break by schedule sequence.
//
// All event records are pooled (see freeEvent); a generation counter on
// each record lets Timer handles detect reuse, so cancellation needs no
// per-timer allocation.
const (
	// slotShift gives a slot width of 2^19 ns ≈ 524 µs: fine enough that
	// intra-DC hops (150 µs) land at most one slot ahead, coarse enough
	// that a 30 ms Internet hop stays inside the wheel.
	slotShift = 19
	wheelSize = 256 // power of two; horizon ≈ 134 ms
	wheelMask = wheelSize - 1
)

type eventKind uint8

const (
	evFunc    eventKind = iota // run fn()
	evDeliver                  // deliver pkt to dst (typed fast path, no closure)
)

// event is a scheduled occurrence on the virtual clock. seq breaks ties
// so that events scheduled earlier fire earlier, keeping runs
// deterministic. Records are pooled; gen increments on every recycle so
// stale Timer handles become inert.
//
// A delivery event may carry a train: additional packets due at the same
// instant that ride this record instead of their own (see Network.Send).
// Each train entry consumed a sequence number when it was appended, so
// the burst dispatch in execute replays exactly the (at, seq) order the
// unbatched scheduler would have produced.
type event struct {
	at        time.Duration
	seq       uint64
	gen       uint64
	kind      eventKind
	cancelled bool
	fn        func()
	pkt       *Packet
	dst       IP
	train     *trainBox
}

// trainEntry is one extra delivery coalesced onto an open evDeliver
// event. Entries never get Timer handles and are never cancelled.
type trainEntry struct {
	pkt *Packet
	dst IP
}

// trainBox holds a train's entries behind one pointer, keeping the event
// record at a single cache line for the (overwhelmingly common) untrained
// case.
type trainBox struct {
	entries []trainEntry
}

// trainMax bounds how many deliveries one event record may carry, so
// pooled train slices stay cache-friendly and a pathological burst cannot
// grow one unbounded backing array.
const trainMax = 256

func eventLess(a, b *event) bool {
	if a.at != b.at {
		return a.at < b.at
	}
	return a.seq < b.seq
}

// eventQueue is a typed binary min-heap over (at, seq). It replaces
// container/heap to avoid the interface{} boxing on every push and pop.
type eventQueue []*event

func (q *eventQueue) push(e *event) {
	*q = append(*q, e)
	h := *q
	i := len(h) - 1
	for i > 0 {
		parent := (i - 1) / 2
		if !eventLess(h[i], h[parent]) {
			break
		}
		h[i], h[parent] = h[parent], h[i]
		i = parent
	}
}

func (q *eventQueue) pop() *event {
	h := *q
	n := len(h) - 1
	top := h[0]
	h[0] = h[n]
	h[n] = nil
	h = h[:n]
	*q = h
	siftDown(h, 0)
	return top
}

func siftDown(h []*event, i int) {
	n := len(h)
	for {
		l, r := 2*i+1, 2*i+2
		min := i
		if l < n && eventLess(h[l], h[min]) {
			min = l
		}
		if r < n && eventLess(h[r], h[min]) {
			min = r
		}
		if min == i {
			return
		}
		h[i], h[min] = h[min], h[i]
		i = min
	}
}

// heapify restores the heap property over the whole slice in O(n) — the
// bulk-load path collectSlot uses when it moves an entire wheel slot at
// once. (at, seq) keys are unique, so pop order is identical however the
// heap was built.
func (q *eventQueue) heapify() {
	h := *q
	for i := len(h)/2 - 1; i >= 0; i-- {
		siftDown(h, i)
	}
}

// Timer is a cancellable handle to a scheduled event. The zero value is
// inert: Stop and Active on it are no-ops. Handles stay valid (and
// become inert) after the event fires or is cancelled, even though the
// underlying record is recycled — the generation check detects reuse.
type Timer struct {
	net *Network
	ev  *event
	gen uint64
}

// Stop prevents the timer from firing. Stopping an already-fired,
// already-stopped, or zero timer is a no-op.
func (t Timer) Stop() {
	if t.ev != nil && t.ev.gen == t.gen && !t.ev.cancelled {
		t.ev.cancelled = true
		t.net.cancelledPending++
	}
}

// Active reports whether the timer is still scheduled to fire.
func (t Timer) Active() bool {
	return t.ev != nil && t.ev.gen == t.gen && !t.ev.cancelled
}

// allocEvent takes a record off the freelist (or allocates one).
func (n *Network) allocEvent() *event {
	if k := len(n.evFree); k > 0 {
		e := n.evFree[k-1]
		n.evFree = n.evFree[:k-1]
		return e
	}
	return &event{}
}

// freeEvent recycles a record. The generation bump invalidates any Timer
// handle still pointing at it. execute detaches trains before freeing;
// the defensive release here only matters if an unfired trained event is
// ever discarded (not possible today — deliveries are never cancelled).
func (n *Network) freeEvent(e *event) {
	if e.train != nil {
		n.freeTrain(e.train)
		e.train = nil
	}
	e.fn = nil
	e.pkt = nil
	e.cancelled = false
	e.gen++
	n.evFree = append(n.evFree, e)
}

// allocTrain takes a train box off the freelist (or allocates one).
func (n *Network) allocTrain() *trainBox {
	if k := len(n.trainFree); k > 0 {
		t := n.trainFree[k-1]
		n.trainFree = n.trainFree[:k-1]
		return t
	}
	return &trainBox{entries: make([]trainEntry, 0, 16)}
}

// freeTrain recycles a train box, dropping its packet references. One
// pool operation retires the whole burst — pool maintenance batches at
// the same granularity the deliveries did.
func (n *Network) freeTrain(t *trainBox) {
	for i := range t.entries {
		t.entries[i] = trainEntry{}
	}
	t.entries = t.entries[:0]
	n.trainFree = append(n.trainFree, t)
}

// scheduleEvent files e into the wheel, the current-slot heap, or the
// overflow heap. e.at must be >= the time of the last executed event.
func (n *Network) scheduleEvent(e *event) {
	// Filing any other event at the open train's instant would interleave
	// a sequence number between the train head and later appends, so the
	// train must stop accepting members to preserve (at, seq) order.
	if n.openTrain != nil && e.at == n.openAt && e != n.openTrain {
		n.openTrain = nil
	}
	slot := int64(e.at >> slotShift)
	switch {
	case slot <= n.curSlot:
		// Due in (or before) the cursor's slot — the cursor may run ahead
		// of the clock after idle jumps, so "before" is possible and the
		// heap ordering still executes these first.
		n.curHeap.push(e)
	case slot < n.curSlot+wheelSize:
		idx := int(slot & wheelMask)
		n.slots[idx] = append(n.slots[idx], e)
		n.occupied[idx>>6] |= 1 << (uint(idx) & 63)
	default:
		n.overflow.push(e)
	}
	n.queued++
}

// discard drops a cancelled event encountered during popping/migration.
// Deliveries are never cancelled, so e cannot be the open train today;
// the clear is defensive against that ever changing.
func (n *Network) discard(e *event) {
	if e == n.openTrain {
		n.openTrain = nil
	}
	n.queued--
	n.cancelledPending--
	n.freeEvent(e)
}

// nextEvent positions the next live event at the top of curHeap and
// returns it, draining cancelled events where they are popped. Returns
// nil when no events remain.
func (n *Network) nextEvent() *event {
	for {
		for len(n.curHeap) > 0 {
			e := n.curHeap[0]
			if e.cancelled {
				n.curHeap.pop()
				n.discard(e)
				continue
			}
			return e
		}
		if !n.advance() {
			return nil
		}
	}
}

// advance moves the cursor to the next non-empty slot (migrating
// overflow events that have come within the horizon) and loads it into
// curHeap. Returns false when the scheduler is empty.
func (n *Network) advance() bool {
	for n.queued > 0 {
		// Pull overflow events that now fit inside the wheel horizon.
		for len(n.overflow) > 0 {
			e := n.overflow[0]
			if int64(e.at>>slotShift) >= n.curSlot+wheelSize {
				break
			}
			n.overflow.pop()
			if e.cancelled {
				n.discard(e)
				continue
			}
			n.queued-- // scheduleEvent re-counts it
			n.scheduleEvent(e)
		}
		if len(n.curHeap) > 0 {
			return true
		}
		if k := n.nextOccupied(); k > 0 {
			n.curSlot += int64(k)
			n.collectSlot(int(n.curSlot & wheelMask))
			continue // curHeap is non-empty now; loop exits above
		}
		if len(n.overflow) == 0 {
			return false
		}
		// Wheel empty: jump the cursor to the overflow's first event. The
		// target index may hold stale cancelled events from a previous
		// lap; collect them now, because the bitmap scan never revisits
		// the cursor's own index.
		n.curSlot = int64(n.overflow[0].at >> slotShift)
		n.collectSlot(int(n.curSlot & wheelMask))
	}
	return false
}

// collectSlot moves every event parked at wheel index idx into curHeap
// and clears its occupancy bit. A slot cascading into an empty heap is
// bulk-loaded with one O(n) heapify instead of n O(log n) pushes —
// same batching granularity as packet trains, same resulting pop order.
func (n *Network) collectSlot(idx int) {
	if n.occupied[idx>>6]&(1<<(uint(idx)&63)) == 0 {
		return
	}
	if len(n.curHeap) == 0 && len(n.slots[idx]) > 4 {
		n.curHeap = append(n.curHeap, n.slots[idx]...)
		n.curHeap.heapify()
		for i := range n.slots[idx] {
			n.slots[idx][i] = nil
		}
	} else {
		for i, e := range n.slots[idx] {
			n.curHeap.push(e)
			n.slots[idx][i] = nil
		}
	}
	n.slots[idx] = n.slots[idx][:0]
	n.occupied[idx>>6] &^= 1 << (uint(idx) & 63)
}

// nextOccupied scans the occupancy bitmap circularly from the slot after
// the cursor and returns the offset (1..wheelSize-1) of the first
// occupied slot, or -1 if the wheel is empty.
func (n *Network) nextOccupied() int {
	base := int(n.curSlot) & wheelMask
	for k := 1; k < wheelSize; {
		idx := (base + k) & wheelMask
		word := n.occupied[idx>>6] >> (uint(idx) & 63)
		if word != 0 {
			k += bits.TrailingZeros64(word)
			if k >= wheelSize {
				return -1
			}
			return k
		}
		k += 64 - (idx & 63)
	}
	return -1
}

// syncCursor catches the cursor up after the clock jumped (Run hitting
// its deadline with no events left to execute before it). Only safe when
// every slot between the old cursor and the clock is known to hold no
// live events; callers guarantee that by having drained them first.
func (n *Network) syncCursor() {
	if target := int64(n.now >> slotShift); target > n.curSlot && len(n.curHeap) == 0 {
		// The target slot itself may hold events later than the clock
		// within the same slot; they must move to curHeap because this
		// index will not be reloaded during the current lap.
		n.curSlot = target
		n.collectSlot(int(target & wheelMask))
	}
}
