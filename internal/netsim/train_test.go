package netsim

import (
	"fmt"
	"testing"
	"time"
)

// trainRig attaches a logging sink at dst and returns the log. Every
// delivered packet is recorded as "t=<now> seq=<Seq>" so order, timing,
// and identity are all captured.
type trainRig struct {
	n   *Network
	dst IP
	log []string
}

func newTrainRig(seed int64) *trainRig {
	r := &trainRig{n: New(seed), dst: IPv4(10, 0, 0, 2)}
	r.n.Attach(r.dst, NodeFunc(func(p *Packet) {
		r.log = append(r.log, fmt.Sprintf("t=%v seq=%d", r.n.Now(), p.Seq))
		r.n.ReleasePacket(p)
	}))
	return r
}

func (r *trainRig) send(seq uint32) {
	pkt := r.n.AllocPacket()
	pkt.Src = HostPort{IPv4(10, 0, 0, 1), 1000}
	pkt.Dst = HostPort{r.dst, 80}
	pkt.Flags = FlagACK
	pkt.Seq = seq
	r.n.Send(pkt)
}

// Back-to-back sends with no intervening event land at the same instant
// and must ride one event record, while delivering exactly like
// one-record-per-packet scheduling: same order, same Pending/Executed.
func TestTrainCoalescesSameInstant(t *testing.T) {
	const k = 8
	r := newTrainRig(1)
	for i := 0; i < k; i++ {
		r.send(uint32(i))
	}
	if got := r.n.Pending(); got != k {
		t.Fatalf("Pending = %d, want %d", got, k)
	}
	if ran := r.n.RunUntilIdle(1000); ran != k {
		t.Fatalf("RunUntilIdle = %d, want %d", ran, k)
	}
	if r.n.Executed() != k {
		t.Fatalf("Executed = %d, want %d", r.n.Executed(), k)
	}
	if r.n.Coalesced != k-1 {
		t.Fatalf("Coalesced = %d, want %d", r.n.Coalesced, k-1)
	}
	for i, line := range r.log {
		want := fmt.Sprintf("t=150µs seq=%d", i)
		if line != want {
			t.Fatalf("delivery %d = %q, want %q", i, line, want)
		}
	}
}

// A timer filed at the open train's instant would interleave a sequence
// number between the train head and later appends, so it must close the
// train; the later send gets its own record and fires after the timer.
func TestTrainClosedBySameInstantTimer(t *testing.T) {
	r := newTrainRig(1)
	r.send(0) // opens a train due at 150µs
	fired := false
	r.n.Schedule(150*time.Microsecond, func() {
		fired = true
		if len(r.log) != 1 {
			t.Fatalf("timer fired with %d deliveries done, want 1", len(r.log))
		}
	})
	r.send(1) // must NOT join the (closed) train
	if r.n.Coalesced != 0 {
		t.Fatalf("Coalesced = %d, want 0 (train closed by timer)", r.n.Coalesced)
	}
	r.n.RunUntilIdle(100)
	if !fired {
		t.Fatal("timer never fired")
	}
	if len(r.log) != 2 || r.log[1] != "t=150µs seq=1" {
		t.Fatalf("log = %v", r.log)
	}
}

// Filling a train past trainMax spills onto a fresh record; nothing is
// lost or reordered.
func TestTrainMaxSpills(t *testing.T) {
	const k = trainMax + 10
	r := newTrainRig(1)
	for i := 0; i < k; i++ {
		r.send(uint32(i))
	}
	if ran := r.n.RunUntilIdle(k + 10); ran != k {
		t.Fatalf("RunUntilIdle = %d, want %d", ran, k)
	}
	// Two records carry the burst: the full head train and the spill.
	if r.n.Coalesced != k-2 {
		t.Fatalf("Coalesced = %d, want %d", r.n.Coalesced, k-2)
	}
	for i, line := range r.log {
		if want := fmt.Sprintf("t=150µs seq=%d", i); line != want {
			t.Fatalf("delivery %d = %q, want %q", i, line, want)
		}
	}
}

// SetCoalescing(false) is the reference mode: identical delivery log and
// counts, zero coalescing.
func TestTrainDisabledMatchesEnabled(t *testing.T) {
	run := func(coalesce bool) ([]string, uint64) {
		r := newTrainRig(7)
		r.n.SetCoalescing(coalesce)
		for round := 0; round < 5; round++ {
			for i := 0; i < 6; i++ {
				r.send(uint32(round*10 + i))
			}
			r.n.RunFor(50 * time.Microsecond)
		}
		r.n.RunUntilIdle(1000)
		return r.log, r.n.Executed()
	}
	onLog, onExec := run(true)
	offLog, offExec := run(false)
	if onExec != offExec {
		t.Fatalf("Executed: coalesced=%d reference=%d", onExec, offExec)
	}
	if len(onLog) != len(offLog) {
		t.Fatalf("deliveries: coalesced=%d reference=%d", len(onLog), len(offLog))
	}
	for i := range onLog {
		if onLog[i] != offLog[i] {
			t.Fatalf("delivery %d: coalesced=%q reference=%q", i, onLog[i], offLog[i])
		}
	}
}

// Trains are pooled: a steady stream of bursts must not allocate per
// packet or per train.
func TestTrainAllocFree(t *testing.T) {
	n := New(1)
	dst := IPv4(10, 0, 0, 2)
	delivered := 0
	n.Attach(dst, NodeFunc(func(p *Packet) {
		delivered++
		n.ReleasePacket(p)
	}))
	send := func() {
		pkt := n.AllocPacket()
		pkt.Src = HostPort{IPv4(10, 0, 0, 1), 1000}
		pkt.Dst = HostPort{dst, 80}
		pkt.Flags = FlagACK
		n.Send(pkt)
	}
	// Warm the pools.
	for i := 0; i < 8; i++ {
		send()
	}
	n.RunUntilIdle(100)
	allocs := testing.AllocsPerRun(100, func() {
		for i := 0; i < 8; i++ {
			send()
		}
		n.RunUntilIdle(100)
	})
	if allocs > 0 {
		t.Fatalf("burst send/deliver allocates %.1f/op, want 0", allocs)
	}
}

// FuzzBurstDispatch drives two networks through the same script — one
// with train coalescing (the default), one with a record per delivery
// (the reference) — and requires identical delivery logs, identical
// Executed/Pending counts, and identical timer interleaving. The script
// bytes choose among: send to one of two destinations with one of four
// latencies (including duplicates that force same-instant trains),
// schedule a timer at one of those instants, step one event, or drain.
func FuzzBurstDispatch(f *testing.F) {
	f.Add([]byte{0, 0, 0, 0, 0})          // pure burst, one train
	f.Add([]byte{0, 1, 2, 3, 12, 0, 1})   // mixed latencies + timer
	f.Add([]byte{0, 12, 0, 8, 0, 13, 0})  // timers closing trains mid-burst
	f.Add([]byte{0, 0, 14, 0, 0, 15, 0})  // step/drain between sends
	f.Add([]byte{4, 5, 6, 7, 4, 5, 6, 7}) // second destination interleaved
	f.Fuzz(func(t *testing.T, script []byte) {
		type net struct {
			n   *Network
			log []string
		}
		lat := []time.Duration{150 * time.Microsecond, 150 * time.Microsecond, 300 * time.Microsecond, 1 * time.Millisecond}
		mk := func(coalesce bool) *net {
			w := &net{n: New(42)}
			w.n.SetCoalescing(coalesce)
			for _, ip := range []IP{IPv4(10, 0, 0, 2), IPv4(10, 0, 0, 3)} {
				ip := ip
				w.n.Attach(ip, NodeFunc(func(p *Packet) {
					w.log = append(w.log, fmt.Sprintf("pkt t=%v dst=%v seq=%d flags=%v", w.n.Now(), ip, p.Seq, p.Flags))
					w.n.ReleasePacket(p)
				}))
			}
			return w
		}
		nets := [2]*net{mk(true), mk(false)}
		for i, op := range script {
			for _, w := range nets {
				w := w
				switch {
				case op < 8: // send: bits 0-1 latency, bit 2 destination
					dst := IPv4(10, 0, 0, 2+byte(op>>2)&1)
					d := lat[op&3]
					w.n.SetLatency(func(IP, IP) time.Duration { return d })
					pkt := w.n.AllocPacket()
					pkt.Src = HostPort{IPv4(10, 0, 0, 1), 1000}
					pkt.Dst = HostPort{dst, 80}
					pkt.Seq = uint32(i)
					pkt.Flags = TCPFlags(1 << (op & 3))
					w.n.Send(pkt)
				case op < 12: // timer at one of the latency instants
					d := lat[op&3]
					w.n.Schedule(d, func() {
						w.log = append(w.log, fmt.Sprintf("timer t=%v", w.n.Now()))
					})
				case op < 14: // step a single event
					w.n.Step()
				default: // drain
					w.n.RunUntilIdle(1 << 16)
				}
			}
		}
		for _, w := range nets {
			w.n.RunUntilIdle(1 << 16)
		}
		co, ref := nets[0], nets[1]
		if co.n.Executed() != ref.n.Executed() || co.n.Pending() != ref.n.Pending() {
			t.Fatalf("counts: coalesced exec=%d pend=%d, reference exec=%d pend=%d",
				co.n.Executed(), co.n.Pending(), ref.n.Executed(), ref.n.Pending())
		}
		if len(co.log) != len(ref.log) {
			t.Fatalf("log length: coalesced=%d reference=%d", len(co.log), len(ref.log))
		}
		for i := range co.log {
			if co.log[i] != ref.log[i] {
				t.Fatalf("event %d:\ncoalesced: %s\nreference: %s", i, co.log[i], ref.log[i])
			}
		}
	})
}
