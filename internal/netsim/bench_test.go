package netsim

import (
	"fmt"
	"testing"
	"time"
)

// BenchmarkNetsimEventLoop measures the steady-state deliver path: one
// pooled packet sent, delivered, and released per iteration. This is the
// per-hop cost every simulated packet pays, so it bounds whole-simulation
// throughput. The acceptance bar for the scheduler rewrite is >= 2x the
// seed heap scheduler's events/sec with 0 allocs/op.
func BenchmarkNetsimEventLoop(b *testing.B) {
	n := New(42)
	sink := NodeFunc(func(pkt *Packet) { n.ReleasePacket(pkt) })
	n.Attach(IP(0x0a000001), sink)
	src := HostPort{IP: 0x0a000002, Port: 1000}
	dst := HostPort{IP: 0x0a000001, Port: 80}

	b.ReportAllocs()
	b.ResetTimer()
	start := time.Now()
	for i := 0; i < b.N; i++ {
		pkt := n.AllocPacket()
		pkt.Src, pkt.Dst = src, dst
		pkt.Flags = FlagACK
		n.Send(pkt)
		n.Step()
	}
	elapsed := time.Since(start).Seconds()
	if elapsed > 0 {
		b.ReportMetric(float64(b.N)/elapsed, "events/sec")
	}
}

// BenchmarkNetsimTimerChurn measures Schedule+Stop of far-future timers,
// the pattern TCP retransmission timers generate: armed on every send,
// cancelled on every ACK, almost never fired.
func BenchmarkNetsimTimerChurn(b *testing.B) {
	n := New(42)
	nop := func() {}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		t := n.Schedule(300*time.Millisecond, nop)
		t.Stop()
		n.Step() // drain the cancelled event
	}
}

// BenchmarkShardedEventLoop measures aggregate event throughput of the
// sharded coordinator under strong scaling: a fixed population of 1024
// intra-shard ping-pong pairs is divided across 1/2/4/8 shards, so the
// same total event load is pushed through more event loops. On a
// multi-core machine aggregate events/s should rise with the shard
// count; on a single core the curve is flat and the delta is pure
// coordinator overhead. bench.sh records the curve as
// sharded_events_per_s in BENCH_core.json.
func BenchmarkShardedEventLoop(b *testing.B) {
	for _, shards := range []int{1, 2, 4, 8} {
		b.Run(fmt.Sprintf("shards=%d", shards), func(b *testing.B) {
			const totalPairs = 1024
			sn := NewSharded(42, shards)
			defer sn.Close()
			perShard := totalPairs / shards
			for s := 0; s < shards; s++ {
				nw := sn.Shard(s)
				for p := 0; p < perShard; p++ {
					pid := s*perShard + p
					a := IPv4(10, 8, byte(pid>>8), byte(pid))
					z := IPv4(10, 9, byte(pid>>8), byte(pid))
					nw.Attach(a, &bouncer{net: nw})
					nw.Attach(z, &bouncer{net: nw})
					pkt := nw.AllocPacket()
					pkt.Src = HostPort{IP: a, Port: 1}
					pkt.Dst = HostPort{IP: z, Port: 2}
					nw.Send(pkt)
				}
			}
			b.ResetTimer()
			start := time.Now()
			base := sn.Executed()
			for sn.Executed()-base < uint64(b.N) {
				sn.RunFor(5 * time.Millisecond)
			}
			events := sn.Executed() - base
			if elapsed := time.Since(start).Seconds(); elapsed > 0 {
				b.ReportMetric(float64(events)/elapsed, "events/s")
			}
		})
	}
}

// TestSendDeliverAllocFree locks in the zero-allocation fast path: once
// the pools are warm, a Send plus its delivery must not allocate.
func TestSendDeliverAllocFree(t *testing.T) {
	n := New(7)
	sink := NodeFunc(func(pkt *Packet) { n.ReleasePacket(pkt) })
	n.Attach(IP(0x0a000001), sink)
	src := HostPort{IP: 0x0a000002, Port: 1000}
	dst := HostPort{IP: 0x0a000001, Port: 80}

	// Warm the pools.
	for i := 0; i < 64; i++ {
		pkt := n.AllocPacket()
		pkt.Src, pkt.Dst = src, dst
		n.Send(pkt)
		n.Step()
	}
	allocs := testing.AllocsPerRun(200, func() {
		pkt := n.AllocPacket()
		pkt.Src, pkt.Dst = src, dst
		n.Send(pkt)
		n.Step()
	})
	if allocs != 0 {
		t.Fatalf("Send+deliver allocates %.1f objects/op, want 0", allocs)
	}
}

// TestPacketPoolReuse verifies the release discipline: a released packet
// comes back from AllocPacket zeroed, and double release is inert.
func TestPacketPoolReuse(t *testing.T) {
	n := New(1)
	p := n.AllocPacket()
	p.Payload = []byte("data")
	p.SetOuter(1, 2)
	n.ReleasePacket(p)
	n.ReleasePacket(p) // double release must not corrupt the pool
	q := n.AllocPacket()
	if q != p {
		t.Fatal("pool did not reuse the released packet")
	}
	if q.Payload != nil || q.Outer != nil || !q.Pooled() {
		t.Fatalf("reused packet not reset: %+v", q)
	}
	r := n.AllocPacket()
	if r == p {
		t.Fatal("double release put the same packet on the freelist twice")
	}
}

// TestTimerHandleSurvivesReuse verifies the ABA guard: a Timer handle
// whose event record was recycled into a new event must be inert rather
// than cancel the new event.
func TestTimerHandleSurvivesReuse(t *testing.T) {
	n := New(1)
	fired1, fired2 := false, false
	t1 := n.Schedule(time.Millisecond, func() { fired1 = true })
	n.Step()
	if !fired1 {
		t.Fatal("first timer did not fire")
	}
	// The freed record is recycled for the next schedule.
	n.Schedule(time.Millisecond, func() { fired2 = true })
	t1.Stop() // stale handle: must NOT cancel the second timer
	if t1.Active() {
		t.Fatal("stale handle reports active")
	}
	n.Step()
	if !fired2 {
		t.Fatal("stale Stop cancelled an unrelated recycled event")
	}
}

// TestPendingWithCancelled verifies Pending excludes cancelled events
// without requiring them to be drained first (the Run re-scan fix).
func TestPendingWithCancelled(t *testing.T) {
	n := New(1)
	var timers []Timer
	for i := 0; i < 10; i++ {
		timers = append(timers, n.Schedule(time.Duration(i+1)*time.Millisecond, func() {}))
	}
	if n.Pending() != 10 {
		t.Fatalf("Pending = %d, want 10", n.Pending())
	}
	for _, tm := range timers[:4] {
		tm.Stop()
	}
	if n.Pending() != 6 {
		t.Fatalf("Pending after 4 Stops = %d, want 6", n.Pending())
	}
	n.RunUntilIdle(100)
	if n.Pending() != 0 {
		t.Fatalf("Pending after drain = %d, want 0", n.Pending())
	}
}

// TestWheelFarTimers exercises the overflow heap: timers far beyond the
// wheel horizon must still fire in order, interleaved with near events.
func TestWheelFarTimers(t *testing.T) {
	n := New(1)
	var got []time.Duration
	delays := []time.Duration{
		500 * time.Millisecond, // beyond the ~134ms horizon: overflow
		10 * time.Second,       // far overflow
		time.Microsecond,       // current slot
		50 * time.Millisecond,  // in the wheel
		200 * time.Millisecond, // overflow, migrates into the wheel
	}
	for _, d := range delays {
		d := d
		n.Schedule(d, func() { got = append(got, d) })
	}
	n.RunUntilIdle(100)
	want := []time.Duration{
		time.Microsecond, 50 * time.Millisecond, 200 * time.Millisecond,
		500 * time.Millisecond, 10 * time.Second,
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("fire order %v, want %v", got, want)
		}
	}
	if n.Now() != 10*time.Second {
		t.Fatalf("clock = %v, want 10s", n.Now())
	}
}

// batchSink is a BatchPortHandler that releases everything it receives,
// so BenchmarkHostDemux measures demux dispatch rather than protocol
// processing.
type batchSink struct{ n *Network }

func (s *batchSink) HandleSegment(p *Packet) { s.n.ReleasePacket(p) }
func (s *batchSink) HandleSegmentBatch(ps []*Packet) {
	for _, p := range ps {
		s.n.ReleasePacket(p)
	}
}

// BenchmarkHostDemux measures the host demux path under bursty arrival:
// packets are sent 64 back-to-back so they ride one train and reach the
// batch demux — one conns probe per run instead of per packet. bench.sh
// records this as host_demux_ns_op.
func BenchmarkHostDemux(b *testing.B) {
	n := New(42)
	h := NewHost(n, IPv4(10, 0, 0, 2))
	src := HostPort{IP: IPv4(10, 0, 0, 1), Port: 1000}
	h.Register(80, src, &batchSink{n: n})

	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		pkt := n.AllocPacket()
		pkt.Src = src
		pkt.Dst = HostPort{IP: h.IP(), Port: 80}
		pkt.Flags = FlagACK
		n.Send(pkt)
		if i&63 == 63 {
			n.RunUntilIdle(1 << 16)
		}
	}
	n.RunUntilIdle(1 << 16)
}

// BenchmarkHostAllocPort measures ephemeral port allocation against a
// large population of live connections. The former implementation
// scanned every established connection per candidate port, so
// allocation degraded linearly with connection count — at mflow scale
// (hundreds of thousands of conns per driver host) it dominated flow
// setup. The per-port refcount makes it O(1) regardless of population.
func BenchmarkHostAllocPort(b *testing.B) {
	n := New(42)
	h := NewHost(n, IPv4(10, 0, 0, 2))
	remote := HostPort{IP: IPv4(10, 0, 0, 1), Port: 80}
	sink := PortHandlerFunc(func(pkt *Packet) {})
	for i := 0; i < 8192; i++ {
		h.Register(h.AllocPort(), remote, sink)
	}

	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		p := h.AllocPort()
		h.Register(p, remote, sink)
		h.Unregister(p, remote)
	}
}
