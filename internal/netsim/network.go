package netsim

import (
	"container/heap"
	"fmt"
	"math/rand"
	"time"
)

// Node is anything attached to the network that can receive packets.
// HandlePacket is invoked from the event loop with the virtual clock
// already advanced to the delivery time; implementations must not block.
type Node interface {
	HandlePacket(pkt *Packet)
}

// NodeFunc adapts a function to the Node interface.
type NodeFunc func(pkt *Packet)

// HandlePacket calls f(pkt).
func (f NodeFunc) HandlePacket(pkt *Packet) { f(pkt) }

// LatencyFunc computes the one-way delay between two hosts. It is
// consulted once per packet send.
type LatencyFunc func(src, dst IP) time.Duration

// TraceEvent records one packet delivery or drop, for timeline plots such
// as Figure 12(b) of the paper.
type TraceEvent struct {
	At      time.Duration
	Packet  *Packet
	Dropped bool
	Reason  string
}

// event is a scheduled callback on the virtual clock. seq breaks ties so
// that events scheduled earlier fire earlier, keeping runs deterministic.
type event struct {
	at     time.Duration
	seq    uint64
	fn     func()
	cancel *bool
}

type eventHeap []*event

func (h eventHeap) Len() int { return len(h) }
func (h eventHeap) Less(i, j int) bool {
	if h[i].at != h[j].at {
		return h[i].at < h[j].at
	}
	return h[i].seq < h[j].seq
}
func (h eventHeap) Swap(i, j int)       { h[i], h[j] = h[j], h[i] }
func (h *eventHeap) Push(x interface{}) { *h = append(*h, x.(*event)) }
func (h *eventHeap) Pop() interface{} {
	old := *h
	n := len(old)
	e := old[n-1]
	old[n-1] = nil
	*h = old[:n-1]
	return e
}

// Timer is a cancellable scheduled callback.
type Timer struct {
	cancelled *bool
}

// Stop prevents the timer from firing. Stopping an already-fired or
// already-stopped timer is a no-op.
func (t *Timer) Stop() {
	if t != nil && t.cancelled != nil {
		*t.cancelled = true
	}
}

// Network is the discrete-event simulator core. It is not safe for
// concurrent use: all components run inside its single event loop.
type Network struct {
	now     time.Duration
	seq     uint64
	events  eventHeap
	nodes   map[IP]Node
	rng     *rand.Rand
	latency LatencyFunc
	jitter  float64 // fraction of latency, uniform ±jitter
	dropFn  func(pkt *Packet) bool
	tracer  func(TraceEvent)

	// Stats counters.
	Delivered       uint64
	DroppedNoRoute  uint64
	DroppedByPolicy uint64
}

// DefaultLatency models a two-zone topology: addresses in 10.0.0.0/8 are
// inside the datacenter (150µs one way); everything else is an Internet
// client (30ms one way to anywhere in the DC). DC-internal hops between
// the same /8 cost the intra-DC latency.
func DefaultLatency(src, dst IP) time.Duration {
	const (
		intraDC  = 150 * time.Microsecond
		internet = 30 * time.Millisecond
	)
	inDC := func(ip IP) bool { return byte(ip>>24) == 10 }
	if inDC(src) && inDC(dst) {
		return intraDC
	}
	return internet
}

// New creates a network with the given RNG seed and the default latency
// model.
func New(seed int64) *Network {
	return &Network{
		nodes:   make(map[IP]Node),
		rng:     rand.New(rand.NewSource(seed)),
		latency: DefaultLatency,
	}
}

// Now returns the current virtual time.
func (n *Network) Now() time.Duration { return n.now }

// Rand returns the network's deterministic RNG. All components should
// draw randomness from it so runs stay reproducible.
func (n *Network) Rand() *rand.Rand { return n.rng }

// SetLatency replaces the latency model.
func (n *Network) SetLatency(f LatencyFunc) { n.latency = f }

// SetJitter sets symmetric uniform jitter as a fraction of base latency
// (e.g. 0.1 for ±10%). Zero disables jitter.
func (n *Network) SetJitter(frac float64) { n.jitter = frac }

// SetDropFunc installs a policy that may drop packets in flight (loss
// injection). A nil function disables drops.
func (n *Network) SetDropFunc(f func(pkt *Packet) bool) { n.dropFn = f }

// SetTracer installs a packet trace hook. A nil tracer disables tracing.
func (n *Network) SetTracer(f func(TraceEvent)) { n.tracer = f }

// Attach registers node as the handler for packets addressed to ip.
// Attaching to an IP that already has a node replaces it.
func (n *Network) Attach(ip IP, node Node) {
	if ip == 0 {
		panic("netsim: cannot attach to the unspecified address")
	}
	n.nodes[ip] = node
}

// Detach removes the node at ip, if any. Subsequent packets to ip are
// dropped, which is how host failure is modelled.
func (n *Network) Detach(ip IP) { delete(n.nodes, ip) }

// Attached reports whether a node is currently attached at ip.
func (n *Network) Attached(ip IP) bool {
	_, ok := n.nodes[ip]
	return ok
}

// Schedule runs fn after delay d of virtual time and returns a
// cancellable timer. A negative delay is treated as zero.
func (n *Network) Schedule(d time.Duration, fn func()) *Timer {
	if d < 0 {
		d = 0
	}
	cancelled := new(bool)
	n.seq++
	heap.Push(&n.events, &event{at: n.now + d, seq: n.seq, fn: fn, cancel: cancelled})
	return &Timer{cancelled: cancelled}
}

// Send routes pkt toward its destination (Outer.Dst when encapsulated,
// inner Dst otherwise) after the link latency. The packet must not be
// mutated by the caller after Send.
func (n *Network) Send(pkt *Packet) {
	src, dst := pkt.Src.IP, pkt.Dst.IP
	if pkt.Outer != nil {
		src, dst = pkt.Outer.Src, pkt.Outer.Dst
	}
	d := n.latency(src, dst)
	if n.jitter > 0 {
		d += time.Duration((n.rng.Float64()*2 - 1) * n.jitter * float64(d))
		if d < 0 {
			d = 0
		}
	}
	n.Schedule(d, func() { n.deliver(pkt, dst) })
}

func (n *Network) deliver(pkt *Packet, dst IP) {
	if n.dropFn != nil && n.dropFn(pkt) {
		n.DroppedByPolicy++
		n.trace(pkt, true, "policy drop")
		return
	}
	node, ok := n.nodes[dst]
	if !ok {
		n.DroppedNoRoute++
		n.trace(pkt, true, "no route")
		return
	}
	n.Delivered++
	n.trace(pkt, false, "")
	node.HandlePacket(pkt)
}

func (n *Network) trace(pkt *Packet, dropped bool, reason string) {
	if n.tracer != nil {
		n.tracer(TraceEvent{At: n.now, Packet: pkt, Dropped: dropped, Reason: reason})
	}
}

// Step executes the next pending event, advancing the clock. It reports
// whether an event was executed.
func (n *Network) Step() bool {
	for n.events.Len() > 0 {
		e := heap.Pop(&n.events).(*event)
		if *e.cancel {
			continue
		}
		if e.at > n.now {
			n.now = e.at
		}
		e.fn()
		return true
	}
	return false
}

// Run executes events until the virtual clock would pass deadline, then
// sets the clock to the deadline. Events scheduled exactly at the
// deadline are executed.
func (n *Network) Run(deadline time.Duration) {
	for n.events.Len() > 0 {
		// Peek without popping to respect the deadline.
		next := n.events[0]
		if *next.cancel {
			heap.Pop(&n.events)
			continue
		}
		if next.at > deadline {
			break
		}
		n.Step()
	}
	if n.now < deadline {
		n.now = deadline
	}
}

// RunFor advances the simulation by d from the current time.
func (n *Network) RunFor(d time.Duration) { n.Run(n.now + d) }

// RunUntilIdle executes events until the queue drains or maxEvents have
// run, whichever comes first. It returns the number of events executed.
// The cap guards against runaway retransmission loops in tests.
func (n *Network) RunUntilIdle(maxEvents int) int {
	count := 0
	for count < maxEvents && n.Step() {
		count++
	}
	return count
}

// Pending returns the number of queued (possibly cancelled) events.
func (n *Network) Pending() int { return n.events.Len() }

// String summarizes the network state for debugging.
func (n *Network) String() string {
	return fmt.Sprintf("netsim{t=%s nodes=%d pending=%d delivered=%d dropped=%d+%d}",
		n.now, len(n.nodes), n.events.Len(), n.Delivered, n.DroppedNoRoute, n.DroppedByPolicy)
}
