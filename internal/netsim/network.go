package netsim

import (
	"fmt"
	"math/rand"
	"time"

	"repro/internal/metrics"
)

// Node is anything attached to the network that can receive packets.
// HandlePacket is invoked from the event loop with the virtual clock
// already advanced to the delivery time; implementations must not block.
type Node interface {
	HandlePacket(pkt *Packet)
}

// NodeFunc adapts a function to the Node interface.
type NodeFunc func(pkt *Packet)

// HandlePacket calls f(pkt).
func (f NodeFunc) HandlePacket(pkt *Packet) { f(pkt) }

// BatchNode is an optional extension of Node: burst dispatch hands a
// run — consecutive train members bound for the same destination — to
// HandleBatch in one call instead of n HandlePacket calls, so the node
// can amortize per-packet demux across the run. Contracts:
//
//   - HandleBatch(pkts) must be observably equivalent to calling
//     HandlePacket(pkts[i]) for i in order. The node owns each packet
//     exactly as it would in the scalar path (including release).
//   - The slice is scratch storage owned by the network; it must not
//     be retained past the call.
//   - Runs are grouped before the first packet is processed, so a node
//     whose processing would re-route later packets in the same run
//     (e.g. a connection that closes itself mid-run) must re-check its
//     own state per packet and fall back accordingly — see
//     Host.HandleBatch and tcp.Conn.HandleSegmentBatch.
//
// Nodes that do not implement BatchNode receive per-packet HandlePacket
// calls exactly as before. Loss injection (SetDropFunc) forces the
// per-packet path so drop decisions interleave exactly as in the scalar
// reference.
type BatchNode interface {
	Node
	HandleBatch(pkts []*Packet)
}

// LatencyFunc computes the one-way delay between two hosts. It is
// consulted once per packet send.
type LatencyFunc func(src, dst IP) time.Duration

// TraceEvent records one packet delivery or drop, for timeline plots such
// as Figure 12(b) of the paper.
type TraceEvent struct {
	At      time.Duration
	Packet  *Packet
	Dropped bool
	Reason  string
}

// Network is one discrete-event simulator loop. It is not safe for
// concurrent use: all components run inside its single event loop. In a
// sharded simulation (see ShardedNetwork) each shard is a Network of its
// own; the coordinator runs whole shards on separate goroutines, but no
// individual Network is ever touched by two goroutines at once.
type Network struct {
	now time.Duration
	seq uint64

	// Packet-train coalescing (Tier A, always on unless SetCoalescing
	// disables it): openTrain is the most recently scheduled delivery
	// event, still accepting same-instant sends as train members. It is
	// closed as soon as any other event is filed at its instant
	// (scheduleEvent) and cleared when it fires (execute), so a non-nil
	// pointer always refers to a live, unfired delivery — no generation
	// check needed. openAt caches its deadline so the no-match fast path
	// never dereferences the record. These sit next to now/seq because
	// Send and execute touch them on every packet.
	openTrain  *event
	openAt     time.Duration
	noCoalesce bool

	nodes   map[IP]Node
	rng     *rand.Rand
	latency LatencyFunc
	jitter  float64 // fraction of latency, uniform ±jitter
	dropFn  func(pkt *Packet) bool
	tracer  func(TraceEvent)

	// Sharding (see shard.go). coord is nil for standalone networks;
	// when set, Sends to IPs owned by other shards are handed off to the
	// coordinator instead of being scheduled locally. violation records
	// the first lookahead violation observed on this shard's goroutine,
	// checked (and raised) by the coordinator after the window barrier.
	shard     int
	coord     *ShardedNetwork
	executed  uint64
	violation string
	// lastBusy is the clock at the most recent event Run executed, before
	// the deadline park — the shard's contribution to the fleet-wide
	// quiescent frontier (ShardedNetwork.RunUntilIdle).
	lastBusy time.Duration

	// Scheduler state (see sched.go): a timer wheel for near events, a
	// typed heap for far ones, and a small heap for the cursor's slot.
	curSlot          int64
	curHeap          eventQueue
	slots            [wheelSize][]*event
	occupied         [wheelSize / 64]uint64
	overflow         eventQueue
	queued           int // pending deliveries + timers, including cancelled
	cancelledPending int // cancelled events not yet drained

	// Freelists (see pool.go). The loop is single-threaded, so these are
	// plain slices with no locking.
	evFree    []*event
	pktFree   []*Packet
	bufFree   [][]byte
	trainFree []*trainBox

	// Stats counters.
	Delivered       uint64
	DroppedNoRoute  uint64
	DroppedByPolicy uint64
	// Coalesced counts deliveries that rode another delivery's event
	// record instead of their own.
	Coalesced uint64

	// Batch-dispatch observability. TrainLens observes the member count
	// of every burst-dispatched train (length ≥ 2 by construction);
	// RunLens observes every same-destination run carved out of a train.
	// Runs counts those runs, BatchRuns the subset of length ≥ 2 handed
	// to a BatchNode in one call. BatchRuns/Runs is the batch-hit ratio.
	TrainLens metrics.LenHist
	RunLens   metrics.LenHist
	Runs      uint64
	BatchRuns uint64

	// runScratch backs the run slice handed to BatchNode.HandleBatch;
	// reused across trains, never retained by handlers (see BatchNode).
	runScratch []*Packet
}

// DefaultLatency models a two-zone topology: addresses in 10.0.0.0/8 are
// inside the datacenter (150µs one way); everything else is an Internet
// client (30ms one way to anywhere in the DC). DC-internal hops between
// the same /8 cost the intra-DC latency.
func DefaultLatency(src, dst IP) time.Duration {
	const (
		intraDC  = 150 * time.Microsecond
		internet = 30 * time.Millisecond
	)
	inDC := func(ip IP) bool { return byte(ip>>24) == 10 }
	if inDC(src) && inDC(dst) {
		return intraDC
	}
	return internet
}

// New creates a network with the given RNG seed and the default latency
// model.
func New(seed int64) *Network {
	return &Network{
		nodes:   make(map[IP]Node),
		rng:     rand.New(rand.NewSource(seed)),
		latency: DefaultLatency,
	}
}

// Now returns the current virtual time.
func (n *Network) Now() time.Duration { return n.now }

// Rand returns the network's deterministic RNG. All components should
// draw randomness from it so runs stay reproducible.
func (n *Network) Rand() *rand.Rand { return n.rng }

// SetLatency replaces the latency model.
func (n *Network) SetLatency(f LatencyFunc) { n.latency = f }

// SetJitter sets symmetric uniform jitter as a fraction of base latency
// (e.g. 0.1 for ±10%). Zero disables jitter.
func (n *Network) SetJitter(frac float64) { n.jitter = frac }

// SetDropFunc installs a policy that may drop packets in flight (loss
// injection). A nil function disables drops.
func (n *Network) SetDropFunc(f func(pkt *Packet) bool) { n.dropFn = f }

// SetTracer installs a packet trace hook. A nil tracer disables tracing.
// While a tracer is installed, delivered packets are exempted from pool
// recycling so the tracer may retain them.
func (n *Network) SetTracer(f func(TraceEvent)) { n.tracer = f }

// Attach registers node as the handler for packets addressed to ip.
// Attaching to an IP that already has a node replaces it.
func (n *Network) Attach(ip IP, node Node) {
	if ip == 0 {
		panic("netsim: cannot attach to the unspecified address")
	}
	if n.coord != nil {
		n.coord.noteAttach(ip, n.shard)
	}
	n.nodes[ip] = node
}

// ShardID returns this network's shard index (0 for standalone networks).
func (n *Network) ShardID() int { return n.shard }

// Detach removes the node at ip, if any. Subsequent packets to ip are
// dropped, which is how host failure is modelled.
func (n *Network) Detach(ip IP) { delete(n.nodes, ip) }

// Attached reports whether a node is currently attached at ip.
func (n *Network) Attached(ip IP) bool {
	_, ok := n.nodes[ip]
	return ok
}

// Schedule runs fn after delay d of virtual time and returns a
// cancellable timer. A negative delay is treated as zero.
func (n *Network) Schedule(d time.Duration, fn func()) Timer {
	if d < 0 {
		d = 0
	}
	e := n.allocEvent()
	n.seq++
	e.at, e.seq, e.kind, e.fn = n.now+d, n.seq, evFunc, fn
	n.scheduleEvent(e)
	return Timer{net: n, ev: e, gen: e.gen}
}

// Send routes pkt toward its destination (Outer.Dst when encapsulated,
// inner Dst otherwise) after the link latency. The packet must not be
// mutated by the caller after Send. Delivery is a typed event on the
// scheduler — no closure is allocated per send.
func (n *Network) Send(pkt *Packet) {
	src, dst := pkt.Src.IP, pkt.Dst.IP
	if pkt.Outer != nil {
		src, dst = pkt.Outer.Src, pkt.Outer.Dst
	}
	d := n.latency(src, dst)
	if n.jitter > 0 {
		d += time.Duration((n.rng.Float64()*2 - 1) * n.jitter * float64(d))
		if d < 0 {
			d = 0
		}
	}
	if n.coord != nil && len(n.coord.shards) > 1 {
		if ds := n.coord.shardFor(dst); ds != n.shard {
			n.coord.push(n, ds, n.now+d, pkt, dst)
			return
		}
	}
	at := n.now + d
	// Tier A coalescing: a delivery due at the open train's instant rides
	// that event instead of allocating and filing its own. It still
	// consumes a sequence number, and scheduleEvent closes the train the
	// moment any other same-instant event is filed, so burst dispatch
	// replays exactly the (at, seq) order the unbatched scheduler had.
	if t := n.openTrain; t != nil && n.openAt == at {
		if t.train == nil {
			t.train = n.allocTrain()
		}
		if len(t.train.entries) < trainMax-1 {
			n.seq++
			t.train.entries = append(t.train.entries, trainEntry{pkt: pkt, dst: dst})
			n.queued++
			n.Coalesced++
			return
		}
	}
	e := n.allocEvent()
	n.seq++
	e.at, e.seq, e.kind, e.pkt, e.dst = at, n.seq, evDeliver, pkt, dst
	n.scheduleEvent(e)
	if !n.noCoalesce {
		n.openTrain, n.openAt = e, at
	}
}

// SetCoalescing toggles packet-train delivery (default on). Disabling it
// forces one scheduler record per delivery — the reference behavior the
// differential fuzz oracle compares against. Both modes deliver packets
// in the identical order and report identical Executed/Pending counts;
// coalescing only changes how many records carry them.
func (n *Network) SetCoalescing(on bool) {
	n.noCoalesce = !on
	if !on {
		n.openTrain = nil
	}
}

func (n *Network) deliver(pkt *Packet, dst IP) {
	if n.tracer != nil {
		// The tracer may retain the packet; keep it out of the pool.
		pkt.pooled = false
	}
	if n.dropFn != nil && n.dropFn(pkt) {
		n.DroppedByPolicy++
		n.trace(pkt, true, "policy drop")
		n.ReleasePacket(pkt)
		return
	}
	node, ok := n.nodes[dst]
	if !ok {
		n.DroppedNoRoute++
		n.trace(pkt, true, "no route")
		n.ReleasePacket(pkt)
		return
	}
	n.Delivered++
	n.trace(pkt, false, "")
	node.HandlePacket(pkt)
}

func (n *Network) trace(pkt *Packet, dropped bool, reason string) {
	if n.tracer != nil {
		n.tracer(TraceEvent{At: n.now, Packet: pkt, Dropped: dropped, Reason: reason})
	}
}

// execute pops the event nextEvent positioned at the top of curHeap,
// recycles the record, advances the clock, and runs the occurrence. A
// delivery event dispatches its whole train as a burst; each member
// counts as one executed event and one pending slot, so Executed and
// Pending are byte-identical to one-record-per-delivery scheduling.
func (n *Network) execute(e *event) {
	n.curHeap.pop()
	n.queued--
	n.executed++
	if e.at > n.now {
		n.now = e.at
	}
	if e == n.openTrain {
		n.openTrain = nil
	}
	kind, fn, pkt, dst := e.kind, e.fn, e.pkt, e.dst
	train := e.train
	if train != nil {
		e.train = nil
	}
	n.freeEvent(e)
	if kind == evDeliver {
		if train == nil {
			n.deliver(pkt, dst)
			return
		}
		entries := train.entries
		n.queued -= len(entries)
		n.executed += uint64(len(entries))
		n.TrainLens.Observe(1 + len(entries))
		// Group consecutive same-destination members into runs; each run
		// is one deliverRun call (one node lookup, one HandleBatch where
		// the node supports it).
		run := append(n.runScratch[:0], pkt)
		runDst := dst
		for i := range entries {
			if entries[i].dst != runDst {
				n.deliverRun(run, runDst)
				run = run[:0]
				runDst = entries[i].dst
			}
			run = append(run, entries[i].pkt)
		}
		n.deliverRun(run, runDst)
		n.runScratch = run[:0]
		n.freeTrain(train)
		return
	}
	fn()
}

// deliverRun delivers a run of same-destination packets carved out of a
// burst-dispatched train. Runs of length ≥ 2 whose destination node
// implements BatchNode are handed over in one HandleBatch call — with
// per-packet trace events emitted first, in delivery order, so trace
// output matches the scalar path (handlers never trace synchronously;
// their sends become future deliveries). Everything else — singleton
// runs, non-batch nodes, missing routes, and any run while loss
// injection is active — falls back to the per-packet deliver path.
func (n *Network) deliverRun(pkts []*Packet, dst IP) {
	n.Runs++
	n.RunLens.Observe(len(pkts))
	if len(pkts) >= 2 && n.dropFn == nil {
		if bn, ok := n.nodes[dst].(BatchNode); ok {
			if n.tracer != nil {
				for _, p := range pkts {
					p.pooled = false
					n.trace(p, false, "")
				}
			}
			n.Delivered += uint64(len(pkts))
			n.BatchRuns++
			bn.HandleBatch(pkts)
			return
		}
	}
	for _, p := range pkts {
		n.deliver(p, dst)
	}
}

// Step executes the next pending event, advancing the clock. It reports
// whether an event was executed. Cancelled events are drained and
// recycled as they are encountered, never re-scanned.
func (n *Network) Step() bool {
	e := n.nextEvent()
	if e == nil {
		return false
	}
	n.execute(e)
	return true
}

// Run executes events until the virtual clock would pass deadline, then
// sets the clock to the deadline. Events scheduled exactly at the
// deadline are executed.
func (n *Network) Run(deadline time.Duration) {
	start := n.executed
	for {
		e := n.nextEvent()
		if e == nil || e.at > deadline {
			break
		}
		n.execute(e)
	}
	if n.executed != start {
		// Record the busy frontier before parking at the deadline: the
		// sharded coordinator uses it to settle a drained fleet on the
		// last event's time rather than the final window's end.
		n.lastBusy = n.now
	}
	if n.now < deadline {
		n.now = deadline
		n.syncCursor()
	}
}

// RunFor advances the simulation by d from the current time.
func (n *Network) RunFor(d time.Duration) { n.Run(n.now + d) }

// RunUntilIdle executes events until the queue drains or maxEvents have
// run, whichever comes first. It returns the number of events executed.
// The cap guards against runaway retransmission loops in tests. Events
// are counted logically — every delivery in a burst-dispatched train is
// one event — so counts match unbatched scheduling exactly.
func (n *Network) RunUntilIdle(maxEvents int) int {
	count := 0
	for count < maxEvents {
		before := n.executed
		if !n.Step() {
			break
		}
		count += int(n.executed - before)
	}
	return count
}

// Pending returns the number of live (not cancelled) queued events.
func (n *Network) Pending() int { return n.queued - n.cancelledPending }

// Executed returns the number of events this loop has executed.
func (n *Network) Executed() uint64 { return n.executed }

// NextEventAt reports the virtual time of the earliest live queued
// event, positioning the scheduler on it without executing anything.
func (n *Network) NextEventAt() (time.Duration, bool) {
	if e := n.nextEvent(); e != nil {
		return e.at, true
	}
	return 0, false
}

// BatchHitRatio returns the fraction of train runs (length ≥ 2) handed
// to a BatchNode in one call — 0 when no trains have dispatched yet.
func (n *Network) BatchHitRatio() float64 {
	if n.Runs == 0 {
		return 0
	}
	return float64(n.BatchRuns) / float64(n.Runs)
}

// String summarizes the network state for debugging, including the
// batch-dispatch shape: train/run length histograms and the batch-hit
// ratio. Experiment outputs never embed this string, so extending it is
// byte-identity safe.
func (n *Network) String() string {
	return fmt.Sprintf("netsim{t=%s nodes=%d pending=%d delivered=%d dropped=%d+%d trains{%s} runs{%s} batch-hit=%.2f}",
		n.now, len(n.nodes), n.Pending(), n.Delivered, n.DroppedNoRoute, n.DroppedByPolicy,
		n.TrainLens.String(), n.RunLens.String(), n.BatchHitRatio())
}
