package netsim

import (
	"fmt"
	"strings"
	"time"

	"repro/internal/metrics"
)

// This file implements the sharded multi-core dataplane: N per-shard
// event loops advancing under deterministic conservative synchronization.
//
// Each shard is a full *Network — its own virtual clock, timer wheel,
// event/packet/buffer freelists, and RNG — so every component keeps the
// exact single-loop programming model it always had: a component lives on
// one shard, holds that shard's *Network handle, and never sees
// concurrency. The only cross-shard interaction is a packet send, and
// packets take at least one link latency to arrive. That latency is the
// *lookahead* of a conservative parallel discrete-event scheme:
//
//	invariant: if every window the coordinator opens is at most
//	`lookahead` wide, and every cross-shard packet is delayed by at
//	least `lookahead`, then a packet handed off during window
//	[T, T+W) is delivered at sender_time + latency >= T + lookahead
//	>= T + W — i.e. never in the receiving shard's past.
//
// Shards therefore run windows in parallel with no locks at all on the
// hot path: cross-shard sends append to single-producer/single-consumer
// handoff queues that are double-buffered by window parity (producers
// write the current window's buffer, consumers drain the previous
// window's), and the only synchronization is the barrier between windows.
// Determinism does not depend on thread scheduling: within a shard,
// events execute in (time, sequence) order exactly as on a single loop;
// handed-off packets are ingested at each window start in fixed shard
// order, and each queue preserves its sender's (deterministic) execution
// order, so sequence numbers — and thus tie-breaks — are reproducible.
//
// With one shard the coordinator delegates straight to the underlying
// Network: no windows, no goroutines, no handoffs. A `-shards 1` run is
// byte-identical to the pre-sharding scheduler by construction, which is
// what pins all existing figures.

// DefaultLookahead is the minimum cross-shard packet latency the
// coordinator assumes: the intra-DC one-way delay of DefaultLatency.
// Topologies with faster links (or jitter pulling latency below it) must
// SetLookahead accordingly; violations are detected and panic.
const DefaultLookahead = 150 * time.Microsecond

// handoff is one cross-shard packet delivery in flight between windows.
type handoff struct {
	at  time.Duration
	dst IP
	pkt *Packet
}

// shardWork is one window assignment delivered to a shard worker.
type shardWork struct {
	end        time.Duration
	readParity int
}

// ShardedNetwork coordinates N per-shard event loops. Construction,
// topology setup, and the Run/RunFor/RunUntilIdle drivers must be called
// from a single goroutine (the "driver"); between runs the driver may
// freely mutate any shard's components, exactly like the single-loop
// model. While a run is in progress the shards execute on their own
// goroutines and the driver must not touch them.
type ShardedNetwork struct {
	shards    []*Network
	routes    map[IP]int32 // permanent IP -> owning shard
	lookahead time.Duration
	now       time.Duration
	running   bool // inside a parallel window (guards route mutation)

	// Cross-shard handoff queues, double-buffered by window parity:
	// out[p][src*S+dst] is written by shard src during windows of parity
	// p and drained by shard dst at the start of the next window. The
	// barrier between windows is the only synchronization the queues
	// need.
	out         [2][][]handoff
	writeParity int
	windowEnd   time.Duration // end of the window now executing (violation check)

	// Worker goroutines, started lazily on the first multi-shard window
	// and parked on workCh between windows. Close releases them.
	workCh []chan shardWork
	doneCh chan struct{}
}

// NewSharded creates a network of `shards` event loops. Shard 0 is
// seeded with exactly `seed` — so a 1-shard network reproduces New(seed)
// bit for bit — and shard i>0 with a value mixed from (seed, i).
func NewSharded(seed int64, shards int) *ShardedNetwork {
	if shards < 1 {
		shards = 1
	}
	sn := &ShardedNetwork{
		routes:    make(map[IP]int32),
		lookahead: DefaultLookahead,
	}
	for i := 0; i < shards; i++ {
		nw := New(shardSeed(seed, i))
		nw.shard = i
		nw.coord = sn
		sn.shards = append(sn.shards, nw)
	}
	for p := 0; p < 2; p++ {
		sn.out[p] = make([][]handoff, shards*shards)
	}
	return sn
}

// shardSeed derives shard i's RNG seed. Shard 0 keeps the caller's seed
// unchanged so single-shard runs match New(seed) exactly.
func shardSeed(seed int64, i int) int64 {
	if i == 0 {
		return seed
	}
	return int64(splitmix64(uint64(seed) + 0x9e3779b97f4a7c15*uint64(i)))
}

// splitmix64 is the splitmix64 finalizer, used for shard seed derivation
// and for the default IP->shard placement hash.
func splitmix64(x uint64) uint64 {
	x ^= x >> 30
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 27
	x *= 0x94d049bb133111eb
	x ^= x >> 31
	return x
}

// Shards returns the shard count.
func (sn *ShardedNetwork) Shards() int { return len(sn.shards) }

// Shard returns shard i's event loop. Components are placed on a shard
// by being built against its handle (e.g. NewHost(sn.Shard(i), ip)).
func (sn *ShardedNetwork) Shard(i int) *Network { return sn.shards[i] }

// Now returns the coordinator's virtual clock: the end of the last
// completed window (all shards have advanced at least this far).
func (sn *ShardedNetwork) Now() time.Duration { return sn.now }

// Lookahead returns the conservative-sync window bound.
func (sn *ShardedNetwork) Lookahead() time.Duration { return sn.lookahead }

// SetLookahead overrides the window bound. It must be at most the
// minimum cross-shard packet latency (after jitter); a too-large value
// is detected at the first violating handoff and panics.
func (sn *ShardedNetwork) SetLookahead(d time.Duration) {
	if d <= 0 {
		panic("netsim: lookahead must be positive")
	}
	sn.lookahead = d
}

// SetLatency installs the latency model on every shard.
func (sn *ShardedNetwork) SetLatency(f LatencyFunc) {
	for _, sh := range sn.shards {
		sh.SetLatency(f)
	}
}

// SetJitter sets latency jitter on every shard. Jitter shrinks the
// effective minimum latency by the jitter fraction; callers using it on
// sharded topologies must SetLookahead((1-frac) * min latency).
func (sn *ShardedNetwork) SetJitter(frac float64) {
	for _, sh := range sn.shards {
		sh.SetJitter(frac)
	}
}

// SetDropFunc installs a loss-injection policy on every shard. The
// function is invoked from shard goroutines concurrently and must not
// mutate shared state.
func (sn *ShardedNetwork) SetDropFunc(f func(pkt *Packet) bool) {
	for _, sh := range sn.shards {
		sh.SetDropFunc(f)
	}
}

// SetCoalescing toggles packet-train delivery on every shard (and on the
// handoff-ingest path). See Network.SetCoalescing.
func (sn *ShardedNetwork) SetCoalescing(on bool) {
	for _, sh := range sn.shards {
		sh.SetCoalescing(on)
	}
}

// Place pins ip to a shard before it is first attached. Attaching
// through a shard handle pins the IP implicitly; Place exists for
// placement policies that must route packets to an IP before the
// component is built.
func (sn *ShardedNetwork) Place(ip IP, shard int) {
	if shard < 0 || shard >= len(sn.shards) {
		panic(fmt.Sprintf("netsim: Place(%s, %d): no such shard", ip, shard))
	}
	if s, ok := sn.routes[ip]; ok && int(s) != shard {
		panic(fmt.Sprintf("netsim: %s already placed on shard %d", ip, s))
	}
	sn.routes[ip] = int32(shard)
}

// ShardFor returns the shard that owns (or would own) ip: its pinned
// placement if attached or Placed, else the default placement hash.
func (sn *ShardedNetwork) ShardFor(ip IP) int { return sn.shardFor(ip) }

func (sn *ShardedNetwork) shardFor(ip IP) int {
	if s, ok := sn.routes[ip]; ok {
		return int(s)
	}
	return int(splitmix64(uint64(ip)) % uint64(len(sn.shards)))
}

// noteAttach pins ip to the attaching shard. IPs never migrate between
// shards (their in-flight packets are routed by the pinning), and new
// IPs cannot appear while shard goroutines are running — the route table
// is read lock-free during windows.
func (sn *ShardedNetwork) noteAttach(ip IP, shard int) {
	if s, ok := sn.routes[ip]; ok {
		if int(s) != shard {
			panic(fmt.Sprintf("netsim: attach of %s on shard %d, but it is pinned to shard %d", ip, shard, s))
		}
		return
	}
	if sn.running {
		panic(fmt.Sprintf("netsim: attach of new IP %s while a sharded run is in progress", ip))
	}
	sn.routes[ip] = int32(shard)
}

// push files a cross-shard delivery into the current window's handoff
// buffer. Called from the sending shard's goroutine; the (src, dst) slot
// is single-producer/single-consumer by construction.
func (sn *ShardedNetwork) push(src *Network, dstShard int, at time.Duration, pkt *Packet, dst IP) {
	if at < sn.windowEnd && src.violation == "" {
		src.violation = fmt.Sprintf(
			"netsim: cross-shard packet shard %d->%d due %v before window end %v: latency below lookahead %v (SetLookahead lower)",
			src.shard, dstShard, at, sn.windowEnd, sn.lookahead)
	}
	slot := src.shard*len(sn.shards) + dstShard
	sn.out[sn.writeParity][slot] = append(sn.out[sn.writeParity][slot], handoff{at: at, dst: dst, pkt: pkt})
}

// ingest drains every handoff queue addressed to sh from the previous
// window, filing deliveries as fresh local events. Queues are visited in
// sender-shard order and each preserves its sender's execution order, so
// the sequence numbers assigned here — the deterministic tie-break for
// same-time events — are reproducible regardless of how the OS scheduled
// the shard goroutines.
//
// Consecutive handoffs from one sender due at the same instant ingest as
// a single train event (Tier A coalescing): each member still consumes a
// sequence number, so the burst executes in exactly the order per-event
// ingestion would have produced.
func (sn *ShardedNetwork) ingest(sh *Network, parity int) {
	s := len(sn.shards)
	clamp := func(at time.Duration) time.Duration {
		if at < sh.now {
			if sh.violation == "" {
				sh.violation = fmt.Sprintf(
					"netsim: handoff into shard %d's past: due %v, clock %v (lookahead too large)",
					sh.shard, at, sh.now)
			}
			return sh.now
		}
		return at
	}
	for src := 0; src < s; src++ {
		slot := src*s + sh.shard
		q := sn.out[parity][slot]
		for i := 0; i < len(q); {
			h := q[i]
			e := sh.allocEvent()
			sh.seq++
			e.at, e.seq, e.kind, e.pkt, e.dst = clamp(h.at), sh.seq, evDeliver, h.pkt, h.dst
			q[i] = handoff{}
			i++
			members := 0
			for !sh.noCoalesce && i < len(q) && members < trainMax-1 && clamp(q[i].at) == e.at {
				if e.train == nil {
					e.train = sh.allocTrain()
				}
				sh.seq++
				e.train.entries = append(e.train.entries, trainEntry{pkt: q[i].pkt, dst: q[i].dst})
				sh.Coalesced++
				members++
				q[i] = handoff{}
				i++
			}
			sh.scheduleEvent(e)
			sh.queued += members
		}
		sn.out[parity][slot] = q[:0]
	}
}

// startWorkers lazily spawns one goroutine per shard; they park on
// workCh between windows. Close releases them.
func (sn *ShardedNetwork) startWorkers() {
	if sn.workCh != nil {
		return
	}
	sn.workCh = make([]chan shardWork, len(sn.shards))
	sn.doneCh = make(chan struct{}, len(sn.shards))
	for i := range sn.shards {
		sn.workCh[i] = make(chan shardWork)
		go sn.worker(i)
	}
}

func (sn *ShardedNetwork) worker(i int) {
	sh := sn.shards[i]
	for w := range sn.workCh[i] {
		sn.ingest(sh, w.readParity)
		sh.Run(w.end)
		sn.doneCh <- struct{}{}
	}
}

// Close stops the shard worker goroutines. The network remains usable;
// the next run restarts them. Only needed by callers that create many
// sharded networks in one process.
func (sn *ShardedNetwork) Close() {
	for _, ch := range sn.workCh {
		close(ch)
	}
	sn.workCh, sn.doneCh = nil, nil
}

// round executes one window on every shard in parallel: each shard
// ingests the previous window's handoffs, then runs its events through
// end (inclusive) and parks its clock there. The channel barrier at
// entry and exit establishes the happens-before edges the lock-free
// handoff buffers rely on.
func (sn *ShardedNetwork) round(end time.Duration) {
	sn.startWorkers()
	readParity := sn.writeParity
	sn.writeParity ^= 1
	sn.windowEnd = end
	sn.running = true
	w := shardWork{end: end, readParity: readParity}
	for _, ch := range sn.workCh {
		ch <- w
	}
	for range sn.shards {
		<-sn.doneCh
	}
	sn.running = false
	for _, sh := range sn.shards {
		if sh.violation != "" {
			msg := sh.violation
			sh.violation = ""
			panic(msg)
		}
	}
	if end > sn.now {
		sn.now = end
	}
}

// nextTime returns the earliest pending occurrence across all shards and
// un-ingested handoffs, letting the window loop jump over idle gaps
// instead of grinding empty lookahead-sized windows through them.
func (sn *ShardedNetwork) nextTime() (time.Duration, bool) {
	var best time.Duration
	found := false
	for _, sh := range sn.shards {
		if at, ok := sh.NextEventAt(); ok && (!found || at < best) {
			best, found = at, true
		}
	}
	for _, q := range sn.out[sn.writeParity] {
		for i := range q {
			if at := q[i].at; !found || at < best {
				best, found = at, true
			}
		}
	}
	return best, found
}

// handoffDue reports whether any un-ingested handoff is due at or before t.
func (sn *ShardedNetwork) handoffDue(t time.Duration) bool {
	for _, q := range sn.out[sn.writeParity] {
		for i := range q {
			if q[i].at <= t {
				return true
			}
		}
	}
	return false
}

// Run executes events until the virtual clock would pass deadline, then
// parks every shard's clock at the deadline. Single-shard networks run
// the plain event loop; multi-shard networks advance in conservative
// windows of at most the lookahead.
func (sn *ShardedNetwork) Run(deadline time.Duration) {
	if len(sn.shards) == 1 {
		sn.shards[0].Run(deadline)
		sn.now = deadline
		return
	}
	for sn.now < deadline {
		end := deadline
		if t, ok := sn.nextTime(); ok && t < deadline {
			if t < sn.now {
				t = sn.now
			}
			if e := t + sn.lookahead; e < deadline {
				end = e
			}
		}
		sn.round(end)
	}
	// A packet sent in the final window with latency exactly equal to
	// the lookahead lands precisely on the deadline; deliver those too,
	// matching the single loop's inclusive deadline.
	for sn.handoffDue(deadline) {
		sn.round(deadline)
	}
}

// RunFor advances the simulation by d from the current time.
func (sn *ShardedNetwork) RunFor(d time.Duration) { sn.Run(sn.now + d) }

// RunUntilIdle executes events until every shard's queue and every
// handoff queue drains, or about maxEvents have run (the cap is checked
// between windows, so the count may overshoot by up to one window). It
// returns the number of events executed.
func (sn *ShardedNetwork) RunUntilIdle(maxEvents int) int {
	if len(sn.shards) == 1 {
		k := sn.shards[0].RunUntilIdle(maxEvents)
		sn.now = sn.shards[0].Now()
		return k
	}
	total := 0
	for total < maxEvents {
		t, ok := sn.nextTime()
		if !ok {
			break
		}
		if t < sn.now {
			t = sn.now
		}
		before := sn.Executed()
		sn.round(t + sn.lookahead)
		total += int(sn.Executed() - before)
	}
	// Fully drained: settle the fleet on the quiescent frontier — the
	// last executed event's time — instead of the final window's end.
	// The single loop leaves Now() there, and rewinding keeps simulation
	// end times identical across shard counts. Safe because nothing is
	// queued: the shard cursors may sit ahead of the clock, a regime
	// scheduleEvent already handles.
	if _, ok := sn.nextTime(); !ok && total > 0 {
		frontier := time.Duration(0)
		for _, sh := range sn.shards {
			if sh.lastBusy > frontier {
				frontier = sh.lastBusy
			}
		}
		if frontier > 0 && frontier < sn.now {
			sn.now = frontier
			for _, sh := range sn.shards {
				sh.now = frontier
			}
		}
	}
	return total
}

// Pending returns the number of live queued events across all shards
// plus cross-shard deliveries still in handoff queues.
func (sn *ShardedNetwork) Pending() int {
	n := 0
	for _, sh := range sn.shards {
		n += sh.Pending()
	}
	for p := 0; p < 2; p++ {
		for _, q := range sn.out[p] {
			n += len(q)
		}
	}
	return n
}

// Delivered returns the total delivered-packet count across shards.
func (sn *ShardedNetwork) Delivered() uint64 {
	var n uint64
	for _, sh := range sn.shards {
		n += sh.Delivered
	}
	return n
}

// DroppedNoRoute returns the total no-route drop count across shards.
func (sn *ShardedNetwork) DroppedNoRoute() uint64 {
	var n uint64
	for _, sh := range sn.shards {
		n += sh.DroppedNoRoute
	}
	return n
}

// DroppedByPolicy returns the total policy drop count across shards.
func (sn *ShardedNetwork) DroppedByPolicy() uint64 {
	var n uint64
	for _, sh := range sn.shards {
		n += sh.DroppedByPolicy
	}
	return n
}

// Coalesced returns the total deliveries that rode another delivery's
// event record across shards.
func (sn *ShardedNetwork) Coalesced() uint64 {
	var n uint64
	for _, sh := range sn.shards {
		n += sh.Coalesced
	}
	return n
}

// Executed returns the total number of events executed across shards.
func (sn *ShardedNetwork) Executed() uint64 {
	var n uint64
	for _, sh := range sn.shards {
		n += sh.executed
	}
	return n
}

// BatchRuns returns the total train runs handed to BatchNodes in one
// call (length ≥ 2) across shards.
func (sn *ShardedNetwork) BatchRuns() uint64 {
	var n uint64
	for _, sh := range sn.shards {
		n += sh.BatchRuns
	}
	return n
}

// Runs returns the total same-destination runs carved out of trains
// across shards.
func (sn *ShardedNetwork) Runs() uint64 {
	var n uint64
	for _, sh := range sn.shards {
		n += sh.Runs
	}
	return n
}

// BatchHitRatio returns the fleet-wide fraction of train runs handed to
// a BatchNode in one call.
func (sn *ShardedNetwork) BatchHitRatio() float64 {
	runs := sn.Runs()
	if runs == 0 {
		return 0
	}
	return float64(sn.BatchRuns()) / float64(runs)
}

// TrainLens returns the merged train-length histogram across shards.
func (sn *ShardedNetwork) TrainLens() metrics.LenHist {
	var h metrics.LenHist
	for _, sh := range sn.shards {
		h.Merge(&sh.TrainLens)
	}
	return h
}

// RunLens returns the merged run-length histogram across shards.
func (sn *ShardedNetwork) RunLens() metrics.LenHist {
	var h metrics.LenHist
	for _, sh := range sn.shards {
		h.Merge(&sh.RunLens)
	}
	return h
}

// String summarizes the whole sharded network, aggregating node counts,
// pending events, and delivery/drop statistics across every shard.
func (sn *ShardedNetwork) String() string {
	nodes := 0
	for _, sh := range sn.shards {
		nodes += len(sh.nodes)
	}
	var b strings.Builder
	trains, runs := sn.TrainLens(), sn.RunLens()
	fmt.Fprintf(&b, "netsim{shards=%d t=%s nodes=%d pending=%d delivered=%d dropped=%d+%d trains{%s} runs{%s} batch-hit=%.2f",
		len(sn.shards), sn.now, nodes, sn.Pending(), sn.Delivered(),
		sn.DroppedNoRoute(), sn.DroppedByPolicy(), trains.String(), runs.String(), sn.BatchHitRatio())
	for i, sh := range sn.shards {
		fmt.Fprintf(&b, " s%d:%d", i, sh.Pending())
	}
	b.WriteByte('}')
	return b.String()
}
