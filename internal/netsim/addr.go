// Package netsim provides a deterministic discrete-event network
// simulator. It models hosts addressed by IPv4-style addresses exchanging
// TCP-like segments over links with configurable latency, and drives all
// timers and deliveries from a single virtual clock. Every run with the
// same seed and the same sequence of API calls produces the same packet
// timeline, which makes the failure-recovery experiments in this
// repository exactly reproducible.
package netsim

import "fmt"

// IP is an IPv4-style host address. The zero value is the unspecified
// address and is never routable.
type IP uint32

// IPv4 assembles an IP from its dotted-quad components.
func IPv4(a, b, c, d byte) IP {
	return IP(uint32(a)<<24 | uint32(b)<<16 | uint32(c)<<8 | uint32(d))
}

// String renders the address in dotted-quad form.
func (ip IP) String() string {
	return fmt.Sprintf("%d.%d.%d.%d", byte(ip>>24), byte(ip>>16), byte(ip>>8), byte(ip))
}

// HostPort identifies one endpoint of a transport connection.
type HostPort struct {
	IP   IP
	Port uint16
}

func (hp HostPort) String() string {
	return fmt.Sprintf("%s:%d", hp.IP, hp.Port)
}

// FourTuple identifies a TCP connection by both endpoints. Src is the
// endpoint that initiated the connection when that distinction matters;
// for flow lookup the tuple is used as seen on the wire.
type FourTuple struct {
	Src, Dst HostPort
}

func (ft FourTuple) String() string {
	return fmt.Sprintf("%s->%s", ft.Src, ft.Dst)
}

// Reverse returns the tuple as seen by packets flowing the other way.
func (ft FourTuple) Reverse() FourTuple {
	return FourTuple{Src: ft.Dst, Dst: ft.Src}
}
