package netsim

import (
	"fmt"
	"strings"
)

// TCPFlags is the set of TCP control bits carried by a segment.
type TCPFlags uint8

const (
	FlagSYN TCPFlags = 1 << iota
	FlagACK
	FlagFIN
	FlagRST
	FlagPSH
)

// Has reports whether every flag in f is set.
func (fl TCPFlags) Has(f TCPFlags) bool { return fl&f == f }

func (fl TCPFlags) String() string {
	var parts []string
	if fl.Has(FlagSYN) {
		parts = append(parts, "SYN")
	}
	if fl.Has(FlagACK) {
		parts = append(parts, "ACK")
	}
	if fl.Has(FlagFIN) {
		parts = append(parts, "FIN")
	}
	if fl.Has(FlagRST) {
		parts = append(parts, "RST")
	}
	if fl.Has(FlagPSH) {
		parts = append(parts, "PSH")
	}
	if len(parts) == 0 {
		return "-"
	}
	return strings.Join(parts, "|")
}

// Encap is an IP-in-IP outer header, used by the L4 load balancer to
// forward VIP traffic to a particular instance without rewriting the
// inner addresses (as Ananta does).
type Encap struct {
	Src, Dst IP
}

// Packet is a TCP/IP segment in flight. Packets are treated as immutable
// once sent. A pooled packet (from Network.AllocPacket) is owned by
// whoever holds it: the final receiver either releases it back to the
// pool or mutates headers in place and re-Sends it, transferring
// ownership. Non-pooled packets must never be mutated after Send.
type Packet struct {
	Src, Dst HostPort
	Flags    TCPFlags
	Seq, Ack uint32
	Window   uint32
	Payload  []byte

	// Outer, when non-nil, is an IP-in-IP encapsulation header. Routing
	// uses Outer.Dst; the receiver decapsulates and sees the inner packet.
	Outer *Encap

	// outerStore backs Outer for pooled packets so encapsulating a packet
	// does not allocate. pooled marks packets eligible for recycling via
	// Network.ReleasePacket; it is cleared while the packet sits on the
	// freelist to catch double releases.
	outerStore Encap
	pooled     bool
}

// Pooled reports whether the packet came from the network's packet pool
// and may therefore be mutated in place (the holder owns it) and must
// eventually be released or re-sent.
func (p *Packet) Pooled() bool { return p.pooled }

// SetOuter encapsulates the packet, storing the outer header inline to
// avoid an allocation.
func (p *Packet) SetOuter(src, dst IP) {
	p.outerStore = Encap{Src: src, Dst: dst}
	p.Outer = &p.outerStore
}

// Clone returns a deep copy of the packet, safe to mutate. The copy is
// not pooled and is never recycled.
func (p *Packet) Clone() *Packet {
	q := *p
	q.pooled = false
	if p.Payload != nil {
		q.Payload = append([]byte(nil), p.Payload...)
	}
	if p.Outer != nil {
		q.outerStore = *p.Outer
		q.Outer = &q.outerStore
	}
	return &q
}

// Tuple returns the connection tuple as seen on the wire (inner header).
func (p *Packet) Tuple() FourTuple {
	return FourTuple{Src: p.Src, Dst: p.Dst}
}

// Len returns the payload length in bytes.
func (p *Packet) Len() int { return len(p.Payload) }

// SeqEnd returns the sequence number immediately after this segment's
// data, accounting for the SYN and FIN flags each consuming one unit of
// sequence space.
func (p *Packet) SeqEnd() uint32 {
	end := p.Seq + uint32(len(p.Payload))
	if p.Flags.Has(FlagSYN) {
		end++
	}
	if p.Flags.Has(FlagFIN) {
		end++
	}
	return end
}

func (p *Packet) String() string {
	s := fmt.Sprintf("%s %s seq=%d ack=%d len=%d", p.Tuple(), p.Flags, p.Seq, p.Ack, len(p.Payload))
	if p.Outer != nil {
		s += fmt.Sprintf(" encap(%s->%s)", p.Outer.Src, p.Outer.Dst)
	}
	return s
}
