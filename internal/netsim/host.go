package netsim

import "fmt"

// PortHandler receives packets addressed to one local port of a Host.
type PortHandler interface {
	HandleSegment(pkt *Packet)
}

// PortHandlerFunc adapts a function to the PortHandler interface.
type PortHandlerFunc func(pkt *Packet)

// HandleSegment calls f(pkt).
func (f PortHandlerFunc) HandleSegment(pkt *Packet) { f(pkt) }

// connKey demuxes established connections: local port plus remote
// endpoint. Listeners are keyed by local port alone.
type connKey struct {
	localPort uint16
	remote    HostPort
}

// Host is a convenience node that owns one IP address and demultiplexes
// incoming segments to per-connection or per-listener handlers, the way a
// kernel demuxes to sockets. TCP endpoints and simulated servers build on
// it.
type Host struct {
	net       *Network
	ip        IP
	conns     map[connKey]PortHandler
	listeners map[uint16]PortHandler
	nextPort  uint16
	dead      bool
	// Default, when non-nil, receives packets that match no connection or
	// listener (used to emit RSTs or to implement raw packet drivers).
	Default PortHandler
}

// NewHost creates a host, attaches it to the network at ip, and returns
// it. Ephemeral ports are allocated starting at 32768.
func NewHost(n *Network, ip IP) *Host {
	h := &Host{
		net:       n,
		ip:        ip,
		conns:     make(map[connKey]PortHandler),
		listeners: make(map[uint16]PortHandler),
		nextPort:  32768,
	}
	n.Attach(ip, h)
	return h
}

// Network returns the network the host is attached to.
func (h *Host) Network() *Network { return h.net }

// IP returns the host's address.
func (h *Host) IP() IP { return h.ip }

// Addr returns the host's address with the given port.
func (h *Host) Addr(port uint16) HostPort { return HostPort{IP: h.ip, Port: port} }

// AllocPort returns a free ephemeral port. It panics if the port space is
// exhausted, which indicates a connection leak in a simulation.
func (h *Host) AllocPort() uint16 {
	for i := 0; i < 65536; i++ {
		p := h.nextPort
		h.nextPort++
		if h.nextPort == 0 {
			h.nextPort = 32768
		}
		if p == 0 {
			continue
		}
		if _, busy := h.listeners[p]; busy {
			continue
		}
		// A port is reusable when no connection currently uses it locally.
		if !h.portInUse(p) {
			return p
		}
	}
	panic(fmt.Sprintf("netsim: host %s out of ephemeral ports", h.ip))
}

func (h *Host) portInUse(p uint16) bool {
	for k := range h.conns {
		if k.localPort == p {
			return true
		}
	}
	return false
}

// Listen registers handler for new segments addressed to port that match
// no established connection.
func (h *Host) Listen(port uint16, handler PortHandler) {
	h.listeners[port] = handler
}

// Unlisten removes the listener on port.
func (h *Host) Unlisten(port uint16) { delete(h.listeners, port) }

// Register binds an established-connection handler for segments arriving
// at localPort from remote.
func (h *Host) Register(localPort uint16, remote HostPort, handler PortHandler) {
	h.conns[connKey{localPort, remote}] = handler
}

// Unregister removes an established-connection binding.
func (h *Host) Unregister(localPort uint16, remote HostPort) {
	delete(h.conns, connKey{localPort, remote})
}

// Detach removes the host from the network; pending packets to it are
// dropped and the host goes silent (a dead machine neither receives nor
// transmits — timers owned by its protocol stacks must check Alive before
// emitting packets). Used to model machine failure.
func (h *Host) Detach() {
	h.dead = true
	h.net.Detach(h.ip)
}

// Reattach re-registers the host on the network after a Detach.
func (h *Host) Reattach() {
	h.dead = false
	h.net.Attach(h.ip, h)
}

// Reset clears every connection and listener registration plus the
// default handler — the kernel state wipe of a machine reboot.
// Detach → Reset → (rebuild handlers) → Reattach models a host restart;
// without the reset, handlers of the previous incarnation would keep
// receiving packets addressed to their old connections.
func (h *Host) Reset() {
	h.conns = make(map[connKey]PortHandler)
	h.listeners = make(map[uint16]PortHandler)
	h.Default = nil
}

// Alive reports whether the host is attached (not failed).
func (h *Host) Alive() bool { return !h.dead }

// HandlePacket implements Node. Encapsulated packets are decapsulated
// before demux, matching IP-in-IP behaviour where the host terminates the
// tunnel.
func (h *Host) HandlePacket(pkt *Packet) {
	if pkt.Outer != nil {
		if pkt.Pooled() {
			// The host owns a pooled packet; strip the tunnel in place.
			pkt.Outer = nil
		} else {
			inner := *pkt
			inner.Outer = nil
			pkt = &inner
		}
	}
	if c, ok := h.conns[connKey{pkt.Dst.Port, pkt.Src}]; ok {
		c.HandleSegment(pkt)
		return
	}
	if l, ok := h.listeners[pkt.Dst.Port]; ok {
		l.HandleSegment(pkt)
		return
	}
	if h.Default != nil {
		h.Default.HandleSegment(pkt)
	}
}
