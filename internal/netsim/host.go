package netsim

import "fmt"

// PortHandler receives packets addressed to one local port of a Host.
type PortHandler interface {
	HandleSegment(pkt *Packet)
}

// PortHandlerFunc adapts a function to the PortHandler interface.
type PortHandlerFunc func(pkt *Packet)

// HandleSegment calls f(pkt).
func (f PortHandlerFunc) HandleSegment(pkt *Packet) { f(pkt) }

// BatchPortHandler is an optional extension of PortHandler: the host's
// batch demux hands a run of consecutive same-connKey segments over in
// one call, amortizing the conns probe across the run. The handler must
// be observably equivalent to per-segment HandleSegment calls in order;
// in particular, if processing segment i changes where later segments
// of the run would demux (the connection unregisters itself), the
// handler must push the remainder back through Host.Demux — see
// tcp.Conn.HandleSegmentBatch. The slice is scratch owned by the host
// and must not be retained.
type BatchPortHandler interface {
	PortHandler
	HandleSegmentBatch(pkts []*Packet)
}

// connKey demuxes established connections: local port plus remote
// endpoint. Listeners are keyed by local port alone.
type connKey struct {
	localPort uint16
	remote    HostPort
}

// Host is a convenience node that owns one IP address and demultiplexes
// incoming segments to per-connection or per-listener handlers, the way a
// kernel demuxes to sockets. TCP endpoints and simulated servers build on
// it.
type Host struct {
	net       *Network
	ip        IP
	conns     map[connKey]PortHandler
	listeners map[uint16]PortHandler
	// portRefs counts live connection registrations per local port so
	// AllocPort is O(1) instead of scanning conns (which holds every
	// established connection at mflow scale).
	portRefs map[uint16]int
	nextPort uint16
	dead     bool
	// batchScratch backs the sub-run slice HandleBatch hands to a
	// BatchPortHandler; reused across runs, never retained by handlers.
	batchScratch []*Packet
	// Default, when non-nil, receives packets that match no connection or
	// listener (used to emit RSTs or to implement raw packet drivers).
	Default PortHandler
}

// NewHost creates a host, attaches it to the network at ip, and returns
// it. Ephemeral ports are allocated starting at 32768.
func NewHost(n *Network, ip IP) *Host {
	h := &Host{
		net:       n,
		ip:        ip,
		conns:     make(map[connKey]PortHandler),
		listeners: make(map[uint16]PortHandler),
		portRefs:  make(map[uint16]int),
		nextPort:  32768,
	}
	n.Attach(ip, h)
	return h
}

// Network returns the network the host is attached to.
func (h *Host) Network() *Network { return h.net }

// IP returns the host's address.
func (h *Host) IP() IP { return h.ip }

// Addr returns the host's address with the given port.
func (h *Host) Addr(port uint16) HostPort { return HostPort{IP: h.ip, Port: port} }

// AllocPort returns a free ephemeral port. It panics if the port space is
// exhausted, which indicates a connection leak in a simulation.
func (h *Host) AllocPort() uint16 {
	for i := 0; i < 65536; i++ {
		p := h.nextPort
		h.nextPort++
		if h.nextPort == 0 {
			h.nextPort = 32768
		}
		if p == 0 {
			continue
		}
		if _, busy := h.listeners[p]; busy {
			continue
		}
		// A port is reusable when no connection currently uses it locally.
		if h.portRefs[p] == 0 {
			return p
		}
	}
	panic(fmt.Sprintf("netsim: host %s out of ephemeral ports", h.ip))
}

// Listen registers handler for new segments addressed to port that match
// no established connection.
func (h *Host) Listen(port uint16, handler PortHandler) {
	h.listeners[port] = handler
}

// Unlisten removes the listener on port.
func (h *Host) Unlisten(port uint16) { delete(h.listeners, port) }

// Register binds an established-connection handler for segments arriving
// at localPort from remote.
func (h *Host) Register(localPort uint16, remote HostPort, handler PortHandler) {
	k := connKey{localPort, remote}
	if _, existed := h.conns[k]; !existed {
		h.portRefs[localPort]++
	}
	h.conns[k] = handler
}

// Unregister removes an established-connection binding.
func (h *Host) Unregister(localPort uint16, remote HostPort) {
	k := connKey{localPort, remote}
	if _, existed := h.conns[k]; existed {
		delete(h.conns, k)
		if h.portRefs[localPort]--; h.portRefs[localPort] == 0 {
			delete(h.portRefs, localPort)
		}
	}
}

// Detach removes the host from the network; pending packets to it are
// dropped and the host goes silent (a dead machine neither receives nor
// transmits — timers owned by its protocol stacks must check Alive before
// emitting packets). Used to model machine failure.
func (h *Host) Detach() {
	h.dead = true
	h.net.Detach(h.ip)
}

// Reattach re-registers the host on the network after a Detach.
func (h *Host) Reattach() {
	h.dead = false
	h.net.Attach(h.ip, h)
}

// Reset clears every connection and listener registration plus the
// default handler — the kernel state wipe of a machine reboot.
// Detach → Reset → (rebuild handlers) → Reattach models a host restart;
// without the reset, handlers of the previous incarnation would keep
// receiving packets addressed to their old connections.
func (h *Host) Reset() {
	h.conns = make(map[connKey]PortHandler)
	h.listeners = make(map[uint16]PortHandler)
	h.portRefs = make(map[uint16]int)
	h.Default = nil
}

// Alive reports whether the host is attached (not failed).
func (h *Host) Alive() bool { return !h.dead }

// decap strips one layer of encapsulation, matching IP-in-IP behaviour
// where the host terminates the tunnel. Pooled packets are stripped in
// place; unpooled ones (a tracer may retain them) are shallow-copied.
func (h *Host) decap(pkt *Packet) *Packet {
	if pkt.Outer == nil {
		return pkt
	}
	if pkt.Pooled() {
		// The host owns a pooled packet; strip the tunnel in place.
		pkt.Outer = nil
		return pkt
	}
	inner := *pkt
	inner.Outer = nil
	return &inner
}

// Demux routes an already-decapsulated segment to its connection,
// listener, or default handler — the tail of HandlePacket. Exposed so a
// BatchPortHandler that invalidates its own demux entry mid-run (a
// connection that closes itself) can re-route the run's remaining
// segments exactly as scalar delivery would have.
func (h *Host) Demux(pkt *Packet) {
	if c, ok := h.conns[connKey{pkt.Dst.Port, pkt.Src}]; ok {
		c.HandleSegment(pkt)
		return
	}
	if l, ok := h.listeners[pkt.Dst.Port]; ok {
		l.HandleSegment(pkt)
		return
	}
	if h.Default != nil {
		h.Default.HandleSegment(pkt)
	}
}

// HandlePacket implements Node.
func (h *Host) HandlePacket(pkt *Packet) {
	h.Demux(h.decap(pkt))
}

// HandleBatch implements BatchNode: one conns probe per run of
// consecutive same-connKey segments, instead of per segment. The demux
// decision for a run is made once, before its first segment is
// processed; a handler whose processing invalidates that decision
// mid-run re-routes via Demux (see BatchPortHandler). Runs that do not
// resolve to a batch-capable handler replay the exact scalar path —
// full per-segment demux — so listener accepts that register a
// connection mid-run (SYN then ACK in one train) demux identically.
func (h *Host) HandleBatch(pkts []*Packet) {
	run := h.batchScratch[:0]
	var runKey connKey
	for _, pkt := range pkts {
		pkt = h.decap(pkt)
		k := connKey{pkt.Dst.Port, pkt.Src}
		if len(run) > 0 && k == runKey {
			run = append(run, pkt)
			continue
		}
		h.flushRun(run, runKey)
		run = append(run[:0], pkt)
		runKey = k
	}
	h.flushRun(run, runKey)
	h.batchScratch = run[:0]
}

// flushRun dispatches one same-connKey run. Runs of length ≥ 2 whose
// handler — the registered connection, or the default handler when the
// key matches neither a connection nor a listener — implements
// BatchPortHandler are handed over in one call; everything else goes
// through per-segment Demux, which re-probes per segment exactly like
// scalar delivery.
func (h *Host) flushRun(run []*Packet, k connKey) {
	if len(run) == 0 {
		return
	}
	if len(run) > 1 {
		target, isConn := h.conns[k]
		if !isConn {
			if _, listening := h.listeners[k.localPort]; !listening {
				target = h.Default
			}
		}
		if bh, ok := target.(BatchPortHandler); ok {
			bh.HandleSegmentBatch(run)
			return
		}
	}
	for _, p := range run {
		h.Demux(p)
	}
}
