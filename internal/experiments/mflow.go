package experiments

import (
	"bytes"
	"fmt"
	"runtime"
	"strings"
	"time"

	"repro/internal/flowmap"
	"repro/internal/netsim"
	"repro/internal/stateless"
	"repro/internal/tcp"
)

// The mflow experiment is the scale headline the sharded dataplane
// unlocks: around a million concurrent flows held open across a fleet of
// L7 LB instances, a mid-run failure storm killing a slice of the fleet,
// and per-flow recovery verified for every survivor. The full Yoda stack
// (real TCP endpoints, TCPStore writes) costs tens of kilobytes per
// flow, so at this scale mflow models each tier with a compact
// flow-table abstraction instead:
//
//   - drivers: one host per driver owning a block of client flows, one
//     byte of state per flow (no tcp.Conn);
//   - muxes: stateless L4 muxes — rendezvous hashing over the live
//     instance list, no affinity table (the property Yoda relies on is
//     exactly that HRW only remaps flows whose instance died);
//   - instances: a compact flow table (flowmap.Compact) mapping
//     tuple -> backend index, installed on SYN, consulted on data,
//     deleted on FIN — the Concury-style structure the production l4lb
//     and core layers share, which is what pushes the per-flow memory
//     headline below 40 bytes. A mid-flow packet with no entry is a
//     recovered flow (its instance died); the rendezvous re-pick lands
//     every such flow on the same replacement instance from every mux,
//     which recovers it and counts it;
//   - backends: stateless responders replying straight to the client
//     (DSR), so returns skip the mux tier.
//
// Everything is RNG-free and timer-deterministic, so the result summary
// is byte-identical across runs and across shard counts — which is what
// lets the determinism tests compare a 1-shard run against a 4-shard
// run directly.

// MflowConfig parameterizes the million-flow experiment.
type MflowConfig struct {
	Seed   int64
	Shards int

	// Recovery selects the recovery model. "" (the default) is the pure
	// HRW re-pick: any mid-flow packet with no table entry is adopted
	// unconditionally. "hybrid" routes through the stateless derivation
	// table: muxes pick by stateless.Rendezvous, and an instance adopts
	// an orphan only when the table's dead-owner chain proves some dead
	// instance could have owned it — unprovable orphans are rejected
	// (AdoptRejected), which in a correct run never fires.
	Recovery string

	Flows     int // total concurrent flows (rounded up to a driver multiple)
	Drivers   int // client driver hosts; each owns Flows/Drivers flows
	Muxes     int // stateless L4 muxes, spread across shards
	Instances int // L7 LB instances
	Backends  int // backend responders
	StormKill int // instances killed in the mid-run failure storm

	BatchSize  int           // flows each driver touches per pacing tick
	BatchEvery time.Duration // pacing tick
	Settle     time.Duration // post-phase settling time (covers client RTT)

	// TierB, when true, rides a small set of real TCP echo connections
	// alongside the compact-flow population with Tier B event coalescing
	// on end to end (delayed ACKs, 8-segment GSO trains, idle probing) —
	// DESIGN.md §14. Each sideband client pushes a 32 KiB write at every
	// phase boundary; the run then requires the echoes back intact, a
	// clean close, and the coalescing stats nonzero. ISNs are derived
	// from a fixed key so the sideband stays RNG-free and the summary
	// stays byte-identical across shard counts.
	TierB bool
}

// DefaultMflowConfig is the headline configuration: 2^20 flows over 16
// instances, 4 of which die mid-run.
func DefaultMflowConfig() MflowConfig {
	return MflowConfig{
		Seed:       1,
		Shards:     4,
		Flows:      1 << 20,
		Drivers:    32,
		Muxes:      8,
		Instances:  16,
		Backends:   32,
		StormKill:  4,
		BatchSize:  64,
		BatchEvery: 2 * time.Millisecond,
		Settle:     300 * time.Millisecond,
		TierB:      true,
	}
}

// mfHash is HRW-style tuple hashing for mflow (FNV-1a over the tuple
// words, splitmix64 finalizer, salted per candidate). It is factored
// into a salt-independent FNV prefix over the four tuple words and a
// per-salt finish, so an HRW pick over k candidates hashes the tuple
// once instead of k times — bit-identical to the unfactored chain,
// since FNV-1a folds words left to right and the salt is the last one.
func mfHash(ft netsim.FourTuple, salt uint64) uint64 {
	return mfHashFinish(mfHashPrefix(ft), salt)
}

const mfFNVOffset, mfFNVPrime uint64 = 14695981039346656037, 1099511628211

func mfHashPrefix(ft netsim.FourTuple) uint64 {
	h := mfFNVOffset
	h = (h ^ uint64(ft.Src.IP)) * mfFNVPrime
	h = (h ^ uint64(ft.Dst.IP)) * mfFNVPrime
	h = (h ^ uint64(ft.Src.Port)) * mfFNVPrime
	h = (h ^ uint64(ft.Dst.Port)) * mfFNVPrime
	return h
}

func mfHashFinish(prefix, salt uint64) uint64 {
	h := (prefix ^ salt) * mfFNVPrime
	h ^= h >> 30
	h *= 0xbf58476d1ce4e5b9
	h ^= h >> 27
	h *= 0x94d049bb133111eb
	h ^= h >> 31
	return h
}

// mfPick selects by highest random weight: removing candidates only
// remaps tuples whose winner was removed, which is the recovery-routing
// property the experiment leans on.
func mfPick(ft netsim.FourTuple, cands []netsim.IP) netsim.IP {
	prefix := mfHashPrefix(ft)
	var best netsim.IP
	var bestW uint64
	for _, ip := range cands {
		if w := mfHashFinish(prefix, uint64(ip)); w > bestW || best == 0 {
			best, bestW = ip, w
		}
	}
	return best
}

// mfPickIdx is mfPick returning the winner's index instead of its IP —
// the form the compact flow table stores, since its values are small
// integers rather than addresses. The weight function is identical, so
// cands[mfPickIdx(ft, cands)] == mfPick(ft, cands).
func mfPickIdx(ft netsim.FourTuple, cands []netsim.IP) int {
	prefix := mfHashPrefix(ft)
	best := -1
	var bestW uint64
	for i, ip := range cands {
		if w := mfHashFinish(prefix, uint64(ip)); w > bestW || best < 0 {
			best, bestW = i, w
		}
	}
	return best
}

// mfMux is a stateless L4 mux: encapsulate toward the HRW winner over
// the live instance list. insts is replaced (never mutated in place) by
// the driver between runs, so shard goroutines read it lock-free.
type mfMux struct {
	net   *netsim.Network
	vip   netsim.IP
	insts []netsim.IP
	tbl   *stateless.Table // hybrid mode: pick must match the table's Owner
	Fwd   uint64
}

func (m *mfMux) HandlePacket(pkt *netsim.Packet) {
	if len(m.insts) == 0 {
		m.net.ReleasePacket(pkt)
		return
	}
	m.Fwd++
	var to netsim.IP
	if m.tbl != nil {
		to = stateless.Rendezvous(pkt.Tuple(), m.insts)
	} else {
		to = mfPick(pkt.Tuple(), m.insts)
	}
	pkt.SetOuter(m.vip, to)
	m.net.Send(pkt)
}

// HandleBatch implements netsim.BatchNode. Per-packet picks stay (each
// tuple hashes independently); the batch entry amortizes the event
// loop's per-delivery node resolution and dispatch overhead.
func (m *mfMux) HandleBatch(pkts []*netsim.Packet) {
	for _, p := range pkts {
		m.HandlePacket(p)
	}
}

// mfInstance is a flow-table L7 LB instance. Its table is the compact
// flow map storing the backend's index in the (fleet-wide, immutable)
// backend slice — 16 bytes per slot instead of a Go map entry, which is
// where the experiment's heapBytes/flow headline comes from.
//
// False-hit discipline: the flowmap contract permits a never-inserted
// tuple to alias a live entry's 64-bit tag. Here a false hit would
// route a recovered flow to the aliased entry's backend without
// counting it — but flow identity decisions hang off packet flags (SYN
// installs, FIN deletes), never off the lookup, and a 64-bit collision
// within one instance's table is beyond workload reach, so the
// recovery invariants stay exact.
type mfInstance struct {
	net      *netsim.Network
	ip       netsim.IP
	backends []netsim.IP
	table    *flowmap.Compact
	tbl      *stateless.Table // hybrid mode: gates orphan adoption
	cand     []netsim.IP      // dead-owner candidate scratch

	Installed      uint64 // SYN: entry created
	Recovered      uint64 // mid-flow packet with no entry: flow adopted
	RecoveredOnFin uint64 // FIN with no entry: must stay 0 (HRW stability)
	Removed        uint64 // FIN: entry deleted
	AdoptRejected  uint64 // hybrid: orphan with no dead-owner proof (must stay 0)
}

func (in *mfInstance) HandlePacket(pkt *netsim.Packet) {
	pkt.Outer = nil // decapsulate
	t := pkt.Tuple()
	var be netsim.IP
	switch {
	case pkt.Flags.Has(netsim.FlagSYN):
		idx := mfPickIdx(t, in.backends)
		in.table.Insert(t, flowmap.Value(idx))
		in.Installed++
		be = in.backends[idx]
	case pkt.Flags.Has(netsim.FlagFIN):
		if v, ok := in.table.LookupMaybe(t); ok {
			in.table.Delete(t)
			in.Removed++
			be = in.backends[v]
		} else {
			be = mfPick(t, in.backends)
			in.RecoveredOnFin++
		}
	default:
		if v, ok := in.table.LookupMaybe(t); ok {
			be = in.backends[v]
		} else {
			// The flow's original instance died; this instance is the HRW
			// re-pick and adopts the flow. In hybrid mode adoption must be
			// proved: the derivation table's rendezvous chain for the tuple
			// has to pass through at least one dead instance before reaching
			// us, and the re-derived backend index must be in range —
			// otherwise the packet is a stray and is dropped, not installed.
			idx := mfPickIdx(t, in.backends)
			if in.tbl != nil {
				in.cand = in.tbl.DeadOwnerCandidates(t.Dst.IP, t, in.cand)
				if len(in.cand) == 0 || idx < 0 || idx >= len(in.backends) {
					in.AdoptRejected++
					in.net.ReleasePacket(pkt)
					return
				}
			}
			in.table.Insert(t, flowmap.Value(idx))
			in.Recovered++
			be = in.backends[idx]
		}
	}
	pkt.SetOuter(in.ip, be)
	in.net.Send(pkt)
}

// HandleBatch implements netsim.BatchNode (see mfMux.HandleBatch).
func (in *mfInstance) HandleBatch(pkts []*netsim.Packet) {
	for _, p := range pkts {
		in.HandlePacket(p)
	}
}

// mfBackend replies to every request straight to the client (DSR),
// reusing the pooled packet: zero allocations per exchange.
type mfBackend struct {
	net  *netsim.Network
	Syns uint64
	Data uint64
	Fins uint64
}

func (b *mfBackend) HandlePacket(pkt *netsim.Packet) {
	pkt.Outer = nil
	switch {
	case pkt.Flags.Has(netsim.FlagSYN):
		b.Syns++
		pkt.Flags = netsim.FlagSYN | netsim.FlagACK
	case pkt.Flags.Has(netsim.FlagFIN):
		b.Fins++
		pkt.Flags = netsim.FlagFIN | netsim.FlagACK
	default:
		b.Data++
		pkt.Flags = netsim.FlagACK
	}
	pkt.Src, pkt.Dst = pkt.Dst, pkt.Src
	b.net.Send(pkt)
}

// HandleBatch implements netsim.BatchNode (see mfMux.HandleBatch).
func (b *mfBackend) HandleBatch(pkts []*netsim.Packet) {
	for _, p := range pkts {
		b.HandlePacket(p)
	}
}

// Driver flow states.
const (
	mfIdle uint8 = iota
	mfSynSent
	mfEstablished
	mfProbeSent
	mfProbeAcked
	mfFinSent
	mfClosed
)

// Driver phases (what the next batch sends).
const (
	mfPhaseOpen uint8 = iota + 1
	mfPhaseProbe
	mfPhaseClose
)

// mfDriver owns a block of client flows: one byte of state per flow,
// ports basePort+i on its own IP. Batches are paced by a timer so a
// phase ramps over virtual time instead of detonating in one event.
type mfDriver struct {
	net    *netsim.Network
	ip     netsim.IP
	mux    netsim.HostPort
	base   uint16
	state  []uint8
	batch  int
	every  time.Duration
	phase  uint8
	cursor int
	stepFn func()

	established int
	acked       int
	closed      int
}

func (d *mfDriver) start(phase uint8, after time.Duration) {
	d.phase, d.cursor = phase, 0
	d.net.Schedule(after, d.stepFn)
}

func (d *mfDriver) step() {
	end := d.cursor + d.batch
	if end > len(d.state) {
		end = len(d.state)
	}
	for i := d.cursor; i < end; i++ {
		pkt := d.net.AllocPacket()
		pkt.Src = netsim.HostPort{IP: d.ip, Port: d.base + uint16(i)}
		pkt.Dst = d.mux
		switch d.phase {
		case mfPhaseOpen:
			pkt.Flags = netsim.FlagSYN
			d.state[i] = mfSynSent
		case mfPhaseProbe:
			pkt.Flags = netsim.FlagPSH
			d.state[i] = mfProbeSent
		case mfPhaseClose:
			pkt.Flags = netsim.FlagFIN
			d.state[i] = mfFinSent
		}
		d.net.Send(pkt)
	}
	d.cursor = end
	if d.cursor < len(d.state) {
		d.net.Schedule(d.every, d.stepFn)
	}
}

func (d *mfDriver) HandlePacket(pkt *netsim.Packet) {
	i := int(pkt.Dst.Port) - int(d.base)
	if i >= 0 && i < len(d.state) {
		switch {
		case pkt.Flags.Has(netsim.FlagSYN | netsim.FlagACK):
			if d.state[i] == mfSynSent {
				d.state[i] = mfEstablished
				d.established++
			}
		case pkt.Flags.Has(netsim.FlagFIN | netsim.FlagACK):
			if d.state[i] == mfFinSent {
				d.state[i] = mfClosed
				d.closed++
			}
		case pkt.Flags.Has(netsim.FlagACK):
			if d.state[i] == mfProbeSent {
				d.state[i] = mfProbeAcked
				d.acked++
			}
		}
	}
	d.net.ReleasePacket(pkt)
}

// HandleBatch implements netsim.BatchNode (see mfMux.HandleBatch).
func (d *mfDriver) HandleBatch(pkts []*netsim.Packet) {
	for _, p := range pkts {
		d.HandlePacket(p)
	}
}

// Tier B sideband parameters: a handful of real tcp.Conn endpoints with
// event coalescing on, sized so GSO trains and delayed ACKs both engage
// (32 KiB ≫ 8×MSS) while staying a rounding error next to the
// million-flow population.
const (
	mfSidebandConns   = 4
	mfSidebandWrite   = 32 << 10
	mfSidebandGSOSegs = 8
	mfSidebandISNKey  = 0x5eedc0a1e5ced111 // fixed: keeps the sideband RNG-free
)

// mfSideband owns the Tier B echo connections. The server host lives on
// shard 0; client hosts are spread across shards like every other tier,
// so the sideband also exercises coalesced delivery over the SPSC
// cross-shard handoff.
type mfSideband struct {
	clients []*tcp.Conn
	servers []*tcp.Conn
	echoed  []int
	payload []byte
	writes  int
}

func newMfSideband(sn *netsim.ShardedNetwork, shards int) *mfSideband {
	sb := &mfSideband{
		echoed:  make([]int, mfSidebandConns),
		payload: bytes.Repeat([]byte("tierb"), mfSidebandWrite/5+1)[:mfSidebandWrite],
	}
	cfg := tcp.DefaultConfig()
	cfg.DelayedAck = true
	cfg.GSOSegs = mfSidebandGSOSegs
	cfg.ISNKey = mfSidebandISNKey

	srvHost := netsim.NewHost(sn.Shard(0), netsim.IPv4(10, 0, 3, 1))
	srvAddr := srvHost.Addr(7)
	tcp.Listen(srvHost, 7, func(c *tcp.Conn) tcp.Callbacks {
		sb.servers = append(sb.servers, c)
		return tcp.Callbacks{
			OnData:      func(c *tcp.Conn, d []byte) { c.Write(d) },
			OnPeerClose: func(c *tcp.Conn) { c.Close() },
		}
	}, cfg)

	ccfg := cfg
	ccfg.IdleProbe = 50 * time.Millisecond // heartbeats ride the settle gaps
	for i := 0; i < mfSidebandConns; i++ {
		host := netsim.NewHost(sn.Shard(i%shards), netsim.IPv4(10, 0, 3, byte(i+2)))
		idx := i
		conn := tcp.Dial(host, srvAddr, tcp.Callbacks{
			OnData: func(c *tcp.Conn, d []byte) { sb.echoed[idx] += len(d) },
		}, ccfg)
		sb.clients = append(sb.clients, conn)
	}
	return sb
}

// push queues one write per client; called at each phase boundary while
// the shard loops are parked, the same discipline the drivers follow.
func (sb *mfSideband) push() {
	sb.writes++
	for _, c := range sb.clients {
		c.Write(sb.payload)
	}
}

// finish closes every client and, after the drain, validates the echoes
// and coalescing stats into res.
func (sb *mfSideband) close() {
	for _, c := range sb.clients {
		c.Close()
	}
}

func (sb *mfSideband) report(res *MflowResult) {
	want := sb.writes * mfSidebandWrite
	res.TierBConns = len(sb.clients)
	for i, c := range sb.clients {
		if sb.echoed[i] != want {
			res.failf("tierb: conn %d echoed %d of %d bytes", i, sb.echoed[i], want)
		}
		if c.State() != tcp.StateClosed {
			res.failf("tierb: conn %d not closed (state %v)", i, c.State())
		}
		res.TierBEchoed += sb.echoed[i]
	}
	for _, c := range append(sb.clients, sb.servers...) {
		res.TierBAcksElided += c.AcksElided
		res.TierBGSOTrains += c.GSOTrainsSent
	}
	if res.TierBAcksElided == 0 {
		res.failf("tierb: no ACKs elided under DelayedAck")
	}
	if res.TierBGSOTrains == 0 {
		res.failf("tierb: no GSO trains for %d-byte writes", mfSidebandWrite)
	}
}

// MflowResult carries the outcome. Summary() covers only virtual-time
// deterministic fields (identical across shard counts); wall-clock and
// memory figures are reported separately by String().
type MflowResult struct {
	Cfg MflowConfig

	Peak        int // concurrent established flows at ramp end
	Established int
	ProbeAcked  int
	Closed      int

	DeadFlows      int // flow-table entries on storm-killed instances
	Recovered      int // flows adopted by surviving instances
	RecoveredOnFin int
	AdoptRejected  int // hybrid: adoptions refused for lack of a dead-owner proof

	// Tier B sideband (Cfg.TierB only).
	TierBConns      int
	TierBEchoed     int
	TierBAcksElided int
	TierBGSOTrains  int

	Delivered       uint64
	Executed        uint64
	DroppedNoRoute  uint64
	DroppedByPolicy uint64

	LiveTableEntries int
	PendingAfter     int
	SimTime          time.Duration

	Wall             time.Duration
	HeapBytesPerFlow float64

	// Batch-dispatch shape (deliberately not part of Summary: the
	// scalar reference mode must stay byte-identical while reporting
	// zeros here). TrainRuns counts same-destination runs carved out of
	// burst-dispatched trains; BatchRuns the subset (length ≥ 2) handed
	// to a BatchNode in one call.
	TrainRuns     uint64
	BatchRuns     uint64
	BatchHitRatio float64

	Failures []string
}

// Pass reports whether every invariant held.
func (r *MflowResult) Pass() bool { return len(r.Failures) == 0 }

// Summary renders the deterministic portion of the result.
func (r *MflowResult) Summary() string {
	var b strings.Builder
	fmt.Fprintf(&b, "mflow: flows=%d drivers=%d muxes=%d instances=%d backends=%d storm=%d\n",
		r.Cfg.Flows, r.Cfg.Drivers, r.Cfg.Muxes, r.Cfg.Instances, r.Cfg.Backends, r.Cfg.StormKill)
	fmt.Fprintf(&b, "  peak concurrent: %d (established=%d probeAcked=%d closed=%d)\n",
		r.Peak, r.Established, r.ProbeAcked, r.Closed)
	fmt.Fprintf(&b, "  storm: deadFlows=%d recovered=%d recoveredOnFin=%d\n",
		r.DeadFlows, r.Recovered, r.RecoveredOnFin)
	if r.Cfg.Recovery != "" {
		fmt.Fprintf(&b, "  recovery: mode=%s adoptRejected=%d\n", r.Cfg.Recovery, r.AdoptRejected)
	}
	if r.Cfg.TierB {
		fmt.Fprintf(&b, "  tierb: conns=%d echoed=%d acksElided=%d gsoTrains=%d\n",
			r.TierBConns, r.TierBEchoed, r.TierBAcksElided, r.TierBGSOTrains)
	}
	fmt.Fprintf(&b, "  events: executed=%d delivered=%d dropped=%d+%d\n",
		r.Executed, r.Delivered, r.DroppedNoRoute, r.DroppedByPolicy)
	fmt.Fprintf(&b, "  end state: liveTableEntries=%d pending=%d simTime=%v\n",
		r.LiveTableEntries, r.PendingAfter, r.SimTime)
	if r.Pass() {
		b.WriteString("  PASS")
	} else {
		fmt.Fprintf(&b, "  FAIL:\n    %s", strings.Join(r.Failures, "\n    "))
	}
	return b.String()
}

func (r *MflowResult) String() string {
	return fmt.Sprintf("%s\n  perf: shards=%d wall=%v events/s=%.0f heapBytes/flow=%.0f",
		r.Summary(), r.Cfg.Shards, r.Wall.Round(time.Millisecond),
		float64(r.Executed)/r.Wall.Seconds(), r.HeapBytesPerFlow)
}

func (r *MflowResult) failf(format string, args ...any) {
	r.Failures = append(r.Failures, fmt.Sprintf(format, args...))
}

func heapInUse() uint64 {
	runtime.GC()
	var ms runtime.MemStats
	runtime.ReadMemStats(&ms)
	return ms.HeapAlloc
}

// RunMflow executes the million-flow experiment: ramp to the full flow
// population, kill StormKill instances, probe every flow once (verifying
// recovery of every orphaned flow), then close everything and drain the
// network to quiescence.
func RunMflow(cfg MflowConfig) *MflowResult {
	perDriver := (cfg.Flows + cfg.Drivers - 1) / cfg.Drivers
	cfg.Flows = perDriver * cfg.Drivers
	res := &MflowResult{Cfg: cfg}

	heapBase := heapInUse()
	wallStart := time.Now()

	sn := netsim.NewSharded(cfg.Seed, cfg.Shards)
	defer sn.Close()
	shards := sn.Shards()

	// Hybrid arm: one shared derivation table, seeded deterministically.
	// It is mutated only between phases (storm MarkDead) while every
	// shard loop is parked, matching the control-plane discipline the
	// real cluster follows.
	var tbl *stateless.Table
	if cfg.Recovery == "hybrid" {
		tbl = stateless.New(uint64(cfg.Seed)*0x9e3779b97f4a7c15 + 0xdead)
	}

	// Muxes: vip 10.254.0.(m+1) on shard m%S. Drivers address mux d%M, so
	// flow tuples — and therefore every pick — do not depend on the shard
	// count.
	muxes := make([]*mfMux, cfg.Muxes)
	liveInsts := make([]netsim.IP, cfg.Instances)
	for i := range liveInsts {
		liveInsts[i] = netsim.IPv4(10, 0, 1, byte(i+1))
	}
	for m := range muxes {
		nw := sn.Shard(m % shards)
		mx := &mfMux{net: nw, vip: netsim.IPv4(10, 254, 0, byte(m+1)), insts: liveInsts, tbl: tbl}
		nw.Attach(mx.vip, mx)
		muxes[m] = mx
		if tbl != nil {
			tbl.SetVIP(mx.vip, stateless.VIPEntry{Instances: liveInsts})
		}
	}

	// Size each table for its HRW share of the population plus headroom
	// for the hash spread, so the ramp runs without growth rebuilds.
	perInstance := 0
	if cfg.Instances > 0 {
		perInstance = cfg.Flows / cfg.Instances
	}
	insts := make([]*mfInstance, cfg.Instances)
	for i := range insts {
		nw := sn.Shard(i % shards)
		in := &mfInstance{
			net: nw, ip: liveInsts[i], tbl: tbl,
			table: flowmap.NewCompact(perInstance + perInstance/8),
		}
		insts[i] = in
		nw.Attach(in.ip, in)
	}
	backendIPs := make([]netsim.IP, cfg.Backends)
	backends := make([]*mfBackend, cfg.Backends)
	for i := range backends {
		nw := sn.Shard(i % shards)
		backendIPs[i] = netsim.IPv4(10, 0, 2, byte(i+1))
		backends[i] = &mfBackend{net: nw}
		nw.Attach(backendIPs[i], backends[i])
	}
	for _, in := range insts {
		in.backends = backendIPs
	}

	var sb *mfSideband
	if cfg.TierB {
		sb = newMfSideband(sn, shards)
	}

	drivers := make([]*mfDriver, cfg.Drivers)
	for d := range drivers {
		nw := sn.Shard(d % shards)
		drv := &mfDriver{
			net:   nw,
			ip:    netsim.IPv4(100, 0, byte(d>>8), byte(d&0xff)+1),
			mux:   netsim.HostPort{IP: muxes[d%cfg.Muxes].vip, Port: 80},
			base:  1024,
			state: make([]uint8, perDriver),
			batch: cfg.BatchSize,
			every: cfg.BatchEvery,
		}
		drv.stepFn = drv.step
		drivers[d] = drv
		nw.Attach(drv.ip, drv)
	}

	// Phase span: staggered starts + the paced batches + settle (which
	// must cover the ~60ms client round trip).
	batches := (perDriver + cfg.BatchSize - 1) / cfg.BatchSize
	stagger := 53 * time.Microsecond
	span := time.Duration(cfg.Drivers)*stagger + time.Duration(batches)*cfg.BatchEvery + cfg.Settle

	startPhase := func(phase uint8) {
		for d, drv := range drivers {
			drv.start(phase, time.Duration(d)*stagger)
		}
		if sb != nil {
			sb.push()
		}
	}
	counts := func() (established, acked, closed int) {
		for _, drv := range drivers {
			established += drv.established
			acked += drv.acked
			closed += drv.closed
		}
		return
	}

	// Ramp: open every flow.
	startPhase(mfPhaseOpen)
	sn.RunFor(span)
	res.Established, _, _ = counts()
	res.Peak = res.Established
	if res.Peak != cfg.Flows {
		res.failf("ramp: established %d of %d flows", res.Peak, cfg.Flows)
	}
	// Peak-population memory, attributed per flow.
	res.HeapBytesPerFlow = float64(int64(heapInUse())-int64(heapBase)) / float64(cfg.Flows)

	// Failure storm: kill StormKill instances spread across the fleet —
	// detach the host and drop it from every mux's live list (a driver-
	// phase control-plane action, like the real controller's L4 update).
	dead := make(map[netsim.IP]bool, cfg.StormKill)
	for k := 0; k < cfg.StormKill && cfg.Instances > 0; k++ {
		victim := insts[k*cfg.Instances/cfg.StormKill]
		dead[victim.ip] = true
		res.DeadFlows += victim.table.Len()
		victim.net.Detach(victim.ip)
		if tbl != nil {
			tbl.MarkDead(victim.ip) // death marks only — no epoch bump
		}
	}
	live := make([]netsim.IP, 0, cfg.Instances-len(dead))
	for _, ip := range liveInsts {
		if !dead[ip] {
			live = append(live, ip)
		}
	}
	for _, mx := range muxes {
		mx.insts = live
	}

	// Probe: one data packet per flow. Orphaned flows must be adopted by
	// the HRW re-pick instance; every probe must come back acknowledged.
	startPhase(mfPhaseProbe)
	sn.RunFor(span)
	_, res.ProbeAcked, _ = counts()
	if res.ProbeAcked != cfg.Flows {
		res.failf("probe: acked %d of %d flows", res.ProbeAcked, cfg.Flows)
	}
	for _, in := range insts {
		if !dead[in.ip] {
			res.Recovered += int(in.Recovered)
			res.RecoveredOnFin += int(in.RecoveredOnFin)
			res.AdoptRejected += int(in.AdoptRejected)
		}
	}
	if res.Recovered != res.DeadFlows {
		res.failf("recovery: %d flows adopted, %d were orphaned", res.Recovered, res.DeadFlows)
	}
	if res.AdoptRejected != 0 {
		res.failf("hybrid: %d orphans rejected without a dead-owner proof", res.AdoptRejected)
	}

	// Teardown: close every flow, then drain to quiescence.
	startPhase(mfPhaseClose)
	sn.RunFor(span)
	if sb != nil {
		sb.close()
	}
	sn.RunUntilIdle(1 << 24)
	if sb != nil {
		sb.report(res)
	}
	_, _, res.Closed = counts()
	if res.Closed != cfg.Flows {
		res.failf("teardown: closed %d of %d flows", res.Closed, cfg.Flows)
	}
	for _, in := range insts {
		if !dead[in.ip] {
			res.LiveTableEntries += in.table.Len()
		}
	}
	if res.LiveTableEntries != 0 {
		res.failf("teardown: %d flow-table entries leaked on live instances", res.LiveTableEntries)
	}
	if res.RecoveredOnFin != 0 {
		res.failf("HRW instability: %d FINs missed their flow's instance", res.RecoveredOnFin)
	}

	res.Delivered = sn.Delivered()
	res.Executed = sn.Executed()
	res.TrainRuns = sn.Runs()
	res.BatchRuns = sn.BatchRuns()
	res.BatchHitRatio = sn.BatchHitRatio()
	res.DroppedNoRoute = sn.DroppedNoRoute()
	res.DroppedByPolicy = sn.DroppedByPolicy()
	if res.DroppedNoRoute != 0 {
		res.failf("%d packets dropped with no route (post-storm leakage)", res.DroppedNoRoute)
	}
	res.PendingAfter = sn.Pending()
	if res.PendingAfter != 0 {
		res.failf("network not quiescent: %d pending", res.PendingAfter)
	}
	res.SimTime = sn.Now()
	res.Wall = time.Since(wallStart)
	return res
}
