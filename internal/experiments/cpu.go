package experiments

import (
	"fmt"
	"time"

	"repro/internal/cluster"
	"repro/internal/core"
	"repro/internal/haproxy"
	"repro/internal/httpsim"
	"repro/internal/memcache"
	"repro/internal/netsim"
	"repro/internal/tcpstore"
	"repro/internal/workload"
)

// CPUConfig parameterizes the §7.1 CPU-overhead experiment.
type CPUConfig struct {
	Seed int64
	// Rates sweeps aggregate request rates against one LB instance.
	Rates []int
	// Duration per rate point.
	Duration time.Duration
	// ObjectSize of the small-request workload.
	ObjectSize int
}

// DefaultCPUConfig sweeps toward the Yoda saturation point (§7.1: Yoda
// saturates at 12K req/s on the 8-core VM; HAProxy sits at 46% there).
func DefaultCPUConfig() CPUConfig {
	return CPUConfig{
		Seed:       1,
		Rates:      []int{2000, 6000, 10000, 12000},
		Duration:   time.Second,
		ObjectSize: 2 * 1024,
	}
}

// CPUPoint is one rate's utilization pair.
type CPUPoint struct {
	Rate       int
	YodaCPU    float64
	HAProxyCPU float64
}

// CPUResult reproduces §7.1's CPU-overhead comparison.
type CPUResult struct {
	Points []CPUPoint
	// YodaSaturationRate is the lowest swept rate at which Yoda's CPU
	// reaches ≥95%.
	YodaSaturationRate int
	// HAProxyCPUAtSaturation is HAProxy's utilization at that rate
	// (paper: 46%).
	HAProxyCPUAtSaturation float64
}

// RunCPU drives a single instance of each LB at increasing request rates
// and records utilization.
func RunCPU(cfg CPUConfig) *CPUResult {
	res := &CPUResult{}
	for _, rate := range cfg.Rates {
		y := runCPUCell(cfg, rate, true)
		h := runCPUCell(cfg, rate, false)
		res.Points = append(res.Points, CPUPoint{Rate: rate, YodaCPU: y, HAProxyCPU: h})
		if res.YodaSaturationRate == 0 && y >= 0.95 {
			res.YodaSaturationRate = rate
			res.HAProxyCPUAtSaturation = h
		}
	}
	return res
}

func runCPUCell(cfg CPUConfig, rate int, yoda bool) float64 {
	c := cluster.New(cfg.Seed)
	objects := map[string][]byte{"/obj": workload.SynthBody("/obj", cfg.ObjectSize)}
	for i := 1; i <= 4; i++ {
		c.AddBackend(fmt.Sprintf("srv-%d", i), objects, httpsim.DefaultServerConfig())
	}
	var vip netsim.IP
	if yoda {
		c.AddStoreServers(2, memcache.DefaultSimServerConfig())
		c.AddYodaN(1, core.DefaultConfig(), tcpstore.DefaultConfig())
		vip = c.AddVIP("svc")
		c.InstallPolicy(vip, c.SimpleSplitRules("srv-1", "srv-2", "srv-3", "srv-4"), nil)
	} else {
		c.AddHAProxyN(1, haproxy.DefaultConfig())
		vip = c.AddVIP("svc")
		c.InstallPolicyHAProxy(vip, c.SimpleSplitRules("srv-1", "srv-2", "srv-3", "srv-4"), nil)
	}
	// Open-loop Apache-bench-style load from a pool of client hosts.
	clients := make([]*httpsim.Client, 8)
	for i := range clients {
		clients[i] = c.NewClient(httpsim.DefaultClientConfig())
	}
	interval := time.Second / time.Duration(rate)
	i := 0
	var tick func()
	tick = func() {
		if c.Net.Now() >= cfg.Duration {
			return
		}
		clients[i%len(clients)].Get(netsim.HostPort{IP: vip, Port: 80}, "/obj", func(*httpsim.FetchResult) {})
		i++
		c.Net.Schedule(interval, tick)
	}
	tick()
	c.Net.Run(cfg.Duration)
	if yoda {
		return c.Yoda[0].CPU.UtilizationClamped(0, cfg.Duration)
	}
	return c.HAProxy[0].CPU.UtilizationClamped(0, cfg.Duration)
}

// String prints the utilization sweep.
func (r *CPUResult) String() string {
	rows := make([][]string, 0, len(r.Points))
	for _, p := range r.Points {
		rows = append(rows, []string{
			fmt.Sprintf("%d", p.Rate), fmtPct(p.YodaCPU), fmtPct(p.HAProxyCPU),
		})
	}
	s := "§7.1 — LB instance CPU utilization vs request rate (small objects)\n"
	s += table([]string{"req/s", "YODA CPU", "HAProxy CPU"}, rows)
	if r.YodaSaturationRate > 0 {
		s += fmt.Sprintf("YODA saturates at %d req/s; HAProxy at %s there (paper: 12K req/s, 46%%)\n",
			r.YodaSaturationRate, fmtPct(r.HAProxyCPUAtSaturation))
	}
	return s
}
