package experiments

import (
	"testing"
	"time"
)

// smallMflowConfig shrinks the headline run to CI scale: 8192 flows,
// same topology shape, same storm fraction.
func smallMflowConfig(shards int) MflowConfig {
	return MflowConfig{
		Seed:       1,
		Shards:     shards,
		Flows:      8192,
		Drivers:    8,
		Muxes:      4,
		Instances:  8,
		Backends:   8,
		StormKill:  2,
		BatchSize:  64,
		BatchEvery: 2 * time.Millisecond,
		Settle:     150 * time.Millisecond,
	}
}

// TestMflowInvariants runs the small configuration and requires every
// invariant to hold: full ramp, every orphaned flow recovered exactly
// once, clean teardown, quiescent network.
func TestMflowInvariants(t *testing.T) {
	res := RunMflow(smallMflowConfig(2))
	if !res.Pass() {
		t.Fatalf("mflow invariants failed:\n%s", res.Summary())
	}
	if res.DeadFlows == 0 {
		t.Fatal("storm killed no flows — the recovery path was never exercised")
	}
	// Batch dispatch must actually engage at mflow scale: same-destination
	// bursts (driver→mux, backend→driver) form multi-packet runs that take
	// HandleBatch. These fields are observability-only — deliberately not
	// part of Summary(), which stays byte-identical to the scalar path.
	if res.TrainRuns == 0 {
		t.Fatal("no delivery runs recorded — train dispatch never ran")
	}
	if res.BatchRuns == 0 {
		t.Fatal("no batched runs — multi-packet runs never reached HandleBatch")
	}
	if res.BatchHitRatio <= 0 || res.BatchHitRatio > 1 {
		t.Fatalf("batch hit ratio %v out of (0,1]", res.BatchHitRatio)
	}
}

// TestMflowDeterminism requires byte-identical summaries across repeated
// runs at the same shard count.
func TestMflowDeterminism(t *testing.T) {
	a := RunMflow(smallMflowConfig(2)).Summary()
	b := RunMflow(smallMflowConfig(2)).Summary()
	if a != b {
		t.Fatalf("mflow not deterministic:\nrun1:\n%s\n\nrun2:\n%s", a, b)
	}
}

// TestMflowHybridExactRecovery runs the hybrid arm: stateless-table
// muxes, proof-gated adoption. Every orphan must still be recovered
// exactly once (recovered == deadFlows, zero leaks, zero drops, zero
// pending) and no adoption may ever be rejected for lack of a
// dead-owner proof.
func TestMflowHybridExactRecovery(t *testing.T) {
	cfg := smallMflowConfig(2)
	cfg.Recovery = "hybrid"
	res := RunMflow(cfg)
	if !res.Pass() {
		t.Fatalf("hybrid mflow invariants failed:\n%s", res.Summary())
	}
	if res.DeadFlows == 0 {
		t.Fatal("storm killed no flows — the hybrid recovery path was never exercised")
	}
	if res.Recovered != res.DeadFlows || res.AdoptRejected != 0 {
		t.Fatalf("hybrid recovery not exact: recovered=%d deadFlows=%d adoptRejected=%d",
			res.Recovered, res.DeadFlows, res.AdoptRejected)
	}
}

// TestMflowHybridShardCountInvariant: the hybrid arm's summary is as
// shard-independent as the default arm's.
func TestMflowHybridShardCountInvariant(t *testing.T) {
	mk := func(shards int) string {
		cfg := smallMflowConfig(shards)
		cfg.Recovery = "hybrid"
		return RunMflow(cfg).Summary()
	}
	base := mk(1)
	if got := mk(4); got != base {
		t.Fatalf("hybrid summary differs between 1 and 4 shards:\n%s\n\nvs:\n%s", base, got)
	}
}

// TestMflowShardCountInvariant is the conservative-sync acceptance test
// at experiment level: the deterministic summary must not depend on how
// many shards executed it.
func TestMflowShardCountInvariant(t *testing.T) {
	base := RunMflow(smallMflowConfig(1)).Summary()
	for _, shards := range []int{2, 4} {
		got := RunMflow(smallMflowConfig(shards)).Summary()
		if got != base {
			t.Fatalf("summary differs between 1 shard and %d shards:\n1 shard:\n%s\n\n%d shards:\n%s",
				shards, base, shards, got)
		}
	}
}

// TestMflowTierBInvariants turns the Tier B sideband on: real TCP echo
// connections with delayed ACKs, GSO trains, and idle probes riding the
// run. Every base invariant must still hold (recovery exact, network
// quiescent) and the sideband's own checks must pass — bytes echoed
// intact, connections closed, coalescing actually engaged.
func TestMflowTierBInvariants(t *testing.T) {
	cfg := smallMflowConfig(2)
	cfg.TierB = true
	res := RunMflow(cfg)
	if !res.Pass() {
		t.Fatalf("tierb mflow invariants failed:\n%s", res.Summary())
	}
	if res.DeadFlows == 0 || res.Recovered != res.DeadFlows {
		t.Fatalf("recovery not exact with tierb on: recovered=%d deadFlows=%d",
			res.Recovered, res.DeadFlows)
	}
	if res.TierBAcksElided == 0 || res.TierBGSOTrains == 0 {
		t.Fatalf("tierb coalescing never engaged: elided=%d trains=%d",
			res.TierBAcksElided, res.TierBGSOTrains)
	}
}

// TestMflowTierBShardCountInvariant: the summary — now including the
// sideband's coalescing stats — must stay byte-identical at 1, 2, and 4
// shards even though the sideband's TCP segments cross the SPSC handoff
// differently at each shard count.
func TestMflowTierBShardCountInvariant(t *testing.T) {
	mk := func(shards int) string {
		cfg := smallMflowConfig(shards)
		cfg.TierB = true
		return RunMflow(cfg).Summary()
	}
	base := mk(1)
	for _, shards := range []int{2, 4} {
		if got := mk(shards); got != base {
			t.Fatalf("tierb summary differs between 1 and %d shards:\n%s\n\nvs:\n%s",
				shards, base, got)
		}
	}
}

// BenchmarkMflowMemPerFlow reports the peak heap cost per concurrent
// flow; bench.sh runs it with -benchtime=1x to populate
// mflow_mem_bytes_per_flow in BENCH_core.json.
func BenchmarkMflowMemPerFlow(b *testing.B) {
	cfg := smallMflowConfig(2)
	cfg.Flows = 1 << 16
	cfg.Drivers = 16
	for i := 0; i < b.N; i++ {
		res := RunMflow(cfg)
		if !res.Pass() {
			b.Fatalf("mflow failed:\n%s", res.Summary())
		}
		b.ReportMetric(res.HeapBytesPerFlow, "bytes/flow")
		b.ReportMetric(float64(res.Executed)/res.Wall.Seconds(), "events/s")
	}
}
