package experiments

import (
	"fmt"
	"sort"
	"time"

	"repro/internal/assignment"
	"repro/internal/metrics"
	"repro/internal/trace"
)

// Fig16Config parameterizes the 24-hour assignment simulation (§8.2).
type Fig16Config struct {
	Trace trace.Config
	// TrafficCap is T_y (req/s per instance; paper: the 12K req/s
	// saturation point), RuleCap is R_y (paper: 2K rules for a 5 ms
	// latency target), MaxInst the fleet ceiling.
	TrafficCap float64
	RuleCap    int
	MaxInst    int
	// ReplFactor is the shared-service redundancy multiplier (paper: 4x).
	ReplFactor int
	// MigrationLimit is δ for the Yoda-limit arm (paper: 10%).
	MigrationLimit float64
	// Windows caps how many 10-minute rounds are simulated (0 = all).
	Windows int
}

// DefaultFig16Config mirrors §8.2.
func DefaultFig16Config() Fig16Config {
	return Fig16Config{
		Trace:          trace.DefaultConfig(),
		TrafficCap:     12000,
		RuleCap:        2000,
		MaxInst:        600,
		ReplFactor:     4,
		MigrationLimit: 0.10,
	}
}

// Fig16Round is one 10-minute assignment round's metrics.
type Fig16Round struct {
	Window int

	AllToAllInstances int
	NoLimitInstances  int
	LimitInstances    int

	// MedianRulesFrac is the median per-instance rule count under
	// Yoda-limit as a fraction of the all-to-all scheme's (which holds
	// every rule on every instance) — Figure 16(b).
	MedianRulesFrac float64

	// Overloaded fractions of instances whose transient load exceeds
	// capacity during the update — Figure 16(d).
	NoLimitOverloadedFrac float64
	LimitOverloadedFrac   float64

	// Migrated connection fractions — Figure 16(e).
	NoLimitMigratedFrac float64
	LimitMigratedFrac   float64

	SolveTime time.Duration
}

// Fig16Result reproduces Figure 16(b)–(e).
type Fig16Result struct {
	Rounds []Fig16Round

	// Aggregates across rounds.
	MedianRulesFrac                float64 // paper: median 1% of all-to-all
	MeanInstanceOverheadVsAllToAll float64 // paper: avg 27% more than all-to-all
	LimitVsNoLimitInstances        float64 // paper: median +1.3%
	MedianNoLimitOverloaded        float64 // paper: median 5.3%
	MedianLimitOverloaded          float64 // paper: ~0
	MedianNoLimitMigrated          float64 // paper: median 44.9%
	MedianLimitMigrated            float64 // paper: median 8.3%
	MaxSolveTime                   time.Duration
}

// RunFig16 replays the trace, re-solving the assignment every window for
// the all-to-all baseline, Yoda-no-limit and Yoda-limit.
func RunFig16(cfg Fig16Config) *Fig16Result {
	tr := trace.Generate(cfg.Trace)
	windows := tr.Windows
	if cfg.Windows > 0 && cfg.Windows < windows {
		windows = cfg.Windows
	}
	res := &Fig16Result{}

	var prevNoLimit, prevLimit *assignment.Assignment
	rulesFracH := metrics.NewHistogram()
	instOverheadH := metrics.NewHistogram()
	limitVsNoLimitH := metrics.NewHistogram()
	nlOverH := metrics.NewHistogram()
	lOverH := metrics.NewHistogram()
	nlMigH := metrics.NewHistogram()
	lMigH := metrics.NewHistogram()

	for w := 0; w < windows; w++ {
		round := Fig16Round{Window: w}
		base := tr.ProblemAt(w, cfg.TrafficCap, cfg.RuleCap, cfg.MaxInst, cfg.ReplFactor)
		round.AllToAllInstances = assignment.AllToAllInstanceCount(base)

		// Yoda-no-limit: fresh solve, no stickiness, no Eq.4-7. The paper's
		// ILP re-optimizes from scratch each round, so connections shuffle.
		t0 := time.Now()
		noLimitProb := *base
		noLimitProb.Old = nil
		noLimit, errNL := assignment.SolveGreedy(&noLimitProb)
		if errNL != nil {
			continue // infeasible window; skip (never happens with default sizing)
		}
		// Yoda-limit: stick to the previous assignment, Eq.4-7 enforced.
		limitProb := *base
		limitProb.Old = prevLimit
		limitProb.TransientCheck = true
		limitProb.MigrationLimit = cfg.MigrationLimit
		limit, errL := assignment.SolveGreedy(&limitProb)
		round.SolveTime = time.Since(t0)
		if errL != nil {
			continue
		}
		if round.SolveTime > res.MaxSolveTime {
			res.MaxSolveTime = round.SolveTime
		}

		round.NoLimitInstances = noLimit.Used()
		round.LimitInstances = limit.Used()

		// Figure 16(b): median rules per instance vs all-to-all (which
		// stores the full rule set on every instance).
		totalRules := 0
		for _, v := range base.VIPs {
			totalRules += v.Rules
		}
		round.MedianRulesFrac = medianRulesFraction(base, limit, totalRules)

		// Figure 16(d): transient overload during the old->new switch.
		if w > 0 {
			round.NoLimitOverloadedFrac = overloadedFrac(base, prevNoLimit, noLimit, cfg.TrafficCap)
			round.LimitOverloadedFrac = overloadedFrac(base, prevLimit, limit, cfg.TrafficCap)

			// Figure 16(e): migrated connections.
			nlProb := *base
			nlProb.Old = prevNoLimit
			round.NoLimitMigratedFrac = assignment.MigratedFraction(&nlProb, noLimit)
			lProb := *base
			lProb.Old = prevLimit
			round.LimitMigratedFrac = assignment.MigratedFraction(&lProb, limit)

			nlOverH.Add(round.NoLimitOverloadedFrac)
			lOverH.Add(round.LimitOverloadedFrac)
			nlMigH.Add(round.NoLimitMigratedFrac)
			lMigH.Add(round.LimitMigratedFrac)
		}
		rulesFracH.Add(round.MedianRulesFrac)
		instOverheadH.Add(float64(round.NoLimitInstances-round.AllToAllInstances) / float64(round.AllToAllInstances))
		limitVsNoLimitH.Add(float64(round.LimitInstances-round.NoLimitInstances) / float64(round.NoLimitInstances))

		prevNoLimit, prevLimit = noLimit, limit
		res.Rounds = append(res.Rounds, round)
	}

	res.MedianRulesFrac = rulesFracH.Median()
	res.MeanInstanceOverheadVsAllToAll = instOverheadH.Mean()
	res.LimitVsNoLimitInstances = limitVsNoLimitH.Median()
	res.MedianNoLimitOverloaded = nlOverH.Median()
	res.MedianLimitOverloaded = lOverH.Median()
	res.MedianNoLimitMigrated = nlMigH.Median()
	res.MedianLimitMigrated = lMigH.Median()
	return res
}

// medianRulesFraction computes the median per-instance rule count under a
// divided by the all-to-all per-instance rule count (= all rules).
func medianRulesFraction(p *assignment.Problem, a *assignment.Assignment, totalRules int) float64 {
	perInst := map[int]int{}
	for i := range p.VIPs {
		v := &p.VIPs[i]
		for _, y := range a.ByVIP[v.ID] {
			perInst[y] += v.Rules
		}
	}
	if len(perInst) == 0 || totalRules == 0 {
		return 0
	}
	counts := make([]int, 0, len(perInst))
	for _, c := range perInst {
		counts = append(counts, c)
	}
	sort.Ints(counts)
	return float64(counts[len(counts)/2]) / float64(totalRules)
}

// overloadedFrac returns the fraction of involved instances whose real
// transient traffic exceeds capacity, excluding instances that were
// already overloaded before the round (as the paper does). Real traffic
// (t_v/n_v per replica) is used rather than the ILP's worst-case shares:
// the figure reports operational overload, not provisioning.
func overloadedFrac(p *assignment.Problem, old, new *assignment.Assignment, cap float64) float64 {
	if old == nil {
		return 0
	}
	q := *p
	q.Old = old
	oldLoad := assignment.OldOnlyLoadActual(&q)
	tl := assignment.TransientLoadActual(&q, old, new)
	over, total := 0, 0
	for y, l := range tl {
		total++
		if l > cap+1e-9 && oldLoad[y] <= cap+1e-9 {
			over++
		}
	}
	if total == 0 {
		return 0
	}
	return float64(over) / float64(total)
}

// String prints the figure's four panels as summary lines plus a sampled
// per-round table.
func (r *Fig16Result) String() string {
	rows := [][]string{}
	step := len(r.Rounds) / 12
	if step < 1 {
		step = 1
	}
	for i := 0; i < len(r.Rounds); i += step {
		rd := r.Rounds[i]
		rows = append(rows, []string{
			fmt.Sprintf("%d", rd.Window),
			fmt.Sprintf("%d", rd.AllToAllInstances),
			fmt.Sprintf("%d", rd.NoLimitInstances),
			fmt.Sprintf("%d", rd.LimitInstances),
			fmtPct(rd.MedianRulesFrac),
			fmtPct(rd.NoLimitOverloadedFrac),
			fmtPct(rd.LimitOverloadedFrac),
			fmtPct(rd.NoLimitMigratedFrac),
			fmtPct(rd.LimitMigratedFrac),
		})
	}
	s := "Figure 16 — 24h assignment simulation (10-minute rounds)\n"
	s += table([]string{"round", "all-to-all", "no-limit", "limit", "rules%", "over(NL)", "over(L)", "migr(NL)", "migr(L)"}, rows)
	s += fmt.Sprintf("16(b) median rules per instance vs all-to-all: %s (paper: 0.5-3.7%%, median 1%%)\n", fmtPct(r.MedianRulesFrac))
	s += fmt.Sprintf("16(c) instances vs all-to-all: +%s mean (paper: +4.6-73%%, avg +27%%); limit vs no-limit: %+.1f%% median (paper: median +1.3%%)\n",
		fmtPct(r.MeanInstanceOverheadVsAllToAll), r.LimitVsNoLimitInstances*100)
	s += fmt.Sprintf("16(d) transient overload: no-limit median %s (paper: 5.3%%), limit median %s (paper: ~0)\n",
		fmtPct(r.MedianNoLimitOverloaded), fmtPct(r.MedianLimitOverloaded))
	s += fmt.Sprintf("16(e) flows migrated: no-limit median %s (paper: 44.9%%), limit median %s (paper: 8.3%%)\n",
		fmtPct(r.MedianNoLimitMigrated), fmtPct(r.MedianLimitMigrated))
	s += fmt.Sprintf("max assignment solve time: %v (paper: 1.5-21.5s with CPLEX)\n", r.MaxSolveTime)
	return s
}
