package experiments

import (
	"fmt"
	"sort"
	"sync"
	"time"

	"repro/internal/cluster"
	"repro/internal/controller"
	"repro/internal/core"
	"repro/internal/haproxy"
	"repro/internal/httpsim"
	"repro/internal/memcache"
	"repro/internal/metrics"
	"repro/internal/netsim"
	"repro/internal/tcpstore"
	"repro/internal/workload"
)

// Fig12Config parameterizes the failure-recovery experiment (§7.2).
type Fig12Config struct {
	Seed int64
	// Instances is the LB fleet size; Kill of them fail simultaneously.
	Instances int
	Kill      int
	// ClientProcs closed-loop client processes (paper: 20 per client).
	ClientProcs int
	// Duration of the run; the failure hits at FailAt.
	Duration time.Duration
	FailAt   time.Duration
	// HTTPTimeout is the browser timeout (paper: 30 s).
	HTTPTimeout time.Duration
	// ObjectSize per request.
	ObjectSize int
	// Parallel runs the three arms on separate goroutines. Each arm owns
	// an independent cluster seeded from Seed, so results are identical to
	// a sequential run.
	Parallel bool
}

// DefaultFig12Config mirrors §7.2: 10 instances, 2 killed, 20 client
// processes, 30 s HTTP timeout.
func DefaultFig12Config() Fig12Config {
	return Fig12Config{
		Seed:        1,
		Instances:   10,
		Kill:        2,
		ClientProcs: 20,
		Duration:    40 * time.Second,
		FailAt:      5 * time.Second,
		HTTPTimeout: 30 * time.Second,
		ObjectSize:  40 * 1024,
	}
}

// Fig12Arm is one curve of Figure 12(a).
type Fig12Arm struct {
	Name       string
	Requests   int
	Broken     int
	BrokenFrac float64
	Latency    *metrics.DurationHistogram
	// Affected counts requests in flight at the failure instant;
	// AffectedBroken is how many of those broke. This is the denominator
	// the paper's "24% of flows" uses: flows the failure could touch.
	Affected       int
	AffectedBroken int
	// MaxExtra is the largest latency among successful requests minus the
	// no-failure median — how much the failure stretched the tail.
	MaxExtra time.Duration
}

// AffectedBrokenFrac returns AffectedBroken/Affected.
func (a *Fig12Arm) AffectedBrokenFrac() float64 {
	if a.Affected == 0 {
		return 0
	}
	return float64(a.AffectedBroken) / float64(a.Affected)
}

// Fig12Result reproduces Figure 12(a): request-latency CDFs under LB
// failure for Yoda, HAProxy-noretry and HAProxy-retry.
type Fig12Result struct {
	Yoda           Fig12Arm
	HAProxyNoRetry Fig12Arm
	HAProxyRetry   Fig12Arm
}

// RunFig12 runs the three arms, concurrently when cfg.Parallel is set
// (each arm simulates its own cluster from the same seed, so the output
// does not depend on the mode).
func RunFig12(cfg Fig12Config) *Fig12Result {
	res := &Fig12Result{}
	arms := []struct {
		out     *Fig12Arm
		name    string
		yoda    bool
		retries int
	}{
		{&res.Yoda, "yoda", true, 0},
		{&res.HAProxyNoRetry, "haproxy-noretry", false, 0},
		{&res.HAProxyRetry, "haproxy-retry", false, 1},
	}
	if cfg.Parallel {
		var wg sync.WaitGroup
		for _, a := range arms {
			wg.Add(1)
			go func(out *Fig12Arm, name string, yoda bool, retries int) {
				defer wg.Done()
				*out = runFig12Arm(cfg, name, yoda, retries)
			}(a.out, a.name, a.yoda, a.retries)
		}
		wg.Wait()
	} else {
		for _, a := range arms {
			*a.out = runFig12Arm(cfg, a.name, a.yoda, a.retries)
		}
	}
	return res
}

func runFig12Arm(cfg Fig12Config, name string, yoda bool, retries int) Fig12Arm {
	c := cluster.New(cfg.Seed)
	objects := map[string][]byte{"/obj": workload.SynthBody("/obj", cfg.ObjectSize)}
	for i := 1; i <= 6; i++ {
		c.AddBackend(fmt.Sprintf("srv-%d", i), objects, httpsim.DefaultServerConfig())
	}
	var vip netsim.IP
	var ct *controller.Controller
	if yoda {
		c.AddStoreServers(4, memcache.DefaultSimServerConfig())
		c.AddYodaN(cfg.Instances, core.DefaultConfig(), tcpstore.DefaultConfig())
		vip = c.AddVIP("svc")
		ctCfg := controller.DefaultConfig()
		ctCfg.ScaleInterval = 0 // isolate failure recovery from scaling
		ct = controller.New(c, ctCfg)
		ct.SetPolicy(vip, c.SimpleSplitRules("srv-1", "srv-2", "srv-3", "srv-4", "srv-5", "srv-6"), nil)
		ct.Start()
	} else {
		c.AddHAProxyN(cfg.Instances, haproxy.DefaultConfig())
		vip = c.AddVIP("svc")
		c.InstallPolicyHAProxy(vip, c.SimpleSplitRules("srv-1", "srv-2", "srv-3", "srv-4", "srv-5", "srv-6"), nil)
	}
	vipHP := netsim.HostPort{IP: vip, Port: 80}

	arm := Fig12Arm{Name: name, Latency: metrics.NewDurationHistogram()}
	ccfg := httpsim.DefaultClientConfig()
	ccfg.Timeout = cfg.HTTPTimeout
	ccfg.Retries = retries

	// Closed-loop client processes: each waits for completion/timeout
	// before issuing the next request (§7.2). Start times are staggered so
	// the processes spread across request phases — otherwise every flow
	// would be in the same handshake stage at the failure instant.
	for p := 0; p < cfg.ClientProcs; p++ {
		cl := c.NewClient(ccfg)
		var loop func()
		loop = func() {
			if c.Net.Now() >= cfg.Duration {
				return
			}
			started := c.Net.Now()
			cl.Get(vipHP, "/obj", func(r *httpsim.FetchResult) {
				arm.Requests++
				spansFailure := started <= cfg.FailAt && c.Net.Now() > cfg.FailAt
				if spansFailure {
					arm.Affected++
				}
				if r.Err != nil {
					arm.Broken++
					if spansFailure {
						arm.AffectedBroken++
					}
				}
				arm.Latency.Add(r.Elapsed())
				loop()
			})
		}
		c.Net.Schedule(time.Duration(p)*37*time.Millisecond, loop)
	}

	// Kill cfg.Kill instances simultaneously at FailAt.
	c.Net.Schedule(cfg.FailAt, func() {
		killed := 0
		if yoda {
			order := make([]int, len(c.Yoda))
			for i := range order {
				order[i] = i
			}
			sort.Slice(order, func(a, b int) bool {
				return c.Yoda[order[a]].FlowCount() > c.Yoda[order[b]].FlowCount()
			})
			for _, i := range order {
				if killed == cfg.Kill {
					break
				}
				c.Yoda[i].Fail()
				killed++
			}
			// The controller's monitor repairs the mapping.
		} else {
			// Kill the busiest proxies: failures hurt most where flows live.
			order := make([]int, len(c.HAProxy))
			for i := range order {
				order[i] = i
			}
			sort.Slice(order, func(a, b int) bool {
				return c.HAProxy[order[a]].Active > c.HAProxy[order[b]].Active
			})
			for _, i := range order {
				if killed == cfg.Kill {
					break
				}
				c.HAProxy[i].Fail()
				ip := c.HAProxy[i].IP()
				c.Net.Schedule(600*time.Millisecond, func() { c.L4.RemoveInstance(ip) })
				killed++
			}
		}
	})
	c.Net.RunFor(cfg.Duration + cfg.HTTPTimeout + 10*time.Second)
	if arm.Requests > 0 {
		arm.BrokenFrac = float64(arm.Broken) / float64(arm.Requests)
	}
	med := arm.Latency.Median()
	if arm.Latency.Count() > 0 {
		arm.MaxExtra = arm.Latency.Max() - med
	}
	return arm
}

// String prints the per-arm summary and CDF knee points.
func (r *Fig12Result) String() string {
	mk := func(a Fig12Arm) []string {
		return []string{
			a.Name,
			fmt.Sprintf("%d", a.Requests),
			fmtPct(a.BrokenFrac),
			fmt.Sprintf("%d/%d", a.AffectedBroken, a.Affected),
			fmtMs(a.Latency.Median()),
			fmtMs(a.Latency.Quantile(0.99)),
			fmtMs(a.Latency.Max()),
		}
	}
	s := "Figure 12(a) — failure recovery: request latency under 2/10 LB failures\n"
	s += table(
		[]string{"arm", "requests", "broken", "broken@failure", "median", "p99", "max"},
		[][]string{mk(r.Yoda), mk(r.HAProxyNoRetry), mk(r.HAProxyRetry)},
	)
	s += fmt.Sprintf("of flows in flight at the failure: yoda broke %s, haproxy-noretry broke %s (paper: 0%% vs 24%%)\n",
		fmtPct(r.Yoda.AffectedBrokenFrac()), fmtPct(r.HAProxyNoRetry.AffectedBrokenFrac()))
	s += fmt.Sprintf("yoda max extra latency=%.1fs (paper: 0.6–3 s); haproxy-retry tail=%.1fs (paper: 30s+)\n",
		r.Yoda.MaxExtra.Seconds(), r.HAProxyRetry.Latency.Max().Seconds())
	return s
}

// Fig12bEvent is one row of the Figure 12(b) packet timeline.
type Fig12bEvent struct {
	At    time.Duration
	Desc  string
	Since time.Duration // relative to the failure instant
}

// Fig12bResult reproduces Figure 12(b): the server-side packet timeline
// of one flow across a Yoda instance failure.
type Fig12bResult struct {
	FailAt    time.Duration
	Events    []Fig12bEvent
	Recovered bool
}

// RunFig12b traces a single flow through an instance failure.
func RunFig12b(seed int64) *Fig12bResult {
	c := cluster.New(seed)
	objects := map[string][]byte{"/big": workload.SynthBody("/big", 300*1024)}
	backend := c.AddBackend("srv-1", objects, httpsim.DefaultServerConfig())
	c.AddStoreServers(3, memcache.DefaultSimServerConfig())
	c.AddYodaN(2, core.DefaultConfig(), tcpstore.DefaultConfig())
	vip := c.AddVIP("svc")
	c.InstallPolicy(vip, c.SimpleSplitRules("srv-1"), nil)

	res := &Fig12bResult{}
	serverIP := backend.Rec.Addr.IP
	var maxSeqSeen uint32
	haveSeq := false
	c.Net.SetTracer(func(ev netsim.TraceEvent) {
		pkt := ev.Packet
		// Watch data packets leaving the backend server, at their first
		// hop only (the VIP); the encapsulated VIP→instance copy of the
		// same packet is skipped so each transmission appears once —
		// except when that copy is dropped at a dead instance, which is
		// exactly the event the figure highlights.
		if pkt.Src.IP != serverIP || len(pkt.Payload) == 0 {
			return
		}
		if pkt.Outer != nil && !ev.Dropped {
			return
		}
		kind := "data"
		if haveSeq && int32(pkt.Seq-maxSeqSeen) <= 0 {
			kind = "retransmission"
		}
		if !haveSeq || int32(pkt.Seq-maxSeqSeen) > 0 {
			maxSeqSeen = pkt.Seq
			haveSeq = true
		}
		// Before the failure the transfer produces thousands of ordinary
		// data events; keep the timeline readable by recording only
		// retransmissions plus post-failure traffic.
		if res.FailAt == 0 && kind == "data" {
			return
		}
		desc := fmt.Sprintf("server %s seq=%d", kind, pkt.Seq)
		if ev.Dropped {
			desc += " (DROPPED: " + ev.Reason + ")"
		}
		res.Events = append(res.Events, Fig12bEvent{At: ev.At, Desc: desc})
	})

	cl := c.NewClient(httpsim.DefaultClientConfig())
	var fr *httpsim.FetchResult
	cl.Get(netsim.HostPort{IP: vip, Port: 80}, "/big", func(r *httpsim.FetchResult) { fr = r })
	c.Net.RunFor(200 * time.Millisecond)
	for _, in := range c.Yoda {
		if in.FlowCount() > 0 {
			in.Fail()
			res.FailAt = c.Net.Now()
			res.Events = append(res.Events, Fig12bEvent{At: c.Net.Now(), Desc: "YODA instance fails (point a)"})
			ip := in.IP()
			c.Net.Schedule(600*time.Millisecond, func() {
				c.L4.RemoveInstance(ip)
				res.Events = append(res.Events, Fig12bEvent{At: c.Net.Now(), Desc: "monitor updates L4 mapping"})
			})
			break
		}
	}
	c.Net.RunFor(30 * time.Second)
	res.Recovered = fr != nil && fr.Err == nil
	for i := range res.Events {
		res.Events[i].Since = res.Events[i].At - res.FailAt
	}
	return res
}

// String prints the timeline.
func (r *Fig12bResult) String() string {
	s := "Figure 12(b) — server-side packet timeline across a YODA failure\n"
	for _, ev := range r.Events {
		if ev.Since < -50*time.Millisecond || ev.Since > 3*time.Second {
			continue
		}
		s += fmt.Sprintf("  t=%+8.0fms  %s\n", float64(ev.Since)/float64(time.Millisecond), ev.Desc)
	}
	s += fmt.Sprintf("flow recovered without client timeout: %v\n", r.Recovered)
	return s
}
