package experiments

import (
	"fmt"
	"time"

	"repro/internal/cluster"
	"repro/internal/core"
	"repro/internal/haproxy"
	"repro/internal/httpsim"
	"repro/internal/memcache"
	"repro/internal/netsim"
	"repro/internal/tcpstore"
	"repro/internal/workload"
)

// WebsiteProfile models one of Table 1's websites: its browser-side HTTP
// timeout and whether the workload is a page load (retryable) or an
// ongoing session (a media stream or mail sync, where a broken connection
// is a user-visible session reset).
type WebsiteProfile struct {
	Name    string
	Timeout time.Duration
	Retries int
	Session bool // true: long-lived session; false: page load
}

// Table1Websites are the six sites the paper reports.
func Table1Websites() []WebsiteProfile {
	const firefoxTimeout = 300 * time.Second // 5 min (default Mozilla Firefox)
	return []WebsiteProfile{
		{Name: "nytimes", Timeout: firefoxTimeout, Retries: 1},
		{Name: "reddit", Timeout: firefoxTimeout, Retries: 1},
		{Name: "stanford", Timeout: firefoxTimeout, Retries: 1},
		{Name: "vimeo", Timeout: firefoxTimeout, Session: true},
		{Name: "soundcloud", Timeout: firefoxTimeout, Session: true},
		{Name: "email service", Timeout: 100 * time.Second, Session: true}, // C# HttpWebRequest default
	}
}

// Table1Row is one website's observed impact.
type Table1Row struct {
	Website       string
	HAProxyImpact string // "page timed-out (+Xs)" or "session reset"
	YodaImpact    string // expected "none (+Xs)"
	HAProxyExtra  time.Duration
	YodaExtra     time.Duration
}

// Table1Result reproduces Table 1 (and extends it with the Yoda column:
// the same failure under Yoda is invisible to the user).
type Table1Result struct {
	Rows []Table1Row
}

// RunTable1 breaks one established connection per website by failing the
// proxy that carries it, and classifies the user-visible impact.
func RunTable1(seed int64) *Table1Result {
	res := &Table1Result{}
	for i, site := range Table1Websites() {
		hImpact, hExtra := table1Arm(seed+int64(i)*10, site, false)
		yImpact, yExtra := table1Arm(seed+int64(i)*10+5, site, true)
		res.Rows = append(res.Rows, Table1Row{
			Website:       site.Name,
			HAProxyImpact: hImpact,
			YodaImpact:    yImpact,
			HAProxyExtra:  hExtra,
			YodaExtra:     yExtra,
		})
	}
	return res
}

// table1Arm loads one large object ("the established connection"),
// fails the carrying LB instance mid-transfer, and classifies the result.
func table1Arm(seed int64, site WebsiteProfile, yoda bool) (string, time.Duration) {
	c := cluster.New(seed)
	objSize := 300 * 1024
	objects := map[string][]byte{"/stream": workload.SynthBody("/stream", objSize)}
	c.AddBackend("srv-1", objects, httpsim.DefaultServerConfig())
	c.AddBackend("srv-2", objects, httpsim.DefaultServerConfig())
	var vip netsim.IP
	if yoda {
		c.AddStoreServers(3, memcache.DefaultSimServerConfig())
		c.AddYodaN(2, core.DefaultConfig(), tcpstore.DefaultConfig())
		vip = c.AddVIP("site")
		c.InstallPolicy(vip, c.SimpleSplitRules("srv-1", "srv-2"), nil)
	} else {
		c.AddHAProxyN(2, haproxy.DefaultConfig())
		vip = c.AddVIP("site")
		c.InstallPolicyHAProxy(vip, c.SimpleSplitRules("srv-1", "srv-2"), nil)
	}

	ccfg := httpsim.DefaultClientConfig()
	ccfg.Timeout = site.Timeout
	ccfg.Retries = 0
	if !site.Session {
		ccfg.Retries = site.Retries
	}
	cl := c.NewClient(ccfg)
	var res *httpsim.FetchResult
	cl.Get(netsim.HostPort{IP: vip, Port: 80}, "/stream", func(r *httpsim.FetchResult) { res = r })

	// Baseline transfer time without failure, for the "+extra" column.
	base := table1Baseline(seed, yoda, objSize)

	// Fail the instance that carries the flow mid-transfer; the monitor
	// (modelled by a 600ms repair) withdraws it.
	c.Net.RunFor(200 * time.Millisecond)
	if yoda {
		for _, in := range c.Yoda {
			if in.FlowCount() > 0 {
				in.Fail()
				ip := in.IP()
				c.Net.Schedule(600*time.Millisecond, func() { c.L4.RemoveInstance(ip) })
				break
			}
		}
	} else {
		for _, p := range c.HAProxy {
			if p.Active > 0 {
				p.Fail()
				ip := p.IP()
				c.Net.Schedule(600*time.Millisecond, func() { c.L4.RemoveInstance(ip) })
				break
			}
		}
	}
	c.Net.RunFor(2 * site.Timeout)
	if res == nil {
		return "no result (bug)", 0
	}
	extra := res.Elapsed() - base
	if extra < 0 {
		extra = 0
	}
	switch {
	case res.Err != nil:
		return "session reset", extra
	case res.TimedOut:
		return fmt.Sprintf("page timed-out (+%.0fs)", extra.Seconds()), extra
	case extra > 5*time.Second:
		return fmt.Sprintf("page delayed (+%.1fs)", extra.Seconds()), extra
	default:
		return fmt.Sprintf("none (+%.1fs)", extra.Seconds()), extra
	}
}

func table1Baseline(seed int64, yoda bool, objSize int) time.Duration {
	c := cluster.New(seed + 1000)
	objects := map[string][]byte{"/stream": workload.SynthBody("/stream", objSize)}
	c.AddBackend("srv-1", objects, httpsim.DefaultServerConfig())
	var vip netsim.IP
	if yoda {
		c.AddStoreServers(3, memcache.DefaultSimServerConfig())
		c.AddYodaN(1, core.DefaultConfig(), tcpstore.DefaultConfig())
		vip = c.AddVIP("site")
		c.InstallPolicy(vip, c.SimpleSplitRules("srv-1"), nil)
	} else {
		c.AddHAProxyN(1, haproxy.DefaultConfig())
		vip = c.AddVIP("site")
		c.InstallPolicyHAProxy(vip, c.SimpleSplitRules("srv-1"), nil)
	}
	cl := c.NewClient(httpsim.DefaultClientConfig())
	var base time.Duration
	cl.Get(netsim.HostPort{IP: vip, Port: 80}, "/stream", func(r *httpsim.FetchResult) { base = r.Elapsed() })
	c.Net.RunFor(time.Minute)
	return base
}

// String prints the table with the added Yoda column.
func (r *Table1Result) String() string {
	rows := make([][]string, 0, len(r.Rows))
	for _, row := range r.Rows {
		rows = append(rows, []string{row.Website, row.HAProxyImpact, row.YodaImpact})
	}
	return "Table 1 — impact of proxy failure on one established connection\n" +
		table([]string{"website", "impact (HAProxy)", "impact (YODA)"}, rows)
}
