package experiments

import (
	"fmt"
	"time"

	"repro/internal/cluster"
	"repro/internal/core"
	"repro/internal/haproxy"
	"repro/internal/httpsim"
	"repro/internal/memcache"
	"repro/internal/metrics"
	"repro/internal/netsim"
	"repro/internal/tcpstore"
	"repro/internal/workload"
)

// Fig9Config parameterizes the latency-breakdown experiment.
type Fig9Config struct {
	Seed       int64
	Requests   int // fetches per arm
	ObjectSize int // response size (paper: 10 KB "small objects")
}

// DefaultFig9Config mirrors §7.1's small-object run at test-friendly
// volume (latency components are load-independent below saturation).
func DefaultFig9Config() Fig9Config {
	return Fig9Config{Seed: 1, Requests: 200, ObjectSize: 10 * 1024}
}

// Fig9Result is the latency breakdown of Figure 9 (medians).
type Fig9Result struct {
	Baseline time.Duration // no load balancer

	YodaTotal      time.Duration
	YodaConnection time.Duration // backend connection establishment at the LB
	YodaStorage    time.Duration // TCPStore writes (the decoupling overhead)
	YodaLB         time.Duration // residual LB processing

	HAProxyTotal      time.Duration
	HAProxyConnection time.Duration
	HAProxyLB         time.Duration
}

// RunFig9 measures the end-to-end latency breakdown for Yoda, HAProxy and
// a no-LB baseline on identical workloads.
func RunFig9(cfg Fig9Config) *Fig9Result {
	res := &Fig9Result{}
	body := workload.SynthBody("/obj", cfg.ObjectSize)
	objects := map[string][]byte{"/obj": body}

	// --- baseline: client -> server directly ---
	{
		c := cluster.New(cfg.Seed)
		b := c.AddBackend("srv-1", objects, httpsim.DefaultServerConfig())
		lat := fetchMany(c, b.Rec.Addr, cfg.Requests)
		res.Baseline = lat.Median()
	}

	// --- Yoda ---
	{
		c := cluster.New(cfg.Seed + 1)
		c.AddStoreServers(3, memcache.DefaultSimServerConfig())
		c.AddBackend("srv-1", objects, httpsim.DefaultServerConfig())
		c.AddYodaN(2, core.DefaultConfig(), tcpstore.DefaultConfig())
		vip := c.AddVIP("svc")
		c.InstallPolicy(vip, c.SimpleSplitRules("srv-1"), nil)
		lat := fetchMany(c, netsim.HostPort{IP: vip, Port: 80}, cfg.Requests)
		res.YodaTotal = lat.Median()
		storage := metrics.NewDurationHistogram()
		conn := metrics.NewDurationHistogram()
		for _, in := range c.Yoda {
			storage.Merge(in.StorageLat)
			conn.Merge(in.ConnLat)
		}
		res.YodaStorage = storage.Median()
		// StorageLat holds one sample per write barrier: storage-a and the
		// batched storage-b (its two records ride a single SetMulti round
		// trip), so a flow's storage cost is 2× the per-op median.
		// ConnLat includes the storage-b barrier that gates the tunnel
		// transition; report the connection component net of storage, as
		// the paper separates the two.
		res.YodaConnection = conn.Median() - 2*res.YodaStorage
		if res.YodaConnection < 0 {
			res.YodaConnection = 0
		}
		res.YodaLB = res.YodaTotal - res.Baseline - res.YodaConnection - 2*res.YodaStorage
		if res.YodaLB < 0 {
			res.YodaLB = 0
		}
	}

	// --- HAProxy ---
	{
		c := cluster.New(cfg.Seed + 2)
		c.AddBackend("srv-1", objects, httpsim.DefaultServerConfig())
		c.AddHAProxyN(2, haproxy.DefaultConfig())
		vip := c.AddVIP("svc")
		c.InstallPolicyHAProxy(vip, c.SimpleSplitRules("srv-1"), nil)
		lat := fetchMany(c, netsim.HostPort{IP: vip, Port: 80}, cfg.Requests)
		res.HAProxyTotal = lat.Median()
		// HAProxy's backend handshake costs one DC RTT plus the lookup
		// pipeline delay; measure it as total minus baseline minus the
		// same residual classification used for Yoda.
		res.HAProxyConnection = 500*time.Microsecond + haproxy.DefaultConfig().LookupBase
		res.HAProxyLB = res.HAProxyTotal - res.Baseline - res.HAProxyConnection
		if res.HAProxyLB < 0 {
			res.HAProxyLB = 0
		}
	}
	return res
}

// fetchMany issues sequential fetches from rotating clients and returns
// the latency histogram.
func fetchMany(c *cluster.Cluster, addr netsim.HostPort, n int) *metrics.DurationHistogram {
	lat := metrics.NewDurationHistogram()
	clients := make([]*httpsim.Client, 4)
	for i := range clients {
		clients[i] = c.NewClient(httpsim.DefaultClientConfig())
	}
	var issue func(i int)
	issue = func(i int) {
		if i >= n {
			return
		}
		clients[i%len(clients)].Get(addr, "/obj", func(r *httpsim.FetchResult) {
			if r.Err == nil {
				lat.Add(r.Elapsed())
			}
			issue(i + 1)
		})
	}
	issue(0)
	c.Net.RunFor(time.Duration(n) * time.Second) // generous deadline
	return lat
}

// String prints the figure's bars.
func (r *Fig9Result) String() string {
	rows := [][]string{
		{"Baseline (no LB)", fmtMs(r.Baseline), "-", "-", "-"},
		{"YODA", fmtMs(r.YodaTotal), fmtMs(r.YodaConnection), fmtMs(2 * r.YodaStorage), fmtMs(r.YodaLB)},
		{"HAProxy", fmtMs(r.HAProxyTotal), fmtMs(r.HAProxyConnection), "0.00 ms", fmtMs(r.HAProxyLB)},
	}
	s := "Figure 9 — end-to-end latency breakdown (medians)\n"
	s += table([]string{"arm", "total", "connection", "storage", "LB processing"}, rows)
	s += fmt.Sprintf("storage overhead per flow = %s (paper: 0.89 ms, <1 ms)\n", fmtMs(2*r.YodaStorage))
	return s
}
