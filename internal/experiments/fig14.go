package experiments

import (
	"fmt"
	"sort"
	"time"

	"repro/internal/cluster"
	"repro/internal/controller"
	"repro/internal/core"
	"repro/internal/httpsim"
	"repro/internal/memcache"
	"repro/internal/netsim"
	"repro/internal/rules"
	"repro/internal/tcpstore"
	"repro/internal/workload"
)

// Fig14Config parameterizes the safe-policy-update experiment (§7.4).
type Fig14Config struct {
	Seed     int64
	Rate     int // aggregate req/s
	Duration time.Duration
	// Update schedule (paper: add Srv-4 at 10 s, remove Srv-1 at 20 s,
	// reweight to 1:1:2 at 30 s).
	AddAt      time.Duration
	RemoveAt   time.Duration
	ReweightAt time.Duration
}

// DefaultFig14Config mirrors Figure 14.
func DefaultFig14Config() Fig14Config {
	return Fig14Config{
		Seed:       1,
		Rate:       200,
		Duration:   40 * time.Second,
		AddAt:      10 * time.Second,
		RemoveAt:   20 * time.Second,
		ReweightAt: 30 * time.Second,
	}
}

// Fig14Point is one second of per-backend traffic fractions.
type Fig14Point struct {
	At        time.Duration
	Fractions map[string]float64 // backend name -> fraction of requests
}

// Fig14Result reproduces Figure 14: the traffic split tracking a
// make-before-break policy change, with zero broken flows.
type Fig14Result struct {
	Series   []Fig14Point
	Requests int
	Broken   int
	// PhaseFractions are the mean fractions within each policy phase.
	PhaseFractions [4]map[string]float64
}

// RunFig14 drives the policy-update schedule.
func RunFig14(cfg Fig14Config) *Fig14Result {
	c := cluster.New(cfg.Seed)
	objects := map[string][]byte{"/obj": workload.SynthBody("/obj", 4*1024)}
	for i := 1; i <= 4; i++ {
		c.AddBackend(fmt.Sprintf("Srv-%d", i), objects, httpsim.DefaultServerConfig())
	}
	c.AddStoreServers(3, memcache.DefaultSimServerConfig())
	c.AddYodaN(3, core.DefaultConfig(), tcpstore.DefaultConfig())
	vip := c.AddVIP("svc")
	ct := controller.New(c, controller.DefaultConfig())

	split := func(weights map[string]float64) []rules.Rule {
		// Build the split in sorted name order: map iteration order is
		// randomized, and split order decides which backend each weighted
		// draw lands on, so it must be stable for deterministic output.
		names := make([]string, 0, len(weights))
		for name := range weights {
			names = append(names, name)
		}
		sort.Strings(names)
		wb := make([]rules.WeightedBackend, 0, len(names))
		for _, name := range names {
			wb = append(wb, rules.WeightedBackend{Backend: c.Backends[name].Rec, Weight: weights[name]})
		}
		return []rules.Rule{{
			Name: "split", Priority: 1, Match: rules.Match{URLGlob: "*"},
			Action: rules.Action{Type: rules.ActionSplit, Split: wb},
		}}
	}
	ct.SetPolicy(vip, split(map[string]float64{"Srv-1": 1, "Srv-2": 1, "Srv-3": 1}), nil)
	ct.Start()

	// Schedule the three policy changes.
	c.Net.Schedule(cfg.AddAt, func() {
		ct.UpdatePolicy(vip, split(map[string]float64{"Srv-1": 1, "Srv-2": 1, "Srv-3": 1, "Srv-4": 1}))
	})
	c.Net.Schedule(cfg.RemoveAt, func() {
		// Soft removal: new connections avoid Srv-1; existing ones drain.
		ct.UpdatePolicy(vip, split(map[string]float64{"Srv-2": 1, "Srv-3": 1, "Srv-4": 1}))
	})
	c.Net.Schedule(cfg.ReweightAt, func() {
		ct.UpdatePolicy(vip, split(map[string]float64{"Srv-2": 1, "Srv-3": 1, "Srv-4": 2}))
	})

	res := &Fig14Result{}
	vipHP := netsim.HostPort{IP: vip, Port: 80}
	clients := make([]*httpsim.Client, 8)
	for i := range clients {
		clients[i] = c.NewClient(httpsim.DefaultClientConfig())
	}
	// Per-second counting of which backend served each request, via the
	// backends' request counters.
	prev := map[string]int{}
	var sample func()
	sample = func() {
		now := c.Net.Now()
		if now > cfg.Duration {
			return
		}
		pt := Fig14Point{At: now, Fractions: map[string]float64{}}
		total := 0
		cur := map[string]int{}
		for name, b := range c.Backends {
			cur[name] = b.Server.Requests
			d := cur[name] - prev[name]
			pt.Fractions[name] = float64(d)
			total += d
		}
		if total > 0 {
			for name := range pt.Fractions {
				pt.Fractions[name] /= float64(total)
			}
		}
		prev = cur
		res.Series = append(res.Series, pt)
		c.Net.Schedule(time.Second, sample)
	}
	c.Net.Schedule(time.Second, sample)

	i := 0
	var tick func()
	tick = func() {
		if c.Net.Now() >= cfg.Duration {
			return
		}
		clients[i%len(clients)].Get(vipHP, "/obj", func(r *httpsim.FetchResult) {
			res.Requests++
			if r.Err != nil {
				res.Broken++
			}
		})
		i++
		c.Net.Schedule(time.Second/time.Duration(cfg.Rate), tick)
	}
	tick()
	c.Net.RunFor(cfg.Duration + 35*time.Second)

	// Phase means.
	bounds := []time.Duration{0, cfg.AddAt, cfg.RemoveAt, cfg.ReweightAt, cfg.Duration}
	for ph := 0; ph < 4; ph++ {
		acc := map[string]float64{}
		n := 0
		for _, pt := range res.Series {
			// Skip the transition second itself.
			if pt.At > bounds[ph]+time.Second && pt.At <= bounds[ph+1] {
				for name, f := range pt.Fractions {
					acc[name] += f
				}
				n++
			}
		}
		if n > 0 {
			for name := range acc {
				acc[name] /= float64(n)
			}
		}
		res.PhaseFractions[ph] = acc
	}
	return res
}

// String prints the phase means and broken-flow count.
func (r *Fig14Result) String() string {
	names := []string{"Srv-1", "Srv-2", "Srv-3", "Srv-4"}
	phases := []string{"0-10s equal(1,2,3)", "10-20s equal(1,2,3,4)", "20-30s equal(2,3,4)", "30-40s 1:1:2(2,3,4)"}
	rows := make([][]string, 0, 4)
	for ph, label := range phases {
		row := []string{label}
		for _, n := range names {
			row = append(row, fmtPct(r.PhaseFractions[ph][n]))
		}
		rows = append(rows, row)
	}
	s := "Figure 14 — traffic split across a make-before-break policy update\n"
	s += table(append([]string{"phase"}, names...), rows)
	s += fmt.Sprintf("broken flows: %d of %d (paper: 0)\n", r.Broken, r.Requests)
	return s
}
