package experiments

import (
	"fmt"
	"math/rand"
	"sync"
	"time"

	"repro/internal/core"
	"repro/internal/httpsim"
	"repro/internal/metrics"
	"repro/internal/netsim"
	"repro/internal/rules"
)

// Fig6Config parameterizes the rule-lookup latency experiment.
type Fig6Config struct {
	Seed       int64
	RuleCounts []int // table sizes to sweep, e.g. 1K..10K
	Lookups    int   // lookups per table size
	// Parallel evaluates the rule-count points on separate goroutines.
	// The RNG draws are pre-generated sequentially from the single seeded
	// stream, so every reported metric except the wall-clock ScanP90
	// column is bit-identical to a sequential run.
	Parallel bool
}

// DefaultFig6Config sweeps 1K–10K rules as in the paper.
func DefaultFig6Config() Fig6Config {
	return Fig6Config{
		Seed:       1,
		RuleCounts: []int{1000, 2000, 4000, 6000, 8000, 10000},
		Lookups:    2000,
	}
}

// Fig6Point is one x-position of Figure 6.
type Fig6Point struct {
	Rules int
	// ModelP90 is the P90 latency under the calibrated latency model the
	// simulator charges per lookup (what end-to-end experiments see).
	ModelP90 time.Duration
	// ScanP90 is the measured wall-clock P90 of the actual linear scan on
	// this machine (the engine really is scanned; this is real work).
	ScanP90 time.Duration
	// AvgScanned is the mean number of rules examined per lookup.
	AvgScanned float64
}

// Fig6Result reproduces Figure 6: HAProxy-style lookup latency versus
// rule-table size. The paper's claim is shape, not absolute numbers: P90
// grows about linearly, with 10K rules ≈ 3× the latency of 1K rules.
type Fig6Result struct {
	Points []Fig6Point
	// Ratio10Kto1K is ModelP90(10K)/ModelP90(1K), ≈3 in the paper.
	Ratio10Kto1K float64
}

// fig6Inputs is the pre-drawn randomness for one rule-count point. Draws
// are generated sequentially from the single seeded stream — in exactly
// the order the measurement loop consumes them — so points can then be
// evaluated on separate goroutines without perturbing any result.
type fig6Inputs struct {
	paths []string
	rnds  []float64
}

// RunFig6 measures lookup latency across rule-table sizes.
func RunFig6(cfg Fig6Config) *Fig6Result {
	rng := rand.New(rand.NewSource(cfg.Seed))
	res := &Fig6Result{Points: make([]Fig6Point, len(cfg.RuleCounts))}
	instCfg := core.DefaultConfig()

	inputs := make([]fig6Inputs, len(cfg.RuleCounts))
	for i := range cfg.RuleCounts {
		in := fig6Inputs{
			paths: make([]string, cfg.Lookups),
			rnds:  make([]float64, cfg.Lookups),
		}
		for j := 0; j < cfg.Lookups; j++ {
			in.paths[j] = randomPath(rng)
			in.rnds[j] = rng.Float64()
		}
		inputs[i] = in
	}

	point := func(i int) {
		n := cfg.RuleCounts[i]
		engine := rules.NewEngine(randomRules(n))
		model := metrics.NewDurationHistogram()
		scan := metrics.NewDurationHistogram()
		scanned := 0.0
		for j := 0; j < cfg.Lookups; j++ {
			req := httpsim.NewRequest(inputs[i].paths[j], "svc")
			t0 := time.Now()
			d := engine.Select(req, inputs[i].rnds[j], nil)
			scan.Add(time.Since(t0))
			scanned += float64(d.Scanned)
			model.Add(instCfg.LookupBase + time.Duration(d.Scanned)*instCfg.LookupPerRule)
		}
		res.Points[i] = Fig6Point{
			Rules:      n,
			ModelP90:   model.P90(),
			ScanP90:    scan.P90(),
			AvgScanned: scanned / float64(cfg.Lookups),
		}
	}
	if cfg.Parallel {
		var wg sync.WaitGroup
		for i := range cfg.RuleCounts {
			wg.Add(1)
			go func(i int) { defer wg.Done(); point(i) }(i)
		}
		wg.Wait()
	} else {
		for i := range cfg.RuleCounts {
			point(i)
		}
	}
	if len(res.Points) >= 2 {
		first, last := res.Points[0], res.Points[len(res.Points)-1]
		if first.ModelP90 > 0 {
			res.Ratio10Kto1K = float64(last.ModelP90) / float64(first.ModelP90)
		}
	}
	return res
}

// randomRules builds n rules whose matches mostly miss, so lookups scan
// deep into the table as in a real multi-tenant rule set.
func randomRules(n int) []rules.Rule {
	backend := rules.Backend{Name: "b", Addr: netsim.HostPort{IP: netsim.IPv4(10, 0, 2, 1), Port: 80}}
	out := make([]rules.Rule, 0, n+1)
	for i := 0; i < n-1; i++ {
		out = append(out, rules.Rule{
			Name:     fmt.Sprintf("r%d", i),
			Priority: n - i,
			Match:    rules.Match{URLGlob: fmt.Sprintf("/tenant%d/*.php", i)},
			Action: rules.Action{Type: rules.ActionSplit,
				Split: []rules.WeightedBackend{{Backend: backend, Weight: 1}}},
		})
	}
	// Catch-all at the lowest priority so every lookup terminates there.
	out = append(out, rules.Rule{
		Name: "default", Priority: 0, Match: rules.Match{URLGlob: "*"},
		Action: rules.Action{Type: rules.ActionSplit,
			Split: []rules.WeightedBackend{{Backend: backend, Weight: 1}}},
	})
	return out
}

func randomPath(rng *rand.Rand) string {
	return fmt.Sprintf("/assets/img%d.jpg", rng.Intn(100000))
}

// String prints the figure's series.
func (r *Fig6Result) String() string {
	rows := make([][]string, 0, len(r.Points))
	for _, p := range r.Points {
		rows = append(rows, []string{
			fmt.Sprintf("%d", p.Rules),
			fmtMs(p.ModelP90),
			fmtMs(p.ScanP90),
			fmt.Sprintf("%.0f", p.AvgScanned),
		})
	}
	s := "Figure 6 — rule lookup latency vs table size (P90)\n"
	s += table([]string{"rules", "P90 (model)", "P90 (real scan)", "avg scanned"}, rows)
	s += fmt.Sprintf("latency(10K)/latency(1K) = %.2fx (paper: ~3x)\n", r.Ratio10Kto1K)
	return s
}
