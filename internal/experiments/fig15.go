package experiments

import (
	"fmt"

	"repro/internal/trace"
)

// Fig15Result reproduces Figure 15: the per-VIP max-to-average traffic
// ratio over the day, which bounds the LB cost an elastic shared service
// saves versus per-tenant peak provisioning (§8.1).
type Fig15Result struct {
	Stats trace.RatioStats
	// NumVIPs and TotalRules echo the trace's §8 setup line.
	NumVIPs    int
	TotalRules int
}

// RunFig15 generates the trace and computes the ratios.
func RunFig15(cfg trace.Config) *Fig15Result {
	tr := trace.Generate(cfg)
	return &Fig15Result{
		Stats:      tr.Ratios(),
		NumVIPs:    len(tr.VIPs),
		TotalRules: tr.TotalRules(),
	}
}

// String prints the sorted ratio series (decimated) plus the headline.
func (r *Fig15Result) String() string {
	s := "Figure 15 — max-to-average traffic ratio per VIP (sorted by volume)\n"
	rows := [][]string{}
	step := len(r.Stats.Ratios) / 20
	if step < 1 {
		step = 1
	}
	for i := 0; i < len(r.Stats.Ratios); i += step {
		rows = append(rows, []string{fmt.Sprintf("%d", i+1), fmt.Sprintf("%.2fx", r.Stats.Ratios[i])})
	}
	s += table([]string{"VIP rank", "max/avg"}, rows)
	s += fmt.Sprintf("trace: %d VIPs, %d rules (paper: 100+ VIPs, 50K+ rules)\n", r.NumVIPs, r.TotalRules)
	s += fmt.Sprintf("ratio range %.2fx–%.2fx, mean %.2fx -> mean LB cost saving %.1fx (paper: 1.07x–50.3x, mean 3.7x)\n",
		r.Stats.Min, r.Stats.Max, r.Stats.Mean, r.Stats.Mean)
	return s
}
