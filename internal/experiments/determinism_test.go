package experiments

import (
	"reflect"
	"testing"
	"time"
)

// TestFig12bTraceDeterminism is the guardrail for the simulator fast
// path: the Figure 12(b) failover scenario — a traced flow across an
// instance failure, recovery via TCPStore, retransmissions and all —
// must produce a bit-identical event timeline on every run with the same
// seed. Timer-wheel ordering, pooling, or zero-copy bugs that perturb
// event order or RNG draw order show up here first.
func TestFig12bTraceDeterminism(t *testing.T) {
	a := RunFig12b(99)
	b := RunFig12b(99)
	if a.FailAt != b.FailAt {
		t.Fatalf("FailAt differs: %v vs %v", a.FailAt, b.FailAt)
	}
	if a.Recovered != b.Recovered {
		t.Fatalf("Recovered differs: %v vs %v", a.Recovered, b.Recovered)
	}
	if len(a.Events) == 0 {
		t.Fatal("no trace events recorded; scenario did not run")
	}
	if !reflect.DeepEqual(a.Events, b.Events) {
		if len(a.Events) != len(b.Events) {
			t.Fatalf("event counts differ: %d vs %d", len(a.Events), len(b.Events))
		}
		for i := range a.Events {
			if a.Events[i] != b.Events[i] {
				t.Fatalf("event %d differs:\n  run1: %+v\n  run2: %+v", i, a.Events[i], b.Events[i])
			}
		}
	}
}

// TestFig12ArmStatsDeterminism runs a scaled-down Figure 12(a) Yoda arm
// twice with the same seed and asserts identical final statistics.
func TestFig12ArmStatsDeterminism(t *testing.T) {
	cfg := DefaultFig12Config()
	cfg.Seed = 7
	cfg.Instances = 4
	cfg.Kill = 1
	cfg.ClientProcs = 6
	cfg.Duration = 10 * time.Second
	cfg.FailAt = 3 * time.Second
	cfg.HTTPTimeout = 10 * time.Second

	a := runFig12Arm(cfg, "yoda", true, 0)
	b := runFig12Arm(cfg, "yoda", true, 0)
	if a.Requests == 0 {
		t.Fatal("no requests completed; scenario did not run")
	}
	if a.Requests != b.Requests || a.Broken != b.Broken ||
		a.Affected != b.Affected || a.AffectedBroken != b.AffectedBroken {
		t.Fatalf("counters differ:\n  run1: %+v\n  run2: %+v", a, b)
	}
	if a.MaxExtra != b.MaxExtra {
		t.Fatalf("MaxExtra differs: %v vs %v", a.MaxExtra, b.MaxExtra)
	}
	if a.Latency.Count() != b.Latency.Count() ||
		a.Latency.Median() != b.Latency.Median() ||
		a.Latency.Max() != b.Latency.Max() {
		t.Fatalf("latency histograms differ: median %v vs %v, max %v vs %v",
			a.Latency.Median(), b.Latency.Median(), a.Latency.Max(), b.Latency.Max())
	}
}
