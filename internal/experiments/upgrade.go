package experiments

import (
	"fmt"
	"time"

	"repro/internal/cluster"
	"repro/internal/controller"
	"repro/internal/core"
	"repro/internal/httpsim"
	"repro/internal/memcache"
	"repro/internal/metrics"
	"repro/internal/netsim"
	"repro/internal/reconfig"
	"repro/internal/tcpstore"
	"repro/internal/workload"
)

// UpgradeConfig parameterizes the §7.5 rolling-upgrade experiment: a
// fleet serving a continuous closed-loop workload is upgraded one
// instance at a time — drain through δ-bounded reconfiguration waves,
// restart under a fresh config, re-admit — and every client request must
// still succeed.
type UpgradeConfig struct {
	Seed      int64
	Instances int
	// VIPs is how many services share the fleet; more VIPs means finer
	// migration granularity for the planner.
	VIPs int
	// ClientProcs closed-loop client processes per VIP.
	ClientProcs int
	// Duration of the workload; the upgrade starts at UpgradeAt.
	Duration  time.Duration
	UpgradeAt time.Duration
	// RestartDelay is the simulated per-instance reboot time.
	RestartDelay time.Duration
	// Delta is δ, the per-wave migrated-flow bound (Eq. 6–7).
	Delta float64
	// HTTPTimeout is the browser timeout (paper: 30 s).
	HTTPTimeout time.Duration
	// ObjectSize per request.
	ObjectSize int
}

// DefaultUpgradeConfig upgrades a 4-instance fleet serving 2 VIPs under
// 2×12 closed-loop clients with δ = 25%.
func DefaultUpgradeConfig() UpgradeConfig {
	return UpgradeConfig{
		Seed:         1,
		Instances:    4,
		VIPs:         2,
		ClientProcs:  12,
		Duration:     60 * time.Second,
		UpgradeAt:    5 * time.Second,
		RestartDelay: 2 * time.Second,
		Delta:        0.25,
		HTTPTimeout:  30 * time.Second,
		ObjectSize:   40 * 1024,
	}
}

// UpgradeResult is the outcome of the rolling-upgrade experiment.
type UpgradeResult struct {
	Cfg UpgradeConfig

	// Requests / Failed over the whole run. The paper's claim (§7.5) is
	// Failed == 0.
	Requests int
	Failed   int
	Latency  *metrics.DurationHistogram

	// Upgrade is the driver's final state; Reconfig inside it aggregates
	// every drain and re-admission wave.
	Upgrade reconfig.UpgradeStats

	// Detections/Revivals are the monitor's view of the restarts.
	Detections int
	Revivals   int

	// RestartsSeen counts instances whose incarnation changed (sanity:
	// must equal Upgraded).
	RestartsSeen int
}

// RunUpgrade executes the experiment.
func RunUpgrade(cfg UpgradeConfig) *UpgradeResult {
	c := cluster.New(cfg.Seed)
	objects := map[string][]byte{"/obj": workload.SynthBody("/obj", cfg.ObjectSize)}
	backendNames := make([]string, 0, 4)
	for i := 1; i <= 4; i++ {
		name := fmt.Sprintf("srv-%d", i)
		c.AddBackend(name, objects, httpsim.DefaultServerConfig())
		backendNames = append(backendNames, name)
	}
	c.AddStoreServers(4, memcache.DefaultSimServerConfig())
	c.AddYodaN(cfg.Instances, core.DefaultConfig(), tcpstore.DefaultConfig())

	ctCfg := controller.DefaultConfig()
	ctCfg.ScaleInterval = 0 // isolate the upgrade from scaling
	ctCfg.Reconfig = reconfig.Options{
		Delta:        cfg.Delta,
		DrainQuiet:   time.Second,
		DrainTimeout: 10 * time.Second,
	}
	ct := controller.New(c, ctCfg)

	vips := make([]netsim.IP, cfg.VIPs)
	for v := 0; v < cfg.VIPs; v++ {
		vips[v] = c.AddVIP(fmt.Sprintf("svc-%d", v+1))
		ct.SetPolicy(vips[v], c.SimpleSplitRules(backendNames...), nil)
	}
	ct.Start()

	res := &UpgradeResult{Cfg: cfg, Latency: metrics.NewDurationHistogram()}
	ccfg := httpsim.DefaultClientConfig()
	ccfg.Timeout = cfg.HTTPTimeout

	// Closed-loop clients, staggered so flows spread across request
	// phases (same driver as Figure 12).
	for v := 0; v < cfg.VIPs; v++ {
		vipHP := netsim.HostPort{IP: vips[v], Port: 80}
		for p := 0; p < cfg.ClientProcs; p++ {
			cl := c.NewClient(ccfg)
			var loop func()
			loop = func() {
				if c.Net.Now() >= cfg.Duration {
					return
				}
				cl.Get(vipHP, "/obj", func(r *httpsim.FetchResult) {
					res.Requests++
					if r.Err != nil {
						res.Failed++
					}
					res.Latency.Add(r.Elapsed())
					loop()
				})
			}
			c.Net.Schedule(time.Duration(v*cfg.ClientProcs+p)*37*time.Millisecond, loop)
		}
	}

	before := append([]*core.Instance(nil), c.Yoda...)
	c.Net.Schedule(cfg.UpgradeAt, func() {
		if err := ct.StartRollingUpgrade(
			core.DefaultConfig(), tcpstore.DefaultConfig(),
			reconfig.UpgradeOptions{RestartDelay: cfg.RestartDelay}, nil,
		); err != nil {
			panic(fmt.Sprintf("experiments: upgrade start: %v", err))
		}
	})

	c.Net.RunFor(cfg.Duration + cfg.HTTPTimeout + 10*time.Second)

	res.Upgrade = ct.UpgradeStats()
	res.Detections = ct.Detections
	res.Revivals = ct.Revivals
	for i, in := range c.Yoda {
		if in != before[i] {
			res.RestartsSeen++
		}
	}
	return res
}

// String prints the §7.5 summary.
func (r *UpgradeResult) String() string {
	up := r.Upgrade
	s := "§7.5 — zero-downtime rolling upgrade under continuous load\n"
	s += table(
		[]string{"instances", "upgraded", "restarts", "waves", "migrated", "resurrected", "broken", "max wave frac", "upgrade time"},
		[][]string{{
			fmt.Sprintf("%d", up.Instances),
			fmt.Sprintf("%d", up.Upgraded),
			fmt.Sprintf("%d", r.RestartsSeen),
			fmt.Sprintf("%d", up.Reconfig.Waves),
			fmt.Sprintf("%d", up.Reconfig.MigratedFlows),
			fmt.Sprintf("%d", up.Reconfig.ResurrectedFlows),
			fmt.Sprintf("%d", up.Reconfig.BrokenFlows),
			fmtPct(up.Reconfig.MaxWaveMigratedFrac),
			fmt.Sprintf("%.1fs", up.Duration.Seconds()),
		}},
	)
	s += fmt.Sprintf("requests=%d failed=%d (paper §7.5: zero failed requests); δ=%s, measured max wave=%s\n",
		r.Requests, r.Failed, fmtPct(r.Cfg.Delta), fmtPct(up.Reconfig.MaxWaveMigratedFrac))
	s += fmt.Sprintf("latency median=%s p99=%s max=%s; monitor detections=%d revivals=%d; rules reclaimed=%d\n",
		fmtMs(r.Latency.Median()), fmtMs(r.Latency.Quantile(0.99)), fmtMs(r.Latency.Max()),
		r.Detections, r.Revivals, up.Reconfig.RulesRemoved)
	return s
}
