package experiments

import (
	"fmt"
	"time"

	"repro/internal/memcache"
	"repro/internal/metrics"
	"repro/internal/netsim"
	"repro/internal/tcpstore"
)

// Fig10Config parameterizes the TCPStore latency/CPU experiment.
type Fig10Config struct {
	Seed int64
	// Servers is the Memcached fleet size. The paper uses 10; the figure's
	// x-axis is per-server rate, so a smaller fleet at the same per-server
	// rate reproduces the same queueing behaviour with fewer events.
	Servers int
	// RatesPerServer sweeps client requests per second per server
	// (paper: 4K, 20K, 40K).
	RatesPerServer []int
	// Duration of each measurement (paper: 60 s; queueing reaches steady
	// state within a second at these rates).
	Duration time.Duration
	// ValueBytes is the stored flow-state record size.
	ValueBytes int
	// HybridResidue, when positive, adds a third sweep modelling hybrid
	// stateful/stateless recovery: the same client flow rate, but only
	// this fraction of flows (the residue — TLS, keep-alive switches,
	// epoch-pinned flows) reaches TCPStore; the rest are derived from
	// packet-carried state and never touch it. 0 disables the arm.
	HybridResidue float64
}

// DefaultFig10Config uses 3 servers and shortened windows (see Servers).
func DefaultFig10Config() Fig10Config {
	return Fig10Config{
		Seed:           1,
		Servers:        3,
		RatesPerServer: []int{4000, 20000, 40000},
		Duration:       2 * time.Second,
		ValueBytes:     64,
		HybridResidue:  0.10,
	}
}

// Fig10Point is one (rate, replication) cell.
type Fig10Point struct {
	RatePerServer int
	Replicas      int
	// Hybrid marks the hybrid-recovery arm: RatePerServer is still the
	// client flow rate, but only the residue fraction reaches the store.
	Hybrid    bool
	SetMedian time.Duration
	GetMedian time.Duration
	DelMedian time.Duration
	// CPU is the mean Memcached server CPU utilization (Figure 11).
	CPU float64
}

// Fig10Result reproduces Figures 10 and 11: per-operation latency and
// server CPU for default Memcached (1 replica) versus TCPStore's
// 2-replica persistence.
type Fig10Result struct {
	Points []Fig10Point
	// OverheadAtMax is the relative set-latency overhead of replication at
	// the highest rate (paper: <24%).
	OverheadAtMax float64
	// CPURatioAtMax is replicated/default CPU at the highest rate
	// (paper: ~2x).
	CPURatioAtMax float64
	// HybridCPURatioAtMax is hybrid/replicated server CPU at the highest
	// rate: what taking derivable flows off the store buys back. With a
	// residue fraction f it approaches f.
	HybridCPURatioAtMax float64
}

// RunFig10 sweeps the ops rate for both replication settings, plus the
// hybrid-recovery arm when configured. Each cell builds its own
// simulation from the seed, so appending the hybrid sweep cannot
// perturb the default and replicated points.
func RunFig10(cfg Fig10Config) *Fig10Result {
	res := &Fig10Result{}
	byKey := map[string]*Fig10Point{}
	for _, replicas := range []int{1, 2} {
		for _, rate := range cfg.RatesPerServer {
			p := runFig10Cell(cfg, replicas, rate, rate)
			res.Points = append(res.Points, p)
			byKey[fmt.Sprintf("%d/%d", rate, replicas)] = &res.Points[len(res.Points)-1]
		}
	}
	maxRate := cfg.RatesPerServer[len(cfg.RatesPerServer)-1]
	d1 := byKey[fmt.Sprintf("%d/1", maxRate)]
	d2 := byKey[fmt.Sprintf("%d/2", maxRate)]
	if d1 != nil && d2 != nil && d1.SetMedian > 0 {
		res.OverheadAtMax = float64(d2.SetMedian-d1.SetMedian) / float64(d1.SetMedian)
		if d1.CPU > 0 {
			res.CPURatioAtMax = d2.CPU / d1.CPU
		}
	}
	if cfg.HybridResidue > 0 {
		var atMax *Fig10Point
		for _, rate := range cfg.RatesPerServer {
			opRate := int(float64(rate)*cfg.HybridResidue + 0.5)
			p := runFig10Cell(cfg, 2, rate, opRate)
			p.Hybrid = true
			res.Points = append(res.Points, p)
			if rate == maxRate {
				atMax = &res.Points[len(res.Points)-1]
			}
		}
		if atMax != nil && d2 != nil && d2.CPU > 0 {
			res.HybridCPURatioAtMax = atMax.CPU / d2.CPU
		}
	}
	return res
}

// runFig10Cell measures one cell. ratePerServer is the client flow rate
// the point is labelled with; opRate is the rate at which store
// operations are actually issued (lower in the hybrid arm, where only
// residue flows reach the store).
func runFig10Cell(cfg Fig10Config, replicas, ratePerServer, opRate int) Fig10Point {
	n := netsim.New(cfg.Seed)
	var servers []*memcache.SimServer
	var addrs []netsim.HostPort
	for i := 0; i < cfg.Servers; i++ {
		h := netsim.NewHost(n, netsim.IPv4(10, 0, 3, byte(i+1)))
		srv := memcache.NewSimServer(h, memcache.DefaultPort, memcache.DefaultSimServerConfig())
		servers = append(servers, srv)
		addrs = append(addrs, netsim.HostPort{IP: h.IP(), Port: memcache.DefaultPort})
	}
	clientHost := netsim.NewHost(n, netsim.IPv4(10, 0, 1, 1))
	scfg := tcpstore.DefaultConfig()
	scfg.Replicas = replicas
	store := tcpstore.New(clientHost, addrs, scfg)

	// Issue client requests open-loop at ratePerServer × Servers aggregate
	// (the figure's x-axis is client requests per server; with K replicas
	// the per-server *operation* rate is K× that, which is exactly what
	// makes the replicated mode hotter, as in the paper). Each request
	// performs one set — TCPStore's dominant operation — and a sampled 2%
	// additionally exercise get and delete to measure their latency
	// without perturbing the load.
	setLat := metrics.NewDurationHistogram()
	getLat := metrics.NewDurationHistogram()
	delLat := metrics.NewDurationHistogram()

	totalRate := opRate * cfg.Servers
	interval := time.Second / time.Duration(totalRate)
	idx := 0
	var tick func()
	tick = func() {
		if n.Now() >= cfg.Duration {
			return
		}
		key := []byte(fmt.Sprintf("flow:%d", idx))
		idx++
		sampled := idx%50 == 0
		value := make([]byte, cfg.ValueBytes)
		t0 := n.Now()
		store.Set(key, value, func(err error) {
			if err == nil {
				setLat.Add(n.Now() - t0)
			}
			if !sampled {
				return
			}
			t1 := n.Now()
			store.Get(key, func(v []byte, ok bool, err error) {
				if err == nil && ok {
					getLat.Add(n.Now() - t1)
				}
				t2 := n.Now()
				store.Delete(key, func(err error) {
					if err == nil {
						delLat.Add(n.Now() - t2)
					}
				})
			})
		})
		n.Schedule(interval, tick)
	}
	tick()
	n.Run(cfg.Duration + 500*time.Millisecond)

	cpu := 0.0
	for _, s := range servers {
		cpu += s.CPU.UtilizationClamped(0, cfg.Duration)
	}
	cpu /= float64(len(servers))
	return Fig10Point{
		RatePerServer: ratePerServer,
		Replicas:      replicas,
		SetMedian:     setLat.Median(),
		GetMedian:     getLat.Median(),
		DelMedian:     delLat.Median(),
		CPU:           cpu,
	}
}

// String prints Figures 10 and 11 as one table.
func (r *Fig10Result) String() string {
	rows := make([][]string, 0, len(r.Points))
	hybrid := false
	for _, p := range r.Points {
		mode := "default"
		if p.Replicas == 2 {
			mode = "yoda (2 replicas)"
		}
		if p.Hybrid {
			mode = "hybrid (2 replicas)"
			hybrid = true
		}
		rows = append(rows, []string{
			fmt.Sprintf("%d", p.RatePerServer),
			mode,
			fmtMs(p.SetMedian), fmtMs(p.GetMedian), fmtMs(p.DelMedian),
			fmtPct(p.CPU),
		})
	}
	s := "Figures 10 & 11 — TCPStore operation latency (median) and server CPU\n"
	s += table([]string{"req/s/server", "mode", "set", "get", "delete", "CPU"}, rows)
	s += fmt.Sprintf("replication latency overhead at max rate = %s (paper: <24%%)\n", fmtPct(r.OverheadAtMax))
	s += fmt.Sprintf("replication CPU ratio at max rate = %.2fx (paper: ~2x)\n", r.CPURatioAtMax)
	if hybrid {
		s += fmt.Sprintf("hybrid store CPU at max rate = %.2fx of yoda (derivable flows never reach the store)\n",
			r.HybridCPURatioAtMax)
	}
	return s
}
