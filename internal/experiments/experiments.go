// Package experiments contains one runner per table and figure of the
// paper's evaluation (§2.3 Table 1, §4.4 Figure 6, §7 Figures 9–14, §8
// Figures 15–16). Each runner builds the required testbed in the
// simulator, drives the workload, and returns a result object whose
// String method prints the same rows/series the paper reports, so
// EXPERIMENTS.md can record paper-vs-measured side by side.
//
// Scale note: the simulated testbeds reproduce the paper's *per-instance*
// operating points (request rates per instance, CPU utilization levels,
// failure timings) at reduced aggregate scale where the full scale would
// only multiply identical simulated work; every such reduction is stated
// in the relevant runner's documentation.
package experiments

import (
	"fmt"
	"strings"
	"time"
)

// fmtMs renders a duration in milliseconds with two decimals, the unit
// used throughout the paper's latency plots.
func fmtMs(d time.Duration) string {
	return fmt.Sprintf("%.2f ms", float64(d)/float64(time.Millisecond))
}

// fmtPct renders a fraction as a percentage.
func fmtPct(f float64) string { return fmt.Sprintf("%.1f%%", f*100) }

// table renders rows with aligned columns for terminal output.
func table(header []string, rows [][]string) string {
	widths := make([]int, len(header))
	for i, h := range header {
		widths[i] = len(h)
	}
	for _, r := range rows {
		for i, c := range r {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	var b strings.Builder
	writeRow := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			b.WriteString(c)
			for p := len(c); p < widths[i]; p++ {
				b.WriteByte(' ')
			}
		}
		b.WriteByte('\n')
	}
	writeRow(header)
	sep := make([]string, len(header))
	for i := range sep {
		sep[i] = strings.Repeat("-", widths[i])
	}
	writeRow(sep)
	for _, r := range rows {
		writeRow(r)
	}
	return b.String()
}
