package experiments

import (
	"testing"
	"time"
)

// TestUpgradeExperimentZeroFailures runs a reduced §7.5 experiment: a
// 3-instance fleet under continuous closed-loop load is rolling-upgraded
// with zero failed client requests, and no wave migrates more than δ of
// the live flows.
func TestUpgradeExperimentZeroFailures(t *testing.T) {
	cfg := DefaultUpgradeConfig()
	cfg.Instances = 3
	cfg.VIPs = 2
	cfg.ClientProcs = 6
	cfg.Duration = 35 * time.Second
	cfg.Delta = 0.35

	r := RunUpgrade(cfg)
	if r.Failed != 0 {
		t.Fatalf("%d/%d requests failed (paper §7.5: zero)", r.Failed, r.Requests)
	}
	if r.Requests == 0 {
		t.Fatal("workload never ran")
	}
	up := r.Upgrade
	if !up.Done || up.Err != "" {
		t.Fatalf("upgrade incomplete: %+v", up)
	}
	if up.Upgraded != cfg.Instances || r.RestartsSeen != cfg.Instances {
		t.Fatalf("upgraded=%d restarts=%d, want %d", up.Upgraded, r.RestartsSeen, cfg.Instances)
	}
	if up.Reconfig.BrokenFlows != 0 {
		t.Fatalf("broken flows: %d", up.Reconfig.BrokenFlows)
	}
	if up.Reconfig.MigratedFlows == 0 {
		t.Fatal("nothing migrated — load too thin to exercise the drain")
	}
	if up.Reconfig.MaxWaveMigratedFrac > cfg.Delta+0.1 {
		t.Fatalf("max wave migrated %.3f exceeds δ=%.2f", up.Reconfig.MaxWaveMigratedFrac, cfg.Delta)
	}
}
