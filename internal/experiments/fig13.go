package experiments

import (
	"fmt"
	"time"

	"repro/internal/cluster"
	"repro/internal/controller"
	"repro/internal/core"
	"repro/internal/httpsim"
	"repro/internal/memcache"
	"repro/internal/netsim"
	"repro/internal/tcpstore"
	"repro/internal/workload"
)

// Fig13Config parameterizes the scalability experiment (§7.3).
type Fig13Config struct {
	Seed int64
	// InitialInstances and the per-instance request rates before/after the
	// load increase. The paper runs 6 instances at 5K→10K req/s each; this
	// reproduction runs the same *utilization* trajectory at 1/10 the
	// aggregate rate using a single-core instance profile (10× per-request
	// cost), which leaves every CPU percentage identical while keeping the
	// event count tractable.
	InitialInstances int
	BaseRatePerInst  int
	PeakRatePerInst  int
	StepAt           time.Duration
	Duration         time.Duration
	ObjectSize       int
}

// DefaultFig13Config mirrors Figure 13 at 1/10 scale.
func DefaultFig13Config() Fig13Config {
	return Fig13Config{
		Seed:             1,
		InitialInstances: 6,
		BaseRatePerInst:  500,
		PeakRatePerInst:  1000,
		StepAt:           10 * time.Second,
		Duration:         30 * time.Second,
		ObjectSize:       4 * 1024,
	}
}

// Fig13Point is one second of the Figure 13 series.
type Fig13Point struct {
	At         time.Duration
	Instances  int
	ReqPerInst float64
	AvgCPU     float64
}

// Fig13Result reproduces Figure 13: request rate and CPU per instance as
// the controller scales the fleet out under a load increase.
type Fig13Result struct {
	Series         []Fig13Point
	InstancesAdded int
	Broken         int
	Requests       int
}

// fig13InstanceConfig is the 1/10-scale single-core profile: ~800µs per
// small request, so 500 req/s ≈ 40% CPU and 1000 req/s ≈ 80%, matching
// the paper's 8-core instance at 5K/10K req/s.
func fig13InstanceConfig() core.Config {
	cfg := core.DefaultConfig()
	cfg.Cores = 1
	cfg.CPUConnPhase = 600 * time.Microsecond
	cfg.CPUPerPacket = 20 * time.Microsecond
	return cfg
}

// RunFig13 drives the load step and records the series.
func RunFig13(cfg Fig13Config) *Fig13Result {
	c := cluster.New(cfg.Seed)
	objects := map[string][]byte{"/obj": workload.SynthBody("/obj", cfg.ObjectSize)}
	for i := 1; i <= 6; i++ {
		c.AddBackend(fmt.Sprintf("srv-%d", i), objects, httpsim.DefaultServerConfig())
	}
	c.AddStoreServers(4, memcache.DefaultSimServerConfig())
	instCfg := fig13InstanceConfig()
	c.AddYodaN(cfg.InitialInstances, instCfg, tcpstore.DefaultConfig())
	vip := c.AddVIP("svc")
	ct := controller.New(c, controller.DefaultConfig())
	ct.Provision = func() *core.Instance { return c.AddYoda(instCfg, tcpstore.DefaultConfig()) }
	ct.SetPolicy(vip, c.SimpleSplitRules("srv-1", "srv-2", "srv-3", "srv-4", "srv-5", "srv-6"), nil)
	ct.Start()

	res := &Fig13Result{}
	vipHP := netsim.HostPort{IP: vip, Port: 80}
	clients := make([]*httpsim.Client, 16)
	for i := range clients {
		clients[i] = c.NewClient(httpsim.DefaultClientConfig())
	}
	// Open-loop load whose aggregate tracks rate-per-initial-instance.
	i := 0
	var tick func()
	rate := func() int {
		per := cfg.BaseRatePerInst
		if c.Net.Now() >= cfg.StepAt {
			per = cfg.PeakRatePerInst
		}
		return per * cfg.InitialInstances
	}
	tick = func() {
		if c.Net.Now() >= cfg.Duration {
			return
		}
		clients[i%len(clients)].Get(vipHP, "/obj", func(r *httpsim.FetchResult) {
			res.Requests++
			if r.Err != nil {
				res.Broken++
			}
		})
		i++
		c.Net.Schedule(time.Second/time.Duration(rate()), tick)
	}
	tick()

	// Sample the series once per second.
	var sample func()
	sample = func() {
		now := c.Net.Now()
		if now > cfg.Duration {
			return
		}
		live := 0
		cpu := 0.0
		flows := 0.0
		for _, in := range c.Yoda {
			if !in.Host().Alive() {
				continue
			}
			live++
			cpu += in.CPU.UtilizationClamped(now-time.Second, now)
			for _, st := range in.Stats {
				flows += float64(st.NewFlows)
			}
		}
		if live > 0 {
			cpu /= float64(live)
		}
		res.Series = append(res.Series, Fig13Point{
			At:         now,
			Instances:  live,
			ReqPerInst: float64(rate()) / float64(live),
			AvgCPU:     cpu,
		})
		c.Net.Schedule(time.Second, sample)
	}
	c.Net.Schedule(time.Second, sample)

	c.Net.RunFor(cfg.Duration + 35*time.Second) // drain outstanding fetches
	res.InstancesAdded = len(c.Yoda) - cfg.InitialInstances
	return res
}

// String prints the series.
func (r *Fig13Result) String() string {
	rows := make([][]string, 0, len(r.Series))
	for _, p := range r.Series {
		rows = append(rows, []string{
			fmt.Sprintf("%.0fs", p.At.Seconds()),
			fmt.Sprintf("%d", p.Instances),
			fmt.Sprintf("%.0f", p.ReqPerInst),
			fmtPct(p.AvgCPU),
		})
	}
	s := "Figure 13 — scale-out under a load step (1/10 aggregate scale)\n"
	s += table([]string{"t", "instances", "req/s/inst", "avg CPU"}, rows)
	s += fmt.Sprintf("instances added by controller: %d (paper: 3); broken flows: %d of %d (paper: 0)\n",
		r.InstancesAdded, r.Broken, r.Requests)
	return s
}
