package experiments

import (
	"strings"
	"testing"
	"time"

	"repro/internal/trace"
)

func TestFig6LinearLookupGrowth(t *testing.T) {
	cfg := Fig6Config{Seed: 1, RuleCounts: []int{1000, 4000, 10000}, Lookups: 300}
	r := RunFig6(cfg)
	if len(r.Points) != 3 {
		t.Fatalf("points = %d", len(r.Points))
	}
	// Latency must increase with table size.
	for i := 1; i < len(r.Points); i++ {
		if r.Points[i].ModelP90 <= r.Points[i-1].ModelP90 {
			t.Fatalf("model latency not increasing: %v", r.Points)
		}
		if r.Points[i].ScanP90 <= 0 {
			t.Fatalf("scan latency missing at %d rules", r.Points[i].Rules)
		}
	}
	// Paper's headline: 10K rules ≈ 3x the 1K latency.
	if r.Ratio10Kto1K < 2.0 || r.Ratio10Kto1K > 4.5 {
		t.Fatalf("10K/1K ratio = %.2f, want ~3", r.Ratio10Kto1K)
	}
	// Lookups scan essentially the whole table (tenancy rules miss).
	if r.Points[2].AvgScanned < 9000 {
		t.Fatalf("avg scanned = %.0f, want near 10000", r.Points[2].AvgScanned)
	}
	if !strings.Contains(r.String(), "Figure 6") {
		t.Fatal("missing header in output")
	}
}

func TestFig9Breakdown(t *testing.T) {
	cfg := Fig9Config{Seed: 1, Requests: 60, ObjectSize: 10 * 1024}
	r := RunFig9(cfg)
	if r.Baseline <= 0 || r.YodaTotal <= 0 || r.HAProxyTotal <= 0 {
		t.Fatalf("missing medians: %+v", r)
	}
	// Ordering: baseline < haproxy ≈ yoda, with yoda slightly higher.
	if r.YodaTotal <= r.Baseline || r.HAProxyTotal <= r.Baseline {
		t.Fatalf("LB arms must cost more than baseline: %+v", r)
	}
	if r.YodaTotal < r.HAProxyTotal {
		t.Fatalf("yoda (%v) should not beat haproxy (%v)", r.YodaTotal, r.HAProxyTotal)
	}
	// The decoupling overhead (two storage events) must be under 1 ms.
	if 2*r.YodaStorage >= time.Millisecond {
		t.Fatalf("storage overhead = %v, paper reports <1ms", 2*r.YodaStorage)
	}
	if 2*r.YodaStorage <= 0 {
		t.Fatal("storage overhead not measured")
	}
	// Yoda's total must be within ~15% of HAProxy's (paper: 151 vs 144).
	if float64(r.YodaTotal) > 1.15*float64(r.HAProxyTotal) {
		t.Fatalf("yoda %v vs haproxy %v: more than 15%% apart", r.YodaTotal, r.HAProxyTotal)
	}
	_ = r.String()
}

func TestFig10LatencyAndCPU(t *testing.T) {
	cfg := Fig10Config{
		Seed: 1, Servers: 2,
		RatesPerServer: []int{4000, 20000},
		Duration:       500 * time.Millisecond,
		ValueBytes:     64,
	}
	r := RunFig10(cfg)
	if len(r.Points) != 4 {
		t.Fatalf("points = %d", len(r.Points))
	}
	for _, p := range r.Points {
		if p.SetMedian <= 0 {
			t.Fatalf("set latency missing: %+v", p)
		}
		// Sub-millisecond ops at sub-saturation rates (paper: 0.75ms at 40K).
		if p.SetMedian > 2*time.Millisecond {
			t.Fatalf("set latency %v too high: %+v", p.SetMedian, p)
		}
	}
	// Replication roughly doubles CPU.
	if r.CPURatioAtMax < 1.6 || r.CPURatioAtMax > 2.4 {
		t.Fatalf("CPU ratio = %.2f, want ~2", r.CPURatioAtMax)
	}
	// Latency overhead of replication stays small (paper <24%; allow 50%).
	if r.OverheadAtMax > 0.5 {
		t.Fatalf("replication latency overhead = %.0f%%", r.OverheadAtMax*100)
	}
	_ = r.String()
}

// TestFig10HybridArm enables the hybrid-recovery sweep and checks both
// that the store CPU drops roughly to the residue fraction and that the
// default/replicated cells are bit-identical to a run without the arm
// (each cell owns its simulation, so appending a sweep perturbs nothing).
func TestFig10HybridArm(t *testing.T) {
	cfg := Fig10Config{
		Seed: 1, Servers: 2,
		RatesPerServer: []int{4000, 20000},
		Duration:       500 * time.Millisecond,
		ValueBytes:     64,
	}
	base := RunFig10(cfg)
	cfg.HybridResidue = 0.10
	r := RunFig10(cfg)
	if len(r.Points) != 6 {
		t.Fatalf("points = %d, want 4 base + 2 hybrid", len(r.Points))
	}
	for i := 0; i < 4; i++ {
		if r.Points[i] != base.Points[i] {
			t.Fatalf("hybrid sweep perturbed base cell %d:\n  base:   %+v\n  hybrid: %+v",
				i, base.Points[i], r.Points[i])
		}
	}
	for _, p := range r.Points[4:] {
		if !p.Hybrid || p.Replicas != 2 {
			t.Fatalf("hybrid point mislabelled: %+v", p)
		}
		if p.SetMedian <= 0 {
			t.Fatalf("hybrid set latency missing: %+v", p)
		}
	}
	// Store CPU must track the residue fraction: ~0.1x of the fully
	// persisted arm, with generous slack for fixed per-op costs.
	if r.HybridCPURatioAtMax <= 0 || r.HybridCPURatioAtMax > 0.3 {
		t.Fatalf("hybrid CPU ratio = %.3f, want ~0.1", r.HybridCPURatioAtMax)
	}
	_ = r.String()
}

func TestCPUOverhead(t *testing.T) {
	cfg := CPUConfig{Seed: 1, Rates: []int{4000, 12000}, Duration: 300 * time.Millisecond, ObjectSize: 2048}
	r := RunCPU(cfg)
	if len(r.Points) != 2 {
		t.Fatalf("points = %d", len(r.Points))
	}
	low, high := r.Points[0], r.Points[1]
	if high.YodaCPU <= low.YodaCPU {
		t.Fatal("yoda CPU not increasing with rate")
	}
	// Yoda saturates near 12K; HAProxy stays well below (paper: 46%).
	if high.YodaCPU < 0.85 {
		t.Fatalf("yoda CPU at 12K = %.2f, want near saturation", high.YodaCPU)
	}
	if high.HAProxyCPU > 0.7*high.YodaCPU {
		t.Fatalf("haproxy CPU %.2f should be well below yoda %.2f (paper: ~0.46 vs 1.0)",
			high.HAProxyCPU, high.YodaCPU)
	}
	_ = r.String()
}

func TestTable1Impact(t *testing.T) {
	r := RunTable1(1)
	if len(r.Rows) != 6 {
		t.Fatalf("rows = %d", len(r.Rows))
	}
	for _, row := range r.Rows {
		// Under HAProxy every site suffers: timeout or reset.
		if !strings.Contains(row.HAProxyImpact, "timed-out") &&
			!strings.Contains(row.HAProxyImpact, "reset") &&
			!strings.Contains(row.HAProxyImpact, "delayed") {
			t.Errorf("%s: HAProxy impact %q, want user-visible damage", row.Website, row.HAProxyImpact)
		}
		// Under Yoda the failure is masked.
		if !strings.HasPrefix(row.YodaImpact, "none") {
			t.Errorf("%s: Yoda impact %q, want none", row.Website, row.YodaImpact)
		}
		if row.YodaExtra > 5*time.Second {
			t.Errorf("%s: Yoda extra %v too large", row.Website, row.YodaExtra)
		}
	}
	// Page sites must time out (not reset) under HAProxy with retry.
	for _, row := range r.Rows[:3] {
		if !strings.Contains(row.HAProxyImpact, "timed-out") {
			t.Errorf("%s: want page timed-out, got %q", row.Website, row.HAProxyImpact)
		}
	}
	// Session sites must see resets or fatal stalls.
	for _, row := range r.Rows[3:] {
		if !strings.Contains(row.HAProxyImpact, "reset") && !strings.Contains(row.HAProxyImpact, "timed-out") {
			t.Errorf("%s: want session damage, got %q", row.Website, row.HAProxyImpact)
		}
	}
	_ = r.String()
}

func TestFig12Recovery(t *testing.T) {
	cfg := DefaultFig12Config()
	cfg.Instances = 6
	cfg.Kill = 2
	cfg.ClientProcs = 10
	cfg.Duration = 20 * time.Second
	cfg.FailAt = 4 * time.Second
	r := RunFig12(cfg)
	// Yoda: zero broken flows.
	if r.Yoda.Broken != 0 {
		t.Fatalf("yoda broke %d/%d flows", r.Yoda.Broken, r.Yoda.Requests)
	}
	if r.Yoda.Requests < 100 {
		t.Fatalf("yoda requests = %d, load generator broken", r.Yoda.Requests)
	}
	// HAProxy-noretry: the flows in flight on the killed instances break
	// (the paper reports 24% of its run's flows; our run is longer so the
	// fraction is smaller, but the count must be clearly nonzero).
	if r.HAProxyNoRetry.Broken < 2 {
		t.Fatalf("haproxy-noretry broke %d flows, want visible breakage", r.HAProxyNoRetry.Broken)
	}
	// HAProxy-retry: flows eventually succeed but the tail reaches the
	// HTTP timeout; Yoda's tail stays seconds, not tens of seconds.
	if r.HAProxyRetry.Broken != 0 {
		t.Fatalf("haproxy-retry broke %d flows; retry should recover", r.HAProxyRetry.Broken)
	}
	if r.HAProxyRetry.Latency.Max() < cfg.HTTPTimeout {
		t.Fatalf("haproxy-retry max latency %v, want ≥ the %v timeout", r.HAProxyRetry.Latency.Max(), cfg.HTTPTimeout)
	}
	if r.Yoda.MaxExtra > 10*time.Second {
		t.Fatalf("yoda recovery tail %v, paper reports 0.6-3s", r.Yoda.MaxExtra)
	}
	if r.Yoda.MaxExtra < 100*time.Millisecond {
		t.Fatalf("yoda tail %v suspiciously small — did the failure hit?", r.Yoda.MaxExtra)
	}
	_ = r.String()
}

func TestFig12bTimeline(t *testing.T) {
	r := RunFig12b(1)
	if !r.Recovered {
		t.Fatal("flow did not recover")
	}
	out := r.String()
	if !strings.Contains(out, "YODA instance fails") {
		t.Fatalf("timeline missing failure marker:\n%s", out)
	}
	if !strings.Contains(out, "retransmission") {
		t.Fatalf("timeline missing retransmissions:\n%s", out)
	}
	// There must be at least one dropped retransmission (to the dead
	// instance) and a successful one after the mapping repair.
	if !strings.Contains(out, "DROPPED") {
		t.Fatalf("timeline missing the drop at the dead instance:\n%s", out)
	}
}

func TestFig13ScaleOut(t *testing.T) {
	cfg := Fig13Config{
		Seed:             1,
		InitialInstances: 3,
		BaseRatePerInst:  400,
		PeakRatePerInst:  950,
		StepAt:           6 * time.Second,
		Duration:         18 * time.Second,
		ObjectSize:       2 * 1024,
	}
	r := RunFig13(cfg)
	if r.InstancesAdded == 0 {
		t.Fatal("controller never scaled out")
	}
	if r.Broken != 0 {
		t.Fatalf("%d flows broke during scale-out (paper: 0)", r.Broken)
	}
	// CPU must rise after the step and fall after scale-out.
	var preStep, postStep, final float64
	for _, p := range r.Series {
		switch {
		case p.At <= cfg.StepAt:
			preStep = p.AvgCPU
		case p.At <= cfg.StepAt+3*time.Second:
			if p.AvgCPU > postStep {
				postStep = p.AvgCPU
			}
		default:
			final = p.AvgCPU
		}
	}
	if postStep <= preStep {
		t.Fatalf("CPU did not rise after the load step: %.2f -> %.2f", preStep, postStep)
	}
	if final >= postStep {
		t.Fatalf("CPU did not fall after scale-out: peak %.2f, final %.2f", postStep, final)
	}
	_ = r.String()
}

func TestFig14PolicyUpdate(t *testing.T) {
	cfg := DefaultFig14Config()
	cfg.Rate = 150
	r := RunFig14(cfg)
	if r.Broken != 0 {
		t.Fatalf("%d flows broke during policy updates (paper: 0)", r.Broken)
	}
	// Phase 0: three-way equal split.
	for _, n := range []string{"Srv-1", "Srv-2", "Srv-3"} {
		f := r.PhaseFractions[0][n]
		if f < 0.23 || f > 0.45 {
			t.Errorf("phase 0 %s fraction %.2f, want ~1/3", n, f)
		}
	}
	if r.PhaseFractions[0]["Srv-4"] > 0.01 {
		t.Errorf("phase 0 Srv-4 got traffic before being added")
	}
	// Phase 1: four-way split.
	if f := r.PhaseFractions[1]["Srv-4"]; f < 0.15 || f > 0.4 {
		t.Errorf("phase 1 Srv-4 fraction %.2f, want ~1/4", f)
	}
	// Phase 2: Srv-1 removed.
	if f := r.PhaseFractions[2]["Srv-1"]; f > 0.02 {
		t.Errorf("phase 2 Srv-1 fraction %.2f after removal", f)
	}
	// Phase 3: 1:1:2.
	if f := r.PhaseFractions[3]["Srv-4"]; f < 0.4 || f > 0.62 {
		t.Errorf("phase 3 Srv-4 fraction %.2f, want ~0.5", f)
	}
	if f := r.PhaseFractions[3]["Srv-2"]; f < 0.15 || f > 0.36 {
		t.Errorf("phase 3 Srv-2 fraction %.2f, want ~0.25", f)
	}
	_ = r.String()
}

func TestFig15CostReduction(t *testing.T) {
	r := RunFig15(trace.DefaultConfig())
	if r.NumVIPs < 100 {
		t.Fatalf("VIPs = %d, want 100+", r.NumVIPs)
	}
	if r.TotalRules < 50000 {
		t.Fatalf("rules = %d, want 50K+", r.TotalRules)
	}
	if r.Stats.Mean < 2.2 || r.Stats.Mean > 5.5 {
		t.Fatalf("mean saving %.2fx, paper reports 3.7x", r.Stats.Mean)
	}
	if r.Stats.Max < 15 {
		t.Fatalf("max ratio %.2f, want tail toward 50x", r.Stats.Max)
	}
	_ = r.String()
}

func TestFig16Assignment(t *testing.T) {
	cfg := DefaultFig16Config()
	cfg.Windows = 16
	r := RunFig16(cfg)
	if len(r.Rounds) < 14 {
		t.Fatalf("rounds = %d", len(r.Rounds))
	}
	// 16(b): per-instance rules a tiny fraction of all-to-all.
	if r.MedianRulesFrac <= 0 || r.MedianRulesFrac > 0.10 {
		t.Fatalf("rules frac = %.3f, paper: ~0.01", r.MedianRulesFrac)
	}
	// 16(c): many-to-many needs more instances than all-to-all, but not
	// absurdly more.
	if r.MeanInstanceOverheadVsAllToAll <= 0 || r.MeanInstanceOverheadVsAllToAll > 1.2 {
		t.Fatalf("instance overhead = %.2f, paper: ~0.27", r.MeanInstanceOverheadVsAllToAll)
	}
	// 16(e): the migration cap makes Yoda-limit migrate far less.
	if r.MedianLimitMigrated >= r.MedianNoLimitMigrated {
		t.Fatalf("limit migrated %.2f ≥ no-limit %.2f", r.MedianLimitMigrated, r.MedianNoLimitMigrated)
	}
	if r.MedianNoLimitMigrated < 0.15 {
		t.Fatalf("no-limit migrated %.2f, want heavy shuffling (paper: 44.9%%)", r.MedianNoLimitMigrated)
	}
	if r.MedianLimitMigrated > 0.15 {
		t.Fatalf("limit migrated %.2f, want ≤ ~10%% cap", r.MedianLimitMigrated)
	}
	// 16(d): limit arm avoids new transient overloads.
	if r.MedianLimitOverloaded > r.MedianNoLimitOverloaded {
		t.Fatalf("limit overload %.3f > no-limit %.3f", r.MedianLimitOverloaded, r.MedianNoLimitOverloaded)
	}
	_ = r.String()
}
