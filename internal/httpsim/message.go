// Package httpsim provides a minimal HTTP/1.0-1.1 implementation that
// operates on raw byte streams: an incremental request/response parser,
// message serialization, an origin server, and a browser-style client.
//
// The standard library's net/http cannot be used here because every
// message must flow through the simulated TCP endpoints (and, inside the
// Yoda instance, be parsed out of raw segment payloads before a backend
// is even chosen).
package httpsim

import (
	"bytes"
	"fmt"
	"sort"
	"strings"
)

// Request is a parsed HTTP request.
type Request struct {
	Method  string
	Path    string
	Version string // "HTTP/1.0" or "HTTP/1.1"
	Headers map[string]string
	Body    []byte

	// cookies memoizes the parsed Cookie header (see view.go) so rule
	// evaluation pays the parse once per request, not once per rule.
	cookies cookieView
}

// NewRequest builds a GET request for path with sensible defaults.
func NewRequest(path, host string) *Request {
	return &Request{
		Method:  "GET",
		Path:    path,
		Version: "HTTP/1.1",
		Headers: map[string]string{"Host": host},
	}
}

// Header returns the value of the named header (case-insensitive), or "".
func (r *Request) Header(name string) string {
	return headerGet(r.Headers, name)
}

// SetHeader sets a header, canonicalizing its name.
func (r *Request) SetHeader(name, value string) {
	if r.Headers == nil {
		r.Headers = make(map[string]string)
	}
	r.Headers[canonical(name)] = value
}

// Cookie returns the value of the named cookie from the Cookie header, or
// "" if absent. The header is parsed at most once per request (and again
// only if it is rewritten); repeated lookups are allocation-free.
func (r *Request) Cookie(name string) string {
	raw := r.Header("Cookie")
	if raw == "" {
		return ""
	}
	if !r.cookies.parsed || r.cookies.src != raw {
		r.cookies.parse(raw)
	}
	return r.cookies.lookup(name)
}

// KeepAlive reports whether the connection should persist after this
// request (HTTP/1.1 default unless "Connection: close").
func (r *Request) KeepAlive() bool {
	conn := r.Header("Connection")
	if r.Version == "HTTP/1.1" {
		return !strings.EqualFold(conn, "close")
	}
	return strings.EqualFold(conn, "keep-alive")
}

// Marshal serializes the request onto the wire.
func (r *Request) Marshal() []byte {
	var b bytes.Buffer
	fmt.Fprintf(&b, "%s %s %s\r\n", r.Method, r.Path, r.Version)
	writeHeaders(&b, r.Headers)
	if len(r.Body) > 0 {
		fmt.Fprintf(&b, "Content-Length: %d\r\n", len(r.Body))
	}
	b.WriteString("\r\n")
	b.Write(r.Body)
	return b.Bytes()
}

// Response is a parsed HTTP response.
type Response struct {
	Version    string
	StatusCode int
	Status     string
	Headers    map[string]string
	Body       []byte
}

// NewResponse builds a 200 response carrying body.
func NewResponse(code int, body []byte) *Response {
	return &Response{
		Version:    "HTTP/1.1",
		StatusCode: code,
		Status:     statusText(code),
		Headers:    map[string]string{},
		Body:       body,
	}
}

// Header returns the value of the named header (case-insensitive), or "".
func (r *Response) Header(name string) string {
	return headerGet(r.Headers, name)
}

// SetHeader sets a header, canonicalizing its name.
func (r *Response) SetHeader(name, value string) {
	if r.Headers == nil {
		r.Headers = make(map[string]string)
	}
	r.Headers[canonical(name)] = value
}

// Marshal serializes the response onto the wire, always emitting a
// Content-Length so the peer can frame the body.
func (r *Response) Marshal() []byte {
	var b bytes.Buffer
	fmt.Fprintf(&b, "%s %d %s\r\n", r.Version, r.StatusCode, r.Status)
	writeHeaders(&b, r.Headers)
	fmt.Fprintf(&b, "Content-Length: %d\r\n", len(r.Body))
	b.WriteString("\r\n")
	b.Write(r.Body)
	return b.Bytes()
}

func statusText(code int) string {
	switch code {
	case 200:
		return "OK"
	case 301:
		return "Moved Permanently"
	case 400:
		return "Bad Request"
	case 404:
		return "Not Found"
	case 500:
		return "Internal Server Error"
	case 503:
		return "Service Unavailable"
	default:
		return "Unknown"
	}
}

func writeHeaders(b *bytes.Buffer, h map[string]string) {
	keys := make([]string, 0, len(h))
	for k := range h {
		if strings.EqualFold(k, "Content-Length") {
			continue // framing is computed at Marshal time
		}
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, k := range keys {
		fmt.Fprintf(b, "%s: %s\r\n", k, h[k])
	}
}

func headerGet(h map[string]string, name string) string {
	// Fast path: headers are stored under canonical names, and hot callers
	// (the rule engine, keep-alive framing) pass canonical names, so the
	// direct map hit succeeds without the allocation canonicalizing would
	// cost. The fold-insensitive scan covers every other spelling.
	if v, ok := h[name]; ok {
		return v
	}
	for k, v := range h {
		if strings.EqualFold(k, name) {
			return v
		}
	}
	return ""
}

// canonical converts a header name to Canonical-Form. Only ASCII letters
// are case-mapped; other bytes pass through untouched, so the function is
// idempotent on arbitrary input.
func canonical(name string) string {
	b := []byte(name)
	upper := true
	for i, c := range b {
		switch {
		case upper && 'a' <= c && c <= 'z':
			b[i] = c - 'a' + 'A'
		case !upper && 'A' <= c && c <= 'Z':
			b[i] = c - 'A' + 'a'
		}
		upper = c == '-'
	}
	return string(b)
}
