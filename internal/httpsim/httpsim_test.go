package httpsim

import (
	"bytes"
	"strings"
	"testing"
	"testing/quick"
	"time"

	"repro/internal/netsim"
	"repro/internal/tcp"
)

func TestRequestMarshalParseRoundTrip(t *testing.T) {
	req := NewRequest("/index.html", "mysite.com")
	req.SetHeader("Cookie", "session=abc123; lang=en-GB")
	req.Body = []byte("payload")
	wire := req.Marshal()

	p := &RequestParser{}
	got, err := p.Feed(wire)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 1 {
		t.Fatalf("parsed %d requests", len(got))
	}
	r := got[0]
	if r.Method != "GET" || r.Path != "/index.html" || r.Version != "HTTP/1.1" {
		t.Fatalf("request line: %+v", r)
	}
	if r.Header("host") != "mysite.com" {
		t.Errorf("Host = %q", r.Header("host"))
	}
	if r.Cookie("session") != "abc123" || r.Cookie("lang") != "en-GB" {
		t.Errorf("cookies: %q %q", r.Cookie("session"), r.Cookie("lang"))
	}
	if r.Cookie("missing") != "" {
		t.Errorf("missing cookie should be empty")
	}
	if string(r.Body) != "payload" {
		t.Errorf("body = %q", r.Body)
	}
}

func TestRequestParserIncremental(t *testing.T) {
	req := NewRequest("/a", "h")
	wire := req.Marshal()
	p := &RequestParser{}
	for i := 0; i < len(wire)-1; i++ {
		got, err := p.Feed(wire[i : i+1])
		if err != nil {
			t.Fatal(err)
		}
		if len(got) != 0 {
			t.Fatalf("request completed early at byte %d", i)
		}
	}
	got, err := p.Feed(wire[len(wire)-1:])
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 1 {
		t.Fatalf("expected completion on last byte, got %d", len(got))
	}
}

func TestRequestParserPipelined(t *testing.T) {
	var wire bytes.Buffer
	wire.Write(NewRequest("/1", "h").Marshal())
	wire.Write(NewRequest("/2", "h").Marshal())
	wire.Write(NewRequest("/3", "h").Marshal())
	p := &RequestParser{}
	got, err := p.Feed(wire.Bytes())
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 3 || got[0].Path != "/1" || got[2].Path != "/3" {
		t.Fatalf("pipelined parse: %v", got)
	}
	if p.Buffered() != 0 {
		t.Fatalf("leftover bytes: %d", p.Buffered())
	}
}

func TestParseRequestHeaderPartial(t *testing.T) {
	r, err := ParseRequestHeader([]byte("GET /x HTTP/1.1\r\nHost: a\r\n"))
	if err != nil || r != nil {
		t.Fatalf("incomplete header: r=%v err=%v", r, err)
	}
	r, err = ParseRequestHeader([]byte("GET /x HTTP/1.1\r\nHost: a\r\n\r\nBODYBYTES"))
	if err != nil || r == nil {
		t.Fatalf("complete header: r=%v err=%v", r, err)
	}
	if r.Path != "/x" || r.Header("Host") != "a" {
		t.Fatalf("parsed: %+v", r)
	}
}

func TestParseMalformed(t *testing.T) {
	cases := []string{
		"NOT-HTTP\r\n\r\n",
		"GET /x\r\n\r\n",
		"GET /x HTTP/1.1\r\nBadHeaderNoColon\r\n\r\n",
	}
	for _, c := range cases {
		p := &RequestParser{}
		if _, err := p.Feed([]byte(c)); err == nil {
			t.Errorf("no error for %q", c)
		}
	}
	// Bad content length.
	p := &RequestParser{}
	if _, err := p.Feed([]byte("GET /x HTTP/1.1\r\nContent-Length: nope\r\n\r\n")); err == nil {
		t.Error("no error for bad content-length")
	}
}

func TestHeaderTooLarge(t *testing.T) {
	p := &RequestParser{}
	junk := bytes.Repeat([]byte("A"), maxHeaderBytes+10)
	if _, err := p.Feed(junk); err != ErrTooLarge {
		t.Fatalf("err = %v, want ErrTooLarge", err)
	}
}

func TestResponseRoundTrip(t *testing.T) {
	resp := NewResponse(200, []byte("hello"))
	resp.SetHeader("X-Backend", "srv-1")
	wire := resp.Marshal()
	p := &ResponseParser{}
	got, err := p.Feed(wire)
	if err != nil || len(got) != 1 {
		t.Fatalf("parse: %v %v", got, err)
	}
	r := got[0]
	if r.StatusCode != 200 || r.Status != "OK" {
		t.Fatalf("status: %d %q", r.StatusCode, r.Status)
	}
	if string(r.Body) != "hello" {
		t.Fatalf("body: %q", r.Body)
	}
	if r.Header("x-backend") != "srv-1" {
		t.Fatalf("header: %q", r.Header("x-backend"))
	}
}

func TestResponseParserSplitBody(t *testing.T) {
	resp := NewResponse(200, bytes.Repeat([]byte("z"), 10000))
	wire := resp.Marshal()
	p := &ResponseParser{}
	half := len(wire) / 2
	got, err := p.Feed(wire[:half])
	if err != nil || len(got) != 0 {
		t.Fatalf("half feed: %v %v", got, err)
	}
	got, err = p.Feed(wire[half:])
	if err != nil || len(got) != 1 {
		t.Fatalf("full feed: %v %v", got, err)
	}
	if len(got[0].Body) != 10000 {
		t.Fatalf("body len %d", len(got[0].Body))
	}
}

func TestKeepAliveSemantics(t *testing.T) {
	r := NewRequest("/", "h")
	if !r.KeepAlive() {
		t.Error("HTTP/1.1 default should keep alive")
	}
	r.SetHeader("Connection", "close")
	if r.KeepAlive() {
		t.Error("Connection: close should not keep alive")
	}
	r10 := &Request{Method: "GET", Path: "/", Version: "HTTP/1.0", Headers: map[string]string{}}
	if r10.KeepAlive() {
		t.Error("HTTP/1.0 default should not keep alive")
	}
	r10.SetHeader("Connection", "keep-alive")
	if !r10.KeepAlive() {
		t.Error("HTTP/1.0 with keep-alive header should keep alive")
	}
}

func TestCanonicalHeaderNames(t *testing.T) {
	f := func(s string) bool {
		c := canonical(s)
		// Canonicalization must be idempotent.
		return canonical(c) == c
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
	if canonical("content-length") != "Content-Length" {
		t.Errorf("canonical = %q", canonical("content-length"))
	}
	if canonical("x--y") != "X--Y" {
		t.Errorf("canonical double dash = %q", canonical("x--y"))
	}
}

func TestMarshalPreservesArbitraryBody(t *testing.T) {
	f := func(body []byte) bool {
		resp := NewResponse(200, body)
		p := &ResponseParser{}
		got, err := p.Feed(resp.Marshal())
		if err != nil || len(got) != 1 {
			return false
		}
		return bytes.Equal(got[0].Body, body)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

// --- end-to-end over simulated TCP ---

type world struct {
	net    *netsim.Network
	client *Client
	server *Server
	srvHP  netsim.HostPort
}

func newWorld(seed int64, objects map[string][]byte) *world {
	n := netsim.New(seed)
	ch := netsim.NewHost(n, netsim.IPv4(100, 0, 0, 1))
	sh := netsim.NewHost(n, netsim.IPv4(10, 0, 0, 1))
	srv := NewServer(sh, 80, MapHandler(objects), DefaultServerConfig())
	return &world{
		net:    n,
		client: NewClient(ch, DefaultClientConfig()),
		server: srv,
		srvHP:  netsim.HostPort{IP: sh.IP(), Port: 80},
	}
}

func TestClientServerFetch(t *testing.T) {
	w := newWorld(1, map[string][]byte{"/obj": bytes.Repeat([]byte("d"), 10240)})
	var res *FetchResult
	w.client.Get(w.srvHP, "/obj", func(r *FetchResult) { res = r })
	w.net.RunUntilIdle(100000)
	if res == nil {
		t.Fatal("fetch never completed")
	}
	if res.Err != nil {
		t.Fatalf("fetch error: %v", res.Err)
	}
	if len(res.Resp.Body) != 10240 {
		t.Fatalf("body len = %d", len(res.Resp.Body))
	}
	// Expected latency: handshake 1 RTT (60ms) + request/response ≥1 RTT +
	// 5ms processing. 10KB at IW10 fits one window, so ~125ms total.
	if res.Elapsed() < 120*time.Millisecond || res.Elapsed() > 200*time.Millisecond {
		t.Fatalf("elapsed = %v, want ~125ms", res.Elapsed())
	}
	if w.server.Requests != 1 {
		t.Fatalf("server requests = %d", w.server.Requests)
	}
}

func TestClientFetch404(t *testing.T) {
	w := newWorld(2, map[string][]byte{})
	var res *FetchResult
	w.client.Get(w.srvHP, "/missing", func(r *FetchResult) { res = r })
	w.net.RunUntilIdle(100000)
	if res == nil || res.Err != nil {
		t.Fatalf("res = %+v", res)
	}
	if res.Resp.StatusCode != 404 {
		t.Fatalf("status = %d", res.Resp.StatusCode)
	}
	if !strings.Contains(string(res.Resp.Body), "/missing") {
		t.Fatalf("404 body should name the object: %q", res.Resp.Body)
	}
}

func TestClientTimeoutOnDeadServer(t *testing.T) {
	w := newWorld(3, map[string][]byte{"/x": []byte("y")})
	w.server.Host().Detach()
	cfg := DefaultClientConfig()
	cfg.Timeout = 5 * time.Second
	cl := NewClient(w.client.host, cfg)
	var res *FetchResult
	cl.Get(w.srvHP, "/x", func(r *FetchResult) { res = r })
	w.net.RunFor(10 * time.Second)
	if res == nil {
		t.Fatal("fetch never completed")
	}
	if res.Err != ErrHTTPTimeout || !res.TimedOut {
		t.Fatalf("err = %v timedout=%v", res.Err, res.TimedOut)
	}
	if res.Elapsed() != 5*time.Second {
		t.Fatalf("elapsed = %v, want the 5s timeout", res.Elapsed())
	}
}

func TestClientRetrySucceedsAfterServerRecovers(t *testing.T) {
	w := newWorld(4, map[string][]byte{"/x": []byte("y")})
	w.server.Host().Detach()
	// Reattach the server after 6s; first attempt times out at 5s, the
	// retry succeeds.
	w.net.Schedule(6*time.Second, func() { w.server.Host().Reattach() })
	cfg := DefaultClientConfig()
	cfg.Timeout = 5 * time.Second
	cfg.Retries = 1
	cl := NewClient(w.client.host, cfg)
	var res *FetchResult
	cl.Get(w.srvHP, "/x", func(r *FetchResult) { res = r })
	w.net.RunFor(30 * time.Second)
	if res == nil {
		t.Fatal("fetch never completed")
	}
	if res.Err != nil {
		t.Fatalf("retry should succeed: %v", res.Err)
	}
	if res.Attempts != 2 {
		t.Fatalf("attempts = %d, want 2", res.Attempts)
	}
	if !res.TimedOut {
		t.Fatal("first attempt should be recorded as a timeout")
	}
}

func TestKeepAliveServesMultipleRequests(t *testing.T) {
	n := netsim.New(5)
	ch := netsim.NewHost(n, netsim.IPv4(100, 0, 0, 1))
	sh := netsim.NewHost(n, netsim.IPv4(10, 0, 0, 1))
	srv := NewServer(sh, 80, MapHandler(map[string][]byte{
		"/1": []byte("one"), "/2": []byte("two"),
	}), DefaultServerConfig())
	_ = srv
	// Drive keep-alive at the TCP level directly.
	parser := &ResponseParser{}
	var bodies []string
	tcp.Dial(ch, netsim.HostPort{IP: sh.IP(), Port: 80}, tcp.Callbacks{
		OnEstablished: func(c *tcp.Conn) {
			c.Write(NewRequest("/1", "h").Marshal())
			c.Write(NewRequest("/2", "h").Marshal())
		},
		OnData: func(c *tcp.Conn, d []byte) {
			resps, err := parser.Feed(d)
			if err != nil {
				t.Errorf("parse: %v", err)
			}
			for _, r := range resps {
				bodies = append(bodies, string(r.Body))
			}
			if len(bodies) == 2 {
				c.Close()
			}
		},
	}, tcp.DefaultConfig())
	n.RunUntilIdle(100000)
	if len(bodies) != 2 || bodies[0] != "one" || bodies[1] != "two" {
		t.Fatalf("bodies = %v", bodies)
	}
	if srv.Requests != 2 {
		t.Fatalf("server requests = %d", srv.Requests)
	}
}

func TestBrowserLoadPage(t *testing.T) {
	objects := map[string][]byte{
		"/page.html": []byte("<html>"),
		"/a.css":     bytes.Repeat([]byte("c"), 5000),
		"/b.jpg":     bytes.Repeat([]byte("j"), 20000),
	}
	w := newWorld(6, objects)
	b := NewBrowser(w.client)
	var res *PageResult
	b.LoadPage(w.srvHP, "/page.html", []string{"/a.css", "/b.jpg"}, func(r *PageResult) { res = r })
	w.net.RunUntilIdle(1000000)
	if res == nil {
		t.Fatal("page never completed")
	}
	if res.Objects != 3 || res.Failed != 0 || res.Broken {
		t.Fatalf("page result: %+v", res)
	}
	if res.Elapsed() <= 0 {
		t.Fatal("elapsed not measured")
	}
}

func TestServerConnectionCountTracksCloses(t *testing.T) {
	w := newWorld(7, map[string][]byte{"/x": []byte("y")})
	done := 0
	for i := 0; i < 5; i++ {
		w.client.Get(w.srvHP, "/x", func(r *FetchResult) { done++ })
	}
	w.net.RunUntilIdle(1000000)
	if done != 5 {
		t.Fatalf("done = %d", done)
	}
	if w.server.ActiveConns != 0 {
		t.Fatalf("ActiveConns = %d after all closes", w.server.ActiveConns)
	}
}
