package httpsim

import (
	"fmt"
	"time"

	"repro/internal/metrics"
	"repro/internal/netsim"
	"repro/internal/tcp"
)

// Handler produces a response for a request. It runs inside the event
// loop and must not block; the server applies ProcessingDelay on its
// behalf.
type Handler func(req *Request) *Response

// ServerConfig tunes an origin server.
type ServerConfig struct {
	// ProcessingDelay is charged (in virtual time) between receiving a
	// complete request and emitting the response, modelling application
	// work. The paper's baseline latency (133 ms end to end) is dominated
	// by Internet RTT plus this.
	ProcessingDelay time.Duration
	// CPUPerRequest is the virtual CPU cost charged per request served.
	CPUPerRequest time.Duration
	// TCP is the endpoint configuration.
	TCP tcp.Config
}

// DefaultServerConfig matches the testbed's dual-core Apache backends.
func DefaultServerConfig() ServerConfig {
	return ServerConfig{
		ProcessingDelay: 5 * time.Millisecond,
		CPUPerRequest:   100 * time.Microsecond,
		TCP:             tcp.DefaultConfig(),
	}
}

// Server is a simulated origin (backend) server: it accepts TCP
// connections on a port, parses requests, and serves them through a
// Handler, honouring keep-alive.
type Server struct {
	host    *netsim.Host
	cfg     ServerConfig
	handler Handler
	lis     *tcp.Listener

	CPU *metrics.CPUMeter

	// Requests counts requests served.
	Requests int
	// ActiveConns tracks currently open connections.
	ActiveConns int

	conns []*tcp.Conn
}

// NewServer starts a server on host:port with the given handler.
func NewServer(host *netsim.Host, port uint16, handler Handler, cfg ServerConfig) *Server {
	s := &Server{host: host, cfg: cfg, handler: handler, CPU: metrics.NewCPUMeter(2)}
	s.lis = tcp.Listen(host, port, s.accept, cfg.TCP)
	return s
}

// Close stops accepting connections.
func (s *Server) Close() { s.lis.Close() }

// Host returns the server's host.
func (s *Server) Host() *netsim.Host { return s.host }

// Conns returns every connection the server has accepted, open or
// closed, in accept order — tests inspect their per-conn TCP stats
// (retransmits, elided ACKs, GSO trains).
func (s *Server) Conns() []*tcp.Conn { return s.conns }

func (s *Server) accept(c *tcp.Conn) tcp.Callbacks {
	parser := &RequestParser{}
	s.conns = append(s.conns, c)
	s.ActiveConns++
	closeConn := func() {
		if s.ActiveConns > 0 {
			s.ActiveConns--
		}
	}
	return tcp.Callbacks{
		OnData: func(c *tcp.Conn, d []byte) {
			reqs, err := parser.Feed(d)
			if err != nil {
				c.Write(NewResponse(400, []byte("bad request")).Marshal())
				c.Close()
				return
			}
			for _, req := range reqs {
				s.serve(c, req)
			}
		},
		OnPeerClose: func(c *tcp.Conn) { c.Close() },
		OnClose:     func(c *tcp.Conn) { closeConn() },
		OnFail:      func(c *tcp.Conn, err error) { closeConn() },
	}
}

func (s *Server) serve(c *tcp.Conn, req *Request) {
	s.Requests++
	now := s.host.Network().Now()
	s.CPU.Charge(now, s.cfg.CPUPerRequest)
	keepAlive := req.KeepAlive()
	s.host.Network().Schedule(s.cfg.ProcessingDelay, func() {
		resp := s.handler(req)
		if resp == nil {
			resp = NewResponse(404, []byte("not found"))
		}
		if !keepAlive {
			resp.SetHeader("Connection", "close")
		}
		c.Write(resp.Marshal())
		if !keepAlive {
			c.Close()
		}
	})
}

// MapHandler serves objects from a path→body map, the shape used by the
// workload corpus.
func MapHandler(objects map[string][]byte) Handler {
	return func(req *Request) *Response {
		if body, ok := objects[req.Path]; ok {
			return NewResponse(200, body)
		}
		return NewResponse(404, []byte(fmt.Sprintf("no such object: %s", req.Path)))
	}
}
