package httpsim

import (
	"bytes"
	"errors"
	"strconv"
	"strings"
)

// Parse errors.
var (
	ErrMalformed = errors.New("httpsim: malformed message")
	ErrTooLarge  = errors.New("httpsim: header exceeds limit")
)

// maxHeaderBytes bounds header accumulation so a garbage stream cannot
// grow a parser without limit.
const maxHeaderBytes = 64 * 1024

// RequestParser incrementally parses a stream of HTTP requests. Feed
// returns each complete request as it is framed; partial input is
// buffered. It supports back-to-back (keep-alive and pipelined) requests.
type RequestParser struct {
	buf bytes.Buffer
}

// Feed appends data and returns any requests completed by it.
func (p *RequestParser) Feed(data []byte) ([]*Request, error) {
	p.buf.Write(data)
	var out []*Request
	for {
		req, consumed, err := parseRequest(p.buf.Bytes())
		if err != nil {
			return out, err
		}
		if req == nil {
			if p.buf.Len() > maxHeaderBytes {
				return out, ErrTooLarge
			}
			return out, nil
		}
		p.buf.Next(consumed)
		out = append(out, req)
	}
}

// Buffered returns the number of unconsumed bytes held by the parser.
func (p *RequestParser) Buffered() int { return p.buf.Len() }

// HeaderComplete reports whether the buffered bytes already contain a full
// header block (CRLFCRLF). Yoda uses this to know when it can run rule
// matching even before any body arrives.
func (p *RequestParser) HeaderComplete() bool {
	return bytes.Contains(p.buf.Bytes(), []byte("\r\n\r\n"))
}

// ParseRequestHeader parses just the header block out of raw bytes,
// without requiring the body. It returns nil if the header is incomplete.
// This is the entry point used by the Yoda instance's connection phase.
func ParseRequestHeader(raw []byte) (*Request, error) {
	idx := bytes.Index(raw, []byte("\r\n\r\n"))
	if idx < 0 {
		if len(raw) > maxHeaderBytes {
			return nil, ErrTooLarge
		}
		return nil, nil
	}
	return parseRequestHead(raw[:idx])
}

// parseRequest frames one full request (header + declared body) from buf.
// It returns (nil, 0, nil) when more data is needed.
func parseRequest(buf []byte) (*Request, int, error) {
	idx := bytes.Index(buf, []byte("\r\n\r\n"))
	if idx < 0 {
		return nil, 0, nil
	}
	req, err := parseRequestHead(buf[:idx])
	if err != nil {
		return nil, 0, err
	}
	bodyLen := 0
	if cl := req.Header("Content-Length"); cl != "" {
		n, err := strconv.Atoi(cl)
		if err != nil || n < 0 {
			return nil, 0, ErrMalformed
		}
		bodyLen = n
	}
	total := idx + 4 + bodyLen
	if len(buf) < total {
		return nil, 0, nil
	}
	if bodyLen > 0 {
		req.Body = append([]byte(nil), buf[idx+4:total]...)
	}
	return req, total, nil
}

func parseRequestHead(head []byte) (*Request, error) {
	lines := strings.Split(string(head), "\r\n")
	if len(lines) == 0 {
		return nil, ErrMalformed
	}
	parts := strings.SplitN(lines[0], " ", 3)
	if len(parts) != 3 || !strings.HasPrefix(parts[2], "HTTP/") {
		return nil, ErrMalformed
	}
	req := &Request{
		Method:  parts[0],
		Path:    parts[1],
		Version: parts[2],
		Headers: make(map[string]string, len(lines)-1),
	}
	if err := parseHeaderLines(lines[1:], req.Headers); err != nil {
		return nil, err
	}
	return req, nil
}

// ResponseParser incrementally parses a stream of HTTP responses.
type ResponseParser struct {
	buf bytes.Buffer
}

// Feed appends data and returns any responses completed by it.
func (p *ResponseParser) Feed(data []byte) ([]*Response, error) {
	p.buf.Write(data)
	var out []*Response
	for {
		resp, consumed, err := parseResponse(p.buf.Bytes())
		if err != nil {
			return out, err
		}
		if resp == nil {
			if p.buf.Len() > maxHeaderBytes && !bytes.Contains(p.buf.Bytes(), []byte("\r\n\r\n")) {
				return out, ErrTooLarge
			}
			return out, nil
		}
		p.buf.Next(consumed)
		out = append(out, resp)
	}
}

// Buffered returns the number of unconsumed bytes held by the parser.
func (p *ResponseParser) Buffered() int { return p.buf.Len() }

func parseResponse(buf []byte) (*Response, int, error) {
	idx := bytes.Index(buf, []byte("\r\n\r\n"))
	if idx < 0 {
		return nil, 0, nil
	}
	lines := strings.Split(string(buf[:idx]), "\r\n")
	parts := strings.SplitN(lines[0], " ", 3)
	if len(parts) < 2 || !strings.HasPrefix(parts[0], "HTTP/") {
		return nil, 0, ErrMalformed
	}
	code, err := strconv.Atoi(parts[1])
	if err != nil {
		return nil, 0, ErrMalformed
	}
	resp := &Response{
		Version:    parts[0],
		StatusCode: code,
		Headers:    make(map[string]string, len(lines)-1),
	}
	if len(parts) == 3 {
		resp.Status = parts[2]
	}
	if err := parseHeaderLines(lines[1:], resp.Headers); err != nil {
		return nil, 0, err
	}
	bodyLen := 0
	if cl := resp.Header("Content-Length"); cl != "" {
		n, err := strconv.Atoi(cl)
		if err != nil || n < 0 {
			return nil, 0, ErrMalformed
		}
		bodyLen = n
	}
	total := idx + 4 + bodyLen
	if len(buf) < total {
		return nil, 0, nil
	}
	if bodyLen > 0 {
		resp.Body = append([]byte(nil), buf[idx+4:total]...)
	}
	return resp, total, nil
}

func parseHeaderLines(lines []string, into map[string]string) error {
	for _, line := range lines {
		if line == "" {
			continue
		}
		kv := strings.SplitN(line, ":", 2)
		if len(kv) != 2 {
			return ErrMalformed
		}
		into[canonical(strings.TrimSpace(kv[0]))] = strings.TrimSpace(kv[1])
	}
	return nil
}
