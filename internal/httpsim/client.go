package httpsim

import (
	"errors"
	"time"

	"repro/internal/netsim"
	"repro/internal/tcp"
)

// Client-side fetch outcomes.
var (
	ErrHTTPTimeout = errors.New("httpsim: request timed out")
	ErrConnReset   = errors.New("httpsim: connection reset")
	ErrConnFailed  = errors.New("httpsim: connection failed")
)

// FetchResult reports the outcome of one object fetch.
type FetchResult struct {
	Resp     *Response
	Err      error
	Started  time.Duration // virtual time the fetch began (first attempt)
	Finished time.Duration // virtual time the fetch completed or failed
	Attempts int           // 1 = no retry
	// TimedOut is true when the HTTP timeout elapsed on any attempt.
	TimedOut bool
	// Conn is the TCP connection of the last attempt, retained so tests
	// and experiments can read per-conn stats (retransmits, elided ACKs)
	// after the fetch resolves.
	Conn *tcp.Conn
}

// Elapsed returns the end-to-end fetch duration.
func (r *FetchResult) Elapsed() time.Duration { return r.Finished - r.Started }

// ClientConfig tunes the browser-style client.
type ClientConfig struct {
	// Timeout is the HTTP timeout per attempt, e.g. 30s in the failure
	// experiment (§7.2) or 300s for the Firefox default (Table 1).
	Timeout time.Duration
	// Retries is how many additional attempts a timeout or reset triggers
	// (browser retry semantics from §7.2: 0 for noretry, 1 for retry).
	Retries int
	TCP     tcp.Config
}

// DefaultClientConfig uses the §7.2 settings (30 s timeout, no retry).
func DefaultClientConfig() ClientConfig {
	return ClientConfig{Timeout: 30 * time.Second, Retries: 0, TCP: tcp.DefaultConfig()}
}

// Client issues HTTP requests from a host, emulating browser behaviour:
// per-request timeout, optional retry on timeout or reset, one request
// per connection (HTTP/1.0-style; the Yoda keep-alive path is exercised
// through the KeepAliveClient below).
type Client struct {
	host *netsim.Host
	cfg  ClientConfig
}

// NewClient creates a client on the given host.
func NewClient(host *netsim.Host, cfg ClientConfig) *Client {
	return &Client{host: host, cfg: cfg}
}

// Fetch requests path from addr and invokes done with the outcome. It
// drives the full TCP + HTTP exchange in virtual time.
func (cl *Client) Fetch(addr netsim.HostPort, req *Request, done func(*FetchResult)) {
	res := &FetchResult{Started: cl.host.Network().Now()}
	cl.attempt(addr, req, res, cl.cfg.Retries, done)
}

// Get is a convenience wrapper fetching a path with a default request.
func (cl *Client) Get(addr netsim.HostPort, path string, done func(*FetchResult)) {
	cl.Fetch(addr, NewRequest(path, addr.IP.String()), done)
}

func (cl *Client) attempt(addr netsim.HostPort, req *Request, res *FetchResult, retriesLeft int, done func(*FetchResult)) {
	res.Attempts++
	net := cl.host.Network()
	parser := &ResponseParser{}
	finished := false

	var conn *tcp.Conn
	var timeout netsim.Timer

	finish := func(resp *Response, err error) {
		if finished {
			return
		}
		finished = true
		timeout.Stop()
		if err != nil && retriesLeft > 0 {
			cl.attempt(addr, req, res, retriesLeft-1, done)
			return
		}
		res.Resp = resp
		res.Err = err
		res.Finished = net.Now()
		done(res)
	}

	timeout = net.Schedule(cl.cfg.Timeout, func() {
		res.TimedOut = true
		if conn != nil {
			conn.Abort()
		}
		finish(nil, ErrHTTPTimeout)
	})

	r := *req // shallow copy so Connection header tweaks don't leak
	r.Headers = cloneHeaders(req.Headers)
	r.Headers["Connection"] = "close"

	conn = tcp.Dial(cl.host, addr, tcp.Callbacks{
		OnEstablished: func(c *tcp.Conn) {
			c.Write(r.Marshal())
		},
		OnData: func(c *tcp.Conn, d []byte) {
			resps, err := parser.Feed(d)
			if err != nil {
				c.Abort()
				finish(nil, err)
				return
			}
			if len(resps) > 0 {
				c.Close()
				finish(resps[0], nil)
			}
		},
		OnPeerClose: func(c *tcp.Conn) { c.Close() },
		OnFail: func(c *tcp.Conn, err error) {
			if errors.Is(err, tcp.ErrReset) {
				finish(nil, ErrConnReset)
			} else {
				finish(nil, ErrConnFailed)
			}
		},
	}, cl.cfg.TCP)
	res.Conn = conn
}

func cloneHeaders(h map[string]string) map[string]string {
	out := make(map[string]string, len(h)+1)
	for k, v := range h {
		out[k] = v
	}
	return out
}

// PageResult reports the outcome of a whole page load (HTML plus
// embedded objects), the unit Table 1 and Figure 12 measure.
type PageResult struct {
	Started   time.Duration
	Finished  time.Duration
	Objects   int
	Failed    int // objects that ultimately failed (timeout/reset)
	TimedOut  int // objects that hit the HTTP timeout on some attempt
	Broken    bool
	FetchErrs []error
}

// Elapsed returns the page-load time.
func (p *PageResult) Elapsed() time.Duration { return p.Finished - p.Started }

// Browser fetches pages: the HTML first, then every embedded object
// sequentially (matching the §7.2 client processes, which issue one
// request at a time and wait for completion or timeout).
type Browser struct {
	Client *Client
}

// NewBrowser wraps a client.
func NewBrowser(cl *Client) *Browser { return &Browser{Client: cl} }

// LoadPage fetches htmlPath and then each object path, invoking done when
// the page completes. Object lists come from the workload corpus.
func (b *Browser) LoadPage(addr netsim.HostPort, htmlPath string, objects []string, done func(*PageResult)) {
	res := &PageResult{Started: b.Client.host.Network().Now()}
	b.Client.Get(addr, htmlPath, func(fr *FetchResult) {
		b.recordFetch(res, fr)
		b.loadObjects(addr, objects, 0, res, done)
	})
}

func (b *Browser) loadObjects(addr netsim.HostPort, objects []string, i int, res *PageResult, done func(*PageResult)) {
	if i >= len(objects) {
		res.Finished = b.Client.host.Network().Now()
		done(res)
		return
	}
	b.Client.Get(addr, objects[i], func(fr *FetchResult) {
		b.recordFetch(res, fr)
		b.loadObjects(addr, objects, i+1, res, done)
	})
}

func (b *Browser) recordFetch(res *PageResult, fr *FetchResult) {
	res.Objects++
	if fr.TimedOut {
		res.TimedOut++
	}
	if fr.Err != nil {
		res.Failed++
		res.Broken = true
		res.FetchErrs = append(res.FetchErrs, fr.Err)
	}
}
