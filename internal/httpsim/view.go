package httpsim

import "strings"

// Memoized request views: the rule engine may inspect the same request
// many times during one selection (every cookie rule re-reads the Cookie
// header; every host rule re-reads Host). The original implementation
// re-split the Cookie header on each call, allocating a slice per lookup
// on the per-connection critical path. The view below parses the header
// once into name/value pairs that are sub-slices of the header string —
// no bytes are copied — and reuses them for every subsequent lookup on
// the same request.
//
// Requests are owned by a single flow on a single event loop, so the lazy
// memoization needs no locking; a Request must not be shared across
// goroutines while Cookie is being called.

// cookiePair is one name=value pair from the Cookie header. Both strings
// alias the raw header value.
type cookiePair struct{ name, value string }

// cookieView caches the parsed Cookie header. src records the raw value
// the pairs were built from so a SetHeader("Cookie", ...) between lookups
// invalidates the cache.
type cookieView struct {
	src    string
	parsed bool
	pairs  []cookiePair
}

// parse rebuilds the pair list from raw. The pair slice is reused across
// re-parses; only its first growth allocates.
func (cv *cookieView) parse(raw string) {
	cv.src, cv.parsed = raw, true
	cv.pairs = cv.pairs[:0]
	for start := 0; start <= len(raw); {
		var part string
		if end := strings.IndexByte(raw[start:], ';'); end >= 0 {
			part = raw[start : start+end]
			start += end + 1
		} else {
			part = raw[start:]
			start = len(raw) + 1
		}
		part = strings.TrimSpace(part)
		if i := strings.IndexByte(part, '='); i >= 0 {
			cv.pairs = append(cv.pairs, cookiePair{part[:i], part[i+1:]})
		}
	}
}

// lookup returns the value of the first pair with the given name, or "".
func (cv *cookieView) lookup(name string) string {
	for _, p := range cv.pairs {
		if p.name == name {
			return p.value
		}
	}
	return ""
}
