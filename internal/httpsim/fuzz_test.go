package httpsim

import (
	"bytes"
	"testing"
)

// FuzzRequestParser feeds arbitrary bytes in arbitrary chunkings to the
// request parser: it must never panic, and whenever it accepts a
// well-formed request, re-marshalling and re-parsing must agree.
func FuzzRequestParser(f *testing.F) {
	f.Add([]byte("GET / HTTP/1.1\r\nHost: a\r\n\r\n"), 3)
	f.Add([]byte("POST /u HTTP/1.1\r\nContent-Length: 4\r\n\r\nBODY"), 1)
	f.Add([]byte("GET /x HTTP/1.0\r\n\r\nGET /y HTTP/1.0\r\n\r\n"), 5)
	f.Add([]byte("garbage\r\n\r\n"), 2)
	f.Add([]byte("GET / HTTP/1.1\r\nContent-Length: -5\r\n\r\n"), 1)
	f.Fuzz(func(t *testing.T, data []byte, chunk int) {
		if chunk <= 0 {
			chunk = 1
		}
		p := &RequestParser{}
		var whole []*Request
		failed := false
		for off := 0; off < len(data); off += chunk {
			end := off + chunk
			if end > len(data) {
				end = len(data)
			}
			reqs, err := p.Feed(data[off:end])
			whole = append(whole, reqs...)
			if err != nil {
				failed = true
				break
			}
		}
		if failed {
			return
		}
		// Parsed requests must survive a marshal/parse round trip.
		for _, r := range whole {
			p2 := &RequestParser{}
			again, err := p2.Feed(r.Marshal())
			if err != nil || len(again) != 1 {
				t.Fatalf("re-parse of accepted request failed: %v (%d)", err, len(again))
			}
			if again[0].Method != r.Method || again[0].Path != r.Path || !bytes.Equal(again[0].Body, r.Body) {
				t.Fatalf("round trip changed request: %+v vs %+v", again[0], r)
			}
		}
	})
}

// FuzzResponseParser mirrors FuzzRequestParser for the response side.
func FuzzResponseParser(f *testing.F) {
	f.Add([]byte("HTTP/1.1 200 OK\r\nContent-Length: 5\r\n\r\nhello"), 4)
	f.Add([]byte("HTTP/1.1 404 Not Found\r\n\r\n"), 1)
	f.Add([]byte("NOPE\r\n\r\n"), 2)
	f.Fuzz(func(t *testing.T, data []byte, chunk int) {
		if chunk <= 0 {
			chunk = 1
		}
		p := &ResponseParser{}
		for off := 0; off < len(data); off += chunk {
			end := off + chunk
			if end > len(data) {
				end = len(data)
			}
			if _, err := p.Feed(data[off:end]); err != nil {
				return
			}
		}
	})
}

// FuzzParseRequestHeader must never panic or claim completion on
// truncated headers.
func FuzzParseRequestHeader(f *testing.F) {
	f.Add([]byte("GET /p HTTP/1.1\r\nHost: h\r\n\r\ntail"))
	f.Add([]byte("GET /p HTTP/1.1\r\nHost"))
	f.Fuzz(func(t *testing.T, data []byte) {
		req, err := ParseRequestHeader(data)
		if err == nil && req != nil {
			if !bytes.Contains(data, []byte("\r\n\r\n")) {
				t.Fatal("claimed completion without header terminator")
			}
		}
	})
}
