package core

import "repro/internal/netsim"

// The flow lifecycle as an explicit state machine. Each state owns the
// handling of packets arriving from the client side and from the server
// side; transitions happen only through (*Instance).setState, and every
// transition that makes new state recoverable is gated by a write
// barrier (barrier.go) so the TCPStore record lands before the packet
// that created the state is acknowledged (§4.1).
//
//	        SYN                    backend selected          storage-b barrier
//	client ────▶ Conn ───────────────▶ Dialing ──────────────▶ Tunnel
//	              │                       │                       │
//	              │ TLS hello             │ SYN-ACK + barrier     └▶ KeepAliveTunnel
//	              ▼ (sub-state: f.tls,    ▼                          (HTTP/1.1 inspected
//	        key persisted via barrier   reject on                     tunnel; kaState
//	        before the ServerHello)     exhaustion/refusal            sub-states: switching,
//	                                                                  committing)
//
// The TLS handshake is a guarded sub-state of Conn (f.tls plus
// tlsAdvance) rather than a top-level state: it shares Conn's segment
// assembly, retransmission and FIN handling wholesale and differs only
// in how assembled bytes are interpreted. Likewise the keep-alive
// backend switch is a sub-state of KeepAliveTunnel (kaState.switching /
// kaState.committing) because the client-facing tunnel keeps running
// while the server side redials.

// flowState is one state of the per-flow machine.
type flowState interface {
	name() string
	// clientPacket handles a packet from the client side of the flow.
	clientPacket(in *Instance, f *flow, pkt *netsim.Packet)
	// serverPacket handles a packet from the backend side of the flow.
	serverPacket(in *Instance, f *flow, pkt *netsim.Packet)
}

// The state singletons. Comparisons use interface equality (the states
// are stateless empty structs; per-flow data lives on flow/kaState).
var (
	stateConn     flowState = connState{}
	stateDialing  flowState = dialingState{}
	stateTunnel   flowState = tunnelState{}
	stateKATunnel flowState = kaTunnelState{}
)

// setState transitions a flow. All transitions funnel through here so
// the machine has a single audit point.
func (in *Instance) setState(f *flow, s flowState) { f.state = s }

// connState: client handshake done or in progress; no backend yet.
// Storage-a (and the TLS session key, when terminating) is persisted
// from this state.
type connState struct{}

func (connState) name() string { return "conn" }
func (connState) clientPacket(in *Instance, f *flow, pkt *netsim.Packet) {
	in.connPhaseClientPacket(f, pkt)
}
func (connState) serverPacket(in *Instance, f *flow, pkt *netsim.Packet) {
	// No backend connection exists yet; a server packet here is stale.
}

// dialingState: backend SYN sent, storage-b not yet confirmed. Client
// data keeps buffering; the server side completes the handshake.
type dialingState struct{}

func (dialingState) name() string { return "dialing" }
func (dialingState) clientPacket(in *Instance, f *flow, pkt *netsim.Packet) {
	in.connPhaseClientPacket(f, pkt)
}
func (dialingState) serverPacket(in *Instance, f *flow, pkt *netsim.Packet) {
	in.serverHandshakePacket(f, pkt)
}

// tunnelState: pure sequence-translating tunnel between client and
// backend.
type tunnelState struct{}

func (tunnelState) name() string { return "tunnel" }
func (tunnelState) clientPacket(in *Instance, f *flow, pkt *netsim.Packet) {
	in.tunnelFromClient(f, pkt)
}
func (tunnelState) serverPacket(in *Instance, f *flow, pkt *netsim.Packet) {
	in.tunnelFromServer(f, pkt)
}

// kaTunnelState: inspected HTTP/1.1 keep-alive tunnel — client payloads
// are framed into requests that may re-select backends (§5.2).
type kaTunnelState struct{}

func (kaTunnelState) name() string { return "ka-tunnel" }
func (kaTunnelState) clientPacket(in *Instance, f *flow, pkt *netsim.Packet) {
	if pkt.Flags.Has(netsim.FlagRST) {
		in.abortToServer(f, pkt)
		return
	}
	in.kaFromClient(f, pkt)
}
func (kaTunnelState) serverPacket(in *Instance, f *flow, pkt *netsim.Packet) {
	in.kaFromServer(f, pkt)
}
