package core

import (
	"math/rand"
	"time"

	"repro/internal/l4lb"
	"repro/internal/metrics"
	"repro/internal/netsim"
	"repro/internal/rules"
	"repro/internal/securesim"
	"repro/internal/stateless"
	"repro/internal/tcpstore"
)

// Config tunes a Yoda instance.
type Config struct {
	// Cores is the VM's core count (testbed: 8-core VMs).
	Cores int
	// CPUConnPhase is the virtual CPU cost of handling one new connection
	// (handshake crafting, header parsing, TCPStore marshalling). The
	// defaults are calibrated so an instance saturates near 12K req/s for
	// small requests, as measured in §7.1.
	CPUConnPhase time.Duration
	// CPUPerPacket is the virtual CPU cost of rewriting one tunneled
	// packet (the user/kernel copy the paper blames for Yoda's 2× CPU).
	CPUPerPacket time.Duration
	// LookupBase and LookupPerRule model the rule-scan latency of
	// Figure 6: lookup = LookupBase + LookupPerRule × rulesScanned. With
	// the defaults, 1K rules ≈ 4.1 ms, 2K ≈ 5 ms (the paper's Ry target)
	// and 10K ≈ 12.3 ms ≈ 3× the 1K latency.
	LookupBase    time.Duration
	LookupPerRule time.Duration
	// SNATBase/SNATCount delimit this instance's slice of the VIP port
	// space for backend connections, so instances never collide.
	SNATBase  uint16
	SNATCount uint16
	// FlowIdleTimeout garbage-collects flows that stopped moving packets
	// (broken clients, lost FINs).
	FlowIdleTimeout time.Duration
	// FinLinger is how long a fully-closed flow's state lingers before
	// cleanup (covers retransmitted FINs).
	FinLinger time.Duration
	// StrictPersist makes the write barrier take its failure path when a
	// record reached zero replicas, instead of the default
	// degrade-and-proceed (see barrier.go). Off by default: the paper
	// favours availability over recoverability when the store is down.
	StrictPersist bool
	// PendingPerTuple / PendingTotal bound the recovery queues holding
	// packets while a TCPStore lookup is in flight; PendingExpiry drops a
	// queue whose lookup never resolves. Overflow and expiry drops count
	// as LookupMisses — the sender's retransmission retries.
	PendingPerTuple int
	PendingTotal    int
	PendingExpiry   time.Duration
	// RelayMSS caps the segments forwardClientBytes crafts when splicing
	// buffered client bytes toward the backend. Zero means 1460 (one
	// MSS, the historical behavior). Tier B scale runs raise it to a
	// GSO-style multiple of the MSS so an assembled request body crosses
	// the tunnel in one packet instead of one per MSS; the l4lb SNAT
	// path relays whatever size it is given zero-copy.
	RelayMSS int
	// Hybrid selects the hybrid stateful/stateless recovery mode: flows
	// whose state the shared derivation table reproduces exactly skip
	// their storage writes, and recovery tries derivation before (or
	// instead of) a store read — see hybrid.go. Nil (the default) keeps
	// the paper-faithful persist-before-ACK path for every flow.
	Hybrid *stateless.Table
}

// DefaultConfig returns the calibrated instance configuration.
func DefaultConfig() Config {
	return Config{
		Cores:           8,
		CPUConnPhase:    410 * time.Microsecond,
		CPUPerPacket:    30 * time.Microsecond,
		LookupBase:      3200 * time.Microsecond,
		LookupPerRule:   910 * time.Nanosecond,
		SNATBase:        20000,
		SNATCount:       2000,
		FlowIdleTimeout: 2 * time.Minute,
		FinLinger:       time.Second,
		PendingPerTuple: 16,
		PendingTotal:    1024,
		PendingExpiry:   2 * time.Second,
	}
}

// VIPStats aggregates per-VIP counters an instance reports to the
// controller.
type VIPStats struct {
	Packets     uint64
	NewFlows    uint64
	PayloadByte uint64
	// SNATExhausted counts dials rejected because the instance's SNAT
	// port slice had no free port (the flow gets a 503, never a silently
	// spliced port).
	SNATExhausted uint64
}

// Instance is one Yoda L7 load-balancer instance.
type Instance struct {
	host *netsim.Host
	net  *netsim.Network
	// rng is the owning shard's deterministic RNG, cached at construction
	// so rule-engine draws stay shard-local under the sharded dataplane.
	rng   *rand.Rand
	l4    *l4lb.LB
	store *tcpstore.Store
	cfg   Config

	engines   map[netsim.IP]*rules.Engine       // per-VIP rule tables
	info      rules.BackendInfo                 // backend health/load view
	tlsIdents map[netsim.IP]*securesim.Identity // per-VIP SSL termination identities

	flows        flowIndex                          // tuple → flow, compact (see flowindex.go)
	pending      map[netsim.FourTuple]*pendingQueue // packets awaiting a TCPStore lookup
	pendingTotal int                                // packets across all pending queues
	snatNext     uint16
	snatInUse    map[uint16]bool
	dead         bool

	CPU *metrics.CPUMeter

	// StorageLat records the latency of every TCPStore write performed
	// during connection establishment (storage-a and storage-b); Figure 9
	// reports its median as the "Storage" component.
	StorageLat *metrics.DurationHistogram
	// ConnLat records SYN arrival → tunnel entry per flow, the
	// "Connection" component of Figure 9.
	ConnLat *metrics.DurationHistogram

	// Barrier counts write-barrier resolutions (see barrier.go); the
	// controller aggregates it cluster-wide to watch persistence health.
	Barrier BarrierStats

	// Counters.
	Stats map[netsim.IP]*VIPStats
	// statsCache is a one-entry statsFor cache: the fast path charges
	// the same VIP for every packet of a flow, so the map probe repeats
	// per packet. Invalidated when ReadStats swaps the map.
	statsVIP     netsim.IP
	statsCache   *VIPStats
	Recovered    uint64 // flows resurrected from TCPStore
	LookupMisses uint64 // orphan packets with no recoverable state, or dropped while queued
	Reselections uint64 // HTTP/1.1 backend switches
	// DerivedRecoveries counts flows rebuilt by stateless derivation
	// (hybrid mode) — no store record was read for them.
	DerivedRecoveries uint64
	// SuppressedOrphans counts recovery queues dropped quietly in hybrid
	// mode — no RST sent — because the miss is expected to resolve on the
	// sender's retransmission (a backend knock racing the client-side
	// repair write, or a payloadless client probe).
	SuppressedOrphans uint64
	// SNATQuarantined counts SNAT ports left reserved by flows whose state
	// migrated to another instance (see ReleaseVIPFlows); they return to
	// the pool only when the instance restarts.
	SNATQuarantined uint64
	// FlowsClosed counts flows this instance tore down (any reason), the
	// denominator of EventsPerFlow.
	FlowsClosed uint64

	// baseExecuted snapshots the shard event-loop counter at
	// construction, so EventsPerFlow charges only events that ran during
	// this instance's lifetime.
	baseExecuted uint64

	// Write-path scratch, reused across barrier writes and key renders.
	// Safe because the instance runs on the single-threaded event loop and
	// the store consumes keys and values synchronously (tcpstore.Entry is
	// documented as not retained after SetMulti returns).
	keyScratch     []byte
	recScratch     []byte
	entScratch     [2]tcpstore.Entry
	recRecord      Record
	recTLS         TLSState
	freeBarrierOps []*barrierOp
	candScratch    []netsim.IP // hybrid dead-owner candidate scratch
}

// NewInstance creates a Yoda instance on host, using the given L4 LB for
// SNAT and the given TCPStore client for state decoupling. The instance
// installs itself as the host's default packet handler.
func NewInstance(host *netsim.Host, lb *l4lb.LB, store *tcpstore.Store, cfg Config) *Instance {
	inst := &Instance{
		host:       host,
		net:        host.Network(),
		rng:        host.Network().Rand(),
		l4:         lb,
		store:      store,
		cfg:        cfg,
		engines:    make(map[netsim.IP]*rules.Engine),
		tlsIdents:  make(map[netsim.IP]*securesim.Identity),
		pending:    make(map[netsim.FourTuple]*pendingQueue),
		snatNext:   cfg.SNATBase,
		snatInUse:  make(map[uint16]bool),
		CPU:        metrics.NewCPUMeter(cfg.Cores),
		StorageLat: metrics.NewDurationHistogram(),
		ConnLat:    metrics.NewDurationHistogram(),
		Stats:      make(map[netsim.IP]*VIPStats),
	}
	inst.flows.init()
	inst.baseExecuted = inst.net.Executed()
	host.Default = inst
	return inst
}

// EventsPerFlow reports shard event-loop events executed per flow this
// instance completed — the dataplane-efficiency headline the Tier A/B
// coalescing work drives down (see DESIGN.md §14). Events are counted
// on the instance's shard from its construction, so co-located clients
// and backends are included: the number is comparable between runs of
// the same topology, not across topologies. Zero until a flow closes.
func (in *Instance) EventsPerFlow() float64 {
	if in.FlowsClosed == 0 {
		return 0
	}
	return float64(in.net.Executed()-in.baseExecuted) / float64(in.FlowsClosed)
}

// Host returns the instance's host.
func (in *Instance) Host() *netsim.Host { return in.host }

// IP returns the instance's address.
func (in *Instance) IP() netsim.IP { return in.host.IP() }

// Store returns the instance's TCPStore client.
func (in *Instance) Store() *tcpstore.Store { return in.store }

// InstallRules installs (or replaces) the rule table for a VIP. Existing
// flows are unaffected: policies apply to new connections only (§5.2).
// Invalid tables (see rules.ValidateRules) are rejected, leaving any
// previously installed table serving.
func (in *Instance) InstallRules(vip netsim.IP, rs []rules.Rule) error {
	if e, ok := in.engines[vip]; ok {
		return e.Update(rs)
	}
	if err := rules.ValidateRules(rs); err != nil {
		return err
	}
	in.engines[vip] = rules.NewEngine(rs)
	return nil
}

// StickyTableSizes reports the number of sticky-session bindings per
// table, summed across this instance's VIP engines — the memory the
// hygiene pass in rules.Engine.Update bounds under policy churn.
func (in *Instance) StickyTableSizes() map[string]int {
	out := make(map[string]int)
	for _, e := range in.engines {
		for name, n := range e.TableSizes() {
			out[name] += n
		}
	}
	return out
}

// RemoveRules drops the rule table for a VIP (VIP removal, §5.2).
func (in *Instance) RemoveRules(vip netsim.IP) { delete(in.engines, vip) }

// RuleCount returns the total rules installed across VIPs (the Ry figure
// the assignment algorithm constrains).
func (in *Instance) RuleCount() int {
	n := 0
	for _, e := range in.engines {
		n += e.Len()
	}
	return n
}

// HasVIP reports whether the instance holds rules for vip.
func (in *Instance) HasVIP(vip netsim.IP) bool {
	_, ok := in.engines[vip]
	return ok
}

// SetBackendInfo wires the controller's backend health/load view into
// rule evaluation.
func (in *Instance) SetBackendInfo(info rules.BackendInfo) { in.info = info }

// FlowCount returns the number of live flow entries (both orientations).
func (in *Instance) FlowCount() int { return in.flows.entries() }

// ClientFlowCount returns the number of live connections (each
// connection counts once regardless of phase).
func (in *Instance) ClientFlowCount() int {
	n := 0
	in.flows.forEach(func(*flow) { n++ })
	return n
}

// VIPFlowCount returns the live connections terminating at vip.
func (in *Instance) VIPFlowCount(vip netsim.IP) int {
	n := 0
	in.flows.forEach(func(f *flow) {
		if f.vip.IP == vip {
			n++
		}
	})
	return n
}

// VIPLastActive returns the most recent packet-activity time across the
// instance's flows for vip; ok is false when no such flow exists. The
// reconfig executor uses this as its drain signal: once every L4 mux has
// applied a mapping change, a losing instance's flows stop receiving
// packets and this timestamp freezes.
func (in *Instance) VIPLastActive(vip netsim.IP) (last time.Duration, ok bool) {
	in.flows.forEach(func(f *flow) {
		if f.vip.IP == vip {
			ok = true
			if f.lastActive > last {
				last = f.lastActive
			}
		}
	})
	return last, ok
}

// ReleaseVIPFlows drops the local state of every flow terminating at vip
// WITHOUT deleting its TCPStore records: ownership of those flows has
// moved to the instances that gained the VIP, which resurrect them from
// the store on the next packet. Deleting the records here (as teardown
// does) would break exactly the flows a reconfiguration migrates.
//
// SNAT ports held by released tunnel-phase flows stay reserved
// (quarantined): the migrated flow keeps using the port on its new owner,
// and re-allocating it locally could splice a future flow onto the same
// server-side tuple. The quarantined ports return to the pool when the
// instance restarts (rolling upgrade) — the common case for a full drain.
// Returns the number of flows released.
func (in *Instance) ReleaseVIPFlows(vip netsim.IP) int {
	var victims []*flow
	in.flows.forEach(func(f *flow) {
		if f.vip.IP == vip {
			victims = append(victims, f)
		}
	})
	for _, f := range victims {
		in.flows.del(f.clientTuple(), f)
		if f.server.IP != 0 {
			in.flows.del(f.serverTuple(), f)
		}
		f.idleTimer.Stop()
		f.dialTimer.Stop()
		in.SNATQuarantined += countPort(f)
	}
	return len(victims)
}

// countPort reports whether a flow holds a SNAT port (tunnel or dialing
// phase), for the quarantine counter.
func countPort(f *flow) uint64 {
	if f.server.IP != 0 {
		return 1
	}
	return 0
}

// ReadStats returns and resets the per-VIP counters.
func (in *Instance) ReadStats() map[netsim.IP]*VIPStats {
	out := in.Stats
	in.Stats = make(map[netsim.IP]*VIPStats)
	in.statsCache = nil
	return out
}

func (in *Instance) statsFor(vip netsim.IP) *VIPStats {
	if in.statsCache != nil && in.statsVIP == vip {
		return in.statsCache
	}
	s, ok := in.Stats[vip]
	if !ok {
		s = &VIPStats{}
		in.Stats[vip] = s
	}
	in.statsVIP, in.statsCache = vip, s
	return s
}

// Fail detaches the instance from the network, dropping all local state
// in flight — the failure mode the paper's recovery protocol targets. All
// in-memory flow state is discarded, exactly what makes TCPStore
// necessary.
func (in *Instance) Fail() {
	in.dead = true
	in.host.Detach()
	in.flows.init()
	in.pending = make(map[netsim.FourTuple]*pendingQueue)
	in.pendingTotal = 0
}

// FNV-1a constants, inlined to keep the per-SYN hash allocation-free
// (hash/fnv returns its state behind an interface, which escapes).
const (
	fnvOffset64 uint64 = 14695981039346656037
	fnvPrime64  uint64 = 1099511628211
)

// isnHash derives the instance's client-facing ISN from the client tuple.
// Every instance computes the same value, so a SYN-ACK can be regenerated
// by any instance without consulting TCPStore (§4.1). The digest is
// bit-identical to fnv.New64a over the same 12-byte encoding.
func isnHash(client, vip netsim.HostPort) uint32 {
	var b [12]byte
	put := func(off int, v uint32) {
		b[off], b[off+1], b[off+2], b[off+3] = byte(v>>24), byte(v>>16), byte(v>>8), byte(v)
	}
	put(0, uint32(client.IP))
	b[4], b[5] = byte(client.Port>>8), byte(client.Port)
	put(6, uint32(vip.IP))
	b[10], b[11] = byte(vip.Port>>8), byte(vip.Port)
	h := fnvOffset64
	for _, c := range b {
		h = (h ^ uint64(c)) * fnvPrime64
	}
	return uint32(h ^ (h >> 32))
}

// allocSNATPort hands out the next free port in the instance's SNAT
// range; ok=false when the range is exhausted. Ports return to the pool
// in releaseSNATPort when flows finish. An exhausted range must refuse
// rather than reuse: handing a live flow's port to a second flow makes
// both map to the same backend tuple and corrupts the SNAT table.
func (in *Instance) allocSNATPort() (port uint16, ok bool) {
	for i := uint16(0); i < in.cfg.SNATCount; i++ {
		p := in.cfg.SNATBase + (in.snatNext-in.cfg.SNATBase+i)%in.cfg.SNATCount
		if !in.snatInUse[p] {
			in.snatInUse[p] = true
			in.snatNext = p + 1
			return p, true
		}
	}
	return 0, false
}

// allocSNATPortPreferred claims pref when it lies inside this instance's
// range and is free, falling back to the sequential allocator otherwise.
// The hybrid dial path asks for the cookie-coded port the derivation
// layer predicts; a flow that had to fall back simply fails the write-time
// self-check and stays persisted.
func (in *Instance) allocSNATPortPreferred(pref uint16) (port uint16, ok bool) {
	if pref >= in.cfg.SNATBase && uint32(pref) < uint32(in.cfg.SNATBase)+uint32(in.cfg.SNATCount) &&
		!in.snatInUse[pref] {
		in.snatInUse[pref] = true
		return pref, true
	}
	return in.allocSNATPort()
}

func (in *Instance) releaseSNATPort(p uint16) { delete(in.snatInUse, p) }

// handlePacket is the packet driver entry point: every balanced packet
// the L4 LB forwards to this instance lands here (memcached traffic is
// demuxed earlier by the host's connection table). The instance is the
// packet's terminal consumer: every path either copies the bytes it
// keeps (request assembly, recovery queue) or forwards them in a fresh
// packet, so the struct is released back to the pool on return.
func (in *Instance) handlePacket(pkt *netsim.Packet) {
	in.processPacket(pkt)
	in.net.ReleasePacket(pkt)
}

// HandleSegment implements netsim.PortHandler; the instance is the
// host's default handler.
func (in *Instance) HandleSegment(pkt *netsim.Packet) { in.handlePacket(pkt) }

// HandleSegmentBatch implements netsim.BatchPortHandler: a run of
// packets for one flow costs one flowIndex lookup instead of one per
// packet. The cached resolution is revalidated against the index's
// version counter, so a teardown, adoption, or re-key triggered by an
// earlier packet of the run forces a fresh lookup — per-packet
// semantics are otherwise identical to processPacket.
func (in *Instance) HandleSegmentBatch(pkts []*netsim.Packet) {
	var (
		runTuple netsim.FourTuple
		runFlow  *flow
		runVer   uint64
		runOK    bool
	)
	for _, pkt := range pkts {
		if in.dead {
			in.net.ReleasePacket(pkt)
			continue
		}
		in.CPU.Charge(in.net.Now(), in.cfg.CPUPerPacket)
		tuple := pkt.Tuple()
		st := in.statsFor(pkt.Dst.IP)
		st.Packets++
		st.PayloadByte += uint64(len(pkt.Payload))
		if !runOK || tuple != runTuple || in.flows.version != runVer {
			runFlow = in.flows.get(tuple)
			runTuple, runVer, runOK = tuple, in.flows.version, true
		}
		switch {
		case runFlow != nil:
			in.dispatch(runFlow, pkt)
		case pkt.Flags.Has(netsim.FlagSYN) && !pkt.Flags.Has(netsim.FlagACK):
			in.newClientFlow(pkt)
		default:
			in.recoverFlow(tuple, pkt)
		}
		in.net.ReleasePacket(pkt)
	}
}

func (in *Instance) processPacket(pkt *netsim.Packet) {
	if in.dead {
		return
	}
	in.CPU.Charge(in.net.Now(), in.cfg.CPUPerPacket)
	tuple := pkt.Tuple()
	st := in.statsFor(pkt.Dst.IP)
	st.Packets++
	st.PayloadByte += uint64(len(pkt.Payload))

	if f := in.flows.get(tuple); f != nil {
		in.dispatch(f, pkt)
		return
	}
	if pkt.Flags.Has(netsim.FlagSYN) && !pkt.Flags.Has(netsim.FlagACK) {
		in.newClientFlow(pkt)
		return
	}
	// Unknown, non-SYN: either another instance's flow arriving after a
	// failure or mapping change, or garbage. Try TCPStore.
	in.recoverFlow(tuple, pkt)
}

func (in *Instance) dispatch(f *flow, pkt *netsim.Packet) {
	f.touch(in.net.Now())
	if pkt.Src == f.client {
		f.state.clientPacket(in, f, pkt)
	} else {
		f.state.serverPacket(in, f, pkt)
	}
}
