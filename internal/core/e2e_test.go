package core_test

import (
	"bytes"
	"fmt"
	"testing"
	"time"

	"repro/internal/cluster"
	"repro/internal/core"
	"repro/internal/httpsim"
	"repro/internal/memcache"
	"repro/internal/netsim"
	"repro/internal/rules"
	"repro/internal/tcp"
	"repro/internal/tcpstore"
)

// testbed builds the standard small testbed: nYoda instances, 3 TCPStore
// servers, 3 backends with an equal split policy for one VIP.
type testbed struct {
	c       *cluster.Cluster
	vip     netsim.IP
	vipHP   netsim.HostPort
	objects map[string][]byte
}

func newTestbed(t *testing.T, seed int64, nYoda int) *testbed {
	t.Helper()
	c := cluster.New(seed)
	c.AddStoreServers(3, memcache.DefaultSimServerConfig())
	objects := map[string][]byte{
		"/10k":  bytes.Repeat([]byte("a"), 10*1024),
		"/100k": bytes.Repeat([]byte("b"), 100*1024),
		"/tiny": []byte("ok"),
	}
	for i := 1; i <= 3; i++ {
		c.AddBackend(fmt.Sprintf("srv-%d", i), objects, httpsim.DefaultServerConfig())
	}
	c.AddYodaN(nYoda, core.DefaultConfig(), tcpstore.DefaultConfig())
	vip := c.AddVIP("mysite")
	c.InstallPolicy(vip, c.SimpleSplitRules("srv-1", "srv-2", "srv-3"), nil)
	return &testbed{
		c:       c,
		vip:     vip,
		vipHP:   netsim.HostPort{IP: vip, Port: 80},
		objects: objects,
	}
}

func TestEndToEndFetchThroughYoda(t *testing.T) {
	tb := newTestbed(t, 1, 2)
	cl := tb.c.NewClient(httpsim.DefaultClientConfig())
	var res *httpsim.FetchResult
	cl.Get(tb.vipHP, "/10k", func(r *httpsim.FetchResult) { res = r })
	tb.c.Net.RunFor(5 * time.Second)
	if res == nil {
		t.Fatal("fetch never completed")
	}
	if res.Err != nil {
		t.Fatalf("fetch error: %v", res.Err)
	}
	if !bytes.Equal(res.Resp.Body, tb.objects["/10k"]) {
		t.Fatalf("body corrupted: %d bytes", len(res.Resp.Body))
	}
	// End-to-end latency: 2 WAN RTTs (120ms) + rule lookup (~3.2ms) +
	// TCPStore ops + server processing. Must be well under 200ms.
	if res.Elapsed() < 120*time.Millisecond || res.Elapsed() > 250*time.Millisecond {
		t.Fatalf("elapsed = %v", res.Elapsed())
	}
}

func TestFetchLargeObject(t *testing.T) {
	tb := newTestbed(t, 2, 2)
	cl := tb.c.NewClient(httpsim.DefaultClientConfig())
	var res *httpsim.FetchResult
	cl.Get(tb.vipHP, "/100k", func(r *httpsim.FetchResult) { res = r })
	tb.c.Net.RunFor(10 * time.Second)
	if res == nil || res.Err != nil {
		t.Fatalf("res = %+v", res)
	}
	if !bytes.Equal(res.Resp.Body, tb.objects["/100k"]) {
		t.Fatal("large body corrupted through tunnel")
	}
}

func TestManyConcurrentFetches(t *testing.T) {
	tb := newTestbed(t, 3, 3)
	const N = 40
	done := 0
	var errs []error
	for i := 0; i < N; i++ {
		cl := tb.c.NewClient(httpsim.DefaultClientConfig())
		cl.Get(tb.vipHP, "/10k", func(r *httpsim.FetchResult) {
			done++
			if r.Err != nil {
				errs = append(errs, r.Err)
			}
		})
	}
	tb.c.Net.RunFor(30 * time.Second)
	if done != N {
		t.Fatalf("done = %d/%d", done, N)
	}
	if len(errs) != 0 {
		t.Fatalf("errors: %v", errs)
	}
	// Traffic must be spread across instances.
	busy := 0
	for _, in := range tb.c.Yoda {
		if in.FlowCount() >= 0 { // flows are cleaned up; check stats instead
		}
		st := in.ReadStats()
		if st[tb.vip] != nil && st[tb.vip].NewFlows > 0 {
			busy++
		}
	}
	if busy < 2 {
		t.Fatalf("only %d instances saw traffic", busy)
	}
}

func TestFlowStateCleanedAfterClose(t *testing.T) {
	tb := newTestbed(t, 4, 1)
	cl := tb.c.NewClient(httpsim.DefaultClientConfig())
	var res *httpsim.FetchResult
	cl.Get(tb.vipHP, "/tiny", func(r *httpsim.FetchResult) { res = r })
	tb.c.Net.RunFor(10 * time.Second) // includes FinLinger
	if res == nil || res.Err != nil {
		t.Fatalf("res = %+v", res)
	}
	if n := tb.c.Yoda[0].FlowCount(); n != 0 {
		t.Fatalf("flows leaked: %d", n)
	}
	items := 0
	for _, s := range tb.c.StoreServers {
		items += s.Engine.Stats().CurrItems
	}
	if items != 0 {
		t.Fatalf("TCPStore entries leaked: %d", items)
	}
}

func TestSplitAcrossBackends(t *testing.T) {
	tb := newTestbed(t, 5, 2)
	const N = 60
	done := 0
	for i := 0; i < N; i++ {
		cl := tb.c.NewClient(httpsim.DefaultClientConfig())
		cl.Get(tb.vipHP, "/tiny", func(r *httpsim.FetchResult) {
			if r.Err == nil {
				done++
			}
		})
	}
	tb.c.Net.RunFor(30 * time.Second)
	if done != N {
		t.Fatalf("done = %d", done)
	}
	for name, b := range tb.c.Backends {
		if b.Server.Requests < N/6 {
			t.Errorf("backend %s got %d requests, want roughly %d", name, b.Server.Requests, N/3)
		}
	}
}

func TestFailoverDuringTunnelPhase(t *testing.T) {
	tb := newTestbed(t, 6, 2)
	cfg := httpsim.DefaultClientConfig() // 30s HTTP timeout, no retry
	cl := tb.c.NewClient(cfg)
	var res *httpsim.FetchResult
	cl.Get(tb.vipHP, "/100k", func(r *httpsim.FetchResult) { res = r })
	// The transfer starts around 120-140ms and takes a while through slow
	// start. Kill whichever instance owns the flow mid-transfer, then let
	// the "controller" remove it 600ms later (monitor detection delay).
	tb.c.Net.RunFor(200 * time.Millisecond)
	victim := -1
	for i, in := range tb.c.Yoda {
		if in.FlowCount() > 0 {
			victim = i
			break
		}
	}
	if victim < 0 {
		t.Fatal("no instance owns the flow yet")
	}
	tb.c.Yoda[victim].Fail()
	tb.c.Net.Schedule(600*time.Millisecond, func() {
		tb.c.L4.RemoveInstance(tb.c.Yoda[victim].IP())
	})
	tb.c.Net.RunFor(30 * time.Second)
	if res == nil {
		t.Fatal("fetch never completed")
	}
	if res.Err != nil {
		t.Fatalf("flow broke despite TCPStore recovery: %v (timedout=%v)", res.Err, res.TimedOut)
	}
	if !bytes.Equal(res.Resp.Body, tb.objects["/100k"]) {
		t.Fatalf("body corrupted across failover: %d bytes", len(res.Resp.Body))
	}
	survivor := tb.c.Yoda[1-victim]
	if survivor.Recovered == 0 {
		t.Fatal("survivor never recovered a flow from TCPStore")
	}
	// Recovery adds roughly the retransmission + detection delay (0.6-3s
	// per the paper), far below the 30s HTTP timeout.
	if res.Elapsed() > 10*time.Second {
		t.Fatalf("recovery too slow: %v", res.Elapsed())
	}
}

func TestFailoverDuringConnectionPhase(t *testing.T) {
	tb := newTestbed(t, 7, 2)
	cl := tb.c.NewClient(httpsim.DefaultClientConfig())
	var res *httpsim.FetchResult
	cl.Get(tb.vipHP, "/10k", func(r *httpsim.FetchResult) { res = r })
	// Timeline: SYN reaches the instance ~30ms, storage-a ~1ms, SYN-ACK at
	// client ~61ms, request data back at the instance ~91ms. Killing at
	// 75ms lands after storage-a/SYN-ACK but before the data arrives — the
	// "more interesting case" of §4.2.
	var victim *core.Instance
	tb.c.Net.Schedule(75*time.Millisecond, func() {
		for _, in := range tb.c.Yoda {
			if in.FlowCount() > 0 {
				victim = in
				in.Fail()
				return
			}
		}
	})
	tb.c.Net.Schedule(675*time.Millisecond, func() {
		if victim != nil {
			tb.c.L4.RemoveInstance(victim.IP())
		}
	})
	tb.c.Net.RunFor(40 * time.Second)
	if victim == nil {
		t.Fatal("no victim found at kill time")
	}
	if res == nil {
		t.Fatal("fetch never completed")
	}
	if res.Err != nil {
		t.Fatalf("connection-phase failover broke the flow: %v", res.Err)
	}
	var survivor *core.Instance
	for _, in := range tb.c.Yoda {
		if in != victim {
			survivor = in
		}
	}
	if survivor.Recovered == 0 {
		t.Fatal("survivor did not recover the connection-phase flow")
	}
	if !bytes.Equal(res.Resp.Body, tb.objects["/10k"]) {
		t.Fatal("body corrupted")
	}
}

func TestRejectWhenNoRuleMatches(t *testing.T) {
	c := cluster.New(8)
	c.AddStoreServers(2, memcache.DefaultSimServerConfig())
	c.AddBackend("srv-1", map[string][]byte{"/x": []byte("y")}, httpsim.DefaultServerConfig())
	c.AddYodaN(1, core.DefaultConfig(), tcpstore.DefaultConfig())
	vip := c.AddVIP("svc")
	only := []rules.Rule{{
		Name: "jpg-only", Priority: 1, Match: rules.Match{URLGlob: "*.jpg"},
		Action: rules.Action{Type: rules.ActionSplit,
			Split: []rules.WeightedBackend{{Backend: c.Backends["srv-1"].Rec, Weight: 1}}},
	}}
	c.InstallPolicy(vip, only, nil)
	cl := c.NewClient(httpsim.DefaultClientConfig())
	var res *httpsim.FetchResult
	cl.Get(netsim.HostPort{IP: vip, Port: 80}, "/not-a-jpg", func(r *httpsim.FetchResult) { res = r })
	c.Net.RunFor(5 * time.Second)
	if res == nil {
		t.Fatal("no response")
	}
	if res.Err != nil {
		t.Fatalf("expected HTTP 503, got transport error %v", res.Err)
	}
	if res.Resp.StatusCode != 503 {
		t.Fatalf("status = %d, want 503", res.Resp.StatusCode)
	}
}

func TestKeepAliveMultipleRequestsSameBackend(t *testing.T) {
	tb := newTestbed(t, 9, 1)
	host := tb.c.ClientHost()
	parser := &httpsim.ResponseParser{}
	var bodies [][]byte
	req := func(path string) []byte {
		r := httpsim.NewRequest(path, "mysite")
		return r.Marshal() // HTTP/1.1, keep-alive by default
	}
	conn := tcp.Dial(host, tb.vipHP, tcp.Callbacks{
		OnEstablished: func(c *tcp.Conn) { c.Write(req("/tiny")) },
		OnData: func(c *tcp.Conn, d []byte) {
			resps, err := parser.Feed(d)
			if err != nil {
				t.Errorf("parse: %v", err)
			}
			for _, r := range resps {
				bodies = append(bodies, r.Body)
				if len(bodies) == 1 {
					c.Write(req("/tiny"))
				} else {
					c.Close()
				}
			}
		},
	}, tcp.DefaultConfig())
	_ = conn
	tb.c.Net.RunFor(10 * time.Second)
	if len(bodies) != 2 {
		t.Fatalf("got %d responses", len(bodies))
	}
	for _, b := range bodies {
		if string(b) != "ok" {
			t.Fatalf("body = %q", b)
		}
	}
	if tb.c.Yoda[0].Reselections != 0 {
		t.Fatalf("unexpected backend switch: %d", tb.c.Yoda[0].Reselections)
	}
}

func TestKeepAliveBackendReselection(t *testing.T) {
	// Two requests on one connection matching rules that pin different
	// backends: the instance must switch servers mid-connection (§5.2).
	c := cluster.New(10)
	c.AddStoreServers(2, memcache.DefaultSimServerConfig())
	objs1 := map[string][]byte{"/a.php": []byte("from-php-pool")}
	objs2 := map[string][]byte{"/b.css": []byte("from-css-pool")}
	c.AddBackend("php-1", objs1, httpsim.DefaultServerConfig())
	c.AddBackend("css-1", objs2, httpsim.DefaultServerConfig())
	c.AddYodaN(1, core.DefaultConfig(), tcpstore.DefaultConfig())
	vip := c.AddVIP("svc")
	rs := []rules.Rule{
		{Name: "php", Priority: 2, Match: rules.Match{URLGlob: "*.php"},
			Action: rules.Action{Type: rules.ActionSplit,
				Split: []rules.WeightedBackend{{Backend: c.Backends["php-1"].Rec, Weight: 1}}}},
		{Name: "css", Priority: 1, Match: rules.Match{URLGlob: "*.css"},
			Action: rules.Action{Type: rules.ActionSplit,
				Split: []rules.WeightedBackend{{Backend: c.Backends["css-1"].Rec, Weight: 1}}}},
	}
	c.InstallPolicy(vip, rs, nil)

	host := c.ClientHost()
	parser := &httpsim.ResponseParser{}
	var bodies []string
	tcp.Dial(host, netsim.HostPort{IP: vip, Port: 80}, tcp.Callbacks{
		OnEstablished: func(conn *tcp.Conn) {
			conn.Write(httpsim.NewRequest("/a.php", "svc").Marshal())
		},
		OnData: func(conn *tcp.Conn, d []byte) {
			resps, err := parser.Feed(d)
			if err != nil {
				t.Errorf("parse: %v", err)
			}
			for _, r := range resps {
				bodies = append(bodies, string(r.Body))
				if len(bodies) == 1 {
					conn.Write(httpsim.NewRequest("/b.css", "svc").Marshal())
				} else {
					conn.Close()
				}
			}
		},
	}, tcp.DefaultConfig())
	c.Net.RunFor(15 * time.Second)
	if len(bodies) != 2 {
		t.Fatalf("got %d responses: %v", len(bodies), bodies)
	}
	if bodies[0] != "from-php-pool" || bodies[1] != "from-css-pool" {
		t.Fatalf("bodies = %v", bodies)
	}
	if c.Yoda[0].Reselections != 1 {
		t.Fatalf("reselections = %d, want 1", c.Yoda[0].Reselections)
	}
	if c.Backends["php-1"].Server.Requests != 1 || c.Backends["css-1"].Server.Requests != 1 {
		t.Fatalf("request counts: php=%d css=%d",
			c.Backends["php-1"].Server.Requests, c.Backends["css-1"].Server.Requests)
	}
}

func TestInstanceCountersAndStats(t *testing.T) {
	tb := newTestbed(t, 11, 1)
	cl := tb.c.NewClient(httpsim.DefaultClientConfig())
	done := false
	cl.Get(tb.vipHP, "/tiny", func(r *httpsim.FetchResult) { done = r.Err == nil })
	tb.c.Net.RunFor(5 * time.Second)
	if !done {
		t.Fatal("fetch failed")
	}
	in := tb.c.Yoda[0]
	st := in.ReadStats()
	vs := st[tb.vip]
	if vs == nil || vs.NewFlows != 1 || vs.Packets == 0 {
		t.Fatalf("stats: %+v", vs)
	}
	// ReadStats resets.
	st2 := in.ReadStats()
	if st2[tb.vip] != nil {
		t.Fatal("stats not reset")
	}
	if in.RuleCount() != 1 {
		t.Fatalf("rule count = %d", in.RuleCount())
	}
	if !in.HasVIP(tb.vip) {
		t.Fatal("HasVIP false")
	}
	if in.CPU.BusyTotal() == 0 {
		t.Fatal("no CPU charged")
	}
}

func TestVIPRemovalStopsTraffic(t *testing.T) {
	tb := newTestbed(t, 12, 1)
	tb.c.Yoda[0].RemoveRules(tb.vip)
	cl := tb.c.NewClient(httpsim.DefaultClientConfig())
	var res *httpsim.FetchResult
	cl.Get(tb.vipHP, "/tiny", func(r *httpsim.FetchResult) { res = r })
	tb.c.Net.RunFor(5 * time.Second)
	if res == nil {
		t.Fatal("no result")
	}
	if res.Err == nil && res.Resp.StatusCode != 503 {
		t.Fatalf("expected 503 or failure after rules removed, got %+v", res.Resp)
	}
}
