package core_test

import (
	"testing"
	"time"

	"repro/internal/cluster"
	"repro/internal/core"
	"repro/internal/httpsim"
	"repro/internal/memcache"
	"repro/internal/netsim"
	"repro/internal/rules"
	"repro/internal/tcp"
	"repro/internal/tcpstore"
)

// kaBed is a testbed with two pools pinned by URL pattern, for exercising
// HTTP/1.1 mid-connection backend re-selection.
type kaBed struct {
	c   *cluster.Cluster
	vip netsim.IP
}

func newKABed(seed int64, nYoda int) *kaBed {
	c := cluster.New(seed)
	c.AddStoreServers(2, memcache.DefaultSimServerConfig())
	c.AddBackend("php-1", map[string][]byte{"/a.php": []byte("PHP-A"), "/c.php": []byte("PHP-C")}, httpsim.DefaultServerConfig())
	c.AddBackend("css-1", map[string][]byte{"/b.css": []byte("CSS-B")}, httpsim.DefaultServerConfig())
	c.AddYodaN(nYoda, core.DefaultConfig(), tcpstore.DefaultConfig())
	vip := c.AddVIP("svc")
	rs := []rules.Rule{
		{Name: "php", Priority: 2, Match: rules.Match{URLGlob: "*.php"},
			Action: rules.Action{Type: rules.ActionSplit,
				Split: []rules.WeightedBackend{{Backend: c.Backends["php-1"].Rec, Weight: 1}}}},
		{Name: "css", Priority: 1, Match: rules.Match{URLGlob: "*.css"},
			Action: rules.Action{Type: rules.ActionSplit,
				Split: []rules.WeightedBackend{{Backend: c.Backends["css-1"].Rec, Weight: 1}}}},
	}
	c.InstallPolicy(vip, rs, nil)
	return &kaBed{c: c, vip: vip}
}

// driveKA sends the given request paths over a single keep-alive
// connection and returns the response bodies in arrival order.
func driveKA(t *testing.T, b *kaBed, pipelined bool, paths ...string) []string {
	t.Helper()
	host := b.c.ClientHost()
	parser := &httpsim.ResponseParser{}
	var bodies []string
	req := func(p string) []byte { return httpsim.NewRequest(p, "svc").Marshal() }
	tcp.Dial(host, netsim.HostPort{IP: b.vip, Port: 80}, tcp.Callbacks{
		OnEstablished: func(c *tcp.Conn) {
			if pipelined {
				for _, p := range paths {
					c.Write(req(p))
				}
			} else {
				c.Write(req(paths[0]))
			}
		},
		OnData: func(c *tcp.Conn, d []byte) {
			resps, err := parser.Feed(d)
			if err != nil {
				t.Errorf("client parse: %v", err)
				c.Abort()
				return
			}
			for _, r := range resps {
				bodies = append(bodies, string(r.Body))
				if !pipelined && len(bodies) < len(paths) {
					c.Write(req(paths[len(bodies)]))
				}
				if len(bodies) == len(paths) {
					c.Close()
				}
			}
		},
	}, tcp.DefaultConfig())
	b.c.Net.RunFor(30 * time.Second)
	return bodies
}

func TestKeepAlivePipelinedAcrossBackends(t *testing.T) {
	// Three pipelined requests alternating pools: responses must come back
	// in order despite two backend switches (§5.2's in-order requirement).
	b := newKABed(21, 1)
	bodies := driveKA(t, b, true, "/a.php", "/b.css", "/c.php")
	want := []string{"PHP-A", "CSS-B", "PHP-C"}
	if len(bodies) != 3 {
		t.Fatalf("got %d responses: %v", len(bodies), bodies)
	}
	for i := range want {
		if bodies[i] != want[i] {
			t.Fatalf("response %d = %q, want %q (order violated)", i, bodies[i], want[i])
		}
	}
	if b.c.Yoda[0].Reselections != 2 {
		t.Fatalf("reselections = %d, want 2", b.c.Yoda[0].Reselections)
	}
}

func TestKeepAliveSequentialAcrossBackends(t *testing.T) {
	b := newKABed(22, 1)
	bodies := driveKA(t, b, false, "/a.php", "/b.css", "/a.php")
	want := []string{"PHP-A", "CSS-B", "PHP-A"}
	if len(bodies) != 3 {
		t.Fatalf("got %d responses: %v", len(bodies), bodies)
	}
	for i := range want {
		if bodies[i] != want[i] {
			t.Fatalf("response %d = %q, want %q", i, bodies[i], want[i])
		}
	}
	// php -> css -> php again: two switches.
	if b.c.Yoda[0].Reselections != 2 {
		t.Fatalf("reselections = %d", b.c.Yoda[0].Reselections)
	}
}

func TestKeepAliveFlowStateCleanedAfterClose(t *testing.T) {
	b := newKABed(23, 1)
	bodies := driveKA(t, b, false, "/a.php", "/b.css")
	if len(bodies) != 2 {
		t.Fatalf("bodies: %v", bodies)
	}
	b.c.Net.RunFor(10 * time.Second)
	if n := b.c.Yoda[0].FlowCount(); n != 0 {
		t.Fatalf("flows leaked: %d", n)
	}
	items := 0
	for _, s := range b.c.StoreServers {
		items += s.Engine.Stats().CurrItems
	}
	if items != 0 {
		t.Fatalf("TCPStore leaked %d entries", items)
	}
}

func TestKeepAliveRecoveryDowngradesToPinnedTunnel(t *testing.T) {
	// Kill the instance mid keep-alive session; the survivor recovers the
	// flow from TCPStore as a pure tunnel pinned to the current backend
	// (documented deviation), so in-flight transfers still finish.
	b := newKABed(24, 2)
	host := b.c.ClientHost()
	parser := &httpsim.ResponseParser{}
	var bodies []string
	var conn *tcp.Conn
	conn = tcp.Dial(host, netsim.HostPort{IP: b.vip, Port: 80}, tcp.Callbacks{
		OnEstablished: func(c *tcp.Conn) {
			c.Write(httpsim.NewRequest("/a.php", "svc").Marshal())
		},
		OnData: func(c *tcp.Conn, d []byte) {
			resps, err := parser.Feed(d)
			if err != nil {
				t.Errorf("parse: %v", err)
			}
			for _, r := range resps {
				bodies = append(bodies, string(r.Body))
			}
		},
	}, tcp.DefaultConfig())

	b.c.Net.RunFor(100 * time.Millisecond)
	var victim *core.Instance
	for _, in := range b.c.Yoda {
		if in.FlowCount() > 0 {
			victim = in
			in.Fail()
			break
		}
	}
	if victim == nil {
		t.Skip("flow completed before the kill window (timing-sensitive)")
	}
	b.c.Net.Schedule(600*time.Millisecond, func() { b.c.L4.RemoveInstance(victim.IP()) })
	// Ask for the same path again on the recovered connection: it must be
	// served by the pinned backend (php-1 holds /a.php, so content works).
	b.c.Net.Schedule(3*time.Second, func() {
		conn.Write(httpsim.NewRequest("/a.php", "svc").Marshal())
	})
	b.c.Net.RunFor(30 * time.Second)
	if len(bodies) < 2 {
		t.Fatalf("got %d responses across recovery: %v", len(bodies), bodies)
	}
	for _, body := range bodies {
		if body != "PHP-A" {
			t.Fatalf("bodies: %v", bodies)
		}
	}
	var survivor *core.Instance
	for _, in := range b.c.Yoda {
		if in != victim {
			survivor = in
		}
	}
	if survivor.Recovered == 0 {
		t.Fatal("survivor never recovered the keep-alive flow")
	}
}
