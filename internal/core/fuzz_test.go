package core

import (
	"testing"
)

// FuzzUnmarshalRecord must never panic on arbitrary TCPStore values —
// after a failure an instance decodes bytes written by another process
// version, so corrupt input is a real input class.
func FuzzUnmarshalRecord(f *testing.F) {
	f.Add([]byte{})
	f.Add((&Record{Phase: PhaseConn}).Marshal())
	f.Add((&Record{Phase: PhaseTunnel, BackendName: "srv"}).Marshal())
	bad := (&Record{Phase: PhaseTunnel, BackendName: "srv"}).Marshal()
	bad[1] = 99
	f.Add(bad)
	f.Fuzz(func(t *testing.T, data []byte) {
		rec, err := UnmarshalRecord(data)
		if err != nil {
			return
		}
		// Accepted records must re-marshal to an equivalent record.
		again, err2 := UnmarshalRecord(rec.Marshal())
		if err2 != nil {
			t.Fatalf("re-unmarshal of accepted record failed: %v", err2)
		}
		if *again != *rec {
			t.Fatalf("round trip changed record: %+v vs %+v", again, rec)
		}
	})
}

// FuzzFrameRequests must never panic and must never consume more bytes
// than it was given.
func FuzzFrameRequests(f *testing.F) {
	f.Add([]byte("GET /a HTTP/1.1\r\nHost: h\r\n\r\n"))
	f.Add([]byte("POST /b HTTP/1.1\r\nContent-Length: 4\r\n\r\nBODY"))
	f.Add([]byte("\r\n\r\n\r\n\r\n"))
	f.Fuzz(func(t *testing.T, data []byte) {
		frames, consumed := frameRequests(data)
		if consumed < 0 || consumed > len(data) {
			t.Fatalf("consumed %d of %d", consumed, len(data))
		}
		total := 0
		for _, fr := range frames {
			total += len(fr.raw)
		}
		if total != consumed {
			t.Fatalf("frame bytes %d != consumed %d", total, consumed)
		}
	})
}

// FuzzFrameResponseLen must never panic and never report a frame longer
// than the buffer.
func FuzzFrameResponseLen(f *testing.F) {
	f.Add([]byte("HTTP/1.1 200 OK\r\nContent-Length: 5\r\n\r\nhello"))
	f.Add([]byte("HTTP/1.1 204 No Content\r\n\r\n"))
	f.Fuzz(func(t *testing.T, data []byte) {
		n := frameResponseLen(data)
		if n < 0 || n > len(data) {
			t.Fatalf("frame length %d of %d", n, len(data))
		}
	})
}
