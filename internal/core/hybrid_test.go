package core_test

import (
	"bytes"
	"fmt"
	"testing"
	"time"

	"repro/internal/cluster"
	"repro/internal/core"
	"repro/internal/httpsim"
	"repro/internal/memcache"
	"repro/internal/netsim"
	"repro/internal/tcp"
	"repro/internal/tcpstore"
)

const hybridSecret = 0xfeedfacecafef00d

// newHybridTestbed mirrors newTestbed with hybrid recovery enabled: one
// shared derivation table, backends using the deterministic ISN key.
func newHybridTestbed(t *testing.T, seed int64, nYoda int) *testbed {
	t.Helper()
	c := cluster.New(seed)
	c.EnableHybrid(hybridSecret)
	c.AddStoreServers(3, memcache.DefaultSimServerConfig())
	objects := map[string][]byte{
		"/10k":  bytes.Repeat([]byte("a"), 10*1024),
		"/100k": bytes.Repeat([]byte("b"), 100*1024),
		"/tiny": []byte("ok"),
	}
	for i := 1; i <= 3; i++ {
		c.AddBackend(fmt.Sprintf("srv-%d", i), objects, httpsim.DefaultServerConfig())
	}
	c.AddYodaN(nYoda, core.DefaultConfig(), tcpstore.DefaultConfig())
	vip := c.AddVIP("mysite")
	c.InstallPolicy(vip, c.SimpleSplitRules("srv-1", "srv-2", "srv-3"), nil)
	return &testbed{
		c:       c,
		vip:     vip,
		vipHP:   netsim.HostPort{IP: vip, Port: 80},
		objects: objects,
	}
}

// probeClientConfig enables the client-side idle probe that lets a
// response-in-flight flow trigger recovery from the client direction.
func probeClientConfig() httpsim.ClientConfig {
	cfg := httpsim.DefaultClientConfig()
	cfg.TCP.IdleProbe = 500 * time.Millisecond
	return cfg
}

// TestHybridVanillaFlowSkipsStore: a plain HTTP flow in hybrid mode
// completes without a single TCPStore round trip — both barriers are
// elided by derivation and teardown has nothing to delete.
func TestHybridVanillaFlowSkipsStore(t *testing.T) {
	tb := newHybridTestbed(t, 21, 1)
	cl := tb.c.NewClient(httpsim.DefaultClientConfig())
	var res *httpsim.FetchResult
	cl.Get(tb.vipHP, "/10k", func(r *httpsim.FetchResult) { res = r })
	tb.c.Net.RunFor(10 * time.Second)
	if res == nil || res.Err != nil {
		t.Fatalf("res = %+v", res)
	}
	if !bytes.Equal(res.Resp.Body, tb.objects["/10k"]) {
		t.Fatal("body corrupted")
	}
	in := tb.c.Yoda[0]
	if in.Barrier.Skipped < 2 {
		t.Fatalf("Barrier.Skipped = %d, want >= 2 (storage-a and storage-b)", in.Barrier.Skipped)
	}
	if rt := in.Store().Stats.RoundTrips; rt != 0 {
		t.Fatalf("store round trips = %d, want 0 for a derivable flow", rt)
	}
	items := 0
	for _, s := range tb.c.StoreServers {
		items += s.Engine.Stats().CurrItems
	}
	if items != 0 {
		t.Fatalf("store entries written for a derivable flow: %d", items)
	}
}

// TestHybridDifferentialOracle is the oracle check: the record the
// store-backed path persists for a flow (obtained by flushing it
// mid-tunnel) must be byte-identical to the record the stateless
// derivation reconstructs — same backend, same SNAT tuple, same C, S,
// Delta, same serialization.
func TestHybridDifferentialOracle(t *testing.T) {
	runOnce := func(seed int64) (skipped, roundTrips uint64) {
		tb := newHybridTestbed(t, seed, 1)
		in := tb.c.Yoda[0]
		host := tb.c.ClientHost()
		req := httpsim.NewRequest("/100k", "mysite")
		req.SetHeader("Connection", "close")
		tcp.Dial(host, tb.vipHP, tcp.Callbacks{
			OnEstablished: func(c *tcp.Conn) { c.Write(req.Marshal()) },
		}, tcp.DefaultConfig())
		tb.c.Net.RunFor(250 * time.Millisecond)

		flows := in.SnapshotFlows()
		if len(flows) != 1 {
			t.Fatalf("live flows = %d, want 1", len(flows))
		}
		fi := flows[0]
		if fi.Persisted {
			t.Fatal("vanilla close-mode flow was persisted; expected derivable")
		}
		ct := netsim.FourTuple{Src: fi.Client, Dst: fi.VIP}

		// Independent derivation from the shared table.
		tbl := tb.c.Hybrid
		b, ok := tbl.DeriveBackend(fi.VIP.IP, ct)
		if !ok {
			t.Fatal("pool not derivable")
		}
		port, ok := tbl.PreferredPort(in.IP(), ct)
		if !ok {
			t.Fatal("no preferred port")
		}
		snat := netsim.HostPort{IP: fi.VIP.IP, Port: port}
		s := tcp.DeterministicISN(tbl.ISNKey(), b.Addr, snat)
		if fi.Server != b.Addr || fi.SNAT != snat || fi.S != s || fi.Delta != fi.C-s {
			t.Fatalf("derivation mismatch: flow=%+v derived backend=%v snat=%v s=%d", fi, b.Addr, snat, s)
		}

		// Flush the flow through the store-backed path and read the record
		// back: it must serialize identically to the derived one.
		if n := in.FlushUnpersisted(); n != 1 {
			t.Fatalf("flushed %d flows, want 1", n)
		}
		var stored []byte
		key := core.AppendFlowKey(nil, ct)
		in.Store().Get(key, func(v []byte, ok bool, err error) {
			if ok && err == nil {
				stored = append([]byte(nil), v...)
			}
		})
		tb.c.Net.RunFor(time.Second)
		if stored == nil {
			t.Fatal("flushed record not readable")
		}
		rec, err := core.UnmarshalRecord(stored)
		if err != nil {
			t.Fatalf("unmarshal: %v", err)
		}
		derived := core.Record{
			Phase:       core.PhaseTunnel,
			Client:      fi.Client,
			VIP:         fi.VIP,
			ClientISN:   rec.ClientISN, // pinned by the client's packets, not the store
			Server:      b.Addr,
			SNAT:        snat,
			C:           fi.C,
			S:           s,
			Delta:       fi.C - s,
			BackendName: b.Name,
		}
		if got := derived.AppendMarshal(nil); !bytes.Equal(got, stored) {
			t.Fatalf("derived record differs from stored:\n  derived: %x\n  stored:  %x", got, stored)
		}
		tb.c.Net.RunFor(10 * time.Second)
		return in.Barrier.Skipped, in.Store().Stats.RoundTrips
	}

	// Residue classification must be stable across identical runs.
	s1, r1 := runOnce(22)
	s2, r2 := runOnce(22)
	if s1 != s2 || r1 != r2 {
		t.Fatalf("classification unstable across runs: skipped %d vs %d, round trips %d vs %d", s1, s2, r1, r2)
	}
}

// TestHybridFailoverTunnelDerived kills the owning instance mid-transfer
// and requires the survivor to rebuild the tunnel by derivation alone —
// no store record ever existed for the flow.
func TestHybridFailoverTunnelDerived(t *testing.T) {
	tb := newHybridTestbed(t, 23, 2)
	cl := tb.c.NewClient(probeClientConfig())
	var res *httpsim.FetchResult
	cl.Get(tb.vipHP, "/100k", func(r *httpsim.FetchResult) { res = r })
	tb.c.Net.RunFor(200 * time.Millisecond)
	victim := -1
	for i, in := range tb.c.Yoda {
		if in.FlowCount() > 0 {
			victim = i
			break
		}
	}
	if victim < 0 {
		t.Fatal("no instance owns the flow yet")
	}
	if rt := tb.c.Yoda[victim].Store().Stats.RoundTrips; rt != 0 {
		t.Fatalf("flow hit the store before failure: %d round trips", rt)
	}
	tb.c.KillYoda(victim) // marks dead in the derivation table too
	tb.c.Net.Schedule(600*time.Millisecond, func() {
		tb.c.L4.RemoveInstance(tb.c.Yoda[victim].IP())
	})
	tb.c.Net.RunFor(30 * time.Second)
	if res == nil {
		t.Fatal("fetch never completed")
	}
	if res.Err != nil {
		t.Fatalf("flow broke despite derivation: %v (timedout=%v)", res.Err, res.TimedOut)
	}
	if !bytes.Equal(res.Resp.Body, tb.objects["/100k"]) {
		t.Fatalf("body corrupted across failover: %d bytes", len(res.Resp.Body))
	}
	survivor := tb.c.Yoda[1-victim]
	if survivor.DerivedRecoveries == 0 {
		t.Fatal("survivor never derived a flow")
	}
	if res.Elapsed() > 10*time.Second {
		t.Fatalf("recovery too slow: %v", res.Elapsed())
	}
}

// TestHybridFailoverConnPhase kills the owner between SYN-ACK and the
// request: the client's retransmitted request carries everything the
// successor needs to replay the connection phase.
func TestHybridFailoverConnPhase(t *testing.T) {
	tb := newHybridTestbed(t, 24, 2)
	cl := tb.c.NewClient(probeClientConfig())
	var res *httpsim.FetchResult
	cl.Get(tb.vipHP, "/10k", func(r *httpsim.FetchResult) { res = r })
	victim := -1
	tb.c.Net.Schedule(75*time.Millisecond, func() {
		for i, in := range tb.c.Yoda {
			if in.FlowCount() > 0 {
				victim = i
				tb.c.KillYoda(i)
				return
			}
		}
	})
	tb.c.Net.Schedule(675*time.Millisecond, func() {
		if victim >= 0 {
			tb.c.L4.RemoveInstance(tb.c.Yoda[victim].IP())
		}
	})
	tb.c.Net.RunFor(40 * time.Second)
	if victim < 0 {
		t.Fatal("no victim found at kill time")
	}
	if res == nil {
		t.Fatal("fetch never completed")
	}
	if res.Err != nil {
		t.Fatalf("connection-phase failover broke the flow: %v", res.Err)
	}
	if !bytes.Equal(res.Resp.Body, tb.objects["/10k"]) {
		t.Fatal("body corrupted")
	}
	survivor := tb.c.Yoda[1-victim]
	if survivor.DerivedRecoveries == 0 {
		t.Fatal("survivor never derived the connection-phase flow")
	}
}

// TestHybridEpochRollover: a flow established before an epoch bump is
// flushed to the store by the bump; after its owner dies, the successor
// must recover it through the store record (which wins over derivation)
// and never mis-derive against the new epoch's entry.
func TestHybridEpochRollover(t *testing.T) {
	tb := newHybridTestbed(t, 25, 2)
	cl := tb.c.NewClient(probeClientConfig())
	var res *httpsim.FetchResult
	cl.Get(tb.vipHP, "/100k", func(r *httpsim.FetchResult) { res = r })
	tb.c.Net.RunFor(200 * time.Millisecond)
	victim := -1
	for i, in := range tb.c.Yoda {
		if in.FlowCount() > 0 {
			victim = i
			break
		}
	}
	if victim < 0 {
		t.Fatal("no instance owns the flow yet")
	}
	epochBefore := tb.c.Hybrid.Epoch()
	tb.c.HybridRefresh() // planned reconfig: bump + flush
	if tb.c.Hybrid.Epoch() == epochBefore {
		t.Fatal("epoch did not advance")
	}
	tb.c.Net.RunFor(100 * time.Millisecond) // let the flush writes land
	flows := tb.c.Yoda[victim].SnapshotFlows()
	if len(flows) != 1 || !flows[0].Persisted {
		t.Fatalf("flow not persisted after epoch flush: %+v", flows)
	}
	tb.c.KillYoda(victim)
	tb.c.Net.Schedule(600*time.Millisecond, func() {
		tb.c.L4.RemoveInstance(tb.c.Yoda[victim].IP())
	})
	tb.c.Net.RunFor(30 * time.Second)
	if res == nil || res.Err != nil {
		t.Fatalf("res = %+v", res)
	}
	if !bytes.Equal(res.Resp.Body, tb.objects["/100k"]) {
		t.Fatal("body corrupted: the successor mis-derived the pre-bump flow")
	}
	survivor := tb.c.Yoda[1-victim]
	if survivor.Recovered == 0 {
		t.Fatal("successor did not recover the pre-bump flow through the store")
	}
}

// BenchmarkStoreRoundTripsPerFlow measures the store economy headline as
// a first-class metric: TCPStore round trips per vanilla HTTP flow, in
// the paper-faithful mode and the hybrid derivation mode. bench.sh keys
// the two roundtrips/flow figures into BENCH_core.json.
func BenchmarkStoreRoundTripsPerFlow(b *testing.B) {
	const flows = 50
	for _, mode := range []string{"paper", "hybrid"} {
		b.Run("mode="+mode, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				c := cluster.New(27)
				if mode == "hybrid" {
					c.EnableHybrid(hybridSecret)
				}
				c.AddStoreServers(3, memcache.DefaultSimServerConfig())
				objects := map[string][]byte{"/tiny": []byte("ok")}
				for j := 1; j <= 3; j++ {
					c.AddBackend(fmt.Sprintf("srv-%d", j), objects, httpsim.DefaultServerConfig())
				}
				c.AddYodaN(2, core.DefaultConfig(), tcpstore.DefaultConfig())
				vip := c.AddVIP("mysite")
				c.InstallPolicy(vip, c.SimpleSplitRules("srv-1", "srv-2", "srv-3"), nil)
				vipHP := netsim.HostPort{IP: vip, Port: 80}
				done := 0
				for j := 0; j < flows; j++ {
					cl := c.NewClient(httpsim.DefaultClientConfig())
					cl.Get(vipHP, "/tiny", func(r *httpsim.FetchResult) {
						if r.Err == nil {
							done++
						}
					})
				}
				c.Net.RunFor(30 * time.Second)
				if done != flows {
					b.Fatalf("done = %d/%d", done, flows)
				}
				var rt uint64
				for _, in := range c.Yoda {
					rt += in.Store().Stats.RoundTrips
				}
				b.ReportMetric(float64(rt)/flows, "roundtrips/flow")
			}
		})
	}
}

// TestHybridRoundTripsHalved is the headline economy check: store round
// trips per vanilla HTTP flow in hybrid mode must be at least 2x lower
// than the paper-faithful mode on the same workload.
func TestHybridRoundTripsHalved(t *testing.T) {
	const N = 20
	run := func(hybrid bool) uint64 {
		var tb *testbed
		if hybrid {
			tb = newHybridTestbed(t, 26, 2)
		} else {
			tb = newTestbed(t, 26, 2)
		}
		done := 0
		for i := 0; i < N; i++ {
			cl := tb.c.NewClient(httpsim.DefaultClientConfig())
			cl.Get(tb.vipHP, "/tiny", func(r *httpsim.FetchResult) {
				if r.Err == nil {
					done++
				}
			})
		}
		tb.c.Net.RunFor(30 * time.Second)
		if done != N {
			t.Fatalf("done = %d/%d (hybrid=%v)", done, N, hybrid)
		}
		var rt uint64
		for _, in := range tb.c.Yoda {
			rt += in.Store().Stats.RoundTrips
		}
		return rt
	}
	paper := run(false)
	hybrid := run(true)
	if paper == 0 {
		t.Fatal("paper mode performed no store round trips; metric broken")
	}
	if hybrid*2 > paper {
		t.Fatalf("round trips: hybrid=%d paper=%d, want hybrid <= paper/2", hybrid, paper)
	}
	t.Logf("store round trips for %d flows: paper=%d hybrid=%d", N, paper, hybrid)
}
