package core

import (
	"testing"

	"repro/internal/netsim"
)

// Alloc budgets for the storage write path. These lock in the tentpole:
// once pools are warm, persisting flow state — key render, record encode,
// batch grouping, protocol encode, simulated TCP, server parse, engine
// store, reply parse, and barrier resolution — allocates nothing.

func TestAppendFlowKeyAllocFree(t *testing.T) {
	tuple := netsim.FourTuple{
		Src: netsim.HostPort{IP: 0xc0a80001, Port: 40000},
		Dst: netsim.HostPort{IP: 0x0a0000fe, Port: 80},
	}
	buf := make([]byte, 0, FlowKeyLen)
	allocs := testing.AllocsPerRun(200, func() {
		buf = AppendFlowKey(buf[:0], tuple)
	})
	if allocs != 0 {
		t.Fatalf("AppendFlowKey allocates %.1f objects/op, want 0", allocs)
	}
	if got := string(buf); got != FlowKey(tuple) {
		t.Fatalf("AppendFlowKey = %q, want %q", got, FlowKey(tuple))
	}
}

func TestAppendMarshalAllocFree(t *testing.T) {
	r := Record{
		Phase:       PhaseTunnel,
		Client:      netsim.HostPort{IP: 0xc0a80001, Port: 40000},
		VIP:         netsim.HostPort{IP: 0x0a0000fe, Port: 80},
		ClientISN:   1000,
		Server:      netsim.HostPort{IP: 0x0a000020, Port: 8080},
		SNAT:        netsim.HostPort{IP: 0x0a0000fe, Port: 20001},
		C:           5000,
		S:           9000,
		Delta:       ^uint32(3999),
		KeepAlive:   true,
		BackendName: "be-1",
		TLS:         &TLSState{ServerHelloLen: 1234},
	}
	buf := make([]byte, 0, 128)
	allocs := testing.AllocsPerRun(200, func() {
		buf = r.AppendMarshal(buf[:0])
	})
	if allocs != 0 {
		t.Fatalf("AppendMarshal allocates %.1f objects/op, want 0", allocs)
	}
	if got, want := string(buf), string(r.Marshal()); got != want {
		t.Fatalf("AppendMarshal bytes differ from Marshal: %q vs %q", got, want)
	}
}

// barrierWriteAllocs measures one full barrier write round trip at the
// given phase through warm pools.
func barrierWriteAllocs(t *testing.T, phase FlowPhase, bothTuples bool) float64 {
	t.Helper()
	n := netsim.New(42)
	in, f := benchStorageSetup(n)
	done := false
	commit := func() { done = true }
	write := func() {
		done = false
		in.writeBarrier(f, in.barrierEntries(f, phase, bothTuples), commit, nil)
		for !done {
			n.Step()
		}
	}
	for i := 0; i < 1024; i++ {
		write() // warm connection pools, engine nodes, op pools
	}
	// Cancelled timer records (op timeouts, TCP retransmits) recycle only
	// when the virtual clock passes their deadline. Drain the network so
	// every parked record returns to the event freelist; the measured runs
	// then draw from the pool instead of allocating — which is the actual
	// steady state, where writes arrive continuously and recycling keeps
	// pace with arming.
	n.RunUntilIdle(1 << 22)
	return testing.AllocsPerRun(100, write)
}

func TestBarrierWriteStorageAAllocFree(t *testing.T) {
	if allocs := barrierWriteAllocs(t, PhaseConn, false); allocs != 0 {
		t.Fatalf("storage-a barrier write allocates %.1f objects/op, want 0", allocs)
	}
}

func TestBarrierWriteStorageBAllocFree(t *testing.T) {
	if allocs := barrierWriteAllocs(t, PhaseTunnel, true); allocs != 0 {
		t.Fatalf("storage-b barrier write allocates %.1f objects/op, want 0", allocs)
	}
}
