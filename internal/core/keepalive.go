package core

import (
	"bytes"
	"strconv"
	"strings"
	"time"

	"repro/internal/httpsim"
	"repro/internal/netsim"
	"repro/internal/rules"
)

// Keep-alive (HTTP/1.1) support, §5.2 of the paper: a single client
// connection can carry multiple requests that may match different rules
// and therefore different backends. The instance keeps inspecting client
// payloads in the tunneling phase; when a request selects a new backend
// it closes the old server connection, dials the new one reusing the
// client's current sequence position, rebases the translation delta, and
// updates the mapping in TCPStore.
//
// To keep responses in order (the paper's pipelining requirement),
// requests are framed and forwarded one at a time: request N+1 is held
// until response N has been observed complete on the return path.

// kaRequest is one framed, not-yet-forwarded client request.
type kaRequest struct {
	raw      []byte
	startSeq uint32
	req      *httpsim.Request
}

// kaState is the inspected-tunnel bookkeeping attached to keep-alive
// flows.
type kaState struct {
	held    []byte // in-order client bytes not yet framed into a request
	heldSeq uint32 // client sequence number of held[0]
	queue   []kaRequest
	// streamBytes counts bytes of the in-flight request's body that have
	// not arrived yet and should be forwarded straight through (the
	// request was selected off its header; its tail needs no holding).
	streamBytes int

	respOutstanding int // responses owed before the next request may go

	// Response framing over the raw (untranslated) server byte stream.
	respBuf       []byte
	serverNextSeq uint32
	serverOOO     map[uint32][]byte

	// Backend switching. committing marks the window where the new
	// backend's SYN-ACK arrived and the rewritten flow record is inside
	// the write barrier: retransmitted SYN-ACKs must not re-enter the
	// commit.
	switching  bool
	committing bool
	pendReq    *kaRequest

	// A client FIN that must be forwarded once all held data flushes.
	finPending bool
	finSeq     uint32
	finAck     uint32
}

// initKeepAlive is called when a keep-alive flow enters the tunnel phase.
// It returns the bytes the connection phase should forward to the first
// backend: only the first request — any pipelined requests already
// buffered must be held and individually re-selected, otherwise they
// would all land on the first request's backend (§5.2).
func (in *Instance) initKeepAlive(f *flow) []byte {
	ka := &kaState{
		serverNextSeq:   f.s + 1,
		serverOOO:       make(map[uint32][]byte),
		respOutstanding: 1,
	}
	f.ka = ka
	frames, consumed := frameRequests(f.reqBuf)
	if len(frames) == 0 {
		// The first request's header is complete (selection ran) but its
		// body is still arriving: stream the rest through as it lands.
		ka.heldSeq = f.clientISN + 1 + uint32(len(f.reqBuf))
		ka.streamBytes = firstRequestLen(f.reqBuf) - len(f.reqBuf)
		return f.reqBuf
	}
	first := frames[0]
	seq := f.clientISN + 1 + uint32(len(first.raw))
	for _, fr := range frames[1:] {
		fr.startSeq = seq
		seq += uint32(len(fr.raw))
		ka.queue = append(ka.queue, fr)
	}
	ka.held = append([]byte(nil), f.reqBuf[consumed:]...)
	ka.heldSeq = f.clientISN + 1 + uint32(consumed)
	return first.raw
}

// firstRequestLen returns the full wire length (header + declared body)
// of the request at the front of buf. The header must be complete.
func firstRequestLen(buf []byte) int {
	req, err := httpsim.ParseRequestHeader(buf)
	if err != nil || req == nil {
		return len(buf)
	}
	total := headerBlockLen(buf)
	if cl := req.Header("Content-Length"); cl != "" {
		if n, err := strconv.Atoi(cl); err == nil && n > 0 {
			total += n
		}
	}
	return total
}

// frameRequests splits buf into complete HTTP request frames, returning
// the frames and the number of bytes they consume.
func frameRequests(buf []byte) ([]kaRequest, int) {
	var frames []kaRequest
	consumed := 0
	for {
		rest := buf[consumed:]
		req, err := httpsim.ParseRequestHeader(rest)
		if err != nil || req == nil {
			return frames, consumed
		}
		headerLen := headerBlockLen(rest)
		bodyLen := 0
		if cl := req.Header("Content-Length"); cl != "" {
			n, cerr := strconv.Atoi(cl)
			if cerr != nil || n < 0 {
				return frames, consumed
			}
			bodyLen = n
		}
		total := headerLen + bodyLen
		if len(rest) < total {
			return frames, consumed
		}
		frames = append(frames, kaRequest{
			raw: append([]byte(nil), rest[:total]...),
			req: req,
		})
		consumed += total
	}
}

// headerBlockLen returns the length of the header block including the
// terminating CRLFCRLF. The caller has already verified it is complete.
func headerBlockLen(buf []byte) int {
	idx := bytes.Index(buf, []byte("\r\n\r\n"))
	return idx + 4
}

// kaFromClient processes a client packet on an inspected keep-alive flow.
func (in *Instance) kaFromClient(f *flow, pkt *netsim.Packet) {
	ka := f.ka
	if len(pkt.Payload) > 0 {
		in.kaAssembleClient(f, pkt.Seq, pkt.Payload)
		in.kaFrameAndFlush(f)
	} else if !pkt.Flags.Has(netsim.FlagFIN) && !ka.switching {
		// Bare ACK: translate and pass through so the server's
		// retransmission timers stay quiet. While a backend switch is in
		// flight there is no established server connection to ACK — the
		// segment would only draw a RST from the new backend's listener —
		// so those are dropped (they carry no information the new backend
		// needs).
		in.l4.SendViaSNAT(in.net, &netsim.Packet{
			Src: f.snat, Dst: f.server,
			Flags: pkt.Flags, Seq: pkt.Seq, Ack: pkt.Ack - f.delta, Window: pkt.Window,
		}, in.IP())
	}
	if pkt.Flags.Has(netsim.FlagFIN) {
		ka.finPending = true
		ka.finSeq = pkt.SeqEnd() - 1 // sequence the FIN occupies
		ka.finAck = pkt.Ack
		in.kaMaybeForwardFin(f)
	}
}

// kaAssembleClient merges client payload into the held buffer in order.
func (in *Instance) kaAssembleClient(f *flow, seq uint32, data []byte) {
	expected := f.ka.heldSeq + uint32(len(f.ka.held))
	if seqDiff(expected, seq) > 0 {
		skip := expected - seq
		if uint32(len(data)) <= skip {
			return // duplicate
		}
		data = data[skip:]
		seq = expected
	}
	if seq != expected {
		f.ooo[seq] = append([]byte(nil), data...)
		return
	}
	f.ka.held = append(f.ka.held, data...)
	for {
		next := f.ka.heldSeq + uint32(len(f.ka.held))
		d, ok := f.ooo[next]
		if !ok {
			break
		}
		delete(f.ooo, next)
		f.ka.held = append(f.ka.held, d...)
	}
	f.clientNextSeq = f.ka.heldSeq + uint32(len(f.ka.held))
}

// kaFrameAndFlush frames held bytes into requests and forwards as many as
// ordering allows.
func (in *Instance) kaFrameAndFlush(f *flow) {
	ka := f.ka
	// Pass through the tail of an in-flight streamed request first.
	if ka.streamBytes > 0 && len(ka.held) > 0 {
		n := ka.streamBytes
		if n > len(ka.held) {
			n = len(ka.held)
		}
		in.forwardClientBytes(f, ka.heldSeq, ka.held[:n])
		ka.held = append([]byte(nil), ka.held[n:]...)
		ka.heldSeq += uint32(n)
		ka.streamBytes -= n
	}
	frames, consumed := frameRequests(ka.held)
	if consumed > 0 {
		for i := range frames {
			frames[i].startSeq = ka.heldSeq
			ka.heldSeq += uint32(len(frames[i].raw))
			// recompute per frame: startSeq advances by each frame's size
		}
		// The loop above advanced heldSeq frame by frame; fix startSeq to
		// be each frame's own beginning.
		seq := frames[0].startSeq
		for i := range frames {
			frames[i].startSeq = seq
			seq += uint32(len(frames[i].raw))
		}
		ka.held = append([]byte(nil), ka.held[consumed:]...)
		ka.queue = append(ka.queue, frames...)
	}
	in.kaFlush(f)
}

// kaFlush forwards the next queued request if no response is outstanding.
func (in *Instance) kaFlush(f *flow) {
	ka := f.ka
	if ka.switching || ka.respOutstanding > 0 || len(ka.queue) == 0 {
		in.kaMaybeForwardFin(f)
		return
	}
	next := ka.queue[0]
	ka.queue = ka.queue[1:]
	engine, ok := in.engines[f.vip.IP]
	if !ok {
		in.reject(f, 503, "vip not assigned to this instance")
		return
	}
	decision := engine.Select(next.req, in.rng.Float64(), in.info)
	in.CPU.Charge(in.net.Now(), time.Duration(decision.Scanned)*in.cfg.LookupPerRule)
	if !decision.OK {
		in.reject(f, 503, "no rule matched")
		return
	}
	if decision.Backend.Name == f.backendName {
		ka.respOutstanding++
		in.forwardClientBytes(f, next.startSeq, next.raw)
		in.kaFlush(f)
		return
	}
	in.kaSwitchBackend(f, next, decision.Backend)
}

// kaSwitchBackend closes the current server connection and redials the
// newly selected backend, preserving the client's sequence position.
func (in *Instance) kaSwitchBackend(f *flow, next kaRequest, backend rules.Backend) {
	in.Reselections++
	ka := f.ka
	// Abort the old server connection and clear its SNAT binding.
	in.l4.SendViaSNAT(in.net, &netsim.Packet{
		Src: f.snat, Dst: f.server,
		Flags: netsim.FlagRST, Seq: next.startSeq, Ack: f.s + 1,
	}, in.IP())
	oldServerTuple := f.serverTuple()
	in.flows.del(oldServerTuple, f)
	if f.persisted {
		in.store.Delete(in.flowKey(oldServerTuple), nil)
	}
	in.l4.ClearSNAT(oldServerTuple)
	in.releaseSNATPort(f.snat.Port)

	// Releasing first means a switch can always reclaim its own port even
	// when the range is otherwise full.
	port, ok := in.allocSNATPort()
	if !ok {
		in.statsFor(f.vip.IP).SNATExhausted++
		in.reject(f, 503, "snat ports exhausted")
		return
	}
	f.server = backend.Addr
	f.backendName = backend.Name
	f.snat = netsim.HostPort{IP: f.vip.IP, Port: port}
	in.flows.put(f.serverTuple(), f)
	ka.switching = true
	ka.pendReq = &next
	f.dialTries = 0
	in.kaSendSwitchSyn(f)
}

func (in *Instance) kaSendSwitchSyn(f *flow) {
	ka := f.ka
	in.l4.SendViaSNAT(in.net, &netsim.Packet{
		Src: f.snat, Dst: f.server,
		Flags:  netsim.FlagSYN,
		Seq:    ka.pendReq.startSeq - 1, // handshake consumes one seq unit
		Window: 1 << 20,
	}, in.IP())
	f.dialTries++
	f.dialTimer.Stop()
	f.dialTimer = in.net.Schedule(3*time.Second, func() {
		if !ka.switching || ka.committing || in.flows.get(f.clientTuple()) != f {
			return
		}
		if f.dialTries >= 3 {
			in.reject(f, 503, "backend unreachable")
			return
		}
		in.kaSendSwitchSyn(f)
	})
}

// kaCompleteSwitch finishes a backend switch on the new server's SYN-ACK.
func (in *Instance) kaCompleteSwitch(f *flow, pkt *netsim.Packet) {
	ka := f.ka
	if ka.committing || pkt.Ack != ka.pendReq.startSeq {
		return // already mid-commit, or stale
	}
	f.dialTimer.Stop()
	f.s = pkt.Seq
	// Rebase translation: the client has already received bytes up to
	// toClientNext in its own view; the new server starts at S+1.
	f.delta = f.toClientNext - (f.s + 1)
	ka.serverNextSeq = f.s + 1
	ka.respBuf = nil
	ka.serverOOO = make(map[uint32][]byte)
	ka.committing = true
	// Rewrite the decoupled state so recovery lands on the new backend —
	// before the ACK and request replay, the same persist-before-ACK rule
	// the first dial obeys (storage-b applied to re-selection).
	in.writeBarrier(f, in.barrierEntries(f, PhaseTunnel, true), func() {
		if !ka.switching {
			return
		}
		// ACK and replay the pending request.
		in.l4.SendViaSNAT(in.net, &netsim.Packet{
			Src: f.snat, Dst: f.server,
			Flags: netsim.FlagACK,
			Seq:   ka.pendReq.startSeq, Ack: f.s + 1,
			Window: 1 << 20,
		}, in.IP())
		in.forwardClientBytes(f, ka.pendReq.startSeq, ka.pendReq.raw)
		ka.respOutstanding++
		ka.switching = false
		ka.committing = false
		ka.pendReq = nil
	}, func(error) {
		ka.committing = false
		in.reject(f, 503, "flow state not persisted")
	})
}

// kaFromServer processes a server packet on an inspected keep-alive flow.
func (in *Instance) kaFromServer(f *flow, pkt *netsim.Packet) {
	ka := f.ka
	if ka.switching && pkt.Flags.Has(netsim.FlagSYN|netsim.FlagACK) {
		in.kaCompleteSwitch(f, pkt)
		return
	}
	if pkt.Flags.Has(netsim.FlagRST) {
		// Backend aborted mid-connection; propagate and drop state.
		in.net.Send(&netsim.Packet{
			Src: f.vip, Dst: f.client,
			Flags: netsim.FlagRST, Seq: pkt.Seq + f.delta, Ack: pkt.Ack,
		})
		in.teardown(f, true)
		return
	}
	if pkt.Flags.Has(netsim.FlagSYN) {
		// Retransmitted SYN-ACK of the established connection: re-ACK.
		in.l4.SendViaSNAT(in.net, &netsim.Packet{
			Src: f.snat, Dst: f.server,
			Flags: netsim.FlagACK,
			Seq:   f.clientISN + 1, Ack: f.s + 1,
		}, in.IP())
		return
	}
	if pkt.Flags.Has(netsim.FlagFIN) {
		f.serverFin = true
	}
	if len(pkt.Payload) > 0 {
		in.kaAssembleServer(f, pkt.Seq, pkt.Payload)
	}
	end := pkt.SeqEnd() + f.delta
	if seqDiff(end, f.toClientNext) > 0 {
		f.toClientNext = end
	}
	in.net.Send(&netsim.Packet{
		Src: f.vip, Dst: f.client,
		Flags: pkt.Flags, Seq: pkt.Seq + f.delta, Ack: pkt.Ack,
		Window: pkt.Window, Payload: pkt.Payload,
	})
	in.maybeFinish(f)
}

// kaAssembleServer tracks the raw server byte stream to detect response
// boundaries.
func (in *Instance) kaAssembleServer(f *flow, seq uint32, data []byte) {
	ka := f.ka
	if seqDiff(ka.serverNextSeq, seq) > 0 {
		skip := ka.serverNextSeq - seq
		if uint32(len(data)) <= skip {
			return
		}
		data = data[skip:]
		seq = ka.serverNextSeq
	}
	if seq != ka.serverNextSeq {
		ka.serverOOO[seq] = append([]byte(nil), data...)
		return
	}
	ka.respBuf = append(ka.respBuf, data...)
	ka.serverNextSeq += uint32(len(data))
	for {
		d, ok := ka.serverOOO[ka.serverNextSeq]
		if !ok {
			break
		}
		delete(ka.serverOOO, ka.serverNextSeq)
		ka.respBuf = append(ka.respBuf, d...)
		ka.serverNextSeq += uint32(len(d))
	}
	in.kaConsumeResponses(f)
}

// kaConsumeResponses pops complete responses off the buffer, releasing
// held requests as each one finishes.
func (in *Instance) kaConsumeResponses(f *flow) {
	ka := f.ka
	for {
		n := frameResponseLen(ka.respBuf)
		if n <= 0 {
			return
		}
		ka.respBuf = append([]byte(nil), ka.respBuf[n:]...)
		if ka.respOutstanding > 0 {
			ka.respOutstanding--
		}
		if ka.respOutstanding == 0 {
			in.kaFlush(f)
		}
	}
}

// frameResponseLen returns the wire length of the first complete HTTP
// response in buf, or 0 if incomplete/unparseable-yet.
func frameResponseLen(buf []byte) int {
	idx := bytes.Index(buf, []byte("\r\n\r\n"))
	if idx < 0 {
		return 0
	}
	head := buf[:idx]
	total := idx + 4
	// Walk header lines without converting the buffer to a string: the hot
	// response path runs this on every ACKed segment.
	for len(head) > 0 {
		eol := bytes.Index(head, []byte("\r\n"))
		var line []byte
		if eol < 0 {
			line, head = head, nil
		} else {
			line, head = head[:eol], head[eol+2:]
		}
		colon := bytes.IndexByte(line, ':')
		if colon < 0 {
			continue
		}
		if strings.EqualFold(string(bytes.TrimSpace(line[:colon])), "Content-Length") {
			n, err := strconv.Atoi(string(bytes.TrimSpace(line[colon+1:])))
			if err != nil || n < 0 {
				return 0
			}
			total += n
			break
		}
	}
	if len(buf) < total {
		return 0
	}
	return total
}

// kaMaybeForwardFin forwards a deferred client FIN once all held requests
// have flushed.
func (in *Instance) kaMaybeForwardFin(f *flow) {
	ka := f.ka
	if !ka.finPending || len(ka.queue) > 0 || len(ka.held) > 0 || ka.switching {
		return
	}
	ka.finPending = false
	f.clientFin = true
	in.l4.SendViaSNAT(in.net, &netsim.Packet{
		Src: f.snat, Dst: f.server,
		Flags: netsim.FlagFIN | netsim.FlagACK,
		Seq:   ka.finSeq, Ack: ka.finAck - f.delta,
	}, in.IP())
	in.maybeFinish(f)
}
