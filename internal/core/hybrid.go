package core

import (
	"repro/internal/netsim"
	"repro/internal/stateless"
	"repro/internal/tcp"
)

// Hybrid stateful/stateless recovery (Cohen et al., "LB Scalability: the
// Right Balance Between Being Stateful and Stateless"): most flows never
// touch TCPStore because every persisted field is a deterministic
// function of the 5-tuple, the table secret, and the current mapping
// epoch. The mechanics:
//
//   - storage-a is skipped outright: C is the tuple hash every instance
//     computes, and ClientISN is one less than the first retransmitted
//     payload byte. TLS keys are persisted at the tlsAdvance barrier.
//   - storage-b dry-runs the derivation against the state actually
//     installed (hybridDerivable); only mismatches — the residue — are
//     written. Matching flows run their commit synchronously.
//   - recovery classifies orphans by direction. Backend-side knocks
//     (destination port carries a SNAT cookie) still consult the store,
//     but a miss under a current-epoch cookie is dropped WITHOUT a RST:
//     the state lives on the client side of the flow and the client-side
//     successor's repair write will be there for the backend's next
//     retransmission. Client-side orphans derive the dead owner from the
//     epoch entry, confirm tunnels via a parked backend knock when one
//     exists, and otherwise fall back to the store; a clean miss there
//     means the flow was never persisted, i.e. it is exactly the
//     derivable population, and is rebuilt from the packet in hand.
//   - every derivation-based tunnel install immediately repair-writes
//     the derived record under both tuple orientations, so the
//     backend-side successor converges through the store exactly as in
//     the paper's protocol.
//
// Soundness of derivation against the *current* epoch entry: planned
// reconfiguration bumps the epoch and then flushes unpersisted flows
// (FlushUnpersisted), so an unpersisted orphan is always established
// under the current entry; instance death does not bump. The residual
// window — an owner dying after a bump before its flush write lands — is
// one store round trip wide and degrades to the paper's store-miss
// behaviour, never to a mis-derivation toward a dead backend, because
// flows whose owner is absent from the current entry produce no
// dead-owner candidate and take the store path.

// hybridPreferredPort returns the cookie-coded SNAT port the derivation
// layer predicts for a new flow on this instance.
func (in *Instance) hybridPreferredPort(f *flow) (uint16, bool) {
	if in.cfg.Hybrid == nil {
		return 0, false
	}
	return in.cfg.Hybrid.PreferredPort(in.IP(), f.clientTuple())
}

// hybridDerivable reports whether the flow's tunnel state is exactly
// what the stateless layer derives for its tuple — the storage-b records
// are then redundant. Any deviation (TLS, recovered history, sticky or
// health-driven selection, port-collision fallback, a stale mux routing
// the tuple to a non-owner) fails a comparison and keeps the flow
// persisted; the classification compares outcomes, not causes.
func (in *Instance) hybridDerivable(f *flow) bool {
	t := in.cfg.Hybrid
	if t == nil || f.tls != nil || f.recovered || f.persisted {
		return false
	}
	ct := f.clientTuple()
	if owner, ok := t.Owner(f.vip.IP, ct); !ok || owner != in.IP() {
		return false
	}
	b, ok := t.DeriveBackend(f.vip.IP, ct)
	if !ok || b.Addr != f.server || b.Name != f.backendName {
		return false
	}
	if pref, ok := t.PreferredPort(in.IP(), ct); !ok || pref != f.snat.Port {
		return false
	}
	if tcp.DeterministicISN(t.ISNKey(), f.server, f.snat) != f.s {
		return false
	}
	return true
}

// hybridRecover handles an orphan tuple's freshly created pending queue
// in hybrid mode. It either resolves the queue from derivation alone or
// hands it to one of the store-backed paths below; the caller is done
// either way.
func (in *Instance) hybridRecover(tuple netsim.FourTuple, q *pendingQueue) {
	t := in.cfg.Hybrid
	// Backend-side knock: the destination port decodes as a SNAT cookie.
	if _, current, ok := t.DecodeCookie(tuple.Dst.Port); ok {
		in.hybridServerGet(tuple, q, current)
		return
	}
	// Client-side orphan. A tuple whose rendezvous chain has no dead
	// prefix belongs to an alive owner (us, or stale routing): nothing to
	// derive, paper semantics apply.
	in.candScratch = t.DeadOwnerCandidates(tuple.Dst.IP, tuple, in.candScratch[:0])
	cands := in.candScratch
	if len(cands) == 0 {
		in.paperGet(tuple, q)
		return
	}
	b, bok := t.DeriveBackend(tuple.Dst.IP, tuple)
	if !bok {
		// Underivable pool: every flow of this VIP was persisted anyway.
		in.paperGet(tuple, q)
		return
	}
	// Knock check: a pending queue parked on a candidate's predicted
	// server tuple is the backend knocking for exactly the flow this
	// tuple describes — an established tunnel, confirmed without a store
	// read.
	for _, d := range cands {
		port, ok := t.PreferredPort(d, tuple)
		if !ok {
			continue
		}
		st := netsim.FourTuple{Src: b.Addr, Dst: netsim.HostPort{IP: tuple.Dst.IP, Port: port}}
		if kq, found := in.pending[st]; found {
			in.hybridKnockConfirm(tuple, q, st, kq, b, port)
			return
		}
	}
	port, portOK := uint16(0), false
	if len(cands) == 1 {
		port, portOK = t.PreferredPort(cands[0], tuple)
	}
	in.hybridClientGet(tuple, q, b, port, portOK)
}

// resolveQueue detaches a pending queue, returning its packets; ok=false
// when the queue already expired or the instance died.
func (in *Instance) resolveQueue(tuple netsim.FourTuple, q *pendingQueue) ([]*netsim.Packet, bool) {
	if in.dead || in.pending[tuple] != q {
		return nil, false
	}
	queued := q.pkts
	delete(in.pending, tuple)
	in.pendingTotal -= len(queued)
	q.expire.Stop()
	return queued, true
}

// dispatchQueued replays a resolved queue into the flow table.
func (in *Instance) dispatchQueued(queued []*netsim.Packet) {
	for _, p := range queued {
		if cur := in.flows.get(p.Tuple()); cur != nil {
			in.dispatch(cur, p)
		}
	}
}

// paperGet is the paper-faithful store lookup: install on hit, RST the
// sender on miss (recoverFlow's behaviour, shared by the hybrid paths
// that fall through to it).
func (in *Instance) paperGet(tuple netsim.FourTuple, q *pendingQueue) {
	in.store.Get(in.flowKey(tuple), func(value []byte, ok bool, err error) {
		queued, live := in.resolveQueue(tuple, q)
		if !live {
			return
		}
		if !ok || err != nil {
			in.LookupMisses++
			in.rstQueued(queued)
			return
		}
		rec, derr := UnmarshalRecord(value)
		if derr != nil {
			in.LookupMisses++
			return
		}
		if f := in.installRecovered(rec); f != nil {
			in.Recovered++
			in.dispatchQueued(queued)
		}
	})
}

// rstQueued resets the sender of a missed queue's first packet.
func (in *Instance) rstQueued(queued []*netsim.Packet) {
	if len(queued) == 0 || queued[0].Flags.Has(netsim.FlagRST) {
		return
	}
	p := queued[0]
	in.net.Send(&netsim.Packet{
		Src: p.Dst, Dst: p.Src,
		Flags: netsim.FlagRST | netsim.FlagACK,
		Seq:   p.Ack, Ack: p.SeqEnd(),
	})
}

// hybridServerGet consults the store for a backend-side knock. A hit is
// the paper path (residue records and client-side repair writes land
// here). A miss under a current-epoch cookie is dropped WITHOUT a RST —
// the flow may be unpersisted, with its state derivable only from the
// client side; answering RST would kill the backend connection before
// the client-side successor can repair-write it. Stale or tail-range
// ports keep the paper's RST (those flows were persisted; a miss means
// the record is genuinely gone).
func (in *Instance) hybridServerGet(tuple netsim.FourTuple, q *pendingQueue, current bool) {
	in.store.Get(in.flowKey(tuple), func(value []byte, ok bool, err error) {
		queued, live := in.resolveQueue(tuple, q)
		if !live {
			return
		}
		if ok && err == nil {
			rec, derr := UnmarshalRecord(value)
			if derr != nil {
				in.LookupMisses++
				return
			}
			if f := in.installRecovered(rec); f != nil {
				in.Recovered++
				in.dispatchQueued(queued)
			}
			return
		}
		if current {
			in.SuppressedOrphans++
			return
		}
		in.LookupMisses++
		in.rstQueued(queued)
	})
}

// hybridClientGet consults the store for a client-side orphan whose
// rendezvous chain passes through dead instances. A hit is the paper
// path. A clean miss means the flow was never persisted — exactly the
// derivable population — and is classified by what the client has
// acknowledged: nothing beyond the SYN-ACK, with payload in hand, and
// the connection phase replays from the retransmitted request; data
// acknowledged, with a single dead-owner candidate, and the tunnel state
// is derived outright and repair-written. Ambiguous cases (bare ACK,
// multiple candidates) are dropped quietly — the sender's retransmission
// or a backend knock re-triggers classification with more evidence.
func (in *Instance) hybridClientGet(tuple netsim.FourTuple, q *pendingQueue, b stateless.Backend, port uint16, portOK bool) {
	in.store.Get(in.flowKey(tuple), func(value []byte, ok bool, err error) {
		queued, live := in.resolveQueue(tuple, q)
		if !live {
			return
		}
		if ok && err == nil {
			rec, derr := UnmarshalRecord(value)
			if derr != nil {
				in.LookupMisses++
				return
			}
			if f := in.installRecovered(rec); f != nil {
				in.Recovered++
				in.dispatchQueued(queued)
			}
			return
		}
		p0 := queued[0]
		if p0.Flags.Has(netsim.FlagRST) {
			in.LookupMisses++
			return
		}
		c := isnHash(tuple.Src, tuple.Dst)
		if p0.Ack == c+1 {
			if len(p0.Payload) > 0 {
				if f := in.installDerivedConn(tuple, p0.Seq); f != nil {
					in.DerivedRecoveries++
					in.dispatchQueued(queued)
				}
				return
			}
			in.SuppressedOrphans++
			return
		}
		if !portOK {
			in.SuppressedOrphans++
			return
		}
		f := in.installDerivedTunnel(tuple, b, port, p0.Seq)
		if f == nil {
			in.LookupMisses++
			return
		}
		in.DerivedRecoveries++
		in.hybridRepair(f, queued, nil)
	})
}

// hybridKnockConfirm resolves a client-side orphan whose predicted
// server tuple already has a backend knocking: install the derived
// tunnel, repair-write it, then replay both queues.
func (in *Instance) hybridKnockConfirm(tuple netsim.FourTuple, q *pendingQueue, st netsim.FourTuple, kq *pendingQueue, b stateless.Backend, port uint16) {
	queued, live := in.resolveQueue(tuple, q)
	if !live {
		return
	}
	// Detaching the knock queue cancels its in-flight store lookup (the
	// callback checks queue identity).
	knocks, _ := in.resolveQueue(st, kq)
	f := in.installDerivedTunnel(tuple, b, port, queued[0].Seq)
	if f == nil {
		in.LookupMisses++
		return
	}
	in.DerivedRecoveries++
	in.hybridRepair(f, queued, knocks)
}

// hybridRepair persists a derived flow's record under both tuple
// orientations, then replays the queues. The write-before-dispatch order
// is what lets the backend-side successor converge: its next lookup for
// the server tuple hits this record.
func (in *Instance) hybridRepair(f *flow, queued, knocks []*netsim.Packet) {
	in.writeBarrier(f, in.barrierEntries(f, PhaseTunnel, true), func() {
		in.dispatchQueued(queued)
		in.dispatchQueued(knocks)
	}, nil)
}

// installDerivedConn rebuilds a connection-phase flow from the packet in
// hand: the client's first payload byte pins ClientISN, the tuple hash
// pins C. The replayed request re-runs selection with the table draw, so
// the flow converges onto the same backend the dead owner would have
// picked (and classifies itself at its own storage-b).
func (in *Instance) installDerivedConn(ct netsim.FourTuple, firstSeq uint32) *flow {
	if existing := in.flows.get(ct); existing != nil {
		return existing
	}
	now := in.net.Now()
	f := &flow{
		vip:           ct.Dst,
		client:        ct.Src,
		clientISN:     firstSeq - 1,
		c:             isnHash(ct.Src, ct.Dst),
		clientNextSeq: firstSeq,
		state:         stateConn,
		ooo:           make(map[uint32][]byte),
		recovered:     true,
		synAckSent:    true,
		start:         now,
		lastActive:    now,
	}
	f.toClientNext = f.c + 1
	in.flows.put(ct, f)
	in.armIdle(f)
	return f
}

// installDerivedTunnel rebuilds a tunnel-phase flow entirely from the
// derivation layer: backend and SNAT port from the epoch table, S from
// the deterministic backend ISN, Delta = C − S. Mirrors
// installRecovered's tunnel branch (keep-alive inspection is not
// resumable and is dropped the same way).
func (in *Instance) installDerivedTunnel(ct netsim.FourTuple, b stateless.Backend, port uint16, firstSeq uint32) *flow {
	if existing := in.flows.get(ct); existing != nil {
		return existing
	}
	snat := netsim.HostPort{IP: ct.Dst.IP, Port: port}
	c := isnHash(ct.Src, ct.Dst)
	s := tcp.DeterministicISN(in.cfg.Hybrid.ISNKey(), b.Addr, snat)
	now := in.net.Now()
	f := &flow{
		vip:           ct.Dst,
		client:        ct.Src,
		clientISN:     firstSeq - 1,
		c:             c,
		s:             s,
		delta:         c - s,
		clientNextSeq: firstSeq,
		server:        b.Addr,
		snat:          snat,
		backendName:   b.Name,
		state:         stateTunnel,
		ooo:           make(map[uint32][]byte),
		recovered:     true,
		synAckSent:    true,
		toClientNext:  c + 1,
		start:         now,
		lastActive:    now,
	}
	in.flows.put(ct, f)
	in.flows.put(f.serverTuple(), f)
	in.armIdle(f)
	return f
}

// FlowInfo is a read-only snapshot of one live flow, for tests and
// diagnostics (the differential oracle compares these against the
// stateless derivation).
type FlowInfo struct {
	Client, VIP, Server, SNAT netsim.HostPort
	C, S, Delta               uint32
	Persisted, Recovered      bool
}

// SnapshotFlows returns a snapshot of every live flow.
func (in *Instance) SnapshotFlows() []FlowInfo {
	var out []FlowInfo
	in.flows.forEach(func(f *flow) {
		out = append(out, FlowInfo{
			Client: f.client, VIP: f.vip, Server: f.server, SNAT: f.snat,
			C: f.c, S: f.s, Delta: f.delta,
			Persisted: f.persisted, Recovered: f.recovered,
		})
	})
	return out
}

// FlushUnpersisted writes every still-unpersisted flow's record to the
// store under its current phase. The controller calls this on live
// instances immediately after an epoch bump so the invariant holds that
// every unpersisted flow in the system was established under the
// current epoch — flows that predate the bump become ordinary persisted
// residue and recover through the store, never through a stale
// derivation. Returns the number of flows flushed.
func (in *Instance) FlushUnpersisted() int {
	if in.cfg.Hybrid == nil || in.dead {
		return 0
	}
	var victims []*flow
	in.flows.forEach(func(f *flow) {
		if !f.persisted {
			victims = append(victims, f)
		}
	})
	for _, f := range victims {
		phase, both := PhaseConn, false
		if f.state == stateTunnel || f.state == stateKATunnel {
			phase, both = PhaseTunnel, true
		}
		in.writeBarrier(f, in.barrierEntries(f, phase, both), func() {}, nil)
	}
	return len(victims)
}
