package core

import (
	"testing"
	"testing/quick"

	"repro/internal/netsim"
)

func TestRecordRoundTripConnPhase(t *testing.T) {
	r := &Record{
		Phase:     PhaseConn,
		Client:    netsim.HostPort{IP: netsim.IPv4(100, 1, 2, 3), Port: 41000},
		VIP:       netsim.HostPort{IP: netsim.IPv4(10, 255, 0, 1), Port: 80},
		ClientISN: 0xDEADBEEF,
	}
	got, err := UnmarshalRecord(r.Marshal())
	if err != nil {
		t.Fatal(err)
	}
	if *got != *r {
		t.Fatalf("round trip: %+v != %+v", got, r)
	}
}

func TestRecordRoundTripTunnelPhase(t *testing.T) {
	r := &Record{
		Phase:       PhaseTunnel,
		Client:      netsim.HostPort{IP: netsim.IPv4(100, 1, 2, 3), Port: 41000},
		VIP:         netsim.HostPort{IP: netsim.IPv4(10, 255, 0, 1), Port: 80},
		ClientISN:   1,
		Server:      netsim.HostPort{IP: netsim.IPv4(10, 0, 2, 9), Port: 80},
		SNAT:        netsim.HostPort{IP: netsim.IPv4(10, 255, 0, 1), Port: 22001},
		C:           0xCAFEBABE,
		S:           0x12345678,
		Delta:       0xCAFEBABE - 0x12345678,
		KeepAlive:   true,
		BackendName: "srv-7",
	}
	got, err := UnmarshalRecord(r.Marshal())
	if err != nil {
		t.Fatal(err)
	}
	if *got != *r {
		t.Fatalf("round trip: %+v != %+v", got, r)
	}
}

func TestRecordRoundTripProperty(t *testing.T) {
	f := func(cip, vip, sip uint32, cport, vport, sport, snat uint16,
		isn, cc, ss uint32, ka bool, name string) bool {
		r := &Record{
			Phase:       PhaseTunnel,
			Client:      netsim.HostPort{IP: netsim.IP(cip), Port: cport},
			VIP:         netsim.HostPort{IP: netsim.IP(vip), Port: vport},
			ClientISN:   isn,
			Server:      netsim.HostPort{IP: netsim.IP(sip), Port: sport},
			SNAT:        netsim.HostPort{IP: netsim.IP(vip), Port: snat},
			C:           cc,
			S:           ss,
			Delta:       cc - ss,
			KeepAlive:   ka,
			BackendName: name,
		}
		got, err := UnmarshalRecord(r.Marshal())
		return err == nil && *got == *r
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestUnmarshalRejectsGarbage(t *testing.T) {
	cases := [][]byte{
		nil,
		{},
		{0x00},
		{recordMagic},
		{recordMagic, 99},                // bad phase
		{recordMagic, byte(PhaseConn)},   // truncated
		{recordMagic, byte(PhaseTunnel)}, // truncated
	}
	for i, c := range cases {
		if _, err := UnmarshalRecord(c); err == nil {
			t.Errorf("case %d: no error", i)
		}
	}
	// Truncated mid-record.
	good := (&Record{Phase: PhaseTunnel, BackendName: "abc"}).Marshal()
	for cut := 1; cut < len(good); cut++ {
		if _, err := UnmarshalRecord(good[:cut]); err == nil {
			t.Errorf("truncation at %d accepted", cut)
		}
	}
}

func TestFlowKeyDistinct(t *testing.T) {
	a := netsim.FourTuple{
		Src: netsim.HostPort{IP: netsim.IPv4(1, 2, 3, 4), Port: 10},
		Dst: netsim.HostPort{IP: netsim.IPv4(10, 255, 0, 1), Port: 80},
	}
	b := a
	b.Src.Port = 11
	if FlowKey(a) == FlowKey(b) {
		t.Fatal("distinct tuples share a key")
	}
	if FlowKey(a) != FlowKey(a) {
		t.Fatal("key not deterministic")
	}
}

func TestISNHashDeterministicAndSpread(t *testing.T) {
	vip := netsim.HostPort{IP: netsim.IPv4(10, 255, 0, 1), Port: 80}
	seen := make(map[uint32]bool)
	for p := uint16(1); p <= 1000; p++ {
		cl := netsim.HostPort{IP: netsim.IPv4(100, 0, 0, 1), Port: p}
		a := isnHash(cl, vip)
		if a != isnHash(cl, vip) {
			t.Fatal("isnHash not deterministic")
		}
		seen[a] = true
	}
	if len(seen) < 990 {
		t.Fatalf("isnHash collisions: %d distinct of 1000", len(seen))
	}
}

func TestSeqDiff(t *testing.T) {
	if seqDiff(5, 3) != 2 || seqDiff(3, 5) != -2 {
		t.Fatal("basic diff")
	}
	// Wraparound.
	if seqDiff(2, 0xFFFFFFFE) != 4 {
		t.Fatalf("wrap diff = %d", seqDiff(2, 0xFFFFFFFE))
	}
}

func TestFrameRequests(t *testing.T) {
	r1 := []byte("GET /a HTTP/1.1\r\nHost: h\r\n\r\n")
	r2 := []byte("POST /b HTTP/1.1\r\nHost: h\r\nContent-Length: 4\r\n\r\nBODY")
	buf := append(append([]byte(nil), r1...), r2...)
	frames, consumed := frameRequests(buf)
	if len(frames) != 2 || consumed != len(buf) {
		t.Fatalf("frames=%d consumed=%d want 2/%d", len(frames), consumed, len(buf))
	}
	if frames[0].req.Path != "/a" || frames[1].req.Path != "/b" {
		t.Fatalf("paths: %s %s", frames[0].req.Path, frames[1].req.Path)
	}
	if string(frames[1].raw) != string(r2) {
		t.Fatalf("raw frame 2 mismatch")
	}
	// Partial request: nothing framed.
	frames, consumed = frameRequests(r2[:20])
	if len(frames) != 0 || consumed != 0 {
		t.Fatalf("partial framed: %d %d", len(frames), consumed)
	}
	// Partial body.
	frames, consumed = frameRequests(buf[:len(buf)-2])
	if len(frames) != 1 || consumed != len(r1) {
		t.Fatalf("partial body framed: %d %d", len(frames), consumed)
	}
}

func TestFrameResponseLen(t *testing.T) {
	resp := []byte("HTTP/1.1 200 OK\r\nContent-Length: 5\r\n\r\nhello")
	if n := frameResponseLen(resp); n != len(resp) {
		t.Fatalf("n=%d want %d", n, len(resp))
	}
	if n := frameResponseLen(resp[:10]); n != 0 {
		t.Fatalf("partial header framed: %d", n)
	}
	if n := frameResponseLen(resp[:len(resp)-1]); n != 0 {
		t.Fatalf("partial body framed: %d", n)
	}
	// No content-length: header-only frame.
	hdrOnly := []byte("HTTP/1.1 204 No Content\r\n\r\n")
	if n := frameResponseLen(hdrOnly); n != len(hdrOnly) {
		t.Fatalf("no-CL frame: %d", n)
	}
}
