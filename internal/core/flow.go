package core

import (
	"time"

	"repro/internal/httpsim"
	"repro/internal/netsim"
	"repro/internal/securesim"
)

// flow is the in-memory state for one balanced connection. Everything
// needed to take the flow over after a failure is mirrored in TCPStore;
// the rest (buffers, parsers, timers) is reconstructible.
type flow struct {
	vip    netsim.HostPort // VIP:port the client connected to
	client netsim.HostPort
	server netsim.HostPort
	snat   netsim.HostPort // VIP-side endpoint toward the backend

	clientISN uint32
	c         uint32 // our ISN facing the client
	s         uint32 // backend ISN
	delta     uint32 // seqToClient = seqFromServer + delta

	state       flowState // see state.go
	backendName string
	keepAlive   bool
	recovered   bool
	// persisted tracks whether any record for this flow was (or may have
	// been) written to TCPStore. Always true on the paper-faithful path;
	// hybrid flows that skip their barriers stay false, which gates the
	// teardown deletes (nothing to delete) and marks them for the
	// epoch-bump flush (see hybrid.go).
	persisted bool

	// Connection-phase request assembly.
	reqBuf        []byte
	clientNextSeq uint32            // next expected in-order client payload seq
	ooo           map[uint32][]byte // out-of-order client payload
	synAckSent    bool

	// Tunneling bookkeeping.
	toClientNext uint32 // next client-facing seq the server side will use
	clientFin    bool
	serverFin    bool

	// Keep-alive (inspected tunnel) state; see keepalive.go.
	ka *kaState

	// TLS termination state; see tls.go.
	tls *flowTLS

	// Timers.
	idleTimer netsim.Timer
	dialTimer netsim.Timer
	dialTries int

	start      time.Duration // SYN arrival
	dialStart  time.Duration // backend selection began, for the Figure 9 breakdown
	lastActive time.Duration

	// Flow-index bookkeeping (see flowindex.go): idxSlot is the flow's
	// slot+1 in the index's store (0 = unindexed), idxRefs the number of
	// tuple orientations currently pointing at that slot.
	idxSlot uint32
	idxRefs uint8
}

func (f *flow) clientTuple() netsim.FourTuple {
	return netsim.FourTuple{Src: f.client, Dst: f.vip}
}

func (f *flow) serverTuple() netsim.FourTuple {
	return netsim.FourTuple{Src: f.server, Dst: f.snat}
}

func (f *flow) touch(now time.Duration) { f.lastActive = now }

// fillRecord populates r — and ts, when the flow carries TLS state —
// with the flow's persistable state. Both are caller-owned (the instance
// reuses one of each across barrier writes) so building a record does
// not allocate.
func (f *flow) fillRecord(r *Record, ts *TLSState, phase FlowPhase) {
	*r = Record{
		Phase:       phase,
		Client:      f.client,
		VIP:         f.vip,
		ClientISN:   f.clientISN,
		Server:      f.server,
		SNAT:        f.snat,
		C:           f.c,
		S:           f.s,
		Delta:       f.delta,
		KeepAlive:   f.keepAlive,
		BackendName: f.backendName,
	}
	if f.tls != nil {
		*ts = TLSState{Key: f.tls.key, ServerHelloLen: uint16(f.tls.serverHelloLen)}
		r.TLS = ts
	}
}

// --- connection phase ---

// newClientFlow handles the first SYN of a connection: persist the client
// TCP header (storage-a), then answer with the deterministic SYN-ACK.
func (in *Instance) newClientFlow(pkt *netsim.Packet) {
	now := in.net.Now()
	in.CPU.Charge(now, in.cfg.CPUConnPhase)
	f := &flow{
		vip:           pkt.Dst,
		client:        pkt.Src,
		clientISN:     pkt.Seq,
		c:             isnHash(pkt.Src, pkt.Dst),
		clientNextSeq: pkt.Seq + 1,
		toClientNext:  isnHash(pkt.Src, pkt.Dst) + 1,
		state:         stateConn,
		ooo:           make(map[uint32][]byte),
		start:         now,
		lastActive:    now,
	}
	in.flows.put(f.clientTuple(), f)
	in.statsFor(pkt.Dst.IP).NewFlows++
	in.armIdle(f)
	// storage-a: the SYN header goes to TCPStore before the SYN-ACK, so a
	// failed instance's successor can regenerate the handshake state.
	// Under StrictPersist an unrecoverable flow is dropped unanswered —
	// the client's SYN retransmission retries the whole sequence.
	//
	// Hybrid mode skips storage-a entirely: everything a PhaseConn record
	// carries is derivable (C is the tuple hash any instance computes,
	// ClientISN is one less than the first retransmitted payload byte), so
	// the SYN-ACK goes out synchronously. TLS flows get their key
	// persisted later, at the tlsAdvance barrier, before it is needed.
	if in.cfg.Hybrid != nil {
		in.Barrier.Skipped++
		in.sendSynAck(f)
		return
	}
	in.writeBarrier(f, in.barrierEntries(f, PhaseConn, false),
		func() { in.sendSynAck(f) },
		func(error) { in.teardown(f, false) })
}

func (in *Instance) sendSynAck(f *flow) {
	f.synAckSent = true
	in.net.Send(&netsim.Packet{
		Src:    f.vip,
		Dst:    f.client,
		Flags:  netsim.FlagSYN | netsim.FlagACK,
		Seq:    f.c,
		Ack:    f.clientISN + 1,
		Window: 1 << 20,
	})
}

// connPhaseClientPacket ingests client segments until the HTTP header is
// complete, then selects the backend.
func (in *Instance) connPhaseClientPacket(f *flow, pkt *netsim.Packet) {
	if pkt.Flags.Has(netsim.FlagSYN) {
		// Retransmitted SYN: regenerate the SYN-ACK (same C by hashing).
		if f.synAckSent {
			in.sendSynAck(f)
		}
		return
	}
	if pkt.Flags.Has(netsim.FlagRST) {
		in.teardown(f, false)
		return
	}
	if pkt.Flags.Has(netsim.FlagFIN) && len(pkt.Payload) == 0 {
		// Client gave up before sending a request.
		in.net.Send(&netsim.Packet{
			Src: f.vip, Dst: f.client,
			Flags: netsim.FlagFIN | netsim.FlagACK,
			Seq:   f.c + 1, Ack: pkt.SeqEnd(),
		})
		in.teardown(f, true)
		return
	}
	if len(pkt.Payload) == 0 {
		return // bare ACK completing the handshake
	}
	prevLen := len(f.reqBuf)
	grew := in.assembleClientData(f, pkt)
	if !grew {
		// Retransmission of data we already hold (e.g. the instance died
		// after storage-a and we recovered): if the backend dial is already
		// running, just wait; otherwise fall through to try selection.
		if f.state != stateConn {
			return
		}
	}
	if f.state != stateConn {
		return // backend dial in progress; data is buffered for forwarding
	}
	if in.tlsAdvance(f, prevLen) {
		return // handshake in progress; HTTP cannot be parsed yet
	}
	in.tryDispatchRequest(f)
}

// tryDispatchRequest parses the (plaintext) request buffer and starts the
// backend dial when the header is complete.
func (in *Instance) tryDispatchRequest(f *flow) {
	if f.state != stateConn {
		return
	}
	req, err := httpsim.ParseRequestHeader(f.reqBuf)
	if err != nil {
		in.reject(f, 400, "malformed request")
		return
	}
	if req == nil {
		// Header incomplete: ACK what we have so the client can keep
		// sending beyond its initial window.
		in.net.Send(&netsim.Packet{
			Src: f.vip, Dst: f.client,
			Flags: netsim.FlagACK,
			Seq:   f.toClientDataBase(), Ack: f.clientNextSeq,
		})
		return
	}
	in.selectAndDial(f, req)
}

// assembleClientData merges a data segment into the in-order request
// buffer, returning whether new bytes were added.
func (in *Instance) assembleClientData(f *flow, pkt *netsim.Packet) bool {
	seq, data := pkt.Seq, pkt.Payload
	// Trim already-held prefix.
	if seqDiff(f.clientNextSeq, seq) > 0 {
		skip := f.clientNextSeq - seq
		if uint32(len(data)) <= skip {
			return false
		}
		data = data[skip:]
		seq = f.clientNextSeq
	}
	if seq != f.clientNextSeq {
		f.ooo[seq] = append([]byte(nil), data...)
		return false
	}
	f.reqBuf = append(f.reqBuf, data...)
	f.clientNextSeq += uint32(len(data))
	// Drain contiguous out-of-order segments.
	for {
		d, ok := f.ooo[f.clientNextSeq]
		if !ok {
			break
		}
		delete(f.ooo, f.clientNextSeq)
		f.reqBuf = append(f.reqBuf, d...)
		f.clientNextSeq += uint32(len(d))
	}
	return true
}

// seqDiff returns a-b as a signed 32-bit distance.
func seqDiff(a, b uint32) int32 { return int32(a - b) }

// selectAndDial runs the rule scan (modelling its latency per Figure 6)
// and opens the backend connection.
func (in *Instance) selectAndDial(f *flow, req *httpsim.Request) {
	engine, ok := in.engines[f.vip.IP]
	if !ok {
		// The VIP is not assigned here (transient mapping states): best
		// effort is to reject quickly so the client retries.
		in.reject(f, 503, "vip not assigned to this instance")
		return
	}
	// The split draw: hybrid mode replaces the RNG with a tuple-keyed
	// uniform value so the decision is reproducible by any instance
	// holding the table (the write-time self-check and recovery replay
	// it); the paper-faithful mode keeps the shard RNG draw.
	var draw float64
	if in.cfg.Hybrid != nil {
		draw = in.cfg.Hybrid.Draw(f.clientTuple())
	} else {
		draw = in.rng.Float64()
	}
	decision := engine.Select(req, draw, in.info)
	lookup := in.cfg.LookupBase + time.Duration(decision.Scanned)*in.cfg.LookupPerRule
	// Only the scan itself burns CPU; LookupBase models pipeline latency
	// (queueing, context switches) that does not occupy a core.
	in.CPU.Charge(in.net.Now(), time.Duration(decision.Scanned)*in.cfg.LookupPerRule)
	if !decision.OK {
		in.reject(f, 503, "no rule matched")
		return
	}
	// The SNAT port is claimed before any flow state mutates so an
	// exhausted range rejects cleanly: silently reusing an in-use port
	// would splice two live flows onto one backend tuple. Hybrid mode
	// first tries the cookie-coded port the derivation layer predicts for
	// this tuple and epoch; on collision the sequential fallback port
	// fails the write-time self-check and the flow stays persisted.
	var port uint16
	var portOK bool
	if pref, pok := in.hybridPreferredPort(f); pok {
		port, portOK = in.allocSNATPortPreferred(pref)
	} else {
		port, portOK = in.allocSNATPort()
	}
	if !portOK {
		in.statsFor(f.vip.IP).SNATExhausted++
		in.reject(f, 503, "snat ports exhausted")
		return
	}
	in.setState(f, stateDialing)
	f.dialStart = in.net.Now()
	f.server = decision.Backend.Addr
	f.backendName = decision.Backend.Name
	// TLS flows stay pinned to their backend: re-selection would require
	// re-inspecting ciphertext mid-stream (documented simplification).
	f.keepAlive = req.KeepAlive() && f.tls == nil
	f.snat = netsim.HostPort{IP: f.vip.IP, Port: port}
	in.flows.put(f.serverTuple(), f)
	// Learn sticky bindings so subsequent sessions pin (Table 3 rule-4).
	if ck := sessionCookie(req); ck != "" {
		engine.Learn("cookie-table", ck, decision.Backend)
	}
	in.net.Schedule(lookup, func() {
		if in.flows.get(f.clientTuple()) != f || f.state != stateDialing {
			return
		}
		in.sendServerSyn(f)
	})
}

// sessionCookie extracts the canonical session cookie if present.
func sessionCookie(req *httpsim.Request) string { return req.Cookie("session") }

func (in *Instance) sendServerSyn(f *flow) {
	// The SYN to the backend reuses the client's sequence numbering so
	// that client data can later be forwarded without rewriting (§4.1).
	// For TLS flows the handshake bytes were consumed by the instance and
	// are not forwarded, so the backend's numbering starts where the
	// client's application data starts.
	in.l4.SendViaSNAT(in.net, &netsim.Packet{
		Src:    f.snat,
		Dst:    f.server,
		Flags:  netsim.FlagSYN,
		Seq:    f.clientDataBase() - 1,
		Window: 1 << 20,
	}, in.IP())
	f.dialTries++
	f.dialTimer.Stop()
	f.dialTimer = in.net.Schedule(3*time.Second, func() {
		if f.state != stateDialing || in.flows.get(f.clientTuple()) != f {
			return
		}
		if f.dialTries >= 3 {
			in.reject(f, 503, "backend unreachable")
			return
		}
		in.sendServerSyn(f)
	})
}

// serverHandshakePacket completes the backend connection: storage-b, then
// ACK plus the buffered request.
func (in *Instance) serverHandshakePacket(f *flow, pkt *netsim.Packet) {
	if pkt.Flags.Has(netsim.FlagRST) {
		in.reject(f, 503, "backend refused")
		return
	}
	if !pkt.Flags.Has(netsim.FlagSYN | netsim.FlagACK) {
		return
	}
	if pkt.Ack != f.clientDataBase() {
		return // stale handshake
	}
	f.dialTimer.Stop()
	f.s = pkt.Seq
	// Translation: the backend's first data byte (S+1) must surface at the
	// client's next expected sequence number (after the SYN-ACK and, for
	// TLS, the ServerHello).
	f.delta = f.toClientDataBase() - (f.s + 1)
	f.toClientNext = f.toClientDataBase()
	// storage-b: persist the full translation state under both tuple
	// orientations before ACKing the server (Figure 3). The two records
	// ride one batched store round trip.
	//
	// Hybrid mode first dry-runs the stateless derivation against the
	// state actually installed (hybrid.go): when every field matches, the
	// write is redundant — a successor derives the identical record — and
	// the barrier is skipped with the commit run synchronously. Any
	// mismatch (sticky hit, health drift, port-collision fallback, stale
	// mux routing, TLS) keeps the flow on the persisted path, so residue
	// classification is sound without enumerating causes.
	commit := func() {
		if f.state != stateDialing {
			return
		}
		// The "connection" component of Figure 9: backend selection through
		// the backend handshake and storage-b (waiting for the client's
		// request is not the LB's doing and is excluded).
		in.ConnLat.Add(in.net.Now() - f.dialStart)
		toForward := f.reqBuf
		if f.keepAlive {
			// Only the first request goes to this backend; pipelined
			// requests already buffered are re-selected individually.
			toForward = in.initKeepAlive(f)
			in.setState(f, stateKATunnel)
		} else {
			in.setState(f, stateTunnel)
		}
		// ACK the SYN-ACK and forward the buffered request bytes in the
		// client's own sequence space.
		in.l4.SendViaSNAT(in.net, &netsim.Packet{
			Src: f.snat, Dst: f.server,
			Flags: netsim.FlagACK,
			Seq:   f.clientDataBase(), Ack: f.s + 1,
			Window: 1 << 20,
		}, in.IP())
		in.forwardClientBytes(f, f.clientDataBase(), toForward)
		f.reqBuf = nil
	}
	if in.hybridDerivable(f) {
		in.Barrier.Skipped++
		commit()
		return
	}
	in.writeBarrier(f, in.barrierEntries(f, PhaseTunnel, true), commit, func(error) {
		in.reject(f, 503, "flow state not persisted")
	})
}

// forwardClientBytes sends raw client payload to the backend in MSS-sized
// segments, preserving the client's sequence numbers. Payloads are
// capacity-capped sub-slices of data (zero-copy): the caller relinquishes
// the buffer (reqBuf is nilled after the forward), so the bytes are
// immutable from here on.
func (in *Instance) forwardClientBytes(f *flow, seq uint32, data []byte) {
	mss := in.cfg.RelayMSS
	if mss <= 0 {
		mss = 1460
	}
	for off := 0; off < len(data); off += mss {
		end := off + mss
		if end > len(data) {
			end = len(data)
		}
		in.CPU.Charge(in.net.Now(), in.cfg.CPUPerPacket)
		pkt := in.net.AllocPacket()
		pkt.Src, pkt.Dst = f.snat, f.server
		pkt.Flags = netsim.FlagACK | netsim.FlagPSH
		pkt.Seq, pkt.Ack = seq+uint32(off), f.s+1
		pkt.Window = 1 << 20
		pkt.Payload = data[off:end:end]
		in.l4.SendViaSNAT(in.net, pkt, in.IP())
	}
}

// reject answers the client with a terminal HTTP error and tears the flow
// down.
func (in *Instance) reject(f *flow, code int, reason string) {
	resp := httpsim.NewResponse(code, []byte(reason))
	resp.SetHeader("Connection", "close")
	payload := resp.Marshal()
	seq := f.toClientDataBase()
	if f.tls != nil {
		payload = securesim.KeystreamXOR(f.tls.key, securesim.DirServerToClient, 0, payload)
	}
	in.net.Send(&netsim.Packet{
		Src: f.vip, Dst: f.client,
		Flags:   netsim.FlagACK | netsim.FlagPSH | netsim.FlagFIN,
		Seq:     seq,
		Ack:     f.clientNextSeq,
		Payload: payload,
	})
	in.teardown(f, true)
}

// --- tunneling phase ---

// abortToServer propagates a client RST to the backend and drops state.
// Both tunnel states route client RSTs here.
func (in *Instance) abortToServer(f *flow, pkt *netsim.Packet) {
	in.l4.SendViaSNAT(in.net, &netsim.Packet{
		Src: f.snat, Dst: f.server,
		Flags: netsim.FlagRST, Seq: pkt.Seq, Ack: pkt.Ack - f.delta,
	}, in.IP())
	in.teardown(f, true)
}

func (in *Instance) tunnelFromClient(f *flow, pkt *netsim.Packet) {
	if pkt.Flags.Has(netsim.FlagRST) {
		in.abortToServer(f, pkt)
		return
	}
	if pkt.Flags.Has(netsim.FlagFIN) {
		f.clientFin = true
	}
	fwd := in.net.AllocPacket()
	fwd.Src, fwd.Dst = f.snat, f.server
	fwd.Flags = pkt.Flags
	fwd.Seq, fwd.Ack = pkt.Seq, pkt.Ack-f.delta
	fwd.Window = pkt.Window
	fwd.Payload = f.tlsDecryptFromClient(pkt.Seq, pkt.Payload)
	in.l4.SendViaSNAT(in.net, fwd, in.IP())
	in.maybeFinish(f)
}

func (in *Instance) tunnelFromServer(f *flow, pkt *netsim.Packet) {
	if pkt.Flags.Has(netsim.FlagRST) {
		in.net.Send(&netsim.Packet{
			Src: f.vip, Dst: f.client,
			Flags: netsim.FlagRST, Seq: pkt.Seq + f.delta, Ack: pkt.Ack,
		})
		in.teardown(f, true)
		return
	}
	if pkt.Flags.Has(netsim.FlagSYN) {
		// Retransmitted SYN-ACK: our ACK got lost. Re-ACK.
		in.l4.SendViaSNAT(in.net, &netsim.Packet{
			Src: f.snat, Dst: f.server,
			Flags: netsim.FlagACK,
			Seq:   f.clientDataBase(), Ack: f.s + 1,
		}, in.IP())
		return
	}
	if pkt.Flags.Has(netsim.FlagFIN) {
		f.serverFin = true
	}
	end := pkt.SeqEnd() + f.delta
	if seqDiff(end, f.toClientNext) > 0 {
		f.toClientNext = end
	}
	fwd := in.net.AllocPacket()
	fwd.Src, fwd.Dst = f.vip, f.client
	fwd.Flags = pkt.Flags
	fwd.Seq, fwd.Ack = pkt.Seq+f.delta, pkt.Ack
	fwd.Window = pkt.Window
	fwd.Payload = f.tlsEncryptToClient(pkt.Seq, pkt.Payload)
	in.net.Send(fwd)
	in.maybeFinish(f)
}

// maybeFinish schedules state cleanup once both directions have closed.
func (in *Instance) maybeFinish(f *flow) {
	if !f.clientFin || !f.serverFin {
		return
	}
	in.net.Schedule(in.cfg.FinLinger, func() {
		if in.flows.get(f.clientTuple()) == f {
			in.teardown(f, true)
		}
	})
}

// teardown removes flow state locally, from TCPStore, and from the L4
// LB's SNAT table.
func (in *Instance) teardown(f *flow, deleteStore bool) {
	in.FlowsClosed++
	in.flows.del(f.clientTuple(), f)
	if f.server.IP != 0 {
		in.flows.del(f.serverTuple(), f)
	}
	f.idleTimer.Stop()
	f.dialTimer.Stop()
	if f.server.IP != 0 {
		in.releaseSNATPort(f.snat.Port)
	}
	if deleteStore {
		// Hybrid flows that never persisted have nothing to delete; the
		// SNAT routing entry is cleared either way.
		if f.persisted {
			in.store.Delete(in.flowKey(f.clientTuple()), nil)
			if f.server.IP != 0 {
				in.store.Delete(in.flowKey(f.serverTuple()), nil)
			}
		}
		if f.server.IP != 0 {
			in.l4.ClearSNAT(f.serverTuple())
		}
	}
}

func (in *Instance) armIdle(f *flow) {
	if in.cfg.FlowIdleTimeout <= 0 {
		return
	}
	var arm func()
	arm = func() {
		f.idleTimer = in.net.Schedule(in.cfg.FlowIdleTimeout, func() {
			if in.flows.get(f.clientTuple()) != f {
				return
			}
			if in.net.Now()-f.lastActive >= in.cfg.FlowIdleTimeout {
				in.teardown(f, true)
				return
			}
			arm()
		})
	}
	arm()
}

// TerminateBackendFlows aborts every flow pinned to a failed backend
// (§5.2: "when a server fails, its connections with YODA instances are
// terminated"): the client receives a RST so it can re-try immediately
// instead of stalling to its HTTP timeout. Returns the number of flows
// terminated.
func (in *Instance) TerminateBackendFlows(backend netsim.HostPort) int {
	var victims []*flow
	in.flows.forEach(func(f *flow) {
		if f.server == backend {
			victims = append(victims, f)
		}
	})
	for _, f := range victims {
		in.net.Send(&netsim.Packet{
			Src: f.vip, Dst: f.client,
			Flags: netsim.FlagRST,
			Seq:   f.toClientNext, Ack: f.clientNextSeq,
		})
		in.teardown(f, true)
	}
	return len(victims)
}

// --- failure recovery ---

// pendingQueue holds packets for one unknown tuple while TCPStore is
// consulted. Queues are bounded (per tuple and instance-wide) and carry
// an expiry timer: an attacker spraying orphan ACKs, or a wedged store
// lookup, must not grow instance memory without limit.
type pendingQueue struct {
	pkts   []*netsim.Packet
	expire netsim.Timer
}

// dropPending discards a recovery queue, accounting every queued packet
// as a lookup miss.
func (in *Instance) dropPending(tuple netsim.FourTuple, q *pendingQueue) {
	delete(in.pending, tuple)
	in.pendingTotal -= len(q.pkts)
	q.expire.Stop()
	in.LookupMisses += uint64(len(q.pkts))
}

// recoverFlow handles a packet for which no local flow exists: another
// instance owned it. Packets queue while TCPStore is consulted.
func (in *Instance) recoverFlow(tuple netsim.FourTuple, pkt *netsim.Packet) {
	if q, ok := in.pending[tuple]; ok {
		if len(q.pkts) >= in.cfg.PendingPerTuple || in.pendingTotal >= in.cfg.PendingTotal {
			in.LookupMisses++ // dropped: the sender's retransmit retries
			return
		}
		q.pkts = append(q.pkts, pkt.Clone())
		in.pendingTotal++
		return
	}
	if in.pendingTotal >= in.cfg.PendingTotal {
		in.LookupMisses++
		return
	}
	q := &pendingQueue{pkts: []*netsim.Packet{pkt.Clone()}}
	in.pending[tuple] = q
	in.pendingTotal++
	if in.cfg.PendingExpiry > 0 {
		q.expire = in.net.Schedule(in.cfg.PendingExpiry, func() {
			if in.pending[tuple] == q {
				in.dropPending(tuple, q)
			}
		})
	}
	// Hybrid mode classifies the orphan (backend knock, dead-owner
	// derivation, residue) before deciding whether and how to consult the
	// store; the paper-faithful mode always reads and RSTs a miss.
	if in.cfg.Hybrid != nil {
		in.hybridRecover(tuple, q)
		return
	}
	in.paperGet(tuple, q)
}

// installRecovered builds a local flow from a TCPStore record.
func (in *Instance) installRecovered(rec *Record) *flow {
	ct := netsim.FourTuple{Src: rec.Client, Dst: rec.VIP}
	if existing := in.flows.get(ct); existing != nil {
		return existing // raced with another recovery or a live flow
	}
	f := &flow{
		vip:           rec.VIP,
		client:        rec.Client,
		clientISN:     rec.ClientISN,
		c:             isnHash(rec.Client, rec.VIP),
		clientNextSeq: rec.ClientISN + 1,
		ooo:           make(map[uint32][]byte),
		recovered:     true,
		start:         in.net.Now(),
		lastActive:    in.net.Now(),
		synAckSent:    true,
	}
	if rec.TLS != nil {
		f.tls = &flowTLS{key: rec.TLS.Key, serverHelloLen: int(rec.TLS.ServerHelloLen)}
		// The hello was consumed (and ACKed) before the record carried a
		// key; the client stream resumes at the application base.
		f.clientNextSeq = f.clientDataBase()
	}
	switch rec.Phase {
	case PhaseConn:
		f.state = stateConn
		f.toClientNext = f.toClientDataBase()
	case PhaseTunnel:
		f.state = stateTunnel
		f.server = rec.Server
		f.snat = rec.SNAT
		f.s = rec.S
		f.delta = rec.Delta
		f.backendName = rec.BackendName
		// Keep-alive flows are downgraded to a pure tunnel after recovery:
		// the HTTP parser state died with the old instance, so the safe
		// continuation is to pin the current backend for the connection's
		// remainder (documented deviation; the paper stores request order
		// for pipelining, which this reproduction does not persist).
		f.keepAlive = false
		f.toClientNext = f.c + 1
		in.flows.put(f.serverTuple(), f)
	default:
		return nil
	}
	in.flows.put(ct, f)
	in.armIdle(f)
	return f
}
