package core_test

import (
	"bytes"
	"fmt"
	"testing"
	"time"

	"repro/internal/cluster"
	"repro/internal/core"
	"repro/internal/httpsim"
	"repro/internal/memcache"
	"repro/internal/netsim"
	"repro/internal/tcp"
	"repro/internal/tcpstore"
)

// Tier B event coalescing (DESIGN.md §14) on every endpoint: delayed
// ACKs and 8-segment GSO trains at clients and backends, and a matching
// relay MSS so the instance's request splice forwards assembled bodies
// in GSO-sized packets. These tests re-run the failover e2e scenarios
// under that configuration — recovery must be indistinguishable.

const tierBGSOSegs = 8

func tierBTCP(cfg tcp.Config) tcp.Config {
	cfg.DelayedAck = true
	cfg.GSOSegs = tierBGSOSegs
	return cfg
}

// newTierBTestbed mirrors newTestbed with Tier B coalescing enabled
// end to end. The client keeps the PR 8 idle probe on so delayed ACKs
// and heartbeats coexist in every scenario.
func newTierBTestbed(t *testing.T, seed int64, nYoda int) *testbed {
	t.Helper()
	c := cluster.New(seed)
	c.AddStoreServers(3, memcache.DefaultSimServerConfig())
	objects := map[string][]byte{
		"/10k":  bytes.Repeat([]byte("a"), 10*1024),
		"/100k": bytes.Repeat([]byte("b"), 100*1024),
		"/tiny": []byte("ok"),
	}
	srvCfg := httpsim.DefaultServerConfig()
	srvCfg.TCP = tierBTCP(srvCfg.TCP)
	for i := 1; i <= 3; i++ {
		c.AddBackend(fmt.Sprintf("srv-%d", i), objects, srvCfg)
	}
	yodaCfg := core.DefaultConfig()
	yodaCfg.RelayMSS = tierBGSOSegs * 1460
	c.AddYodaN(nYoda, yodaCfg, tcpstore.DefaultConfig())
	vip := c.AddVIP("mysite")
	c.InstallPolicy(vip, c.SimpleSplitRules("srv-1", "srv-2", "srv-3"), nil)
	return &testbed{
		c:       c,
		vip:     vip,
		vipHP:   netsim.HostPort{IP: vip, Port: 80},
		objects: objects,
	}
}

func tierBClientConfig() httpsim.ClientConfig {
	cfg := httpsim.DefaultClientConfig()
	cfg.TCP = tierBTCP(cfg.TCP)
	cfg.TCP.IdleProbe = 500 * time.Millisecond
	return cfg
}

// A plain fetch through the Tier B testbed: correct body, and the
// coalescing actually engages (GSO trains sent, ACKs elided).
func TestTierBFetchCoalesces(t *testing.T) {
	tb := newTierBTestbed(t, 31, 2)
	cl := tb.c.NewClient(tierBClientConfig())
	var res *httpsim.FetchResult
	cl.Get(tb.vipHP, "/100k", func(r *httpsim.FetchResult) { res = r })
	tb.c.Net.RunFor(10 * time.Second)
	if res == nil || res.Err != nil {
		t.Fatalf("res = %+v", res)
	}
	if !bytes.Equal(res.Resp.Body, tb.objects["/100k"]) {
		t.Fatalf("body corrupted: %d bytes", len(res.Resp.Body))
	}
	trains := 0
	for _, b := range tb.c.Backends {
		for _, sc := range b.Server.Conns() {
			trains += sc.GSOTrainsSent
		}
	}
	if trains == 0 {
		t.Fatal("backend sent no GSO trains for a 100k response")
	}
	// Elision shows up client-side: the relayed request segments carry
	// PSH (immediate ACK at the backend), but the 100k response arrives
	// at the client as a run of non-PSH segments it may defer.
	if res.Conn == nil || res.Conn.AcksElided == 0 {
		t.Fatal("client elided no ACKs under DelayedAck")
	}
}

// TestTierBFailoverDuringTunnelPhase is TestFailoverDuringTunnelPhase
// with Tier B on: mid-transfer owner death, TCPStore recovery by the
// survivor, body intact — coalesced ACKs and segment trains must not
// confuse the sequence-translation rebuild.
func TestTierBFailoverDuringTunnelPhase(t *testing.T) {
	tb := newTierBTestbed(t, 32, 2)
	cl := tb.c.NewClient(tierBClientConfig())
	var res *httpsim.FetchResult
	cl.Get(tb.vipHP, "/100k", func(r *httpsim.FetchResult) { res = r })
	tb.c.Net.RunFor(200 * time.Millisecond)
	victim := -1
	for i, in := range tb.c.Yoda {
		if in.FlowCount() > 0 {
			victim = i
			break
		}
	}
	if victim < 0 {
		t.Fatal("no instance owns the flow yet")
	}
	tb.c.Yoda[victim].Fail()
	tb.c.Net.Schedule(600*time.Millisecond, func() {
		tb.c.L4.RemoveInstance(tb.c.Yoda[victim].IP())
	})
	tb.c.Net.RunFor(30 * time.Second)
	if res == nil {
		t.Fatal("fetch never completed")
	}
	if res.Err != nil {
		t.Fatalf("flow broke despite TCPStore recovery: %v (timedout=%v)", res.Err, res.TimedOut)
	}
	if !bytes.Equal(res.Resp.Body, tb.objects["/100k"]) {
		t.Fatalf("body corrupted across failover: %d bytes", len(res.Resp.Body))
	}
	survivor := tb.c.Yoda[1-victim]
	if survivor.Recovered == 0 {
		t.Fatal("survivor never recovered a flow from TCPStore")
	}
	if res.Elapsed() > 10*time.Second {
		t.Fatalf("recovery too slow: %v", res.Elapsed())
	}
}

// TestTierBFailoverDuringConnectionPhase is the §4.2 connection-phase
// kill under Tier B: the client's retransmitted (possibly GSO-sized)
// request must replay cleanly at the successor.
func TestTierBFailoverDuringConnectionPhase(t *testing.T) {
	tb := newTierBTestbed(t, 33, 2)
	cl := tb.c.NewClient(tierBClientConfig())
	var res *httpsim.FetchResult
	cl.Get(tb.vipHP, "/10k", func(r *httpsim.FetchResult) { res = r })
	var victim *core.Instance
	tb.c.Net.Schedule(75*time.Millisecond, func() {
		for _, in := range tb.c.Yoda {
			if in.FlowCount() > 0 {
				victim = in
				in.Fail()
				return
			}
		}
	})
	tb.c.Net.Schedule(675*time.Millisecond, func() {
		if victim != nil {
			tb.c.L4.RemoveInstance(victim.IP())
		}
	})
	tb.c.Net.RunFor(40 * time.Second)
	if victim == nil {
		t.Fatal("no victim found at kill time")
	}
	if res == nil {
		t.Fatal("fetch never completed")
	}
	if res.Err != nil {
		t.Fatalf("connection-phase failover broke the flow: %v", res.Err)
	}
	if !bytes.Equal(res.Resp.Body, tb.objects["/10k"]) {
		t.Fatal("body corrupted")
	}
	recovered := uint64(0)
	for _, in := range tb.c.Yoda {
		if in != victim {
			recovered += in.Recovered
		}
	}
	if recovered == 0 {
		t.Fatal("no survivor recovered the connection-phase flow")
	}
}

// BenchmarkEventsPerFlow measures event-loop events consumed per
// completed client flow through a single Yoda instance — the macro
// payoff of the coalescing tiers (DESIGN.md §14). tierb=off is the
// wire-identical Tier A baseline; tierb=on adds delayed ACKs and GSO
// trains end to end. bench.sh keys both figures into BENCH_core.json.
func BenchmarkEventsPerFlow(b *testing.B) {
	const flows = 50
	for _, tierb := range []bool{false, true} {
		name := "tierb=off"
		if tierb {
			name = "tierb=on"
		}
		b.Run(name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				c := cluster.New(35)
				c.AddStoreServers(3, memcache.DefaultSimServerConfig())
				objects := map[string][]byte{"/100k": bytes.Repeat([]byte("b"), 100*1024)}
				srvCfg := httpsim.DefaultServerConfig()
				yodaCfg := core.DefaultConfig()
				clCfg := httpsim.DefaultClientConfig()
				if tierb {
					srvCfg.TCP = tierBTCP(srvCfg.TCP)
					yodaCfg.RelayMSS = tierBGSOSegs * 1460
					clCfg.TCP = tierBTCP(clCfg.TCP)
				}
				for j := 1; j <= 3; j++ {
					c.AddBackend(fmt.Sprintf("srv-%d", j), objects, srvCfg)
				}
				c.AddYodaN(1, yodaCfg, tcpstore.DefaultConfig())
				vip := c.AddVIP("mysite")
				c.InstallPolicy(vip, c.SimpleSplitRules("srv-1", "srv-2", "srv-3"), nil)
				vipHP := netsim.HostPort{IP: vip, Port: 80}
				done := 0
				for j := 0; j < flows; j++ {
					cl := c.NewClient(clCfg)
					cl.Get(vipHP, "/100k", func(r *httpsim.FetchResult) {
						if r.Err == nil {
							done++
						}
					})
				}
				c.Net.RunFor(60 * time.Second)
				if done != flows {
					b.Fatalf("done = %d/%d", done, flows)
				}
				epf := c.Yoda[0].EventsPerFlow()
				if epf <= 0 {
					b.Fatal("EventsPerFlow reported zero")
				}
				b.ReportMetric(epf, "events/flow")
			}
		})
	}
}

// newTierBHybridTestbed layers Tier B onto the hybrid testbed: the
// derivation table, deterministic backend ISNs, and cookie knocks all
// have to work with coalesced ACKs.
func newTierBHybridTestbed(t *testing.T, seed int64, nYoda int) *testbed {
	t.Helper()
	c := cluster.New(seed)
	c.EnableHybrid(hybridSecret)
	c.AddStoreServers(3, memcache.DefaultSimServerConfig())
	objects := map[string][]byte{
		"/10k":  bytes.Repeat([]byte("a"), 10*1024),
		"/100k": bytes.Repeat([]byte("b"), 100*1024),
		"/tiny": []byte("ok"),
	}
	srvCfg := httpsim.DefaultServerConfig()
	srvCfg.TCP = tierBTCP(srvCfg.TCP)
	for i := 1; i <= 3; i++ {
		c.AddBackend(fmt.Sprintf("srv-%d", i), objects, srvCfg)
	}
	yodaCfg := core.DefaultConfig()
	yodaCfg.RelayMSS = tierBGSOSegs * 1460
	c.AddYodaN(nYoda, yodaCfg, tcpstore.DefaultConfig())
	vip := c.AddVIP("mysite")
	c.InstallPolicy(vip, c.SimpleSplitRules("srv-1", "srv-2", "srv-3"), nil)
	return &testbed{
		c:       c,
		vip:     vip,
		vipHP:   netsim.HostPort{IP: vip, Port: 80},
		objects: objects,
	}
}

// TestTierBHybridKnockWithDelayedAcks: kill the owner mid-transfer in
// hybrid mode with Tier B on everywhere. Recovery leans on the client
// idle probe and server-side cookie knock; delayed ACKs must neither
// starve those packets (they are bare ACKs, never deferred) nor
// duplicate them (the probe subsumes a pending deferred ACK).
func TestTierBHybridKnockWithDelayedAcks(t *testing.T) {
	tb := newTierBHybridTestbed(t, 34, 2)
	cl := tb.c.NewClient(tierBClientConfig())
	var res *httpsim.FetchResult
	cl.Get(tb.vipHP, "/100k", func(r *httpsim.FetchResult) { res = r })
	tb.c.Net.RunFor(200 * time.Millisecond)
	victim := -1
	for i, in := range tb.c.Yoda {
		if in.FlowCount() > 0 {
			victim = i
			break
		}
	}
	if victim < 0 {
		t.Fatal("no instance owns the flow yet")
	}
	if rt := tb.c.Yoda[victim].Store().Stats.RoundTrips; rt != 0 {
		t.Fatalf("flow hit the store before failure: %d round trips", rt)
	}
	tb.c.KillYoda(victim)
	tb.c.Net.Schedule(600*time.Millisecond, func() {
		tb.c.L4.RemoveInstance(tb.c.Yoda[victim].IP())
	})
	tb.c.Net.RunFor(30 * time.Second)
	if res == nil {
		t.Fatal("fetch never completed")
	}
	if res.Err != nil {
		t.Fatalf("flow broke despite derivation: %v (timedout=%v)", res.Err, res.TimedOut)
	}
	if !bytes.Equal(res.Resp.Body, tb.objects["/100k"]) {
		t.Fatalf("body corrupted across failover: %d bytes", len(res.Resp.Body))
	}
	survivor := tb.c.Yoda[1-victim]
	if survivor.DerivedRecoveries == 0 {
		t.Fatal("survivor never derived a flow")
	}
	if res.Elapsed() > 10*time.Second {
		t.Fatalf("recovery too slow: %v", res.Elapsed())
	}
	if survivor.EventsPerFlow() < 0 {
		t.Fatal("EventsPerFlow went negative")
	}
}
