// Package core implements the Yoda instance: the packet driver that
// terminates client connections using the VIP, selects backends by L7
// rules, dials the backend reusing the client's initial sequence number,
// decouples every piece of per-flow TCP state into TCPStore before
// acknowledging the packet that created it, and tunnels established flows
// at L3 with pure sequence-number translation (§3–§4 of the paper).
//
// An instance never runs a kernel-style TCP state machine for balanced
// flows: like the paper's nfqueue-based packet driver, it crafts and
// rewrites raw segments. Its only real TCP endpoints are the long-lived
// connections of its TCPStore (Memcached) client.
package core

import (
	"encoding/binary"
	"errors"

	"repro/internal/netsim"
)

// FlowPhase marks how far a flow has progressed, and therefore what a
// recovering instance must do with it.
type FlowPhase byte

// Flow phases as persisted in TCPStore.
const (
	// PhaseConn is the connection phase: the client SYN has been
	// acknowledged (storage-a) but no backend connection exists yet.
	PhaseConn FlowPhase = 1
	// PhaseTunnel is the tunneling phase: the backend handshake finished
	// and both translation constants are pinned (storage-b).
	PhaseTunnel FlowPhase = 2
)

// Record is the flow state decoupled into TCPStore. A PhaseConn record is
// written at storage-a (Figure 3) before the SYN-ACK is sent; a
// PhaseTunnel record replaces it at storage-b before the ACK to the
// server. Either suffices for another instance to take the flow over.
type Record struct {
	Phase     FlowPhase
	Client    netsim.HostPort // client endpoint
	VIP       netsim.HostPort // VIP-side endpoint the client talks to
	ClientISN uint32          // client's initial sequence number

	// Tunnel-phase fields (valid when Phase == PhaseTunnel).
	Server netsim.HostPort // selected backend
	SNAT   netsim.HostPort // VIP-side endpoint used toward the backend
	C      uint32          // instance ISN facing the client
	S      uint32          // backend ISN
	// Delta is the server→client sequence translation: seqToClient =
	// seqFromServer + Delta, ackToServer = ackFromClient − Delta. It
	// starts as C−S and is rebased when HTTP/1.1 re-selection switches
	// backends mid-connection.
	Delta       uint32
	KeepAlive   bool
	BackendName string

	// TLS carries the session's symmetric state when the flow is an SSL-
	// terminated connection (§5.2): the key plus the handshake sizes that
	// pin the keystream offsets. It must be persisted with storage-a as
	// soon as the handshake completes — the ServerHello ACKs the client's
	// hello, so the hello's contents (the key material) would otherwise
	// be unrecoverable after a failure.
	TLS *TLSState
}

// TLSState is the recoverable secure-session state.
type TLSState struct {
	Key [32]byte
	// ServerHelloLen is the size of the ServerHello in the instance→client
	// byte stream (the client hello size is a protocol constant).
	ServerHelloLen uint16
}

// ErrBadRecord reports a corrupt or truncated TCPStore value.
var ErrBadRecord = errors.New("core: malformed flow record")

const recordMagic = 0xF7

// Marshal encodes the record into the compact binary format stored in
// TCPStore.
func (r *Record) Marshal() []byte {
	size := 2 + 12 + 4
	if r.Phase == PhaseTunnel {
		size += 12 + 4 + 4 + 4 + 1 + 2 + len(r.BackendName)
	}
	return r.AppendMarshal(make([]byte, 0, size+40))
}

// AppendMarshal appends the record's encoding to b (usually caller-owned
// scratch) and returns the extended slice. The bytes are identical to
// Marshal's.
func (r *Record) AppendMarshal(b []byte) []byte {
	b = append(b, recordMagic, byte(r.Phase))
	b = appendHostPort(b, r.Client)
	b = appendHostPort(b, r.VIP)
	b = binary.BigEndian.AppendUint32(b, r.ClientISN)
	if r.Phase == PhaseTunnel {
		b = appendHostPort(b, r.Server)
		b = appendHostPort(b, r.SNAT)
		b = binary.BigEndian.AppendUint32(b, r.C)
		b = binary.BigEndian.AppendUint32(b, r.S)
		b = binary.BigEndian.AppendUint32(b, r.Delta)
		if r.KeepAlive {
			b = append(b, 1)
		} else {
			b = append(b, 0)
		}
		b = binary.BigEndian.AppendUint16(b, uint16(len(r.BackendName)))
		b = append(b, r.BackendName...)
	}
	// Trailing optional TLS section (both phases).
	if r.TLS != nil {
		b = append(b, 1)
		b = append(b, r.TLS.Key[:]...)
		b = binary.BigEndian.AppendUint16(b, r.TLS.ServerHelloLen)
	} else {
		b = append(b, 0)
	}
	return b
}

// UnmarshalRecord decodes a TCPStore value.
func UnmarshalRecord(b []byte) (*Record, error) {
	if len(b) < 2 || b[0] != recordMagic {
		return nil, ErrBadRecord
	}
	r := &Record{Phase: FlowPhase(b[1])}
	if r.Phase != PhaseConn && r.Phase != PhaseTunnel {
		return nil, ErrBadRecord
	}
	p := b[2:]
	var ok bool
	if r.Client, p, ok = readHostPort(p); !ok {
		return nil, ErrBadRecord
	}
	if r.VIP, p, ok = readHostPort(p); !ok {
		return nil, ErrBadRecord
	}
	if len(p) < 4 {
		return nil, ErrBadRecord
	}
	r.ClientISN = binary.BigEndian.Uint32(p)
	p = p[4:]
	if r.Phase == PhaseConn {
		return r, readTLSTrailer(r, p)
	}
	if r.Server, p, ok = readHostPort(p); !ok {
		return nil, ErrBadRecord
	}
	if r.SNAT, p, ok = readHostPort(p); !ok {
		return nil, ErrBadRecord
	}
	if len(p) < 4+4+4+1+2 {
		return nil, ErrBadRecord
	}
	r.C = binary.BigEndian.Uint32(p)
	r.S = binary.BigEndian.Uint32(p[4:])
	r.Delta = binary.BigEndian.Uint32(p[8:])
	r.KeepAlive = p[12] == 1
	nameLen := int(binary.BigEndian.Uint16(p[13:]))
	p = p[15:]
	if len(p) < nameLen {
		return nil, ErrBadRecord
	}
	r.BackendName = string(p[:nameLen])
	return r, readTLSTrailer(r, p[nameLen:])
}

// readTLSTrailer decodes the optional TLS section at the record's tail.
func readTLSTrailer(r *Record, p []byte) error {
	if len(p) < 1 {
		return ErrBadRecord
	}
	switch p[0] {
	case 0:
		return nil
	case 1:
		if len(p) < 1+32+2 {
			return ErrBadRecord
		}
		st := &TLSState{}
		copy(st.Key[:], p[1:33])
		st.ServerHelloLen = binary.BigEndian.Uint16(p[33:35])
		r.TLS = st
		return nil
	default:
		return ErrBadRecord
	}
}

func appendHostPort(b []byte, hp netsim.HostPort) []byte {
	b = binary.BigEndian.AppendUint32(b, uint32(hp.IP))
	b = binary.BigEndian.AppendUint16(b, hp.Port)
	return b
}

func readHostPort(b []byte) (netsim.HostPort, []byte, bool) {
	if len(b) < 6 {
		return netsim.HostPort{}, nil, false
	}
	hp := netsim.HostPort{
		IP:   netsim.IP(binary.BigEndian.Uint32(b)),
		Port: binary.BigEndian.Uint16(b[4:]),
	}
	return hp, b[6:], true
}

// FlowKey is the TCPStore key for a flow as seen from one direction. Both
// the client tuple (client→VIP) and the SNAT return tuple (server→VIP)
// map to the same record so that a recovering instance can look the flow
// up from whichever side retransmits first.
// The string form is retained for tests and diagnostics; the dataplane
// uses AppendFlowKey to build the same bytes into reused scratch.
func FlowKey(t netsim.FourTuple) string {
	return string(AppendFlowKey(nil, t))
}

const hexDigits = "0123456789abcdef"

// FlowKeyLen is the fixed encoded length of a flow key:
// "yoda:f:" + 8 + ':' + 4 + ':' + 8 + ':' + 4.
const FlowKeyLen = 7 + 8 + 1 + 4 + 1 + 8 + 1 + 4

// AppendFlowKey appends the TCPStore key for t to dst and returns the
// extended slice. The bytes are identical to FlowKey's
// "yoda:f:%08x:%04x:%08x:%04x" rendering — the on-the-wire key format is
// pinned by recovery (a record written by one instance must be found by
// another) — but build without fmt's reflection or allocation.
func AppendFlowKey(dst []byte, t netsim.FourTuple) []byte {
	dst = append(dst, "yoda:f:"...)
	dst = appendHex32(dst, uint32(t.Src.IP))
	dst = append(dst, ':')
	dst = appendHex16(dst, t.Src.Port)
	dst = append(dst, ':')
	dst = appendHex32(dst, uint32(t.Dst.IP))
	dst = append(dst, ':')
	dst = appendHex16(dst, t.Dst.Port)
	return dst
}

func appendHex32(dst []byte, v uint32) []byte {
	return append(dst,
		hexDigits[v>>28&0xf], hexDigits[v>>24&0xf],
		hexDigits[v>>20&0xf], hexDigits[v>>16&0xf],
		hexDigits[v>>12&0xf], hexDigits[v>>8&0xf],
		hexDigits[v>>4&0xf], hexDigits[v&0xf])
}

func appendHex16(dst []byte, v uint16) []byte {
	return append(dst,
		hexDigits[v>>12&0xf], hexDigits[v>>8&0xf],
		hexDigits[v>>4&0xf], hexDigits[v&0xf])
}
