package core

import (
	"repro/internal/netsim"
	"repro/internal/securesim"
)

// SSL termination (§5.2). The securesim protocol is engineered so that
// termination composes with Yoda's availability machinery:
//
//   - ciphertext is length-preserving, so the tunnel keeps doing pure
//     sequence translation and per-packet keystream XOR (no buffering);
//   - the ServerHello is a deterministic function of the client's hello
//     and the service identity, so any instance can (re)send it — the
//     paper's "another YODA instance resends the entire certificate";
//   - the session key is persisted to TCPStore *before* the ServerHello
//     ACKs the client's hello, honouring the storage-before-ACK rule.
//
// TLS flows are pinned to their backend for the connection's lifetime
// (keep-alive re-selection would require re-inspecting ciphertext
// mid-stream; documented simplification).

// flowTLS is the in-memory secure-session state.
type flowTLS struct {
	key            [32]byte
	serverHelloLen int
}

// InstallTLS configures SSL termination for a VIP: the certificate
// presented to clients and the shared service secret from which every
// instance derives identical handshake keys.
func (in *Instance) InstallTLS(vip netsim.IP, id *securesim.Identity) {
	in.tlsIdents[vip] = id
}

// RemoveTLS drops a VIP's TLS identity.
func (in *Instance) RemoveTLS(vip netsim.IP) { delete(in.tlsIdents, vip) }

// clientDataBase returns the sequence number of the first application
// byte from the client (after the SYN, and after the ClientHello for
// TLS flows).
func (f *flow) clientDataBase() uint32 {
	base := f.clientISN + 1
	if f.tls != nil {
		base += uint32(securesim.ClientHelloSize)
	}
	return base
}

// toClientDataBase returns the first application-byte sequence number in
// the instance→client direction (after the SYN-ACK, and after the
// ServerHello for TLS flows).
func (f *flow) toClientDataBase() uint32 {
	base := f.c + 1
	if f.tls != nil {
		base += uint32(f.tls.serverHelloLen)
	}
	return base
}

// tlsAdvance processes TLS framing in the connection phase. It returns
// true when the packet is fully handled (handshake still in progress) and
// HTTP parsing must not run yet. prevLen is len(reqBuf) before this
// packet's bytes were assembled; on exit reqBuf holds plaintext
// application data only.
func (in *Instance) tlsAdvance(f *flow, prevLen int) bool {
	if f.tls != nil {
		// Established: decrypt the newly assembled ciphertext in place.
		// Positions in reqBuf equal keystream offsets (length preserved).
		if len(f.reqBuf) > prevLen {
			dec := securesim.KeystreamXOR(f.tls.key, securesim.DirClientToServer,
				uint64(prevLen), f.reqBuf[prevLen:])
			copy(f.reqBuf[prevLen:], dec)
		}
		return false
	}
	id := in.tlsIdents[f.vip.IP]
	if id == nil {
		return false
	}
	is, complete := securesim.IsClientHello(f.reqBuf)
	if !is {
		return false // plaintext HTTP on a TLS-enabled VIP is still served
	}
	if !complete {
		// ACK what we have and wait for the rest of the hello.
		in.net.Send(&netsim.Packet{
			Src: f.vip, Dst: f.client,
			Flags: netsim.FlagACK, Seq: f.c + 1, Ack: f.clientNextSeq,
		})
		return true
	}
	serverHello, key, err := id.ServerAccept(f.reqBuf[:securesim.ClientHelloSize])
	if err != nil {
		in.reject(f, 400, "bad TLS hello")
		return true
	}
	tail := f.reqBuf[securesim.ClientHelloSize:]
	f.tls = &flowTLS{key: key, serverHelloLen: len(serverHello)}
	if len(tail) > 0 {
		f.reqBuf = securesim.KeystreamXOR(key, securesim.DirClientToServer, 0, tail)
	} else {
		f.reqBuf = nil
	}
	// Persist the session key before the ServerHello acknowledges the
	// hello (the hello will never be retransmitted once ACKed, and the
	// key cannot be recomputed without it). Under StrictPersist a flow
	// whose key is unrecoverable is dropped before the hello is ACKed:
	// the client's hello retransmissions hit a dead tuple and it retries
	// with a fresh connection.
	in.writeBarrier(f, in.barrierEntries(f, PhaseConn, false), func() {
		in.sendServerHello(f, serverHello)
		// Early data may already contain the full request.
		in.tryDispatchRequest(f)
	}, func(error) {
		in.teardown(f, false)
	})
	return true
}

// sendServerHello emits the deterministic handshake reply.
func (in *Instance) sendServerHello(f *flow, serverHello []byte) {
	in.net.Send(&netsim.Packet{
		Src: f.vip, Dst: f.client,
		Flags:   netsim.FlagACK | netsim.FlagPSH,
		Seq:     f.c + 1,
		Ack:     f.clientNextSeq,
		Window:  1 << 20,
		Payload: serverHello,
	})
}

// tlsDecryptFromClient transforms a tunneled client payload to plaintext.
func (f *flow) tlsDecryptFromClient(seq uint32, payload []byte) []byte {
	if f.tls == nil || len(payload) == 0 {
		return payload
	}
	return securesim.KeystreamXOR(f.tls.key, securesim.DirClientToServer,
		uint64(seq-f.clientDataBase()), payload)
}

// tlsEncryptToClient transforms a tunneled server payload to ciphertext.
func (f *flow) tlsEncryptToClient(serverSeq uint32, payload []byte) []byte {
	if f.tls == nil || len(payload) == 0 {
		return payload
	}
	return securesim.KeystreamXOR(f.tls.key, securesim.DirServerToClient,
		uint64(serverSeq-(f.s+1)), payload)
}
