package core_test

import (
	"bytes"
	"flag"
	"fmt"
	"strings"
	"testing"
	"time"

	"repro/internal/cluster"
	"repro/internal/core"
	"repro/internal/httpsim"
	"repro/internal/memcache"
	"repro/internal/netsim"
	"repro/internal/tcpstore"
)

// shardsFlag lets CI sweep the shard count of the sharded end-to-end
// tests (ci.sh runs this package with -shards=4 under -race).
var shardsFlag = flag.Int("shards", 4, "shard count for sharded cluster tests")

// newShardedTestbed mirrors newTestbed on a sharded dataplane: stores,
// backends, instances, and clients are spread round-robin across shards,
// so every request crosses shards several times (client shard -> L4 on
// shard 0 -> instance shard -> store shards -> backend shard and back).
func newShardedTestbed(t *testing.T, seed int64, shards, nYoda int) *testbed {
	t.Helper()
	c := cluster.NewSharded(seed, shards)
	c.AddStoreServers(3, memcache.DefaultSimServerConfig())
	objects := map[string][]byte{
		"/10k":  bytes.Repeat([]byte("a"), 10*1024),
		"/100k": bytes.Repeat([]byte("b"), 100*1024),
		"/tiny": []byte("ok"),
	}
	for i := 1; i <= 3; i++ {
		c.AddBackend(fmt.Sprintf("srv-%d", i), objects, httpsim.DefaultServerConfig())
	}
	c.AddYodaN(nYoda, core.DefaultConfig(), tcpstore.DefaultConfig())
	vip := c.AddVIP("mysite")
	c.InstallPolicy(vip, c.SimpleSplitRules("srv-1", "srv-2", "srv-3"), nil)
	return &testbed{
		c:       c,
		vip:     vip,
		vipHP:   netsim.HostPort{IP: vip, Port: 80},
		objects: objects,
	}
}

// runShardedFetches drives nClients concurrent fetches through a sharded
// testbed and returns a deterministic transcript of the outcomes.
func runShardedFetches(t *testing.T, seed int64, shards int) string {
	t.Helper()
	tb := newShardedTestbed(t, seed, shards, 4)
	if tb.c.Sharded != nil {
		defer tb.c.Sharded.Close()
	}
	paths := []string{"/10k", "/100k", "/tiny"}
	const nClients = 12
	results := make([]*httpsim.FetchResult, nClients)
	for i := 0; i < nClients; i++ {
		i := i
		cl := tb.c.NewClient(httpsim.DefaultClientConfig())
		cl.Get(tb.vipHP, paths[i%len(paths)], func(r *httpsim.FetchResult) { results[i] = r })
	}
	tb.c.RunFor(10 * time.Second)
	var lines []string
	for i, res := range results {
		path := paths[i%len(paths)]
		if res == nil {
			t.Fatalf("client %d (%s): fetch never completed", i, path)
		}
		if res.Err != nil {
			t.Fatalf("client %d (%s): %v", i, path, res.Err)
		}
		if !bytes.Equal(res.Resp.Body, tb.objects[path]) {
			t.Fatalf("client %d (%s): body corrupted, %d bytes", i, path, len(res.Resp.Body))
		}
		lines = append(lines, fmt.Sprintf("client%d %s elapsed=%v", i, path, res.Elapsed()))
	}
	return strings.Join(lines, "\n")
}

// TestShardedClusterEndToEnd pushes full HTTP fetches through the entire
// stack — client TCP, L4 mux, Yoda instance with TCPStore state writes,
// backend — on a multi-shard dataplane. Under `go test -race` this is
// the whole-stack handoff race check.
func TestShardedClusterEndToEnd(t *testing.T) {
	shards := *shardsFlag
	if shards < 2 {
		shards = 2
	}
	runShardedFetches(t, 1, shards)
}

// TestShardedClusterDeterminism runs the same sharded testbed twice and
// requires byte-identical outcome transcripts (completion timing
// included): conservative sync must make the full stack reproducible
// regardless of goroutine scheduling.
func TestShardedClusterDeterminism(t *testing.T) {
	shards := *shardsFlag
	if shards < 2 {
		shards = 2
	}
	first := runShardedFetches(t, 3, shards)
	second := runShardedFetches(t, 3, shards)
	if first != second {
		t.Fatalf("sharded cluster not deterministic:\nrun1:\n%s\n\nrun2:\n%s", first, second)
	}
}
