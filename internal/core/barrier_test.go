package core_test

import (
	"testing"
	"time"

	"repro/internal/cluster"
	"repro/internal/core"
	"repro/internal/httpsim"
	"repro/internal/memcache"
	"repro/internal/netsim"
	"repro/internal/tcp"
	"repro/internal/tcpstore"
	"repro/internal/workload"
)

// barrierTestbed builds a one-instance cluster whose TCPStore servers
// are all dead before the first client packet, so every write barrier
// resolves by OpTimeout with nothing persisted.
func barrierTestbed(t *testing.T, coreCfg core.Config, storeCfg tcpstore.Config) (*cluster.Cluster, netsim.HostPort) {
	t.Helper()
	c := cluster.New(7)
	c.AddStoreServers(2, memcache.DefaultSimServerConfig())
	objects := map[string][]byte{"/x": workload.SynthBody("/x", 2048)}
	c.AddBackend("srv-1", objects, httpsim.DefaultServerConfig())
	c.AddYoda(coreCfg, storeCfg)
	vip := c.AddVIP("svc")
	c.InstallPolicy(vip, c.SimpleSplitRules("srv-1"), nil)
	for _, s := range c.StoreServers {
		s.Host().Detach()
	}
	return c, netsim.HostPort{IP: vip, Port: 80}
}

// TestBarrierDelaysSynAckDuringStoreOutage pins the §4.1 ordering at the
// packet level: when every store server is unreachable, the SYN-ACK must
// not be sent until the storage-a barrier resolves (at OpTimeout) — the
// instance never ACKs first and persists later. Under the default
// degrade-and-proceed policy the handshake then completes.
func TestBarrierDelaysSynAckDuringStoreOutage(t *testing.T) {
	storeCfg := tcpstore.DefaultConfig()
	c, vipHP := barrierTestbed(t, core.DefaultConfig(), storeCfg)

	h := c.ClientHost()
	var start, established time.Duration
	c.Net.Schedule(10*time.Millisecond, func() {
		start = c.Net.Now()
		tcp.Dial(h, vipHP, tcp.Callbacks{
			OnEstablished: func(*tcp.Conn) {
				if established == 0 {
					established = c.Net.Now()
				}
			},
		}, tcp.DefaultConfig())
	})
	c.Net.RunFor(5 * time.Second)

	if established == 0 {
		t.Fatal("handshake never completed: degrade-and-proceed must still SYN-ACK after the barrier resolves")
	}
	wait := established - start
	if wait < storeCfg.OpTimeout {
		t.Fatalf("SYN-ACK after %v, before the %v store OpTimeout: handshake ACKed before persistence resolved", wait, storeCfg.OpTimeout)
	}
	if wait > storeCfg.OpTimeout+time.Second {
		t.Fatalf("SYN-ACK after %v: barrier did not resolve at the %v OpTimeout", wait, storeCfg.OpTimeout)
	}
	in := c.Yoda[0]
	if in.Barrier.Commits != 0 {
		t.Fatalf("Barrier.Commits = %d with every replica dead", in.Barrier.Commits)
	}
	if in.Barrier.Degraded == 0 || in.Barrier.Timeouts == 0 {
		t.Fatalf("barrier outcome not accounted: %+v", in.Barrier)
	}
}

// TestStrictPersistDropsUnrecoverableHandshakes flips the barrier's
// failure path on: with StrictPersist and a dead store, the SYN is never
// answered — the flow aborts instead of being acknowledged in a state
// the cluster cannot recover.
func TestStrictPersistDropsUnrecoverableHandshakes(t *testing.T) {
	coreCfg := core.DefaultConfig()
	coreCfg.StrictPersist = true
	c, vipHP := barrierTestbed(t, coreCfg, tcpstore.DefaultConfig())

	h := c.ClientHost()
	established := false
	c.Net.Schedule(10*time.Millisecond, func() {
		tcp.Dial(h, vipHP, tcp.Callbacks{
			OnEstablished: func(*tcp.Conn) { established = true },
		}, tcp.DefaultConfig())
	})
	c.Net.RunFor(5 * time.Second)

	if established {
		t.Fatal("StrictPersist handshake completed despite an unrecoverable flow record")
	}
	in := c.Yoda[0]
	if in.Barrier.Aborted == 0 {
		t.Fatalf("no aborted barriers accounted: %+v", in.Barrier)
	}
	if in.FlowCount() != 0 {
		t.Fatalf("aborted flows leaked: FlowCount = %d", in.FlowCount())
	}
}

// TestSNATExhaustionRejectsDials is the regression test for the silent
// port-reuse bug: with a single-port SNAT slice, concurrent dials past
// the first must be rejected with a 503 and counted, never spliced onto
// the in-use port.
func TestSNATExhaustionRejectsDials(t *testing.T) {
	c := cluster.New(13)
	c.AddStoreServers(2, memcache.DefaultSimServerConfig())
	objects := map[string][]byte{"/x": workload.SynthBody("/x", 400_000)}
	c.AddBackend("srv-1", objects, httpsim.DefaultServerConfig())
	coreCfg := core.DefaultConfig()
	coreCfg.SNATCount = 1
	c.AddYoda(coreCfg, tcpstore.DefaultConfig())
	vip := c.AddVIP("svc")
	c.InstallPolicy(vip, c.SimpleSplitRules("srv-1"), nil)

	vipHP := netsim.HostPort{IP: vip, Port: 80}
	done, ok200, rejected := 0, 0, 0
	const flows = 4
	for i := 0; i < flows; i++ {
		cl := c.NewClient(httpsim.DefaultClientConfig())
		cl.Get(vipHP, "/x", func(r *httpsim.FetchResult) {
			done++
			switch {
			case r.Err == nil && r.Resp.StatusCode == 200:
				ok200++
			case r.Err == nil && r.Resp.StatusCode == 503:
				rejected++
			}
		})
	}
	c.Net.RunFor(time.Minute)

	if done != flows {
		t.Fatalf("done = %d of %d: a rejected dial hung instead of answering", done, flows)
	}
	if ok200 == 0 {
		t.Fatal("no flow succeeded: the single SNAT port was never usable")
	}
	if rejected == 0 {
		t.Fatal("no flow was rejected: concurrent dials shared the one SNAT port")
	}
	st := c.Yoda[0].Stats[vip]
	if st == nil || st.SNATExhausted == 0 {
		t.Fatalf("SNATExhausted not counted (stats: %+v)", st)
	}
	if int(st.SNATExhausted) != rejected {
		t.Fatalf("SNATExhausted = %d, want %d (one per rejected dial)", st.SNATExhausted, rejected)
	}
}
