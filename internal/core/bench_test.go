package core

import (
	"testing"
	"time"

	"repro/internal/l4lb"
	"repro/internal/memcache"
	"repro/internal/netsim"
	"repro/internal/tcpstore"
)

// benchTunnelSetup builds an instance with one synthetic flow already in
// the tunnel phase, so the benchmark isolates the per-packet translation
// fast path (dispatch, sequence rewrite, SNAT forward) from connection
// establishment.
func benchTunnelSetup(n *netsim.Network) (*Instance, *flow) {
	instHost := netsim.NewHost(n, 0x0a000010)
	lb := l4lb.New(n, l4lb.DefaultConfig())
	store := tcpstore.New(instHost, nil, tcpstore.DefaultConfig())
	in := NewInstance(instHost, lb, store, DefaultConfig())

	f := &flow{
		vip:           netsim.HostPort{IP: 0x0a0000fe, Port: 80},
		client:        netsim.HostPort{IP: 0xc0a80001, Port: 40000},
		server:        netsim.HostPort{IP: 0x0a000020, Port: 8080},
		snat:          netsim.HostPort{IP: 0x0a0000fe, Port: 20001},
		clientISN:     1000,
		c:             5000,
		s:             9000,
		delta:         ^uint32(3999), // 5000 - 9000 in sequence space
		state:         stateTunnel,
		clientNextSeq: 1001,
		toClientNext:  5001,
	}
	in.flows.put(f.clientTuple(), f)
	in.flows.put(f.serverTuple(), f)

	// Sinks for both forwarding directions release the pooled packets.
	sink := netsim.NodeFunc(func(pkt *netsim.Packet) { n.ReleasePacket(pkt) })
	n.Attach(f.server.IP, sink)
	n.Attach(f.client.IP, sink)
	return in, f
}

// BenchmarkFlowFastPath measures one tunneled client data packet through
// the instance: flow lookup, header rewrite, SNAT bookkeeping, and the
// forwarded packet's delivery. This is the steady-state per-packet cost
// of every established connection the balancer carries.
func BenchmarkFlowFastPath(b *testing.B) {
	n := netsim.New(42)
	in, f := benchTunnelSetup(n)
	payload := make([]byte, 512)
	seq := f.clientNextSeq

	b.SetBytes(int64(len(payload)))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		pkt := n.AllocPacket()
		pkt.Src, pkt.Dst = f.client, f.vip
		pkt.Flags = netsim.FlagACK
		pkt.Seq, pkt.Ack = seq, f.toClientNext
		pkt.Window = 1 << 20
		pkt.Payload = payload
		seq += uint32(len(payload))
		in.handlePacket(pkt)
		n.Step() // deliver the forwarded packet to the backend sink
	}
}

// TestFlowFastPathAllocFree locks in the zero-allocation tunnel path:
// with warm pools, translating and forwarding one client packet must not
// allocate.
func TestFlowFastPathAllocFree(t *testing.T) {
	n := netsim.New(7)
	in, f := benchTunnelSetup(n)
	payload := make([]byte, 512)
	seq := f.clientNextSeq
	send := func() {
		pkt := n.AllocPacket()
		pkt.Src, pkt.Dst = f.client, f.vip
		pkt.Flags = netsim.FlagACK
		pkt.Seq, pkt.Ack = seq, f.toClientNext
		pkt.Window = 1 << 20
		pkt.Payload = payload
		seq += uint32(len(payload))
		in.handlePacket(pkt)
		n.Step()
	}
	for i := 0; i < 64; i++ {
		send() // warm pools and per-VIP stats entries
	}
	allocs := testing.AllocsPerRun(200, send)
	if allocs != 0 {
		t.Fatalf("tunnel fast path allocates %.1f objects/op, want 0", allocs)
	}
	_ = time.Duration(0)
}

// benchStorageSetup builds an instance whose TCPStore client talks to
// simulated memcached servers, plus one tunnel-phase flow, so a benchmark
// can drive the full storage write path: record marshal, flow keys, batch
// grouping, protocol encode, simulated TCP delivery, server-side parse and
// engine insert, reply, and barrier resolution.
func benchStorageSetup(n *netsim.Network) (*Instance, *flow) {
	var servers []netsim.HostPort
	for i := 0; i < 3; i++ {
		h := netsim.NewHost(n, netsim.IPv4(10, 0, 3, byte(i+1)))
		memcache.NewSimServer(h, memcache.DefaultPort, memcache.DefaultSimServerConfig())
		servers = append(servers, netsim.HostPort{IP: h.IP(), Port: memcache.DefaultPort})
	}
	instHost := netsim.NewHost(n, 0x0a000010)
	lb := l4lb.New(n, l4lb.DefaultConfig())
	store := tcpstore.New(instHost, servers, tcpstore.DefaultConfig())
	in := NewInstance(instHost, lb, store, DefaultConfig())

	f := &flow{
		vip:       netsim.HostPort{IP: 0x0a0000fe, Port: 80},
		client:    netsim.HostPort{IP: 0xc0a80001, Port: 40000},
		server:    netsim.HostPort{IP: 0x0a000020, Port: 8080},
		snat:      netsim.HostPort{IP: 0x0a0000fe, Port: 20001},
		clientISN: 1000, c: 5000, s: 9000,
		delta:       ^uint32(3999),
		state:       stateTunnel,
		backendName: "be-1",
	}
	in.flows.put(f.clientTuple(), f)
	in.flows.put(f.serverTuple(), f)
	return in, f
}

// BenchmarkStorageWritePath measures one storage-b shaped barrier write
// end to end: both tuple-oriented records marshalled, keyed, batched into
// per-replica msets, carried over simulated TCP, parsed and stored by the
// memcached engine, and the barrier commit run on the reply. This is the
// hottest cross-package path in the repro — every flow crosses it at
// least twice.
func BenchmarkStorageWritePath(b *testing.B) {
	n := netsim.New(42)
	in, f := benchStorageSetup(n)
	done := false
	commit := func() { done = true }
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		done = false
		in.writeBarrier(f, in.barrierEntries(f, PhaseTunnel, true), commit, nil)
		for !done {
			n.Step()
		}
	}
}
