package core

import "repro/internal/tcpstore"

// The write barrier is the dataplane's one way to persist flow state:
// "write these records to TCPStore, then continue, or take this failure
// path". It is how the paper's §4.1 invariant — state reaches the store
// before the packet that created it is acknowledged — shows up in code:
// the acknowledgement (SYN-ACK, ACK-to-server, ServerHello) lives in the
// commit continuation, so it structurally cannot be sent early.
//
// Failure policy. By default the barrier degrades: if the store is
// unreachable it counts the loss and runs the commit anyway, because
// availability of new connections beats recoverability (a dead TCPStore
// degrades Yoda to HAProxy semantics — the paper assumes the store is
// up). With Config.StrictPersist the barrier instead takes the failure
// path when no replica stored a record, so the flow is never
// acknowledged in a state the cluster cannot recover.

// BarrierStats counts barrier resolutions. Commits, Degraded and
// Aborted are disjoint; Timeouts is counted in addition (a timed-out
// barrier also resolves as one of the other three).
type BarrierStats struct {
	// Commits: every record reached every replica.
	Commits uint64
	// Degraded: some replica write failed but the commit ran anyway
	// (default policy, or the record is still on ≥1 replica).
	Degraded uint64
	// Aborted: StrictPersist and a record is unrecoverable — the failure
	// continuation ran and the acknowledgement was never sent.
	Aborted uint64
	// Timeouts: the store resolved at OpTimeout rather than by replies.
	Timeouts uint64
}

// writeBarrier persists entries in one batched store round trip, then
// runs commit — or fail, when StrictPersist is set and some record
// ended up on zero replicas. Exactly one of commit/fail runs, and only
// if f is still the live flow for its client tuple (a flow torn down
// while the write was in flight gets neither). fail may be nil, which
// forces the degrade path even under StrictPersist (used where no
// sensible abort exists).
func (in *Instance) writeBarrier(f *flow, entries []tcpstore.Entry, commit func(), fail func(error)) {
	storeStart := in.net.Now()
	in.store.SetMulti(entries, func(res tcpstore.SetResult) {
		in.StorageLat.Add(in.net.Now() - storeStart)
		if in.flows[f.clientTuple()] != f {
			return // flow torn down while the write was in flight
		}
		if res.TimedOut {
			in.Barrier.Timeouts++
		}
		switch {
		case res.Err != nil && in.cfg.StrictPersist && fail != nil:
			in.Barrier.Aborted++
			fail(res.Err)
			return
		case res.Err != nil || res.Failed > 0:
			in.Barrier.Degraded++
		default:
			in.Barrier.Commits++
		}
		commit()
	})
}

// barrierEntries builds the store records for a flow: the client-tuple
// orientation always, plus the server-tuple orientation once a backend
// is bound (both directions must recover to the same flow, Figure 3).
func barrierEntries(f *flow, phase FlowPhase, bothTuples bool) []tcpstore.Entry {
	rec := f.record(phase).Marshal()
	entries := []tcpstore.Entry{{Key: FlowKey(f.clientTuple()), Value: rec}}
	if bothTuples {
		entries = append(entries, tcpstore.Entry{Key: FlowKey(f.serverTuple()), Value: rec})
	}
	return entries
}
