package core

import (
	"time"

	"repro/internal/netsim"
	"repro/internal/tcpstore"
)

// The write barrier is the dataplane's one way to persist flow state:
// "write these records to TCPStore, then continue, or take this failure
// path". It is how the paper's §4.1 invariant — state reaches the store
// before the packet that created it is acknowledged — shows up in code:
// the acknowledgement (SYN-ACK, ACK-to-server, ServerHello) lives in the
// commit continuation, so it structurally cannot be sent early.
//
// Failure policy. By default the barrier degrades: if the store is
// unreachable it counts the loss and runs the commit anyway, because
// availability of new connections beats recoverability (a dead TCPStore
// degrades Yoda to HAProxy semantics — the paper assumes the store is
// up). With Config.StrictPersist the barrier instead takes the failure
// path when no replica stored a record, so the flow is never
// acknowledged in a state the cluster cannot recover.

// BarrierStats counts barrier resolutions. Commits, Degraded and
// Aborted are disjoint; Timeouts is counted in addition (a timed-out
// barrier also resolves as one of the other three).
type BarrierStats struct {
	// Commits: every record reached every replica.
	Commits uint64
	// Degraded: some replica write failed but the commit ran anyway
	// (default policy, or the record is still on ≥1 replica).
	Degraded uint64
	// Aborted: StrictPersist and a record is unrecoverable — the failure
	// continuation ran and the acknowledgement was never sent.
	Aborted uint64
	// Timeouts: the store resolved at OpTimeout rather than by replies.
	Timeouts uint64
	// Skipped: barriers elided entirely in hybrid recovery mode because
	// the stateless derivation reproduces the record exactly (the commit
	// continuation ran synchronously, no store write was issued).
	Skipped uint64
}

// writeBarrier persists entries in one batched store round trip, then
// runs commit — or fail, when StrictPersist is set and some record
// ended up on zero replicas. Exactly one of commit/fail runs, and only
// if f is still the live flow for its client tuple (a flow torn down
// while the write was in flight gets neither). fail may be nil, which
// forces the degrade path even under StrictPersist (used where no
// sensible abort exists).
func (in *Instance) writeBarrier(f *flow, entries []tcpstore.Entry, commit func(), fail func(error)) {
	// The flow may now have store state (even a degraded write can have
	// reached a replica), so teardown must issue deletes and the hybrid
	// epoch flush can skip it.
	f.persisted = true
	op := in.takeBarrierOp()
	op.f, op.commit, op.fail = f, commit, fail
	op.storeStart = in.net.Now()
	in.store.SetMulti(entries, op.cb)
}

// barrierOp carries one in-flight barrier write's continuations. Ops are
// pooled on the instance with the store callback pre-bound, so a barrier
// write does not allocate a closure per flow event; the store invokes cb
// exactly once, which recycles the op before running the continuation
// (the continuation may start a nested barrier write).
type barrierOp struct {
	in         *Instance
	f          *flow
	commit     func()
	fail       func(error)
	storeStart time.Duration
	cb         func(tcpstore.SetResult)
}

func (in *Instance) takeBarrierOp() *barrierOp {
	if n := len(in.freeBarrierOps); n > 0 {
		op := in.freeBarrierOps[n-1]
		in.freeBarrierOps = in.freeBarrierOps[:n-1]
		return op
	}
	op := &barrierOp{in: in}
	op.cb = op.resolve
	return op
}

func (op *barrierOp) resolve(res tcpstore.SetResult) {
	in, f, commit, fail := op.in, op.f, op.commit, op.fail
	storeStart := op.storeStart
	op.f, op.commit, op.fail = nil, nil, nil
	if len(in.freeBarrierOps) < 32 {
		in.freeBarrierOps = append(in.freeBarrierOps, op)
	}
	in.StorageLat.Add(in.net.Now() - storeStart)
	if in.flows.get(f.clientTuple()) != f {
		return // flow torn down while the write was in flight
	}
	if res.TimedOut {
		in.Barrier.Timeouts++
	}
	switch {
	case res.Err != nil && in.cfg.StrictPersist && fail != nil:
		in.Barrier.Aborted++
		fail(res.Err)
		return
	case res.Err != nil || res.Failed > 0:
		in.Barrier.Degraded++
	default:
		in.Barrier.Commits++
	}
	commit()
}

// barrierEntries builds the store records for a flow: the client-tuple
// orientation always, plus the server-tuple orientation once a backend
// is bound (both directions must recover to the same flow, Figure 3).
// The entries alias instance-owned scratch — valid only until the next
// barrierEntries or flowKey call, which the store's synchronous entry
// consumption permits — so the steady-state write path never allocates.
func (in *Instance) barrierEntries(f *flow, phase FlowPhase, bothTuples bool) []tcpstore.Entry {
	f.fillRecord(&in.recRecord, &in.recTLS, phase)
	in.recScratch = in.recRecord.AppendMarshal(in.recScratch[:0])
	rec := in.recScratch
	keys := AppendFlowKey(in.keyScratch[:0], f.clientTuple())
	in.entScratch[0] = tcpstore.Entry{Key: keys[:FlowKeyLen:FlowKeyLen], Value: rec}
	entries := in.entScratch[:1]
	if bothTuples {
		// A grow here may move the buffer; the first key's slice keeps the
		// old backing array alive, so both entries stay valid.
		keys = AppendFlowKey(keys, f.serverTuple())
		in.entScratch[1] = tcpstore.Entry{Key: keys[FlowKeyLen:], Value: rec}
		entries = in.entScratch[:2]
	}
	in.keyScratch = keys
	return entries
}

// flowKey renders t's store key into the instance's reused key scratch.
// The slice is valid until the next flowKey or barrierEntries call.
func (in *Instance) flowKey(t netsim.FourTuple) []byte {
	in.keyScratch = AppendFlowKey(in.keyScratch[:0], t)
	return in.keyScratch
}
