package core_test

import (
	"fmt"
	"math/rand"
	"testing"
	"time"

	"repro/internal/cluster"
	"repro/internal/controller"
	"repro/internal/core"
	"repro/internal/httpsim"
	"repro/internal/memcache"
	"repro/internal/netsim"
	"repro/internal/tcpstore"
	"repro/internal/workload"
)

// TestRandomFailureInjectionNeverBreaksFlows is the paper's availability
// claim as a property: for any seed-determined schedule of instance
// failures (random victims at random times, at most one alive-instance
// margin), every client flow completes. This fuzzes the recovery paths —
// connection phase, tunnel phase, mapping races — far beyond the
// hand-picked timings of the figure experiments.
func TestRandomFailureInjectionNeverBreaksFlows(t *testing.T) {
	seeds := []int64{11, 22, 33, 44, 55}
	if testing.Short() {
		seeds = seeds[:2]
	}
	for _, seed := range seeds {
		seed := seed
		t.Run(fmt.Sprintf("seed=%d", seed), func(t *testing.T) {
			runFailureInjection(t, seed)
		})
	}
}

func runFailureInjection(t *testing.T, seed int64) {
	rng := rand.New(rand.NewSource(seed))
	c := cluster.New(seed)
	c.AddStoreServers(3, memcache.DefaultSimServerConfig())
	objects := map[string][]byte{}
	for i := 0; i < 6; i++ {
		p := fmt.Sprintf("/obj%d", i)
		objects[p] = workload.SynthBody(p, 4096+rng.Intn(120_000))
	}
	for i := 1; i <= 4; i++ {
		c.AddBackend(fmt.Sprintf("srv-%d", i), objects, httpsim.DefaultServerConfig())
	}
	const nInstances = 5
	c.AddYodaN(nInstances, core.DefaultConfig(), tcpstore.DefaultConfig())
	vip := c.AddVIP("svc")
	ctCfg := controller.DefaultConfig()
	ctCfg.ScaleInterval = 0
	ct := controller.New(c, ctCfg)
	ct.SetPolicy(vip, c.SimpleSplitRules("srv-1", "srv-2", "srv-3", "srv-4"), nil)
	ct.Start()

	// Closed-loop clients with staggered starts.
	vipHP := netsim.HostPort{IP: vip, Port: 80}
	const duration = 15 * time.Second
	done, broken := 0, 0
	for p := 0; p < 8; p++ {
		cl := c.NewClient(httpsim.DefaultClientConfig())
		var loop func()
		loop = func() {
			if c.Net.Now() >= duration {
				return
			}
			path := fmt.Sprintf("/obj%d", rng.Intn(6))
			cl.Get(vipHP, path, func(r *httpsim.FetchResult) {
				done++
				if r.Err != nil {
					broken++
					t.Logf("broken flow at t=%v: %v", c.Net.Now(), r.Err)
				}
				loop()
			})
		}
		c.Net.Schedule(time.Duration(rng.Intn(300))*time.Millisecond, loop)
	}

	// Random failure schedule: kill up to nInstances-2 instances at random
	// times, each at least 1.5s apart so the monitor can repair between
	// failures (simultaneous correlated failures are Figure 12's job).
	kills := 1 + rng.Intn(nInstances-2)
	at := time.Duration(0)
	killed := map[int]bool{}
	for k := 0; k < kills; k++ {
		at += 1500*time.Millisecond + time.Duration(rng.Intn(3000))*time.Millisecond
		victim := rng.Intn(nInstances)
		for killed[victim] {
			victim = (victim + 1) % nInstances
		}
		killed[victim] = true
		v := victim
		c.Net.Schedule(at, func() { c.Yoda[v].Fail() })
	}

	c.Net.RunFor(duration + 45*time.Second)
	if done == 0 {
		t.Fatal("no flows completed")
	}
	if broken != 0 {
		t.Fatalf("%d of %d flows broke under %d random failures (seed %d)", broken, done, kills, seed)
	}
	recovered := uint64(0)
	for _, in := range c.Yoda {
		recovered += in.Recovered
	}
	t.Logf("seed %d: %d flows, %d kills, %d recoveries, 0 broken", seed, done, kills, recovered)
}

// TestStoreServerFailureDuringFlows kills a TCPStore (Memcached) server
// while flows are active: with K=2 replication the flow records survive
// and recovery still works; new flows keep succeeding.
func TestStoreServerFailureDuringFlows(t *testing.T) {
	c := cluster.New(99)
	c.AddStoreServers(3, memcache.DefaultSimServerConfig())
	objects := map[string][]byte{"/x": workload.SynthBody("/x", 60_000)}
	c.AddBackend("srv-1", objects, httpsim.DefaultServerConfig())
	c.AddYodaN(2, core.DefaultConfig(), tcpstore.DefaultConfig())
	vip := c.AddVIP("svc")
	ctCfg := controller.DefaultConfig()
	ctCfg.ScaleInterval = 0
	ct := controller.New(c, ctCfg)
	ct.SetPolicy(vip, c.SimpleSplitRules("srv-1"), nil)
	ct.Start()

	vipHP := netsim.HostPort{IP: vip, Port: 80}
	done, broken := 0, 0
	for i := 0; i < 10; i++ {
		cl := c.NewClient(httpsim.DefaultClientConfig())
		i := i
		c.Net.Schedule(time.Duration(i)*60*time.Millisecond, func() {
			cl.Get(vipHP, "/x", func(r *httpsim.FetchResult) {
				done++
				if r.Err != nil {
					broken++
				}
			})
		})
	}
	// Kill one store server mid-run, then a Yoda instance shortly after:
	// recovery must come from the surviving replica.
	c.Net.Schedule(150*time.Millisecond, func() { c.StoreServers[0].Host().Detach() })
	c.Net.Schedule(300*time.Millisecond, func() {
		for _, in := range c.Yoda {
			if in.FlowCount() > 0 {
				in.Fail()
				return
			}
		}
	})
	c.Net.RunFor(2 * time.Minute)
	if done != 10 {
		t.Fatalf("done = %d", done)
	}
	if broken != 0 {
		t.Fatalf("%d flows broke despite surviving TCPStore replica", broken)
	}
}
