package core_test

import (
	"bytes"
	"fmt"
	"testing"
	"time"

	"repro/internal/cluster"
	"repro/internal/controller"
	"repro/internal/core"
	"repro/internal/httpsim"
	"repro/internal/memcache"
	"repro/internal/netsim"
	"repro/internal/rules"
	"repro/internal/tcpstore"
)

// TestPOSTBodyForwardedThroughYoda sends a request whose body spans
// multiple segments beyond the header: selection happens on the header,
// and the body must still reach the backend intact (it rides the same
// client sequence space through the tunnel).
func TestPOSTBodyForwardedThroughYoda(t *testing.T) {
	c := cluster.New(61)
	c.AddStoreServers(2, memcache.DefaultSimServerConfig())
	var gotBody []byte
	bh := netsim.NewHost(c.Net, netsim.IPv4(10, 0, 2, 99))
	httpsim.NewServer(bh, 80, func(req *httpsim.Request) *httpsim.Response {
		gotBody = req.Body
		return httpsim.NewResponse(200, []byte(fmt.Sprintf("got %d bytes", len(req.Body))))
	}, httpsim.DefaultServerConfig())
	backend := rules.Backend{Name: "upload", Addr: netsim.HostPort{IP: bh.IP(), Port: 80}}

	c.AddYodaN(1, core.DefaultConfig(), tcpstore.DefaultConfig())
	vip := c.AddVIP("svc")
	c.InstallPolicy(vip, []rules.Rule{{
		Name: "all", Priority: 1, Match: rules.Match{URLGlob: "*"},
		Action: rules.Action{Type: rules.ActionSplit,
			Split: []rules.WeightedBackend{{Backend: backend, Weight: 1}}},
	}}, nil)

	body := bytes.Repeat([]byte("payload!"), 8000) // 64 KB body, many segments
	req := httpsim.NewRequest("/upload", "svc")
	req.Method = "POST"
	req.Body = body
	cl := c.NewClient(httpsim.DefaultClientConfig())
	var res *httpsim.FetchResult
	cl.Fetch(netsim.HostPort{IP: vip, Port: 80}, req, func(r *httpsim.FetchResult) { res = r })
	c.Net.RunFor(20 * time.Second)
	if res == nil || res.Err != nil {
		t.Fatalf("res = %+v", res)
	}
	if !bytes.Equal(gotBody, body) {
		t.Fatalf("backend got %d bytes, want %d", len(gotBody), len(body))
	}
	if string(res.Resp.Body) != fmt.Sprintf("got %d bytes", len(body)) {
		t.Fatalf("response: %q", res.Resp.Body)
	}
}

// TestStickySessionsE2E drives the Table-3 rule-4 policy through Yoda:
// after a session's first request pins a backend, every later connection
// carrying the same cookie lands on it, across different client ports and
// different Yoda instances.
func TestStickySessionsE2E(t *testing.T) {
	c := cluster.New(62)
	c.AddStoreServers(2, memcache.DefaultSimServerConfig())
	objs := map[string][]byte{"/account": []byte("hello")}
	c.AddBackend("srv-1", objs, httpsim.DefaultServerConfig())
	c.AddBackend("srv-2", objs, httpsim.DefaultServerConfig())
	c.AddBackend("srv-3", objs, httpsim.DefaultServerConfig())
	c.AddYodaN(1, core.DefaultConfig(), tcpstore.DefaultConfig())
	vip := c.AddVIP("svc")
	split := c.SimpleSplitRules("srv-1", "srv-2", "srv-3")
	sticky := rules.Rule{
		Name: "r-cookie", Priority: 5, Match: rules.Match{CookieName: "session"},
		Action: rules.Action{Type: rules.ActionTable, Table: "cookie-table", TableCookie: "session"},
	}
	c.InstallPolicy(vip, append([]rules.Rule{sticky}, split...), nil)

	fetch := func(cookie string) {
		req := httpsim.NewRequest("/account", "svc")
		if cookie != "" {
			req.SetHeader("Cookie", "session="+cookie)
		}
		cl := c.NewClient(httpsim.DefaultClientConfig())
		done := false
		cl.Fetch(netsim.HostPort{IP: vip, Port: 80}, req, func(r *httpsim.FetchResult) {
			if r.Err != nil {
				t.Fatalf("fetch: %v", r.Err)
			}
			done = true
		})
		c.Net.RunFor(5 * time.Second)
		if !done {
			t.Fatal("fetch incomplete")
		}
	}

	fetch("user42") // learns the pin
	var pinned string
	for name, b := range c.Backends {
		if b.Server.Requests == 1 {
			pinned = name
		}
	}
	if pinned == "" {
		t.Fatal("no backend served the first request")
	}
	for i := 0; i < 8; i++ {
		fetch("user42")
	}
	if got := c.Backends[pinned].Server.Requests; got != 9 {
		t.Fatalf("pinned backend %s served %d of 9 session requests", pinned, got)
	}
	for name, b := range c.Backends {
		if name != pinned && b.Server.Requests != 0 {
			t.Fatalf("backend %s stole %d session requests", name, b.Server.Requests)
		}
	}
}

// TestPrimaryBackupE2E drives Table 3's rules 2–3 through the full stack:
// traffic goes to the primary until it fails, then the monitor marks it
// dead and the scan falls through to the backup pool; when the primary
// recovers, new connections return to it.
func TestPrimaryBackupE2E(t *testing.T) {
	c := cluster.New(63)
	c.AddStoreServers(2, memcache.DefaultSimServerConfig())
	objs := map[string][]byte{"/style.css": []byte("css")}
	c.AddBackend("primary", objs, httpsim.DefaultServerConfig())
	c.AddBackend("backup-1", objs, httpsim.DefaultServerConfig())
	c.AddBackend("backup-2", objs, httpsim.DefaultServerConfig())
	c.AddYodaN(2, core.DefaultConfig(), tcpstore.DefaultConfig())
	vip := c.AddVIP("svc")
	ct := controller.New(c, controller.DefaultConfig())
	rs := []rules.Rule{
		{Name: "css-primary", Priority: 3, Match: rules.Match{URLGlob: "*.css"},
			Action: rules.Action{Type: rules.ActionSplit,
				Split: []rules.WeightedBackend{{Backend: c.Backends["primary"].Rec, Weight: 1}}}},
		{Name: "css-backup", Priority: 2, Match: rules.Match{URLGlob: "*.css"},
			Action: rules.Action{Type: rules.ActionSplit, Split: []rules.WeightedBackend{
				{Backend: c.Backends["backup-1"].Rec, Weight: 0.5},
				{Backend: c.Backends["backup-2"].Rec, Weight: 0.5}}}},
	}
	ct.SetPolicy(vip, rs, nil)
	ct.Start()

	burst := func(n int) (ok int) {
		done := 0
		for i := 0; i < n; i++ {
			cl := c.NewClient(httpsim.DefaultClientConfig())
			cl.Get(netsim.HostPort{IP: vip, Port: 80}, "/style.css", func(r *httpsim.FetchResult) {
				done++
				if r.Err == nil {
					ok++
				}
			})
		}
		c.Net.RunFor(10 * time.Second)
		if done != n {
			t.Fatalf("burst incomplete: %d/%d", done, n)
		}
		return ok
	}

	if ok := burst(6); ok != 6 {
		t.Fatalf("phase 1: %d ok", ok)
	}
	if c.Backends["primary"].Server.Requests != 6 {
		t.Fatalf("primary served %d, want all 6", c.Backends["primary"].Server.Requests)
	}

	// Primary dies; monitor marks it within 600ms.
	c.Backends["primary"].Server.Host().Detach()
	c.Net.RunFor(time.Second)
	if ok := burst(6); ok != 6 {
		t.Fatalf("phase 2: %d ok", ok)
	}
	if got := c.Backends["backup-1"].Server.Requests + c.Backends["backup-2"].Server.Requests; got != 6 {
		t.Fatalf("backups served %d, want 6", got)
	}

	// Primary recovers; traffic returns.
	c.Backends["primary"].Server.Host().Reattach()
	c.Net.RunFor(time.Second)
	before := c.Backends["primary"].Server.Requests
	if ok := burst(6); ok != 6 {
		t.Fatalf("phase 3: %d ok", ok)
	}
	if got := c.Backends["primary"].Server.Requests - before; got != 6 {
		t.Fatalf("recovered primary served %d of 6", got)
	}
}
