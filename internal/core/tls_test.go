package core_test

import (
	"bytes"
	"testing"
	"time"

	"repro/internal/cluster"
	"repro/internal/core"
	"repro/internal/httpsim"
	"repro/internal/memcache"
	"repro/internal/netsim"
	"repro/internal/securesim"
	"repro/internal/tcpstore"
	"repro/internal/workload"
)

type tlsBed struct {
	c    *cluster.Cluster
	vip  netsim.IP
	id   *securesim.Identity
	objs map[string][]byte
}

func newTLSBed(t *testing.T, seed int64, nYoda int) *tlsBed {
	t.Helper()
	c := cluster.New(seed)
	c.AddStoreServers(3, memcache.DefaultSimServerConfig())
	objs := map[string][]byte{
		"/secret":     []byte("classified payload"),
		"/secret-big": workload.SynthBody("/secret-big", 150*1024),
	}
	c.AddBackend("srv-1", objs, httpsim.DefaultServerConfig())
	c.AddBackend("srv-2", objs, httpsim.DefaultServerConfig())
	c.AddYodaN(nYoda, core.DefaultConfig(), tcpstore.DefaultConfig())
	vip := c.AddVIP("securesite")
	c.InstallPolicy(vip, c.SimpleSplitRules("srv-1", "srv-2"), nil)
	id := securesim.NewIdentity([]byte("-----CERT securesite-----"), []byte("shared-service-secret"))
	for _, in := range c.Yoda {
		in.InstallTLS(vip, id)
	}
	return &tlsBed{c: c, vip: vip, id: id, objs: objs}
}

func (b *tlsBed) fetch(t *testing.T, path string, pinned []byte, timeout time.Duration) securesim.FetchResult {
	t.Helper()
	host := b.c.ClientHost()
	var res *securesim.FetchResult
	securesim.Fetch(host, netsim.HostPort{IP: b.vip, Port: 80}, pinned,
		httpsim.NewRequest(path, "securesite"), func(r securesim.FetchResult) { res = &r })
	b.c.Net.RunFor(timeout)
	if res == nil {
		t.Fatal("secure fetch never resolved")
	}
	return *res
}

func TestTLSTerminationEndToEnd(t *testing.T) {
	b := newTLSBed(t, 71, 2)
	res := b.fetch(t, "/secret", b.id.Cert, 10*time.Second)
	if res.Err != nil {
		t.Fatalf("secure fetch: %v", res.Err)
	}
	if string(res.Resp.Body) != "classified payload" {
		t.Fatalf("body: %q", res.Resp.Body)
	}
}

func TestTLSLargeTransferDecryptsIntact(t *testing.T) {
	b := newTLSBed(t, 72, 2)
	res := b.fetch(t, "/secret-big", b.id.Cert, 30*time.Second)
	if res.Err != nil {
		t.Fatalf("secure fetch: %v", res.Err)
	}
	if !bytes.Equal(res.Resp.Body, b.objs["/secret-big"]) {
		t.Fatalf("large encrypted body corrupted: %d bytes", len(res.Resp.Body))
	}
}

func TestTLSWireIsActuallyEncrypted(t *testing.T) {
	b := newTLSBed(t, 73, 1)
	plaintext := []byte("classified payload")
	leaked := false
	b.c.Net.SetTracer(func(ev netsim.TraceEvent) {
		pkt := ev.Packet
		// Only the VIP<->client leg must be opaque; the instance->backend
		// leg is terminated plaintext by design.
		clientLeg := pkt.Src.IP == b.vip || pkt.Dst.IP == b.vip
		backendLeg := pkt.Dst.Port == 80 && pkt.Src.Port >= 20000 || pkt.Src.Port == 80
		if clientLeg && !backendLeg && bytes.Contains(pkt.Payload, plaintext) {
			leaked = true
		}
	})
	res := b.fetch(t, "/secret", b.id.Cert, 10*time.Second)
	if res.Err != nil {
		t.Fatalf("secure fetch: %v", res.Err)
	}
	if leaked {
		t.Fatal("plaintext observed on the client leg")
	}
}

func TestTLSCertificatePinningRejectsImpostor(t *testing.T) {
	b := newTLSBed(t, 74, 1)
	res := b.fetch(t, "/secret", []byte("-----CERT someone-else-----"), 10*time.Second)
	if res.Err != securesim.ErrBadCert {
		t.Fatalf("err = %v, want certificate mismatch", res.Err)
	}
}

func TestTLSFlowSurvivesInstanceFailure(t *testing.T) {
	// The headline composition: an encrypted, terminated flow migrates to
	// a surviving instance — session key from TCPStore, keystream offsets
	// from sequence numbers — without the client noticing.
	b := newTLSBed(t, 75, 2)
	host := b.c.ClientHost()
	var res *securesim.FetchResult
	securesim.Fetch(host, netsim.HostPort{IP: b.vip, Port: 80}, b.id.Cert,
		httpsim.NewRequest("/secret-big", "securesite"), func(r securesim.FetchResult) { res = &r })
	b.c.Net.RunFor(200 * time.Millisecond) // mid-transfer
	victim := -1
	for i, in := range b.c.Yoda {
		if in.FlowCount() > 0 {
			victim = i
			in.Fail()
			break
		}
	}
	if victim < 0 {
		t.Fatal("no instance owned the encrypted flow")
	}
	ip := b.c.Yoda[victim].IP()
	b.c.Net.Schedule(600*time.Millisecond, func() { b.c.L4.RemoveInstance(ip) })
	b.c.Net.RunFor(30 * time.Second)
	if res == nil {
		t.Fatal("secure fetch never resolved")
	}
	if res.Err != nil {
		t.Fatalf("encrypted flow broke across failover: %v", res.Err)
	}
	if !bytes.Equal(res.Resp.Body, b.objs["/secret-big"]) {
		t.Fatal("body corrupted across encrypted failover")
	}
	if b.c.Yoda[1-victim].Recovered == 0 {
		t.Fatal("survivor did not recover the TLS flow from TCPStore")
	}
}

func TestTLSAndPlaintextCoexistOnOneVIP(t *testing.T) {
	b := newTLSBed(t, 76, 1)
	// Plain HTTP on the TLS-enabled VIP still works (the hello sniffing
	// only diverts streams that start with the protocol magic).
	cl := b.c.NewClient(httpsim.DefaultClientConfig())
	var plain *httpsim.FetchResult
	cl.Get(netsim.HostPort{IP: b.vip, Port: 80}, "/secret", func(r *httpsim.FetchResult) { plain = r })
	b.c.Net.RunFor(10 * time.Second)
	if plain == nil || plain.Err != nil {
		t.Fatalf("plain fetch on TLS VIP: %+v", plain)
	}
	sec := b.fetch(t, "/secret", b.id.Cert, 10*time.Second)
	if sec.Err != nil {
		t.Fatalf("secure fetch: %v", sec.Err)
	}
}

func TestTLSRecordRoundTrip(t *testing.T) {
	r := &core.Record{
		Phase:     core.PhaseConn,
		Client:    netsim.HostPort{IP: netsim.IPv4(100, 1, 2, 3), Port: 41000},
		VIP:       netsim.HostPort{IP: netsim.IPv4(10, 255, 0, 1), Port: 80},
		ClientISN: 7,
		TLS:       &core.TLSState{ServerHelloLen: 92},
	}
	for i := range r.TLS.Key {
		r.TLS.Key[i] = byte(i * 3)
	}
	got, err := core.UnmarshalRecord(r.Marshal())
	if err != nil {
		t.Fatal(err)
	}
	if got.TLS == nil || got.TLS.Key != r.TLS.Key || got.TLS.ServerHelloLen != 92 {
		t.Fatalf("TLS state lost: %+v", got.TLS)
	}
}
