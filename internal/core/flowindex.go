package core

import (
	"repro/internal/flowmap"
	"repro/internal/netsim"
)

// flowIndex is the instance's tuple → *flow lookup structure: a compact
// flowmap keyed by tuple whose values are indices into a slot store of
// flow pointers. Compared with the former map[FourTuple]*flow it keeps
// the per-entry cost at flowmap's ~16–20 bytes (no map header buckets
// holding 12-byte keys) and makes the per-packet lookup a two-cache-line
// probe.
//
// Exactness: flowmap hits are validated against the flow's own tuples
// (clientTuple/serverTuple), so a 64-bit tag alias — the structure's
// documented false-hit mode — degrades to a miss here, never to a wrong
// flow. The instance therefore keeps exactly the map's semantics on the
// dispatch path; SYN handling and TCPStore recovery still never depend
// on a maybe-hit.
//
// A flow occupies one slot regardless of how many tuple orientations
// point at it (client-side always, server-side once dialing); the slot
// is freed when its last tuple entry is removed. Slot allocation is
// free-list based, so steady-state churn neither allocates nor grows
// the store, and slot order — the iteration order of forEach — is
// deterministic for a deterministic workload.
type flowIndex struct {
	tab   *flowmap.Compact
	slots []*flow
	free  []uint32
	// version increments on every mutation (put/del/init). The batch
	// dispatch path caches a (tuple, flow) resolution across a run and
	// revalidates it against version, so a teardown or re-key mid-run
	// can never route a packet to a stale flow.
	version uint64
}

func (x *flowIndex) init() {
	x.tab = flowmap.NewCompact(0)
	x.slots = nil
	x.free = nil
	x.version++
}

// entries returns the number of live tuple entries (both orientations),
// the equivalent of len() on the former map.
func (x *flowIndex) entries() int { return x.tab.Len() }

// get returns the flow indexed under t, or nil. Hits are validated
// against the flow's tuples, restoring map-exact lookups.
func (x *flowIndex) get(t netsim.FourTuple) *flow {
	v, hit := x.tab.LookupMaybe(t)
	if !hit {
		return nil
	}
	f := x.slots[v]
	if f == nil {
		return nil
	}
	if t == f.clientTuple() || (f.server.IP != 0 && t == f.serverTuple()) {
		return f
	}
	return nil // tag alias: treat as a miss
}

// put indexes f under t, assigning f a slot on first use.
func (x *flowIndex) put(t netsim.FourTuple, f *flow) {
	x.version++
	if v, hit := x.tab.LookupMaybe(t); hit {
		prev := x.slots[v]
		if prev == f {
			return // already indexed under t
		}
		if prev != nil {
			// t re-keyed to a different flow: the overwrite drops prev's
			// entry, so settle its slot accounting.
			x.unref(v, prev)
		}
	}
	if f.idxSlot == 0 {
		var v uint32
		if n := len(x.free); n > 0 {
			v = x.free[n-1]
			x.free = x.free[:n-1]
			x.slots[v] = f
		} else {
			v = uint32(len(x.slots))
			x.slots = append(x.slots, f)
		}
		f.idxSlot = v + 1
	}
	x.tab.Insert(t, flowmap.Value(f.idxSlot-1))
	f.idxRefs++
}

// del removes t's entry if — and only if — it indexes f, mirroring the
// former `if in.flows[t] == f { delete(in.flows, t) }` idiom every
// caller used.
func (x *flowIndex) del(t netsim.FourTuple, f *flow) {
	v, hit := x.tab.LookupMaybe(t)
	if !hit || x.slots[v] != f {
		return
	}
	x.version++
	x.tab.Delete(t)
	x.unref(v, f)
}

func (x *flowIndex) unref(v flowmap.Value, f *flow) {
	f.idxRefs--
	if f.idxRefs == 0 {
		x.slots[v] = nil
		x.free = append(x.free, uint32(v))
		f.idxSlot = 0
	}
}

// forEach visits every live flow exactly once (not once per tuple
// orientation), in deterministic slot order. The callback must not
// mutate the index; collect victims first, as all callers do.
func (x *flowIndex) forEach(fn func(*flow)) {
	for _, f := range x.slots {
		if f != nil {
			fn(f)
		}
	}
}
