package controller_test

import (
	"bytes"
	"testing"
	"time"

	"repro/internal/cluster"
	"repro/internal/controller"
	"repro/internal/core"
	"repro/internal/httpsim"
	"repro/internal/memcache"
	"repro/internal/netsim"
	"repro/internal/tcpstore"
)

// TestBackendFailureTerminatesFlows verifies §5.2's backend-failure
// handling: flows pinned to a dead backend are reset promptly (within the
// monitor interval) instead of stalling to the HTTP timeout, and a client
// retry succeeds against a healthy backend.
func TestBackendFailureTerminatesFlows(t *testing.T) {
	c := cluster.New(31)
	c.AddStoreServers(2, memcache.DefaultSimServerConfig())
	objs := map[string][]byte{"/slow": bytes.Repeat([]byte("x"), 400*1024)}
	c.AddBackend("srv-1", objs, httpsim.DefaultServerConfig())
	c.AddBackend("srv-2", objs, httpsim.DefaultServerConfig())
	c.AddYodaN(2, core.DefaultConfig(), tcpstore.DefaultConfig())
	vip := c.AddVIP("svc")
	ct := controller.New(c, controller.DefaultConfig())
	ct.SetPolicy(vip, c.SimpleSplitRules("srv-1", "srv-2"), nil)
	ct.Start()

	// A client with retry: the reset should trigger a fast, successful
	// second attempt on the surviving backend.
	ccfg := httpsim.DefaultClientConfig()
	ccfg.Timeout = 30 * time.Second
	ccfg.Retries = 1
	cl := c.NewClient(ccfg)
	var res *httpsim.FetchResult
	cl.Get(netsim.HostPort{IP: vip, Port: 80}, "/slow", func(r *httpsim.FetchResult) { res = r })

	// Kill whichever backend got the flow, mid-transfer.
	c.Net.RunFor(200 * time.Millisecond)
	var dead string
	for name, b := range c.Backends {
		if b.Server.ActiveConns > 0 {
			dead = name
			b.Server.Host().Detach()
			break
		}
	}
	if dead == "" {
		t.Fatal("no backend owned the flow at kill time")
	}
	c.Net.RunFor(60 * time.Second)
	if res == nil {
		t.Fatal("fetch never resolved")
	}
	if res.Err != nil {
		t.Fatalf("retry after backend reset failed: %v", res.Err)
	}
	if res.Attempts != 2 {
		t.Fatalf("attempts = %d, want reset + retry", res.Attempts)
	}
	// The whole dance must be far quicker than the HTTP timeout: RST
	// arrives within the 600ms monitor tick, not after 30s.
	if res.Elapsed() > 10*time.Second {
		t.Fatalf("elapsed %v — client stalled instead of being reset", res.Elapsed())
	}
	// Flow state must be cleaned up on the instances.
	c.Net.RunFor(5 * time.Second)
	for i, in := range c.Yoda {
		if n := in.FlowCount(); n != 0 {
			t.Fatalf("instance %d leaked %d flows", i, n)
		}
	}
}
