package controller_test

import (
	"testing"
	"time"

	"repro/internal/assignment"
	"repro/internal/core"
	"repro/internal/netsim"
	"repro/internal/reconfig"
	"repro/internal/tcpstore"
)

// TestApplyAssignmentRemovesLoserRules is the regression test for the
// fire-and-forget updater: ApplyAssignment's contract says rules are
// removed from instances that lost a VIP once their flows drain, but the
// old implementation never removed them. Routed through the reconfig
// executor, the loser must end with zero rules for the VIP.
func TestApplyAssignmentRemovesLoserRules(t *testing.T) {
	w := newWorld(11, 3)
	w.ct.Start()
	w.c.Net.RunFor(500 * time.Millisecond)

	// All three instances hold the VIP; reassign it to the first two.
	a := &assignment.Assignment{ByVIP: map[int][]int{0: {0, 1}}}
	if err := w.ct.ApplyAssignment([]netsim.IP{w.vip}, a, func(int) netsim.IP { return w.vip }); err != nil {
		t.Fatal(err)
	}
	w.c.Net.RunFor(20 * time.Second) // flip + drain + rule removal

	st := w.ct.ReconfigStats()
	if !st.Done {
		t.Fatalf("reconfig never finished: %+v", st)
	}
	loser := w.c.Yoda[2]
	if loser.HasVIP(w.vip) {
		t.Fatal("loser still has rules for the VIP after drain")
	}
	if loser.VIPFlowCount(w.vip) != 0 {
		t.Fatalf("loser still holds %d flows", loser.VIPFlowCount(w.vip))
	}
	if st.RulesRemoved != 1 {
		t.Fatalf("rules removed = %d, want 1", st.RulesRemoved)
	}
	for _, in := range w.c.Yoda[:2] {
		if !in.HasVIP(w.vip) {
			t.Fatalf("gainer %s lost its rules", in.IP())
		}
	}
	// The L4 mapping converged on the two keepers.
	m := w.c.L4.Mapping(w.vip)
	if len(m) != 2 {
		t.Fatalf("final mapping %v, want 2 instances", m)
	}
	for _, ip := range m {
		if ip == loser.IP() {
			t.Fatal("loser still mapped at L4")
		}
	}
}

// TestMonitorReadmitsRevivedInstance is the regression test for
// dead-instance permanence: the monitor marked instances dead forever,
// so a machine that came back (e.g. a reboot or healed partition) was
// never re-admitted. Now the monitor detects the revival, reinstalls the
// VIPs the instance held at death, and restores its L4 mappings.
func TestMonitorReadmitsRevivedInstance(t *testing.T) {
	w := newWorld(12, 3)
	w.ct.Start()
	w.c.Net.RunFor(time.Second)

	victim := w.c.Yoda[2]
	victim.Host().Detach() // partition, not process death: state survives
	w.c.Net.RunFor(2 * time.Second)
	if w.ct.Detections != 1 {
		t.Fatalf("detections = %d", w.ct.Detections)
	}
	for _, ip := range w.c.L4.Mapping(w.vip) {
		if ip == victim.IP() {
			t.Fatal("dead instance still mapped")
		}
	}

	victim.Host().Reattach()
	w.c.Net.RunFor(2 * time.Second)
	if w.ct.Revivals != 1 {
		t.Fatalf("revivals = %d, want 1", w.ct.Revivals)
	}
	found := false
	for _, ip := range w.c.L4.Mapping(w.vip) {
		if ip == victim.IP() {
			found = true
		}
	}
	if !found {
		t.Fatal("revived instance not re-admitted into the L4 mapping")
	}
	if !victim.HasVIP(w.vip) {
		t.Fatal("revived instance lost its rules")
	}
	// A second death is detected again (the dead-set entry was cleared).
	victim.Host().Detach()
	w.c.Net.RunFor(2 * time.Second)
	if w.ct.Detections != 2 {
		t.Fatalf("re-detection failed: detections = %d, want 2", w.ct.Detections)
	}
}

// TestRollingUpgradeZeroFailures drives the §7.5 path end-to-end at the
// controller level: a 3-instance fleet under continuous load is upgraded
// instance by instance with zero failed client requests.
func TestRollingUpgradeZeroFailures(t *testing.T) {
	w := newWorld(13, 3)
	w.ct.Start()

	done, errs := 0, 0
	stop := 25 * time.Second
	for p := 0; p < 8; p++ {
		p := p
		var loop func()
		loop = func() {
			if w.c.Net.Now() >= stop {
				return
			}
			w.fetch(&done, &errs)
			w.c.Net.Schedule(60*time.Millisecond, loop)
		}
		w.c.Net.Schedule(time.Duration(p)*23*time.Millisecond, loop)
	}

	before := append([]*core.Instance(nil), w.c.Yoda...)
	w.c.Net.Schedule(2*time.Second, func() {
		err := w.ct.StartRollingUpgrade(
			core.DefaultConfig(), tcpstore.DefaultConfig(),
			reconfig.UpgradeOptions{RestartDelay: time.Second}, nil,
		)
		if err != nil {
			t.Errorf("upgrade start: %v", err)
		}
	})
	w.c.Net.RunFor(stop + 35*time.Second)

	up := w.ct.UpgradeStats()
	if !up.Done || up.Err != "" {
		t.Fatalf("upgrade not done: %+v", up)
	}
	if up.Upgraded != 3 || up.Skipped != 0 {
		t.Fatalf("upgraded %d/%d, skipped %d", up.Upgraded, up.Instances, up.Skipped)
	}
	restarts := 0
	for i, in := range w.c.Yoda {
		if in != before[i] {
			restarts++
		}
		if !in.Host().Alive() {
			t.Fatalf("instance %d dead after upgrade", i)
		}
		if !in.HasVIP(w.vip) {
			t.Fatalf("instance %d missing VIP rules after upgrade", i)
		}
	}
	if restarts != 3 {
		t.Fatalf("restarted incarnations = %d, want 3", restarts)
	}
	if up.Reconfig.BrokenFlows != 0 {
		t.Fatalf("broken flows during upgrade: %d", up.Reconfig.BrokenFlows)
	}
	if errs != 0 {
		t.Fatalf("%d/%d client requests failed during the rolling upgrade", errs, done)
	}
	if done == 0 {
		t.Fatal("no requests completed — workload never ran")
	}
	// Every instance ends mapped at L4.
	if m := w.c.L4.Mapping(w.vip); len(m) != 3 {
		t.Fatalf("final mapping %v, want all 3 instances", m)
	}
}
