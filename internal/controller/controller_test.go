package controller_test

import (
	"bytes"
	"fmt"
	"testing"
	"time"

	"repro/internal/cluster"
	"repro/internal/controller"
	"repro/internal/core"
	"repro/internal/httpsim"
	"repro/internal/memcache"
	"repro/internal/netsim"
	"repro/internal/rules"
	"repro/internal/tcpstore"
)

type world struct {
	c   *cluster.Cluster
	ct  *controller.Controller
	vip netsim.IP
}

func newWorld(seed int64, nYoda int) *world {
	c := cluster.New(seed)
	c.AddStoreServers(3, memcache.DefaultSimServerConfig())
	objs := map[string][]byte{"/obj": bytes.Repeat([]byte("z"), 10*1024)}
	for i := 1; i <= 3; i++ {
		c.AddBackend(fmt.Sprintf("srv-%d", i), objs, httpsim.DefaultServerConfig())
	}
	c.AddYodaN(nYoda, core.DefaultConfig(), tcpstore.DefaultConfig())
	vip := c.AddVIP("svc")
	ct := controller.New(c, controller.DefaultConfig())
	ct.SetPolicy(vip, c.SimpleSplitRules("srv-1", "srv-2", "srv-3"), nil)
	return &world{c: c, ct: ct, vip: vip}
}

func (w *world) fetch(done *int, errs *int) {
	cl := w.c.NewClient(httpsim.DefaultClientConfig())
	cl.Get(netsim.HostPort{IP: w.vip, Port: 80}, "/obj", func(r *httpsim.FetchResult) {
		*done++
		if r.Err != nil {
			*errs++
		}
	})
}

func TestMonitorDetectsFailureWithin600ms(t *testing.T) {
	w := newWorld(1, 3)
	w.ct.Start()
	w.c.Net.RunFor(time.Second)
	killedAt := w.c.Net.Now()
	w.c.Yoda[0].Fail()
	// Advance until detection.
	for i := 0; i < 10 && w.ct.Detections == 0; i++ {
		w.c.Net.RunFor(100 * time.Millisecond)
	}
	if w.ct.Detections != 1 {
		t.Fatalf("detections = %d", w.ct.Detections)
	}
	detectDelay := w.c.Net.Now() - killedAt
	if detectDelay > 700*time.Millisecond {
		t.Fatalf("detection took %v, want ≤600ms+ping slop", detectDelay)
	}
	// The dead instance must be out of the L4 mapping.
	for _, ip := range w.c.L4.Mapping(w.vip) {
		if ip == w.c.Yoda[0].IP() {
			t.Fatal("dead instance still mapped")
		}
	}
}

func TestFailureRecoveryWithController(t *testing.T) {
	// Full-loop version of §7.2: controller detects the failure and
	// repairs the mapping; client flows survive without manual plumbing.
	w := newWorld(2, 3)
	w.ct.Start()
	done, errs := 0, 0
	const N = 20
	for i := 0; i < N; i++ {
		w.fetch(&done, &errs)
	}
	w.c.Net.RunFor(150 * time.Millisecond) // flows in flight
	for _, in := range w.c.Yoda {
		if in.FlowCount() > 0 {
			in.Fail()
			break
		}
	}
	w.c.Net.RunFor(40 * time.Second)
	if done != N {
		t.Fatalf("done = %d/%d", done, N)
	}
	if errs != 0 {
		t.Fatalf("%d flows broke despite controller-driven recovery", errs)
	}
}

func TestScaleOutUnderLoad(t *testing.T) {
	// Figure 13's shape: load doubles, CPU crosses the threshold, the
	// controller adds instances, utilization falls. The test uses a
	// single-core instance profile so saturation happens at a simulation-
	// friendly request rate.
	c := cluster.New(3)
	c.AddStoreServers(3, memcache.DefaultSimServerConfig())
	objs := map[string][]byte{"/obj": bytes.Repeat([]byte("z"), 4*1024)}
	for i := 1; i <= 3; i++ {
		c.AddBackend(fmt.Sprintf("srv-%d", i), objs, httpsim.DefaultServerConfig())
	}
	slowCfg := core.DefaultConfig()
	slowCfg.Cores = 1
	slowCfg.CPUConnPhase = 5 * time.Millisecond
	slowCfg.CPUPerPacket = 100 * time.Microsecond
	c.AddYodaN(2, slowCfg, tcpstore.DefaultConfig())
	vip := c.AddVIP("svc")
	ct := controller.New(c, controller.DefaultConfig())
	ct.Provision = func() *core.Instance { return c.AddYoda(slowCfg, tcpstore.DefaultConfig()) }
	ct.SetPolicy(vip, c.SimpleSplitRules("srv-1", "srv-2", "srv-3"), nil)
	w := &world{c: c, ct: ct, vip: vip}
	w.ct.Start()
	// Open-loop load: issue a burst of requests every 100ms.
	stop := false
	gen := 0
	var pump func(gen, rate int)
	done, errs := 0, 0
	pump = func(g, rate int) {
		if stop || g != gen {
			return
		}
		for i := 0; i < rate; i++ {
			w.fetch(&done, &errs)
		}
		w.c.Net.Schedule(100*time.Millisecond, func() { pump(g, rate) })
	}
	pump(gen, 3) // 30 req/s over 2 single-core instances: ~10% CPU
	w.c.Net.RunFor(3 * time.Second)
	before := len(w.c.Yoda)
	// Spike: 280 req/s -> ~140 req/s/instance at ~6ms/req ≈ 85% CPU.
	gen++
	pump(gen, 28)
	w.c.Net.RunFor(6 * time.Second)
	stop = true
	if w.ct.ScaleOuts == 0 {
		t.Fatal("controller never scaled out")
	}
	if len(w.c.Yoda) <= before {
		t.Fatalf("instances: %d -> %d", before, len(w.c.Yoda))
	}
	// New instances must carry the policy and appear in the mapping.
	newcomer := w.c.Yoda[len(w.c.Yoda)-1]
	if !newcomer.HasVIP(w.vip) {
		t.Fatal("newcomer missing VIP rules")
	}
	w.c.Net.RunFor(10 * time.Second)
	if errs != 0 {
		t.Fatalf("%d flows broke during scale-out", errs)
	}
	found := false
	for _, ip := range w.c.L4.Mapping(w.vip) {
		if ip == newcomer.IP() {
			found = true
		}
	}
	if !found {
		t.Fatal("newcomer not in L4 mapping")
	}
}

func TestPolicyUpdateDoesNotBreakFlows(t *testing.T) {
	// Figure 14's make-before-break: change weights mid-run; in-flight
	// flows continue, new flows follow the new split.
	w := newWorld(4, 2)
	w.ct.Start()
	done, errs := 0, 0
	for i := 0; i < 10; i++ {
		w.fetch(&done, &errs)
	}
	w.c.Net.RunFor(100 * time.Millisecond)
	// Shift everything to srv-1.
	b1 := w.c.Backends["srv-1"].Rec
	w.ct.UpdatePolicy(w.vip, []rules.Rule{{
		Name: "all-to-1", Priority: 1, Match: rules.Match{URLGlob: "*"},
		Action: rules.Action{Type: rules.ActionSplit, Split: []rules.WeightedBackend{{Backend: b1, Weight: 1}}},
	}})
	before1 := w.c.Backends["srv-1"].Server.Requests
	for i := 0; i < 10; i++ {
		w.fetch(&done, &errs)
	}
	w.c.Net.RunFor(20 * time.Second)
	if done != 20 || errs != 0 {
		t.Fatalf("done=%d errs=%d", done, errs)
	}
	if got := w.c.Backends["srv-1"].Server.Requests - before1; got != 10 {
		t.Fatalf("srv-1 got %d new requests, want all 10", got)
	}
}

func TestBackendFailureMarksHealth(t *testing.T) {
	w := newWorld(5, 1)
	w.ct.Start()
	w.c.Backends["srv-2"].Server.Host().Detach()
	w.c.Net.RunFor(time.Second)
	if !w.c.Health.Dead["srv-2"] {
		t.Fatal("dead backend not marked")
	}
	// Traffic avoids the dead backend.
	done, errs := 0, 0
	for i := 0; i < 12; i++ {
		w.fetch(&done, &errs)
	}
	w.c.Net.RunFor(20 * time.Second)
	if errs != 0 {
		t.Fatalf("errs = %d", errs)
	}
	if w.c.Backends["srv-2"].Server.Requests != 0 {
		t.Fatal("dead backend received requests")
	}
	// Recovery: reattach and the monitor clears the mark.
	w.c.Backends["srv-2"].Server.Host().Reattach()
	w.c.Net.RunFor(time.Second)
	if w.c.Health.Dead["srv-2"] {
		t.Fatal("recovered backend still marked dead")
	}
}

func TestRemoveVIP(t *testing.T) {
	w := newWorld(6, 1)
	w.ct.Start()
	w.ct.RemoveVIP(w.vip)
	w.c.Net.RunFor(100 * time.Millisecond)
	done, errs := 0, 0
	w.fetch(&done, &errs)
	w.c.Net.RunFor(40 * time.Second)
	if done != 1 || errs != 1 {
		t.Fatalf("done=%d errs=%d; fetch to removed VIP should fail", done, errs)
	}
	if w.c.Yoda[0].HasVIP(w.vip) {
		t.Fatal("rules not removed")
	}
}

func TestStatsAccumulate(t *testing.T) {
	w := newWorld(7, 2)
	w.ct.Start()
	done, errs := 0, 0
	for i := 0; i < 5; i++ {
		w.fetch(&done, &errs)
	}
	w.c.Net.RunFor(5 * time.Second)
	if w.ct.Traffic[w.vip] != 5 {
		t.Fatalf("traffic stat = %d, want 5", w.ct.Traffic[w.vip])
	}
}

func TestControllerStop(t *testing.T) {
	w := newWorld(8, 1)
	w.ct.Start()
	w.ct.Stop()
	w.c.Yoda[0].Fail()
	w.c.Net.RunFor(5 * time.Second)
	if w.ct.Detections != 0 {
		t.Fatal("stopped controller still monitoring")
	}
}
