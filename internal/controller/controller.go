// Package controller implements the Yoda controller (§6): the monitor
// that pings instances, Memcached servers and backends every 600 ms and
// repairs the L4 mappings on failure; the traffic-statistics reader; the
// policy (user-interface) component that installs rules; the scaling loop
// that adds instances under CPU pressure (§7.3); and the assignment
// updater that applies a new VIP→instance assignment to a live cluster
// (§4.5).
package controller

import (
	"sort"
	"time"

	"repro/internal/assignment"
	"repro/internal/cluster"
	"repro/internal/core"
	"repro/internal/netsim"
	"repro/internal/reconfig"
	"repro/internal/rules"
	"repro/internal/stateless"
	"repro/internal/tcpstore"
)

// Config tunes the controller.
type Config struct {
	// PingInterval is the monitor period; failures are detected within at
	// most this delay (600 ms in the paper).
	PingInterval time.Duration
	// StatsInterval is how often per-VIP traffic counters are read.
	StatsInterval time.Duration
	// ScaleInterval is how often the scaling policy runs; CPUHigh is the
	// utilization that triggers adding instances; CPUTarget is the level
	// scale-out aims for. Scaling is disabled when ScaleInterval is 0.
	ScaleInterval time.Duration
	CPUHigh       float64
	CPUTarget     float64

	// Reconfig tunes the live reconfiguration engine assignments are
	// applied through (δ migration bound, drain timings). The zero value
	// means single-wave rollouts with default drain timings.
	Reconfig reconfig.Options
}

// DefaultConfig matches the paper's deployment.
func DefaultConfig() Config {
	return Config{
		PingInterval:  600 * time.Millisecond,
		StatsInterval: time.Second,
		ScaleInterval: time.Second,
		CPUHigh:       0.75,
		CPUTarget:     0.60,
	}
}

// Controller supervises a cluster.
type Controller struct {
	C   *cluster.Cluster
	cfg Config

	// policies is the user-interface state: the installed rule set per
	// VIP, pushed to instances that hold the VIP.
	policies map[netsim.IP][]rules.Rule
	// vipInstances is the current VIP→instance mapping the controller
	// maintains at the L4 LB.
	vipInstances map[netsim.IP][]netsim.IP

	// deadInstances maps a detected-dead instance to the (sorted) VIPs it
	// held at detection time, so a later revival can re-admit it.
	deadInstances  map[netsim.IP][]netsim.IP
	lastStoreCount int
	timers         []netsim.Timer
	running        bool

	// exec is the live reconfiguration engine; upgrader drives rolling
	// upgrades through it.
	exec     *reconfig.Executor
	upgrader *reconfig.Upgrader

	// Provision creates a new Yoda instance when the scaling loop needs
	// one. Defaults to cluster.AddYoda with default configs.
	Provision func() *core.Instance

	// Traffic accumulates per-VIP request counts from instance stats.
	Traffic map[netsim.IP]uint64
	// SNATExhausted accumulates dials rejected for lack of SNAT ports
	// across the cluster (from instance stats; a non-zero rate means the
	// per-instance port slices need widening).
	SNATExhausted uint64
	// Detections counts instance failures detected.
	Detections int
	// Revivals counts dead instances detected alive again and re-admitted.
	Revivals int
	// ScaleOuts counts scale-out actions taken.
	ScaleOuts int
	// InstancesAdded counts instances added by scaling.
	InstancesAdded int
}

// New creates a controller over a cluster.
func New(c *cluster.Cluster, cfg Config) *Controller {
	ct := &Controller{
		C:             c,
		cfg:           cfg,
		policies:      make(map[netsim.IP][]rules.Rule),
		vipInstances:  make(map[netsim.IP][]netsim.IP),
		deadInstances: make(map[netsim.IP][]netsim.IP),
		Traffic:       make(map[netsim.IP]uint64),
	}
	ct.Provision = func() *core.Instance {
		return c.AddYoda(core.DefaultConfig(), tcpstore.DefaultConfig())
	}
	ct.exec = reconfig.NewExecutor(reconfig.Env{
		Net:       c.Net,
		L4:        c.L4,
		Instances: func() []*core.Instance { return ct.C.Yoda },
		RulesFor:  func(vip netsim.IP) []rules.Rule { return ct.policies[vip] },
		OnMapping: func(vip netsim.IP, insts []netsim.IP) {
			ct.vipInstances[vip] = append([]netsim.IP(nil), insts...)
		},
		OnWaveStart: ct.hybridWaveStart,
		OnWaveDone:  func() { ct.C.HybridRefresh() },
	}, cfg.Reconfig)
	return ct
}

// SetPolicy installs (or replaces) the rule set for a VIP on the given
// instances (nil = all live instances) and updates the L4 mapping. This
// is the user-interface + assignment-updater path combined for the
// common all-instances case.
func (ct *Controller) SetPolicy(vip netsim.IP, rs []rules.Rule, insts []*core.Instance) {
	ct.policies[vip] = append([]rules.Rule(nil), rs...)
	if insts == nil {
		insts = ct.liveInstances()
	}
	var ips []netsim.IP
	for _, in := range insts {
		in.InstallRules(vip, rs)
		ips = append(ips, in.IP())
	}
	ct.vipInstances[vip] = ips
	ct.C.L4.SetMappingNow(vip, ips)
	ct.C.HybridRecordPolicy(vip, rs)
}

// UpdatePolicy changes the rules for a VIP on every instance that holds
// it. Existing connections are untouched: instances apply new policies to
// new connections only (§5.2).
func (ct *Controller) UpdatePolicy(vip netsim.IP, rs []rules.Rule) {
	ct.policies[vip] = append([]rules.Rule(nil), rs...)
	for _, in := range ct.C.Yoda {
		if in.HasVIP(vip) {
			in.InstallRules(vip, rs)
		}
	}
	ct.C.HybridRecordPolicy(vip, rs)
}

// RemoveVIP withdraws a VIP: reverse order of addition (§5.2) — first the
// L4 mapping, then the rules.
func (ct *Controller) RemoveVIP(vip netsim.IP) {
	ct.C.L4.RemoveVIP(vip)
	for _, in := range ct.C.Yoda {
		in.RemoveRules(vip)
	}
	delete(ct.policies, vip)
	delete(ct.vipInstances, vip)
	ct.C.HybridForgetVIP(vip)
}

// ApplyAssignment pushes a computed VIP→instance assignment onto the
// cluster through the reconfiguration engine: rules are installed on
// newly assigned instances first, then the L4 mappings are switched
// (staggered, as real muxes update non-atomically), then — once the
// losing instances' residual flows have drained — the losers' rules are
// removed, reclaiming their rule capacity. Waves respect the configured
// δ migration bound. Returns reconfig.ErrBusy while a previous rollout
// is still draining.
func (ct *Controller) ApplyAssignment(vips []netsim.IP, a *assignment.Assignment, idToVIP func(int) netsim.IP) error {
	vids := make([]int, 0, len(a.ByVIP))
	for vid := range a.ByVIP {
		vids = append(vids, vid)
	}
	sort.Ints(vids)
	target := make(map[netsim.IP][]netsim.IP, len(vids))
	for _, vid := range vids {
		vip := idToVIP(vid)
		var ips []netsim.IP
		for _, idx := range a.ByVIP[vid] {
			if idx < 0 || idx >= len(ct.C.Yoda) {
				continue
			}
			ips = append(ips, ct.C.Yoda[idx].IP())
		}
		target[vip] = ips
	}
	return ct.ApplyTarget(target)
}

// ApplyTarget moves the cluster to the given VIP→instance mapping via
// the reconfiguration engine (see ApplyAssignment). VIPs absent from
// target keep their current mapping.
func (ct *Controller) ApplyTarget(target map[netsim.IP][]netsim.IP) error {
	st := reconfig.State{
		Current: ct.mappingSnapshot(),
		Target:  target,
		Flows:   ct.flowSnapshot(target),
	}
	plan, err := reconfig.NewPlan(st, ct.exec.Options())
	if err != nil {
		return err
	}
	return ct.exec.Start(plan, nil)
}

// hybridWaveStart re-points the derivation table's entries for the VIPs
// a reconfig wave moves at their TARGET mappings, then bumps the epoch
// and flushes unpersisted flows — before any rule install or mapping
// flip. From that point, flows handled by losing instances fail the
// write-time owner check (the loser is absent from the target entry) and
// stay persisted, so the drain's ReleaseVIPFlows never orphans an
// unpersisted flow; flows landing on target instances after the flip
// derive against the entry they will actually recover under.
func (ct *Controller) hybridWaveStart(moves []reconfig.Move) {
	h := ct.C.Hybrid
	if h == nil {
		return
	}
	for _, mv := range moves {
		if e, ok := h.VIP(mv.VIP); ok {
			h.SetVIP(mv.VIP, stateless.VIPEntry{
				Instances: append([]netsim.IP(nil), mv.To...),
				Pool:      e.Pool,
			})
		}
	}
	ct.C.HybridBumpFlush()
}

// ReconfigStats returns the current (or last finished) reconfiguration's
// stats.
func (ct *Controller) ReconfigStats() reconfig.Stats { return ct.exec.Stats() }

// ReconfigRunning reports whether a reconfiguration is executing.
func (ct *Controller) ReconfigRunning() bool { return ct.exec.Running() }

// StartRollingUpgrade upgrades every currently live instance, one at a
// time: drain through a δ-bounded reconfig plan, restart under the new
// configs, re-admit. onDone may be nil. Returns reconfig.ErrBusy while
// an upgrade or a reconfiguration is already running.
func (ct *Controller) StartRollingUpgrade(cfg core.Config, storeCfg tcpstore.Config, opt reconfig.UpgradeOptions, onDone func(reconfig.UpgradeStats)) error {
	if ct.upgrader != nil && ct.upgrader.Running() {
		return reconfig.ErrBusy
	}
	up := reconfig.NewUpgrader(ct.exec, opt)
	up.Mappings = ct.mappingSnapshot
	up.Restart = func(ip netsim.IP) {
		for i, in := range ct.C.Yoda {
			if in.IP() == ip {
				ct.C.RestartYoda(i, cfg, storeCfg)
				return
			}
		}
	}
	var order []netsim.IP
	for _, in := range ct.liveInstances() {
		order = append(order, in.IP())
	}
	if err := up.Start(order, onDone); err != nil {
		return err
	}
	ct.upgrader = up
	return nil
}

// UpgradeStats returns the current (or last finished) rolling upgrade's
// stats.
func (ct *Controller) UpgradeStats() reconfig.UpgradeStats {
	if ct.upgrader == nil {
		return reconfig.UpgradeStats{}
	}
	return ct.upgrader.Stats()
}

// UpgradeRunning reports whether a rolling upgrade is in progress.
func (ct *Controller) UpgradeRunning() bool {
	return ct.upgrader != nil && ct.upgrader.Running()
}

// mappingSnapshot copies the controller's VIP→instance view.
func (ct *Controller) mappingSnapshot() map[netsim.IP][]netsim.IP {
	out := make(map[netsim.IP][]netsim.IP, len(ct.vipInstances))
	for vip, ips := range ct.vipInstances {
		out[vip] = append([]netsim.IP(nil), ips...)
	}
	return out
}

// flowSnapshot reads live per-VIP flow counts over the VIPs in target,
// feeding the planner's Eq. 6–7 migration accounting.
func (ct *Controller) flowSnapshot(target map[netsim.IP][]netsim.IP) map[netsim.IP]map[netsim.IP]float64 {
	out := make(map[netsim.IP]map[netsim.IP]float64, len(target))
	for vip := range target {
		per := make(map[netsim.IP]float64)
		for _, in := range ct.liveInstances() {
			if n := in.VIPFlowCount(vip); n > 0 {
				per[in.IP()] = float64(n)
			}
		}
		out[vip] = per
	}
	return out
}

func (ct *Controller) liveInstances() []*core.Instance {
	var out []*core.Instance
	for _, in := range ct.C.Yoda {
		if in.Host().Alive() {
			out = append(out, in)
		}
	}
	return out
}

// Start launches the monitor, stats and scaling loops.
func (ct *Controller) Start() {
	if ct.running {
		return
	}
	ct.running = true
	ct.scheduleMonitor()
	ct.scheduleStats()
	if ct.cfg.ScaleInterval > 0 {
		ct.scheduleScaling()
	}
}

// Stop cancels all loops.
func (ct *Controller) Stop() {
	ct.running = false
	for _, t := range ct.timers {
		t.Stop()
	}
	ct.timers = nil
}

func (ct *Controller) scheduleMonitor() {
	if !ct.running {
		return
	}
	t := ct.C.Net.Schedule(ct.cfg.PingInterval, func() {
		ct.monitorTick()
		ct.scheduleMonitor()
	})
	ct.timers = append(ct.timers, t)
}

// monitorTick pings every component and repairs mappings for the dead.
func (ct *Controller) monitorTick() {
	// Yoda instances: a dead instance is removed from all L4 mappings so
	// the underlying LB re-routes its flows to survivors (§4.2). The VIPs
	// it held are remembered so a revival can restore them.
	for _, in := range ct.C.Yoda {
		ip := in.IP()
		_, wasDead := ct.deadInstances[ip]
		alive := in.Host().Alive()
		switch {
		case !alive && !wasDead:
			var held []netsim.IP
			for vip, ips := range ct.vipInstances {
				if containsIP(ips, ip) {
					held = append(held, vip)
					ct.vipInstances[vip] = removeIP(ips, ip)
				}
			}
			sort.Slice(held, func(i, j int) bool { return held[i] < held[j] })
			ct.deadInstances[ip] = held
			ct.Detections++
			ct.C.L4.RemoveInstance(ip)
			// Hybrid: death marks only — no epoch bump, no entry rebuild.
			// The dead instance's unpersisted flows stay derivable under
			// the entry they were established under.
			if ct.C.Hybrid != nil {
				ct.C.Hybrid.MarkDead(ip)
			}
		case alive && wasDead:
			// Revival: the instance (or its restarted incarnation) is back.
			// Re-install the current policies for the VIPs it held at death
			// and re-admit it into their mappings. An instance that was
			// drained before its restart held nothing — re-admission is then
			// the upgrade driver's job.
			held := ct.deadInstances[ip]
			delete(ct.deadInstances, ip)
			ct.Revivals++
			if ct.C.Hybrid != nil {
				ct.C.Hybrid.Revive(ip)
			}
			for _, vip := range held {
				rs, ok := ct.policies[vip]
				if !ok {
					continue // VIP removed while the instance was down
				}
				in.InstallRules(vip, rs)
				if !containsIP(ct.vipInstances[vip], ip) {
					ct.vipInstances[vip] = append(ct.vipInstances[vip], ip)
				}
				ct.C.L4.SetMapping(vip, ct.vipInstances[vip])
			}
		}
	}
	// Backends: mark health so rule evaluation skips them, and terminate
	// the connections of newly dead backends so clients fail fast instead
	// of waiting out their HTTP timeouts (§5.2).
	for name, b := range ct.C.Backends {
		alive := b.Server.Host().Alive()
		wasDead := ct.C.Health.Dead[name]
		ct.C.Health.Dead[name] = !alive
		if !alive && !wasDead {
			for _, in := range ct.liveInstances() {
				in.TerminateBackendFlows(b.Rec.Addr)
			}
		}
	}
	// Memcached servers: when the live set changes, push the new server
	// list into every instance's TCPStore client so new keys avoid dead
	// replicas (§6: the monitor pings the Memcached servers too; the paper
	// does not re-replicate existing keys, and neither do we — flows
	// finish faster than replication would).
	live := make([]netsim.HostPort, 0, len(ct.C.StoreServers))
	for i, srv := range ct.C.StoreServers {
		if srv.Host().Alive() {
			live = append(live, ct.C.StoreAddrs[i])
		}
	}
	if len(live) != ct.lastStoreCount {
		ct.lastStoreCount = len(live)
		for _, in := range ct.C.Yoda {
			in.Store().SetServers(live)
		}
	}
}

func containsIP(ips []netsim.IP, ip netsim.IP) bool {
	for _, x := range ips {
		if x == ip {
			return true
		}
	}
	return false
}

func removeIP(ips []netsim.IP, dead netsim.IP) []netsim.IP {
	out := ips[:0]
	for _, ip := range ips {
		if ip != dead {
			out = append(out, ip)
		}
	}
	return out
}

func (ct *Controller) scheduleStats() {
	if !ct.running {
		return
	}
	t := ct.C.Net.Schedule(ct.cfg.StatsInterval, func() {
		for _, in := range ct.liveInstances() {
			for vip, st := range in.ReadStats() {
				ct.Traffic[vip] += st.NewFlows
				ct.SNATExhausted += st.SNATExhausted
			}
		}
		ct.scheduleStats()
	})
	ct.timers = append(ct.timers, t)
}

// BarrierHealth sums write-barrier outcomes across live instances: the
// cluster-wide persistence health view. Degraded or Aborted climbing
// means flows are being balanced that the cluster cannot (or, under
// StrictPersist, refused to) recover — the operator-facing symptom of a
// sick TCPStore, visible before any instance actually fails.
func (ct *Controller) BarrierHealth() core.BarrierStats {
	var total core.BarrierStats
	for _, in := range ct.liveInstances() {
		b := in.Barrier
		total.Commits += b.Commits
		total.Degraded += b.Degraded
		total.Aborted += b.Aborted
		total.Timeouts += b.Timeouts
	}
	return total
}

func (ct *Controller) scheduleScaling() {
	if !ct.running {
		return
	}
	t := ct.C.Net.Schedule(ct.cfg.ScaleInterval, func() {
		ct.scaleTick()
		ct.scheduleScaling()
	})
	ct.timers = append(ct.timers, t)
}

// scaleTick implements the §7.3 behaviour: when average instance CPU over
// the last interval exceeds CPUHigh, add enough instances to bring the
// projected utilization down to CPUTarget, give them every VIP's rules,
// and update the L4 mappings.
func (ct *Controller) scaleTick() {
	live := ct.liveInstances()
	if len(live) == 0 || ct.Provision == nil {
		return
	}
	now := ct.C.Net.Now()
	from := now - ct.cfg.ScaleInterval
	avg := 0.0
	for _, in := range live {
		avg += in.CPU.UtilizationClamped(from, now)
	}
	avg /= float64(len(live))
	if avg <= ct.cfg.CPUHigh {
		return
	}
	need := int(float64(len(live))*avg/ct.cfg.CPUTarget+0.999) - len(live)
	if need <= 0 {
		return
	}
	ct.ScaleOuts++
	ct.InstancesAdded += need
	for i := 0; i < need; i++ {
		in := ct.Provision()
		for vip, rs := range ct.policies {
			in.InstallRules(vip, rs)
		}
	}
	// Refresh mappings to include the newcomers.
	for vip := range ct.policies {
		var ips []netsim.IP
		for _, in := range ct.liveInstances() {
			if in.HasVIP(vip) {
				ips = append(ips, in.IP())
			}
		}
		ct.vipInstances[vip] = ips
		ct.C.L4.SetMapping(vip, ips)
	}
	ct.C.HybridRefresh()
}
