// Package controller implements the Yoda controller (§6): the monitor
// that pings instances, Memcached servers and backends every 600 ms and
// repairs the L4 mappings on failure; the traffic-statistics reader; the
// policy (user-interface) component that installs rules; the scaling loop
// that adds instances under CPU pressure (§7.3); and the assignment
// updater that applies a new VIP→instance assignment to a live cluster
// (§4.5).
package controller

import (
	"time"

	"repro/internal/assignment"
	"repro/internal/cluster"
	"repro/internal/core"
	"repro/internal/netsim"
	"repro/internal/rules"
	"repro/internal/tcpstore"
)

// Config tunes the controller.
type Config struct {
	// PingInterval is the monitor period; failures are detected within at
	// most this delay (600 ms in the paper).
	PingInterval time.Duration
	// StatsInterval is how often per-VIP traffic counters are read.
	StatsInterval time.Duration
	// ScaleInterval is how often the scaling policy runs; CPUHigh is the
	// utilization that triggers adding instances; CPUTarget is the level
	// scale-out aims for. Scaling is disabled when ScaleInterval is 0.
	ScaleInterval time.Duration
	CPUHigh       float64
	CPUTarget     float64
}

// DefaultConfig matches the paper's deployment.
func DefaultConfig() Config {
	return Config{
		PingInterval:  600 * time.Millisecond,
		StatsInterval: time.Second,
		ScaleInterval: time.Second,
		CPUHigh:       0.75,
		CPUTarget:     0.60,
	}
}

// Controller supervises a cluster.
type Controller struct {
	C   *cluster.Cluster
	cfg Config

	// policies is the user-interface state: the installed rule set per
	// VIP, pushed to instances that hold the VIP.
	policies map[netsim.IP][]rules.Rule
	// vipInstances is the current VIP→instance mapping the controller
	// maintains at the L4 LB.
	vipInstances map[netsim.IP][]netsim.IP

	deadInstances  map[netsim.IP]bool
	lastStoreCount int
	timers         []netsim.Timer
	running        bool

	// Provision creates a new Yoda instance when the scaling loop needs
	// one. Defaults to cluster.AddYoda with default configs.
	Provision func() *core.Instance

	// Traffic accumulates per-VIP request counts from instance stats.
	Traffic map[netsim.IP]uint64
	// SNATExhausted accumulates dials rejected for lack of SNAT ports
	// across the cluster (from instance stats; a non-zero rate means the
	// per-instance port slices need widening).
	SNATExhausted uint64
	// Detections counts instance failures detected.
	Detections int
	// ScaleOuts counts scale-out actions taken.
	ScaleOuts int
	// InstancesAdded counts instances added by scaling.
	InstancesAdded int
}

// New creates a controller over a cluster.
func New(c *cluster.Cluster, cfg Config) *Controller {
	ct := &Controller{
		C:             c,
		cfg:           cfg,
		policies:      make(map[netsim.IP][]rules.Rule),
		vipInstances:  make(map[netsim.IP][]netsim.IP),
		deadInstances: make(map[netsim.IP]bool),
		Traffic:       make(map[netsim.IP]uint64),
	}
	ct.Provision = func() *core.Instance {
		return c.AddYoda(core.DefaultConfig(), tcpstore.DefaultConfig())
	}
	return ct
}

// SetPolicy installs (or replaces) the rule set for a VIP on the given
// instances (nil = all live instances) and updates the L4 mapping. This
// is the user-interface + assignment-updater path combined for the
// common all-instances case.
func (ct *Controller) SetPolicy(vip netsim.IP, rs []rules.Rule, insts []*core.Instance) {
	ct.policies[vip] = append([]rules.Rule(nil), rs...)
	if insts == nil {
		insts = ct.liveInstances()
	}
	var ips []netsim.IP
	for _, in := range insts {
		in.InstallRules(vip, rs)
		ips = append(ips, in.IP())
	}
	ct.vipInstances[vip] = ips
	ct.C.L4.SetMappingNow(vip, ips)
}

// UpdatePolicy changes the rules for a VIP on every instance that holds
// it. Existing connections are untouched: instances apply new policies to
// new connections only (§5.2).
func (ct *Controller) UpdatePolicy(vip netsim.IP, rs []rules.Rule) {
	ct.policies[vip] = append([]rules.Rule(nil), rs...)
	for _, in := range ct.C.Yoda {
		if in.HasVIP(vip) {
			in.InstallRules(vip, rs)
		}
	}
}

// RemoveVIP withdraws a VIP: reverse order of addition (§5.2) — first the
// L4 mapping, then the rules.
func (ct *Controller) RemoveVIP(vip netsim.IP) {
	ct.C.L4.RemoveVIP(vip)
	for _, in := range ct.C.Yoda {
		in.RemoveRules(vip)
	}
	delete(ct.policies, vip)
	delete(ct.vipInstances, vip)
}

// ApplyAssignment pushes a computed VIP→instance assignment onto the
// cluster: rules are installed on newly assigned instances first, then
// the L4 mappings are switched (staggered, as real muxes update
// non-atomically), then rules are removed from instances that lost the
// VIP after a drain delay.
func (ct *Controller) ApplyAssignment(vips []netsim.IP, a *assignment.Assignment, idToVIP func(int) netsim.IP) {
	for vid, instIdxs := range a.ByVIP {
		vip := idToVIP(vid)
		rs := ct.policies[vip]
		var ips []netsim.IP
		for _, idx := range instIdxs {
			if idx < 0 || idx >= len(ct.C.Yoda) {
				continue
			}
			in := ct.C.Yoda[idx]
			in.InstallRules(vip, rs)
			ips = append(ips, in.IP())
		}
		ct.vipInstances[vip] = ips
		ct.C.L4.SetMapping(vip, ips) // staggered across muxes
	}
}

func (ct *Controller) liveInstances() []*core.Instance {
	var out []*core.Instance
	for _, in := range ct.C.Yoda {
		if in.Host().Alive() {
			out = append(out, in)
		}
	}
	return out
}

// Start launches the monitor, stats and scaling loops.
func (ct *Controller) Start() {
	if ct.running {
		return
	}
	ct.running = true
	ct.scheduleMonitor()
	ct.scheduleStats()
	if ct.cfg.ScaleInterval > 0 {
		ct.scheduleScaling()
	}
}

// Stop cancels all loops.
func (ct *Controller) Stop() {
	ct.running = false
	for _, t := range ct.timers {
		t.Stop()
	}
	ct.timers = nil
}

func (ct *Controller) scheduleMonitor() {
	if !ct.running {
		return
	}
	t := ct.C.Net.Schedule(ct.cfg.PingInterval, func() {
		ct.monitorTick()
		ct.scheduleMonitor()
	})
	ct.timers = append(ct.timers, t)
}

// monitorTick pings every component and repairs mappings for the dead.
func (ct *Controller) monitorTick() {
	// Yoda instances: a dead instance is removed from all L4 mappings so
	// the underlying LB re-routes its flows to survivors (§4.2).
	for _, in := range ct.C.Yoda {
		ip := in.IP()
		if !in.Host().Alive() && !ct.deadInstances[ip] {
			ct.deadInstances[ip] = true
			ct.Detections++
			ct.C.L4.RemoveInstance(ip)
			for vip, ips := range ct.vipInstances {
				ct.vipInstances[vip] = removeIP(ips, ip)
			}
		}
	}
	// Backends: mark health so rule evaluation skips them, and terminate
	// the connections of newly dead backends so clients fail fast instead
	// of waiting out their HTTP timeouts (§5.2).
	for name, b := range ct.C.Backends {
		alive := b.Server.Host().Alive()
		wasDead := ct.C.Health.Dead[name]
		ct.C.Health.Dead[name] = !alive
		if !alive && !wasDead {
			for _, in := range ct.liveInstances() {
				in.TerminateBackendFlows(b.Rec.Addr)
			}
		}
	}
	// Memcached servers: when the live set changes, push the new server
	// list into every instance's TCPStore client so new keys avoid dead
	// replicas (§6: the monitor pings the Memcached servers too; the paper
	// does not re-replicate existing keys, and neither do we — flows
	// finish faster than replication would).
	live := make([]netsim.HostPort, 0, len(ct.C.StoreServers))
	for i, srv := range ct.C.StoreServers {
		if srv.Host().Alive() {
			live = append(live, ct.C.StoreAddrs[i])
		}
	}
	if len(live) != ct.lastStoreCount {
		ct.lastStoreCount = len(live)
		for _, in := range ct.C.Yoda {
			in.Store().SetServers(live)
		}
	}
}

func removeIP(ips []netsim.IP, dead netsim.IP) []netsim.IP {
	out := ips[:0]
	for _, ip := range ips {
		if ip != dead {
			out = append(out, ip)
		}
	}
	return out
}

func (ct *Controller) scheduleStats() {
	if !ct.running {
		return
	}
	t := ct.C.Net.Schedule(ct.cfg.StatsInterval, func() {
		for _, in := range ct.liveInstances() {
			for vip, st := range in.ReadStats() {
				ct.Traffic[vip] += st.NewFlows
				ct.SNATExhausted += st.SNATExhausted
			}
		}
		ct.scheduleStats()
	})
	ct.timers = append(ct.timers, t)
}

// BarrierHealth sums write-barrier outcomes across live instances: the
// cluster-wide persistence health view. Degraded or Aborted climbing
// means flows are being balanced that the cluster cannot (or, under
// StrictPersist, refused to) recover — the operator-facing symptom of a
// sick TCPStore, visible before any instance actually fails.
func (ct *Controller) BarrierHealth() core.BarrierStats {
	var total core.BarrierStats
	for _, in := range ct.liveInstances() {
		b := in.Barrier
		total.Commits += b.Commits
		total.Degraded += b.Degraded
		total.Aborted += b.Aborted
		total.Timeouts += b.Timeouts
	}
	return total
}

func (ct *Controller) scheduleScaling() {
	if !ct.running {
		return
	}
	t := ct.C.Net.Schedule(ct.cfg.ScaleInterval, func() {
		ct.scaleTick()
		ct.scheduleScaling()
	})
	ct.timers = append(ct.timers, t)
}

// scaleTick implements the §7.3 behaviour: when average instance CPU over
// the last interval exceeds CPUHigh, add enough instances to bring the
// projected utilization down to CPUTarget, give them every VIP's rules,
// and update the L4 mappings.
func (ct *Controller) scaleTick() {
	live := ct.liveInstances()
	if len(live) == 0 || ct.Provision == nil {
		return
	}
	now := ct.C.Net.Now()
	from := now - ct.cfg.ScaleInterval
	avg := 0.0
	for _, in := range live {
		avg += in.CPU.UtilizationClamped(from, now)
	}
	avg /= float64(len(live))
	if avg <= ct.cfg.CPUHigh {
		return
	}
	need := int(float64(len(live))*avg/ct.cfg.CPUTarget+0.999) - len(live)
	if need <= 0 {
		return
	}
	ct.ScaleOuts++
	ct.InstancesAdded += need
	for i := 0; i < need; i++ {
		in := ct.Provision()
		for vip, rs := range ct.policies {
			in.InstallRules(vip, rs)
		}
	}
	// Refresh mappings to include the newcomers.
	for vip := range ct.policies {
		var ips []netsim.IP
		for _, in := range ct.liveInstances() {
			if in.HasVIP(vip) {
				ips = append(ips, in.IP())
			}
		}
		ct.vipInstances[vip] = ips
		ct.C.L4.SetMapping(vip, ips)
	}
}
