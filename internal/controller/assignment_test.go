package controller_test

import (
	"fmt"
	"testing"
	"time"

	"repro/internal/assignment"
	"repro/internal/cluster"
	"repro/internal/controller"
	"repro/internal/core"
	"repro/internal/httpsim"
	"repro/internal/memcache"
	"repro/internal/netsim"
	"repro/internal/tcpstore"
)

// TestApplyAssignmentRoutesPerVIP drives the full many-to-many path: two
// VIPs assigned to disjoint instance subsets via the Figure-7 solver, the
// controller pushing rules and (staggered) L4 mappings, and traffic for
// each VIP landing only on its assigned instances.
func TestApplyAssignmentRoutesPerVIP(t *testing.T) {
	c := cluster.New(41)
	c.AddStoreServers(2, memcache.DefaultSimServerConfig())
	objs := map[string][]byte{"/o": []byte("data")}
	c.AddBackend("srv-1", objs, httpsim.DefaultServerConfig())
	c.AddBackend("srv-2", objs, httpsim.DefaultServerConfig())
	c.AddYodaN(4, core.DefaultConfig(), tcpstore.DefaultConfig())
	vipA := c.AddVIP("svc-a")
	vipB := c.AddVIP("svc-b")
	ct := controller.New(c, controller.DefaultConfig())
	// Register policies first (SetPolicy with explicit instance subsets
	// will be superseded by ApplyAssignment below).
	ct.SetPolicy(vipA, c.SimpleSplitRules("srv-1"), c.Yoda[:1])
	ct.SetPolicy(vipB, c.SimpleSplitRules("srv-2"), c.Yoda[:1])

	// Solve a two-VIP problem over the 4 instances: each VIP on 2.
	p := &assignment.Problem{
		MaxInst:    4,
		TrafficCap: 100,
		RuleCap:    10,
		VIPs: []assignment.VIP{
			{ID: 0, Traffic: 60, Rules: 1, Replicas: 2, Oversub: 0},
			{ID: 1, Traffic: 60, Rules: 1, Replicas: 2, Oversub: 0},
		},
	}
	a, err := assignment.SolveGreedy(p)
	if err != nil {
		t.Fatal(err)
	}
	idToVIP := func(id int) netsim.IP {
		if id == 0 {
			return vipA
		}
		return vipB
	}
	ct.ApplyAssignment([]netsim.IP{vipA, vipB}, a, idToVIP)
	c.Net.RunFor(time.Second) // let staggered mux updates converge

	// Rules must be installed exactly on the assigned instances.
	for vid, vip := range map[int]netsim.IP{0: vipA, 1: vipB} {
		assigned := map[int]bool{}
		for _, idx := range a.ByVIP[vid] {
			assigned[idx] = true
		}
		for i, in := range c.Yoda {
			if assigned[i] && !in.HasVIP(vip) {
				t.Fatalf("instance %d missing rules for vip %v", i, vip)
			}
		}
	}

	// Traffic for each VIP must flow (and land on assigned instances).
	fetch := func(vip netsim.IP, n int) int {
		ok := 0
		for i := 0; i < n; i++ {
			cl := c.NewClient(httpsim.DefaultClientConfig())
			cl.Get(netsim.HostPort{IP: vip, Port: 80}, "/o", func(r *httpsim.FetchResult) {
				if r.Err == nil {
					ok++
				}
			})
		}
		c.Net.RunFor(10 * time.Second)
		return ok
	}
	if got := fetch(vipA, 12); got != 12 {
		t.Fatalf("vipA fetches = %d", got)
	}
	if got := fetch(vipB, 12); got != 12 {
		t.Fatalf("vipB fetches = %d", got)
	}
	for i, in := range c.Yoda {
		st := in.ReadStats()
		for vid, vip := range map[int]netsim.IP{0: vipA, 1: vipB} {
			if st[vip] != nil && st[vip].NewFlows > 0 && !a.Has(vid, i) {
				t.Fatalf("instance %d served vip %v without being assigned", i, vip)
			}
		}
	}
}

// TestReassignmentMigratesFlowsWithoutBreakage moves a VIP from one
// instance pair to another mid-traffic: in-flight flows migrate through
// TCPStore recovery and nothing breaks.
func TestReassignmentMigratesFlowsWithoutBreakage(t *testing.T) {
	c := cluster.New(42)
	c.AddStoreServers(3, memcache.DefaultSimServerConfig())
	objs := map[string][]byte{"/big": make([]byte, 150*1024)}
	c.AddBackend("srv-1", objs, httpsim.DefaultServerConfig())
	c.AddYodaN(4, core.DefaultConfig(), tcpstore.DefaultConfig())
	vip := c.AddVIP("svc")
	ct := controller.New(c, controller.DefaultConfig())
	ct.SetPolicy(vip, c.SimpleSplitRules("srv-1"), c.Yoda[:2])
	ct.Start()

	done, errs := 0, 0
	for i := 0; i < 8; i++ {
		cl := c.NewClient(httpsim.DefaultClientConfig())
		i := i
		c.Net.Schedule(time.Duration(i)*25*time.Millisecond, func() {
			cl.Get(netsim.HostPort{IP: vip, Port: 80}, "/big", func(r *httpsim.FetchResult) {
				done++
				if r.Err != nil {
					errs++
				}
			})
		})
	}
	// Mid-transfer, move the VIP to the other two instances.
	c.Net.Schedule(150*time.Millisecond, func() {
		a := assignment.NewAssignment(4)
		a.ByVIP[0] = []int{2, 3}
		ct.ApplyAssignment([]netsim.IP{vip}, a, func(int) netsim.IP { return vip })
	})
	c.Net.RunFor(60 * time.Second)
	if done != 8 {
		t.Fatalf("done = %d", done)
	}
	if errs != 0 {
		t.Fatalf("%d flows broke during VIP reassignment", errs)
	}
	// The new owners must have recovered migrated flows.
	if c.Yoda[2].Recovered+c.Yoda[3].Recovered == 0 {
		t.Fatal("no flows migrated via TCPStore to the new instances")
	}
	_ = fmt.Sprint() // keep fmt for future debugging edits
}
