// Package assignment implements Yoda's VIP→instance assignment problem
// (§4.4–§4.5, Figure 7): place each VIP's rules on n_v instances so that
// the number of instances used is minimized subject to
//
//	Eq. 1  traffic capacity after f_v failures:  Σ_v t_v/(n_v−f_v) ≤ T_y
//	Eq. 2  rule capacity:                        Σ_v r_v ≤ R_y
//	Eq. 3  replication:                          each VIP on exactly n_v instances
//	Eq. 4–5 transient capacity: during a non-atomic update an instance
//	        may carry a VIP's share under the old OR new mapping; the sum
//	        of worst-case shares must stay within T_y
//	Eq. 6–7 migration: connections whose VIP leaves an instance migrate
//	        (through TCPStore); the migrated fraction is capped by δ
//
// The paper solves the ILP with CPLEX at a 10% optimality gap. This
// package substitutes a first-fit-decreasing constructor plus local
// search, validated against an exhaustive optimal solver on small
// instances (see the optimality-gap test); every constraint is enforced
// by construction and re-checked by Verify.
package assignment

import (
	"errors"
	"fmt"
	"sort"
)

// VIP describes one online service's requirements.
type VIP struct {
	ID       int
	Traffic  float64 // t_v: total traffic (req/s or any consistent unit)
	Rules    int     // r_v: number of L7 rules
	Replicas int     // n_v: instances the VIP must be assigned to
	Oversub  float64 // o_v: tolerated failure fraction; f_v = floor(n_v·o_v)
}

// Failures returns f_v, the number of instance failures the VIP must
// tolerate without overloading the survivors.
func (v *VIP) Failures() int {
	f := int(float64(v.Replicas) * v.Oversub)
	if f >= v.Replicas {
		f = v.Replicas - 1
	}
	if f < 0 {
		f = 0
	}
	return f
}

// Share returns the per-instance traffic share the assignment must
// reserve: the VIP's traffic split over the replicas that survive f_v
// failures.
func (v *VIP) Share() float64 {
	den := v.Replicas - v.Failures()
	if den <= 0 {
		den = 1
	}
	return v.Traffic / float64(den)
}

// Problem is one assignment round.
type Problem struct {
	VIPs       []VIP
	MaxInst    int     // |Y|: instances available
	TrafficCap float64 // T_y
	RuleCap    int     // R_y; 0 disables the rule constraint (all-to-all baseline)

	// Old is the previous round's assignment (nil on the first round).
	// OldConns[v][y] is C_v,y^old, the connections of VIP v currently on
	// instance y; when nil, connections are assumed proportional to the
	// old traffic shares.
	Old      *Assignment
	OldConns map[int]map[int]float64

	// MigrationLimit is δ: the maximum fraction of existing connections
	// allowed to migrate in this round. 0 means unlimited (Yoda-no-limit).
	MigrationLimit float64
	// TransientCheck enables Eq. 4–5 (Yoda-limit); without it only the
	// steady-state capacity is enforced (Yoda-no-limit).
	TransientCheck bool
}

// Assignment maps VIPs to instance indices.
type Assignment struct {
	// ByVIP[vipID] lists the instance indices the VIP is assigned to.
	ByVIP map[int][]int
	// NumInstances is the size of the instance index space.
	NumInstances int
}

// NewAssignment creates an empty assignment over n instances.
func NewAssignment(n int) *Assignment {
	return &Assignment{ByVIP: make(map[int][]int), NumInstances: n}
}

// Clone deep-copies the assignment.
func (a *Assignment) Clone() *Assignment {
	out := NewAssignment(a.NumInstances)
	for v, insts := range a.ByVIP {
		out.ByVIP[v] = append([]int(nil), insts...)
	}
	return out
}

// Instances returns the sorted instance list for a VIP.
func (a *Assignment) Instances(vipID int) []int {
	return a.ByVIP[vipID]
}

// Has reports whether VIP v is assigned to instance y.
func (a *Assignment) Has(vipID, y int) bool {
	for _, i := range a.ByVIP[vipID] {
		if i == y {
			return true
		}
	}
	return false
}

// Used returns the number of instances that carry at least one VIP.
func (a *Assignment) Used() int {
	used := make(map[int]bool)
	for _, insts := range a.ByVIP {
		for _, y := range insts {
			used[y] = true
		}
	}
	return len(used)
}

// PerInstanceVIPs inverts the mapping: instance → VIP IDs.
func (a *Assignment) PerInstanceVIPs() map[int][]int {
	out := make(map[int][]int)
	for v, insts := range a.ByVIP {
		for _, y := range insts {
			out[y] = append(out[y], v)
		}
	}
	for _, vs := range out {
		sort.Ints(vs)
	}
	return out
}

// loads computes per-instance traffic shares and rule counts under a.
func loads(p *Problem, a *Assignment) (traffic map[int]float64, rls map[int]int) {
	traffic = make(map[int]float64)
	rls = make(map[int]int)
	for i := range p.VIPs {
		v := &p.VIPs[i]
		for _, y := range a.ByVIP[v.ID] {
			traffic[y] += v.Share()
			rls[y] += v.Rules
		}
	}
	return traffic, rls
}

// TransientLoad returns each instance's worst-case traffic during the
// old→new transition: for every VIP the instance carries under either
// mapping, it may see that VIP's full share (Eq. 4–5).
func TransientLoad(p *Problem, old, new *Assignment) map[int]float64 {
	out := make(map[int]float64)
	if old == nil {
		old = NewAssignment(0)
	}
	for i := range p.VIPs {
		v := &p.VIPs[i]
		seen := make(map[int]bool)
		for _, y := range old.ByVIP[v.ID] {
			if !seen[y] {
				seen[y] = true
				out[y] += v.Share()
			}
		}
		for _, y := range new.ByVIP[v.ID] {
			if !seen[y] {
				seen[y] = true
				out[y] += v.Share()
			}
		}
	}
	return out
}

// oldConns returns C_v,y^old for VIP v on instance y.
func (p *Problem) oldConnsFor(v *VIP, y int) float64 {
	if p.OldConns != nil {
		return p.OldConns[v.ID][y]
	}
	if p.Old == nil {
		return 0
	}
	insts := p.Old.ByVIP[v.ID]
	if len(insts) == 0 {
		return 0
	}
	for _, i := range insts {
		if i == y {
			return v.Traffic / float64(len(insts))
		}
	}
	return 0
}

// totalOldConns sums C^old over all VIPs and instances.
func (p *Problem) totalOldConns() float64 {
	total := 0.0
	for i := range p.VIPs {
		v := &p.VIPs[i]
		if p.OldConns != nil {
			for _, c := range p.OldConns[v.ID] {
				total += c
			}
			continue
		}
		if p.Old != nil && len(p.Old.ByVIP[v.ID]) > 0 {
			total += v.Traffic
		}
	}
	return total
}

// ActualShare returns a VIP's real per-replica traffic under an
// assignment placing it on n instances: t_v/n (the Share method instead
// gives the worst-case post-failure share the ILP provisions for).
func actualShare(v *VIP, n int) float64 {
	if n <= 0 {
		return 0
	}
	return v.Traffic / float64(n)
}

// TransientLoadActual returns each instance's real traffic during the
// old→new transition: for a VIP the instance carries under either
// mapping, the larger of the two actual per-replica shares (the L4 muxes
// split between the mappings, so an instance sees at most the bigger
// one). This is what "overloaded during transition" (Figure 16d) means
// operationally, as opposed to the provisioned worst case of Eq. 4–5.
func TransientLoadActual(p *Problem, old, new *Assignment) map[int]float64 {
	out := make(map[int]float64)
	if old == nil {
		old = NewAssignment(0)
	}
	for i := range p.VIPs {
		v := &p.VIPs[i]
		aOld := actualShare(v, len(old.ByVIP[v.ID]))
		aNew := actualShare(v, len(new.ByVIP[v.ID]))
		seen := make(map[int]float64)
		for _, y := range old.ByVIP[v.ID] {
			seen[y] = aOld
		}
		for _, y := range new.ByVIP[v.ID] {
			if cur, ok := seen[y]; !ok || aNew > cur {
				seen[y] = aNew
			}
		}
		for y, share := range seen {
			out[y] += share
		}
	}
	return out
}

// OldOnlyLoadActual returns per-instance real traffic under the old
// assignment at current traffic values.
func OldOnlyLoadActual(p *Problem) map[int]float64 {
	out := make(map[int]float64)
	if p.Old == nil {
		return out
	}
	for i := range p.VIPs {
		v := &p.VIPs[i]
		a := actualShare(v, len(p.Old.ByVIP[v.ID]))
		for _, y := range p.Old.ByVIP[v.ID] {
			out[y] += a
		}
	}
	return out
}

// OldOnlyLoad returns each instance's traffic share under the old
// assignment evaluated at current (this round's) traffic — the load an
// instance carries before any update is applied.
func OldOnlyLoad(p *Problem) map[int]float64 {
	out := make(map[int]float64)
	if p.Old == nil {
		return out
	}
	for i := range p.VIPs {
		v := &p.VIPs[i]
		for _, y := range p.Old.ByVIP[v.ID] {
			out[y] += v.Share()
		}
	}
	return out
}

// MigratedConns returns the connections that migrate under new: those on
// instances a VIP leaves (Eq. 6–7).
func MigratedConns(p *Problem, new *Assignment) float64 {
	if p.Old == nil {
		return 0
	}
	migrated := 0.0
	for i := range p.VIPs {
		v := &p.VIPs[i]
		for _, y := range p.Old.ByVIP[v.ID] {
			if !new.Has(v.ID, y) {
				migrated += p.oldConnsFor(v, y)
			}
		}
	}
	return migrated
}

// MigratedFraction returns migrated / total existing connections.
func MigratedFraction(p *Problem, new *Assignment) float64 {
	total := p.totalOldConns()
	if total == 0 {
		return 0
	}
	return MigratedConns(p, new) / total
}

// Verification errors.
var (
	ErrTrafficCap = errors.New("assignment: traffic capacity exceeded")
	ErrRuleCap    = errors.New("assignment: rule capacity exceeded")
	ErrReplicas   = errors.New("assignment: wrong replica count")
	ErrTransient  = errors.New("assignment: transient capacity exceeded")
	ErrMigration  = errors.New("assignment: migration limit exceeded")
	ErrOutOfRange = errors.New("assignment: instance index out of range")
	ErrDuplicate  = errors.New("assignment: VIP assigned twice to one instance")
	ErrInfeasible = errors.New("assignment: infeasible")
)

// Verify checks every constraint of Figure 7 against a.
func Verify(p *Problem, a *Assignment) error {
	const eps = 1e-9
	for i := range p.VIPs {
		v := &p.VIPs[i]
		insts := a.ByVIP[v.ID]
		if len(insts) != v.Replicas {
			return fmt.Errorf("%w: VIP %d on %d instances, want %d", ErrReplicas, v.ID, len(insts), v.Replicas)
		}
		seen := map[int]bool{}
		for _, y := range insts {
			if y < 0 || y >= p.MaxInst {
				return fmt.Errorf("%w: VIP %d on instance %d", ErrOutOfRange, v.ID, y)
			}
			if seen[y] {
				return fmt.Errorf("%w: VIP %d instance %d", ErrDuplicate, v.ID, y)
			}
			seen[y] = true
		}
	}
	traffic, rls := loads(p, a)
	for y, tr := range traffic {
		if tr > p.TrafficCap+eps {
			return fmt.Errorf("%w: instance %d carries %.2f > %.2f", ErrTrafficCap, y, tr, p.TrafficCap)
		}
	}
	if p.RuleCap > 0 {
		for y, r := range rls {
			if r > p.RuleCap {
				return fmt.Errorf("%w: instance %d holds %d > %d rules", ErrRuleCap, y, r, p.RuleCap)
			}
		}
	}
	if p.TransientCheck && p.Old != nil {
		// Instances already overloaded by the old mapping alone (traffic
		// grew since the last round) cannot be fixed by this round's
		// placement; the paper observes exactly this case and excludes it
		// ("the instances that were overloaded in YODA-limit were already
		// overloaded before starting the new round", §8.2). The constraint
		// therefore binds only where new placements create the overload.
		oldLoad := OldOnlyLoad(p)
		for y, tr := range TransientLoad(p, p.Old, a) {
			if tr > p.TrafficCap+eps && oldLoad[y] <= p.TrafficCap+eps {
				return fmt.Errorf("%w: instance %d transient %.2f > %.2f", ErrTransient, y, tr, p.TrafficCap)
			}
		}
	}
	if p.MigrationLimit > 0 && p.Old != nil {
		if frac := MigratedFraction(p, a); frac > p.MigrationLimit+eps {
			return fmt.Errorf("%w: %.3f > %.3f", ErrMigration, frac, p.MigrationLimit)
		}
	}
	return nil
}
