package assignment

import (
	"math/rand"
	"testing"
	"testing/quick"
)

// mkProblem builds a problem with nVIPs uniform VIPs.
func mkProblem(nVIPs, replicas int, traffic float64, ruleCount int) *Problem {
	p := &Problem{
		MaxInst:    100,
		TrafficCap: 100,
		RuleCap:    2000,
	}
	for i := 0; i < nVIPs; i++ {
		p.VIPs = append(p.VIPs, VIP{
			ID: i, Traffic: traffic, Rules: ruleCount, Replicas: replicas, Oversub: 0.25,
		})
	}
	return p
}

func TestVIPFailuresAndShare(t *testing.T) {
	v := VIP{Traffic: 100, Replicas: 4, Oversub: 0.25}
	if v.Failures() != 1 {
		t.Fatalf("f_v = %d, want 1", v.Failures())
	}
	// Share: traffic over surviving replicas = 100/3.
	if s := v.Share(); s < 33.3 || s > 33.4 {
		t.Fatalf("share = %v", s)
	}
	// Oversub 0 tolerates no failures.
	v = VIP{Traffic: 100, Replicas: 4, Oversub: 0}
	if v.Failures() != 0 || v.Share() != 25 {
		t.Fatalf("f=%d share=%v", v.Failures(), v.Share())
	}
	// Oversub ≥ 1 clamps to n-1.
	v = VIP{Traffic: 100, Replicas: 4, Oversub: 1}
	if v.Failures() != 3 || v.Share() != 100 {
		t.Fatalf("f=%d share=%v", v.Failures(), v.Share())
	}
}

func TestGreedySatisfiesConstraints(t *testing.T) {
	p := mkProblem(20, 3, 60, 300)
	a, err := SolveGreedy(p)
	if err != nil {
		t.Fatal(err)
	}
	if err := Verify(p, a); err != nil {
		t.Fatal(err)
	}
}

func TestGreedyPacksTightly(t *testing.T) {
	// 10 VIPs, each share 25 (traffic 50 over 2 surviving replicas),
	// replicas 3, cap 100: lower bound = ceil(10*3*25/100) = 8 instances.
	p := &Problem{MaxInst: 50, TrafficCap: 100, RuleCap: 0}
	for i := 0; i < 10; i++ {
		p.VIPs = append(p.VIPs, VIP{ID: i, Traffic: 50, Rules: 10, Replicas: 3, Oversub: 0.4})
	}
	a, err := SolveGreedy(p)
	if err != nil {
		t.Fatal(err)
	}
	if used := a.Used(); used > 10 {
		t.Fatalf("greedy used %d instances (lower bound 8)", used)
	}
}

func TestRuleCapForcesSpreading(t *testing.T) {
	// Traffic is tiny but rules are fat: the rule cap must force more
	// instances than traffic alone would.
	p := &Problem{MaxInst: 50, TrafficCap: 1000, RuleCap: 1000}
	for i := 0; i < 10; i++ {
		p.VIPs = append(p.VIPs, VIP{ID: i, Traffic: 1, Rules: 600, Replicas: 2, Oversub: 0})
	}
	a, err := SolveGreedy(p)
	if err != nil {
		t.Fatal(err)
	}
	if err := Verify(p, a); err != nil {
		t.Fatal(err)
	}
	// Each instance fits one VIP's rules (600 ≤ 1000 < 1200): 2 replicas ×
	// 10 VIPs / 1 VIP per instance = 20 instances.
	if used := a.Used(); used != 20 {
		t.Fatalf("used = %d, want 20 (rule-bound)", used)
	}
	// All-to-all would use only 1 instance by traffic — the contrast the
	// paper's many-to-many model exploits in reverse (rules vs latency).
	if n := AllToAllInstanceCount(p); n != 1 {
		t.Fatalf("all-to-all count = %d", n)
	}
}

func TestReplicaConstraint(t *testing.T) {
	p := mkProblem(5, 4, 10, 10)
	a, _ := SolveGreedy(p)
	for _, v := range p.VIPs {
		if len(a.Instances(v.ID)) != 4 {
			t.Fatalf("VIP %d has %d replicas", v.ID, len(a.Instances(v.ID)))
		}
	}
}

func TestInfeasibleTooFewInstances(t *testing.T) {
	p := mkProblem(1, 5, 10, 10)
	p.MaxInst = 3
	if _, err := SolveGreedy(p); err == nil {
		t.Fatal("expected infeasibility: 5 replicas, 3 instances")
	}
}

func TestInfeasibleTrafficOverload(t *testing.T) {
	p := &Problem{MaxInst: 2, TrafficCap: 10, RuleCap: 0}
	for i := 0; i < 10; i++ {
		p.VIPs = append(p.VIPs, VIP{ID: i, Traffic: 10, Rules: 1, Replicas: 1, Oversub: 0})
	}
	if _, err := SolveGreedy(p); err == nil {
		t.Fatal("expected infeasibility: 100 traffic into 20 capacity")
	}
}

func TestStickinessMinimizesMigration(t *testing.T) {
	p := mkProblem(10, 2, 20, 100)
	first, err := SolveGreedy(p)
	if err != nil {
		t.Fatal(err)
	}
	// Re-solve the identical problem with the old assignment: nothing
	// should migrate.
	p.Old = first
	p.MigrationLimit = 0.10
	second, err := SolveGreedy(p)
	if err != nil {
		t.Fatal(err)
	}
	if frac := MigratedFraction(p, second); frac > 0.001 {
		t.Fatalf("unchanged problem migrated %.3f of connections", frac)
	}
}

func TestMigrationLimitRespectedUnderChange(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	p := &Problem{MaxInst: 60, TrafficCap: 100, RuleCap: 2000}
	for i := 0; i < 30; i++ {
		p.VIPs = append(p.VIPs, VIP{
			ID: i, Traffic: 10 + rng.Float64()*50, Rules: 50 + rng.Intn(200),
			Replicas: 2 + rng.Intn(2), Oversub: 0.25,
		})
	}
	old, err := SolveGreedy(p)
	if err != nil {
		t.Fatal(err)
	}
	// Shift traffic (diurnal move) and re-solve with a 10% migration cap.
	for i := range p.VIPs {
		p.VIPs[i].Traffic *= 0.5 + rng.Float64()
	}
	p.Old = old
	p.MigrationLimit = 0.10
	p.TransientCheck = true
	a, err := SolveGreedy(p)
	if err != nil {
		t.Fatal(err)
	}
	// The solver may have relaxed δ if infeasible; the final result must
	// still verify under some relaxed limit — check the real fraction is
	// bounded by δ plus the relaxation steps.
	frac := MigratedFraction(p, a)
	if frac > 0.5 {
		t.Fatalf("migrated fraction %.3f suspiciously high", frac)
	}
	// Eq. 1–5 must hold regardless of relaxation.
	q := *p
	q.MigrationLimit = 0
	if err := Verify(&q, a); err != nil {
		t.Fatal(err)
	}
}

func TestTransientCheckLimitsOverload(t *testing.T) {
	// Construct a case where ignoring Eq. 4–5 overloads an instance in
	// transition: VIP moves entirely from instance set A to set B that
	// also carries other VIPs near capacity.
	mk := func(transient bool) (int, bool) {
		p := &Problem{MaxInst: 40, TrafficCap: 100, RuleCap: 0, TransientCheck: transient}
		for i := 0; i < 12; i++ {
			p.VIPs = append(p.VIPs, VIP{ID: i, Traffic: 55, Rules: 1, Replicas: 1, Oversub: 0})
		}
		old, err := SolveGreedy(p)
		if err != nil {
			return 0, false
		}
		// Swap traffic so the solver is tempted to shuffle VIPs around.
		for i := range p.VIPs {
			if i%2 == 0 {
				p.VIPs[i].Traffic = 90
			} else {
				p.VIPs[i].Traffic = 20
			}
		}
		p.Old = old
		a, err := SolveGreedy(p)
		if err != nil {
			return 0, false
		}
		over := 0
		for _, tr := range TransientLoad(p, old, a) {
			if tr > p.TrafficCap+1e-9 {
				over++
			}
		}
		return over, true
	}
	overLimited, ok := mk(true)
	if !ok {
		t.Skip("limited variant infeasible under this construction")
	}
	if overLimited != 0 {
		t.Fatalf("Yoda-limit overloaded %d instances in transition", overLimited)
	}
}

func TestGreedyOptimalityGap(t *testing.T) {
	// Compare against the exhaustive optimum on small random instances;
	// the paper ran CPLEX at a 10% gap, we tolerate slightly more on the
	// worst case but require a small mean gap.
	rng := rand.New(rand.NewSource(11))
	totalGap, cases := 0.0, 0
	for trial := 0; trial < 12; trial++ {
		p := &Problem{MaxInst: 6, TrafficCap: 100, RuleCap: 500}
		n := 3 + rng.Intn(3)
		for i := 0; i < n; i++ {
			p.VIPs = append(p.VIPs, VIP{
				ID: i, Traffic: 20 + rng.Float64()*60, Rules: 50 + rng.Intn(150),
				Replicas: 1 + rng.Intn(2), Oversub: 0,
			})
		}
		opt, errO := SolveExhaustive(p)
		got, errG := SolveGreedy(p)
		if errO != nil {
			if errG == nil {
				t.Fatalf("greedy found a solution where exhaustive says infeasible")
			}
			continue
		}
		if errG != nil {
			t.Fatalf("greedy failed on feasible instance: %v", errG)
		}
		gap := float64(got.Used()-opt.Used()) / float64(opt.Used())
		if gap > 0.51 {
			t.Fatalf("trial %d: greedy=%d optimal=%d gap=%.0f%%", trial, got.Used(), opt.Used(), gap*100)
		}
		totalGap += gap
		cases++
	}
	if cases == 0 {
		t.Fatal("no feasible cases generated")
	}
	if mean := totalGap / float64(cases); mean > 0.15 {
		t.Fatalf("mean optimality gap %.1f%% exceeds 15%%", mean*100)
	}
}

func TestVerifyCatchesViolations(t *testing.T) {
	p := mkProblem(2, 2, 60, 100)
	a, _ := SolveGreedy(p)
	// Break replica count.
	bad := a.Clone()
	bad.ByVIP[0] = bad.ByVIP[0][:1]
	if err := Verify(p, bad); err == nil {
		t.Fatal("missing replica accepted")
	}
	// Duplicate placement.
	bad = a.Clone()
	bad.ByVIP[0] = []int{bad.ByVIP[0][0], bad.ByVIP[0][0]}
	if err := Verify(p, bad); err == nil {
		t.Fatal("duplicate placement accepted")
	}
	// Out of range.
	bad = a.Clone()
	bad.ByVIP[0] = []int{0, p.MaxInst + 5}
	if err := Verify(p, bad); err == nil {
		t.Fatal("out-of-range accepted")
	}
	// Traffic overload: pile everything on instance 0.
	bad = NewAssignment(p.MaxInst)
	for _, v := range p.VIPs {
		bad.ByVIP[v.ID] = []int{0, 1}
	}
	pTight := mkProblem(2, 2, 600, 100) // share 600 > cap
	if err := Verify(pTight, bad); err == nil {
		t.Fatal("traffic overload accepted")
	}
}

func TestAllToAllBaseline(t *testing.T) {
	p := mkProblem(10, 2, 30, 100)
	a := AllToAll(p)
	// Baseline must satisfy replica counts.
	for _, v := range p.VIPs {
		if len(a.Instances(v.ID)) != v.Replicas {
			t.Fatalf("VIP %d: %d replicas", v.ID, len(a.Instances(v.ID)))
		}
	}
	if AllToAllInstanceCount(p) < 1 {
		t.Fatal("instance count")
	}
}

func TestAssignmentHelpers(t *testing.T) {
	a := NewAssignment(4)
	a.ByVIP[7] = []int{0, 2}
	if !a.Has(7, 0) || !a.Has(7, 2) || a.Has(7, 1) {
		t.Fatal("Has wrong")
	}
	if a.Used() != 2 {
		t.Fatalf("Used = %d", a.Used())
	}
	per := a.PerInstanceVIPs()
	if len(per[0]) != 1 || per[0][0] != 7 {
		t.Fatalf("PerInstanceVIPs: %v", per)
	}
	cl := a.Clone()
	cl.ByVIP[7][0] = 3
	if a.ByVIP[7][0] != 0 {
		t.Fatal("clone aliases")
	}
}

func TestGreedyConstraintsProperty(t *testing.T) {
	// Any feasible random instance the greedy solves must verify.
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		p := &Problem{
			MaxInst:    20 + rng.Intn(30),
			TrafficCap: 100,
			RuleCap:    500 + rng.Intn(1500),
		}
		n := 1 + rng.Intn(15)
		for i := 0; i < n; i++ {
			p.VIPs = append(p.VIPs, VIP{
				ID:       i,
				Traffic:  rng.Float64() * 80,
				Rules:    rng.Intn(400),
				Replicas: 1 + rng.Intn(3),
				Oversub:  rng.Float64() * 0.5,
			})
		}
		a, err := SolveGreedy(p)
		if err != nil {
			return true // infeasible is a legal outcome
		}
		return Verify(p, a) == nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}
