package assignment

import (
	"fmt"
	"math"
	"sort"
)

// AllToAll is the baseline scheme (§4.4): every VIP on every instance,
// using the minimum instance count the total traffic requires. Rule
// capacity is ignored — that is exactly the scheme's weakness (Figure 6).
func AllToAll(p *Problem) *Assignment {
	total := 0.0
	maxRepl := 1
	for i := range p.VIPs {
		total += p.VIPs[i].Share()
		if p.VIPs[i].Replicas > maxRepl {
			maxRepl = p.VIPs[i].Replicas
		}
	}
	n := int(math.Ceil(total / p.TrafficCap))
	if n < maxRepl {
		n = maxRepl
	}
	if n < 1 {
		n = 1
	}
	if n > p.MaxInst {
		n = p.MaxInst
	}
	a := NewAssignment(p.MaxInst)
	for i := range p.VIPs {
		v := &p.VIPs[i]
		// "All" instances, truncated to the VIP's replica count for the
		// replica-count invariant: in the all-to-all scheme n_v = n.
		k := v.Replicas
		if k > n {
			k = n
		}
		insts := make([]int, 0, k)
		for y := 0; y < k; y++ {
			insts = append(insts, y)
		}
		a.ByVIP[v.ID] = insts
	}
	return a
}

// AllToAllInstanceCount returns the instance count the all-to-all
// baseline needs: the total traffic divided by per-instance capacity
// (§8.2 — the scheme that uses the fewest instances but holds every rule
// everywhere).
func AllToAllInstanceCount(p *Problem) int {
	total := 0.0
	for i := range p.VIPs {
		total += p.VIPs[i].Traffic
	}
	n := int(math.Ceil(total / p.TrafficCap))
	if n < 1 {
		n = 1
	}
	return n
}

// solverState tracks per-instance headroom during construction.
type solverState struct {
	p         *Problem
	a         *Assignment
	traffic   []float64
	rls       []int
	transient []float64 // worst-case transition load (Eq. 4–5)
	open      []bool
	openCount int
	// migration budget (Eq. 6–7)
	migrated   float64
	migrantCap float64
	totalConns float64
}

func newSolverState(p *Problem) *solverState {
	s := &solverState{
		p:         p,
		a:         NewAssignment(p.MaxInst),
		traffic:   make([]float64, p.MaxInst),
		rls:       make([]int, p.MaxInst),
		transient: make([]float64, p.MaxInst),
		open:      make([]bool, p.MaxInst),
	}
	s.totalConns = p.totalOldConns()
	if p.MigrationLimit > 0 {
		s.migrantCap = p.MigrationLimit * s.totalConns
	} else {
		s.migrantCap = math.Inf(1)
	}
	if p.TransientCheck && p.Old != nil {
		// Seed transient load with each instance's old shares; placing a
		// VIP on a new instance adds its share there too.
		for i := range p.VIPs {
			v := &p.VIPs[i]
			for _, y := range p.Old.ByVIP[v.ID] {
				if y >= 0 && y < p.MaxInst {
					s.transient[y] += v.Share()
				}
			}
		}
	}
	return s
}

// fits reports whether VIP v can be placed on instance y.
func (s *solverState) fits(v *VIP, y int) bool {
	const eps = 1e-9
	if s.a.Has(v.ID, y) {
		return false
	}
	if s.traffic[y]+v.Share() > s.p.TrafficCap+eps {
		return false
	}
	if s.p.RuleCap > 0 && s.rls[y]+v.Rules > s.p.RuleCap {
		return false
	}
	if s.p.TransientCheck && s.p.Old != nil && !s.p.Old.Has(v.ID, y) {
		// Staying on an old home adds no transient load (it is already in
		// the seeded old-mapping share); only genuinely new placements are
		// constrained by Eq. 4–5.
		if s.transient[y]+v.Share() > s.p.TrafficCap+eps {
			return false
		}
	}
	return true
}

func (s *solverState) place(v *VIP, y int) {
	s.a.ByVIP[v.ID] = append(s.a.ByVIP[v.ID], y)
	s.traffic[y] += v.Share()
	s.rls[y] += v.Rules
	if s.p.TransientCheck && s.p.Old != nil && !s.p.Old.Has(v.ID, y) {
		s.transient[y] += v.Share()
	}
	if !s.open[y] {
		s.open[y] = true
		s.openCount++
	}
}

// SolveGreedy computes an assignment with first-fit decreasing plus a
// stickiness preference: each VIP tries to stay on its old instances
// first (zero migration), then on already-open instances with the least
// remaining headroom (tight packing), and only then opens new instances.
// When the migration budget δ makes the problem infeasible, the budget
// is relaxed in 10% steps, exactly as the paper's operators did (§8.2).
func SolveGreedy(p *Problem) (*Assignment, error) {
	limit := p.MigrationLimit
	for {
		a, err := solveGreedyOnce(p, limit)
		if err == nil {
			return a, nil
		}
		if limit <= 0 || limit >= 1 {
			return nil, err
		}
		limit += 0.10 // relax δ and retry
		if limit > 1 {
			limit = 0 // unlimited
		}
	}
}

func solveGreedyOnce(p *Problem, migrationLimit float64) (*Assignment, error) {
	q := *p
	q.MigrationLimit = migrationLimit
	s := newSolverState(&q)

	// FFD over per-replica traffic share: heavy VIPs first.
	order := make([]int, len(q.VIPs))
	for i := range order {
		order[i] = i
	}
	sort.SliceStable(order, func(a, b int) bool {
		return q.VIPs[order[a]].Share() > q.VIPs[order[b]].Share()
	})

	for _, idx := range order {
		v := &q.VIPs[idx]
		if v.Replicas > q.MaxInst {
			return nil, fmt.Errorf("%w: VIP %d needs %d replicas, only %d instances", ErrInfeasible, v.ID, v.Replicas, q.MaxInst)
		}
		if err := s.placeVIP(v); err != nil {
			return nil, err
		}
	}
	if q.MigrationLimit > 0 && q.Old != nil {
		if MigratedFraction(&q, s.a) > q.MigrationLimit+1e-9 {
			return nil, fmt.Errorf("%w (migration budget)", ErrInfeasible)
		}
	}
	localSearch(&q, s)
	// The constructor and local search maintain the constraints, but the
	// returned assignment is re-verified end to end as a safety net.
	if err := Verify(&q, s.a); err != nil {
		return nil, fmt.Errorf("%w: %v", ErrInfeasible, err)
	}
	return s.a, nil
}

// placeVIP chooses n_v instances for v.
func (s *solverState) placeVIP(v *VIP) error {
	need := v.Replicas
	// Pass 1: old homes (free migration-wise).
	if s.p.Old != nil {
		for _, y := range s.p.Old.ByVIP[v.ID] {
			if need == 0 {
				break
			}
			if y >= 0 && y < s.p.MaxInst && s.fits(v, y) {
				s.place(v, y)
				need--
			}
		}
	}
	// The connections on old homes we do NOT keep will migrate; account
	// for the cheapest-feasible choice by accruing migration when we skip
	// an old home.
	if s.p.Old != nil {
		for _, y := range s.p.Old.ByVIP[v.ID] {
			if !s.a.Has(v.ID, y) {
				s.migrated += s.p.oldConnsFor(v, y)
			}
		}
		if s.migrated > s.migrantCap {
			return fmt.Errorf("%w (migration budget)", ErrInfeasible)
		}
	}
	// Pass 2: open instances, best-fit (least headroom that still fits).
	for need > 0 {
		best, bestHead := -1, math.Inf(1)
		for y := 0; y < s.p.MaxInst; y++ {
			if !s.open[y] || !s.fits(v, y) {
				continue
			}
			head := s.p.TrafficCap - s.traffic[y]
			if head < bestHead {
				best, bestHead = y, head
			}
		}
		if best < 0 {
			break
		}
		s.place(v, best)
		need--
	}
	// Pass 3: open fresh instances.
	for need > 0 {
		opened := false
		for y := 0; y < s.p.MaxInst; y++ {
			if s.open[y] {
				continue
			}
			if s.fits(v, y) {
				s.place(v, y)
				need--
				opened = true
				break
			}
		}
		if !opened {
			return fmt.Errorf("%w: VIP %d cannot get %d more replicas", ErrInfeasible, v.ID, need)
		}
	}
	return nil
}

// localSearch tries to drain lightly-loaded instances by relocating their
// VIP replicas onto other open instances, shrinking the objective.
func localSearch(p *Problem, s *solverState) {
	perInst := s.a.PerInstanceVIPs()
	// Visit instances lightest-first.
	var order []int
	for y := range perInst {
		order = append(order, y)
	}
	sort.Slice(order, func(a, b int) bool { return s.traffic[order[a]] < s.traffic[order[b]] })

	vipByID := make(map[int]*VIP, len(p.VIPs))
	for i := range p.VIPs {
		vipByID[p.VIPs[i].ID] = &p.VIPs[i]
	}

	for _, y := range order {
		vips := perInst[y]
		// Plan moves for every replica on y; abort if any cannot move.
		type move struct {
			v  *VIP
			to int
		}
		var plan []move
		feasible := true
		// Simulate removals so multiple VIPs moving to one target respect caps.
		trialTraffic := append([]float64(nil), s.traffic...)
		trialRules := append([]int(nil), s.rls...)
		trialTransient := append([]float64(nil), s.transient...)
		trialMigrated := s.migrated
		for _, vid := range vips {
			v := vipByID[vid]
			moved := false
			for to := 0; to < p.MaxInst && !moved; to++ {
				if to == y || !s.open[to] || s.a.Has(vid, to) {
					continue
				}
				if trialTraffic[to]+v.Share() > p.TrafficCap+1e-9 {
					continue
				}
				if p.RuleCap > 0 && trialRules[to]+v.Rules > p.RuleCap {
					continue
				}
				if p.TransientCheck && p.Old != nil && !p.Old.Has(vid, to) {
					if trialTransient[to]+v.Share() > p.TrafficCap+1e-9 {
						continue
					}
				}
				addMig := 0.0
				if p.Old != nil && p.Old.Has(vid, y) && !s.a.Has(vid, y) {
					addMig = 0
				} else if p.Old != nil && p.Old.Has(vid, y) {
					addMig = p.oldConnsFor(v, y)
				}
				if trialMigrated+addMig > s.migrantCap {
					continue
				}
				trialTraffic[to] += v.Share()
				trialRules[to] += v.Rules
				if p.TransientCheck && p.Old != nil && !p.Old.Has(vid, to) {
					trialTransient[to] += v.Share()
				}
				trialMigrated += addMig
				plan = append(plan, move{v: v, to: to})
				moved = true
			}
			if !moved {
				feasible = false
				break
			}
		}
		if !feasible || len(plan) == 0 {
			continue
		}
		// Apply the plan: replace y with the target in each VIP's list.
		for _, m := range plan {
			insts := s.a.ByVIP[m.v.ID]
			for i, inst := range insts {
				if inst == y {
					insts[i] = m.to
					break
				}
			}
			s.traffic[m.to] += m.v.Share()
			s.rls[m.to] += m.v.Rules
			s.traffic[y] -= m.v.Share()
			s.rls[y] -= m.v.Rules
			if p.TransientCheck && p.Old != nil && !p.Old.Has(m.v.ID, m.to) {
				s.transient[m.to] += m.v.Share()
			}
			if p.Old != nil && p.Old.Has(m.v.ID, y) {
				s.migrated += p.oldConnsFor(m.v, y)
			}
		}
		s.open[y] = false
		s.openCount--
		perInst = s.a.PerInstanceVIPs()
	}
}

// SolveExhaustive finds a provably minimal assignment by branch and
// bound. Only usable for tiny instances (it explores the full placement
// tree); tests use it to measure the greedy solver's optimality gap.
func SolveExhaustive(p *Problem) (*Assignment, error) {
	best := (*Assignment)(nil)
	bestUsed := p.MaxInst + 1

	var rec func(vipIdx int, s *solverState)
	rec = func(vipIdx int, s *solverState) {
		if s.openCount >= bestUsed {
			return // bound
		}
		if vipIdx == len(p.VIPs) {
			if Verify(p, s.a) == nil && s.openCount < bestUsed {
				best = s.a.Clone()
				bestUsed = s.openCount
			}
			return
		}
		v := &p.VIPs[vipIdx]
		// Enumerate instance subsets of size n_v via recursion.
		var choose func(start, need int)
		choose = func(start, need int) {
			if need == 0 {
				rec(vipIdx+1, s)
				return
			}
			for y := start; y <= p.MaxInst-need; y++ {
				if !s.fits(v, y) {
					continue
				}
				wasOpen := s.open[y]
				s.place(v, y)
				choose(y+1, need-1)
				// Undo.
				insts := s.a.ByVIP[v.ID]
				s.a.ByVIP[v.ID] = insts[:len(insts)-1]
				s.traffic[y] -= v.Share()
				s.rls[y] -= v.Rules
				if p.TransientCheck && p.Old != nil && !p.Old.Has(v.ID, y) {
					s.transient[y] -= v.Share()
				}
				if !wasOpen {
					s.open[y] = false
					s.openCount--
				}
			}
		}
		choose(0, v.Replicas)
	}
	rec(0, newSolverState(p))
	if best == nil {
		return nil, ErrInfeasible
	}
	return best, nil
}
