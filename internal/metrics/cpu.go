package metrics

import (
	"sort"
	"time"
)

// CPUMeter models the CPU of one simulated machine. Components charge it
// a virtual execution cost per operation (e.g. "processing one packet
// costs 20µs of one core"); utilization over a window is busy-time
// divided by window × cores. This reproduces the paper's observations
// that a Yoda instance saturates around 12K req/s on an 8-core VM while
// HAProxy runs at roughly half the utilization, without depending on the
// host machine the simulation runs on.
type CPUMeter struct {
	Cores int

	busy time.Duration // total busy core-time charged
	// chunks is the per-charge log for windowed queries, stored as
	// fixed-capacity chunks so an append never copies earlier entries:
	// a meter charged per packet logs millions of events, and a single
	// flat slice spends more time in growslice memmoves than in the
	// dataplane it is metering. Only the last chunk grows; entries stay
	// in charge (time) order across chunks.
	chunks [][]busyEvent
}

type busyEvent struct {
	at   time.Duration
	cost time.Duration
}

// cpuChunk is the per-chunk entry capacity (1 MiB of log per chunk).
const cpuChunk = 1 << 16

// NewCPUMeter creates a meter for a machine with the given core count.
func NewCPUMeter(cores int) *CPUMeter {
	if cores <= 0 {
		cores = 1
	}
	return &CPUMeter{Cores: cores}
}

// Charge records cost core-time spent at virtual time now.
func (c *CPUMeter) Charge(now, cost time.Duration) {
	if cost <= 0 {
		return
	}
	c.busy += cost
	last := len(c.chunks) - 1
	if last < 0 || len(c.chunks[last]) == cpuChunk {
		c.chunks = append(c.chunks, make([]busyEvent, 0, cpuChunk))
		last++
	}
	c.chunks[last] = append(c.chunks[last], busyEvent{at: now, cost: cost})
}

// BusyTotal returns the total core-time charged so far.
func (c *CPUMeter) BusyTotal() time.Duration { return c.busy }

// Utilization returns average utilization in [0,1] over the window
// [from, to). Values above 1 indicate the machine is oversubscribed
// (offered load beyond capacity); callers may clamp for display.
func (c *CPUMeter) Utilization(from, to time.Duration) float64 {
	if to <= from {
		return 0
	}
	// The log is append-only in time order; binary-search the window
	// within each chunk, skipping chunks entirely outside it. Summing
	// per chunk visits exactly the entries a flat slice would have.
	var busy time.Duration
	for _, ch := range c.chunks {
		if len(ch) == 0 || ch[len(ch)-1].at < from {
			continue
		}
		if ch[0].at >= to {
			break
		}
		lo := sort.Search(len(ch), func(i int) bool { return ch[i].at >= from })
		hi := sort.Search(len(ch), func(i int) bool { return ch[i].at >= to })
		for _, ev := range ch[lo:hi] {
			busy += ev.cost
		}
	}
	return float64(busy) / (float64(to-from) * float64(c.Cores))
}

// UtilizationClamped returns Utilization clamped to [0,1].
func (c *CPUMeter) UtilizationClamped(from, to time.Duration) float64 {
	u := c.Utilization(from, to)
	if u > 1 {
		return 1
	}
	if u < 0 {
		return 0
	}
	return u
}

// Reset discards all recorded charges.
func (c *CPUMeter) Reset() {
	c.busy = 0
	if len(c.chunks) > 0 {
		c.chunks = c.chunks[:1]
		c.chunks[0] = c.chunks[0][:0]
	}
}

// RateSeries counts events into fixed-width time buckets, producing the
// req/s-over-time series of Figures 13 and 14.
type RateSeries struct {
	Bucket time.Duration
	counts map[int]float64
}

// NewRateSeries creates a series with the given bucket width.
func NewRateSeries(bucket time.Duration) *RateSeries {
	if bucket <= 0 {
		bucket = time.Second
	}
	return &RateSeries{Bucket: bucket, counts: make(map[int]float64)}
}

// Add records weight at virtual time now.
func (r *RateSeries) Add(now time.Duration, weight float64) {
	r.counts[int(now/r.Bucket)] += weight
}

// Rate returns events/second in the bucket containing t.
func (r *RateSeries) Rate(t time.Duration) float64 {
	return r.counts[int(t/r.Bucket)] / r.Bucket.Seconds()
}

// Series returns (bucket start, events/sec) points in time order covering
// [0, end).
func (r *RateSeries) Series(end time.Duration) []RatePoint {
	n := int(end / r.Bucket)
	pts := make([]RatePoint, 0, n)
	for i := 0; i < n; i++ {
		pts = append(pts, RatePoint{
			At:   time.Duration(i) * r.Bucket,
			Rate: r.counts[i] / r.Bucket.Seconds(),
		})
	}
	return pts
}

// RatePoint is one bucket of a RateSeries.
type RatePoint struct {
	At   time.Duration
	Rate float64
}
