package metrics

import (
	"sort"
	"time"
)

// CPUMeter models the CPU of one simulated machine. Components charge it
// a virtual execution cost per operation (e.g. "processing one packet
// costs 20µs of one core"); utilization over a window is busy-time
// divided by window × cores. This reproduces the paper's observations
// that a Yoda instance saturates around 12K req/s on an 8-core VM while
// HAProxy runs at roughly half the utilization, without depending on the
// host machine the simulation runs on.
type CPUMeter struct {
	Cores int

	busy       time.Duration // total busy core-time charged
	busyEvents []busyEvent   // per-charge log for windowed queries
}

type busyEvent struct {
	at   time.Duration
	cost time.Duration
}

// NewCPUMeter creates a meter for a machine with the given core count.
func NewCPUMeter(cores int) *CPUMeter {
	if cores <= 0 {
		cores = 1
	}
	return &CPUMeter{Cores: cores}
}

// Charge records cost core-time spent at virtual time now.
func (c *CPUMeter) Charge(now, cost time.Duration) {
	if cost <= 0 {
		return
	}
	c.busy += cost
	c.busyEvents = append(c.busyEvents, busyEvent{at: now, cost: cost})
}

// BusyTotal returns the total core-time charged so far.
func (c *CPUMeter) BusyTotal() time.Duration { return c.busy }

// Utilization returns average utilization in [0,1] over the window
// [from, to). Values above 1 indicate the machine is oversubscribed
// (offered load beyond capacity); callers may clamp for display.
func (c *CPUMeter) Utilization(from, to time.Duration) float64 {
	if to <= from {
		return 0
	}
	// busyEvents is append-only in time order; binary-search the window.
	lo := sort.Search(len(c.busyEvents), func(i int) bool { return c.busyEvents[i].at >= from })
	hi := sort.Search(len(c.busyEvents), func(i int) bool { return c.busyEvents[i].at >= to })
	var busy time.Duration
	for _, ev := range c.busyEvents[lo:hi] {
		busy += ev.cost
	}
	return float64(busy) / (float64(to-from) * float64(c.Cores))
}

// UtilizationClamped returns Utilization clamped to [0,1].
func (c *CPUMeter) UtilizationClamped(from, to time.Duration) float64 {
	u := c.Utilization(from, to)
	if u > 1 {
		return 1
	}
	if u < 0 {
		return 0
	}
	return u
}

// Reset discards all recorded charges.
func (c *CPUMeter) Reset() {
	c.busy = 0
	c.busyEvents = c.busyEvents[:0]
}

// RateSeries counts events into fixed-width time buckets, producing the
// req/s-over-time series of Figures 13 and 14.
type RateSeries struct {
	Bucket time.Duration
	counts map[int]float64
}

// NewRateSeries creates a series with the given bucket width.
func NewRateSeries(bucket time.Duration) *RateSeries {
	if bucket <= 0 {
		bucket = time.Second
	}
	return &RateSeries{Bucket: bucket, counts: make(map[int]float64)}
}

// Add records weight at virtual time now.
func (r *RateSeries) Add(now time.Duration, weight float64) {
	r.counts[int(now/r.Bucket)] += weight
}

// Rate returns events/second in the bucket containing t.
func (r *RateSeries) Rate(t time.Duration) float64 {
	return r.counts[int(t/r.Bucket)] / r.Bucket.Seconds()
}

// Series returns (bucket start, events/sec) points in time order covering
// [0, end).
func (r *RateSeries) Series(end time.Duration) []RatePoint {
	n := int(end / r.Bucket)
	pts := make([]RatePoint, 0, n)
	for i := 0; i < n; i++ {
		pts = append(pts, RatePoint{
			At:   time.Duration(i) * r.Bucket,
			Rate: r.counts[i] / r.Bucket.Seconds(),
		})
	}
	return pts
}

// RatePoint is one bucket of a RateSeries.
type RatePoint struct {
	At   time.Duration
	Rate float64
}
