package metrics

import (
	"fmt"
	"math/bits"
)

// lenHistBuckets: exact counts for lengths 1..8, then power-of-two
// ranges 9-16, 17-32, ... 513-1024, and a final overflow bucket. Train
// lengths are capped well below 1024 by the scheduler, so the overflow
// bucket stays empty in practice but keeps Observe total.
const lenHistBuckets = 16

// LenHist is a bounded counting histogram for small positive lengths —
// packet-train and batch-run sizes on the dispatch hot path. Unlike
// Histogram it never stores samples: Observe is two array increments,
// the struct is a fixed 160 bytes and embeds by value, and shard
// copies Merge without allocation.
type LenHist struct {
	counts [lenHistBuckets]uint64
	n      uint64 // observations
	sum    uint64 // sum of observed lengths
	max    uint64
}

func lenBucket(n uint64) int {
	if n <= 8 {
		return int(n - 1)
	}
	// 9-16 → 8, 17-32 → 9, ..., 513-1024 → 14, >1024 → 15.
	b := bits.Len64(n-1) + 4 // 9..16 → Len64(8..15)=4 → 8
	if b >= lenHistBuckets {
		return lenHistBuckets - 1
	}
	return b
}

// Observe records one length. Non-positive lengths are ignored.
func (h *LenHist) Observe(n int) {
	if n <= 0 {
		return
	}
	u := uint64(n)
	h.counts[lenBucket(u)]++
	h.n++
	h.sum += u
	if u > h.max {
		h.max = u
	}
}

// Count returns the number of observations.
func (h *LenHist) Count() uint64 { return h.n }

// Sum returns the sum of all observed lengths.
func (h *LenHist) Sum() uint64 { return h.sum }

// Max returns the largest observed length (0 if none).
func (h *LenHist) Max() uint64 { return h.max }

// Mean returns the average observed length (0 if none).
func (h *LenHist) Mean() float64 {
	if h.n == 0 {
		return 0
	}
	return float64(h.sum) / float64(h.n)
}

// AtLeast returns how many observations were >= n. Exact for n <= 9
// (buckets 1..8 hold a single length each); for larger n it counts from
// the start of n's bucket, so it can overstate by the observations in
// [bucket start, n). The batch-hit ratio uses AtLeast(2), which is
// exact.
func (h *LenHist) AtLeast(n int) uint64 {
	if n <= 0 {
		return h.n
	}
	var total uint64
	for b := lenBucket(uint64(n)); b < lenHistBuckets; b++ {
		total += h.counts[b]
	}
	return total
}

// Merge folds o into h (for aggregating per-shard copies).
func (h *LenHist) Merge(o *LenHist) {
	for i := range h.counts {
		h.counts[i] += o.counts[i]
	}
	h.n += o.n
	h.sum += o.sum
	if o.max > h.max {
		h.max = o.max
	}
}

// String renders the summary stats, not the buckets: "n=12 mean=3.4 max=64".
func (h *LenHist) String() string {
	return fmt.Sprintf("n=%d mean=%.1f max=%d", h.n, h.Mean(), h.max)
}
