// Package metrics provides the measurement primitives used throughout the
// Yoda reproduction: duration/value histograms with percentile queries,
// CDF extraction for the paper's figures, time-bucketed rate series, and
// a virtual-CPU accounting model for simulated machines.
package metrics

import (
	"fmt"
	"math"
	"sort"
	"time"
)

// Histogram accumulates float64 samples and answers quantile queries.
// It keeps every sample; the experiments in this repository collect at
// most a few hundred thousand points, so exact quantiles are affordable
// and avoid binning artifacts in the reproduced figures.
type Histogram struct {
	samples []float64
	sorted  bool
	sum     float64
}

// NewHistogram returns an empty histogram.
func NewHistogram() *Histogram { return &Histogram{} }

// Add records one sample.
func (h *Histogram) Add(v float64) {
	h.samples = append(h.samples, v)
	h.sorted = false
	h.sum += v
}

// Count returns the number of recorded samples.
func (h *Histogram) Count() int { return len(h.samples) }

// Sum returns the sum of all samples.
func (h *Histogram) Sum() float64 { return h.sum }

// Mean returns the arithmetic mean, or 0 for an empty histogram.
func (h *Histogram) Mean() float64 {
	if len(h.samples) == 0 {
		return 0
	}
	return h.sum / float64(len(h.samples))
}

func (h *Histogram) sortSamples() {
	if !h.sorted {
		sort.Float64s(h.samples)
		h.sorted = true
	}
}

// Quantile returns the q-th quantile (0 ≤ q ≤ 1) using linear
// interpolation between order statistics. It returns 0 for an empty
// histogram.
func (h *Histogram) Quantile(q float64) float64 {
	if len(h.samples) == 0 {
		return 0
	}
	h.sortSamples()
	if q <= 0 {
		return h.samples[0]
	}
	if q >= 1 {
		return h.samples[len(h.samples)-1]
	}
	pos := q * float64(len(h.samples)-1)
	lo := int(math.Floor(pos))
	hi := int(math.Ceil(pos))
	if lo == hi {
		return h.samples[lo]
	}
	frac := pos - float64(lo)
	return h.samples[lo]*(1-frac) + h.samples[hi]*frac
}

// Median returns the 50th percentile.
func (h *Histogram) Median() float64 { return h.Quantile(0.5) }

// P90 returns the 90th percentile.
func (h *Histogram) P90() float64 { return h.Quantile(0.9) }

// P99 returns the 99th percentile.
func (h *Histogram) P99() float64 { return h.Quantile(0.99) }

// Min returns the smallest sample, or 0 if empty.
func (h *Histogram) Min() float64 {
	if len(h.samples) == 0 {
		return 0
	}
	h.sortSamples()
	return h.samples[0]
}

// Max returns the largest sample, or 0 if empty.
func (h *Histogram) Max() float64 {
	if len(h.samples) == 0 {
		return 0
	}
	h.sortSamples()
	return h.samples[len(h.samples)-1]
}

// CDF returns (value, cumulative fraction) pairs at each distinct sample,
// suitable for plotting the paper's CDF figures.
func (h *Histogram) CDF() []CDFPoint {
	if len(h.samples) == 0 {
		return nil
	}
	h.sortSamples()
	n := float64(len(h.samples))
	var pts []CDFPoint
	for i, v := range h.samples {
		frac := float64(i+1) / n
		if len(pts) > 0 && pts[len(pts)-1].Value == v {
			pts[len(pts)-1].Fraction = frac
			continue
		}
		pts = append(pts, CDFPoint{Value: v, Fraction: frac})
	}
	return pts
}

// FractionBelow returns the fraction of samples ≤ v.
func (h *Histogram) FractionBelow(v float64) float64 {
	if len(h.samples) == 0 {
		return 0
	}
	h.sortSamples()
	idx := sort.SearchFloat64s(h.samples, v)
	// Include samples equal to v.
	for idx < len(h.samples) && h.samples[idx] == v {
		idx++
	}
	return float64(idx) / float64(len(h.samples))
}

// Merge adds every sample of o into h.
func (h *Histogram) Merge(o *Histogram) {
	for _, v := range o.samples {
		h.Add(v)
	}
}

// CDFPoint is one point of an empirical CDF.
type CDFPoint struct {
	Value    float64
	Fraction float64
}

// DurationHistogram wraps Histogram with time.Duration samples, the common
// case for latency measurements.
type DurationHistogram struct {
	h Histogram
}

// NewDurationHistogram returns an empty duration histogram.
func NewDurationHistogram() *DurationHistogram { return &DurationHistogram{} }

// Add records one latency sample.
func (d *DurationHistogram) Add(v time.Duration) { d.h.Add(float64(v)) }

// Count returns the number of samples.
func (d *DurationHistogram) Count() int { return d.h.Count() }

// Mean returns the mean duration.
func (d *DurationHistogram) Mean() time.Duration { return time.Duration(d.h.Mean()) }

// Quantile returns the q-th quantile duration.
func (d *DurationHistogram) Quantile(q float64) time.Duration {
	return time.Duration(d.h.Quantile(q))
}

// Median returns the median duration.
func (d *DurationHistogram) Median() time.Duration { return d.Quantile(0.5) }

// P90 returns the 90th-percentile duration.
func (d *DurationHistogram) P90() time.Duration { return d.Quantile(0.9) }

// Max returns the largest sample.
func (d *DurationHistogram) Max() time.Duration { return time.Duration(d.h.Max()) }

// Min returns the smallest sample.
func (d *DurationHistogram) Min() time.Duration { return time.Duration(d.h.Min()) }

// FractionBelow returns the fraction of samples ≤ v.
func (d *DurationHistogram) FractionBelow(v time.Duration) float64 {
	return d.h.FractionBelow(float64(v))
}

// Merge adds every sample of o into d.
func (d *DurationHistogram) Merge(o *DurationHistogram) { d.h.Merge(&o.h) }

// CDF returns the empirical CDF with durations as values.
func (d *DurationHistogram) CDF() []DurationCDFPoint {
	raw := d.h.CDF()
	out := make([]DurationCDFPoint, len(raw))
	for i, p := range raw {
		out[i] = DurationCDFPoint{Value: time.Duration(p.Value), Fraction: p.Fraction}
	}
	return out
}

// DurationCDFPoint is one point of an empirical latency CDF.
type DurationCDFPoint struct {
	Value    time.Duration
	Fraction float64
}

func (p DurationCDFPoint) String() string {
	return fmt.Sprintf("(%v, %.3f)", p.Value, p.Fraction)
}
