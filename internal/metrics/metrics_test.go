package metrics

import (
	"math"
	"math/rand"
	"sort"
	"testing"
	"testing/quick"
	"time"
)

func TestHistogramEmpty(t *testing.T) {
	h := NewHistogram()
	if h.Count() != 0 || h.Mean() != 0 || h.Quantile(0.5) != 0 || h.Min() != 0 || h.Max() != 0 {
		t.Fatal("empty histogram should return zeros")
	}
	if h.CDF() != nil {
		t.Fatal("empty CDF should be nil")
	}
}

func TestHistogramBasicStats(t *testing.T) {
	h := NewHistogram()
	for _, v := range []float64{1, 2, 3, 4, 5} {
		h.Add(v)
	}
	if h.Count() != 5 {
		t.Errorf("Count = %d", h.Count())
	}
	if h.Mean() != 3 {
		t.Errorf("Mean = %v", h.Mean())
	}
	if h.Median() != 3 {
		t.Errorf("Median = %v", h.Median())
	}
	if h.Min() != 1 || h.Max() != 5 {
		t.Errorf("Min/Max = %v/%v", h.Min(), h.Max())
	}
	if h.Sum() != 15 {
		t.Errorf("Sum = %v", h.Sum())
	}
}

func TestHistogramQuantileInterpolation(t *testing.T) {
	h := NewHistogram()
	h.Add(0)
	h.Add(10)
	if got := h.Quantile(0.5); got != 5 {
		t.Errorf("Quantile(0.5) = %v, want 5 (interpolated)", got)
	}
	if got := h.Quantile(0); got != 0 {
		t.Errorf("Quantile(0) = %v", got)
	}
	if got := h.Quantile(1); got != 10 {
		t.Errorf("Quantile(1) = %v", got)
	}
	if got := h.Quantile(-0.5); got != 0 {
		t.Errorf("Quantile(-0.5) = %v", got)
	}
	if got := h.Quantile(2); got != 10 {
		t.Errorf("Quantile(2) = %v", got)
	}
}

func TestHistogramQuantileMonotonic(t *testing.T) {
	f := func(vals []float64, qa, qb float64) bool {
		if len(vals) == 0 {
			return true
		}
		h := NewHistogram()
		for _, v := range vals {
			if math.IsNaN(v) || math.IsInf(v, 0) {
				return true
			}
			h.Add(v)
		}
		qa, qb = math.Abs(math.Mod(qa, 1)), math.Abs(math.Mod(qb, 1))
		if qa > qb {
			qa, qb = qb, qa
		}
		return h.Quantile(qa) <= h.Quantile(qb)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestHistogramQuantileWithinRange(t *testing.T) {
	f := func(vals []float64, q float64) bool {
		h := NewHistogram()
		var clean []float64
		for _, v := range vals {
			if math.IsNaN(v) || math.IsInf(v, 0) {
				continue
			}
			h.Add(v)
			clean = append(clean, v)
		}
		if len(clean) == 0 {
			return true
		}
		sort.Float64s(clean)
		got := h.Quantile(math.Abs(math.Mod(q, 1)))
		return got >= clean[0] && got <= clean[len(clean)-1]
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestCDF(t *testing.T) {
	h := NewHistogram()
	for _, v := range []float64{1, 1, 2, 3} {
		h.Add(v)
	}
	cdf := h.CDF()
	want := []CDFPoint{{1, 0.5}, {2, 0.75}, {3, 1.0}}
	if len(cdf) != len(want) {
		t.Fatalf("CDF = %v", cdf)
	}
	for i := range want {
		if cdf[i] != want[i] {
			t.Errorf("CDF[%d] = %v, want %v", i, cdf[i], want[i])
		}
	}
}

func TestFractionBelow(t *testing.T) {
	h := NewHistogram()
	for _, v := range []float64{1, 2, 3, 4} {
		h.Add(v)
	}
	cases := []struct {
		v    float64
		want float64
	}{
		{0, 0}, {1, 0.25}, {2.5, 0.5}, {4, 1}, {10, 1},
	}
	for _, c := range cases {
		if got := h.FractionBelow(c.v); got != c.want {
			t.Errorf("FractionBelow(%v) = %v, want %v", c.v, got, c.want)
		}
	}
}

func TestDurationHistogram(t *testing.T) {
	d := NewDurationHistogram()
	for i := 1; i <= 100; i++ {
		d.Add(time.Duration(i) * time.Millisecond)
	}
	if d.Count() != 100 {
		t.Errorf("Count = %d", d.Count())
	}
	if got := d.Median(); got < 50*time.Millisecond || got > 51*time.Millisecond {
		t.Errorf("Median = %v", got)
	}
	if got := d.P90(); got < 90*time.Millisecond || got > 91*time.Millisecond {
		t.Errorf("P90 = %v", got)
	}
	if d.Max() != 100*time.Millisecond || d.Min() != time.Millisecond {
		t.Errorf("Min/Max = %v/%v", d.Min(), d.Max())
	}
	if got := d.FractionBelow(25 * time.Millisecond); got != 0.25 {
		t.Errorf("FractionBelow(25ms) = %v", got)
	}
	cdf := d.CDF()
	if len(cdf) != 100 || cdf[99].Fraction != 1 {
		t.Errorf("CDF length %d, last %v", len(cdf), cdf[len(cdf)-1])
	}
}

func TestHistogramInterleavedAddQuery(t *testing.T) {
	// Adding after a quantile query must keep results correct (the sort
	// cache must invalidate).
	h := NewHistogram()
	h.Add(5)
	if h.Median() != 5 {
		t.Fatal("median of single sample")
	}
	h.Add(1)
	h.Add(9)
	if h.Median() != 5 {
		t.Fatalf("median after re-add = %v", h.Median())
	}
	if h.Min() != 1 || h.Max() != 9 {
		t.Fatalf("min/max after re-add = %v/%v", h.Min(), h.Max())
	}
}

func TestCPUMeterUtilization(t *testing.T) {
	c := NewCPUMeter(2)
	// Charge 1 second of core-time spread over a 1-second window on a
	// 2-core machine: 50% utilization.
	for i := 0; i < 10; i++ {
		c.Charge(time.Duration(i)*100*time.Millisecond, 100*time.Millisecond)
	}
	got := c.Utilization(0, time.Second)
	if math.Abs(got-0.5) > 1e-9 {
		t.Fatalf("Utilization = %v, want 0.5", got)
	}
	// Window with no charges.
	if u := c.Utilization(2*time.Second, 3*time.Second); u != 0 {
		t.Fatalf("idle window utilization = %v", u)
	}
	// Degenerate window.
	if u := c.Utilization(time.Second, time.Second); u != 0 {
		t.Fatalf("empty window utilization = %v", u)
	}
	if c.BusyTotal() != time.Second {
		t.Fatalf("BusyTotal = %v", c.BusyTotal())
	}
}

func TestCPUMeterOversubscribedAndClamp(t *testing.T) {
	c := NewCPUMeter(1)
	c.Charge(0, 2*time.Second) // 2s of work charged at t=0
	if u := c.Utilization(0, time.Second); u != 2 {
		t.Fatalf("oversubscribed utilization = %v, want 2", u)
	}
	if u := c.UtilizationClamped(0, time.Second); u != 1 {
		t.Fatalf("clamped = %v, want 1", u)
	}
}

func TestCPUMeterWindowing(t *testing.T) {
	c := NewCPUMeter(1)
	c.Charge(100*time.Millisecond, 10*time.Millisecond)
	c.Charge(500*time.Millisecond, 10*time.Millisecond)
	c.Charge(900*time.Millisecond, 10*time.Millisecond)
	// Window [400ms, 600ms) should see only the middle charge.
	got := c.Utilization(400*time.Millisecond, 600*time.Millisecond)
	want := 10.0 / 200.0
	if math.Abs(got-want) > 1e-9 {
		t.Fatalf("windowed utilization = %v, want %v", got, want)
	}
}

func TestCPUMeterReset(t *testing.T) {
	c := NewCPUMeter(1)
	c.Charge(0, time.Second)
	c.Reset()
	if c.BusyTotal() != 0 || c.Utilization(0, time.Second) != 0 {
		t.Fatal("reset did not clear meter")
	}
}

func TestCPUMeterIgnoresNonPositive(t *testing.T) {
	c := NewCPUMeter(1)
	c.Charge(0, 0)
	c.Charge(0, -time.Second)
	if c.BusyTotal() != 0 {
		t.Fatal("non-positive charges should be ignored")
	}
}

func TestRateSeries(t *testing.T) {
	r := NewRateSeries(time.Second)
	for i := 0; i < 100; i++ {
		r.Add(500*time.Millisecond, 1) // all in bucket 0
	}
	for i := 0; i < 50; i++ {
		r.Add(1500*time.Millisecond, 1) // bucket 1
	}
	if got := r.Rate(0); got != 100 {
		t.Errorf("Rate(0) = %v", got)
	}
	if got := r.Rate(1200 * time.Millisecond); got != 50 {
		t.Errorf("Rate(1.2s) = %v", got)
	}
	pts := r.Series(3 * time.Second)
	if len(pts) != 3 {
		t.Fatalf("Series length = %d", len(pts))
	}
	if pts[0].Rate != 100 || pts[1].Rate != 50 || pts[2].Rate != 0 {
		t.Fatalf("Series = %v", pts)
	}
}

func TestRateSeriesWeighted(t *testing.T) {
	r := NewRateSeries(time.Second)
	r.Add(0, 1024) // e.g. bytes
	if got := r.Rate(0); got != 1024 {
		t.Errorf("weighted Rate = %v", got)
	}
}

func TestHistogramLargeRandom(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	h := NewHistogram()
	vals := make([]float64, 10000)
	for i := range vals {
		vals[i] = rng.NormFloat64()*10 + 100
		h.Add(vals[i])
	}
	sort.Float64s(vals)
	// Exact quantiles should match direct computation at the order stats.
	for _, q := range []float64{0.1, 0.25, 0.5, 0.75, 0.9, 0.99} {
		pos := q * float64(len(vals)-1)
		lo, hi := int(math.Floor(pos)), int(math.Ceil(pos))
		frac := pos - float64(lo)
		want := vals[lo]*(1-frac) + vals[hi]*frac
		if got := h.Quantile(q); math.Abs(got-want) > 1e-9 {
			t.Errorf("Quantile(%v) = %v, want %v", q, got, want)
		}
	}
}

func TestLenHistBucketsAndStats(t *testing.T) {
	var h LenHist
	if h.Count() != 0 || h.Mean() != 0 || h.Max() != 0 {
		t.Fatalf("empty hist: n=%d mean=%v max=%d", h.Count(), h.Mean(), h.Max())
	}
	h.Observe(0)  // ignored
	h.Observe(-3) // ignored
	if h.Count() != 0 {
		t.Fatalf("non-positive lengths counted: n=%d", h.Count())
	}
	for i := 1; i <= 8; i++ {
		h.Observe(i)
	}
	h.Observe(9)
	h.Observe(16)
	h.Observe(1024)
	h.Observe(5000) // overflow bucket
	if h.Count() != 12 {
		t.Fatalf("Count = %d, want 12", h.Count())
	}
	if want := uint64(1 + 2 + 3 + 4 + 5 + 6 + 7 + 8 + 9 + 16 + 1024 + 5000); h.Sum() != want {
		t.Fatalf("Sum = %d, want %d", h.Sum(), want)
	}
	if h.Max() != 5000 {
		t.Fatalf("Max = %d, want 5000", h.Max())
	}
	// AtLeast is exact through n=9: buckets 1..8 are singletons.
	if got := h.AtLeast(2); got != 11 {
		t.Fatalf("AtLeast(2) = %d, want 11", got)
	}
	if got := h.AtLeast(9); got != 4 {
		t.Fatalf("AtLeast(9) = %d, want 4", got)
	}
	if got := h.AtLeast(0); got != h.Count() {
		t.Fatalf("AtLeast(0) = %d, want Count %d", got, h.Count())
	}
	// The documented overcount above n=9: AtLeast(16) counts from the
	// start of the 9-16 bucket, so the observation of 9 is included.
	if got := h.AtLeast(16); got != 4 {
		t.Fatalf("AtLeast(16) = %d, want 4 (bucket-granular above 9)", got)
	}
	if got := h.AtLeast(1025); got != 1 {
		t.Fatalf("AtLeast(1025) = %d, want 1", got)
	}
}

func TestLenHistMerge(t *testing.T) {
	var a, b LenHist
	a.Observe(1)
	a.Observe(4)
	b.Observe(4)
	b.Observe(300)
	a.Merge(&b)
	if a.Count() != 4 || a.Sum() != 309 || a.Max() != 300 {
		t.Fatalf("merged: n=%d sum=%d max=%d", a.Count(), a.Sum(), a.Max())
	}
	if got := a.AtLeast(2); got != 3 {
		t.Fatalf("merged AtLeast(2) = %d, want 3", got)
	}
	if got, want := a.String(), "n=4 mean=77.2 max=300"; got != want {
		t.Fatalf("String() = %q, want %q", got, want)
	}
}
