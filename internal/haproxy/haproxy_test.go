package haproxy_test

import (
	"bytes"
	"testing"
	"time"

	"repro/internal/cluster"
	"repro/internal/haproxy"
	"repro/internal/httpsim"
	"repro/internal/netsim"
)

type bed struct {
	c     *cluster.Cluster
	vip   netsim.IP
	vipHP netsim.HostPort
	objs  map[string][]byte
}

func newBed(seed int64, nProxies int) *bed {
	c := cluster.New(seed)
	objs := map[string][]byte{
		"/10k":  bytes.Repeat([]byte("x"), 10*1024),
		"/200k": bytes.Repeat([]byte("y"), 200*1024),
	}
	c.AddBackend("srv-1", objs, httpsim.DefaultServerConfig())
	c.AddBackend("srv-2", objs, httpsim.DefaultServerConfig())
	c.AddHAProxyN(nProxies, haproxy.DefaultConfig())
	vip := c.AddVIP("svc")
	c.InstallPolicyHAProxy(vip, c.SimpleSplitRules("srv-1", "srv-2"), nil)
	return &bed{c: c, vip: vip, vipHP: netsim.HostPort{IP: vip, Port: 80}, objs: objs}
}

func TestProxyEndToEnd(t *testing.T) {
	b := newBed(1, 2)
	cl := b.c.NewClient(httpsim.DefaultClientConfig())
	var res *httpsim.FetchResult
	cl.Get(b.vipHP, "/10k", func(r *httpsim.FetchResult) { res = r })
	b.c.Net.RunFor(5 * time.Second)
	if res == nil || res.Err != nil {
		t.Fatalf("res = %+v", res)
	}
	if !bytes.Equal(res.Resp.Body, b.objs["/10k"]) {
		t.Fatal("body corrupted")
	}
	// HAProxy is slightly faster than Yoda (no TCPStore writes).
	if res.Elapsed() > 250*time.Millisecond {
		t.Fatalf("elapsed = %v", res.Elapsed())
	}
}

func TestProxySpreadsConnections(t *testing.T) {
	b := newBed(2, 2)
	done := 0
	for i := 0; i < 40; i++ {
		cl := b.c.NewClient(httpsim.DefaultClientConfig())
		cl.Get(b.vipHP, "/10k", func(r *httpsim.FetchResult) {
			if r.Err == nil {
				done++
			}
		})
	}
	b.c.Net.RunFor(30 * time.Second)
	if done != 40 {
		t.Fatalf("done = %d", done)
	}
	for i, p := range b.c.HAProxy {
		if p.Connections == 0 {
			t.Errorf("proxy %d got no connections", i)
		}
	}
}

func TestProxyFailureBreaksFlows(t *testing.T) {
	// The paper's core claim (§2.3, Table 1): killing a proxy instance
	// breaks every flow it carries; the client stalls until its HTTP
	// timeout because nobody can reconstruct the lost TCP state.
	b := newBed(3, 2)
	cfg := httpsim.DefaultClientConfig()
	cfg.Timeout = 10 * time.Second
	cl := b.c.NewClient(cfg)
	var res *httpsim.FetchResult
	cl.Get(b.vipHP, "/200k", func(r *httpsim.FetchResult) { res = r })
	b.c.Net.RunFor(200 * time.Millisecond) // mid-transfer
	victim := -1
	for i, p := range b.c.HAProxy {
		if p.Active > 0 {
			victim = i
			p.Fail()
			break
		}
	}
	if victim < 0 {
		t.Fatal("no active proxy at kill time")
	}
	// Even with prompt L4 withdrawal, the flow cannot be saved.
	b.c.Net.Schedule(600*time.Millisecond, func() {
		b.c.L4.RemoveInstance(b.c.HAProxy[victim].IP())
	})
	b.c.Net.RunFor(30 * time.Second)
	if res == nil {
		t.Fatal("fetch never resolved")
	}
	if res.Err == nil {
		t.Fatalf("flow survived a proxy failure — baseline should break: %+v", res.Resp)
	}
	if !res.TimedOut && res.Err != httpsim.ErrConnReset {
		t.Fatalf("unexpected error mode: %v", res.Err)
	}
}

func TestProxyFailureWithRetryRecoversSlowly(t *testing.T) {
	// HAProxy-retry from §7.2: with browser retry=1 the object is
	// eventually fetched, but only after the full HTTP timeout.
	b := newBed(4, 2)
	cfg := httpsim.DefaultClientConfig()
	cfg.Timeout = 10 * time.Second
	cfg.Retries = 1
	cl := b.c.NewClient(cfg)
	var res *httpsim.FetchResult
	cl.Get(b.vipHP, "/200k", func(r *httpsim.FetchResult) { res = r })
	b.c.Net.RunFor(200 * time.Millisecond)
	for i, p := range b.c.HAProxy {
		if p.Active > 0 {
			p.Fail()
			// Monitor detection delay before the L4 mapping is fixed, as
			// in the paper: by then the client is silently stalled waiting
			// for response bytes, so it only notices at its HTTP timeout.
			i := i
			b.c.Net.Schedule(600*time.Millisecond, func() {
				b.c.L4.RemoveInstance(b.c.HAProxy[i].IP())
			})
			break
		}
	}
	b.c.Net.RunFor(60 * time.Second)
	if res == nil {
		t.Fatal("fetch never resolved")
	}
	if res.Err != nil {
		t.Fatalf("retry should eventually succeed: %v", res.Err)
	}
	if res.Attempts != 2 || !res.TimedOut {
		t.Fatalf("attempts=%d timedout=%v, want retry after timeout", res.Attempts, res.TimedOut)
	}
	if res.Elapsed() < 10*time.Second {
		t.Fatalf("elapsed = %v, should include the 10s timeout", res.Elapsed())
	}
}

func TestProxyBackendFailure(t *testing.T) {
	b := newBed(5, 1)
	// Kill one backend; the health view steers traffic to the other.
	b.c.Backends["srv-1"].Server.Host().Detach()
	b.c.Health.Dead["srv-1"] = true
	done := 0
	for i := 0; i < 10; i++ {
		cl := b.c.NewClient(httpsim.DefaultClientConfig())
		cl.Get(b.vipHP, "/10k", func(r *httpsim.FetchResult) {
			if r.Err == nil {
				done++
			}
		})
	}
	b.c.Net.RunFor(20 * time.Second)
	if done != 10 {
		t.Fatalf("done = %d", done)
	}
	if b.c.Backends["srv-2"].Server.Requests != 10 {
		t.Fatalf("live backend served %d", b.c.Backends["srv-2"].Server.Requests)
	}
}
