// Package haproxy implements the baseline the paper compares against: a
// proxy-style L7 load balancer that terminates a real TCP connection with
// the client, selects a backend from the HTTP header, opens a second TCP
// connection to the backend (from its own instance address, as HAProxy
// does), and splices bytes between the two.
//
// All connection state lives in the instance's memory, so when the
// instance fails every flow it carried breaks — the single point of
// failure that motivates Yoda (§2.3).
package haproxy

import (
	"math/rand"
	"time"

	"repro/internal/httpsim"
	"repro/internal/metrics"
	"repro/internal/netsim"
	"repro/internal/rules"
	"repro/internal/tcp"
)

// Config tunes an HAProxy-style instance.
type Config struct {
	Cores int
	// CPUConnPhase/CPUPerPacket mirror core.Config; HAProxy's in-kernel
	// splicing makes both roughly half of Yoda's user-space costs (§7.1
	// measures 46% vs 100% utilization at 12K req/s).
	CPUConnPhase  time.Duration
	CPUPerPacket  time.Duration
	LookupBase    time.Duration
	LookupPerRule time.Duration
	TCP           tcp.Config
}

// DefaultConfig returns costs calibrated against §7.1 (about half of
// Yoda's user-space packet driver).
func DefaultConfig() Config {
	return Config{
		Cores:         8,
		CPUConnPhase:  290 * time.Microsecond,
		CPUPerPacket:  14 * time.Microsecond,
		LookupBase:    3200 * time.Microsecond,
		LookupPerRule: 910 * time.Nanosecond,
		TCP:           tcp.DefaultConfig(),
	}
}

// Instance is one HAProxy-style proxy instance. It listens for VIP
// traffic forwarded by the L4 LB (the common public-cloud deployment the
// paper describes) and proxies each connection to a backend.
type Instance struct {
	host *netsim.Host
	net  *netsim.Network
	// rng is the owning shard's deterministic RNG handle (never reach
	// through Network.Rand on the request path).
	rng *rand.Rand
	cfg Config

	engines map[netsim.IP]*rules.Engine
	info    rules.BackendInfo
	lis     *tcp.Listener

	CPU *metrics.CPUMeter

	// Counters.
	Connections int
	Active      int
}

// proxyConn is the spliced pair of connections for one client flow.
type proxyConn struct {
	inst    *Instance
	client  *tcp.Conn
	server  *tcp.Conn
	reqBuf  []byte
	dialing bool
}

// NewInstance starts an HAProxy-style instance on host, accepting VIP
// traffic on the given port.
func NewInstance(host *netsim.Host, port uint16, cfg Config) *Instance {
	inst := &Instance{
		host:    host,
		net:     host.Network(),
		rng:     host.Network().Rand(),
		cfg:     cfg,
		engines: make(map[netsim.IP]*rules.Engine),
		CPU:     metrics.NewCPUMeter(cfg.Cores),
	}
	inst.lis = tcp.Listen(host, port, inst.accept, cfg.TCP)
	return inst
}

// Host returns the instance's host.
func (in *Instance) Host() *netsim.Host { return in.host }

// IP returns the instance's address.
func (in *Instance) IP() netsim.IP { return in.host.IP() }

// InstallRules installs or replaces the rule table for a VIP. Invalid
// tables (see rules.ValidateRules) are rejected, leaving any previously
// installed table serving.
func (in *Instance) InstallRules(vip netsim.IP, rs []rules.Rule) error {
	if e, ok := in.engines[vip]; ok {
		return e.Update(rs)
	}
	if err := rules.ValidateRules(rs); err != nil {
		return err
	}
	in.engines[vip] = rules.NewEngine(rs)
	return nil
}

// SetBackendInfo wires backend health into rule evaluation.
func (in *Instance) SetBackendInfo(info rules.BackendInfo) { in.info = info }

// Fail kills the instance: all local connection state is lost and, unlike
// Yoda, unrecoverable.
func (in *Instance) Fail() { in.host.Detach() }

func (in *Instance) accept(c *tcp.Conn) tcp.Callbacks {
	in.Connections++
	in.Active++
	in.CPU.Charge(in.net.Now(), in.cfg.CPUConnPhase)
	pc := &proxyConn{inst: in, client: c}
	return tcp.Callbacks{
		OnData:      pc.clientData,
		OnPeerClose: func(c *tcp.Conn) { pc.clientClosed() },
		OnClose:     func(c *tcp.Conn) { in.Active-- },
		OnFail:      func(c *tcp.Conn, err error) { pc.abort(); in.Active-- },
	}
}

func (pc *proxyConn) clientData(c *tcp.Conn, d []byte) {
	in := pc.inst
	in.CPU.Charge(in.net.Now(), in.cfg.CPUPerPacket)
	if pc.server != nil {
		pc.server.Write(d)
		return
	}
	pc.reqBuf = append(pc.reqBuf, d...)
	if pc.dialing {
		return
	}
	req, err := httpsim.ParseRequestHeader(pc.reqBuf)
	if err != nil {
		c.Write(httpsim.NewResponse(400, []byte("bad request")).Marshal())
		c.Close()
		return
	}
	if req == nil {
		return
	}
	vip := c.LocalAddr().IP
	engine, ok := in.engines[vip]
	if !ok {
		c.Write(httpsim.NewResponse(503, []byte("no rules for vip")).Marshal())
		c.Close()
		return
	}
	decision := engine.Select(req, in.rng.Float64(), in.info)
	in.CPU.Charge(in.net.Now(), time.Duration(decision.Scanned)*in.cfg.LookupPerRule)
	if !decision.OK {
		c.Write(httpsim.NewResponse(503, []byte("no rule matched")).Marshal())
		c.Close()
		return
	}
	pc.dialing = true
	lookup := in.cfg.LookupBase + time.Duration(decision.Scanned)*in.cfg.LookupPerRule
	in.net.Schedule(lookup, func() { pc.dial(decision.Backend.Addr) })
}

func (pc *proxyConn) dial(backend netsim.HostPort) {
	in := pc.inst
	pc.server = tcp.Dial(in.host, backend, tcp.Callbacks{
		OnEstablished: func(s *tcp.Conn) {
			s.Write(pc.reqBuf)
			pc.reqBuf = nil
			pc.dialing = false
		},
		OnData: func(s *tcp.Conn, d []byte) {
			in.CPU.Charge(in.net.Now(), in.cfg.CPUPerPacket)
			pc.client.Write(d)
		},
		OnPeerClose: func(s *tcp.Conn) {
			// Server finished: flush and close toward the client.
			pc.client.Close()
			s.Close()
		},
		OnFail: func(s *tcp.Conn, err error) {
			pc.client.Abort()
		},
	}, in.cfg.TCP)
}

func (pc *proxyConn) clientClosed() {
	pc.client.Close()
	if pc.server != nil {
		pc.server.Close()
	}
}

func (pc *proxyConn) abort() {
	if pc.server != nil {
		pc.server.Abort()
	}
}
