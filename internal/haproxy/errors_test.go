package haproxy_test

import (
	"testing"
	"time"

	"repro/internal/cluster"
	"repro/internal/haproxy"
	"repro/internal/httpsim"
	"repro/internal/netsim"
	"repro/internal/rules"
	"repro/internal/tcp"
)

// rawRequest drives a raw byte sequence at the proxy and returns the
// first HTTP response it produces.
func rawRequest(t *testing.T, c *cluster.Cluster, vip netsim.IP, wire []byte) *httpsim.Response {
	t.Helper()
	host := c.ClientHost()
	parser := &httpsim.ResponseParser{}
	var resp *httpsim.Response
	tcp.Dial(host, netsim.HostPort{IP: vip, Port: 80}, tcp.Callbacks{
		OnEstablished: func(conn *tcp.Conn) { conn.Write(wire) },
		OnData: func(conn *tcp.Conn, d []byte) {
			rs, err := parser.Feed(d)
			if err != nil {
				t.Errorf("client parse: %v", err)
				conn.Abort()
				return
			}
			if len(rs) > 0 {
				resp = rs[0]
				conn.Close()
			}
		},
	}, tcp.DefaultConfig())
	c.Net.RunFor(10 * time.Second)
	return resp
}

func TestProxyRejectsMalformedRequest(t *testing.T) {
	c := cluster.New(81)
	c.AddBackend("srv-1", map[string][]byte{"/": []byte("x")}, httpsim.DefaultServerConfig())
	c.AddHAProxyN(1, haproxy.DefaultConfig())
	vip := c.AddVIP("svc")
	c.InstallPolicyHAProxy(vip, c.SimpleSplitRules("srv-1"), nil)
	resp := rawRequest(t, c, vip, []byte("THIS IS NOT HTTP\r\n\r\n"))
	if resp == nil || resp.StatusCode != 400 {
		t.Fatalf("resp = %+v, want 400", resp)
	}
}

func TestProxyNoRulesForVIP(t *testing.T) {
	c := cluster.New(82)
	c.AddBackend("srv-1", map[string][]byte{"/": []byte("x")}, httpsim.DefaultServerConfig())
	inst := c.AddHAProxy(haproxy.DefaultConfig())
	vip := c.AddVIP("svc")
	// Map the VIP at L4 but never install rules on the proxy.
	c.L4.SetMappingNow(vip, []netsim.IP{inst.IP()})
	resp := rawRequest(t, c, vip, httpsim.NewRequest("/", "svc").Marshal())
	if resp == nil || resp.StatusCode != 503 {
		t.Fatalf("resp = %+v, want 503", resp)
	}
}

func TestProxyNoRuleMatches(t *testing.T) {
	c := cluster.New(83)
	c.AddBackend("srv-1", map[string][]byte{"/a.jpg": []byte("x")}, httpsim.DefaultServerConfig())
	c.AddHAProxyN(1, haproxy.DefaultConfig())
	vip := c.AddVIP("svc")
	only := []rules.Rule{{
		Name: "jpg", Priority: 1, Match: rules.Match{URLGlob: "*.jpg"},
		Action: rules.Action{Type: rules.ActionSplit,
			Split: []rules.WeightedBackend{{Backend: c.Backends["srv-1"].Rec, Weight: 1}}},
	}}
	c.InstallPolicyHAProxy(vip, only, nil)
	resp := rawRequest(t, c, vip, httpsim.NewRequest("/nope.html", "svc").Marshal())
	if resp == nil || resp.StatusCode != 503 {
		t.Fatalf("resp = %+v, want 503", resp)
	}
}

func TestProxyDeadBackendAbortsClient(t *testing.T) {
	c := cluster.New(84)
	b := c.AddBackend("srv-1", map[string][]byte{"/": []byte("x")}, httpsim.DefaultServerConfig())
	c.AddHAProxyN(1, haproxy.DefaultConfig())
	vip := c.AddVIP("svc")
	c.InstallPolicyHAProxy(vip, c.SimpleSplitRules("srv-1"), nil)
	b.Server.Host().Detach() // dead before any health mark: dial will time out

	host := c.ClientHost()
	var failErr error
	cfg := tcp.DefaultConfig()
	tcp.Dial(host, netsim.HostPort{IP: vip, Port: 80}, tcp.Callbacks{
		OnEstablished: func(conn *tcp.Conn) { conn.Write(httpsim.NewRequest("/", "svc").Marshal()) },
		OnFail:        func(conn *tcp.Conn, err error) { failErr = err },
	}, cfg)
	c.Net.RunFor(20 * time.Minute) // let the proxy's backend dial exhaust retries
	if failErr == nil {
		t.Fatal("client was never aborted after the backend dial failed")
	}
}
