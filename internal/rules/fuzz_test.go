package rules

import (
	"math/rand"
	"strings"
	"testing"

	"repro/internal/httpsim"
)

// FuzzSelectDifferential drives the compiled engine and the retained
// linear scan from fuzzer-chosen inputs: a seed picks a random rule
// table (through the same generator the differential test uses) and the
// raw strings shape the request directly, so the fuzzer can explore
// paths/hosts/cookies the hand-written corpora never contain. Any
// divergence in Decision — winner, OK, Scanned, or rule identity — is a
// crash.
func FuzzSelectDifferential(f *testing.F) {
	f.Add(int64(1), "/a.jpg", "svc", "GET", "session=u1", uint16(0))
	f.Add(int64(2), "/api/v1/users", "", "POST", "", uint16(7))
	f.Add(int64(3), "/exact/path", "tenant-a", "GET", "session=u1; theme=dark", uint16(12345))
	f.Add(int64(4), "", "other.com", "PUT", "a=b;;c==d;  session = u1", uint16(999))
	f.Add(int64(5), "/img/x.png", "svc", "HEAD", "session=", uint16(1))

	backends := diffBackends()
	f.Fuzz(func(t *testing.T, tableSeed int64, path, host, method, cookie string, rndBits uint16) {
		if strings.ContainsAny(path+host+method+cookie, "\r\n") {
			return // not representable in a parsed request
		}
		rng := rand.New(rand.NewSource(tableSeed))
		rs, e, tables, info := randomDiffTable(rng, backends)

		req := httpsim.NewRequest(path, "ignored")
		req.Method = method
		if host == "" {
			delete(req.Headers, "Host")
		} else {
			req.SetHeader("Host", host)
		}
		if cookie != "" {
			req.SetHeader("Cookie", cookie)
		}
		rnd := float64(rndBits) / (1 << 16) // uniform in [0,1)

		got := e.Select(req, rnd, info)
		lin := e.SelectLinear(req, rnd, info)
		if got.OK != lin.OK || got.Backend != lin.Backend || got.Scanned != lin.Scanned || got.Rule != lin.Rule {
			t.Fatalf("compiled vs linear diverged:\n rules=%v\n req=%q %q host=%q cookie=%q rnd=%v\n compiled=%+v\n linear=%+v",
				rs, method, path, host, cookie, rnd, got, lin)
		}
		// The oracle re-implements cookie lookup through the same request
		// accessor, so it also cross-checks the memoized cookie view.
		wantB, wantOK, wantScanned := referenceSelect(rs, tables, req, rnd, info)
		if got.OK != wantOK || got.Backend != wantB || got.Scanned != wantScanned {
			t.Fatalf("compiled vs oracle diverged:\n rules=%v\n req=%q %q host=%q cookie=%q rnd=%v\n compiled=(%v,%v,%d) oracle=(%v,%v,%d)",
				rs, method, path, host, cookie, rnd,
				got.Backend, got.OK, got.Scanned, wantB, wantOK, wantScanned)
		}
	})
}
