package rules

import (
	"fmt"
	"math/rand"
	"strings"
	"testing"
	"testing/quick"

	"repro/internal/httpsim"
	"repro/internal/netsim"
)

func be(name string, last byte) Backend {
	return Backend{Name: name, Addr: netsim.HostPort{IP: netsim.IPv4(10, 0, 2, last), Port: 80}}
}

var (
	d1 = be("D1", 1)
	d2 = be("D2", 2)
	d3 = be("D3", 3)
	d4 = be("D4", 4)
)

func req(path string) *httpsim.Request { return httpsim.NewRequest(path, "mysite.com") }

func TestGlob(t *testing.T) {
	cases := []struct {
		pat, s string
		want   bool
	}{
		{"*.jpg", "/images/cat.jpg", true},
		{"*.jpg", "/images/cat.jpeg", false},
		{"*", "", true},
		{"*", "anything", true},
		{"/news/*", "/news/2016/april", true},
		{"/news/*", "/sports/news", false},
		{"a?c", "abc", true},
		{"a?c", "ac", false},
		{"*x*y*", "axbyc", true},
		{"*x*y*", "aybxc", false},
		{"", "", true},
		{"", "a", false},
		{"abc", "abc", true},
		{"en-GB*", "en-GB,en;q=0.9", true},
	}
	for _, c := range cases {
		if got := Glob(c.pat, c.s); got != c.want {
			t.Errorf("Glob(%q,%q) = %v, want %v", c.pat, c.s, got, c.want)
		}
	}
}

func TestGlobProperties(t *testing.T) {
	// A pattern equal to the string always matches when it has no
	// metacharacters; "*" matches everything; pattern+"*" matches any
	// extension of the string.
	f := func(s, suffix string) bool {
		if strings.ContainsAny(s, "*?") {
			return true
		}
		return Glob(s, s) && Glob("*", s) && Glob(s+"*", s+suffix)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestMatchFields(t *testing.T) {
	r := req("/a/b.css")
	r.SetHeader("Cookie", "session=xyz")
	r.SetHeader("Accept-Language", "en-GB")

	cases := []struct {
		m    Match
		want bool
	}{
		{Match{}, true},
		{Match{URLGlob: "*.css"}, true},
		{Match{URLGlob: "*.jpg"}, false},
		{Match{Host: "mysite.com"}, true},
		{Match{Host: "other.com"}, false},
		{Match{Method: "GET"}, true},
		{Match{Method: "POST"}, false},
		{Match{CookieName: "session"}, true},
		{Match{CookieName: "absent"}, false},
		{Match{CookieName: "session", CookieGlob: "x*"}, true},
		{Match{CookieName: "session", CookieGlob: "z*"}, false},
		{Match{HeaderName: "Accept-Language", HeaderGlob: "en-GB*"}, true},
		{Match{HeaderName: "Accept-Language", HeaderGlob: "fr*"}, false},
		{Match{HeaderName: "X-Absent"}, false},
	}
	for i, c := range cases {
		if got := c.m.Matches(r); got != c.want {
			t.Errorf("case %d: %+v = %v, want %v", i, c.m, got, c.want)
		}
	}
}

func TestPriorityOrdering(t *testing.T) {
	e := NewEngine([]Rule{
		{Name: "low", Priority: 1, Match: Match{URLGlob: "*"}, Action: Action{Type: ActionSplit, Split: []WeightedBackend{{d1, 1}}}},
		{Name: "high", Priority: 5, Match: Match{URLGlob: "*"}, Action: Action{Type: ActionSplit, Split: []WeightedBackend{{d2, 1}}}},
	})
	d := e.Select(req("/x"), 0.3, nil)
	if !d.OK || d.Backend != d2 || d.Rule.Name != "high" {
		t.Fatalf("decision: %+v", d)
	}
	if d.Scanned != 1 {
		t.Fatalf("scanned = %d, want 1 (high priority first)", d.Scanned)
	}
}

func TestPriorityStableWithinLevel(t *testing.T) {
	e := NewEngine([]Rule{
		{Name: "first", Priority: 3, Match: Match{URLGlob: "*.css"}, Action: Action{Type: ActionSplit, Split: []WeightedBackend{{d1, 1}}}},
		{Name: "second", Priority: 3, Match: Match{URLGlob: "*"}, Action: Action{Type: ActionSplit, Split: []WeightedBackend{{d2, 1}}}},
	})
	if d := e.Select(req("/a.css"), 0, nil); d.Backend != d1 {
		t.Fatalf("same-priority rules reordered: %+v", d)
	}
}

func TestWeightedSplitFractions(t *testing.T) {
	e := NewEngine([]Rule{{
		Name: "r-jpg2", Priority: 3, Match: Match{URLGlob: "*.jpg"},
		Action: Action{Type: ActionSplit, Split: []WeightedBackend{{d2, 0.5}, {d3, 0.5}}},
	}})
	rng := rand.New(rand.NewSource(1))
	counts := map[string]int{}
	const N = 10000
	for i := 0; i < N; i++ {
		d := e.Select(req("/img/x.jpg"), rng.Float64(), nil)
		if !d.OK {
			t.Fatal("no match")
		}
		counts[d.Backend.Name]++
	}
	for _, name := range []string{"D2", "D3"} {
		frac := float64(counts[name]) / N
		if frac < 0.47 || frac > 0.53 {
			t.Errorf("%s fraction %.3f, want ~0.5", name, frac)
		}
	}
}

func TestUnequalWeights(t *testing.T) {
	// Figure 14's final state: 1:1:2 split.
	e := NewEngine([]Rule{{
		Name: "w", Priority: 1, Match: Match{URLGlob: "*"},
		Action: Action{Type: ActionSplit, Split: []WeightedBackend{{d2, 1}, {d3, 1}, {d4, 2}}},
	}})
	rng := rand.New(rand.NewSource(2))
	counts := map[string]int{}
	const N = 20000
	for i := 0; i < N; i++ {
		counts[e.Select(req("/"), rng.Float64(), nil).Backend.Name]++
	}
	if f := float64(counts["D4"]) / N; f < 0.47 || f > 0.53 {
		t.Errorf("D4 fraction %.3f, want ~0.5", f)
	}
	if f := float64(counts["D2"]) / N; f < 0.22 || f > 0.28 {
		t.Errorf("D2 fraction %.3f, want ~0.25", f)
	}
}

func TestPrimaryBackupFallthrough(t *testing.T) {
	// Rules 2 and 3 of Table 3: same match, priorities 3 and 2.
	e := NewEngine([]Rule{
		{Name: "r-css1", Priority: 3, Match: Match{URLGlob: "*.css"},
			Action: Action{Type: ActionSplit, Split: []WeightedBackend{{d1, 1}}}},
		{Name: "r-css2", Priority: 2, Match: Match{URLGlob: "*.css"},
			Action: Action{Type: ActionSplit, Split: []WeightedBackend{{d3, 0.5}, {d4, 0.5}}}},
	})
	// Primary alive: everything goes to D1.
	if d := e.Select(req("/style.css"), 0.9, nil); d.Backend != d1 {
		t.Fatalf("primary not used: %+v", d)
	}
	// Primary dead: fall through to the backup rule.
	info := &StaticInfo{Dead: map[string]bool{"D1": true}}
	d := e.Select(req("/style.css"), 0.9, info)
	if !d.OK || (d.Backend != d3 && d.Backend != d4) {
		t.Fatalf("backup not used: %+v", d)
	}
	if d.Rule.Name != "r-css2" {
		t.Fatalf("wrong rule: %s", d.Rule.Name)
	}
}

func TestLeastLoaded(t *testing.T) {
	e := NewEngine([]Rule{{
		Name: "ll", Priority: 1, Match: Match{URLGlob: "*"},
		Action: Action{Type: ActionSplit, Split: []WeightedBackend{{d1, -1}, {d2, -1}, {d3, -1}}},
	}})
	info := &StaticInfo{Loads: map[string]float64{"D1": 0.9, "D2": 0.2, "D3": 0.5}}
	if d := e.Select(req("/"), 0.99, info); d.Backend != d2 {
		t.Fatalf("least loaded: %+v", d)
	}
	// Least-loaded must skip dead backends.
	info.Dead = map[string]bool{"D2": true}
	if d := e.Select(req("/"), 0.99, info); d.Backend != d3 {
		t.Fatalf("least loaded with dead: %+v", d)
	}
}

func TestStickySessions(t *testing.T) {
	e := NewEngine([]Rule{
		{Name: "r-cookie", Priority: 5, Match: Match{CookieName: "session"},
			Action: Action{Type: ActionTable, Table: "cookie-table", TableCookie: "session"}},
		{Name: "default", Priority: 0, Match: Match{URLGlob: "*"},
			Action: Action{Type: ActionSplit, Split: []WeightedBackend{{d1, 0.5}, {d2, 0.5}}}},
	})
	r := req("/account")
	r.SetHeader("Cookie", "session=user42")
	// Unlearned session: falls through to the split.
	d := e.Select(r, 0.1, nil)
	if !d.OK || d.Rule.Name != "default" {
		t.Fatalf("fallthrough: %+v", d)
	}
	// Learn and re-select: pinned.
	e.Learn("cookie-table", "user42", d3)
	for i := 0; i < 5; i++ {
		d = e.Select(r, float64(i)/5, nil)
		if d.Backend != d3 || d.Rule.Name != "r-cookie" {
			t.Fatalf("sticky not honoured: %+v", d)
		}
	}
	// Pinned backend dies: fall through again.
	info := &StaticInfo{Dead: map[string]bool{"D3": true}}
	d = e.Select(r, 0.1, info)
	if d.Rule.Name != "default" {
		t.Fatalf("dead pin not bypassed: %+v", d)
	}
}

func TestNoMatch(t *testing.T) {
	e := NewEngine([]Rule{{
		Name: "only-jpg", Priority: 1, Match: Match{URLGlob: "*.jpg"},
		Action: Action{Type: ActionSplit, Split: []WeightedBackend{{d1, 1}}},
	}})
	d := e.Select(req("/page.html"), 0.5, nil)
	if d.OK {
		t.Fatalf("unexpected match: %+v", d)
	}
	if d.Scanned != 1 {
		t.Fatalf("scanned = %d", d.Scanned)
	}
}

func TestScannedCountsLinearScan(t *testing.T) {
	var rs []Rule
	for i := 0; i < 100; i++ {
		rs = append(rs, Rule{
			Name: fmt.Sprintf("r%d", i), Priority: 100 - i,
			Match:  Match{URLGlob: fmt.Sprintf("/only-%d/*", i)},
			Action: Action{Type: ActionSplit, Split: []WeightedBackend{{d1, 1}}},
		})
	}
	e := NewEngine(rs)
	d := e.Select(req("/only-99/x"), 0.5, nil)
	if !d.OK || d.Scanned != 100 {
		t.Fatalf("scanned = %d ok=%v, want full scan of 100", d.Scanned, d.OK)
	}
}

func TestUpdatePreservesStickyTables(t *testing.T) {
	e := NewEngine([]Rule{{
		Name: "t", Priority: 1, Match: Match{CookieName: "s"},
		Action: Action{Type: ActionTable, Table: "tab", TableCookie: "s"},
	}})
	e.Learn("tab", "u1", d2)
	e.Update(e.Rules()) // policy refresh
	r := req("/")
	r.SetHeader("Cookie", "s=u1")
	if d := e.Select(r, 0, nil); d.Backend != d2 {
		t.Fatalf("sticky lost across update: %+v", d)
	}
}

func TestParseRules(t *testing.T) {
	resolve := func(name string) (Backend, bool) {
		switch name {
		case "D1":
			return d1, true
		case "D2":
			return d2, true
		case "D3":
			return d3, true
		case "D4":
			return d4, true
		}
		return Backend{}, false
	}
	text := `
# Table 3 of the paper
rule r-jpg2 prio=3 url=*.jpg split=D2:0.5,D3:0.5
rule r-css1 prio=3 url=*.css split=D1:1
rule r-css2 prio=2 url=*.css split=D3:0.5,D4:0.5
rule r-cookie prio=0 cookie=session table=cookie-table:session
rule r-ll prio=1 url=/api/* split=D1:-1,D2:-1
rule r-hdr prio=4 header=Accept-Language:en-GB* split=D1:1
`
	rs, err := ParseRules(text, resolve)
	if err != nil {
		t.Fatal(err)
	}
	if len(rs) != 6 {
		t.Fatalf("parsed %d rules", len(rs))
	}
	if rs[0].Name != "r-jpg2" || rs[0].Priority != 3 || len(rs[0].Action.Split) != 2 {
		t.Fatalf("rule 0: %+v", rs[0])
	}
	if rs[3].Action.Type != ActionTable || rs[3].Action.Table != "cookie-table" {
		t.Fatalf("rule 3: %+v", rs[3])
	}
	if rs[4].Action.Split[0].Weight != -1 {
		t.Fatalf("rule 4 weight: %+v", rs[4])
	}
	if rs[5].Match.HeaderName != "Accept-Language" || rs[5].Match.HeaderGlob != "en-GB*" {
		t.Fatalf("rule 5 match: %+v", rs[5])
	}
	// Round-trip through String + ParseRules.
	var b strings.Builder
	for _, r := range rs {
		b.WriteString(r.String())
		b.WriteString("\n")
	}
	rs2, err := ParseRules(b.String(), resolve)
	if err != nil {
		t.Fatalf("reparse: %v", err)
	}
	if len(rs2) != len(rs) {
		t.Fatalf("round trip lost rules: %d vs %d", len(rs2), len(rs))
	}
}

func TestParseRuleErrors(t *testing.T) {
	resolve := func(string) (Backend, bool) { return Backend{}, false }
	cases := []string{
		"not-a-rule x y",
		"rule r prio=abc split=D1:1",
		"rule r prio=1",                    // no action
		"rule r prio=1 split=Unknown:1",    // unknown backend
		"rule r prio=1 split=D1:-2",        // bad weight
		"rule r prio=1 table=justtable",    // missing cookie
		"rule r prio=1 bogus=1 split=D1:1", // unknown field
	}
	for _, c := range cases {
		if _, err := ParseRules(c, resolve); err == nil {
			t.Errorf("no error for %q", c)
		}
	}
}

func TestSelectZeroAllocsCookieFree(t *testing.T) {
	// The compiled selection path must not allocate for cookie-free
	// requests: index lookups hit reusable scratch, pickSplit is two-pass,
	// and header lookups take the exact-key map path. This is the alloc
	// budget BENCH_core.json records.
	e := NewEngine([]Rule{
		{Name: "h", Priority: 9, Match: Match{Host: "other.com"},
			Action: Action{Type: ActionSplit, Split: []WeightedBackend{{d1, 1}}}},
		{Name: "m", Priority: 8, Match: Match{Method: "POST"},
			Action: Action{Type: ActionSplit, Split: []WeightedBackend{{d1, 1}}}},
		{Name: "lit", Priority: 7, Match: Match{URLGlob: "/exact"},
			Action: Action{Type: ActionSplit, Split: []WeightedBackend{{d1, 1}}}},
		{Name: "pre", Priority: 6, Match: Match{URLGlob: "/api/*"},
			Action: Action{Type: ActionSplit, Split: []WeightedBackend{{d1, 1}, {d2, 2}}}},
		{Name: "suf", Priority: 5, Match: Match{URLGlob: "*.jpg"},
			Action: Action{Type: ActionSplit, Split: []WeightedBackend{{d3, 1}}}},
		{Name: "cookie", Priority: 4, Match: Match{CookieName: "session"},
			Action: Action{Type: ActionTable, Table: "tab", TableCookie: "session"}},
		{Name: "default", Priority: 0, Match: Match{URLGlob: "*"},
			Action: Action{Type: ActionSplit, Split: []WeightedBackend{{d4, 1}}}},
	})
	info := &StaticInfo{Loads: map[string]float64{}}
	reqs := []*httpsim.Request{req("/a.jpg"), req("/api/v2/x"), req("/exact"), req("/none")}
	if avg := testing.AllocsPerRun(200, func() {
		for _, r := range reqs {
			if d := e.Select(r, 0.7, info); !d.OK {
				t.Fatal("no match")
			}
		}
	}); avg != 0 {
		t.Fatalf("Select allocates %.1f times per run on the cookie-free path, want 0", avg)
	}
}

func TestMixedWeightsRejected(t *testing.T) {
	mixed := []Rule{{
		Name: "m", Priority: 1, Match: Match{URLGlob: "*"},
		Action: Action{Type: ActionSplit, Split: []WeightedBackend{{d1, -1}, {d2, 2}}},
	}}
	if err := ValidateRules(mixed); err == nil {
		t.Fatal("ValidateRules accepted a -1/positive mix")
	}
	// Update must reject and leave the previous table serving.
	e := NewEngine([]Rule{{
		Name: "ok", Priority: 1, Match: Match{URLGlob: "*"},
		Action: Action{Type: ActionSplit, Split: []WeightedBackend{{d1, 1}}},
	}})
	if err := e.Update(mixed); err == nil {
		t.Fatal("Update accepted a -1/positive mix")
	}
	if d := e.Select(req("/x"), 0.5, nil); !d.OK || d.Backend != d1 {
		t.Fatalf("previous table not preserved after rejected update: %+v", d)
	}
	// The textual interface rejects it too.
	resolve := func(name string) (Backend, bool) { return d1, true }
	if _, err := ParseRules("rule m prio=1 split=D1:-1,D2:2", resolve); err == nil {
		t.Fatal("ParseRules accepted a -1/positive mix")
	}
	// All -1 and all-positive remain valid.
	if err := ValidateRules([]Rule{{Name: "ll", Action: Action{Type: ActionSplit,
		Split: []WeightedBackend{{d1, -1}, {d2, -1}}}}}); err != nil {
		t.Fatalf("all -1 rejected: %v", err)
	}
	// -1 mixed with zero weights is the degenerate-uniform case, not the
	// unpickable one; it stays accepted.
	if err := ValidateRules([]Rule{{Name: "z", Action: Action{Type: ActionSplit,
		Split: []WeightedBackend{{d1, -1}, {d2, 0}}}}}); err != nil {
		t.Fatalf("-1/zero mix rejected: %v", err)
	}
}

func TestStickyHygieneOnUpdate(t *testing.T) {
	tableRule := Rule{Name: "t", Priority: 5, Match: Match{CookieName: "s"},
		Action: Action{Type: ActionTable, Table: "tab", TableCookie: "s"}}
	split := func(bs ...Backend) Rule {
		var wbs []WeightedBackend
		for _, b := range bs {
			wbs = append(wbs, WeightedBackend{b, 1})
		}
		return Rule{Name: "split", Priority: 1, Match: Match{URLGlob: "*"},
			Action: Action{Type: ActionSplit, Split: wbs}}
	}
	e := NewEngine([]Rule{tableRule, split(d1, d2)})
	e.Learn("tab", "u1", d1)
	e.Learn("tab", "u2", d2)
	if sz := e.TableSizes(); sz["tab"] != 2 {
		t.Fatalf("table sizes: %v", sz)
	}

	// d2 leaves the policy: its binding is evicted, d1's survives.
	if err := e.Update([]Rule{tableRule, split(d1)}); err != nil {
		t.Fatal(err)
	}
	if sz := e.TableSizes(); sz["tab"] != 1 {
		t.Fatalf("stale binding not evicted: %v", sz)
	}
	r1 := req("/")
	r1.SetHeader("Cookie", "s=u1")
	if d := e.Select(r1, 0.5, nil); d.Backend != d1 || d.Rule.Name != "t" {
		t.Fatalf("live session lost across update: %+v", d)
	}
	r2 := req("/")
	r2.SetHeader("Cookie", "s=u2")
	if d := e.Select(r2, 0.5, nil); d.Rule.Name != "split" {
		t.Fatalf("evicted session should fall through to the split: %+v", d)
	}

	// No rule references the table anymore: the whole table is dropped.
	if err := e.Update([]Rule{split(d1)}); err != nil {
		t.Fatal(err)
	}
	if sz := e.TableSizes(); len(sz) != 0 {
		t.Fatalf("unreferenced table not dropped: %v", sz)
	}
}

func TestSelectUniformWhenWeightsZero(t *testing.T) {
	e := NewEngine([]Rule{{
		Name: "z", Priority: 1, Match: Match{URLGlob: "*"},
		Action: Action{Type: ActionSplit, Split: []WeightedBackend{{d1, 0}, {d2, 0}}},
	}})
	rng := rand.New(rand.NewSource(3))
	counts := map[string]int{}
	for i := 0; i < 2000; i++ {
		counts[e.Select(req("/"), rng.Float64(), nil).Backend.Name]++
	}
	if counts["D1"] == 0 || counts["D2"] == 0 {
		t.Fatalf("zero-weight split not uniform: %v", counts)
	}
}

func TestSplitSelectionProperty(t *testing.T) {
	// For any rnd in [0,1), a split over alive backends must return one of
	// them, and rnd below the first weight's normalized share returns the
	// first backend.
	e := NewEngine([]Rule{{
		Name: "p", Priority: 1, Match: Match{URLGlob: "*"},
		Action: Action{Type: ActionSplit, Split: []WeightedBackend{{d1, 3}, {d2, 1}}},
	}})
	f := func(raw uint32) bool {
		rnd := float64(raw) / (1 << 33) // [0, 0.5): always D1 (share 0.75)
		d := e.Select(req("/"), rnd, nil)
		return d.OK && d.Backend == d1
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}
