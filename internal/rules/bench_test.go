package rules

import (
	"fmt"
	"math/rand"
	"testing"

	"repro/internal/httpsim"
	"repro/internal/netsim"
)

// benchTable builds the Figure 6 workload shape: n-1 tenant rules whose
// prefix-anchored globs miss the benchmark requests, and a catch-all at
// the lowest priority, so the linear scan walks the whole table on every
// lookup while the compiled engine jumps straight to the catch-all.
func benchTable(n int) []Rule {
	backend := Backend{Name: "b", Addr: netsim.HostPort{IP: netsim.IPv4(10, 0, 2, 1), Port: 80}}
	out := make([]Rule, 0, n)
	for i := 0; i < n-1; i++ {
		out = append(out, Rule{
			Name:     fmt.Sprintf("r%d", i),
			Priority: n - i,
			Match:    Match{URLGlob: fmt.Sprintf("/tenant%d/*.php", i)},
			Action: Action{Type: ActionSplit,
				Split: []WeightedBackend{{Backend: backend, Weight: 1}}},
		})
	}
	out = append(out, Rule{
		Name: "default", Priority: 0, Match: Match{URLGlob: "*"},
		Action: Action{Type: ActionSplit,
			Split: []WeightedBackend{{Backend: backend, Weight: 1}}},
	})
	return out
}

func benchRequests(n int) []*httpsim.Request {
	rng := rand.New(rand.NewSource(1))
	reqs := make([]*httpsim.Request, n)
	for i := range reqs {
		reqs[i] = httpsim.NewRequest(fmt.Sprintf("/assets/img%d.jpg", rng.Intn(100000)), "svc")
	}
	return reqs
}

var benchSizes = []int{10, 100, 1000, 10000}

// BenchmarkRuleSelect measures the compiled selection path. The headline
// acceptance point is rules=1000: ≥5× faster than the reference scan at 0
// allocs/op on the cookie-free path.
func BenchmarkRuleSelect(b *testing.B) {
	for _, n := range benchSizes {
		b.Run(fmt.Sprintf("rules=%d", n), func(b *testing.B) {
			e := NewEngine(benchTable(n))
			reqs := benchRequests(256)
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				d := e.Select(reqs[i&255], 0.5, nil)
				if !d.OK || d.Scanned != n {
					b.Fatalf("decision: %+v (want catch-all, scanned=%d)", d, n)
				}
			}
		})
	}
}

// BenchmarkRuleSelectReference measures the retained linear scan on the
// same tables, for the speedup ratio recorded in BENCH_core.json.
func BenchmarkRuleSelectReference(b *testing.B) {
	for _, n := range benchSizes {
		b.Run(fmt.Sprintf("rules=%d", n), func(b *testing.B) {
			e := NewEngine(benchTable(n))
			reqs := benchRequests(256)
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				d := e.SelectLinear(reqs[i&255], 0.5, nil)
				if !d.OK || d.Scanned != n {
					b.Fatalf("decision: %+v (want catch-all, scanned=%d)", d, n)
				}
			}
		})
	}
}

// BenchmarkRuleUpdate measures table compilation cost — the control-plane
// price paid per policy change for the indexed data plane.
func BenchmarkRuleUpdate(b *testing.B) {
	rs := benchTable(1000)
	e := NewEngine(rs)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := e.Update(rs); err != nil {
			b.Fatal(err)
		}
	}
}
