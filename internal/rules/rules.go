// Package rules implements Yoda's L7 policy interface (§5.1): OpenFlow-
// like rules with match, action and priority fields, evaluated by the
// HAProxy-style linear scan the paper builds on, extended with the
// priority field that enables primary-backup and other layered policies.
//
// Supported policies map directly to Table 3 of the paper:
//
//   - weighted-split   — action "split" with per-backend weights
//   - primary-backup   — two rules with the same match, different
//     priorities; the scan falls through when a rule's backends are dead
//   - sticky-sessions  — action "table" keyed by an HTTP cookie
//   - least-loaded     — split with all weights set to -1
package rules

import (
	"fmt"
	"sort"
	"strings"

	"repro/internal/httpsim"
	"repro/internal/netsim"
)

// Backend identifies one backend server of an online service.
type Backend struct {
	Name string
	Addr netsim.HostPort
}

// WeightedBackend pairs a backend with its split weight. A weight of -1
// selects least-loaded semantics (all weights in the rule must then be -1).
type WeightedBackend struct {
	Backend Backend
	Weight  float64
}

// Match is a rule's match condition. Zero-valued fields match anything.
type Match struct {
	URLGlob    string // glob over the request path, e.g. "*.jpg"
	Host       string // exact Host header
	Method     string // exact method
	CookieName string // cookie must be present...
	CookieGlob string // ...and, when non-empty, match this glob
	HeaderName string // arbitrary header must be present...
	HeaderGlob string // ...and, when non-empty, match this glob
}

// Matches reports whether the request satisfies every set condition.
func (m *Match) Matches(req *httpsim.Request) bool {
	if m.Method != "" && req.Method != m.Method {
		return false
	}
	if m.URLGlob != "" && !Glob(m.URLGlob, req.Path) {
		return false
	}
	if m.Host != "" && req.Header("Host") != m.Host {
		return false
	}
	if m.CookieName != "" {
		v := req.Cookie(m.CookieName)
		if v == "" {
			return false
		}
		if m.CookieGlob != "" && !Glob(m.CookieGlob, v) {
			return false
		}
	}
	if m.HeaderName != "" {
		v := req.Header(m.HeaderName)
		if v == "" {
			return false
		}
		if m.HeaderGlob != "" && !Glob(m.HeaderGlob, v) {
			return false
		}
	}
	return true
}

// ActionType discriminates rule actions.
type ActionType int

// Action kinds.
const (
	ActionSplit ActionType = iota // weighted split (or least-loaded if weights are -1)
	ActionTable                   // sticky-session table lookup keyed by a cookie
)

// Action is what a matching rule does.
type Action struct {
	Type  ActionType
	Split []WeightedBackend
	// Table is the sticky table name; TableCookie the cookie whose value
	// keys the table.
	Table       string
	TableCookie string
}

// Rule is one L7 load-balancing rule.
type Rule struct {
	Name     string
	Priority int // higher evaluates first
	Match    Match
	Action   Action
}

// BackendInfo supplies backend health and load to the selection scan.
type BackendInfo interface {
	Alive(b Backend) bool
	Load(b Backend) float64
}

// allAlive is the default BackendInfo: everything healthy, zero load.
type allAlive struct{}

func (allAlive) Alive(Backend) bool   { return true }
func (allAlive) Load(Backend) float64 { return 0 }

// StaticInfo is a map-backed BackendInfo for tests and the controller.
type StaticInfo struct {
	Dead  map[string]bool    // by backend name
	Loads map[string]float64 // by backend name
}

// Alive reports whether the backend is not marked dead.
func (s *StaticInfo) Alive(b Backend) bool { return !s.Dead[b.Name] }

// Load returns the backend's recorded load.
func (s *StaticInfo) Load(b Backend) float64 { return s.Loads[b.Name] }

// Decision is the outcome of a selection scan.
type Decision struct {
	Backend Backend
	Rule    *Rule
	Scanned int // rules examined: drives the Figure 6 latency model
	OK      bool
}

// Engine evaluates a rule table. Semantically it is the HAProxy linear
// scan the paper describes; Update compiles the table into per-field
// indexes (see compile.go) so Select only touches candidate rules while
// returning the exact Decision — including the Scanned count that drives
// the Figure 6 latency model — the linear scan would.
//
// An Engine is not safe for concurrent use: Select reuses per-engine
// scratch (and rule evaluation memoizes request state). Every engine in
// this repo lives on a single simulated-network event loop.
type Engine struct {
	rules  []Rule // sorted by priority desc, stable
	tables map[string]map[string]Backend
	idx    index      // compiled on Update
	merge  []candList // Select scratch, sized by Update
}

// NewEngine builds an engine over the given rules. Rules that fail
// ValidateRules are rejected, leaving the engine empty; callers that can
// receive untrusted tables should use ParseRules or Update, which report
// the error.
func NewEngine(rs []Rule) *Engine {
	e := &Engine{tables: make(map[string]map[string]Backend)}
	e.Update(rs)
	return e
}

// Update replaces the rule table (user policy change, §5.2) after
// validating it, recompiles the lookup index, and prunes sticky state the
// new table can no longer use. On error the previous table stays
// installed. Sticky tables persist across updates so sessions stay
// pinned; see evictStale for the hygiene rules.
func (e *Engine) Update(rs []Rule) error {
	if err := ValidateRules(rs); err != nil {
		return err
	}
	e.rules = append([]Rule(nil), rs...)
	sort.SliceStable(e.rules, func(i, j int) bool { return e.rules[i].Priority > e.rules[j].Priority })
	e.idx = compile(e.rules)
	if cap(e.merge) < e.idx.maxLists {
		e.merge = make([]candList, 0, e.idx.maxLists)
	}
	e.evictStale()
	return nil
}

// ValidateRules rejects tables the engine cannot evaluate sensibly. A
// split mixing least-loaded (-1) and positive weights would make the -1
// backends unpickable (the weighted draw never lands on them), silently
// turning "least loaded" into "never"; such rules are refused at install
// time.
func ValidateRules(rs []Rule) error {
	for i := range rs {
		r := &rs[i]
		if r.Action.Type != ActionSplit {
			continue
		}
		hasLL, hasPos := false, false
		for _, wb := range r.Action.Split {
			if wb.Weight == -1 {
				hasLL = true
			} else if wb.Weight > 0 {
				hasPos = true
			}
		}
		if hasLL && hasPos {
			return fmt.Errorf("rule %s: split mixes least-loaded (-1) and positive weights; use all -1 or all non-negative", r.Name)
		}
	}
	return nil
}

// evictStale drops sticky state the installed table can no longer reach:
// whole tables no ActionTable rule references, and bindings pinned to
// backends absent from every split. When the table declares no split
// backends at all there is nothing to compare bindings against, so they
// are kept (sessions stay pinned, §5.2). Without this, policy churn grows
// e.tables without bound.
func (e *Engine) evictStale() {
	liveTables := make(map[string]bool)
	liveBackends := make(map[Backend]bool)
	for i := range e.rules {
		switch a := &e.rules[i].Action; a.Type {
		case ActionTable:
			liveTables[a.Table] = true
		case ActionSplit:
			for _, wb := range a.Split {
				liveBackends[wb.Backend] = true
			}
		}
	}
	for name, t := range e.tables {
		if !liveTables[name] {
			delete(e.tables, name)
			continue
		}
		if len(liveBackends) == 0 {
			continue
		}
		for key, b := range t {
			if !liveBackends[b] {
				delete(t, key)
			}
		}
	}
}

// TableSizes reports the number of bindings in each sticky table, for
// stats and memory-growth monitoring.
func (e *Engine) TableSizes() map[string]int {
	out := make(map[string]int, len(e.tables))
	for name, t := range e.tables {
		out[name] = len(t)
	}
	return out
}

// Rules returns the engine's rule table in evaluation order.
func (e *Engine) Rules() []Rule { return append([]Rule(nil), e.rules...) }

// Len returns the number of rules.
func (e *Engine) Len() int { return len(e.rules) }

// Learn records a sticky-table binding (cookie value → backend).
func (e *Engine) Learn(table, key string, b Backend) {
	t, ok := e.tables[table]
	if !ok {
		t = make(map[string]Backend)
		e.tables[table] = t
	}
	t[key] = b
}

// Select returns the backend the priority-ordered scan would choose,
// using the compiled index to touch only candidate rules. rnd must be
// uniform in [0,1) (drawn from the simulation RNG); info may be nil for
// all-alive semantics.
//
// The Decision is identical to SelectLinear's in every field: the winner
// is the same (the index only skips rules whose Match provably fails),
// and Scanned is reconstructed from the winner's position in the full
// sorted table — the linear scan examines exactly position+1 rules before
// terminating, or the whole table when nothing does.
func (e *Engine) Select(req *httpsim.Request, rnd float64, info BackendInfo) Decision {
	if info == nil {
		info = allAlive{}
	}
	host := req.Header("Host")
	lists := e.idx.gather(e.merge[:0], host, req.Method, req.Path)
	d := Decision{}
	for {
		id := next(lists)
		if id < 0 {
			break
		}
		r := &e.rules[id]
		if !r.Match.Matches(req) {
			continue
		}
		if b, ok := e.applyAction(r, req, rnd, info); ok {
			d.Backend, d.Rule, d.OK = b, r, true
			d.Scanned = int(id) + 1
			e.merge = lists[:0]
			return d
		}
	}
	d.Scanned = len(e.rules) // full-table fall-through, as the scan counts
	e.merge = lists[:0]
	return d
}

// SelectLinear is the retained reference implementation: the HAProxy
// linear scan exactly as the paper models it. It is the differential
// oracle the compiled Select is fuzzed against and is not used on the
// request path.
func (e *Engine) SelectLinear(req *httpsim.Request, rnd float64, info BackendInfo) Decision {
	if info == nil {
		info = allAlive{}
	}
	d := Decision{}
	for i := range e.rules {
		r := &e.rules[i]
		d.Scanned++
		if !r.Match.Matches(req) {
			continue
		}
		if b, ok := e.applyAction(r, req, rnd, info); ok {
			d.Backend, d.Rule, d.OK = b, r, true
			return d
		}
	}
	return d
}

// applyAction runs a matching rule's action. ok=false means fall through
// to the next rule (sticky-table miss or dead pin; all split backends
// dead — the primary-backup pattern).
func (e *Engine) applyAction(r *Rule, req *httpsim.Request, rnd float64, info BackendInfo) (Backend, bool) {
	switch r.Action.Type {
	case ActionTable:
		key := req.Cookie(r.Action.TableCookie)
		if key == "" {
			return Backend{}, false
		}
		if b, ok := e.tables[r.Action.Table][key]; ok && info.Alive(b) {
			return b, true
		}
		return Backend{}, false
	case ActionSplit:
		return pickSplit(r.Action.Split, rnd, info)
	}
	return Backend{}, false
}

// pickSplit chooses among alive backends by weight; all-(-1) weights mean
// least-loaded. Two passes over the split keep it allocation-free (the
// previous implementation built an alive slice per call, on the
// per-connection critical path). The iteration order — and therefore
// every float operation and RNG-consuming branch — matches the one-pass
// version exactly, keeping selections bit-identical.
func pickSplit(split []WeightedBackend, rnd float64, info BackendInfo) (Backend, bool) {
	nAlive := 0
	leastLoaded := true
	total := 0.0
	var lastAlive Backend
	for _, wb := range split {
		if !info.Alive(wb.Backend) {
			continue
		}
		nAlive++
		lastAlive = wb.Backend
		if wb.Weight != -1 {
			leastLoaded = false
		}
		if wb.Weight > 0 {
			total += wb.Weight
		}
	}
	if nAlive == 0 {
		return Backend{}, false
	}
	if leastLoaded {
		var best Backend
		first := true
		for _, wb := range split {
			if !info.Alive(wb.Backend) {
				continue
			}
			if first || info.Load(wb.Backend) < info.Load(best) {
				best, first = wb.Backend, false
			}
		}
		return best, true
	}
	if total <= 0 {
		// Degenerate weights: uniform choice among the alive backends.
		k := int(rnd*float64(nAlive)) % nAlive
		for _, wb := range split {
			if !info.Alive(wb.Backend) {
				continue
			}
			if k == 0 {
				return wb.Backend, true
			}
			k--
		}
		return lastAlive, true // unreachable: k < nAlive
	}
	x := rnd * total
	for _, wb := range split {
		if !info.Alive(wb.Backend) || wb.Weight <= 0 {
			continue
		}
		if x < wb.Weight {
			return wb.Backend, true
		}
		x -= wb.Weight
	}
	return lastAlive, true
}

// Glob matches s against a pattern containing '*' (any run, possibly
// empty) and '?' (any single byte). Matching is byte-wise and
// case-sensitive, as in HAProxy ACL path matching.
func Glob(pattern, s string) bool {
	// Iterative backtracking matcher: O(len(s)·stars) worst case.
	var pi, si int
	star, starSi := -1, 0
	for si < len(s) {
		switch {
		case pi < len(pattern) && (pattern[pi] == '?' || pattern[pi] == s[si]):
			pi++
			si++
		case pi < len(pattern) && pattern[pi] == '*':
			star, starSi = pi, si
			pi++
		case star >= 0:
			starSi++
			si = starSi
			pi = star + 1
		default:
			return false
		}
	}
	for pi < len(pattern) && pattern[pi] == '*' {
		pi++
	}
	return pi == len(pattern)
}

// String renders a rule in the textual interface format.
func (r Rule) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "rule %s prio=%d", r.Name, r.Priority)
	m := r.Match
	if m.URLGlob != "" {
		fmt.Fprintf(&b, " url=%s", m.URLGlob)
	}
	if m.Host != "" {
		fmt.Fprintf(&b, " host=%s", m.Host)
	}
	if m.Method != "" {
		fmt.Fprintf(&b, " method=%s", m.Method)
	}
	if m.CookieName != "" {
		if m.CookieGlob != "" {
			fmt.Fprintf(&b, " cookie=%s:%s", m.CookieName, m.CookieGlob)
		} else {
			fmt.Fprintf(&b, " cookie=%s", m.CookieName)
		}
	}
	if m.HeaderName != "" {
		if m.HeaderGlob != "" {
			fmt.Fprintf(&b, " header=%s:%s", m.HeaderName, m.HeaderGlob)
		} else {
			fmt.Fprintf(&b, " header=%s", m.HeaderName)
		}
	}
	switch r.Action.Type {
	case ActionSplit:
		parts := make([]string, len(r.Action.Split))
		for i, wb := range r.Action.Split {
			parts[i] = fmt.Sprintf("%s:%g", wb.Backend.Name, wb.Weight)
		}
		fmt.Fprintf(&b, " split=%s", strings.Join(parts, ","))
	case ActionTable:
		fmt.Fprintf(&b, " table=%s:%s", r.Action.Table, r.Action.TableCookie)
	}
	return b.String()
}
