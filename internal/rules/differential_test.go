package rules

import (
	"fmt"
	"math/rand"
	"testing"

	"repro/internal/httpsim"
	"repro/internal/netsim"
)

// referenceSelect is an independent, deliberately naive re-implementation
// of the selection semantics, used as a differential oracle: sort rules
// by priority (stable), walk them, and apply the same action semantics.
// It shares no code with Engine.Select beyond the Rule types.
func referenceSelect(rs []Rule, tables map[string]map[string]Backend, req *httpsim.Request, rnd float64, info BackendInfo) (Backend, bool) {
	if info == nil {
		info = allAlive{}
	}
	// Stable sort by priority descending (insertion order preserved).
	sorted := append([]Rule(nil), rs...)
	for i := 1; i < len(sorted); i++ {
		for j := i; j > 0 && sorted[j].Priority > sorted[j-1].Priority; j-- {
			sorted[j], sorted[j-1] = sorted[j-1], sorted[j]
		}
	}
	for _, r := range sorted {
		if !r.Match.Matches(req) {
			continue
		}
		switch r.Action.Type {
		case ActionTable:
			key := req.Cookie(r.Action.TableCookie)
			if key == "" {
				continue
			}
			if b, ok := tables[r.Action.Table][key]; ok && info.Alive(b) {
				return b, true
			}
		case ActionSplit:
			if b, ok := pickSplit(r.Action.Split, rnd, info); ok {
				return b, true
			}
		}
	}
	return Backend{}, false
}

// TestDifferentialAgainstReference fuzzes random rule tables and requests
// and checks Engine.Select against the oracle.
func TestDifferentialAgainstReference(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	backends := make([]Backend, 6)
	for i := range backends {
		backends[i] = Backend{
			Name: fmt.Sprintf("B%d", i),
			Addr: netsim.HostPort{IP: netsim.IPv4(10, 0, 2, byte(i+1)), Port: 80},
		}
	}
	globs := []string{"*", "*.jpg", "*.css", "/api/*", "/img/*.png", "*.php"}
	paths := []string{"/a.jpg", "/style.css", "/api/v1/users", "/img/x.png", "/index.php", "/plain"}

	for trial := 0; trial < 300; trial++ {
		nRules := 1 + rng.Intn(8)
		rs := make([]Rule, 0, nRules)
		for i := 0; i < nRules; i++ {
			r := Rule{
				Name:     fmt.Sprintf("r%d", i),
				Priority: rng.Intn(4),
				Match:    Match{URLGlob: globs[rng.Intn(len(globs))]},
			}
			if rng.Intn(5) == 0 {
				r.Match.CookieName = "session"
			}
			if rng.Intn(6) == 0 {
				r.Action = Action{Type: ActionTable, Table: "tab", TableCookie: "session"}
			} else {
				n := 1 + rng.Intn(3)
				var split []WeightedBackend
				for k := 0; k < n; k++ {
					split = append(split, WeightedBackend{
						Backend: backends[rng.Intn(len(backends))],
						Weight:  float64(1 + rng.Intn(3)),
					})
				}
				r.Action = Action{Type: ActionSplit, Split: split}
			}
			rs = append(rs, r)
		}
		e := NewEngine(rs)
		// Random sticky learnings.
		tables := map[string]map[string]Backend{"tab": {}}
		if rng.Intn(2) == 0 {
			b := backends[rng.Intn(len(backends))]
			e.Learn("tab", "u1", b)
			tables["tab"]["u1"] = b
		}
		// Random health.
		info := &StaticInfo{Dead: map[string]bool{}, Loads: map[string]float64{}}
		for _, b := range backends {
			if rng.Intn(5) == 0 {
				info.Dead[b.Name] = true
			}
		}
		req := httpsim.NewRequest(paths[rng.Intn(len(paths))], "svc")
		if rng.Intn(2) == 0 {
			req.SetHeader("Cookie", "session=u1")
		}
		rnd := rng.Float64()

		gotB, gotOK := Backend{}, false
		if d := e.Select(req, rnd, info); d.OK {
			gotB, gotOK = d.Backend, true
		}
		wantB, wantOK := referenceSelect(rs, tables, req, rnd, info)
		if gotOK != wantOK || gotB != wantB {
			t.Fatalf("trial %d diverged:\n rules=%v\n req=%s cookie=%q rnd=%v dead=%v\n engine=(%v,%v) reference=(%v,%v)",
				trial, rs, req.Path, req.Header("Cookie"), rnd, info.Dead, gotB, gotOK, wantB, wantOK)
		}
	}
}
